package microp4_test

import (
	"strings"
	"testing"

	"microp4"
	"microp4/internal/lib"
	"microp4/internal/pkt"
	"microp4/internal/sim"
)

func compileLib(t testing.TB, prog string) *microp4.Dataplane {
	t.Helper()
	m, err := lib.Program(prog)
	if err != nil {
		t.Fatal(err)
	}
	src, err := lib.Source(m.MainFile)
	if err != nil {
		t.Fatal(err)
	}
	main, err := microp4.CompileModule(m.MainFile, src)
	if err != nil {
		t.Fatal(err)
	}
	var mods []*microp4.Module
	for _, name := range m.Modules {
		msrc, err := lib.ModuleSource(name)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := microp4.CompileModule(name+".up4", msrc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mods = append(mods, mod)
	}
	dp, err := microp4.Build(main, mods...)
	if err != nil {
		t.Fatal(err)
	}
	return dp
}

// installLibRules replays a program's standard evaluation rule set
// (lib.InstallDefaultRules) through the public Switch API.
func installLibRules(sw *microp4.Switch, prog string) {
	rules := sim.NewTables()
	lib.InstallDefaultRules(rules, prog, false)
	for _, name := range rules.TableNames() {
		for _, e := range rules.Entries(name) {
			keys := make([]microp4.Key, len(e.Keys))
			for i, k := range e.Keys {
				switch {
				case k.DontCare:
					keys[i] = microp4.Any()
				case k.HasMask:
					keys[i] = microp4.Ternary(k.Value, k.Mask)
				case k.PrefixLen > 0:
					keys[i] = microp4.LPM(k.Value, k.PrefixLen)
				default:
					keys[i] = microp4.Exact(k.Value)
				}
			}
			sw.AddEntry(name, keys, e.Action, e.Args...)
		}
	}
}

func TestPublicAPIRouter(t *testing.T) {
	dp := compileLib(t, "P4")
	st := dp.Stats()
	if st.ByteStack != 54 || st.ExtractLength != 54 {
		t.Errorf("stats = %+v, want byte-stack 54 (eth 14 + ipv6 40)", st)
	}
	if st.MinPacket != 14 {
		t.Errorf("min packet = %d, want 14", st.MinPacket)
	}
	tables := dp.Tables()
	wantTables := map[string]bool{
		"forward_tbl":              false,
		"l3_i.ipv4_i.ipv4_lpm_tbl": false,
		"l3_i.ipv6_i.ipv6_lpm_tbl": false,
	}
	for _, tn := range tables {
		if _, ok := wantTables[tn]; ok {
			wantTables[tn] = true
		}
	}
	for tn, seen := range wantTables {
		if !seen {
			t.Errorf("table %s not exposed; have %v", tn, tables)
		}
	}

	sw := dp.NewSwitch()
	sw.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
		[]microp4.Key{microp4.LPM(0x0A000000, 8)}, "l3_i.ipv4_i.process", 100)
	sw.AddEntry("forward_tbl",
		[]microp4.Key{microp4.Exact(100)}, "forward", 0x00AA00000001, 0x00BB00000001, 1)

	in := pkt.NewBuilder().
		Ethernet(2, 3, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 1, Dst: 0x0A000001}).
		TCP(1000, 80).Bytes()
	out, err := sw.Process(in, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 1 {
		t.Fatalf("out = %+v, want one packet on port 1", out)
	}
	if pkt.IPv4TTL(out[0].Data, 14) != 63 {
		t.Errorf("ttl = %d, want 63", pkt.IPv4TTL(out[0].Data, 14))
	}

	// The reference engine agrees.
	ref := dp.NewSwitchWith(microp4.EngineReference)
	ref.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
		[]microp4.Key{microp4.LPM(0x0A000000, 8)}, "l3_i.ipv4_i.process", 100)
	ref.AddEntry("forward_tbl",
		[]microp4.Key{microp4.Exact(100)}, "forward", 0x00AA00000001, 0x00BB00000001, 1)
	rout, err := ref.Process(in, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rout) != 1 || string(rout[0].Data) != string(out[0].Data) {
		t.Error("reference and compiled engines disagree via the public API")
	}

	// Unknown destinations drop.
	miss := pkt.NewBuilder().
		Ethernet(2, 3, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 1, Dst: 0x63000001}).Bytes()
	out, err = sw.Process(miss, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("unrouted packet forwarded: %+v", out)
	}
}

func TestTofinoReports(t *testing.T) {
	dp := compileLib(t, "P4")
	rep, err := dp.Tofino()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible || rep.Stages == 0 || rep.Containers16 == 0 {
		t.Errorf("composed report = %+v", rep)
	}
	monoSrc, err := lib.Source("mono/p7.up4")
	if err != nil {
		t.Fatal(err)
	}
	mono, err := microp4.CompileModule("mono/p7.up4", monoSrc)
	if err != nil {
		t.Fatal(err)
	}
	mrep, err := microp4.TofinoMonolithic(mono)
	if err != nil {
		t.Fatal(err)
	}
	if mrep.Feasible {
		t.Error("monolithic P7 should fail to map (§7.3)")
	}
}

func TestEmitters(t *testing.T) {
	dp := compileLib(t, "P4")
	v1, err := dp.EmitV1Model()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v1, "V1Switch(") {
		t.Error("V1Model source incomplete")
	}
	tnaSrc, err := dp.EmitTNA()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tnaSrc, "tna.p4") {
		t.Error("TNA source incomplete")
	}
}

// multicastSrc replicates packets to a group (§4.2/§B).
const multicastSrc = `
struct empty_t { }
header ethernet_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
struct hdr_t { ethernet_h eth; }
program Flood : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.eth); transition accept; }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) {
    mc_engine() mce;
    bit<16> id;
    action unicast(bit<9> port) { im.set_out_port(port); }
    action flood(bit<16> gid) { mce.set_mc_group(gid); }
    table dmac_tbl {
      key = { h.eth.dstMac : exact; }
      actions = { unicast; flood; }
      default_action = flood(1);
    }
    apply {
      dmac_tbl.apply();
      mce.apply(im, id);
    }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.eth); } }
}
Flood(P, C, D) main;
`

func TestMulticast(t *testing.T) {
	main, err := microp4.CompileModule("flood.up4", multicastSrc)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := microp4.Build(main)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []microp4.Engine{microp4.EngineCompiled, microp4.EngineReference} {
		sw := dp.NewSwitchWith(engine)
		sw.SetMulticastGroup(1, 2, 3, 4)
		in := pkt.NewBuilder().Ethernet(0xFFFFFFFFFFFF, 5, 0x0800).Payload([]byte("x")).Bytes()
		out, err := sw.Process(in, 9)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 3 {
			t.Fatalf("engine %v: flooded to %d ports, want 3", engine, len(out))
		}
		ports := map[uint64]bool{}
		for _, o := range out {
			ports[o.Port] = true
			if string(o.Data) != string(in) {
				t.Errorf("replica differs from input")
			}
		}
		if !ports[2] || !ports[3] || !ports[4] {
			t.Errorf("engine %v: ports = %v", engine, ports)
		}
	}
}

// recircSrc decrements a counter header and recirculates until done.
const recircSrc = `
struct empty_t { }
header loop_h { bit<8> hops; bit<8> tag; }
struct hdr_t { loop_h lp; }
program Looper : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.lp); transition accept; }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) {
    apply {
      if (h.lp.hops > 0) {
        h.lp.hops = h.lp.hops - 1;
        recirculate(h.lp.tag);
      } else {
        im.set_out_port(2);
      }
    }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.lp); } }
}
Looper(P, C, D) main;
`

func TestRecirculation(t *testing.T) {
	main, err := microp4.CompileModule("loop.up4", recircSrc)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := microp4.Build(main)
	if err != nil {
		t.Fatal(err)
	}
	sw := dp.NewSwitch()
	out, err := sw.Process([]byte{3, 0xAB, 0xCD}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("out = %+v", out)
	}
	if out[0].Data[0] != 0 {
		t.Errorf("hops = %d after recirculation, want 0", out[0].Data[0])
	}
	// Exceeding the recirculation bound errors.
	if _, err := sw.Process([]byte{200, 1, 2}, 1); err == nil {
		t.Error("unbounded recirculation not caught")
	}
}

// TestTracer exercises the §8.2 debugging hooks on both engines.
func TestTracer(t *testing.T) {
	dp := compileLib(t, "P4")
	for _, engine := range []microp4.Engine{microp4.EngineCompiled, microp4.EngineReference} {
		sw := dp.NewSwitchWith(engine)
		sw.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
			[]microp4.Key{microp4.LPM(0x0A000000, 8)}, "l3_i.ipv4_i.process", 100)
		sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(100)}, "forward", 1, 2, 3)
		var events []microp4.TraceEvent
		sw.SetTracer(func(e microp4.TraceEvent) { events = append(events, e) })
		in := pkt.NewBuilder().Ethernet(1, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 4, Protocol: 6, Src: 1, Dst: 0x0A000001}).Bytes()
		if _, err := sw.Process(in, 0); err != nil {
			t.Fatal(err)
		}
		if len(events) == 0 {
			t.Fatalf("engine %v: no trace events", engine)
		}
		var sawLpm, sawForward bool
		for _, e := range events {
			if e.Kind == "table" && strings.Contains(e.Name, "ipv4_lpm_tbl") &&
				strings.Contains(e.Detail, "process") {
				sawLpm = true
			}
			if e.Kind == "table" && e.Name == "forward_tbl" {
				sawForward = true
			}
		}
		if !sawLpm || !sawForward {
			t.Errorf("engine %v: trace missing table events: %+v", engine, events)
		}
		// Tracing off again.
		sw.SetTracer(nil)
		n := len(events)
		if _, err := sw.Process(in, 0); err != nil {
			t.Fatal(err)
		}
		if len(events) != n {
			t.Errorf("engine %v: tracer fired after removal", engine)
		}
	}
}

// TestControlAPI verifies the Fig. 4 "control API" artifact: every
// module instance exposes its own tables with keys, actions, and action
// parameters, plus register schemas.
func TestControlAPI(t *testing.T) {
	dp := compileLib(t, "P4")
	api := dp.ControlAPI()
	if api.Program != "P4Router" || len(api.Tables) != 3 {
		t.Fatalf("api = %+v", api)
	}
	byName := map[string]microp4.ControlTable{}
	for _, tb := range api.Tables {
		byName[tb.Name] = tb
	}
	lpm := byName["l3_i.ipv4_i.ipv4_lpm_tbl"]
	if lpm.Module != "l3_i.ipv4_i" {
		t.Errorf("lpm module = %q", lpm.Module)
	}
	if len(lpm.Keys) != 1 || lpm.Keys[0].MatchKind != "lpm" || lpm.Keys[0].Width != 32 {
		t.Errorf("lpm keys = %+v", lpm.Keys)
	}
	var process *microp4.ControlAction
	for i := range lpm.Actions {
		if lpm.Actions[i].Name == "l3_i.ipv4_i.process" {
			process = &lpm.Actions[i]
		}
	}
	if process == nil || len(process.Params) != 1 || process.Params[0].Width != 16 {
		t.Errorf("process action = %+v", process)
	}
	fwd := byName["forward_tbl"]
	if fwd.Module != "" || fwd.DefaultName != "drop_pkt" {
		t.Errorf("forward_tbl = %+v", fwd)
	}
	data, err := api.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "ipv4_lpm_tbl") {
		t.Error("JSON schema incomplete")
	}
}

// TestOrchestrationViaPublicAPI: multi-packet programs build and run on
// the reference engine; the compiled engine reports a clear error.
func TestOrchestrationViaPublicAPI(t *testing.T) {
	orch := `
struct empty_t { }
struct nohdr_t { }
Dup(pkt p, im_t im);
program Tap : implements Orchestration {
  control C(pkt p, inout nohdr_t h, inout empty_t m, im_t im, out_buf ob) {
    pkt copy;
    im_t imc;
    Dup() d_i;
    apply {
      copy.copy_from(p);
      imc.copy_from(im);
      d_i.apply(p, im);
      ob.enqueue(p, im);
      ob.enqueue(copy, imc);
    }
  }
}
Tap(C) main;
`
	dup := `
struct empty_t { }
header b_h { bit<8> v; }
struct dhdr_t { b_h b; }
program Dup : implements Unicast {
  parser P(extractor ex, pkt p, out dhdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.b); transition accept; }
  }
  control C(pkt p, inout dhdr_t h, inout empty_t m, im_t im) {
    apply { h.b.v = h.b.v + 1; im.set_out_port(6); }
  }
  control D(emitter em, pkt p, in dhdr_t h) { apply { em.emit(p, h.b); } }
}
`
	mainM, err := microp4.CompileModule("tap.up4", orch)
	if err != nil {
		t.Fatal(err)
	}
	dupM, err := microp4.CompileModule("dup.up4", dup)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := microp4.Build(mainM, dupM)
	if err != nil {
		t.Fatalf("Build should tolerate orchestration programs: %v", err)
	}
	if ok, cerr := dp.Composed(); ok || cerr == nil {
		t.Error("orchestration program reported as composed")
	}
	// The compiled engine refuses clearly.
	if _, err := dp.NewSwitch().Process([]byte{1, 2}, 0); err == nil {
		t.Error("compiled engine accepted an uncomposed program")
	}
	// The reference engine taps the packet: original (mutated by Dup,
	// port 6) plus the pristine copy.
	sw := dp.NewSwitchWith(microp4.EngineReference)
	out, err := sw.Process([]byte{9, 0xEE}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("out = %+v, want 2 packets", out)
	}
	if out[0].Data[0] != 10 || out[0].Port != 6 {
		t.Errorf("processed packet = %+v", out[0])
	}
	if out[1].Data[0] != 9 {
		t.Errorf("tap copy mutated: %+v", out[1])
	}
}

// TestModuleStats exposes the per-module operational regions.
func TestModuleStats(t *testing.T) {
	dp := compileLib(t, "P4")
	ipv6, err := dp.ModuleStats("IPv6")
	if err != nil {
		t.Fatal(err)
	}
	if ipv6.ExtractLength != 40 || ipv6.ByteStack != 40 {
		t.Errorf("IPv6 stats = %+v", ipv6)
	}
	l3, err := dp.ModuleStats("L3")
	if err != nil {
		t.Fatal(err)
	}
	if l3.ExtractLength != 40 { // max(ipv4 20, ipv6 40)
		t.Errorf("L3 El = %d, want 40", l3.ExtractLength)
	}
	if _, err := dp.ModuleStats("Ghost"); err == nil {
		t.Error("unknown module accepted")
	}
}
