package microp4

import (
	"encoding/json"
	"sort"

	"microp4/internal/ir"
)

// ControlKey describes one match key of a control-plane-visible table.
type ControlKey struct {
	Field     string `json:"field"`
	Width     int    `json:"width"`
	MatchKind string `json:"match"`
}

// ControlActionParam is one runtime parameter of an action.
type ControlActionParam struct {
	Name  string `json:"name"`
	Width int    `json:"width"`
}

// ControlAction describes an installable action.
type ControlAction struct {
	Name   string               `json:"name"`
	Params []ControlActionParam `json:"params,omitempty"`
}

// ControlTable is the control-plane schema of one table: what Fig. 4
// calls the module's "control API", fully qualified by instance path so
// multiple controllers can each own their module's tables (§8.2).
type ControlTable struct {
	Name         string          `json:"name"`
	Module       string          `json:"module"` // owning module instance path ("" = main)
	Keys         []ControlKey    `json:"keys"`
	Actions      []ControlAction `json:"actions"`
	DefaultName  string          `json:"default,omitempty"`
	ConstEntries int             `json:"const_entries,omitempty"`
}

// ControlRegister is the control-plane schema of a register array.
type ControlRegister struct {
	Name  string `json:"name"`
	Size  int    `json:"size"`
	Width int    `json:"width"`
}

// ControlAPI is the composed dataplane's full control-plane surface.
type ControlAPI struct {
	Program   string            `json:"program"`
	Tables    []ControlTable    `json:"tables"`
	Registers []ControlRegister `json:"registers,omitempty"`
}

// ControlAPI returns the control-plane schema of the composed dataplane.
func (d *Dataplane) ControlAPI() *ControlAPI {
	pl := d.res.Pipeline
	if pl == nil {
		return &ControlAPI{Program: d.res.Linked.Main.Name}
	}
	api := &ControlAPI{Program: pl.Name}
	for _, name := range pl.UserTables {
		t := pl.Tables[name]
		if t == nil {
			continue
		}
		ct := ControlTable{Name: name, Module: moduleOfTable(name), ConstEntries: len(t.Entries)}
		for _, k := range t.Keys {
			ck := ControlKey{Width: k.Expr.Width, MatchKind: k.MatchKind}
			if k.Expr.Kind == ir.ERef {
				ck.Field = k.Expr.Ref
			} else {
				ck.Field = k.Expr.String()
			}
			ct.Keys = append(ct.Keys, ck)
		}
		for _, an := range t.Actions {
			act := pl.Actions[an]
			ca := ControlAction{Name: an}
			if act != nil {
				for _, p := range act.Params {
					ca.Params = append(ca.Params, ControlActionParam{Name: p.Name, Width: p.Width})
				}
			}
			ct.Actions = append(ct.Actions, ca)
		}
		if t.Default != nil {
			ct.DefaultName = t.Default.Name
		}
		api.Tables = append(api.Tables, ct)
	}
	sort.Slice(api.Tables, func(i, j int) bool { return api.Tables[i].Name < api.Tables[j].Name })
	for _, r := range pl.Registers {
		api.Registers = append(api.Registers, ControlRegister{Name: r.Name, Size: r.Size, Width: r.Width})
	}
	sort.Slice(api.Registers, func(i, j int) bool { return api.Registers[i].Name < api.Registers[j].Name })
	return api
}

// ToJSON serializes the control API schema.
func (a *ControlAPI) ToJSON() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// moduleOfTable derives the owning instance path from a fully qualified
// table name ("l3_i.ipv4_i.ipv4_lpm_tbl" → "l3_i.ipv4_i").
func moduleOfTable(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[:i]
		}
	}
	return ""
}
