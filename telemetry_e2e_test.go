package microp4_test

// End-to-end cross-check of the two telemetry views (the ISSUE 7
// acceptance scenario): P8's telemetry.up4 module stamps INT-style hop
// records into the packet in-band, the tracing subsystem records hop
// spans host-side, and for every packet delivered through a seeded
// three-hop chaos run the two must agree byte for byte — switch id,
// per-hop queue-depth latency, and TTL-at-hop, joined per delivery via
// the egress Delivery's trace/span ids.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"microp4"
	"microp4/internal/lib"
	"microp4/internal/netsim"
	"microp4/internal/pkt"
	"microp4/internal/sim"
	"microp4/internal/trace"
)

// replayRules replays a lib-built sim.Tables rule set through the
// public Switch API (the same adaptation cmd/up4run uses).
func replayRules(sw *microp4.Switch, tb *sim.Tables) {
	for _, name := range tb.TableNames() {
		for _, e := range tb.Entries(name) {
			keys := make([]microp4.Key, len(e.Keys))
			for i, k := range e.Keys {
				switch {
				case k.DontCare:
					keys[i] = microp4.Any()
				case k.HasMask:
					keys[i] = microp4.Ternary(k.Value, k.Mask)
				case k.PrefixLen > 0:
					keys[i] = microp4.LPM(k.Value, k.PrefixLen)
				default:
					keys[i] = microp4.Exact(k.Value)
				}
			}
			sw.AddEntry(name, keys, e.Action, e.Args...)
		}
	}
}

// telemetryNetwork wires the three-hop line (s1:1 -> s2:0, s2:1 -> s3:0)
// with P8 switches carrying distinct telemetry switch ids 1..3, all
// sharing one flight recorder with the network.
func telemetryNetwork(t testing.TB, seed uint64, fm netsim.FaultModel) (*netsim.Network, *trace.Recorder) {
	t.Helper()
	dp := compileLib(t, "P8")
	n := netsim.New(seed)
	rec := trace.NewRecorder(8192)
	n.SetTracing(rec)
	for hop := 1; hop <= 3; hop++ {
		sw := dp.NewSwitch()
		tb := sim.NewTables()
		lib.InstallDefaultRules(tb, "P8", false)
		tb.ClearTable("tel_i.tel_tbl")
		lib.InstallTelemetryRules(tb, false, uint64(hop))
		replayRules(sw, tb)
		sw.SetTracing(rec)
		if err := n.AddSwitch([]string{"", "s1", "s2", "s3"}[hop], sw); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Connect("s1", 1, "s2", 0, fm); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("s2", 1, "s3", 0, fm); err != nil {
		t.Fatal(err)
	}
	return n, rec
}

// telPacket builds one telemetry-encapsulated IPv4 packet: eth 0x1266,
// empty record stack, inner v4 routed toward NetA.
func telPacket(i int) []byte {
	return pkt.NewBuilder().Ethernet(lib.DmacA, uint64(i), 0x1266).
		Payload([]byte{0, 0x08, 0x00}).
		Payload(pkt.NewBuilder().
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP, Src: uint32(i), Dst: lib.NetA | uint32(i)}).
			TCP(uint16(1000+i), 80).Payload([]byte("int")).Bytes()).Bytes()
}

// telChaos is the cross-check fault model: drop, duplicate, and reorder
// only — bit-flips or truncation would corrupt the in-band records the
// test is comparing against the host-side view.
var telChaos = netsim.FaultModel{Drop: 0.08, Duplicate: 0.08, Reorder: 0.15}

// TestInbandTelemetryMatchesHostSpans runs the seeded chaos line and,
// for every delivered packet, rebuilds the expected in-band record
// stack purely from the host-side hop spans of that delivery's trace —
// the two views must match byte for byte.
func TestInbandTelemetryMatchesHostSpans(t *testing.T) {
	n, rec := telemetryNetwork(t, 0x1237, telChaos)
	const nPkts = 40
	for i := 0; i < nPkts; i++ {
		if err := n.Inject("s1", 0, telPacket(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Run(0); err != nil {
		t.Fatal(err)
	}

	byID := map[uint64]*trace.Span{}
	for _, sp := range rec.Spans() {
		byID[sp.SpanID] = sp
	}
	swidOf := map[string]byte{"s1": 1, "s2": 2, "s3": 3}

	deliveries := n.Egress("s3")
	if len(deliveries) < nPkts/2 {
		t.Fatalf("only %d of %d packets egressed — fault model too hot for the check", len(deliveries), nPkts)
	}
	sawQueued := false
	for _, d := range deliveries {
		data := d.Data
		if len(data) < 17 || data[12] != 0x12 || data[13] != 0x66 {
			t.Fatalf("egress is not telemetry-encapsulated: % x", data[:17])
		}
		if d.Trace == 0 || d.Span == 0 {
			t.Fatalf("delivery lacks trace context: %+v", d)
		}

		// This copy's hop sequence, host-side: walk the span parent chain
		// from the delivery's emitting hop back to the injection.
		var hops []*trace.Span
		for id := d.Span; id != 0; {
			sp := byID[id]
			if sp == nil {
				t.Fatalf("span %d of trace %d missing from the ring", id, d.Trace)
			}
			if sp.TraceID != d.Trace {
				t.Fatalf("span %d belongs to trace %d, delivery says %d", id, sp.TraceID, d.Trace)
			}
			if sp.Kind == "hop" {
				hops = append(hops, sp)
			}
			id = sp.ParentID
		}
		for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
			hops[i], hops[j] = hops[j], hops[i]
		}

		count := int(data[14])
		if count != len(hops) {
			t.Fatalf("trace %d: in-band count %d != %d host-side hop spans", d.Trace, count, len(hops))
		}
		// Records sit newest-first after the shim; the inner IPv4 TTL has
		// been decremented once per hop, so record k (k decrements before
		// egress remained) carries egress TTL + k.
		innerTTL := data[17+3*count+8]
		expect := make([]byte, 0, 3*count)
		for k := 0; k < count; k++ {
			hop := hops[count-1-k]
			b0 := swidOf[hop.Name]
			if k == count-1 {
				b0 |= 0x80 // the oldest record carries the last-bit
			}
			if hop.Qdepth > 0 {
				sawQueued = true
			}
			expect = append(expect, b0, byte(hop.Qdepth), innerTTL+byte(k))
		}
		if got := data[17 : 17+3*count]; !bytes.Equal(got, expect) {
			t.Errorf("trace %d: in-band records % x != host-derived % x", d.Trace, got, expect)
		}
	}
	if !sawQueued {
		t.Error("no delivery saw a nonzero queue depth — the latency cross-check never exercised a held packet")
	}
}

// TestTelemetryChaosReproducible reruns the identical seeded chaos run:
// the egress stream (bytes, ports, trace/span ids) and the canonical
// span stream must be byte-identical, and a different seed must diverge.
func TestTelemetryChaosReproducible(t *testing.T) {
	run := func(seed uint64) (string, string) {
		n, rec := telemetryNetwork(t, seed, telChaos)
		for i := 0; i < 40; i++ {
			if err := n.Inject("s1", 0, telPacket(i)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := n.Run(0); err != nil {
			t.Fatal(err)
		}
		var eg strings.Builder
		for _, d := range n.Egress("s3") {
			fmt.Fprintf(&eg, "%s:%d trace=%d span=%d % x\n", d.Node, d.Port, d.Trace, d.Span, d.Data)
		}
		var canon []trace.Span
		for _, sp := range rec.Spans() {
			canon = append(canon, sp.Canonical())
		}
		b, err := json.Marshal(canon)
		if err != nil {
			t.Fatal(err)
		}
		return eg.String(), string(b)
	}
	e1, s1 := run(0xBEEF)
	e2, s2 := run(0xBEEF)
	if e1 != e2 {
		t.Error("same seed, different egress stream")
	}
	if s1 != s2 {
		t.Error("same seed, different canonical span stream")
	}
	if _, s3 := run(0xD1FF); s3 == s1 {
		t.Error("different seed reproduced the identical span stream")
	}
}
