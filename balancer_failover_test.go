package microp4_test

import (
	"fmt"
	"strings"
	"testing"

	"microp4"
	"microp4/internal/ctrlplane"
	"microp4/internal/issu"
	"microp4/internal/lib"
	"microp4/internal/netsim"
	"microp4/internal/obs"
	"microp4/internal/pkt"
)

// The load-balancer failover acceptance scenarios: the P11 front end
// keeps established connections pinned to their backends while the
// control plane churns the pool — first as a two-phase-commit rule
// rollout over ≥10% drop (plus dup and reorder) links, then across an
// in-service generation upgrade with a shadow canary. Both runs are
// seed-deterministic down to the byte.

// lbFaults is the acceptance fault model on the control channel.
var lbFaults = netsim.FaultModel{Drop: 0.12, Duplicate: 0.08, Reorder: 0.15}

// lbSeeds are the pinned acceptance seeds; every scenario must hold at
// each of them.
var lbSeeds = []uint64{42, 7, 1001}

// lbClientPkt is client i's VIP connection: one distinct (src, sport)
// tuple per client, all aimed at the configured virtual service.
func lbClientPkt(i int) []byte {
	return pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP,
			Src: 0x0A000000 | uint32(i+1), Dst: lib.VipAddr}).
		TCP(uint16(20000+i), lib.VipPort).Payload([]byte("req")).Bytes()
}

// lbExpectedBackend replicates the balancer's splitmix-style tuple hash
// and the control plane's bucket layout (InstallBalancerPool with the
// given shift) to predict which backend address a FRESH flow from
// client i must land on.
func lbExpectedBackend(i int, shift uint32) uint32 {
	h := (0x0A000000 | uint32(i+1)) ^ (uint32(20000+i) << 16) ^ 6
	h *= 0x9E3779B1
	h ^= h >> 15
	bk := (h&7+shift)%lib.NumBackends + 1
	return uint32(lib.NetB) | bk
}

// lbSrcOf / lbDstOf read the client and (possibly rewritten) server
// address out of an eth+IPv4 frame.
func lbSrcOf(data []byte) uint32 {
	return uint32(data[26])<<24 | uint32(data[27])<<16 | uint32(data[28])<<8 | uint32(data[29])
}
func lbDstOf(data []byte) uint32 {
	return uint32(data[30])<<24 | uint32(data[31])<<16 | uint32(data[32])<<8 | uint32(data[33])
}

// lbChurnPlan is the backend-pool remap as one transactional update:
// drop every (service, bucket) assignment and re-point the buckets one
// backend over — the same rotation lib.InstallBalancerPool(shift=1)
// installs directly.
func lbChurnPlan(peer string) []ctrlplane.TxnOp {
	ops := []ctrlplane.TxnOp{{Peer: peer, Op: ctrlplane.ClearTable("bal_i.bucket_tbl")}}
	for b := uint64(0); b < 8; b++ {
		ops = append(ops, ctrlplane.TxnOp{Peer: peer, Op: ctrlplane.AddEntry(
			"bal_i.bucket_tbl",
			[]ctrlplane.CtrlKey{ctrlplane.Exact(1), ctrlplane.Exact(b)},
			"bal_i.pick", (b+1)%lib.NumBackends+1)})
	}
	return ops
}

// lbChurnRun drives one full 2PC-churn scenario at a seed and returns
// its run signature (every egress frame plus the fault tallies). All
// behavioral assertions live here; the callers compare signatures.
func lbChurnRun(t *testing.T, seed uint64) string {
	t.Helper()
	const clients = 40
	dp := compileLib(t, "P11")
	n := netsim.New(seed)
	metrics := ctrlplane.NewMetrics(obs.NewRegistry())
	sw := dp.NewSwitch()
	installLibRules(sw, "P11")
	agent := ctrlplane.NewAgent(sw, ctrlplane.AgentConfig{
		Name: "lb", CtrlPort: 9, Metrics: metrics, Bus: n.Bus(),
	})
	if err := n.AddSwitch("lb", agent); err != nil {
		t.Fatal(err)
	}
	client, err := ctrlplane.NewClient(n, "ctrl", ctrlplane.Config{Seed: seed, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.AddPeer("lb", 1); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("ctrl", 1, "lb", 9, lbFaults); err != nil {
		t.Fatal(err)
	}
	run := func() {
		if _, err := n.Run(0); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 1: establish the client population — two packets per flow,
	// so every connection is past the learn state and pinned.
	for i := 0; i < clients; i++ {
		for j := 0; j < 2; j++ {
			if err := n.Inject("lb", 0, lbClientPkt(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	run()
	pinned := map[uint32]uint32{} // client src → backend
	for _, d := range n.Egress("lb") {
		pinned[lbSrcOf(d.Data)] = lbDstOf(d.Data)
	}
	for i := 0; i < clients; i++ {
		src := 0x0A000000 | uint32(i+1)
		if got, want := pinned[src], lbExpectedBackend(i, 0); got != want {
			t.Fatalf("client %d pinned to %08x, hash predicts %08x", i, got, want)
		}
	}

	// Phase 2: remap the pool as one transaction over the lossy control
	// channel. It must land atomically, and the losses must have forced
	// retransmissions for the run to mean anything.
	var result *ctrlplane.TxnResult
	if err := client.Transaction(lbChurnPlan("lb"),
		func(r ctrlplane.TxnResult) { result = &r }); err != nil {
		t.Fatal(err)
	}
	run()
	if result == nil || !result.Committed || len(result.PeerErrs) != 0 {
		t.Fatalf("pool churn did not commit cleanly: %+v", result)
	}
	if metrics.Retries.Value() == 0 {
		t.Error("churn transaction saw no retries over the 12-percent-drop links")
	}

	// Phase 3: every established flow must stay on its pinned backend
	// (≥99%), while fresh clients follow the remapped pool exactly.
	before := len(n.Egress("lb"))
	for i := 0; i < clients; i++ {
		if err := n.Inject("lb", 0, lbClientPkt(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := clients; i < 2*clients; i++ {
		if err := n.Inject("lb", 0, lbClientPkt(i)); err != nil {
			t.Fatal(err)
		}
	}
	run()
	sticky := 0
	for _, d := range n.Egress("lb")[before:] {
		src := lbSrcOf(d.Data)
		i := int(src&0xFFFFFF) - 1
		if i < clients {
			if lbDstOf(d.Data) == pinned[src] {
				sticky++
			}
		} else if got, want := lbDstOf(d.Data), lbExpectedBackend(i, 1); got != want {
			t.Errorf("fresh client %d landed on %08x, remapped pool predicts %08x", i, got, want)
		}
	}
	if sticky*100 < clients*99 {
		t.Errorf("only %d/%d established flows kept their backend through pool churn (<99%%)",
			sticky, clients)
	}

	var sig strings.Builder
	for _, d := range n.Egress("lb") {
		fmt.Fprintf(&sig, "egress %d %x\n", d.Port, d.Data)
	}
	st := n.Stats()
	for _, k := range netsim.FaultKinds {
		fmt.Fprintf(&sig, "fault %s %d\n", k, st.Faults[k])
	}
	fmt.Fprintf(&sig, "steps %d retries %d\n", st.Steps, metrics.Retries.Value())
	return sig.String()
}

// TestBalancerFailover2PCChurn is the first acceptance scenario: at
// every pinned seed, backend-pool churn lands as an atomic 2PC update
// over lossy links, established flows keep ≥99% stickiness, fresh
// flows follow the new map, and the whole run — faults, retries, every
// egress byte — replays identically for the same seed.
func TestBalancerFailover2PCChurn(t *testing.T) {
	sigs := map[uint64]string{}
	for _, seed := range lbSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			first := lbChurnRun(t, seed)
			if again := lbChurnRun(t, seed); again != first {
				t.Error("same seed produced a different run signature")
			}
			sigs[seed] = first
		})
	}
	if len(sigs) == len(lbSeeds) && sigs[42] == sigs[7] {
		t.Error("different seeds reproduced the identical signature — faults are not seed-driven")
	}
}

// p11V2Main ships the P11 v2 main module (the benign upgrade: a staged
// but unconfigured prio_tbl, byte-identical behavior until programmed).
func p11V2Main(t testing.TB) issu.Module {
	t.Helper()
	src, err := lib.Source("up4/p11_lb_v2.up4")
	if err != nil {
		t.Fatal(err)
	}
	return issu.Module{Name: "p11_lb_v2.up4", Source: src}
}

// p11Modules ships the library modules P11 composes.
func p11Modules(t testing.TB) []issu.Module {
	t.Helper()
	m, err := lib.Program("P11")
	if err != nil {
		t.Fatal(err)
	}
	var out []issu.Module
	for _, name := range m.Modules {
		src, err := lib.ModuleSource(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, issu.Module{Name: name + ".up4", Source: src})
	}
	return out
}

// TestBalancerUpgradeCanary is the second acceptance scenario: the live
// load balancer upgrades in service to P11 v2 over the same lossy
// links, with VIP traffic pumping through the shadow canary. The
// upgrade must commit, and the pinned flows must survive BOTH the
// generation cutover and a post-cutover pool churn — the stick values
// ride the flow-state carry.
func TestBalancerUpgradeCanary(t *testing.T) {
	for _, seed := range lbSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const clients = 24
			dp := compileLib(t, "P11")
			n := netsim.New(seed)
			metrics := issu.NewMetrics(obs.NewRegistry())
			sw := dp.NewSwitch()
			installLibRules(sw, "P11")
			agent := issu.NewAgent("lb", sw, issu.AgentConfig{
				UpgradePort: 9,
				Upgrader:    issu.UpgraderConfig{Metrics: metrics, Bus: n.Bus(), Now: n.Now},
			})
			if err := n.AddSwitch("lb", agent); err != nil {
				t.Fatal(err)
			}
			coord, err := issu.NewCoordinator(n, "coord", issu.CoordinatorConfig{
				Seed: seed, CanaryN: 24, Metrics: metrics,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := coord.AddPeer("lb", 1); err != nil {
				t.Fatal(err)
			}
			if err := n.Connect("coord", 1, "lb", 9, netsim.FaultModel{
				Drop: 0.10, Duplicate: 0.05, Reorder: 0.05,
			}); err != nil {
				t.Fatal(err)
			}
			run := func() {
				if _, err := n.Run(0); err != nil {
					t.Fatal(err)
				}
			}

			// Establish the population and note each flow's backend.
			for i := 0; i < clients; i++ {
				for j := 0; j < 2; j++ {
					if err := n.Inject("lb", 0, lbClientPkt(i)); err != nil {
						t.Fatal(err)
					}
				}
			}
			run()
			pinned := map[uint32]uint32{}
			for _, d := range n.Egress("lb") {
				pinned[lbSrcOf(d.Data)] = lbDstOf(d.Data)
			}
			if len(pinned) != clients {
				t.Fatalf("established %d/%d flows before the upgrade", len(pinned), clients)
			}

			// Timer-driven VIP traffic keeps the canary fed while the
			// coordinated upgrade rides the lossy channel.
			var upErr error
			upDone := false
			stopped := false
			i := 0
			var tick func()
			tick = func() {
				if stopped || i >= 5000 {
					return
				}
				_ = n.Inject("lb", 0, lbClientPkt(i%clients))
				i++
				n.After(6, tick)
			}
			if err := coord.Upgrade("P11v2", p11V2Main(t), p11Modules(t), func(e error) {
				upErr, upDone = e, true
				stopped = true
			}); err != nil {
				t.Fatal(err)
			}
			n.After(6, tick)
			run()
			if !upDone {
				t.Fatal("upgrade never resolved")
			}
			if upErr != nil {
				t.Fatalf("clean P11 upgrade aborted: %v", upErr)
			}
			if gen := sw.Generation(); gen != 2 {
				t.Errorf("live generation %d after cutover, want 2", gen)
			}
			if st := sw.CanaryStatus(); st.Active {
				t.Error("canary still attached after cutover")
			}
			// The new generation must know the v2 table to prove it
			// really is v2.
			if err := sw.TrySetDefault("prio_tbl", "keep"); err != nil {
				t.Errorf("post-cutover generation lacks the v2 prio_tbl: %v", err)
			}

			// Churn the pool on the NEW generation, then replay every
			// established flow: the carried flow state must keep ≥99% of
			// them on their original backends.
			sw.ClearTable("bal_i.bucket_tbl")
			for b := uint64(0); b < 8; b++ {
				sw.AddEntry("bal_i.bucket_tbl",
					[]microp4.Key{microp4.Exact(1), microp4.Exact(b)},
					"bal_i.pick", (b+1)%lib.NumBackends+1)
			}
			before := len(n.Egress("lb"))
			for i := 0; i < clients; i++ {
				if err := n.Inject("lb", 0, lbClientPkt(i)); err != nil {
					t.Fatal(err)
				}
			}
			run()
			sticky := 0
			for _, d := range n.Egress("lb")[before:] {
				if lbDstOf(d.Data) == pinned[lbSrcOf(d.Data)] {
					sticky++
				}
			}
			if sticky*100 < clients*99 {
				t.Errorf("only %d/%d flows kept their backend across cutover + churn (<99%%)",
					sticky, clients)
			}
		})
	}
}
