package analysis

import (
	"fmt"

	"microp4/internal/ir"
	"microp4/internal/linker"
)

// ControlSite is one control-flow decision site reachable from a linked
// program's main apply block, qualified by the module instance path it
// executes under. It extends the package's internal control-path walker
// (analysis.go) with the identities internal/equiv needs: which
// statement decides, under which instance, and what outcomes exist.
type ControlSite struct {
	Kind string // "table", "if", or "switch"
	Inst string // module instance path ("" = the main program)
	Prog string // program name the site belongs to

	// Stmt is the deciding statement (SApplyTable, SIf, or SSwitch); it
	// points into the linked IR and is stable for the linked program's
	// lifetime, so callers may key on it.
	Stmt *ir.Stmt

	// Table and FQ are set for kind "table": the definition and the
	// instance-qualified name control-plane entries use.
	Table *ir.Table
	FQ    string

	// Outcomes enumerates the site's distinguishable results:
	//   table:  "hit:<action>" per action, then "default:<action>" when
	//           the program declares a default action, else "miss"
	//   if:     "then", "else"
	//   switch: "case<i>" per non-default case, and "default" (also the
	//           no-match fall-through when no default case exists)
	Outcomes []string
}

// EnumerateControlSites walks the linked module graph from main,
// following module calls with instance qualification, and returns every
// table apply and every if/switch decision site syntactically reachable
// — including sites inside action bodies. Each (instance, statement)
// pair appears once, in first-visit (execution) order. Unlike the
// path enumeration it does not multiply branches, so it is linear in
// program size and needs no cap.
func EnumerateControlSites(l *linker.Linked) ([]*ControlSite, error) {
	type visitKey struct {
		inst string
		stmt *ir.Stmt
	}
	var sites []*ControlSite
	seen := make(map[visitKey]bool)

	var walkStmts func(p *ir.Program, inst string, ss []*ir.Stmt) error
	walkStmt := func(p *ir.Program, inst string, s *ir.Stmt) error {
		switch s.Kind {
		case ir.SIf:
			if !seen[visitKey{inst, s}] {
				seen[visitKey{inst, s}] = true
				sites = append(sites, &ControlSite{
					Kind: "if", Inst: inst, Prog: p.Name, Stmt: s,
					Outcomes: []string{"then", "else"},
				})
			}
			if err := walkStmts(p, inst, s.Then); err != nil {
				return err
			}
			return walkStmts(p, inst, s.Else)
		case ir.SSwitch:
			if !seen[visitKey{inst, s}] {
				seen[visitKey{inst, s}] = true
				var outs []string
				for i, c := range s.Cases {
					if !c.Default {
						outs = append(outs, fmt.Sprintf("case%d", i))
					}
				}
				outs = append(outs, "default")
				sites = append(sites, &ControlSite{
					Kind: "switch", Inst: inst, Prog: p.Name, Stmt: s,
					Outcomes: outs,
				})
			}
			for _, c := range s.Cases {
				if err := walkStmts(p, inst, c.Body); err != nil {
					return err
				}
			}
			return nil
		case ir.SApplyTable:
			tbl := p.Tables[s.Table]
			if tbl == nil {
				return fmt.Errorf("%s applies unknown table %s", p.Name, s.Table)
			}
			if !seen[visitKey{inst, s}] {
				seen[visitKey{inst, s}] = true
				fq := s.Table
				if inst != "" {
					fq = inst + "." + s.Table
				}
				var outs []string
				for _, a := range tbl.Actions {
					outs = append(outs, "hit:"+a)
				}
				if tbl.Default != nil {
					outs = append(outs, "default:"+tbl.Default.Name)
				} else {
					outs = append(outs, "miss")
				}
				sites = append(sites, &ControlSite{
					Kind: "table", Inst: inst, Prog: p.Name, Stmt: s,
					Table: tbl, FQ: fq, Outcomes: outs,
				})
			}
			// Branch sites inside action bodies are decision sites too.
			for _, a := range tbl.Actions {
				act := p.Actions[a]
				if act == nil {
					return fmt.Errorf("%s: table %s references unknown action %s", p.Name, tbl.Name, a)
				}
				if err := walkStmts(p, inst, act.Body); err != nil {
					return err
				}
			}
			if tbl.Default != nil {
				if act := p.Actions[tbl.Default.Name]; act != nil {
					if err := walkStmts(p, inst, act.Body); err != nil {
						return err
					}
				}
			}
			return nil
		case ir.SCallModule:
			callee := l.Modules[s.Module]
			if callee == nil {
				return fmt.Errorf("%s calls unlinked module %s", p.Name, s.Module)
			}
			childInst := s.Instance
			if inst != "" {
				childInst = inst + "." + s.Instance
			}
			return walkStmts(callee, childInst, callee.Apply)
		}
		return nil
	}
	walkStmts = func(p *ir.Program, inst string, ss []*ir.Stmt) error {
		for _, s := range ss {
			if err := walkStmt(p, inst, s); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walkStmts(l.Main, "", l.Main.Apply); err != nil {
		return nil, err
	}
	return sites, nil
}
