package analysis

import (
	"fmt"
	"testing"

	"microp4/internal/frontend"
	"microp4/internal/ir"
	"microp4/internal/linker"
)

func analyzeSrc(t *testing.T, src string) *Result {
	t.Helper()
	p, err := frontend.CompileModule("t.up4", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	l, err := linker.Link(p)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	res, err := Analyze(l)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

// Headers extracted but never emitted shrink the packet on every path
// (§5.2).
func TestUnEmittedHeaderShrinks(t *testing.T) {
	res := analyzeSrc(t, `
struct empty_t { }
header a_h { bit<32> x; }
header b_h { bit<64> y; }
struct h_t { a_h a; b_h b; }
program Strip : implements Unicast {
  parser P(extractor ex, pkt p, out h_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.a); ex.extract(p, h.b); transition accept; }
  }
  control C(pkt p, inout h_t h, inout empty_t m, im_t im) { apply { } }
  control D(emitter em, pkt p, in h_t h) { apply { em.emit(p, h.a); } }
}
`)
	st := res.Main()
	if st.Dec != 8 {
		t.Errorf("δ = %d, want 8 (b_h parsed, never emitted)", st.Dec)
	}
	if st.El != 12 || st.Bs != 12 {
		t.Errorf("El/Bs = %d/%d, want 12/12", st.El, st.Bs)
	}
}

// Table actions branch the control paths: Δ and δ take the maxima over
// per-action outcomes.
func TestTableActionBranching(t *testing.T) {
	res := analyzeSrc(t, `
struct empty_t { }
header a_h { bit<32> x; }
header big_h { bit<64> y1; bit<64> y2; }
struct h_t { a_h a; big_h big; }
program Branchy : implements Unicast {
  parser P(extractor ex, pkt p, out h_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.a); transition accept; }
  }
  control C(pkt p, inout h_t h, inout empty_t m, im_t im) {
    action grow() { h.big.setValid(); }
    action shrink() { h.a.setInvalid(); }
    action keep() { }
    table t {
      key = { h.a.x : exact; }
      actions = { grow; shrink; keep; }
      default_action = keep;
    }
    apply { t.apply(); }
  }
  control D(emitter em, pkt p, in h_t h) { apply { em.emit(p, h.a); em.emit(p, h.big); } }
}
`)
	st := res.Main()
	if st.Inc != 16 {
		t.Errorf("Δ = %d, want 16 (grow adds big_h)", st.Inc)
	}
	if st.Dec != 4 {
		t.Errorf("δ = %d, want 4 (shrink removes a_h)", st.Dec)
	}
	if st.Bs != 4+16 {
		t.Errorf("Bs = %d, want 20", st.Bs)
	}
	if st.CtrlPaths != 3 {
		t.Errorf("control paths = %d, want 3 (one per action)", st.CtrlPaths)
	}
}

// Beyond the path cap, accumulators merge into a sound upper bound.
func TestControlPathMergeCap(t *testing.T) {
	p := &ir.Program{
		Name: "Huge", Interface: "Unicast",
		Headers: map[string]*ir.HeaderType{
			"h_h": {Name: "h_h", BitWidth: 8, Fields: []ir.HeaderField{{Name: "f", Width: 8}}},
		},
		Decls:   []ir.Decl{{Path: "x", Kind: ir.DeclBits, Width: 8}, {Path: "$hdr.h", Kind: ir.DeclHeader, TypeName: "h_h"}},
		Actions: map[string]*ir.Action{},
		Tables:  map[string]*ir.Table{},
	}
	// 20 sequential two-way branches = 2^20 paths, beyond the cap.
	for i := 0; i < 20; i++ {
		p.Apply = append(p.Apply, &ir.Stmt{
			Kind: ir.SIf,
			Cond: &ir.Expr{Kind: ir.EBin, Op: "==", Bool: true, Width: 1,
				X: ir.Ref("x", 8), Y: ir.Const(uint64(i), 8)},
			Then: []*ir.Stmt{{Kind: ir.SSetValid, Hdr: "$hdr.h"}},
			Else: []*ir.Stmt{{Kind: ir.SSetInvalid, Hdr: "$hdr.h"}},
		})
	}
	l := &linker.Linked{Main: p, Modules: map[string]*ir.Program{}}
	res, err := Analyze(l)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Main()
	if !st.Merged {
		t.Error("path cap not triggered")
	}
	// Upper bound: at most 20 setValids on a (merged) path.
	if st.Inc < 1 || st.Inc > 20 {
		t.Errorf("merged Δ = %d, out of the sound range", st.Inc)
	}
}

// Varbit headers contribute their max to El and their fixed part to
// MinBytes.
func TestVarbitBounds(t *testing.T) {
	res := analyzeSrc(t, `
struct empty_t { }
header opt_h { bit<16> kind; varbit<64> data; }
struct h_t { opt_h opt; }
program V : implements Unicast {
  parser P(extractor ex, pkt p, out h_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.opt, (bit<32>)h.opt.kind); transition accept; }
  }
  control C(pkt p, inout h_t h, inout empty_t m, im_t im) { apply { } }
  control D(emitter em, pkt p, in h_t h) { apply { em.emit(p, h.opt); } }
}
`)
	st := res.Main()
	if st.El != 10 {
		t.Errorf("El = %d, want 10 (2 fixed + 8 varbit max)", st.El)
	}
	if st.MinPkt != 2 {
		t.Errorf("MinPkt = %d, want 2 (fixed part only)", st.MinPkt)
	}
}

// Exit statements end control paths early but never under-count.
func TestExitPath(t *testing.T) {
	res := analyzeSrc(t, `
struct empty_t { }
header a_h { bit<32> x; }
struct h_t { a_h a; }
program E : implements Unicast {
  parser P(extractor ex, pkt p, out h_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.a); transition accept; }
  }
  control C(pkt p, inout h_t h, inout empty_t m, im_t im) {
    apply {
      if (h.a.x == 0) { exit; }
      h.a.setInvalid();
    }
  }
  control D(emitter em, pkt p, in h_t h) { apply { em.emit(p, h.a); } }
}
`)
	if res.Main().Dec != 4 {
		t.Errorf("δ = %d, want 4", res.Main().Dec)
	}
}

func TestParserPathsExported(t *testing.T) {
	p, err := frontend.CompileModule("pp.up4", fmt.Sprintf(`
struct empty_t { }
header a_h { bit<16> t; }
header b_h { bit<32> v; }
struct h_t { a_h a; b_h b; }
program PP : implements Unicast {
  parser P(extractor ex, pkt p, out h_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.a);
      transition select(h.a.t) { %d: more; default: accept; };
    }
    state more { ex.extract(p, h.b); transition accept; }
  }
  control C(pkt p, inout h_t h, inout empty_t m, im_t im) { apply { } }
  control D(emitter em, pkt p, in h_t h) { apply { em.emit(p, h.a); em.emit(p, h.b); } }
}`, 0x42))
	if err != nil {
		t.Fatal(err)
	}
	paths, err := EnumerateParserPaths(p)
	if err != nil {
		t.Fatal(err)
	}
	acc := Accepted(paths)
	if len(acc) != 2 {
		t.Fatalf("accepted paths = %d, want 2", len(acc))
	}
	// The deep path carries the constraint and both extracts with offsets.
	var deep *ParserPath
	for _, pp := range acc {
		if pp.Bytes == 6 {
			deep = pp
		}
	}
	if deep == nil {
		t.Fatal("6-byte path missing")
	}
	if len(deep.Extracts) != 2 || deep.Extracts[1].ByteOff != 2 {
		t.Errorf("extracts = %+v", deep.Extracts)
	}
	if len(deep.Constraints) != 1 || deep.Constraints[0].Case.Values[0] != 0x42 {
		t.Errorf("constraints = %+v", deep.Constraints)
	}
}

// Explicit reject transitions become enumerated rejecting paths with
// their own coverage keys — internal/equiv must witness them too.
func TestParserPathsExplicitReject(t *testing.T) {
	p, err := frontend.CompileModule("rej.up4", `
struct empty_t { }
header a_h { bit<8> kind; }
struct h_t { a_h a; }
program Rej : implements Unicast {
  parser P(extractor ex, pkt p, out h_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.a);
      transition select(h.a.kind) { 1: accept; default: reject; };
    }
  }
  control C(pkt p, inout h_t h, inout empty_t m, im_t im) { apply { } }
  control D(emitter em, pkt p, in h_t h) { apply { em.emit(p, h.a); } }
}`)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := EnumerateParserPaths(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2 (accept + explicit reject)", len(paths))
	}
	var rej *ParserPath
	for _, pp := range paths {
		if pp.Rejected {
			rej = pp
		}
	}
	if rej == nil {
		t.Fatal("rejecting path not enumerated")
	}
	if got := rej.Key(); got != "start[1]:reject" {
		t.Errorf("reject path key = %q, want start[1]:reject", got)
	}
	if len(rej.Extracts) != 1 || rej.Bytes != 1 {
		t.Errorf("reject path still records the extraction: %+v", rej.Extracts)
	}
}

// A select with only a default case still records the decision (case
// index 0, Default), so path keys stay distinct from direct transitions.
func TestParserPathsDefaultOnlySelect(t *testing.T) {
	p, err := frontend.CompileModule("def.up4", `
struct empty_t { }
header a_h { bit<8> kind; }
struct h_t { a_h a; }
program DefOnly : implements Unicast {
  parser P(extractor ex, pkt p, out h_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.a);
      transition select(h.a.kind) { default: accept; };
    }
  }
  control C(pkt p, inout h_t h, inout empty_t m, im_t im) { apply { } }
  control D(emitter em, pkt p, in h_t h) { apply { em.emit(p, h.a); } }
}`)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := EnumerateParserPaths(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(paths))
	}
	pp := paths[0]
	if pp.Key() != "start[0]:accept" {
		t.Errorf("key = %q, want start[0]:accept", pp.Key())
	}
	if len(pp.Constraints) != 1 || !pp.Constraints[0].Default || pp.Constraints[0].Case != nil {
		t.Errorf("constraint = %+v, want default with no case", pp.Constraints)
	}
}

// Varbit extractions carry both bounds on a path: Bytes counts the
// varbit at its maximum, MinBytes at its minimum (fixed part only).
func TestParserPathsVarbitMinMax(t *testing.T) {
	p, err := frontend.CompileModule("vb.up4", `
struct empty_t { }
header opt_h { bit<16> kind; varbit<64> data; }
struct h_t { opt_h opt; }
program VB : implements Unicast {
  parser P(extractor ex, pkt p, out h_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.opt, (bit<32>)h.opt.kind); transition accept; }
  }
  control C(pkt p, inout h_t h, inout empty_t m, im_t im) { apply { } }
  control D(emitter em, pkt p, in h_t h) { apply { em.emit(p, h.opt); } }
}`)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := EnumerateParserPaths(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(paths))
	}
	pp := paths[0]
	if !pp.Extracts[0].Varbit {
		t.Error("extract not flagged varbit")
	}
	if pp.Bytes != 10 {
		t.Errorf("Bytes = %d, want 10 (2 fixed + 8 varbit max)", pp.Bytes)
	}
	if pp.MinBytes != 2 {
		t.Errorf("MinBytes = %d, want 2 (fixed part only)", pp.MinBytes)
	}
}
