// Package analysis implements µP4C's static analysis (paper §5.2) and
// the path-level program views built on top of it.
//
// # Operational region
//
// Analyze computes, for every program of a linked composition, the
// quantities of Eqs. 1–4: parser extract-length Elp, control
// extract-length Elc, maximum packet-size increase Δ (Inc) and decrease
// δ (Dec), byte-stack size Bs = El + Δ, and the minimum packet size the
// program accepts. Modules are analyzed bottom-up in link order, so a
// caller's figures fold in its callees'.
//
// # Parser paths
//
// EnumerateParserPaths performs a DFS over a parser FSM and returns one
// ParserPath per start→accept and start→reject route, carrying the
// extraction layout (Extracts, with byte offsets into the program's
// packet view) and the select decision taken at each step
// (Constraints). The midend's MAT homogenization derives one table
// entry per path from this; internal/equiv derives the coverage
// universe and per-path witness constraints from the same enumeration,
// so the two cannot drift apart.
//
// Invariants callers may rely on:
//
//   - The parse graph must be acyclic. Header-stack loops are unrolled
//     by midend.Transform before analysis; a cycle is an error, not a
//     truncated enumeration.
//   - Enumeration is exhaustive up to maxParserPaths (8192) paths; past
//     the cap the program is rejected rather than silently sampled.
//   - Rejecting paths are enumerated only for *explicit* reject targets
//     (including the reject states stack unrolling synthesizes for
//     overflow). A select with no default case also rejects on no
//     match; those implicit paths are one per selecting prefix and are
//     derived by callers from Constraints (see internal/equiv).
//   - Varbit headers contribute their maximum size to Bytes and their
//     minimum (fixed part only) to MinBytes; Extract.Varbit marks them.
//   - ParserPath.Key is unique within one parser's enumeration.
//
// # Control sites
//
// EnumerateControlSites walks the linked module graph from the main
// apply block — through module calls, table actions, and branch arms —
// and returns every table apply and if/switch decision site with its
// instance-qualified identity and outcome alphabet. It is the
// control-flow counterpart of the parser-path universe: linear in
// program size, no branch multiplication, no cap.
//
// # Worked example
//
// For a parser
//
//	state start { ex.extract(p, h.eth);
//	  transition select(h.eth.etherType) { 0x0800: parse_ipv4; default: accept; }; }
//	state parse_ipv4 { ex.extract(p, h.ipv4); transition accept; }
//
// enumeration yields two paths:
//
//	start[0]>parse_ipv4:accept  — Extracts [eth@0 (14B), ipv4@14 (20B)],
//	                              Constraints [etherType case 0x0800]
//	start[1]:accept             — Extracts [eth@0 (14B)], Constraints [default]
//
// A witness for the first path must place 0x0800 at bytes 12–13 and be
// ≥ 34 bytes long; for the second it must avoid 0x0800 there. That is
// exactly the byte-level synthesis internal/equiv performs.
package analysis
