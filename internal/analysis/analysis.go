package analysis

import (
	"fmt"

	"microp4/internal/ir"
	"microp4/internal/linker"
)

// ProgStats is the operational region of one program (all byte units).
type ProgStats struct {
	Name        string
	Elp         int // parser extract-length (max bytes to reach accept)
	Elc         int // control extract-length (Eq. 3, maxed over paths)
	El          int // Elp + Elc
	Inc         int // Δ: max packet-size increase (Eq. 1, maxed over paths)
	Dec         int // δ: max packet-size decrease (Eq. 2, maxed over paths)
	Bs          int // byte-stack size: El + Δ (Eq. 4)
	MinPkt      int // min-packet-size to be accepted
	ParserPaths int // number of parser paths enumerated
	CtrlPaths   int // number of control paths enumerated (capped)
	Merged      bool
}

// Result maps program name to its stats.
type Result struct {
	Stats map[string]*ProgStats
	Order []string // bottom-up topological order, main last
}

// Main returns the stats of the main (last) program.
func (r *Result) Main() *ProgStats { return r.Stats[r.Order[len(r.Order)-1]] }

// maxCtrlPaths bounds control-path enumeration. Beyond the cap, paths are
// merged by componentwise max — a sound upper bound for sizing (§5.2
// discusses why µP4C's analysis need not enumerate table entries; we
// additionally bound structural blowup).
const maxCtrlPaths = 65536

// Analyze computes the operational region of every linked program.
func Analyze(l *linker.Linked) (*Result, error) {
	res := &Result{Stats: make(map[string]*ProgStats)}
	for _, p := range l.TopoOrder() {
		st, err := analyzeProgram(p, res.Stats)
		if err != nil {
			return nil, err
		}
		res.Stats[p.Name] = st
		res.Order = append(res.Order, p.Name)
	}
	return res, nil
}

func analyzeProgram(p *ir.Program, done map[string]*ProgStats) (*ProgStats, error) {
	st := &ProgStats{Name: p.Name}
	// Parser analysis.
	if p.Parser != nil {
		paths, err := EnumerateParserPaths(p)
		if err != nil {
			return nil, err
		}
		st.ParserPaths = len(Accepted(paths))
		minPkt := -1
		for _, pp := range paths {
			if pp.Rejected {
				// Rejected paths drop the packet; they still bound the
				// byte-stack (their select keys read extracted bytes).
				if pp.Bytes > st.Elp {
					st.Elp = pp.Bytes
				}
				continue
			}
			if pp.Bytes > st.Elp {
				st.Elp = pp.Bytes
			}
			if minPkt < 0 || pp.MinBytes < minPkt {
				minPkt = pp.MinBytes
			}
		}
		if minPkt > 0 {
			st.MinPkt = minPkt
		}
	}
	// Headers extracted by the parser but never emitted by the deparser
	// shrink the packet on every path (§5.2).
	unEmitted := unEmittedExtractBytes(p)

	// Control-path enumeration.
	accs, merged, err := enumerateControlPaths(p, done)
	if err != nil {
		return nil, err
	}
	st.Merged = merged
	st.CtrlPaths = len(accs)
	minCallee := -1
	for _, a := range accs {
		if a.inc > st.Inc {
			st.Inc = a.inc
		}
		if a.dec+unEmitted > st.Dec {
			st.Dec = a.dec + unEmitted
		}
		if a.elc > st.Elc {
			st.Elc = a.elc
		}
		if minCallee < 0 || a.minPkt < minCallee {
			minCallee = a.minPkt
		}
	}
	if minCallee > 0 {
		st.MinPkt += minCallee
	}
	st.El = st.Elp + st.Elc
	st.Bs = st.El + st.Inc
	return st, nil
}

// unEmittedExtractBytes sums the sizes of headers that the parser
// extracts but the deparser never emits.
func unEmittedExtractBytes(p *ir.Program) int {
	if p.Parser == nil {
		return 0
	}
	emitted := make(map[string]bool)
	ir.WalkStmts(p.Deparser, func(s *ir.Stmt) {
		if s.Kind == ir.SEmit {
			emitted[s.Hdr] = true
		}
	})
	seen := make(map[string]bool)
	total := 0
	for _, state := range p.Parser.States {
		ir.WalkStmts(state.Stmts, func(s *ir.Stmt) {
			if s.Kind != ir.SExtract || emitted[s.Hdr] || seen[s.Hdr] {
				return
			}
			seen[s.Hdr] = true
			if ht := p.HeaderOf(s.Hdr); ht != nil {
				total += ht.ByteSize()
			}
		})
	}
	return total
}

// ----------------------------------------------------------------------------
// Control paths

// ctrlAcc accumulates Eq. 1–3 quantities along one control path.
type ctrlAcc struct {
	inc    int // iψ(x): Σ setValid sizes + Σ Δ(callee)
	dec    int // dψ(x): Σ setInvalid sizes + Σ δ(callee)
	decSum int // Σ δ over *callees only*, for the Eq. 3 prefix
	elc    int // max over callees of (prefix δ sum + El(callee))
	minPkt int // Σ MinPkt(callee)
}

func mergeMax(a, b ctrlAcc) ctrlAcc {
	if b.inc > a.inc {
		a.inc = b.inc
	}
	if b.dec > a.dec {
		a.dec = b.dec
	}
	if b.decSum > a.decSum {
		a.decSum = b.decSum
	}
	if b.elc > a.elc {
		a.elc = b.elc
	}
	if b.minPkt < a.minPkt { // min-packet wants the minimum
		a.minPkt = b.minPkt
	}
	return a
}

// enumerateControlPaths walks the structural CFG of p's apply block,
// branching at if/switch statements and at tables (one branch per
// action). It returns one accumulator per path, or merged upper bounds
// once the cap is exceeded.
func enumerateControlPaths(p *ir.Program, done map[string]*ProgStats) ([]ctrlAcc, bool, error) {
	walker := &ctrlWalker{p: p, done: done}
	final, err := walker.walkStmts(p.Apply, []ctrlAcc{{}})
	if err != nil {
		return nil, false, err
	}
	return final, walker.merged, nil
}

type ctrlWalker struct {
	p      *ir.Program
	done   map[string]*ProgStats
	merged bool
}

func (w *ctrlWalker) cap(accs []ctrlAcc) []ctrlAcc {
	if len(accs) <= maxCtrlPaths {
		return accs
	}
	w.merged = true
	m := accs[0]
	for _, a := range accs[1:] {
		m = mergeMax(m, a)
	}
	return []ctrlAcc{m}
}

func (w *ctrlWalker) walkStmts(ss []*ir.Stmt, accs []ctrlAcc) ([]ctrlAcc, error) {
	var err error
	for _, s := range ss {
		accs, err = w.walkStmt(s, accs)
		if err != nil {
			return nil, err
		}
		accs = w.cap(accs)
	}
	return accs, nil
}

func (w *ctrlWalker) walkStmt(s *ir.Stmt, accs []ctrlAcc) ([]ctrlAcc, error) {
	switch s.Kind {
	case ir.SSetValid, ir.SSetInvalid:
		ht := w.p.HeaderOf(s.Hdr)
		if ht == nil {
			return nil, fmt.Errorf("%s: %s of unknown header %s", w.p.Name, s.Kind, s.Hdr)
		}
		sz := ht.ByteSize()
		for i := range accs {
			if s.Kind == ir.SSetValid {
				accs[i].inc += sz
			} else {
				accs[i].dec += sz
			}
		}
		return accs, nil
	case ir.SCallModule:
		st, ok := w.done[s.Module]
		if !ok {
			return nil, fmt.Errorf("%s calls %s, which has not been analyzed (link order bug)", w.p.Name, s.Module)
		}
		for i := range accs {
			// Eq. 3: this callee's parser needs its El bytes beyond the
			// maximum shrink already caused by predecessor callees.
			if v := accs[i].decSum + st.El; v > accs[i].elc {
				accs[i].elc = v
			}
			accs[i].inc += st.Inc
			accs[i].dec += st.Dec
			accs[i].decSum += st.Dec
			accs[i].minPkt += st.MinPkt
		}
		return accs, nil
	case ir.SIf:
		thenAccs, err := w.walkStmts(s.Then, cloneAccs(accs))
		if err != nil {
			return nil, err
		}
		elseAccs, err := w.walkStmts(s.Else, accs)
		if err != nil {
			return nil, err
		}
		return append(thenAccs, elseAccs...), nil
	case ir.SSwitch:
		var out []ctrlAcc
		hasDefault := false
		for _, c := range s.Cases {
			if c.Default {
				hasDefault = true
			}
			ca, err := w.walkStmts(c.Body, cloneAccs(accs))
			if err != nil {
				return nil, err
			}
			out = append(out, ca...)
		}
		if !hasDefault {
			out = append(out, accs...)
		}
		return out, nil
	case ir.SApplyTable:
		tbl := w.p.Tables[s.Table]
		if tbl == nil {
			return nil, fmt.Errorf("%s applies unknown table %s", w.p.Name, s.Table)
		}
		actions := append([]string(nil), tbl.Actions...)
		if tbl.Default != nil && !contains(actions, tbl.Default.Name) {
			actions = append(actions, tbl.Default.Name)
		}
		if len(actions) == 0 {
			return accs, nil
		}
		var out []ctrlAcc
		for _, an := range actions {
			act := w.p.Actions[an]
			if act == nil {
				return nil, fmt.Errorf("%s: table %s references unknown action %s", w.p.Name, tbl.Name, an)
			}
			ca, err := w.walkStmts(act.Body, cloneAccs(accs))
			if err != nil {
				return nil, err
			}
			out = append(out, ca...)
		}
		return out, nil
	case ir.SExit:
		// Path terminates; keep its accumulators as-is (they are final).
		return accs, nil
	default:
		return accs, nil
	}
}

func cloneAccs(accs []ctrlAcc) []ctrlAcc {
	return append([]ctrlAcc(nil), accs...)
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
