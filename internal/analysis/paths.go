package analysis

import (
	"fmt"
	"strings"

	"microp4/internal/ir"
)

// Extract records one header extraction along a parser path.
type Extract struct {
	Hdr     string // header instance path
	ByteOff int    // byte offset of the header within the program's packet view
	Bytes   int    // size extracted (max size for varbit headers)
	Varbit  bool
}

// Constraint records the select decision taken at the end of a state.
type Constraint struct {
	Exprs     []*ir.Expr    // the select expressions (unsubstituted)
	Case      *ir.TransCase // the case taken (nil when Default)
	CaseIndex int
	Default   bool
}

// PathStep is one state visited along a parser path: its statements and
// the select decision (if any) that led out of it. The interleaving
// matters for forward substitution (§5.3): a select must be evaluated in
// the variable environment as of that state.
type PathStep struct {
	State      string
	Stmts      []*ir.Stmt
	Constraint *Constraint // nil for direct transitions
}

// ParserPath is one start→accept (or start→reject) path through a
// parser FSM. Rejected paths matter for MAT synthesis: they become
// explicit parse-error entries so a rejecting select decision cannot
// fall through to a shorter path's entry.
type ParserPath struct {
	States      []string
	Steps       []PathStep
	Stmts       []*ir.Stmt // every statement along the path, in order
	Extracts    []Extract
	Constraints []Constraint
	Bytes       int  // total bytes extracted (varbit at max)
	MinBytes    int  // total bytes with varbit at min
	Rejected    bool // path ends in reject instead of accept
}

// Key canonically identifies a path within its parser: the visited
// state sequence, the select case index taken out of each selecting
// state, and the terminal disposition. The case indices matter — two
// select cases may share a target state, so the state sequence alone
// can collide. Keys are unique across one parser's enumerated paths
// and are the coverage-set members internal/equiv checks off.
func (p *ParserPath) Key() string {
	var b strings.Builder
	for i, st := range p.Steps {
		if i > 0 {
			b.WriteByte('>')
		}
		b.WriteString(st.State)
		if st.Constraint != nil {
			fmt.Fprintf(&b, "[%d]", st.Constraint.CaseIndex)
		}
	}
	if p.Rejected {
		b.WriteString(":reject")
	} else {
		b.WriteString(":accept")
	}
	return b.String()
}

// Accepted filters a path list down to accepting paths.
func Accepted(paths []*ParserPath) []*ParserPath {
	out := make([]*ParserPath, 0, len(paths))
	for _, p := range paths {
		if !p.Rejected {
			out = append(out, p)
		}
	}
	return out
}

// maxParserPaths bounds parser path enumeration (the transformed MAT gets
// one entry per path; beyond this the program is rejected).
const maxParserPaths = 8192

// EnumerateParserPaths returns every start→accept path of p's parser.
// The parse graph must be acyclic (header-stack loops are unrolled by the
// midend before analysis).
func EnumerateParserPaths(p *ir.Program) ([]*ParserPath, error) {
	if p.Parser == nil {
		return nil, nil
	}
	start := p.Parser.State("start")
	if start == nil {
		return nil, fmt.Errorf("%s: parser has no start state", p.Name)
	}
	var paths []*ParserPath
	onStack := make(map[string]bool)
	var dfs func(st *ir.State, cur *ParserPath) error
	dfs = func(st *ir.State, cur *ParserPath) error {
		if onStack[st.Name] {
			return fmt.Errorf("%s: parse graph has a cycle through state %s (header-stack loops must be unrolled first)", p.Name, st.Name)
		}
		onStack[st.Name] = true
		defer func() { onStack[st.Name] = false }()

		next := &ParserPath{
			States:      append(append([]string(nil), cur.States...), st.Name),
			Steps:       append(append([]PathStep(nil), cur.Steps...), PathStep{State: st.Name, Stmts: st.Stmts}),
			Stmts:       append(append([]*ir.Stmt(nil), cur.Stmts...), st.Stmts...),
			Extracts:    append([]Extract(nil), cur.Extracts...),
			Constraints: append([]Constraint(nil), cur.Constraints...),
			Bytes:       cur.Bytes,
			MinBytes:    cur.MinBytes,
		}
		for _, s := range st.Stmts {
			if s.Kind != ir.SExtract {
				continue
			}
			ht := p.HeaderOf(s.Hdr)
			if ht == nil {
				return fmt.Errorf("%s: extract of unknown header %s", p.Name, s.Hdr)
			}
			ex := Extract{Hdr: s.Hdr, ByteOff: next.Bytes, Bytes: ht.ByteSize(), Varbit: ht.HasVarbit}
			next.Extracts = append(next.Extracts, ex)
			next.Bytes += ex.Bytes
			min := ex.Bytes
			if ht.HasVarbit {
				fixed := 0
				for _, f := range ht.Fields {
					if !f.Varbit {
						fixed += f.Width
					}
				}
				min = (fixed + 7) / 8
			}
			next.MinBytes += min
		}

		goTo := func(target string, c *Constraint) error {
			if c != nil {
				next2 := *next
				next2.Constraints = append(append([]Constraint(nil), next.Constraints...), *c)
				// Attach the taken constraint to this path's last step.
				next2.Steps = append([]PathStep(nil), next.Steps...)
				last := next2.Steps[len(next2.Steps)-1]
				last.Constraint = c
				next2.Steps[len(next2.Steps)-1] = last
				return followTarget(p, target, &next2, dfs, &paths)
			}
			return followTarget(p, target, next, dfs, &paths)
		}

		tr := st.Trans
		if tr == nil {
			return nil // implicit reject: path dropped
		}
		switch tr.Kind {
		case "direct":
			return goTo(tr.Target, nil)
		case "select":
			for i, c := range tr.Cases {
				cst := Constraint{Exprs: tr.Exprs, CaseIndex: i, Default: c.Default}
				if !c.Default {
					cst.Case = c
				}
				if err := goTo(c.Target, &cst); err != nil {
					return err
				}
				if len(paths) > maxParserPaths {
					return fmt.Errorf("%s: more than %d parser paths", p.Name, maxParserPaths)
				}
			}
			return nil
		}
		return fmt.Errorf("%s: unknown transition kind %q", p.Name, tr.Kind)
	}
	if err := dfs(start, &ParserPath{}); err != nil {
		return nil, err
	}
	return paths, nil
}

func followTarget(p *ir.Program, target string, path *ParserPath, dfs func(*ir.State, *ParserPath) error, paths *[]*ParserPath) error {
	switch target {
	case "accept":
		done := *path
		*paths = append(*paths, &done)
		return nil
	case "reject":
		done := *path
		done.Rejected = true
		*paths = append(*paths, &done)
		return nil
	}
	st := p.Parser.State(target)
	if st == nil {
		return fmt.Errorf("%s: transition to unknown state %s", p.Name, target)
	}
	return dfs(st, path)
}
