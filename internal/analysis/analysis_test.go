package analysis

import (
	"testing"
	"testing/quick"

	"microp4/internal/frontend"
	"microp4/internal/ir"
	"microp4/internal/linker"
)

// Shared header declarations used by the Fig. 9 programs: eth 14B,
// mpls 4B, ipv6 40B, ipv4 20B — the exact sizes in the figure.
const fig9Headers = `
struct empty_t { }
header eth_h  { bit<48> dst; bit<48> src; bit<16> etherType; }
header mpls_h { bit<20> label; bit<3> tc; bit<1> s; bit<8> ttl; }
header ipv6_h { bit<4> version; bit<8> tclass; bit<20> flowlabel; bit<16> plen;
                bit<8> nexthdr; bit<8> hoplimit; bit<64> srcHi; bit<64> srcLo;
                bit<64> dstHi; bit<64> dstLo; }
header ipv4_h { bit<4> version; bit<4> ihl; bit<8> tos; bit<16> totalLen;
                bit<16> id; bit<3> flags; bit<13> frag; bit<8> ttl;
                bit<8> protocol; bit<16> csum; bit<32> src; bit<32> dst; }
`

const callee1Src = fig9Headers + `
struct c1hdr_t { eth_h eth; mpls_h mpls; ipv6_h ipv6; ipv4_h ipv4; }
program Callee1 : implements Unicast {
  parser P(extractor ex, pkt p, out c1hdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.eth); transition parse_mpls; }
    state parse_mpls { ex.extract(p, h.mpls); transition parse_ipv6; }
    state parse_ipv6 { ex.extract(p, h.ipv6); transition accept; }
  }
  control C(pkt p, inout c1hdr_t h, inout empty_t m, im_t im) {
    apply {
      h.mpls.setInvalid();
      h.ipv4.setValid();
    }
  }
  control D(emitter em, pkt p, in c1hdr_t h) {
    apply { em.emit(p, h.eth); em.emit(p, h.mpls); em.emit(p, h.ipv4); em.emit(p, h.ipv6); }
  }
}
`

const callee2Src = fig9Headers + `
struct c2hdr_t { eth_h eth; ipv6_h ipv6; ipv4_h ipv4; }
program Callee2 : implements Unicast {
  parser P(extractor ex, pkt p, out c2hdr_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) { 0x86DD: parse_ipv6; default: accept; };
    }
    state parse_ipv6 {
      ex.extract(p, h.ipv6);
      transition select(h.ipv6.nexthdr) { 4: parse_ipv4; default: accept; };
    }
    state parse_ipv4 { ex.extract(p, h.ipv4); transition accept; }
  }
  control C(pkt p, inout c2hdr_t h, inout empty_t m, im_t im) { apply { } }
  control D(emitter em, pkt p, in c2hdr_t h) {
    apply { em.emit(p, h.eth); em.emit(p, h.ipv6); em.emit(p, h.ipv4); }
  }
}
`

const fig9CallerSrc = fig9Headers + `
struct nohdr_t { }
Callee1(pkt p, im_t im);
Callee2(pkt p, im_t im);
program Caller : implements Unicast {
  parser P(extractor ex, pkt p, out nohdr_t h, inout empty_t m, im_t im) {
    state start { transition accept; }
  }
  control C(pkt p, inout nohdr_t h, inout empty_t m, im_t im) {
    Callee1() c1;
    Callee2() c2;
    apply {
      c1.apply(p, im);
      c2.apply(p, im);
    }
  }
  control D(emitter em, pkt p, in nohdr_t h) { apply { } }
}
`

func compileAll(t *testing.T, srcs map[string]string) map[string]*ir.Program {
	t.Helper()
	out := make(map[string]*ir.Program)
	for name, src := range srcs {
		p, err := frontend.CompileModule(name+".up4", src)
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		out[p.Name] = p
	}
	return out
}

func linkFig9(t *testing.T) *linker.Linked {
	t.Helper()
	progs := compileAll(t, map[string]string{
		"callee1": callee1Src, "callee2": callee2Src, "caller": fig9CallerSrc,
	})
	l, err := linker.Link(progs["Caller"], progs["Callee1"], progs["Callee2"])
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return l
}

// TestFigure9Example reproduces the worked example of §5.2 (Fig. 9):
// El(caller) = 78 and Bs(caller) = 98.
func TestFigure9Example(t *testing.T) {
	l := linkFig9(t)
	res, err := Analyze(l)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	c1 := res.Stats["Callee1"]
	if c1.El != 58 || c1.Inc != 20 || c1.Dec != 4 {
		t.Errorf("Callee1 = El %d Δ %d δ %d, want 58/20/4", c1.El, c1.Inc, c1.Dec)
	}
	c2 := res.Stats["Callee2"]
	if c2.El != 74 || c2.Inc != 0 || c2.Dec != 0 {
		t.Errorf("Callee2 = El %d Δ %d δ %d, want 74/0/0", c2.El, c2.Inc, c2.Dec)
	}
	if c2.ParserPaths != 3 {
		t.Errorf("Callee2 parser paths = %d, want 3", c2.ParserPaths)
	}
	caller := res.Main()
	if caller.Name != "Caller" {
		t.Fatalf("main = %s", caller.Name)
	}
	// The paper's numbers: 4 (δ of callee1) + 74 (El of callee2) = 78;
	// byte-stack 78 + 20 (Δ from callee1's ipv4.setValid) = 98.
	if caller.El != 78 {
		t.Errorf("El(caller) = %d, want 78", caller.El)
	}
	if caller.Bs != 98 {
		t.Errorf("Bs(caller) = %d, want 98", caller.Bs)
	}
	if caller.MinPkt != 58+14 {
		t.Errorf("MinPkt(caller) = %d, want 72", caller.MinPkt)
	}
}

func TestLinkerRejectsRecursion(t *testing.T) {
	a, err := frontend.CompileModule("a.up4", `
struct empty_t { }
struct h_t { }
B(pkt p, im_t im);
program A : implements Unicast {
  parser P(extractor ex, pkt p, out h_t h, inout empty_t m, im_t im) { state start { transition accept; } }
  control C(pkt p, inout h_t h, inout empty_t m, im_t im) { B() b; apply { b.apply(p, im); } }
  control D(emitter em, pkt p, in h_t h) { apply { } }
}`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := frontend.CompileModule("b.up4", `
struct empty_t { }
struct h_t { }
A(pkt p, im_t im);
program B : implements Unicast {
  parser P(extractor ex, pkt p, out h_t h, inout empty_t m, im_t im) { state start { transition accept; } }
  control C(pkt p, inout h_t h, inout empty_t m, im_t im) { A() a; apply { a.apply(p, im); } }
  control D(emitter em, pkt p, in h_t h) { apply { } }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := linker.Link(a, b); err == nil {
		t.Error("Link accepted a recursive module graph")
	}
}

func TestLinkerSignatureMismatch(t *testing.T) {
	progs := compileAll(t, map[string]string{"callee2": callee2Src})
	mainP, err := frontend.CompileModule("m.up4", fig9Headers+`
struct nohdr_t { }
Callee2(pkt p, im_t im, out bit<16> nh);
program M : implements Unicast {
  parser P(extractor ex, pkt p, out nohdr_t h, inout empty_t m, im_t im) { state start { transition accept; } }
  control C(pkt p, inout nohdr_t h, inout empty_t m, im_t im) {
    bit<16> nh;
    Callee2() c2;
    apply { c2.apply(p, im, nh); }
  }
  control D(emitter em, pkt p, in nohdr_t h) { apply { } }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := linker.Link(mainP, progs["Callee2"]); err == nil {
		t.Error("Link accepted a prototype/signature mismatch")
	}
}

func TestLinkerMissingModule(t *testing.T) {
	progs := compileAll(t, map[string]string{"caller": fig9CallerSrc, "callee1": callee1Src})
	if _, err := linker.Link(progs["Caller"], progs["Callee1"]); err == nil {
		t.Error("Link accepted a missing module")
	}
}

// Property: the byte-stack is always at least the extract-length, and
// extract-length is at least the longest single parser path of main when
// there are no callees.
func TestQuickChainParserBounds(t *testing.T) {
	f := func(sizes []uint8) bool {
		// Build a linear parser extracting n headers of the given byte sizes.
		n := len(sizes)
		if n == 0 || n > 12 {
			return true
		}
		p := &ir.Program{
			Name: "Q", Interface: "Unicast",
			Headers: map[string]*ir.HeaderType{},
			Parser:  &ir.Parser{},
		}
		total := 0
		for i, s := range sizes {
			bytes := int(s)%64 + 1
			total += bytes
			tn := hname(i)
			p.Headers[tn] = &ir.HeaderType{Name: tn, BitWidth: bytes * 8,
				Fields: []ir.HeaderField{{Name: "f", Width: bytes * 8}}}
			p.Decls = append(p.Decls, ir.Decl{Path: "$hdr." + tn, Kind: ir.DeclHeader, TypeName: tn})
			st := &ir.State{Name: sname(i),
				Stmts: []*ir.Stmt{{Kind: ir.SExtract, Hdr: "$hdr." + tn}},
				Trans: &ir.Trans{Kind: "direct", Target: sname(i + 1)}}
			if i == n-1 {
				st.Trans.Target = "accept"
			}
			p.Parser.States = append(p.Parser.States, st)
			// Every header is emitted, so nothing shrinks the packet.
			p.Deparser = append(p.Deparser, &ir.Stmt{Kind: ir.SEmit, Hdr: "$hdr." + tn})
		}
		l := &linker.Linked{Main: p, Modules: map[string]*ir.Program{}}
		res, err := Analyze(l)
		if err != nil {
			return false
		}
		st := res.Main()
		return st.Elp == total && st.El == total && st.Bs == total && st.MinPkt == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func hname(i int) string { return string(rune('a'+i)) + "_h" }
func sname(i int) string {
	if i == 0 {
		return "start"
	}
	return "s" + string(rune('a'+i))
}

func TestCycleDetection(t *testing.T) {
	p := &ir.Program{
		Name: "Cyc", Interface: "Unicast",
		Headers: map[string]*ir.HeaderType{},
		Parser: &ir.Parser{States: []*ir.State{
			{Name: "start", Trans: &ir.Trans{Kind: "direct", Target: "loop"}},
			{Name: "loop", Trans: &ir.Trans{Kind: "direct", Target: "start"}},
		}},
	}
	l := &linker.Linked{Main: p, Modules: map[string]*ir.Program{}}
	if _, err := Analyze(l); err == nil {
		t.Error("Analyze accepted a cyclic parse graph")
	}
}
