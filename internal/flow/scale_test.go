package flow

import (
	"testing"
)

// Scale validation for the NF scenario pack: a NAT64 carrier edge or a
// front-end load balancer holds connection state for on the order of a
// million concurrent flows, so the table's invariants — exact
// capacity, hit-on-every-packet, zero steady-state allocations,
// deterministic aging — must hold at that occupancy, not just at the
// few-thousand-entry sizes the unit tests use.

const millionFlows = 1 << 20

// scaleKey spreads i across the tuple so neighboring flows do not
// collide trivially in the hash index.
func scaleKey(i uint64) Key {
	return Key{
		SrcAddr: 0x0A000000 + i,
		DstAddr: 0x14000000 + (i >> 8),
		Proto:   6,
		SrcPort: 1024 + (i & 0x3FFF),
		DstPort: 443,
	}
}

func TestMillionEntryScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-entry table: skipped in -short mode")
	}
	tb := New(millionFlows, 1<<30, 1<<30)

	// Fill to exact capacity: every insert must go through the free
	// list, none may evict.
	for i := uint64(0); i < millionFlows; i++ {
		if hit := tb.Upsert(scaleKey(i), 0, 1); hit != 0 {
			t.Fatalf("flow %d hit on first sight", i)
		}
	}
	if n := tb.Len(); n != millionFlows {
		t.Fatalf("Len = %d after %d distinct learns, want %d", n, millionFlows, millionFlows)
	}
	st := tb.Stats()
	if st.Inserts != millionFlows || st.Evictions != 0 {
		t.Fatalf("inserts %d evictions %d at exact capacity, want %d and 0",
			st.Inserts, st.Evictions, millionFlows)
	}

	// Every flow — including both hash-collision chains and the very
	// first insert — must still be resident and hit.
	for i := uint64(0); i < millionFlows; i += 4097 {
		if hit := tb.Upsert(scaleKey(i), 0, 2); hit != 1 {
			t.Fatalf("flow %d lost at full occupancy", i)
		}
	}
	if _, ok := tb.Lookup(scaleKey(0)); !ok {
		t.Fatal("first-inserted flow evicted at exact capacity")
	}

	// Steady-state refresh at full occupancy allocates nothing: the
	// wheel re-files and LRU moves must reuse in-place storage even
	// with a million resident entries.
	var i uint64
	now := uint64(3)
	allocs := testing.AllocsPerRun(4096, func() {
		tb.Upsert(scaleKey(i%millionFlows), 0, now)
		i++
		now++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Upsert at 1M entries allocates %.2f allocs/op, want 0", allocs)
	}

	// One more insert past capacity must evict exactly one entry
	// (oldest first), keeping Len pinned at capacity.
	tb.Upsert(scaleKey(millionFlows+7), 0, now)
	if n := tb.Len(); n != millionFlows {
		t.Fatalf("Len = %d after over-capacity insert, want %d", n, millionFlows)
	}
	if ev := tb.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d after one over-capacity insert, want 1", ev)
	}

	// Aging drains the whole table deterministically.
	tb.Advance(now + 1<<31)
	if n := tb.Len(); n != 0 {
		t.Fatalf("Len = %d after aging past every TTL, want 0", n)
	}
	if exp := tb.Stats().Expiries; exp != millionFlows {
		t.Fatalf("expiries = %d, want %d", exp, millionFlows)
	}
}

// BenchmarkUpsertHitMillion measures the lookup-dominated hot path at
// production occupancy: a million resident flows, every packet a hit.
func BenchmarkUpsertHitMillion(b *testing.B) {
	tb := New(millionFlows, 1<<30, 1<<30)
	for i := uint64(0); i < millionFlows; i++ {
		tb.Upsert(scaleKey(i), 0, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Upsert(scaleKey(uint64(i)&(millionFlows-1)), 0, 2)
	}
}
