// Package flow implements the flowtable extern: a fixed-capacity
// connection table with O(1) lookup, a zero-allocation steady-state hot
// path, and timer-wheel aging driven by the virtual clock.
//
// The table backs the µP4 `flowtable(size, idleTTL, estTTL)` extern
// (stateful-firewall semantics: first-packet learn, return-path allow,
// TTL'd entries) and the ctrlplane FlowSync replication layer. Layout:
//
//   - dense slot array: one Entry per live flow, reused through a free
//     list, each slot carrying a generation counter so stale references
//     (wheel buckets filed before a refresh) are detected and skipped;
//   - open-addressed index: linear probing with backward-shift
//     deletion, sized at twice the capacity so load stays below 1/2;
//   - intrusive insertion-order list: O(1) append/unlink, giving a
//     deterministic oldest-first eviction victim when the table is full;
//   - timer wheel: entries are filed in the bucket of their expiry
//     tick; refreshes re-file lazily (the old reference is skipped or
//     re-filed when its bucket comes due), so the hot path never
//     searches a bucket.
//
// All operations are deterministic functions of the operation sequence,
// which is what makes chaos runs byte-reproducible per seed.
package flow

import "sync"

// Key identifies a flow by its 5-tuple. Fields are uint64 so the sim
// engines can pass scalar slots through without conversion; the
// dataplane truncates them to header-field widths before they get here.
type Key struct {
	SrcAddr uint64
	DstAddr uint64
	Proto   uint64
	SrcPort uint64
	DstPort uint64
}

// Reversed returns the return-path key: addresses and ports swapped.
func (k Key) Reversed() Key {
	return Key{SrcAddr: k.DstAddr, DstAddr: k.SrcAddr, Proto: k.Proto,
		SrcPort: k.DstPort, DstPort: k.SrcPort}
}

// hash mixes the tuple with the splitmix64 finalizer per word — cheap,
// alloc-free, and well distributed for the low-entropy tuples the
// traffic generators produce.
func (k Key) hash() uint64 {
	h := mix(k.SrcAddr)
	h = mix(h ^ k.DstAddr)
	h = mix(h ^ k.Proto)
	h = mix(h ^ k.SrcPort<<16 ^ k.DstPort)
	return h
}

func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Flow entry states.
const (
	StateNew         uint8 = 0 // learned from a forward-path packet
	StateEstablished uint8 = 1 // confirmed by a return-path packet
)

// Entry is one live flow.
type Entry struct {
	Key    Key
	State  uint8
	Synced bool   // replicated to the standby (FlowSync bookkeeping)
	Expire uint64 // virtual tick at which the entry ages out
	Val    uint64 // value pinned by Stick (e.g. a load-balancer backend)
}

// Hooks observe table mutations. All hooks run synchronously inside the
// mutating call with the entry still live; they must not call back into
// the table. Nil hooks are skipped.
type Hooks struct {
	OnInsert func(*Entry) // new flow learned
	OnUpdate func(*Entry) // state/expiry change worth replicating
	OnExpire func(*Entry) // aged out by the wheel
	OnEvict  func(*Entry) // displaced by a capacity eviction
}

// Counters are the table's monotone statistics, exported as
// up4_flow_* metrics.
type Counters struct {
	Inserts   uint64
	Hits      uint64
	Misses    uint64
	Expiries  uint64
	Evictions uint64
}

// slot is one dense storage cell. gen increments on every free so
// packed references held by wheel buckets can detect reuse.
type slot struct {
	e    Entry
	gen  uint32
	used bool
	// insertion-order intrusive list (eviction order); -1 terminates.
	prev, next int32
}

// packed is a wheel reference: slot index, the slot generation and the
// expiry tick it was filed for. A refresh files a fresh reference; the
// old one no longer matches the slot's Expire and is dropped the first
// time its bucket comes due, so references never accumulate past one
// wheel revolution.
type packed struct {
	idx int32
	gen uint32
	exp uint64
}

const wheelBuckets = 256 // power of two

// Table is a flow table. A single mutex serializes all operations:
// unlike registers (word-sized cells, benignly racy like the hardware
// they model), the table mutates structure — index chains, lists,
// wheel buckets — so the parallel-ingress worker pool must serialize
// through it. The lock is uncontended in serial mode and never
// allocates, preserving the zero-alloc hot path.
type Table struct {
	IdleTTL uint64 // TTL for StateNew entries
	EstTTL  uint64 // TTL for StateEstablished entries

	mu sync.Mutex

	slots []slot
	free  []int32 // free slot indices (LIFO)
	index []int32 // open-addressed: slot+1, 0 = empty
	mask  uint64  // len(index)-1

	head, tail int32 // insertion-order list bounds (-1 = empty)
	n          int   // live entries

	wheel    [wheelBuckets][]packed
	wheelNow uint64 // last tick Advance processed

	hooks Hooks
	stats Counters
}

// New returns a table with the given capacity and TTLs (in virtual
// ticks). Returns an error (a *sim.FlowError, wrapped by the caller)
// via panic-free validation: the frontend bounds these the same way,
// so New only rejects programmatic misuse.
func New(size int, idleTTL, estTTL uint64) *Table {
	if size < 1 {
		size = 1
	}
	if idleTTL == 0 {
		idleTTL = 1
	}
	if estTTL == 0 {
		estTTL = idleTTL
	}
	icap := 1
	for icap < 2*size {
		icap <<= 1
	}
	t := &Table{
		IdleTTL: idleTTL,
		EstTTL:  estTTL,
		slots:   make([]slot, size),
		free:    make([]int32, 0, size),
		index:   make([]int32, icap),
		mask:    uint64(icap - 1),
		head:    -1,
		tail:    -1,
	}
	for i := size - 1; i >= 0; i-- {
		t.slots[i].prev, t.slots[i].next = -1, -1
		t.free = append(t.free, int32(i))
	}
	return t
}

// SetHooks installs mutation observers.
func (t *Table) SetHooks(h Hooks) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hooks = h
}

// Len returns the number of live entries.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Stats returns the monotone counters.
func (t *Table) Stats() Counters {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Now returns the last tick the aging wheel advanced to.
func (t *Table) Now() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.wheelNow
}

// ----------------------------------------------------------------------------
// Index (open addressing, linear probe, backward-shift delete)

func (t *Table) findSlot(k Key) int32 {
	i := k.hash() & t.mask
	for {
		s := t.index[i]
		if s == 0 {
			return -1
		}
		if t.slots[s-1].e.Key == k {
			return s - 1
		}
		i = (i + 1) & t.mask
	}
}

func (t *Table) indexInsert(si int32) {
	i := t.slots[si].e.Key.hash() & t.mask
	for t.index[i] != 0 {
		i = (i + 1) & t.mask
	}
	t.index[i] = si + 1
}

func (t *Table) indexDelete(k Key) {
	i := k.hash() & t.mask
	for {
		s := t.index[i]
		if s == 0 {
			return // not present
		}
		if t.slots[s-1].e.Key == k {
			break
		}
		i = (i + 1) & t.mask
	}
	// Backward-shift: close the gap so probe chains stay intact.
	t.index[i] = 0
	j := (i + 1) & t.mask
	for t.index[j] != 0 {
		home := t.slots[t.index[j]-1].e.Key.hash() & t.mask
		// Can the entry at j move back to the hole at i? It can when
		// its home position is outside the (home..j] wrap-aware span.
		if (j-home)&t.mask >= (j-i)&t.mask {
			t.index[i] = t.index[j]
			t.index[j] = 0
			i = j
		}
		j = (j + 1) & t.mask
	}
}

// ----------------------------------------------------------------------------
// Insertion-order list

func (t *Table) listAppend(si int32) {
	s := &t.slots[si]
	s.prev, s.next = t.tail, -1
	if t.tail >= 0 {
		t.slots[t.tail].next = si
	} else {
		t.head = si
	}
	t.tail = si
}

func (t *Table) listUnlink(si int32) {
	s := &t.slots[si]
	if s.prev >= 0 {
		t.slots[s.prev].next = s.next
	} else {
		t.head = s.next
	}
	if s.next >= 0 {
		t.slots[s.next].prev = s.prev
	} else {
		t.tail = s.prev
	}
	s.prev, s.next = -1, -1
}

// ----------------------------------------------------------------------------
// Wheel

func (t *Table) fileInWheel(si int32, expire uint64) {
	b := expire % wheelBuckets
	t.wheel[b] = append(t.wheel[b], packed{idx: si, gen: t.slots[si].gen, exp: expire})
}

// Advance expires every entry due at or before now. Expiry order is
// deterministic: bucket (tick) order, insertion order within a bucket.
func (t *Table) Advance(now uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.advance(now)
}

func (t *Table) advance(now uint64) {
	if now <= t.wheelNow {
		return
	}
	steps := now - t.wheelNow
	if steps > wheelBuckets {
		steps = wheelBuckets // one full revolution visits every bucket
	}
	for s := uint64(1); s <= steps; s++ {
		tick := t.wheelNow + s
		b := tick % wheelBuckets
		bucket := t.wheel[b]
		kept := bucket[:0]
		for _, p := range bucket {
			sl := &t.slots[p.idx]
			if !sl.used || sl.gen != p.gen || sl.e.Expire != p.exp {
				continue // freed, recycled, or refreshed since filing
			}
			if p.exp <= now {
				t.expire(p.idx)
				continue
			}
			kept = append(kept, p) // due a future wheel revolution
		}
		t.wheel[b] = kept
	}
	t.wheelNow = now
}

func (t *Table) expire(si int32) {
	t.stats.Expiries++
	if t.hooks.OnExpire != nil {
		t.hooks.OnExpire(&t.slots[si].e)
	}
	t.remove(si)
}

// remove frees a slot: index delete, list unlink, free-list push.
func (t *Table) remove(si int32) {
	s := &t.slots[si]
	t.indexDelete(s.e.Key)
	t.listUnlink(si)
	s.used = false
	s.gen++
	s.e = Entry{}
	t.free = append(t.free, si)
	t.n--
}

// ----------------------------------------------------------------------------
// Dataplane operations

func (t *Table) ttlFor(state uint8) uint64 {
	if state == StateEstablished {
		return t.EstTTL
	}
	return t.IdleTTL
}

// Upsert is the dataplane operation behind ft.upsert(...): advance the
// wheel to now, then
//
//	dir == 0 (forward path): refresh a known flow (hit=1) or learn it
//	  (hit=0, state New, idle TTL), evicting the oldest entry when full;
//	dir != 0 (return path): a packet matching a known flow's reverse
//	  tuple marks it Established and refreshes it with the established
//	  TTL (hit=1); unknown reverse flows are not learned (hit=0).
//
// The returned hit feeds a match-action table key, so the firewall
// policy itself stays in the control plane.
func (t *Table) Upsert(k Key, dir, now uint64) (hit uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.advance(now)
	if dir == 0 {
		si := t.findSlot(k)
		if si >= 0 {
			s := &t.slots[si]
			s.e.Expire = now + t.ttlFor(s.e.State)
			t.fileInWheel(si, s.e.Expire)
			t.stats.Hits++
			return 1
		}
		t.stats.Misses++
		t.insert(Entry{Key: k, State: StateNew, Expire: now + t.IdleTTL})
		return 0
	}
	si := t.findSlot(k.Reversed())
	if si < 0 {
		t.stats.Misses++
		return 0
	}
	s := &t.slots[si]
	if s.e.State != StateEstablished {
		s.e.State = StateEstablished
		s.e.Synced = false
		if t.hooks.OnUpdate != nil {
			t.hooks.OnUpdate(&s.e)
		}
	}
	s.e.Expire = now + t.EstTTL
	t.fileInWheel(si, s.e.Expire)
	t.stats.Hits++
	return 1
}

// Stick is the dataplane operation behind ft.stick(...): pin a value
// to a flow for the flow's lifetime. The first packet of a flow stores
// want (hit=0, state New, idle TTL, evicting the oldest entry when
// full); every later packet of the same 5-tuple ignores want, returns
// the value pinned at first sight (hit=1), promotes the flow to
// Established, and refreshes it with the established TTL. The caller
// recomputes want freely (e.g. a hash over a churning backend pool) —
// established flows keep the assignment they learned, which is what
// makes load-balancer stickiness survive pool churn.
func (t *Table) Stick(k Key, want, now uint64) (hit, val uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.advance(now)
	si := t.findSlot(k)
	if si < 0 {
		t.stats.Misses++
		t.insert(Entry{Key: k, State: StateNew, Expire: now + t.IdleTTL, Val: want})
		return 0, want
	}
	s := &t.slots[si]
	if s.e.State != StateEstablished {
		s.e.State = StateEstablished
		s.e.Synced = false
		if t.hooks.OnUpdate != nil {
			t.hooks.OnUpdate(&s.e)
		}
	}
	s.e.Expire = now + t.EstTTL
	t.fileInWheel(si, s.e.Expire)
	t.stats.Hits++
	return 1, s.e.Val
}

// insert learns a new entry, evicting the oldest-inserted live entry
// when the table is full.
func (t *Table) insert(e Entry) {
	if len(t.free) == 0 {
		victim := t.head
		t.stats.Evictions++
		if t.hooks.OnEvict != nil {
			t.hooks.OnEvict(&t.slots[victim].e)
		}
		t.remove(victim)
	}
	si := t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	s := &t.slots[si]
	s.e = e
	s.used = true
	t.indexInsert(si)
	t.listAppend(si)
	t.fileInWheel(si, e.Expire)
	t.n++
	t.stats.Inserts++
	if t.hooks.OnInsert != nil {
		t.hooks.OnInsert(&s.e)
	}
}

// Lookup returns a copy of the entry for k, if live.
func (t *Table) Lookup(k Key) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	si := t.findSlot(k)
	if si < 0 {
		return Entry{}, false
	}
	return t.slots[si].e, true
}

// MarkSynced marks the entry for k synced (FlowSync ack bookkeeping).
func (t *Table) MarkSynced(k Key) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if si := t.findSlot(k); si >= 0 {
		t.slots[si].e.Synced = true
	}
}

// MarkAllUnsynced flags every live entry for re-replication — the
// degradation path when the sync channel partitions: keep serving,
// remember everything needs a resync on heal.
func (t *Table) MarkAllUnsynced() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for si := t.head; si >= 0; si = t.slots[si].next {
		t.slots[si].e.Synced = false
	}
}

// Install applies a replicated entry: insert it, or overwrite the
// state/expiry of an existing one. Replication applies never fire
// OnInsert/OnUpdate hooks (the standby must not echo entries back).
// Entries already expired at the table's current tick are ignored.
func (t *Table) Install(e Entry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e.Expire <= t.wheelNow {
		return
	}
	if si := t.findSlot(e.Key); si >= 0 {
		s := &t.slots[si]
		// Never demote: an Established entry stays established even if
		// a reordered older update arrives after the promotion.
		if s.e.State == StateEstablished && e.State != StateEstablished {
			if e.Expire > s.e.Expire {
				s.e.Expire = e.Expire
				t.fileInWheel(si, s.e.Expire)
			}
			return
		}
		s.e.State = e.State
		s.e.Synced = e.Synced
		s.e.Val = e.Val
		if e.Expire > s.e.Expire {
			s.e.Expire = e.Expire
		}
		t.fileInWheel(si, s.e.Expire)
		return
	}
	hooks := t.hooks
	t.hooks = Hooks{}
	t.insert(e)
	t.hooks = hooks
	t.stats.Inserts-- // replication applies are not dataplane learns
}

// Delete removes the entry for k, if live (replication of an expiry).
func (t *Table) Delete(k Key) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if si := t.findSlot(k); si >= 0 {
		t.remove(si)
	}
}

// Entries returns copies of all live entries in insertion order — the
// deterministic order replication walks for anti-entropy resync.
func (t *Table) Entries() []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Entry, 0, t.n)
	for si := t.head; si >= 0; si = t.slots[si].next {
		out = append(out, t.slots[si].e)
	}
	return out
}

// Unsynced appends copies of live entries not yet acknowledged by the
// standby to dst and returns it.
func (t *Table) Unsynced(dst []Entry) []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	for si := t.head; si >= 0; si = t.slots[si].next {
		if !t.slots[si].e.Synced {
			dst = append(dst, t.slots[si].e)
		}
	}
	return dst
}

// Snapshot is a point-in-time copy of a table's live contents: the
// wheel position and every entry — key, state, expiry deadline, and
// sync mark — in insertion order. It is the unit of flow-state transfer
// for standby bootstrap and ISSU cutover.
type Snapshot struct {
	Now     uint64  // wheel tick the snapshot was taken at
	Entries []Entry // live entries in insertion order
}

// Snapshot captures the table's live contents. The snapshot is
// independent of the table and stays valid across later mutations.
func (t *Table) Snapshot() *Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := &Snapshot{Now: t.wheelNow, Entries: make([]Entry, 0, t.n)}
	for si := t.head; si >= 0; si = t.slots[si].next {
		snap.Entries = append(snap.Entries, t.slots[si].e)
	}
	return snap
}

// RestoreSnapshot replaces the table's contents with a snapshot:
// entries are reinstated verbatim (state, TTL deadline, sync mark,
// insertion order) and the wheel rewinds to the snapshot's tick, so a
// Snapshot/RestoreSnapshot round trip is exact. No hooks fire and no
// counters move — restoring replicated state is not dataplane activity.
// A nil snapshot is a no-op.
func (t *Table) RestoreSnapshot(snap *Snapshot) {
	if snap == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clear()
	t.wheelNow = snap.Now
	for _, e := range snap.Entries {
		if len(t.free) == 0 {
			break // snapshot from a larger table: keep the oldest capacity-many
		}
		si := t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
		s := &t.slots[si]
		s.e = e
		s.used = true
		t.indexInsert(si)
		t.listAppend(si)
		t.fileInWheel(si, e.Expire)
		t.n++
	}
}

// clear drops all entries and rewinds the wheel; the caller holds the
// lock. Counters and hooks are preserved.
func (t *Table) clear() {
	for i := range t.slots {
		t.slots[i] = slot{prev: -1, next: -1, gen: t.slots[i].gen + 1}
	}
	for i := range t.index {
		t.index[i] = 0
	}
	t.free = t.free[:0]
	for i := len(t.slots) - 1; i >= 0; i-- {
		t.free = append(t.free, int32(i))
	}
	for b := range t.wheel {
		t.wheel[b] = t.wheel[b][:0]
	}
	t.head, t.tail = -1, -1
	t.n = 0
	t.wheelNow = 0
}

// Reset drops all entries and rewinds the wheel. Counters and hooks
// are preserved. The equivalence harness calls this so every witness
// starts from identical (empty) flow state in every engine.
func (t *Table) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clear()
}
