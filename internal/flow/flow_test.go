package flow

import (
	"fmt"
	"testing"
)

func k(src, dst, proto, sp, dp uint64) Key {
	return Key{SrcAddr: src, DstAddr: dst, Proto: proto, SrcPort: sp, DstPort: dp}
}

func TestLearnHitEstablish(t *testing.T) {
	tb := New(16, 10, 100)
	fwd := k(1, 2, 6, 1000, 80)

	if hit := tb.Upsert(fwd, 0, 1); hit != 0 {
		t.Fatalf("first forward packet: hit=%d, want 0 (learn)", hit)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len=%d after learn, want 1", tb.Len())
	}
	if hit := tb.Upsert(fwd, 0, 2); hit != 1 {
		t.Fatalf("second forward packet: hit=%d, want 1", hit)
	}
	e, ok := tb.Lookup(fwd)
	if !ok || e.State != StateNew {
		t.Fatalf("entry after forward traffic: ok=%v state=%d, want New", ok, e.State)
	}

	// Return traffic arrives with the tuple as seen on the wire — the
	// reverse of the stored key — and establishes the flow.
	ret := fwd.Reversed()
	if hit := tb.Upsert(ret, 1, 3); hit != 1 {
		t.Fatalf("return packet: hit=%d, want 1", hit)
	}
	e, _ = tb.Lookup(fwd)
	if e.State != StateEstablished {
		t.Fatalf("state after return traffic = %d, want Established", e.State)
	}
	if e.Expire != 3+100 {
		t.Fatalf("established expiry = %d, want %d", e.Expire, 3+100)
	}

	// Return traffic for an unknown flow is not learned.
	if hit := tb.Upsert(k(9, 9, 6, 1, 2), 1, 4); hit != 0 {
		t.Fatalf("unknown return packet: hit=%d, want 0", hit)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len=%d after unknown return packet, want 1 (no learn)", tb.Len())
	}
}

func TestIdleExpiry(t *testing.T) {
	tb := New(16, 5, 50)
	var expired []Key
	tb.SetHooks(Hooks{OnExpire: func(e *Entry) { expired = append(expired, e.Key) }})

	tb.Upsert(k(1, 2, 6, 10, 20), 0, 1) // expires at 6
	tb.Upsert(k(3, 4, 6, 10, 20), 0, 2) // expires at 7
	tb.Advance(6)
	if len(expired) != 1 || expired[0] != k(1, 2, 6, 10, 20) {
		t.Fatalf("after tick 6: expired=%v, want the first flow only", expired)
	}
	tb.Advance(7)
	if len(expired) != 2 || tb.Len() != 0 {
		t.Fatalf("after tick 7: expired=%v len=%d, want both gone", expired, tb.Len())
	}
	if tb.Stats().Expiries != 2 {
		t.Fatalf("Expiries=%d, want 2", tb.Stats().Expiries)
	}
}

func TestRefreshExtendsLife(t *testing.T) {
	tb := New(16, 5, 50)
	f := k(1, 2, 6, 10, 20)
	tb.Upsert(f, 0, 1)
	tb.Upsert(f, 0, 4) // refresh: now expires at 9
	tb.Advance(8)
	if _, ok := tb.Lookup(f); !ok {
		t.Fatal("refreshed flow expired at its original deadline")
	}
	tb.Advance(9)
	if _, ok := tb.Lookup(f); ok {
		t.Fatal("refreshed flow still live past its refreshed deadline")
	}
}

func TestEstablishedOutlivesIdle(t *testing.T) {
	tb := New(16, 5, 50)
	f := k(1, 2, 6, 10, 20)
	tb.Upsert(f, 0, 1)
	tb.Upsert(f.Reversed(), 1, 2) // established: expires at 52
	tb.Advance(30)
	if _, ok := tb.Lookup(f); !ok {
		t.Fatal("established flow aged out on the idle TTL")
	}
	tb.Advance(52)
	if _, ok := tb.Lookup(f); ok {
		t.Fatal("established flow survived past the established TTL")
	}
}

func TestEvictionOldestFirst(t *testing.T) {
	tb := New(4, 100, 100)
	var evicted []Key
	tb.SetHooks(Hooks{OnEvict: func(e *Entry) { evicted = append(evicted, e.Key) }})
	for i := uint64(0); i < 4; i++ {
		tb.Upsert(k(i, 100, 6, 1, 2), 0, 1)
	}
	// Refreshing the oldest does not save it from insertion-order
	// eviction (eviction is FIFO, not LRU).
	tb.Upsert(k(0, 100, 6, 1, 2), 0, 2)
	tb.Upsert(k(50, 100, 6, 1, 2), 0, 3)
	if len(evicted) != 1 || evicted[0] != k(0, 100, 6, 1, 2) {
		t.Fatalf("evicted=%v, want the oldest-inserted flow", evicted)
	}
	if tb.Len() != 4 || tb.Stats().Evictions != 1 {
		t.Fatalf("Len=%d Evictions=%d, want 4 and 1", tb.Len(), tb.Stats().Evictions)
	}
}

// TestCollisionDeletion exercises backward-shift deletion: many keys in
// a tiny index force probe chains; deleting from the middle must keep
// the rest findable.
func TestCollisionDeletion(t *testing.T) {
	tb := New(64, 1000, 1000)
	for i := uint64(0); i < 64; i++ {
		tb.Upsert(k(i, 7, 6, 1, 2), 0, 1)
	}
	for i := uint64(0); i < 64; i += 2 {
		tb.Delete(k(i, 7, 6, 1, 2))
	}
	for i := uint64(0); i < 64; i++ {
		_, ok := tb.Lookup(k(i, 7, 6, 1, 2))
		if want := i%2 == 1; ok != want {
			t.Fatalf("after interleaved deletes: Lookup(flow %d)=%v, want %v", i, ok, want)
		}
	}
	// Deleted keys can be re-inserted and found.
	for i := uint64(0); i < 64; i += 2 {
		tb.Upsert(k(i, 7, 6, 1, 2), 0, 2)
	}
	if tb.Len() != 64 {
		t.Fatalf("Len=%d after re-inserts, want 64", tb.Len())
	}
}

func TestDeterministicExpiryOrder(t *testing.T) {
	run := func() []Key {
		tb := New(32, 7, 7)
		var order []Key
		tb.SetHooks(Hooks{OnExpire: func(e *Entry) { order = append(order, e.Key) }})
		for i := uint64(0); i < 20; i++ {
			tb.Upsert(k(i, 1, 6, 1, 2), 0, 1+i%3)
		}
		tb.Advance(400)
		return order
	}
	a, b := run(), run()
	if len(a) != 20 {
		t.Fatalf("expired %d flows, want all 20", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("expiry order diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestInstallAndSyncBookkeeping(t *testing.T) {
	tb := New(16, 10, 100)
	f := k(1, 2, 6, 10, 20)
	tb.Install(Entry{Key: f, State: StateEstablished, Synced: true, Expire: 50})
	e, ok := tb.Lookup(f)
	if !ok || e.State != StateEstablished || !e.Synced {
		t.Fatalf("installed entry = %+v ok=%v", e, ok)
	}
	if tb.Stats().Inserts != 0 {
		t.Fatalf("Install counted as a dataplane insert: %d", tb.Stats().Inserts)
	}

	// A reordered stale update must not demote an established entry.
	tb.Install(Entry{Key: f, State: StateNew, Expire: 20})
	if e, _ := tb.Lookup(f); e.State != StateEstablished {
		t.Fatal("stale replicated update demoted an established flow")
	}

	// Already-expired entries are ignored.
	tb.Advance(60)
	tb.Install(Entry{Key: k(3, 4, 6, 1, 2), State: StateNew, Expire: 55})
	if tb.Len() != 0 {
		t.Fatalf("Len=%d, want 0 (expired install ignored, old entry aged out)", tb.Len())
	}

	// Unsynced tracking: fresh learns are unsynced until marked.
	g := k(5, 6, 6, 30, 40)
	tb.Upsert(g, 0, 61)
	if got := tb.Unsynced(nil); len(got) != 1 || got[0].Key != g {
		t.Fatalf("Unsynced=%v, want the fresh learn", got)
	}
	tb.MarkSynced(g)
	if got := tb.Unsynced(nil); len(got) != 0 {
		t.Fatalf("Unsynced=%v after MarkSynced, want none", got)
	}
	// Partition degradation: everything needs re-replication.
	tb.MarkAllUnsynced()
	if got := tb.Unsynced(nil); len(got) != 1 {
		t.Fatalf("Unsynced=%v after MarkAllUnsynced, want 1", got)
	}
}

func TestReset(t *testing.T) {
	tb := New(16, 10, 100)
	for i := uint64(0); i < 10; i++ {
		tb.Upsert(k(i, 1, 6, 1, 2), 0, 5)
	}
	tb.Reset()
	if tb.Len() != 0 || tb.Now() != 0 {
		t.Fatalf("after Reset: Len=%d Now=%d", tb.Len(), tb.Now())
	}
	if hit := tb.Upsert(k(0, 1, 6, 1, 2), 0, 1); hit != 0 {
		t.Fatal("flow survived Reset")
	}
	// Stale wheel references from before the reset must not expire the
	// re-learned flows.
	var expired int
	tb.SetHooks(Hooks{OnExpire: func(*Entry) { expired++ }})
	tb.Advance(9)
	if expired != 0 {
		t.Fatalf("%d phantom expiries from pre-Reset wheel refs", expired)
	}
}

// TestUpsertSteadyStateAllocs pins the zero-allocation hot path: once
// flows exist and wheel buckets have grown, refreshes and reverse hits
// must not allocate.
func TestUpsertSteadyStateAllocs(t *testing.T) {
	tb := New(1024, 1000, 1000)
	for i := uint64(0); i < 512; i++ {
		tb.Upsert(k(i, 1, 6, 1, 2), 0, 1)
	}
	// Warm the wheel buckets across a few refresh rounds.
	now := uint64(2)
	for r := 0; r < 4; r++ {
		for i := uint64(0); i < 512; i++ {
			tb.Upsert(k(i, 1, 6, 1, 2), 0, now)
			now++
		}
	}
	var i uint64
	allocs := testing.AllocsPerRun(2048, func() {
		tb.Upsert(k(i%512, 1, 6, 1, 2), 0, now)
		tb.Upsert(k(1, i%512, 6, 2, 1), 1, now)
		i++
		now++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Upsert allocates %.2f allocs/op, want 0", allocs)
	}
}

func BenchmarkUpsertHit(b *testing.B) {
	tb := New(4096, 1<<20, 1<<20)
	for i := uint64(0); i < 2048; i++ {
		tb.Upsert(k(i, 1, 6, 1, 2), 0, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Upsert(k(uint64(i)&2047, 1, 6, 1, 2), 0, 2)
	}
}

// BenchmarkUpsertChurn measures the aging-under-load cell: the clock
// outruns the idle TTL, so every visit to a flow finds its previous
// entry expired — each operation is a wheel advance, an expiry, and a
// fresh learn through the free list. Sized from the unit-test default
// up to the scenario pack's production occupancy (a 1M-entry NAT64 or
// LB table), since free-list and wheel behavior at a few thousand
// entries says nothing about cache behavior at a million.
func BenchmarkUpsertChurn(b *testing.B) {
	for _, size := range []int{4096, 65536, 1 << 20} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			tb := New(size, 8, 8)
			live := uint64(size/16) - 1
			b.ReportAllocs()
			b.ResetTimer()
			now := uint64(1)
			for i := 0; i < b.N; i++ {
				tb.Upsert(k(uint64(i)&live, 1, 6, 1, 2), 0, now)
				now += 16 // > IdleTTL: the entry is gone before its next visit
			}
		})
	}
}

func BenchmarkAdvance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tb := New(4096, 64, 64)
		for f := uint64(0); f < 4096; f++ {
			tb.Upsert(k(f, 1, 6, 1, 2), 0, f%32)
		}
		b.StartTimer()
		tb.Advance(512)
	}
}
