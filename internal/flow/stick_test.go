package flow

import "testing"

// TestStickPinsFirstAssignment: the first packet of a flow stores the
// caller's want value; later packets return the pinned value no matter
// what the caller now wants — the load-balancer stickiness contract.
func TestStickPinsFirstAssignment(t *testing.T) {
	tb := New(16, 10, 100)
	f := k(1, 2, 6, 1000, 80)

	hit, val := tb.Stick(f, 3, 1)
	if hit != 0 || val != 3 {
		t.Fatalf("first packet: hit=%d val=%d, want 0/3 (pin)", hit, val)
	}
	e, ok := tb.Lookup(f)
	if !ok || e.State != StateNew || e.Val != 3 {
		t.Fatalf("entry after pin: ok=%v state=%d val=%d, want New/3", ok, e.State, e.Val)
	}

	// The pool churned: the hash now says backend 7. The flow keeps 3.
	hit, val = tb.Stick(f, 7, 2)
	if hit != 1 || val != 3 {
		t.Fatalf("second packet: hit=%d val=%d, want 1/3 (sticky)", hit, val)
	}
	e, _ = tb.Lookup(f)
	if e.State != StateEstablished {
		t.Fatalf("state after second packet = %d, want Established", e.State)
	}
	if e.Expire != 2+100 {
		t.Fatalf("established expiry = %d, want %d", e.Expire, 2+100)
	}

	// A different flow pins its own value independently.
	if _, val := tb.Stick(k(5, 6, 6, 1, 2), 9, 3); val != 9 {
		t.Fatalf("second flow pinned %d, want 9", val)
	}
}

// TestStickExpiryRepins: once a pinned flow ages out, the next packet
// re-pins with the current want — new flows follow the current pool.
func TestStickExpiryRepins(t *testing.T) {
	tb := New(16, 5, 50)
	f := k(1, 2, 6, 10, 20)
	tb.Stick(f, 3, 1) // New, expires at 6
	hit, val := tb.Stick(f, 7, 10)
	if hit != 0 || val != 7 {
		t.Fatalf("post-expiry packet: hit=%d val=%d, want 0/7 (re-pin)", hit, val)
	}
}

// TestStickInstallCarriesVal: replication installs preserve the pinned
// value, so a promoted standby keeps serving sticky assignments.
func TestStickInstallCarriesVal(t *testing.T) {
	tb := New(16, 10, 100)
	f := k(1, 2, 6, 10, 20)
	tb.Install(Entry{Key: f, State: StateEstablished, Expire: 50, Val: 4})
	hit, val := tb.Stick(f, 9, 1)
	if hit != 1 || val != 4 {
		t.Fatalf("stick after install: hit=%d val=%d, want 1/4", hit, val)
	}
	// An overwrite install updates the value too.
	tb.Install(Entry{Key: f, State: StateEstablished, Expire: 60, Val: 5})
	if _, val := tb.Stick(f, 9, 2); val != 5 {
		t.Fatalf("stick after overwrite install: val=%d, want 5", val)
	}
}

// TestStickSnapshotRoundTrip: ISSU cutover snapshots carry the pinned
// value with the flow.
func TestStickSnapshotRoundTrip(t *testing.T) {
	tb := New(16, 10, 100)
	tb.Stick(k(1, 2, 6, 10, 20), 3, 1)
	tb.Stick(k(3, 4, 6, 10, 20), 8, 1)
	snap := tb.Snapshot()
	tb2 := New(16, 10, 100)
	tb2.RestoreSnapshot(snap)
	if _, val := tb2.Stick(k(1, 2, 6, 10, 20), 0, 2); val != 3 {
		t.Fatalf("restored flow 1 val=%d, want 3", val)
	}
	if _, val := tb2.Stick(k(3, 4, 6, 10, 20), 0, 2); val != 8 {
		t.Fatalf("restored flow 2 val=%d, want 8", val)
	}
}

// TestStickSteadyStateAllocs pins the hot path: established sticky
// flows never allocate.
func TestStickSteadyStateAllocs(t *testing.T) {
	tb := New(1024, 1000, 1000)
	for i := uint64(0); i < 512; i++ {
		tb.Stick(k(i, 1, 6, 1, 2), i&7, 1)
	}
	now := uint64(2)
	for r := 0; r < 4; r++ {
		for i := uint64(0); i < 512; i++ {
			tb.Stick(k(i, 1, 6, 1, 2), i&7, now)
			now++
		}
	}
	var i uint64
	allocs := testing.AllocsPerRun(2048, func() {
		tb.Stick(k(i%512, 1, 6, 1, 2), i&7, now)
		i++
		now++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Stick allocates %.2f allocs/op, want 0", allocs)
	}
}
