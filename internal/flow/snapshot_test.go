package flow

import (
	"reflect"
	"testing"
)

func snapKey(i int) Key {
	return Key{SrcAddr: 0x0A000000 | uint64(i), DstAddr: 0x0B000000 | uint64(i),
		Proto: 6, SrcPort: uint64(40000 + i), DstPort: 443}
}

// TestSnapshotRestoreRoundTrip pins the satellite-1 contract: a
// snapshot restored into a fresh table reproduces the source exactly —
// entry order, states, TTL deadlines, sync marks, and the timer wheel's
// position — so standby promotion and ISSU cutover inherit behavior,
// not an approximation of it.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := New(64, 100, 1000)
	// A population with every per-entry property in play: new and
	// established states, distinct expiry deadlines (the clock advances
	// between upserts), and a mix of sync marks.
	for i := 0; i < 12; i++ {
		src.Upsert(snapKey(i), 0, uint64(10+i))
	}
	for i := 0; i < 6; i++ {
		src.Upsert(snapKey(i).Reversed(), 1, uint64(30+i))
	}
	for i := 0; i < 12; i += 3 {
		src.MarkSynced(snapKey(i))
	}
	src.Advance(40) // park the wheel mid-rotation

	snap := src.Snapshot()
	dst := New(64, 100, 1000)
	dst.Upsert(Key{SrcAddr: 99, DstAddr: 98, Proto: 17}, 0, 5) // stale state the restore must clear
	dst.RestoreSnapshot(snap)

	if !reflect.DeepEqual(src.Entries(), dst.Entries()) {
		t.Fatalf("entries did not round-trip:\n src %+v\n dst %+v", src.Entries(), dst.Entries())
	}
	if src.Now() != dst.Now() {
		t.Fatalf("wheel position did not round-trip: %d vs %d", src.Now(), dst.Now())
	}
	// Sync marks round-tripped verbatim: the restored table owes the
	// standby exactly what the source owed.
	var srcUnsynced, dstUnsynced []Entry
	srcUnsynced = src.Unsynced(srcUnsynced)
	dstUnsynced = dst.Unsynced(dstUnsynced)
	if !reflect.DeepEqual(srcUnsynced, dstUnsynced) {
		t.Fatalf("unsynced sets differ:\n src %+v\n dst %+v", srcUnsynced, dstUnsynced)
	}

	// TTL deadlines are live, not cosmetic: advancing both tables
	// through the same future expires the same entries at the same
	// ticks.
	for _, now := range []uint64{60, 120, 600, 1200} {
		src.Advance(now)
		dst.Advance(now)
		if !reflect.DeepEqual(src.Entries(), dst.Entries()) {
			t.Fatalf("expiry behavior diverged at tick %d:\n src %+v\n dst %+v",
				now, src.Entries(), dst.Entries())
		}
		if now == 60 && src.Len() == 0 {
			t.Fatal("expiry sweep emptied the source — the test lost its subject")
		}
	}

	// A snapshot is a value: restoring it twice from the same snapshot
	// is idempotent.
	dst.RestoreSnapshot(snap)
	dst.Advance(1200)
	if !reflect.DeepEqual(src.Entries(), dst.Entries()) {
		t.Fatal("second restore of the same snapshot is not idempotent")
	}
	// And a nil restore is a no-op.
	before := dst.Len()
	dst.RestoreSnapshot(nil)
	if dst.Len() != before {
		t.Fatal("nil snapshot restore mutated the table")
	}
}
