package sim_test

import (
	"testing"

	"microp4/internal/frontend"
	"microp4/internal/ir"
	"microp4/internal/linker"
	"microp4/internal/midend"
	"microp4/internal/sim"
)

// The A-B validation orchestration of Fig. 13, end to end: the
// production program and a test variant both process copies of the
// packet; mismatching results emit the pristine mirror copy for
// logging, the production result goes out, and the test result is
// dropped via its private im copy.

const prodSrc = `
struct empty_t { }
header cnt_h { bit<8> tag; bit<32> value; }
struct phdr_t { cnt_h cnt; }
program Prod : implements Unicast {
  parser P(extractor ex, pkt p, out phdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.cnt); transition accept; }
  }
  control C(pkt p, inout phdr_t h, inout empty_t m, im_t im, out bit<32> res) {
    apply {
      h.cnt.value = h.cnt.value + 1;
      res = h.cnt.value;
      im.set_out_port(1);
    }
  }
  control D(emitter em, pkt p, in phdr_t h) { apply { em.emit(p, h.cnt); } }
}
`

// testSrc is the experimental variant: it adds 2 for tag 0xEE (the bug
// under test), 1 otherwise.
const testSrc = `
struct empty_t { }
header cnt_h { bit<8> tag; bit<32> value; }
struct thdr_t { cnt_h cnt; }
program Test : implements Unicast {
  parser P(extractor ex, pkt p, out thdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.cnt); transition accept; }
  }
  control C(pkt p, inout thdr_t h, inout empty_t m, im_t im, out bit<32> res) {
    apply {
      if (h.cnt.tag == 0xEE) {
        h.cnt.value = h.cnt.value + 2;
      } else {
        h.cnt.value = h.cnt.value + 1;
      }
      res = h.cnt.value;
    }
  }
  control D(emitter em, pkt p, in thdr_t h) { apply { em.emit(p, h.cnt); } }
}
`

const logSrc = `
struct empty_t { }
struct lhdr_t { }
program Log : implements Unicast {
  parser P(extractor ex, pkt p, out lhdr_t h, inout empty_t m, im_t im) {
    state start { transition accept; }
  }
  control C(pkt p, inout lhdr_t h, inout empty_t m, im_t im, in bit<32> a, in bit<32> b) {
    apply { im.digest(a); im.digest(b); }
  }
  control D(emitter em, pkt p, in lhdr_t h) { apply { } }
}
`

const validateSrc = `
struct empty_t { }
struct nohdr_t { }
Prod(pkt p, im_t im, out bit<32> res);
Test(pkt p, im_t im, out bit<32> res);
Log(pkt p, im_t im, in bit<32> a, in bit<32> b);
program Validate : implements Orchestration {
  control C(pkt p, inout nohdr_t h, inout empty_t m, im_t im, out_buf ob) {
    pkt pm;
    pkt pt;
    im_t imm;
    im_t it;
    bit<32> hp;
    bit<32> ht;
    Prod() prog_i;
    Test() test_i;
    Log() log_i;
    apply {
      pm.copy_from(p);
      imm.copy_from(im);
      pt.copy_from(p);
      it.copy_from(im);
      prog_i.apply(p, im, hp);
      test_i.apply(pt, it, ht);
      if (hp != ht) {
        log_i.apply(pm, imm, hp, ht);
        ob.enqueue(pm, imm);
      }
      it.set_out_port(DROP);
      ob.enqueue(p, im);
      ob.enqueue(pt, it);
    }
  }
}
Validate(C) main;
`

func buildValidate(t *testing.T) *sim.Interp {
	t.Helper()
	compile := func(name, src string) *ir.Program {
		p, err := frontend.CompileModule(name, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tp, err := midend.Transform(p)
		if err != nil {
			t.Fatalf("%s: transform: %v", name, err)
		}
		return tp
	}
	l, err := linker.Link(compile("validate.up4", validateSrc),
		compile("prod.up4", prodSrc), compile("test.up4", testSrc), compile("log.up4", logSrc))
	if err != nil {
		t.Fatal(err)
	}
	return sim.NewInterp(l, sim.NewTables())
}

func TestOrchestrationAgreeing(t *testing.T) {
	ip := buildValidate(t)
	// tag 0x01: both variants agree (value+1) — no mirror output.
	in := []byte{0x01, 0, 0, 0, 5}
	res, err := ip.Process(in, sim.Metadata{InPort: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Outputs: production packet (port from shared im = 1 set by Prod)
	// and the test copy (dropped via port DROP, but enqueued — the
	// architecture filters enqueue-to-DROP).
	var kept []sim.OutPkt
	for _, o := range res.Out {
		if o.Port != 511 {
			kept = append(kept, o)
		}
	}
	if len(kept) != 1 {
		t.Fatalf("agreeing run: %d non-drop outputs, want 1 (production): %+v", len(kept), res.Out)
	}
	if kept[0].Data[4] != 6 {
		t.Errorf("production output value = %d, want 6", kept[0].Data[4])
	}
	if len(res.Digests) != 0 {
		t.Errorf("agreeing run logged digests: %v", res.Digests)
	}
}

func TestOrchestrationDiverging(t *testing.T) {
	ip := buildValidate(t)
	// tag 0xEE: the test variant's bug fires (value+2 vs value+1).
	in := []byte{0xEE, 0, 0, 0, 5}
	res, err := ip.Process(in, sim.Metadata{InPort: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two outputs survive: the pristine mirror copy (value still 5) and
	// the production packet (value 6). The test copy was enqueued with
	// its im marked DROP and filtered by the architecture.
	if len(res.Out) != 2 {
		t.Fatalf("diverging run: %d outputs, want 2: %+v", len(res.Out), res.Out)
	}
	foundMirror, found6 := false, false
	for _, o := range res.Out {
		switch o.Data[4] {
		case 5:
			foundMirror = true
		case 6:
			found6 = true
			if o.Port != 1 {
				t.Errorf("production packet on port %d, want 1", o.Port)
			}
		case 7:
			t.Errorf("drop-marked test copy leaked: %+v", o)
		}
	}
	if !foundMirror || !found6 {
		t.Errorf("outputs wrong: %+v", res.Out)
	}
	// Log reported both results: 6 (prod) and 7 (test).
	if len(res.Digests) != 2 || res.Digests[0] != 6 || res.Digests[1] != 7 {
		t.Errorf("digests = %v, want [6 7]", res.Digests)
	}
}
