package sim

import (
	"errors"
	"testing"

	"microp4/internal/obs"
)

func TestErrorTaxonomyMatching(t *testing.T) {
	cases := []struct {
		err      error
		class    ErrorClass
		sentinel error
	}{
		{&ParseError{Program: "p", State: "start", Reason: "boom"}, ClassParse, ErrParse},
		{&DeparseError{Program: "p", Reason: "boom"}, ClassDeparse, ErrDeparse},
		{&TableError{Table: "t", Action: "a", Reason: "boom"}, ClassTable, ErrTable},
		{&EngineFault{Engine: "reference", Reason: "boom"}, ClassEngine, ErrEngine},
		{&RecircBudgetError{Limit: 4}, ClassRecirc, ErrRecirc},
	}
	for _, c := range cases {
		if got, ok := ClassOf(c.err); !ok || got != c.class {
			t.Errorf("ClassOf(%v) = %v, %v; want %v, true", c.err, got, ok, c.class)
		}
		if !errors.Is(c.err, c.sentinel) {
			t.Errorf("errors.Is(%v, %v) = false", c.err, c.sentinel)
		}
		for _, other := range cases {
			if other.sentinel != c.sentinel && errors.Is(c.err, other.sentinel) {
				t.Errorf("errors.Is(%v, %v) = true; want false", c.err, other.sentinel)
			}
		}
		if c.err.Error() == "" {
			t.Errorf("%T has empty Error()", c.err)
		}
	}
	// errors.As against concrete types.
	var te *TableError
	if !errors.As(error(&TableError{Table: "x"}), &te) || te.Table != "x" {
		t.Error("errors.As(*TableError) failed")
	}
	if _, ok := ClassOf(errors.New("untyped")); ok {
		t.Error("ClassOf(untyped) reported a class")
	}
}

func TestRecoverFaultConvertsPanic(t *testing.T) {
	run := func() (res *ProcResult, err error) {
		defer recoverFault("reference", &res, &err)
		res = &ProcResult{}
		panic("interpreter bug")
	}
	res, err := run()
	if res != nil {
		t.Error("result not cleared on panic")
	}
	var ef *EngineFault
	if !errors.As(err, &ef) {
		t.Fatalf("recovered error %T, want *EngineFault", err)
	}
	if ef.PanicValue != "interpreter bug" || len(ef.Stack) == 0 {
		t.Errorf("fault missing panic context: %+v", ef)
	}
	if ef.Engine != "reference" {
		t.Errorf("engine = %q", ef.Engine)
	}
}

func TestCountErrorClassifies(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	m.countError(&ParseError{})
	m.countError(&DeparseError{})
	m.countError(&TableError{})
	m.countError(&EngineFault{})
	m.countError(&RecircBudgetError{})
	m.countError(errors.New("untyped")) // counts as an engine fault
	m.countError(nil)                   // no-op
	if got := m.ParserErrors.Value(); got != 1 {
		t.Errorf("ParserErrors = %d", got)
	}
	if got := m.DeparseErrors.Value(); got != 1 {
		t.Errorf("DeparseErrors = %d", got)
	}
	if got := m.TableErrors.Value(); got != 1 {
		t.Errorf("TableErrors = %d", got)
	}
	if got := m.EngineFaults.Value(); got != 2 {
		t.Errorf("EngineFaults = %d", got)
	}
	if got := m.RecircDrops.Value(); got != 1 {
		t.Errorf("RecircDrops = %d", got)
	}
	// Nil receiver is safe (metrics disabled).
	var nilM *Metrics
	nilM.countError(&EngineFault{})
}
