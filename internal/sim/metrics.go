package sim

import (
	"strconv"
	"sync"
	"sync/atomic"

	"microp4/internal/flow"
	"microp4/internal/obs"
)

// TableMetrics counts lookup outcomes of one table.
type TableMetrics struct {
	Hits     *obs.Counter // an installed or const entry matched
	Defaults *obs.Counter // no entry matched; the default action ran
	Misses   *obs.Counter // no entry matched and there was no default
}

// FlowMetrics mirrors one flowtable instance's statistics. All four
// are gauges set from the table's own cumulative counters after each
// flow operation — last-writer-wins, so the worker-pool shards share
// the parent's series (like Clock) and the exported values stay exact.
type FlowMetrics struct {
	Entries   *obs.Gauge // live entries (up4_flow_entries)
	Inserts   *obs.Gauge // cumulative dataplane learns (up4_flow_inserts)
	Evictions *obs.Gauge // cumulative capacity evictions (up4_flow_evictions)
	Expiries  *obs.Gauge // cumulative TTL expiries (up4_flow_expiries)
}

// PortMetrics counts traffic on one port.
type PortMetrics struct {
	RxPackets *obs.Counter
	RxBytes   *obs.Counter
	TxPackets *obs.Counter
	TxBytes   *obs.Counter
	Drops     *obs.Counter // packets received on this port that were dropped
}

// Metrics is the dataplane's observability state: per-port and
// per-table counters, error counters, and a per-packet latency
// histogram, all registered in an obs.Registry for exposition.
//
// Hot-path contract: Table and Port resolve through copy-on-write maps
// (one atomic load + map read, no locks, no allocation once the series
// exists); engines check their metrics pointer for nil once per site,
// so a switch without metrics attached pays nothing beyond that branch.
type Metrics struct {
	reg *obs.Registry

	Packets       *obs.Counter // packets processed (either engine)
	Drops         *obs.Counter
	ParserErrors  *obs.Counter
	DeparseErrors *obs.Counter
	TableErrors   *obs.Counter // table/action/register state inconsistent with the program
	EngineFaults  *obs.Counter // internal engine faults, incl. recovered panics
	RecircDrops   *obs.Counter // packets that exceeded the recirculation budget
	Recircs       *obs.Counter
	Latency       *obs.Histogram // per-packet processing latency, ns
	Clock         *obs.Gauge     // the switch's virtual clock (last IN_TIMESTAMP)

	// SampleEvery controls latency-histogram sampling: every Nth packet
	// is timed (two time.Now calls around Process). The default of 1
	// times every packet — the histogram count then equals the packet
	// count. Raise it (e.g. 256) to amortize the clock reads away on
	// throughput-critical deployments; counters are unaffected.
	SampleEvery atomic.Int64
	sampleSeq   atomic.Uint64

	// parent is non-nil on a shard view (see Shard): every counter and
	// histogram above is then an obs shard child of the parent's, and
	// SampleEvery is read from the parent.
	parent *Metrics
	shards atomic.Value // []*Metrics, parent only

	mu     sync.Mutex
	tables atomic.Value // map[string]*TableMetrics
	ports  atomic.Value // map[uint64]*PortMetrics
	flows  atomic.Value // map[string]*FlowMetrics
}

// sampleLatency reports whether this packet's latency should be timed.
// Nil-safe: no metrics, no timing. Shards keep their own sampling
// sequence (uncontended) but read the period from the parent, so tuning
// SampleEvery on the switch reaches every worker.
func (m *Metrics) sampleLatency() bool {
	if m == nil {
		return false
	}
	se := &m.SampleEvery
	if m.parent != nil {
		se = &m.parent.SampleEvery
	}
	n := se.Load()
	if n <= 1 {
		return true
	}
	return m.sampleSeq.Add(1)%uint64(n) == 0
}

// NewMetrics returns dataplane metrics registered in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		reg:           reg,
		Packets:       reg.Counter("up4_switch_packets_total", "Packets processed by the dataplane"),
		Drops:         reg.Counter("up4_switch_drops_total", "Packets dropped by the dataplane"),
		ParserErrors:  reg.Counter("up4_parser_errors_total", "Packets rejected by a parser"),
		DeparseErrors: reg.Counter("up4_deparse_errors_total", "Deparser failures"),
		TableErrors:   reg.Counter("up4_table_errors_total", "Table state inconsistent with the program"),
		EngineFaults:  reg.Counter("up4_engine_faults_total", "Engine faults, including recovered panics"),
		RecircDrops:   reg.Counter("up4_recirc_drops_total", "Packets dropped for exceeding the recirculation budget"),
		Recircs:       reg.Counter("up4_recirculations_total", "Packets sent through the recirculation path"),
		Latency:       reg.Histogram("up4_packet_latency_ns", "Per-packet processing latency in nanoseconds", obs.LatencyBucketsNs),
		Clock:         reg.Gauge("up4_switch_clock", "Virtual clock of the switch (packets seen)"),
	}
	m.SampleEvery.Store(1)
	m.tables.Store(map[string]*TableMetrics{})
	m.ports.Store(map[uint64]*PortMetrics{})
	m.flows.Store(map[string]*FlowMetrics{})
	return m
}

// Registry returns the backing registry (for exposition).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Shard returns worker i's telemetry shard: a Metrics view whose
// counters and histograms are uncontended per-worker children of this
// Metrics', folded back in at scrape time by the obs layer. Attach a
// shard to packet metadata (Metadata.M) and the engines count into it
// instead of the switch-wide series; aggregated values (registry
// expositions, Counter.Value) remain exact. Shards are cached — calling
// Shard(i) repeatedly returns the same view. The Clock gauge is shared
// with the parent (it is a last-writer-wins instant, not a sum).
func (m *Metrics) Shard(i int) *Metrics {
	if m == nil {
		return nil
	}
	if m.parent != nil {
		return m.parent.Shard(i)
	}
	if s, _ := m.shards.Load().([]*Metrics); i < len(s) {
		return s[i]
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s, _ := m.shards.Load().([]*Metrics)
	for len(s) <= i {
		s = append(s, m.newShard())
	}
	m.shards.Store(s)
	return s[i]
}

// newShard builds one per-worker view (caller holds m.mu).
func (m *Metrics) newShard() *Metrics {
	s := &Metrics{
		reg:           m.reg,
		parent:        m,
		Packets:       m.Packets.Shard(),
		Drops:         m.Drops.Shard(),
		ParserErrors:  m.ParserErrors.Shard(),
		DeparseErrors: m.DeparseErrors.Shard(),
		TableErrors:   m.TableErrors.Shard(),
		EngineFaults:  m.EngineFaults.Shard(),
		RecircDrops:   m.RecircDrops.Shard(),
		Recircs:       m.Recircs.Shard(),
		Latency:       m.Latency.Shard(),
		Clock:         m.Clock,
	}
	s.tables.Store(map[string]*TableMetrics{})
	s.ports.Store(map[uint64]*PortMetrics{})
	s.flows.Store(map[string]*FlowMetrics{})
	return s
}

// Table returns the counters of a fully qualified table, creating them
// on first use. The fast path is one atomic load plus a map read. On a
// shard view the counters are per-worker children of the parent's.
func (m *Metrics) Table(name string) *TableMetrics {
	if t := m.tables.Load().(map[string]*TableMetrics)[name]; t != nil {
		return t
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.tables.Load().(map[string]*TableMetrics)
	if t := old[name]; t != nil {
		return t
	}
	var t *TableMetrics
	if m.parent != nil {
		pt := m.parent.Table(name)
		t = &TableMetrics{Hits: pt.Hits.Shard(), Defaults: pt.Defaults.Shard(), Misses: pt.Misses.Shard()}
	} else {
		t = &TableMetrics{
			Hits:     m.reg.Counter("up4_table_hits_total", "Table lookups that matched an entry", obs.L("table", name)),
			Defaults: m.reg.Counter("up4_table_defaults_total", "Table lookups that ran the default action", obs.L("table", name)),
			Misses:   m.reg.Counter("up4_table_misses_total", "Table lookups with no match and no default", obs.L("table", name)),
		}
	}
	next := make(map[string]*TableMetrics, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = t
	m.tables.Store(next)
	return t
}

// Port returns the counters of a port, creating them on first use.
func (m *Metrics) Port(port uint64) *PortMetrics {
	if p := m.ports.Load().(map[uint64]*PortMetrics)[port]; p != nil {
		return p
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.ports.Load().(map[uint64]*PortMetrics)
	if p := old[port]; p != nil {
		return p
	}
	var p *PortMetrics
	if m.parent != nil {
		pp := m.parent.Port(port)
		p = &PortMetrics{
			RxPackets: pp.RxPackets.Shard(), RxBytes: pp.RxBytes.Shard(),
			TxPackets: pp.TxPackets.Shard(), TxBytes: pp.TxBytes.Shard(),
			Drops: pp.Drops.Shard(),
		}
	} else {
		l := obs.L("port", strconv.FormatUint(port, 10))
		p = &PortMetrics{
			RxPackets: m.reg.Counter("up4_port_rx_packets_total", "Packets received per port", l),
			RxBytes:   m.reg.Counter("up4_port_rx_bytes_total", "Bytes received per port", l),
			TxPackets: m.reg.Counter("up4_port_tx_packets_total", "Packets transmitted per port", l),
			TxBytes:   m.reg.Counter("up4_port_tx_bytes_total", "Bytes transmitted per port", l),
			Drops:     m.reg.Counter("up4_port_drops_total", "Packets received on this port that were dropped", l),
		}
	}
	next := make(map[uint64]*PortMetrics, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[port] = p
	m.ports.Store(next)
	return p
}

// Flow returns the gauges of a fully qualified flowtable instance,
// creating them on first use. Shard views resolve to the parent's
// series — flow gauges carry cumulative values, so last-writer-wins
// sets are exact.
func (m *Metrics) Flow(name string) *FlowMetrics {
	if m.parent != nil {
		return m.parent.Flow(name)
	}
	if f := m.flows.Load().(map[string]*FlowMetrics)[name]; f != nil {
		return f
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.flows.Load().(map[string]*FlowMetrics)
	if f := old[name]; f != nil {
		return f
	}
	l := obs.L("table", name)
	f := &FlowMetrics{
		Entries:   m.reg.Gauge("up4_flow_entries", "Live flow-table entries", l),
		Inserts:   m.reg.Gauge("up4_flow_inserts", "Cumulative flow-table learns", l),
		Evictions: m.reg.Gauge("up4_flow_evictions", "Cumulative flow-table capacity evictions", l),
		Expiries:  m.reg.Gauge("up4_flow_expiries", "Cumulative flow-table TTL expiries", l),
	}
	next := make(map[string]*FlowMetrics, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = f
	m.flows.Store(next)
	return f
}

// countFlow mirrors a flowtable's statistics into its gauges after a
// flow operation. Nil-safe.
func (m *Metrics) countFlow(name string, t *flow.Table) {
	if m == nil {
		return
	}
	f := m.Flow(name)
	st := t.Stats()
	f.Entries.Set(int64(t.Len()))
	f.Inserts.Set(int64(st.Inserts))
	f.Evictions.Set(int64(st.Evictions))
	f.Expiries.Set(int64(st.Expiries))
}

// countTable records one lookup outcome. Nil-safe.
func (m *Metrics) countTable(name string, outcome LookupOutcome) {
	if m == nil {
		return
	}
	t := m.Table(name)
	switch outcome {
	case LookupHit:
		t.Hits.Inc()
	case LookupDefault:
		t.Defaults.Inc()
	case LookupMiss:
		t.Misses.Inc()
	}
}

// countError classifies a typed runtime error into the error counters.
// Nil-safe on both receiver and error; untyped errors count as engine
// faults (the taxonomy invariant says there should be none).
func (m *Metrics) countError(err error) {
	if m == nil || err == nil {
		return
	}
	class, ok := ClassOf(err)
	if !ok {
		m.EngineFaults.Inc()
		return
	}
	switch class {
	case ClassParse:
		m.ParserErrors.Inc()
	case ClassDeparse:
		m.DeparseErrors.Inc()
	case ClassTable:
		m.TableErrors.Inc()
	case ClassEngine:
		m.EngineFaults.Inc()
	case ClassRecirc:
		m.RecircDrops.Inc()
	case ClassControl:
		// Control-plane rejects never reach the Process boundary; they
		// are counted by the ctrlplane metrics (up4_ctrl_rejects_total).
	}
}

// countResult records the per-packet tallies shared by both engines.
func (m *Metrics) countResult(inPort uint64, pktLen int, res *ProcResult) {
	if m == nil {
		return
	}
	m.Packets.Inc()
	in := m.Port(inPort)
	in.RxPackets.Inc()
	in.RxBytes.Add(uint64(pktLen))
	if res == nil {
		return
	}
	if res.ParserReject {
		m.ParserErrors.Inc()
	}
	if res.Dropped {
		m.Drops.Inc()
		in.Drops.Inc()
		return
	}
	if res.Recirculate {
		m.Recircs.Inc()
	}
	for _, o := range res.Out {
		out := m.Port(o.Port)
		out.TxPackets.Inc()
		out.TxBytes.Add(uint64(len(o.Data)))
	}
}

// SetMetrics attaches (or, with nil, detaches) metrics to the executor.
func (e *Exec) SetMetrics(m *Metrics) { e.metrics = m }

// SetMetrics attaches (or, with nil, detaches) metrics to the
// interpreter.
func (ip *Interp) SetMetrics(m *Metrics) { ip.metrics = m }
