package sim_test

import (
	"bytes"
	"testing"

	"microp4/internal/lib"
	"microp4/internal/pkt"
	"microp4/internal/sim"
)

// Differential suites for the NF scenario pack: P10 (tunnel decap +
// stateful NAT64 + routing) and P11 (L4 load balancer + ACL). Each
// curated packet class runs through the composed interpreter, the
// compiled pipeline, and the monolithic baseline, which must agree.
//
// Curation note: two composed-vs-mono divergence corners are excluded
// by construction, matching real deployments rather than papering over
// bugs. (1) A tunnel packet with a truncated inner header that misses
// tun_tbl: the composed pipeline never parses the inner packet (Decap
// passed, NAT64 sees the outer header), while the flat parser walks it
// eagerly and rejects. (2) Nonsensical tun_tbl entries (e.g. GRE decap
// installed for protocol 4): InstallDefaultRules only installs each
// decap flavor on its own protocol.

// v4pp builds eth + IPv4 + TCP/UDP with explicit ports.
func v4pp(src, dst uint32, ttl, proto uint8, sp, dp uint16) []byte {
	b := pkt.NewBuilder().
		Ethernet(0x000000000001, 0x000000000002, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: ttl, Protocol: proto, Src: src, Dst: dst, TotalLen: 40})
	switch proto {
	case pkt.ProtoTCP:
		b.TCP(sp, dp)
	case pkt.ProtoUDP:
		b.UDP(sp, dp, 12)
	}
	return b.Payload([]byte("data")).Bytes()
}

// v6pp builds eth + IPv6 + TCP with explicit addresses and ports.
func v6pp(srcHi, srcLo, dstHi, dstLo uint64, hop uint8, sp, dp uint16) []byte {
	return pkt.NewBuilder().
		Ethernet(0x000000000001, 0x000000000002, pkt.EtherTypeIPv6).
		IPv6(pkt.IPv6Opts{NextHdr: pkt.ProtoTCP, HopLimit: hop, PayloadLen: 24,
			SrcHi: srcHi, SrcLo: srcLo, DstHi: dstHi, DstLo: dstLo}).
		TCP(sp, dp).Payload([]byte("data")).Bytes()
}

// tunPkt wraps inner (bytes after Ethernet) in an outer IPv4 tunnel
// header addressed to outerDst with the given protocol.
func tunPkt(outerDst uint32, proto uint8, inner []byte) []byte {
	return pkt.NewBuilder().
		Ethernet(0x000000000001, 0x000000000002, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 32, Protocol: proto, Src: 0x08080808, Dst: outerDst,
			TotalLen: uint16(20 + len(inner))}).
		Payload(inner).Bytes()
}

// grePkt wraps inner in outer IPv4 (protocol 47) + a 4-byte GRE header
// carrying greProto.
func grePkt(outerDst uint32, greProto uint16, inner []byte) []byte {
	gre := []byte{0, 0, byte(greProto >> 8), byte(greProto)}
	return tunPkt(outerDst, 47, append(gre, inner...))
}

func TestDifferentialP10Edge(t *testing.T) {
	e := buildEngines(t, "P10")
	innerA := ipv4Pkt(0x0A010203, 64, pkt.ProtoTCP)[14:]
	innerB := ipv4Pkt(0x14000001, 9, pkt.ProtoUDP)[14:]
	inner6 := ipv6Pkt(lib.NetV6Hi|1, 0x99, 64)[14:]
	cases := map[string][]byte{
		// Plain routing, both families.
		"plain-v4-netA":     ipv4Pkt(0x0A010203, 64, pkt.ProtoTCP),
		"plain-v4-netB":     ipv4Pkt(0x14000001, 64, pkt.ProtoUDP),
		"plain-v4-no-route": ipv4Pkt(0x1E000001, 64, pkt.ProtoTCP),
		"plain-v4-ttl-0":    ipv4Pkt(0x0A010203, 0, pkt.ProtoTCP),
		"plain-v6-routed":   ipv6Pkt(lib.NetV6Hi|1, 0x99, 64),
		"plain-v6-no-route": ipv6Pkt(0x3001000000000000, 0x99, 64),
		// NAT64: a bound client translates out; an unknown v4 flow to the
		// pool is an unsolicited inbound translation and must drop. (The
		// tuple is never learned by any other case in this map — cases
		// share flowtable state and run in random order.)
		"nat64-outbound": v6pp(lib.V6ClientHi, lib.V6ClientLo,
			lib.Nat64PfxHi, 0x14000001, 64, 40000, 80),
		"nat64-unsolicited": v4pp(0x14000009, lib.Nat64Pool, 64, pkt.ProtoTCP, 9999, 40000),
		"nat64-unbound-src": v6pp(0xFD00000000000001, 2,
			lib.Nat64PfxHi, 0x14000001, 64, 40000, 80),
		// Tunnel termination, all three flavors, plus inner TTL expiry.
		"tun-ip4":        tunPkt(lib.TunDst, 4, innerA),
		"tun-6in4":       tunPkt(lib.TunDst, 41, inner6),
		"tun-gre-v4":     grePkt(lib.TunDst, 0x0800, innerB),
		"tun-gre-v6":     grePkt(lib.TunDst, 0x86DD, inner6),
		"tun-gre-non-ip": grePkt(lib.TunDst, 0x8847, []byte{0, 1, 2, 3, 4}),
		"tun-inner-ttl0": tunPkt(lib.TunDst, 4, ipv4Pkt(0x0A010203, 0, pkt.ProtoTCP)[14:]),
		// Unterminated tunnels route on the outer header.
		"tun-pass-ip4": tunPkt(0x14000001, 4, innerA),
		"tun-pass-gre": grePkt(0x0A000005, 0x0800, innerB),
		// Non-IP and malformed input.
		"arp-unknown":   pkt.NewBuilder().Ethernet(1, 2, 0x0806).Payload([]byte{0, 1, 2, 3}).Bytes(),
		"truncated-eth": {0xAA, 0xBB, 0xCC},
		"truncated-v4": pkt.NewBuilder().
			Ethernet(1, 2, pkt.EtherTypeIPv4).Payload([]byte{0x45, 0}).Bytes(),
		"empty": {},
	}
	for name, data := range cases {
		e.checkAgreement(t, name, data, meta())
	}
}

// TestP10Nat64FlowDifferential drives the stateful NAT64 lifecycle —
// learn, establish, refresh, expire — through all three engines. The
// policy point is nat_pol_tbl on (rev, hit): inbound pool traffic
// passes only while the outbound flow entry is alive.
func TestP10Nat64FlowDifferential(t *testing.T) {
	e := buildEngines(t, "P10")
	out := v6pp(lib.V6ClientHi, lib.V6ClientLo, lib.Nat64PfxHi, 0x14000001, 64, 40000, 80)
	reply := v4pp(0x14000001, lib.Nat64Pool, 64, pkt.ProtoTCP, 80, 40000)

	m := func(ts uint64) sim.Metadata { return sim.Metadata{InPort: 7, InTimestamp: ts} }

	// Inbound before any outbound packet: unsolicited, dropped.
	e.checkAgreement(t, "rev-unsolicited", reply, m(1))
	// Outbound learns the translation flow and routes to NetB.
	e.checkAgreement(t, "out-learn", out, m(2))
	// The reply now translates back to the client and establishes.
	e.checkAgreement(t, "rev-reply", reply, m(3))
	e.checkAgreement(t, "rev-established", reply, m(4))
	e.checkAgreement(t, "out-refresh", out, m(5))
	// Past the established TTL the binding has aged out.
	e.checkAgreement(t, "rev-expired", reply, m(5+65537))
	// Relearn, then idle out (idle TTL 256) without establishing.
	e.checkAgreement(t, "out-relearn", out, m(5+65538))
	e.checkAgreement(t, "rev-idle-expired", reply, m(5+65538+257))

	it := e.interp.FlowTables()["n64_i.conn"]
	xt := e.exec.FlowTable("n64_i.conn")
	if it == nil || xt == nil {
		t.Fatal("n64_i.conn missing from an engine's flow state")
	}
	if is, xs := it.Stats(), xt.Stats(); is != xs {
		t.Errorf("counter mismatch: interp %+v exec %+v", is, xs)
	} else if is.Inserts == 0 || is.Expiries == 0 {
		t.Errorf("scenario should have inserted and expired flows: %+v", is)
	}
}

func TestDifferentialP11Lb(t *testing.T) {
	e := buildEngines(t, "P11")
	cases := map[string][]byte{
		// VIP traffic is rewritten to a backend and forwarded to PortB.
		"vip-tcp": v4pp(0x0A000001, lib.VipAddr, 64, pkt.ProtoTCP, 1000, lib.VipPort),
		// Only (VIP, TCP, 80) is a service; everything else goes upstream.
		"vip-udp-not-service": v4pp(0x0A000001, lib.VipAddr, 64, pkt.ProtoUDP, 1000, lib.VipPort),
		"vip-gre-no-l4":       v4pp(0x0A000001, lib.VipAddr, 64, 47, 0, 0),
		"non-vip-tcp":         v4pp(0x0A000002, 0x14000001, 64, pkt.ProtoTCP, 1234, 443),
		// The ACL fires on the rewritten header: a VIP flow lands on
		// backend port 8080 and passes, while direct :22 traffic drops.
		"acl-deny-22": v4pp(0x0A000003, 0x14000001, 64, pkt.ProtoTCP, 5, 22),
		"vip-port-22": v4pp(0x0A000003, lib.VipAddr, 64, pkt.ProtoTCP, 5, 22),
		// Non-IPv4 traffic bypasses both NFs and goes upstream.
		"plain-v6": ipv6Pkt(lib.NetV6Hi|1, 0x99, 64),
		"arp":      pkt.NewBuilder().Ethernet(1, 2, 0x0806).Payload([]byte{0, 1, 2, 3}).Bytes(),
		// Malformed input rejects in both the composed ACL's eager L4
		// parse and the flat parser.
		"short-tcp": pkt.NewBuilder().
			Ethernet(1, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP, Src: 1, Dst: 2}).
			Payload([]byte{0x12, 0x34, 0x00, 0x50}).Bytes(),
		"truncated-eth": {0xAA, 0xBB, 0xCC},
		"empty":         {},
	}
	for name, data := range cases {
		e.checkAgreement(t, name, data, meta())
	}
}

// TestP11StickinessDifferential pins the load balancer's core promise
// across all three engines: once a flow is assigned a backend, pool
// churn (bucket remapping) must not move it, while fresh flows follow
// the new map.
func TestP11StickinessDifferential(t *testing.T) {
	e := buildEngines(t, "P11")
	flowA := v4pp(0x0A000001, lib.VipAddr, 64, pkt.ProtoTCP, 1000, lib.VipPort)
	m := func(ts uint64) sim.Metadata { return sim.Metadata{InPort: 7, InTimestamp: ts} }

	run := func(name string, data []byte, ts uint64) []byte {
		t.Helper()
		e.checkAgreement(t, name, data, m(ts))
		r, err := e.exec.Process(data, m(ts))
		if err != nil || r.Dropped || len(r.Out) != 1 {
			t.Fatalf("%s: unexpected result r=%+v err=%v", name, r, err)
		}
		return r.Out[0].Data
	}

	before := run("flowA-pin", flowA, 1)
	run("flowA-repeat", flowA, 2)

	// Churn the pool: rotate every bucket to a different backend.
	lib.InstallBalancerPool(e.composedTables, false, 1)
	lib.InstallBalancerPool(e.monoTables, true, 1)

	after := run("flowA-post-churn", flowA, 3)
	if !bytes.Equal(before, after) {
		t.Errorf("established flow moved backends on pool churn:\n before %x\n after  %x",
			before, after)
	}

	// A new flow from a different client follows the remapped pool; all
	// engines agree on its (new) assignment too.
	flowB := v4pp(0x0B0000CC, lib.VipAddr, 64, pkt.ProtoTCP, 2000, lib.VipPort)
	run("flowB-post-churn", flowB, 4)

	// run() replays each packet through exec to capture bytes, so hit
	// counters intentionally differ; the pinned flow set must not.
	it := e.interp.FlowTables()["bal_i.conn"]
	xt := e.exec.FlowTable("bal_i.conn")
	if it == nil || xt == nil {
		t.Fatal("bal_i.conn missing from an engine's flow state")
	}
	if it.Len() != 2 || xt.Len() != 2 {
		t.Errorf("want 2 pinned flows in each engine, got interp=%d exec=%d",
			it.Len(), xt.Len())
	}
}
