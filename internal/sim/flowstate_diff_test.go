package sim_test

import (
	"testing"

	"microp4/internal/lib"
	"microp4/internal/pkt"
	"microp4/internal/sim"
)

// P9 is the one program whose behavior depends on packet *sequences*:
// the flowtable extern carries state across packets, which the
// single-packet path-equivalence witnesses cannot reach. This test
// drives the same learn/establish/expire scenario through all three
// engines — composed interpreter, compiled pipeline, monolithic
// interpreter — and requires identical outcomes at every step.
func TestP9FlowStateDifferential(t *testing.T) {
	e := buildEngines(t, "P9")

	fwd := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP, Src: 0x0A000001, Dst: 0x14000001}).
		TCP(4321, 443).Payload([]byte("syn")).Bytes()
	rev := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP, Src: 0x14000001, Dst: 0x0A000001}).
		TCP(443, 4321).Payload([]byte("ack")).Bytes()

	meta := func(port, ts uint64) sim.Metadata {
		return sim.Metadata{InPort: port, InTimestamp: ts}
	}

	// Unsolicited reverse traffic before any learn: dropped everywhere.
	e.checkAgreement(t, "rev-unsolicited", rev, meta(lib.PortB, 1))
	// Forward packet learns the flow and routes to NetB.
	e.checkAgreement(t, "fwd-learn", fwd, meta(lib.PortA, 2))
	// The learned flow now admits its return path (and establishes it).
	e.checkAgreement(t, "rev-establish", rev, meta(lib.PortB, 3))
	// Established flows keep passing.
	e.checkAgreement(t, "rev-established", rev, meta(lib.PortB, 4))
	// Forward refresh on the live flow still routes.
	e.checkAgreement(t, "fwd-refresh", fwd, meta(lib.PortA, 5))
	// Past the established TTL (65536 ticks) the flow has aged out:
	// reverse traffic is unsolicited again.
	e.checkAgreement(t, "rev-expired", rev, meta(lib.PortB, 5+65537))
	// Re-learn, then let the flow sit as idle/new past the idle TTL
	// (256 ticks): still not established, so the return path closes.
	e.checkAgreement(t, "fwd-relearn", fwd, meta(lib.PortA, 5+65538))
	e.checkAgreement(t, "rev-idle-expired", rev, meta(lib.PortB, 5+65538+257))

	// Cross-check the dataplane's verdicts against the flow tables the
	// engines expose: the compiled engine must agree with the composed
	// interpreter on the surviving entries.
	it := e.interp.FlowTables()["fs_i.conn"]
	xt := e.exec.FlowTable("fs_i.conn")
	if it == nil || xt == nil {
		t.Fatal("fs_i.conn missing from an engine's flow state")
	}
	if it.Len() != xt.Len() {
		t.Errorf("interp has %d entries, exec %d", it.Len(), xt.Len())
	}
	is, xs := it.Stats(), xt.Stats()
	if is != xs {
		t.Errorf("counter mismatch: interp %+v exec %+v", is, xs)
	}
	if is.Inserts == 0 || is.Expiries == 0 {
		t.Errorf("scenario should have inserted and expired flows: %+v", is)
	}
}
