package sim

// HopSpan collects one packet's hop-level observations while it crosses
// an engine: per-table lookup outcomes, parse/execute/deparse wall
// timings, and the packet's disposition. It is pure data — the trace
// subsystem (internal/trace) wraps it into a span for the flight
// recorder — so sim stays dependency-free.
//
// A nil *HopSpan (the default in Metadata) records nothing and costs
// one pointer check per site; all mutators are nil-safe. A HopSpan is
// owned by a single packet's Process call and needs no locking.
type HopSpan struct {
	ParseNs   int64 // reference engine: parser FSM wall time (all frames)
	ExecNs    int64 // total engine wall time for the pass
	DeparseNs int64 // reference engine: deparser wall time (all frames)

	Tables []TableStep // lookups in execution order

	Disposition string   // "forward", "drop", "recirculate", "multicast", "error"
	OutPorts    []uint64 // egress ports (forward/multicast)
	Recircs     int      // recirculation passes taken
	Err         string   // typed error, when the pass failed
}

// TableStep is one table lookup within a hop.
type TableStep struct {
	Table   string `json:"table"`
	Outcome string `json:"outcome"` // "hit", "default", "miss"
	Action  string `json:"action,omitempty"`
}

// step appends one lookup outcome. Nil-safe.
func (h *HopSpan) step(table string, outcome LookupOutcome, action string) {
	if h == nil {
		return
	}
	h.Tables = append(h.Tables, TableStep{Table: table, Outcome: outcome.String(), Action: action})
}

// String renders a LookupOutcome for spans and traces.
func (o LookupOutcome) String() string {
	switch o {
	case LookupHit:
		return "hit"
	case LookupDefault:
		return "default"
	case LookupMiss:
		return "miss"
	}
	return "unknown"
}
