package sim

import (
	"microp4/internal/ir"
)

// This file implements the reference interpreter's observation mode,
// used by internal/equiv's path-coverage checker. ObserveProcess runs a
// packet exactly like Process but additionally records an ObsEvent per
// module invocation, parser state, header extraction, and control
// decision — and, for every decision, where in the *input packet* the
// deciding value came from (a BitLoc), tracked through module-call
// argument binding and deparser write-back splices. With no observer
// attached the hooks reduce to nil checks; the hot path is unchanged.

// BitLoc locates a value in the input packet: the value equals bits
// [Off, Off+Width) of the original packet (big-endian bit order, as
// readBits counts them) plus the affine offset Add, truncated to Width
// bits — matching the interpreter, which truncates arithmetic results
// to the expression width on evaluation and storage. Add is 0 for a
// plain copy; the affine extension keeps provenance through `x + 1` /
// `x - 1` style arithmetic, e.g. SRv6's decremented segmentsLeft. OK
// is false when the value's provenance could not be tracked (computed,
// rewritten, or spliced over).
type BitLoc struct {
	Off   int
	Width int
	Add   uint64
	OK    bool
}

// ObsEvent is one step of an observed execution. Kind selects which
// fields are meaningful:
//
//	"enter"   — a module invocation begins (Inst, Prog)
//	"state"   — the parser enters a state (State)
//	"extract" — a header was extracted (Hdr; Loc covers the whole region)
//	"accept"  — this invocation's parser accepted
//	"reject"  — this invocation's parser rejected (Reason: "short",
//	            "no-match", or "explicit")
//	"select"  — a select transition fired (State, Trans, SelVals,
//	            SelLocs, Taken = case index or -1 for no match)
//	"table"   — a table was applied (Table, FQ, Keys, KeyLocs, Outcome,
//	            Action = resolved unprefixed action, "" on a miss)
//	"if"      — an if branched (Stmt, CondVal, Branch 1/0; CondParts
//	            decomposes the condition into conjuncts, located when
//	            possible, so callers can force either branch)
//	"switch"  — a switch branched (Stmt, CondVal, Loc, Branch = matched
//	            case index or -1 for default/fall-through)
//
// Pointer fields (Trans, Table, Stmt) reference the interpreter's
// linked IR and are stable across runs of the same Interp, so callers
// may key on them.
type ObsEvent struct {
	Kind string
	Inst string // module instance path ("" = main)
	Prog string // program name

	State  string
	Reason string

	Hdr string
	Loc BitLoc

	Trans   *ir.Trans
	SelVals []uint64
	SelLocs []BitLoc
	Taken   int

	Table   *ir.Table
	FQ      string
	Keys    []uint64
	KeyLocs []BitLoc
	Outcome LookupOutcome
	Action  string

	Stmt      *ir.Stmt
	CondVal   uint64
	CondParts []CondPart
	Branch    int
}

// CondPart is one conjunct of a decomposed if condition. When OK, the
// conjunct is "<value at Loc> Op Const" and Val holds the located
// subexpression's current value; when !OK the conjunct could not be
// decomposed and Val holds its current truth value (nonzero = true).
// An if condition is the conjunction of its parts.
type CondPart struct {
	Loc   BitLoc
	Op    string // "==", "!=", "<", ">", "<=", ">="
	Const uint64
	Val   uint64
	OK    bool
}

// runObs is the per-Process observation state: the recorded event list
// and the per-byte provenance of the shared packet buffer (input byte
// index, or -1 for synthesized bytes). prov mirrors buf.data through
// every deparser splice.
type runObs struct {
	events []ObsEvent
	buf    *pktBuf
	prov   []int
}

// splice mirrors view.splice on the provenance array (from is always 0
// at the call site, so start is the view base itself).
func (o *runObs) splice(base, oldLen int, repl []int) {
	start, end := base, base+oldLen
	if start > len(o.prov) {
		start = len(o.prov)
	}
	if end > len(o.prov) {
		end = len(o.prov)
	}
	out := make([]int, 0, len(o.prov)-(end-start)+len(repl))
	out = append(out, o.prov[:start]...)
	out = append(out, repl...)
	out = append(out, o.prov[end:]...)
	o.prov = out
}

// frameObs is a frame's observation state: value provenance for scalar
// storage paths, plus the extraction-time provenance needed to give
// deparsed bytes an input location again.
type frameObs struct {
	locs       map[string]BitLoc // storage path -> input location (absent = unknown)
	extLoc     map[string]BitLoc // field path -> location at extraction time
	extProv    map[string][]int  // header path -> per-byte input provenance of its region
	emitProv   []int             // per-byte provenance of the deparsed output, built during runDeparser
	selNoMatch bool              // last select transition fell off the case list
}

// ObserveProcess is Process, additionally returning the recorded
// execution trace. It is intended for testing and verification drivers
// (internal/equiv); observation allocates per event and per extract, so
// it must not be used on a throughput path. The interpreter itself is
// unaffected for concurrent plain Process calls.
func (ip *Interp) ObserveProcess(pkt []byte, meta Metadata) (*ProcResult, []ObsEvent, error) {
	o := &runObs{}
	res, err := ip.process(pkt, meta, o)
	return res, o.events, err
}

// emitObs records one event, stamping the frame's instance and program.
func (f *frame) emitObs(ev ObsEvent) {
	ev.Inst = f.inst
	ev.Prog = f.prog.Name
	f.r.obs.events = append(f.r.obs.events, ev)
}

// resolveLoc maps an expression to the input-packet location of its
// value, when the expression is a (possibly cast or sliced) reference
// whose storage still holds bits traced to the input packet.
func (f *frame) resolveLoc(e *ir.Expr) BitLoc {
	if f.obs == nil || e == nil {
		return BitLoc{}
	}
	switch e.Kind {
	case ir.ERef:
		return f.obs.locs[e.Ref]
	case ir.EUn:
		if e.Op != "cast" {
			return BitLoc{}
		}
		in := f.resolveLoc(e.X)
		if !in.OK {
			return BitLoc{}
		}
		if e.Width > 0 && e.Width < in.Width {
			if in.Add != 0 {
				// An affine offset does not commute with bit selection;
				// give up rather than lie.
				return BitLoc{}
			}
			// Narrowing cast keeps the low (last) e.Width bits.
			return BitLoc{Off: in.Off + in.Width - e.Width, Width: e.Width, OK: true}
		}
		// Widening cast: zero-extension preserves the value, so the
		// source location (including any affine offset) still holds.
		return in
	case ir.ESlice:
		in := f.resolveLoc(e.X)
		if !in.OK || in.Add != 0 || e.Hi >= in.Width || e.Lo < 0 || e.Hi < e.Lo {
			return BitLoc{}
		}
		return BitLoc{Off: in.Off + in.Width - 1 - e.Hi, Width: e.Hi - e.Lo + 1, OK: true}
	case ir.EBin:
		// Affine tracking: x + c and x - c keep x's location with an
		// adjusted offset (c + x likewise; c - x involves a negation and
		// is dropped). Only when the expression width matches the source
		// width — offsets compose with same-width modular arithmetic but
		// not across width changes.
		if e.Op != "+" && e.Op != "-" {
			return BitLoc{}
		}
		fold := func(side *ir.Expr, delta uint64) BitLoc {
			l := f.resolveLoc(side)
			if !l.OK || (e.Width > 0 && e.Width != l.Width) {
				return BitLoc{}
			}
			l.Add += delta
			return l
		}
		if e.Y != nil && e.Y.Kind == ir.EConst {
			delta := e.Y.Value
			if e.Op == "-" {
				delta = -delta
			}
			if l := fold(e.X, delta); l.OK {
				return l
			}
		}
		if e.Op == "+" && e.X != nil && e.X.Kind == ir.EConst {
			if l := fold(e.Y, e.X.Value); l.OK {
				return l
			}
		}
	}
	return BitLoc{}
}

// condParts decomposes an if condition into a conjunction of parts a
// caller can reason about: && recurses, comparisons against a constant
// with a located other side become forceable parts, ! inverts a single
// comparison, and a bare located value is "!= 0". Anything else (||,
// isValid, computed operands) becomes an opaque part carrying only its
// current truth value. The condition holds iff every part holds.
func (f *frame) condParts(e *ir.Expr) []CondPart {
	opaque := func() []CondPart {
		v, err := f.eval(e)
		if err != nil {
			v = 0
		}
		return []CondPart{{Val: v}}
	}
	if e == nil {
		return nil
	}
	switch e.Kind {
	case ir.EBin:
		switch e.Op {
		case "&&":
			return append(f.condParts(e.X), f.condParts(e.Y)...)
		case "==", "!=", "<", ">", "<=", ">=":
			decomp := func(side *ir.Expr, c uint64, op string) []CondPart {
				l := f.resolveLoc(side)
				if !l.OK {
					return nil
				}
				v, err := f.eval(side)
				if err != nil {
					return nil
				}
				return []CondPart{{Loc: l, Op: op, Const: c, Val: v, OK: true}}
			}
			if e.Y.Kind == ir.EConst {
				if p := decomp(e.X, e.Y.Value, e.Op); p != nil {
					return p
				}
			}
			if e.X.Kind == ir.EConst {
				if p := decomp(e.Y, e.X.Value, flipCmp(e.Op)); p != nil {
					return p
				}
			}
			return opaque()
		}
		return opaque()
	case ir.EUn:
		if e.Op == "!" {
			if p := f.condParts(e.X); len(p) == 1 && p[0].OK {
				p[0].Op = negateCmp(p[0].Op)
				return p
			}
		}
		return opaque()
	case ir.ERef, ir.ESlice:
		if l := f.resolveLoc(e); l.OK {
			v, err := f.eval(e)
			if err == nil {
				return []CondPart{{Loc: l, Op: "!=", Const: 0, Val: v, OK: true}}
			}
		}
		return opaque()
	}
	return opaque()
}

// flipCmp mirrors a comparison across its operands (const moved from
// left to right).
func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case ">":
		return "<"
	case "<=":
		return ">="
	case ">=":
		return "<="
	}
	return op
}

// negateCmp returns the complementary comparison.
func negateCmp(op string) string {
	switch op {
	case "==":
		return "!="
	case "!=":
		return "=="
	case "<":
		return ">="
	case ">=":
		return "<"
	case ">":
		return "<="
	case "<=":
		return ">"
	}
	return op
}

// bitLocIn turns a bit range within an extracted region into an input
// location, requiring the region's provenance to be contiguous input
// bytes across the span.
func bitLocIn(prov []int, bitOff, width int) BitLoc {
	if width <= 0 {
		return BitLoc{}
	}
	b0, b1 := bitOff/8, (bitOff+width-1)/8
	if b0 < 0 || b1 >= len(prov) || prov[b0] < 0 {
		return BitLoc{}
	}
	for i := b0; i < b1; i++ {
		if prov[i+1] != prov[i]+1 {
			return BitLoc{}
		}
	}
	return BitLoc{Off: prov[b0]*8 + bitOff%8, Width: width, OK: true}
}

// observeExtract records an extraction: the region's provenance, every
// fixed field's input location, and an "extract" event.
func (f *frame) observeExtract(hdr string, ht *ir.HeaderType, v view, startParsed, size, varBytes int) {
	ro := f.r.obs
	prov := make([]int, size)
	for i := range prov {
		abs := v.base + startParsed + i
		if v.buf == ro.buf && abs >= 0 && abs < len(ro.prov) {
			prov[i] = ro.prov[abs]
		} else {
			prov[i] = -1
		}
	}
	f.obs.extProv[hdr] = prov
	off := 0
	for _, fl := range ht.Fields {
		if fl.Varbit {
			off += varBytes * 8
			continue
		}
		loc := bitLocIn(prov, off, fl.Width)
		path := hdr + "." + fl.Name
		if loc.OK {
			f.obs.locs[path] = loc
		} else {
			delete(f.obs.locs, path)
		}
		f.obs.extLoc[path] = loc
		off += fl.Width
	}
	f.emitObs(ObsEvent{Kind: "extract", Hdr: hdr, Loc: bitLocIn(prov, 0, size*8)})
}

// emitProvOf computes the per-byte input provenance of one emitted
// header: the extraction-time provenance, with every byte covered by a
// field whose value no longer traces to its extracted bits (rewritten,
// or never extracted) marked unknown.
func (f *frame) emitProvOf(hdr string, ht *ir.HeaderType, n int, vb []byte) []int {
	prov := make([]int, n)
	for i := range prov {
		prov[i] = -1
	}
	src, extracted := f.obs.extProv[hdr]
	if !extracted || len(src) != n {
		return prov
	}
	ok := make([]bool, n)
	for i := range ok {
		ok[i] = true
	}
	kill := func(bitOff, width int) {
		for b := bitOff / 8; b <= (bitOff+width-1)/8 && width > 0; b++ {
			if b >= 0 && b < n {
				ok[b] = false
			}
		}
	}
	off := 0
	for _, fl := range ht.Fields {
		if fl.Varbit {
			kill(off, len(vb)*8) // conservative: varbit bytes untracked
			off += len(vb) * 8
			continue
		}
		path := hdr + "." + fl.Name
		cur, orig := f.obs.locs[path], f.obs.extLoc[path]
		if !cur.OK || cur != orig {
			kill(off, fl.Width)
		}
		off += fl.Width
	}
	for i := range prov {
		if ok[i] {
			prov[i] = src[i]
		}
	}
	return prov
}
