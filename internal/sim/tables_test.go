package sim

import (
	"testing"

	"microp4/internal/ir"
)

func tblDef() *ir.Table {
	return &ir.Table{
		Name: "t",
		Keys: []ir.Key{
			{Expr: ir.Ref("a", 16), MatchKind: "exact"},
			{Expr: ir.Ref("b", 32), MatchKind: "lpm"},
			{Expr: ir.Ref("c", 8), MatchKind: "ternary"},
		},
		Actions: []string{"act"},
		Default: &ir.ActionCall{Name: "miss"},
	}
}

func TestLookupExactAndMiss(t *testing.T) {
	ts := NewTables()
	def := tblDef()
	ts.AddEntry("t", []RuntimeKey{Exact(5), Any(), Any()}, "act", 1)
	if got := ts.Lookup("t", def, []uint64{5, 0, 0}); got == nil || got.Name != "act" {
		t.Errorf("hit = %+v", got)
	}
	if got := ts.Lookup("t", def, []uint64{6, 0, 0}); got == nil || got.Name != "miss" {
		t.Errorf("miss = %+v, want default", got)
	}
}

func TestLookupLPMLongestWins(t *testing.T) {
	ts := NewTables()
	def := tblDef()
	ts.AddEntry("t", []RuntimeKey{Any(), LPM(0x0A000000, 8), Any()}, "short")
	ts.AddEntry("t", []RuntimeKey{Any(), LPM(0x0A010000, 16), Any()}, "long")
	got := ts.Lookup("t", def, []uint64{0, 0x0A010203, 0})
	if got == nil || got.Name != "long" {
		t.Errorf("lpm winner = %+v, want long", got)
	}
	got = ts.Lookup("t", def, []uint64{0, 0x0A990203, 0})
	if got == nil || got.Name != "short" {
		t.Errorf("lpm winner = %+v, want short", got)
	}
}

func TestLookupTernaryPriority(t *testing.T) {
	ts := NewTables()
	def := tblDef()
	ts.AddEntry("t", []RuntimeKey{Any(), Any(), Ternary(0x10, 0xF0)}, "first")
	ts.AddEntry("t", []RuntimeKey{Any(), Any(), Ternary(0x12, 0xFF)}, "second")
	// Both match 0x12; insertion order wins.
	if got := ts.Lookup("t", def, []uint64{0, 0, 0x12}); got.Name != "first" {
		t.Errorf("priority = %s, want first", got.Name)
	}
	ts2 := NewTables()
	ts2.AddEntryWithPriority("t", 10, []RuntimeKey{Any(), Any(), Ternary(0x10, 0xF0)}, "low")
	ts2.AddEntryWithPriority("t", 1, []RuntimeKey{Any(), Any(), Ternary(0x12, 0xFF)}, "high")
	if got := ts2.Lookup("t", def, []uint64{0, 0, 0x12}); got.Name != "high" {
		t.Errorf("explicit priority = %s, want high", got.Name)
	}
}

func TestConstEntriesBeatRuntime(t *testing.T) {
	ts := NewTables()
	def := tblDef()
	def.Entries = []ir.Entry{{
		Keys:   []ir.EntryKey{{Value: 7}, {DontCare: true}, {DontCare: true}},
		Action: ir.ActionCall{Name: "const_act"},
	}}
	ts.AddEntry("t", []RuntimeKey{Exact(7), Any(), Any()}, "runtime_act")
	if got := ts.Lookup("t", def, []uint64{7, 0, 0}); got.Name != "const_act" {
		t.Errorf("got %s, want const entry to win", got.Name)
	}
}

func TestSetDefaultOverride(t *testing.T) {
	ts := NewTables()
	def := tblDef()
	ts.SetDefault("t", "newdef", 9)
	got := ts.Lookup("t", def, []uint64{1, 2, 3})
	if got == nil || got.Name != "newdef" || got.Args[0] != 9 {
		t.Errorf("default override = %+v", got)
	}
}

func TestClearTable(t *testing.T) {
	ts := NewTables()
	def := tblDef()
	ts.AddEntry("t", []RuntimeKey{Exact(1), Any(), Any()}, "act")
	if ts.EntryCount("t") != 1 {
		t.Fatal("entry not installed")
	}
	ts.ClearTable("t")
	if ts.EntryCount("t") != 0 {
		t.Error("ClearTable left entries")
	}
	if got := ts.Lookup("t", def, []uint64{1, 0, 0}); got.Name != "miss" {
		t.Errorf("cleared table still hits: %+v", got)
	}
}

func TestMatchKeyKinds(t *testing.T) {
	cases := []struct {
		kind  string
		key   RuntimeKey
		v     uint64
		width int
		want  bool
	}{
		{"exact", Exact(5), 5, 16, true},
		{"exact", Exact(5), 6, 16, false},
		{"ternary", Ternary(0xA0, 0xF0), 0xAF, 8, true},
		{"ternary", Ternary(0xA0, 0xF0), 0xBF, 8, false},
		{"lpm", LPM(0xFF000000, 8), 0xFF123456, 32, true},
		{"lpm", LPM(0xFF000000, 8), 0xFE123456, 32, false},
		{"lpm", LPM(0, 0), 0xFFFF, 32, true}, // zero-length prefix matches all
		{"range", RuntimeKey{Value: 10, Mask: 20}, 15, 16, true},
		{"range", RuntimeKey{Value: 10, Mask: 20}, 21, 16, false},
		{"exact", Any(), 12345, 16, true},
	}
	for i, c := range cases {
		if got := matchKey(c.kind, c.key, c.v, c.width); got != c.want {
			t.Errorf("case %d (%s): got %v, want %v", i, c.kind, got, c.want)
		}
	}
}

func TestBitops(t *testing.T) {
	buf := []byte{0x12, 0x34, 0x56, 0x78}
	if v := readBits(buf, 0, 8); v != 0x12 {
		t.Errorf("readBits(0,8) = %#x", v)
	}
	if v := readBits(buf, 4, 8); v != 0x23 {
		t.Errorf("readBits(4,8) = %#x", v)
	}
	if v := readBits(buf, 8, 16); v != 0x3456 {
		t.Errorf("readBits(8,16) = %#x", v)
	}
	// Reading past the end yields zero bits.
	if v := readBits(buf, 24, 16); v != 0x7800 {
		t.Errorf("readBits past end = %#x", v)
	}
	writeBits(buf, 4, 8, 0xFF)
	if buf[0] != 0x1F || buf[1] != 0xF4 {
		t.Errorf("writeBits(4,8,0xFF): % x", buf)
	}
	// Round-trip property over a few offsets/widths.
	for off := 0; off < 16; off++ {
		for w := 1; w <= 16; w++ {
			b := make([]byte, 4)
			writeBits(b, off, w, 0xABCD&maskW(w))
			if got := readBits(b, off, w); got != 0xABCD&maskW(w) {
				t.Fatalf("roundtrip off=%d w=%d: %#x", off, w, got)
			}
		}
	}
}

func TestEvalBinaryErrors(t *testing.T) {
	if _, err := evalBinary("/", 1, 0, 8); err == nil {
		t.Error("division by zero accepted")
	}
	if _, err := evalBinary("%", 1, 0, 8); err == nil {
		t.Error("modulo by zero accepted")
	}
	if _, err := evalBinary("??", 1, 1, 8); err == nil {
		t.Error("unknown operator accepted")
	}
	if v, _ := evalBinary("+", 0xFF, 1, 8); v != 0 {
		t.Errorf("8-bit overflow: %#x", v)
	}
	if v, _ := evalBinary("<<", 1, 100, 8); v != 0 {
		t.Errorf("oversized shift: %#x", v)
	}
}
