package sim

import (
	"sync"
	"time"

	"microp4/internal/flow"
	"microp4/internal/mat"
	"microp4/internal/types"
)

// Exec runs a composed MAT pipeline (the midend's output) on packets.
// It models the abstract machine a target realizes after µP4C's backend
// pass: one byte-stack (here: the packet buffer itself), scalar storage
// for header fields and metadata, and a sequence of table applies.
//
// The pipeline is slot-compiled at construction (compile.go): every
// reference is lowered to a dense index into flat per-packet state, and
// the state itself is pooled — with metrics detached, Process performs
// zero heap allocations per packet once the pool is warm, provided the
// caller returns results with ProcResult.Release.
type Exec struct {
	pl       *mat.Pipeline
	tables   *Tables
	regs     map[string][]uint64    // register state, persistent across packets
	flows    map[string]*flow.Table // flowtable state, persistent across packets
	bus      *Bus                   // trace event bus; idle unless subscribed
	traceOff func()                 // SetTracer's current subscription
	metrics  *Metrics               // nil = observability disabled

	prog     []stmtFn            // compiled pipeline control flow
	actions  map[string]*cAction // compiled actions by fully qualified name
	nScalars int
	nValids  int
	maxKeys  int // widest table key set (per-state scratch size)

	// Pre-resolved intrinsic scalar slots.
	imInPort, imInTS, imPktLen, imQdepth, imOutPort, imPerr int

	pool sync.Pool // *execState
}

// NewExec returns an executor for a pipeline sharing control-plane
// state. The pipeline is slot-compiled here, once.
func NewExec(pl *mat.Pipeline, t *Tables) *Exec {
	e := &Exec{pl: pl, tables: t,
		regs: make(map[string][]uint64), flows: make(map[string]*flow.Table), bus: NewBus()}
	for _, r := range pl.Registers {
		e.regs[r.Name] = make([]uint64, r.Size)
	}
	for i := range pl.FlowTables {
		ft := &pl.FlowTables[i]
		e.flows[ft.Name] = flow.New(ft.Size, ft.IdleTTL, ft.EstTTL)
	}
	e.compile()
	return e
}

// Register returns a register array's cells by fully qualified path.
func (e *Exec) Register(path string) []uint64 { return e.regs[path] }

// FlowTable returns a flowtable instance by fully qualified path, or
// nil. Unlike the interpreter's lazy map, compiled flow tables exist
// from construction (the pipeline declares them all).
func (e *Exec) FlowTable(path string) *flow.Table { return e.flows[path] }

// FlowTables returns the flowtable instances by fully qualified path.
func (e *Exec) FlowTables() map[string]*flow.Table {
	out := make(map[string]*flow.Table, len(e.flows))
	for k, v := range e.flows {
		out[k] = v
	}
	return out
}

// ResetFlows clears every flowtable. The equivalence harness calls
// this before each witness run so all engines start from identical
// (empty) flow state.
func (e *Exec) ResetFlows() {
	for _, t := range e.flows {
		t.Reset()
	}
}

// Pipeline returns the executed pipeline.
func (e *Exec) Pipeline() *mat.Pipeline { return e.pl }

// execState is the per-packet machine state: the byte-stack (packet
// buffer), slot-indexed scalar and validity storage, and key scratch.
// States are pooled; the embedded ProcResult is what Process returns,
// and Release hands the whole state back.
type execState struct {
	e       *Exec
	buf     []byte
	scalars []uint64
	valid   []bool
	keys    []uint64 // table-key scratch, sized to the widest key set
	res     ProcResult

	// Per-packet observability context, set by Process from Metadata:
	// m is the effective metrics sink (a per-worker shard when the
	// caller supplies one), span the optional hop trace.
	m    *Metrics
	span *HopSpan
}

// getState fetches a pooled state (or builds one) and resets it.
func (e *Exec) getState() *execState {
	st, _ := e.pool.Get().(*execState)
	if st == nil {
		st = &execState{
			e:       e,
			scalars: make([]uint64, e.nScalars),
			valid:   make([]bool, e.nValids),
			keys:    make([]uint64, e.maxKeys),
		}
	} else {
		clear(st.scalars)
		clear(st.valid)
		st.buf = st.buf[:0]
		for i := range st.res.Out {
			st.res.Out[i] = OutPkt{} // drop packet references before reuse
		}
	}
	st.res = ProcResult{Out: st.res.Out[:0], Digests: st.res.Digests[:0], owner: st}
	return st
}

// Release returns a result's backing execution state to its engine's
// pool. Calling it is optional — unreleased results are simply
// garbage-collected — but the zero-allocation hot path depends on it.
// Safe on nil results and results of the reference interpreter (no-op),
// and idempotent; the result and its packet data must not be used after.
func (r *ProcResult) Release() {
	if r == nil || r.owner == nil {
		return
	}
	st := r.owner
	r.owner = nil
	st.m, st.span = nil, nil // don't pin observability state from the pool
	st.e.pool.Put(st)
}

// Process runs the pipeline over one packet. It never panics:
// executor panics are recovered into an *EngineFault, and every
// failure it returns belongs to the typed taxonomy (errors.go).
//
// The returned result (and the packet data inside it) is backed by
// pooled state: call res.Release() once done to recycle it, or keep it
// indefinitely and let the GC have it.
func (e *Exec) Process(pkt []byte, meta Metadata) (res *ProcResult, err error) {
	m := e.metrics
	if meta.M != nil {
		m = meta.M
	}
	span := meta.Span
	defer func() {
		recoverFault("compiled", &res, &err)
		if err != nil {
			m.countError(err)
			if span != nil {
				span.Disposition = "error"
				span.Err = err.Error()
			}
		}
	}()
	sampled := m.sampleLatency()
	var start time.Time
	if sampled || span != nil {
		start = time.Now()
	}
	st := e.getState()
	st.m = m
	st.span = span
	st.buf = append(st.buf, pkt...)
	st.scalars[e.imInPort] = meta.InPort
	st.scalars[e.imInTS] = meta.InTimestamp
	st.scalars[e.imPktLen] = uint64(len(pkt))
	st.scalars[e.imQdepth] = meta.Qdepth
	if err := runList(e.prog, st); err != nil && err != errExit {
		st.res.owner = nil
		e.pool.Put(st) // nothing escaped; recycle directly
		return nil, err
	}
	res = &st.res
	if st.scalars[e.imOutPort] == types.DropPort || st.scalars[e.imPerr] != 0 {
		res.Dropped = true
		if st.scalars[e.imPerr] != 0 {
			res.ParserReject = true
		}
		if span != nil {
			span.Disposition = "drop"
		}
	} else {
		res.Out = append(res.Out, OutPkt{Data: st.buf, Port: st.scalars[e.imOutPort]})
		if span != nil {
			span.Disposition = "forward"
			span.OutPorts = append(span.OutPorts, st.scalars[e.imOutPort])
		}
	}
	if span != nil {
		span.ExecNs += time.Since(start).Nanoseconds()
	}
	if m != nil {
		m.countResult(meta.InPort, len(pkt), res)
		if sampled {
			m.Latency.Observe(uint64(time.Since(start)))
		}
	}
	return res, nil
}

// shift moves the packet tail at byte offset off by amt bytes:
// positive amt inserts zero bytes (packet grew), negative amt deletes
// bytes ending at off (packet shrank). Growth reuses the pooled
// buffer's capacity.
func (st *execState) shift(off, amt int) {
	if off > len(st.buf) {
		off = len(st.buf)
	}
	switch {
	case amt > 0:
		n := len(st.buf)
		for i := 0; i < amt; i++ {
			st.buf = append(st.buf, 0)
		}
		copy(st.buf[off+amt:], st.buf[off:n])
		for i := off; i < off+amt; i++ {
			st.buf[i] = 0
		}
	case amt < 0:
		k := -amt
		dst := off + amt
		if dst < 0 {
			dst = 0
			k = off
		}
		copy(st.buf[dst:], st.buf[off:])
		st.buf = st.buf[:len(st.buf)-k]
	}
}
