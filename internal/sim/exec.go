package sim

import (
	"fmt"
	"time"

	"microp4/internal/ir"
	"microp4/internal/mat"
	"microp4/internal/types"
)

// Exec runs a composed MAT pipeline (the midend's output) on packets.
// It models the abstract machine a target realizes after µP4C's backend
// pass: one byte-stack (here: the packet buffer itself), scalar storage
// for header fields and metadata, and a sequence of table applies.
type Exec struct {
	pl       *mat.Pipeline
	tables   *Tables
	regs     map[string][]uint64 // register state, persistent across packets
	bus      *Bus                // trace event bus; idle unless subscribed
	traceOff func()              // SetTracer's current subscription
	metrics  *Metrics            // nil = observability disabled
}

// NewExec returns an executor for a pipeline sharing control-plane state.
func NewExec(pl *mat.Pipeline, t *Tables) *Exec {
	e := &Exec{pl: pl, tables: t, regs: make(map[string][]uint64), bus: NewBus()}
	for _, r := range pl.Registers {
		e.regs[r.Name] = make([]uint64, r.Size)
	}
	return e
}

// Register returns a register array's cells by fully qualified path.
func (e *Exec) Register(path string) []uint64 { return e.regs[path] }

// Pipeline returns the executed pipeline.
func (e *Exec) Pipeline() *mat.Pipeline { return e.pl }

// execState is the per-packet machine state.
type execState struct {
	e     *Exec
	buf   []byte
	store map[string]uint64
	valid map[string]bool
}

// Process runs the pipeline over one packet. It never panics:
// executor panics are recovered into an *EngineFault, and every
// failure it returns belongs to the typed taxonomy (errors.go).
func (e *Exec) Process(pkt []byte, meta Metadata) (res *ProcResult, err error) {
	defer func() {
		recoverFault("compiled", &res, &err)
		if err != nil {
			e.metrics.countError(err)
		}
	}()
	var start time.Time
	if e.metrics != nil {
		start = time.Now()
	}
	st := &execState{
		e:     e,
		buf:   append([]byte(nil), pkt...),
		store: make(map[string]uint64),
		valid: make(map[string]bool),
	}
	st.store["$im.meta.IN_PORT"] = meta.InPort
	st.store["$im.meta.IN_TIMESTAMP"] = meta.InTimestamp
	st.store["$im.meta.PKT_LEN"] = uint64(len(pkt))
	res = &ProcResult{}
	if err := st.exec(e.pl.Stmts, res); err != nil && err != errExit {
		return nil, err
	}
	if st.store["$im.out_port"] == types.DropPort || st.store["$im.$perr"] != 0 {
		res.Dropped = true
		if st.store["$im.$perr"] != 0 {
			res.ParserReject = true
		}
	} else {
		res.Out = append(res.Out, OutPkt{Data: st.buf, Port: st.store["$im.out_port"]})
	}
	if e.metrics != nil {
		e.metrics.countResult(meta.InPort, len(pkt), res)
		e.metrics.Latency.Observe(uint64(time.Since(start)))
	}
	return res, nil
}

func (st *execState) exec(ss []*ir.Stmt, res *ProcResult) error {
	for _, s := range ss {
		switch s.Kind {
		case ir.SAssign:
			v, err := st.eval(s.RHS)
			if err != nil {
				return err
			}
			if err := st.assign(s.LHS, v); err != nil {
				return err
			}
		case ir.SIf:
			cond, err := st.eval(s.Cond)
			if err != nil {
				return err
			}
			if cond != 0 {
				if err := st.exec(s.Then, res); err != nil {
					return err
				}
			} else if err := st.exec(s.Else, res); err != nil {
				return err
			}
		case ir.SSwitch:
			v, err := st.eval(s.Cond)
			if err != nil {
				return err
			}
			v = truncate(v, s.Cond.Width)
			var deflt *ir.Case
			matched := false
			for _, c := range s.Cases {
				if c.Default {
					deflt = c
					continue
				}
				for _, cv := range c.Values {
					if cv == v {
						matched = true
						break
					}
				}
				if matched {
					if err := st.exec(c.Body, res); err != nil {
						return err
					}
					break
				}
			}
			if !matched && deflt != nil {
				if err := st.exec(deflt.Body, res); err != nil {
					return err
				}
			}
		case ir.SSetValid:
			st.valid[s.Hdr] = true
		case ir.SSetInvalid:
			st.valid[s.Hdr] = false
		case ir.SExit:
			return errExit
		case ir.SApplyTable:
			if err := st.applyTable(s.Table, res); err != nil {
				return err
			}
		case ir.SShift:
			st.shift(s.Off, s.Amt)
		case ir.SMethod:
			switch s.Method {
			case "recirculate":
				res.Recirculate = true
			case "mc_engine_set_mc_group":
				g, err := st.eval(s.Args[0].Expr)
				if err != nil {
					return err
				}
				st.store["$mc.group"] = g
			case "mc_engine_apply":
				res.McastGroup = st.store["$mc.group"]
				if len(s.Args) == 2 {
					if err := st.assign(s.Args[1].Expr, 0); err != nil {
						return err
					}
				}
			case "im_digest":
				v, err := st.eval(s.Args[0].Expr)
				if err != nil {
					return err
				}
				res.Digests = append(res.Digests, v)
			case "register_read", "register_write":
				if err := st.registerOp(s); err != nil {
					return err
				}
			default:
				return &EngineFault{Engine: "compiled", Reason: "cannot execute method " + s.Method}
			}
		default:
			return &EngineFault{Engine: "compiled", Reason: "cannot execute " + s.Kind + " statement"}
		}
	}
	return nil
}

// shift moves the packet tail at byte offset off by amt bytes:
// positive amt inserts zero bytes (packet grew), negative amt deletes
// bytes ending at off (packet shrank).
func (st *execState) shift(off, amt int) {
	if off > len(st.buf) {
		off = len(st.buf)
	}
	switch {
	case amt > 0:
		nb := make([]byte, len(st.buf)+amt)
		copy(nb, st.buf[:off])
		copy(nb[off+amt:], st.buf[off:])
		st.buf = nb
	case amt < 0:
		k := -amt
		dst := off + amt
		if dst < 0 {
			dst = 0
			k = off
		}
		copy(st.buf[dst:], st.buf[off:])
		st.buf = st.buf[:len(st.buf)-k]
	}
}

// registerOp executes a register read or write (§8.2 extension).
func (st *execState) registerOp(s *ir.Stmt) error {
	var inst *ir.Instance
	for i := range st.e.pl.Registers {
		if st.e.pl.Registers[i].Name == s.Target {
			inst = &st.e.pl.Registers[i]
		}
	}
	if inst == nil {
		return &TableError{Table: s.Target, Reason: "unknown register in pipeline"}
	}
	cells := st.e.regs[s.Target]
	idxArg := 1
	if s.Method == "register_write" {
		idxArg = 0
	}
	idx, err := st.eval(s.Args[idxArg].Expr)
	if err != nil {
		return err
	}
	if idx >= uint64(inst.Size) {
		idx %= uint64(inst.Size)
	}
	if s.Method == "register_read" {
		return st.assign(s.Args[0].Expr, truncate(cells[idx], inst.Width))
	}
	v, err := st.eval(s.Args[1].Expr)
	if err != nil {
		return err
	}
	cells[idx] = truncate(v, inst.Width)
	return nil
}

func (st *execState) applyTable(name string, res *ProcResult) error {
	def := st.e.pl.Tables[name]
	if def == nil {
		return &TableError{Table: name, Reason: "unknown table in pipeline"}
	}
	keyVals := make([]uint64, len(def.Keys))
	for i, k := range def.Keys {
		v, err := st.eval(k.Expr)
		if err != nil {
			return err
		}
		keyVals[i] = truncate(v, orW(k.Expr.Width, 64))
	}
	call, outcome := st.e.tables.LookupWithOutcome(name, def, keyVals)
	if st.e.metrics != nil {
		st.e.metrics.countTable(name, outcome)
	}
	if st.e.bus.Active() {
		detail := "miss (no default)"
		if call != nil {
			detail = "-> " + call.Name + " " + keyString(keyVals)
		}
		st.e.bus.Publish(TraceEvent{Kind: "table", Module: moduleOf(name), Name: name, Detail: detail})
	}
	if call == nil {
		return nil
	}
	act := st.e.pl.Actions[call.Name]
	if act == nil {
		return &TableError{Table: name, Action: call.Name, Reason: "selected unknown action"}
	}
	if len(call.Args) != len(act.Params) {
		return &TableError{Table: name, Action: act.Name,
			Reason: fmt.Sprintf("takes %d args, got %d", len(act.Params), len(call.Args))}
	}
	for i, p := range act.Params {
		st.store[act.Name+"#"+p.Name] = truncate(call.Args[i], p.Width)
	}
	return st.exec(act.Body, res)
}

func (st *execState) eval(e *ir.Expr) (uint64, error) {
	switch e.Kind {
	case ir.EConst:
		return e.Value, nil
	case ir.ERef:
		return st.store[e.Ref], nil
	case ir.EIsValid:
		if st.valid[e.Ref] {
			return 1, nil
		}
		return 0, nil
	case ir.EBSlice:
		return readBits(st.buf, e.Off, e.Width), nil
	case ir.EBValid:
		if e.Off < len(st.buf) {
			return 1, nil
		}
		return 0, nil
	case ir.EUn:
		x, err := st.eval(e.X)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "!":
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		case "~":
			return truncate(^x, e.Width), nil
		case "-":
			return truncate(-x, e.Width), nil
		case "cast":
			return truncate(x, e.Width), nil
		}
		return 0, &EngineFault{Engine: "compiled", Reason: fmt.Sprintf("unknown unary %q", e.Op)}
	case ir.EBin:
		x, err := st.eval(e.X)
		if err != nil {
			return 0, err
		}
		y, err := st.eval(e.Y)
		if err != nil {
			return 0, err
		}
		if e.Op == "++" {
			return truncate(truncate(x, e.X.Width)<<uint(e.Y.Width)|truncate(y, e.Y.Width), e.Width), nil
		}
		w := e.Width
		if e.Bool {
			w = e.X.Width
		}
		return evalBinary(e.Op, truncate(x, orW(e.X.Width, w)), truncate(y, orW(e.Y.Width, w)), w)
	case ir.ESlice:
		x, err := st.eval(e.X)
		if err != nil {
			return 0, err
		}
		return x >> uint(e.Lo) & maskW(e.Hi-e.Lo+1), nil
	}
	return 0, &EngineFault{Engine: "compiled", Reason: "cannot evaluate " + e.Kind + " expression"}
}

func (st *execState) assign(lhs *ir.Expr, v uint64) error {
	switch lhs.Kind {
	case ir.ERef:
		st.store[lhs.Ref] = truncate(v, orW(lhs.Width, 64))
		return nil
	case ir.ESlice:
		if lhs.X.Kind != ir.ERef {
			return &EngineFault{Engine: "compiled", Reason: "assignment to slice of non-reference"}
		}
		cur := st.store[lhs.X.Ref]
		m := maskW(lhs.Hi-lhs.Lo+1) << uint(lhs.Lo)
		st.store[lhs.X.Ref] = cur&^m | (v<<uint(lhs.Lo))&m
		return nil
	case ir.EBSlice:
		// Writes past the current end of the packet extend it (growth
		// regions are placed by a preceding shift, but a grown packet's
		// final header write may still land at the very end).
		endByte := (lhs.Off + lhs.Width + 7) / 8
		for len(st.buf) < endByte {
			st.buf = append(st.buf, 0)
		}
		writeBits(st.buf, lhs.Off, lhs.Width, v)
		return nil
	}
	return &EngineFault{Engine: "compiled", Reason: fmt.Sprintf("assignment to unsupported lvalue %s", lhs)}
}
