package sim_test

import (
	"sync"
	"testing"

	"microp4/internal/lib"
	"microp4/internal/midend"
	"microp4/internal/pkt"
	"microp4/internal/sim"
)

// TestConcurrentControlPlane exercises the documented concurrency
// contract: the control plane (Tables) may be programmed while separate
// executor instances process packets on other goroutines. The race
// detector (go test -race) does the real verification.
func TestConcurrentControlPlane(t *testing.T) {
	main, mods, err := lib.CompileProgram("P4")
	if err != nil {
		t.Fatal(err)
	}
	res, err := midend.Build(main, mods...)
	if err != nil {
		t.Fatal(err)
	}
	tables := sim.NewTables()
	lib.InstallDefaultRules(tables, "P4", false)

	data := pkt.NewBuilder().
		Ethernet(1, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 1, Dst: 0x0A000001}).
		TCP(1, 2).Bytes()

	var wg sync.WaitGroup
	// Writer: churns entries in a scratch table and in a live one.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			tables.AddEntry("scratch", []sim.RuntimeKey{sim.Exact(uint64(i))}, "noop")
			if i%64 == 0 {
				tables.ClearTable("scratch")
			}
			if i%100 == 0 {
				tables.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
					[]sim.RuntimeKey{sim.LPM(0x0C000000+uint64(i), 24)},
					"l3_i.ipv4_i.process", 100)
			}
		}
	}()
	// Readers: each goroutine owns its executor (per-packet state is
	// engine-local; only Tables is shared).
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			exec := sim.NewExec(res.Pipeline, tables)
			for i := 0; i < 300; i++ {
				out, err := exec.Process(data, sim.Metadata{InPort: uint64(i)})
				if err != nil {
					t.Errorf("process: %v", err)
					return
				}
				if out.Dropped {
					t.Error("routed packet dropped")
					return
				}
			}
		}()
	}
	wg.Wait()
}
