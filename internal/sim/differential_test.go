package sim_test

import (
	"bytes"
	"fmt"
	"testing"

	"microp4/internal/lib"
	"microp4/internal/linker"
	"microp4/internal/midend"
	"microp4/internal/pkt"
	"microp4/internal/sim"
)

// engines builds, for one program of Table 1, the three execution paths
// that must agree: the reference interpreter on the composed modules,
// the compiled MAT-pipeline executor, and the reference interpreter on
// the monolithic baseline.
type engines struct {
	interp     *sim.Interp
	exec       *sim.Exec
	monoInterp *sim.Interp
	// The runtime tables behind each engine pair, for tests that mutate
	// control-plane state mid-scenario (e.g. backend-pool churn).
	composedTables *sim.Tables
	monoTables     *sim.Tables
}

func buildEngines(t testing.TB, prog string) *engines {
	t.Helper()
	main, mods, err := lib.CompileProgram(prog)
	if err != nil {
		t.Fatalf("%s: compile: %v", prog, err)
	}
	res, err := midend.Build(main, mods...)
	if err != nil {
		t.Fatalf("%s: midend: %v", prog, err)
	}
	composedTables := sim.NewTables()
	lib.InstallDefaultRules(composedTables, prog, false)

	// The interpreter executes the transformed (stack-unrolled) linked IR.
	interp := sim.NewInterp(res.Linked, composedTables)
	exec := sim.NewExec(res.Pipeline, composedTables)

	mono, err := lib.CompileMonolithic(prog)
	if err != nil {
		t.Fatalf("%s: compile mono: %v", prog, err)
	}
	tmono, err := midend.Transform(mono)
	if err != nil {
		t.Fatalf("%s: transform mono: %v", prog, err)
	}
	monoTables := sim.NewTables()
	lib.InstallDefaultRules(monoTables, prog, true)
	ml, err := linker.Link(tmono)
	if err != nil {
		t.Fatalf("%s: link mono: %v", prog, err)
	}
	return &engines{
		interp:         interp,
		exec:           exec,
		monoInterp:     sim.NewInterp(ml, monoTables),
		composedTables: composedTables,
		monoTables:     monoTables,
	}
}

// summarize renders a ProcResult for comparison.
func summarize(r *sim.ProcResult) string {
	if r.Dropped {
		return "DROP"
	}
	s := ""
	for _, o := range r.Out {
		s += fmt.Sprintf("port=%d len=%d %x;", o.Port, len(o.Data), o.Data)
	}
	return s
}

// checkAgreement runs one packet through all three engines and requires
// identical outcomes.
func (e *engines) checkAgreement(t *testing.T, name string, data []byte, meta sim.Metadata) {
	t.Helper()
	ri, err := e.interp.Process(data, meta)
	if err != nil {
		t.Fatalf("%s: interp: %v", name, err)
	}
	rx, err := e.exec.Process(data, meta)
	if err != nil {
		t.Fatalf("%s: exec: %v", name, err)
	}
	rm, err := e.monoInterp.Process(data, meta)
	if err != nil {
		t.Fatalf("%s: mono interp: %v", name, err)
	}
	si, sx, sm := summarize(ri), summarize(rx), summarize(rm)
	if si != sx {
		t.Errorf("%s: interpreter vs compiled pipeline diverge:\n  interp: %s\n  exec:   %s\n  in: %s",
			name, si, sx, pkt.Dump(data))
	}
	if si != sm {
		t.Errorf("%s: composed vs monolithic diverge:\n  composed: %s\n  mono:     %s\n  in: %s",
			name, si, sm, pkt.Dump(data))
	}
}

// ----------------------------------------------------------------------------
// Traffic

func ipv4Pkt(dst uint32, ttl uint8, proto uint8) []byte {
	b := pkt.NewBuilder().
		Ethernet(0x000000000001, 0x000000000002, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: ttl, Protocol: proto, Src: 0xC0A80002, Dst: dst})
	switch proto {
	case pkt.ProtoTCP:
		b.TCP(1234, 80)
	case pkt.ProtoUDP:
		b.UDP(1234, 53, 16)
	}
	return b.Payload([]byte("payloadpayload")).Bytes()
}

func ipv6Pkt(dstHi, dstLo uint64, hop uint8) []byte {
	return pkt.NewBuilder().
		Ethernet(0x000000000001, 0x000000000002, pkt.EtherTypeIPv6).
		IPv6(pkt.IPv6Opts{NextHdr: pkt.ProtoNoNext, HopLimit: hop,
			SrcHi: 0xFD00000000000001, SrcLo: 2, DstHi: dstHi, DstLo: dstLo}).
		Payload([]byte("sixsixsix")).Bytes()
}

func meta() sim.Metadata { return sim.Metadata{InPort: 7} }

// ----------------------------------------------------------------------------
// Per-program differential suites

func TestDifferentialP4Router(t *testing.T) {
	e := buildEngines(t, "P4")
	cases := map[string][]byte{
		"v4-netA":       ipv4Pkt(0x0A010203, 64, pkt.ProtoTCP),
		"v4-netB":       ipv4Pkt(0x14000001, 64, pkt.ProtoUDP),
		"v4-no-route":   ipv4Pkt(0x1E000001, 64, pkt.ProtoTCP),
		"v4-ttl-0":      ipv4Pkt(0x0A010203, 0, pkt.ProtoTCP),
		"v4-ttl-1":      ipv4Pkt(0x0A010203, 1, pkt.ProtoTCP),
		"v6-routed":     ipv6Pkt(lib.NetV6Hi|0x1, 0x99, 64),
		"v6-no-route":   ipv6Pkt(0x3001000000000000, 0x99, 64),
		"v6-hop-0":      ipv6Pkt(lib.NetV6Hi, 1, 0),
		"arp-unknown":   pkt.NewBuilder().Ethernet(1, 2, 0x0806).Payload([]byte{0, 1, 2, 3}).Bytes(),
		"truncated-eth": {0xAA, 0xBB, 0xCC},
		"truncated-v4": pkt.NewBuilder().
			Ethernet(1, 2, pkt.EtherTypeIPv4).Payload([]byte{0x45, 0}).Bytes(),
		"empty": {},
	}
	for name, data := range cases {
		e.checkAgreement(t, name, data, meta())
	}
}

func TestDifferentialP1Acl(t *testing.T) {
	e := buildEngines(t, "P1")
	cases := map[string][]byte{
		"tcp-22-denied": pkt.NewBuilder().
			Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP, Src: 1, Dst: 2}).
			TCP(5555, 22).Bytes(),
		"tcp-80-allowed": pkt.NewBuilder().
			Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP, Src: 1, Dst: 2}).
			TCP(5555, 80).Bytes(),
		"udp-allowed": pkt.NewBuilder().
			Ethernet(0x42, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 9, Protocol: pkt.ProtoUDP, Src: 1, Dst: 2}).
			UDP(53, 53, 12).Bytes(),
		"icmp-ish": pkt.NewBuilder().
			Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 9, Protocol: 1, Src: 1, Dst: 2}).Bytes(),
		"non-ip": pkt.NewBuilder().Ethernet(lib.DmacA, 2, 0x88CC).Payload([]byte("lldp")).Bytes(),
	}
	for name, data := range cases {
		e.checkAgreement(t, name, data, meta())
	}
}

func TestDifferentialP2Mpls(t *testing.T) {
	e := buildEngines(t, "P2")
	inner := pkt.NewBuilder().IPv4(pkt.IPv4Opts{TTL: 33, Protocol: pkt.ProtoTCP, Src: 5, Dst: 0x0A000005}).TCP(1, 2).Bytes()
	cases := map[string][]byte{
		"mpls-swap": pkt.NewBuilder().
			Ethernet(1, 2, pkt.EtherTypeMPLS).MPLS(1000, 0, true, 60).
			Payload(inner).Bytes(),
		"mpls-pop": pkt.NewBuilder().
			Ethernet(1, 2, pkt.EtherTypeMPLS).MPLS(999, 0, true, 60).
			Payload(inner).Bytes(),
		"mpls-two-labels": pkt.NewBuilder().
			Ethernet(1, 2, pkt.EtherTypeMPLS).MPLS(1000, 0, false, 60).MPLS(42, 0, true, 61).
			Payload(inner).Bytes(),
		"mpls-unknown-label": pkt.NewBuilder().
			Ethernet(1, 2, pkt.EtherTypeMPLS).MPLS(777, 0, true, 60).
			Payload(inner).Bytes(),
		"plain-v4": ipv4Pkt(0x0A010203, 64, pkt.ProtoTCP),
		"plain-v6": ipv6Pkt(lib.NetV6Hi|5, 1, 17),
	}
	for name, data := range cases {
		e.checkAgreement(t, name, data, meta())
	}
}

func TestDifferentialP3Nat(t *testing.T) {
	e := buildEngines(t, "P3")
	mk := func(src uint32, proto uint8) []byte {
		b := pkt.NewBuilder().
			Ethernet(1, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 17, Protocol: proto, Src: src, Dst: 0x0A00AA01})
		if proto == pkt.ProtoTCP {
			b.TCP(3333, 443)
		} else if proto == pkt.ProtoUDP {
			b.UDP(3333, 53, 20)
		}
		return b.Payload([]byte("xyz")).Bytes()
	}
	cases := map[string][]byte{
		"nat-tcp-hit":  mk(0xC0A80002, pkt.ProtoTCP),
		"nat-udp-hit":  mk(0xC0A80003, pkt.ProtoUDP),
		"nat-miss":     mk(0x01020304, pkt.ProtoTCP),
		"nat-icmp-ish": mk(0xC0A80002, 1),
		"v6-bypass":    ipv6Pkt(lib.NetV6Hi|9, 1, 32),
	}
	for name, data := range cases {
		e.checkAgreement(t, name, data, meta())
	}
}

func TestDifferentialP5Nptv6(t *testing.T) {
	e := buildEngines(t, "P5")
	cases := map[string][]byte{
		"npt-translate": ipv6Pkt(lib.NetV6Hi|1, 7, 42),
		"v4-bypass":     ipv4Pkt(0x0A000001, 64, pkt.ProtoTCP),
		"v6-no-npt": pkt.NewBuilder().
			Ethernet(1, 2, pkt.EtherTypeIPv6).
			IPv6(pkt.IPv6Opts{NextHdr: 59, HopLimit: 5,
				SrcHi: 0x3000000000000000, SrcLo: 1, DstHi: lib.NetV6Hi, DstLo: 2}).Bytes(),
	}
	for name, data := range cases {
		e.checkAgreement(t, name, data, meta())
	}
}

func srv4Pkt(segs []uint32, lastFlags []bool) []byte {
	b := pkt.NewBuilder().
		Ethernet(1, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 9, Protocol: 250, Src: 3, Dst: 4})
	hdr := []byte{pkt.ProtoTCP, uint8(len(segs))}
	b.Payload(hdr)
	for i, s := range segs {
		var seg [4]byte
		v := s & 0x7FFFFFFF
		if lastFlags[i] {
			v |= 1 << 31
		}
		seg[0] = byte(v >> 24)
		seg[1] = byte(v >> 16)
		seg[2] = byte(v >> 8)
		seg[3] = byte(v)
		b.Payload(seg[:])
	}
	return b.Payload([]byte("tail")).Bytes()
}

func TestDifferentialP6Srv4(t *testing.T) {
	e := buildEngines(t, "P6")
	cases := map[string][]byte{
		"sr-two-segs": srv4Pkt([]uint32{0x0A000042, 0x14000042}, []bool{false, true}),
		"sr-one-seg":  srv4Pkt([]uint32{0x0A000042}, []bool{true}),
		"plain-v4":    ipv4Pkt(0x14000001, 64, pkt.ProtoTCP),
		"plain-v6":    ipv6Pkt(lib.NetV6Hi|3, 1, 9),
	}
	for name, data := range cases {
		e.checkAgreement(t, name, data, meta())
	}
}

func srv6Pkt(segsLeft uint8, segs [][2]uint64, hop uint8) []byte {
	return pkt.NewBuilder().
		Ethernet(1, 2, pkt.EtherTypeIPv6).
		IPv6(pkt.IPv6Opts{NextHdr: pkt.ProtoSRv6, HopLimit: hop,
			SrcHi: 1, SrcLo: 2, DstHi: 3, DstLo: 4}).
		SRv6(pkt.ProtoTCP, segsLeft, segs).
		Payload([]byte("srv6tail")).Bytes()
}

func TestDifferentialP7Srv6(t *testing.T) {
	e := buildEngines(t, "P7")
	segs2 := [][2]uint64{{lib.NetV6Hi, 0x11}, {lib.NetV6Hi, 0x22}}
	segs4 := [][2]uint64{{lib.NetV6Hi, 1}, {lib.NetV6Hi, 2}, {lib.NetV6Hi, 3}, {lib.NetV6Hi, 4}}
	cases := map[string][]byte{
		"srv6-2segs-active":  srv6Pkt(2, segs2, 33),
		"srv6-last-segment":  srv6Pkt(1, segs2, 33),
		"srv6-exhausted":     srv6Pkt(0, segs2, 33),
		"srv6-4segs":         srv6Pkt(3, segs4, 33),
		"plain-v6":           ipv6Pkt(lib.NetV6Hi|1, 6, 12),
		"plain-v4":           ipv4Pkt(0x0A000009, 64, pkt.ProtoUDP),
		"srv6-truncated-seg": srv6Pkt(2, segs2, 33)[:70],
	}
	for name, data := range cases {
		e.checkAgreement(t, name, data, meta())
	}
}

// telPkt builds a P8 telemetry-encapsulated packet: Ethernet 0x1266,
// the tel shim {count, nextType=IPv4}, the given raw records (newest
// first; the caller makes the oldest carry the last-bit), and an inner
// L3 packet (an ipv4Pkt/ipv6Pkt with its Ethernet header stripped).
func telPkt(count uint8, nextType uint16, recs [][3]byte, inner []byte) []byte {
	b := pkt.NewBuilder().Ethernet(1, 2, 0x1266)
	b.Payload([]byte{count, byte(nextType >> 8), byte(nextType)})
	for _, r := range recs {
		b.Payload(r[:])
	}
	return b.Payload(inner).Bytes()
}

func TestDifferentialP8Int(t *testing.T) {
	e := buildEngines(t, "P8")
	innerA := ipv4Pkt(0x0A010203, 64, pkt.ProtoTCP)[14:]
	innerB := ipv4Pkt(0x14000001, 9, pkt.ProtoUDP)[14:]
	inner6 := ipv6Pkt(lib.NetV6Hi|0x1, 0x99, 64)[14:]
	rec1 := [3]byte{0x81, 0x02, 0x40} // last=1 swid=1 lat=2 ttl=64
	rec2 := [3]byte{0x03, 0x00, 0x3F} // last=0 swid=3 lat=0 ttl=63
	cases := map[string][]byte{
		"tel-fresh":      telPkt(0, 0x0800, nil, innerA),
		"tel-second-hop": telPkt(1, 0x0800, [][3]byte{rec1}, innerB),
		"tel-third-hop":  telPkt(2, 0x0800, [][3]byte{rec2, rec1}, innerA),
		"tel-stack-full": telPkt(4, 0x0800, [][3]byte{rec2, rec2, rec2, rec1}, innerA),
		"tel-v6-inner":   telPkt(0, 0x86DD, nil, inner6),
		"tel-no-route":   telPkt(0, 0x0800, nil, ipv4Pkt(0x1E000001, 64, pkt.ProtoTCP)[14:]),
		"tel-ttl-0":      telPkt(0, 0x0800, nil, ipv4Pkt(0x0A010203, 0, pkt.ProtoTCP)[14:]),
		"tel-truncated":  telPkt(0, 0x0800, nil, innerA[:6]),
		"tel-bad-stack":  telPkt(3, 0x0800, [][3]byte{rec2, rec2}, innerA)[:30],
		"plain-v4":       ipv4Pkt(0x0A010203, 64, pkt.ProtoTCP),
		"plain-v6":       ipv6Pkt(lib.NetV6Hi|5, 1, 17),
		"arp-bypass":     pkt.NewBuilder().Ethernet(1, 2, 0x0806).Payload([]byte{0, 1, 2, 3}).Bytes(),
	}
	for name, data := range cases {
		e.checkAgreement(t, name, data, meta())
	}
}

// TestP8RecordPrepended pins the in-band format: one hop grows the
// packet by exactly one record, stamped with the installed switch id,
// the QUEUE_DEPTH latency bucket, and the post-decrement TTL.
func TestP8RecordPrepended(t *testing.T) {
	e := buildEngines(t, "P8")
	in := telPkt(0, 0x0800, nil, ipv4Pkt(0x0A010203, 64, pkt.ProtoTCP)[14:])
	m := sim.Metadata{InPort: 7, Qdepth: 5}
	r, err := e.exec.Process(in, m)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dropped || len(r.Out) != 1 {
		t.Fatalf("unexpected result %+v", r)
	}
	out := r.Out[0].Data
	if len(out) != len(in)+3 {
		t.Fatalf("len = %d, want %d (one 3-byte record added)", len(out), len(in)+3)
	}
	if out[14] != 1 {
		t.Errorf("tel.count = %d, want 1", out[14])
	}
	// Record layout: last(1)|swid(7), lat, ttl.
	if out[17] != 0x81 {
		t.Errorf("rec[0] = %#x, want 0x81 (last=1, swid=1)", out[17])
	}
	if out[18] != 5 {
		t.Errorf("rec lat = %d, want Qdepth 5", out[18])
	}
	if out[19] != 63 {
		t.Errorf("rec ttl = %d, want 63 (post-decrement)", out[19])
	}
	r.Release()
}

// TestOutputBytesChange sanity-checks that the dataplane actually edits
// packets (guards against trivially-agreeing empty engines).
func TestOutputBytesChange(t *testing.T) {
	e := buildEngines(t, "P4")
	in := ipv4Pkt(0x0A010203, 64, pkt.ProtoTCP)
	r, err := e.exec.Process(in, meta())
	if err != nil {
		t.Fatal(err)
	}
	if r.Dropped || len(r.Out) != 1 {
		t.Fatalf("unexpected result %+v", r)
	}
	out := r.Out[0]
	if out.Port != lib.PortA {
		t.Errorf("port = %d, want %d", out.Port, lib.PortA)
	}
	if pkt.EthDst(out.Data) != lib.DmacA {
		t.Errorf("dmac = %#x, want %#x", pkt.EthDst(out.Data), uint64(lib.DmacA))
	}
	if pkt.IPv4TTL(out.Data, 14) != 63 {
		t.Errorf("ttl = %d, want 63", pkt.IPv4TTL(out.Data, 14))
	}
	if bytes.Equal(out.Data, in) {
		t.Error("output identical to input; dataplane had no effect")
	}
	// Payload preserved.
	if !bytes.Equal(out.Data[len(out.Data)-14:], []byte("payloadpayload")) {
		t.Errorf("payload corrupted: %s", pkt.Dump(out.Data))
	}
}
