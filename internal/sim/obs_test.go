package sim_test

import (
	"strings"
	"sync"
	"testing"

	"microp4/internal/lib"
	"microp4/internal/midend"
	"microp4/internal/obs"
	"microp4/internal/pkt"
	"microp4/internal/sim"
)

// TestConcurrentObservability is the observability companion of
// TestConcurrentControlPlane: several executors share one Tables, one
// Metrics, and one trace Bus with a CollectTrace sink, while the
// control plane churns. The race detector does the real verification;
// the assertions check that no event or count was lost and that bus
// sequence numbers are unique.
func TestConcurrentObservability(t *testing.T) {
	main, mods, err := lib.CompileProgram("P4")
	if err != nil {
		t.Fatal(err)
	}
	res, err := midend.Build(main, mods...)
	if err != nil {
		t.Fatal(err)
	}
	tables := sim.NewTables()
	lib.InstallDefaultRules(tables, "P4", false)

	metrics := sim.NewMetrics(obs.NewRegistry())
	bus := sim.NewBus()
	var events []sim.TraceEvent
	cancel := bus.Subscribe(sim.CollectTrace(&events))
	defer cancel()

	data := pkt.NewBuilder().
		Ethernet(1, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 1, Dst: 0x0A000001}).
		TCP(1, 2).Bytes()

	const goroutines, packets = 4, 250
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // control-plane churn
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			tables.AddEntry("scratch", []sim.RuntimeKey{sim.Exact(uint64(i))}, "noop")
			if i%64 == 0 {
				tables.ClearTable("scratch")
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			exec := sim.NewExec(res.Pipeline, tables)
			exec.SetBus(bus)
			exec.SetMetrics(metrics)
			for i := 0; i < packets; i++ {
				out, err := exec.Process(data, sim.Metadata{InPort: uint64(g)})
				if err != nil {
					t.Errorf("process: %v", err)
					return
				}
				if out.Dropped {
					t.Error("routed packet dropped")
					return
				}
			}
		}(g)
	}
	wg.Wait()

	total := goroutines * packets
	if got := metrics.Packets.Value(); got != uint64(total) {
		t.Errorf("packets counter = %d, want %d", got, total)
	}
	for g := 0; g < goroutines; g++ {
		if got := metrics.Port(uint64(g)).RxPackets.Value(); got != packets {
			t.Errorf("port %d rx = %d, want %d", g, got, packets)
		}
	}
	if got := metrics.Latency.Count(); got != uint64(total) {
		t.Errorf("latency observations = %d, want %d", got, total)
	}
	if len(events) == 0 {
		t.Fatal("no trace events collected")
	}
	seen := make(map[uint64]bool, len(events))
	for _, e := range events {
		if e.Seq == 0 {
			t.Fatal("event without sequence number")
		}
		if seen[e.Seq] {
			t.Fatalf("duplicate sequence number %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

// TestTraceModuleAttribution checks the §4 requirement that exported
// traces attribute each event to the module instance that produced it,
// on both engines.
func TestTraceModuleAttribution(t *testing.T) {
	main, mods, err := lib.CompileProgram("P4")
	if err != nil {
		t.Fatal(err)
	}
	res, err := midend.Build(main, mods...)
	if err != nil {
		t.Fatal(err)
	}
	tables := sim.NewTables()
	lib.InstallDefaultRules(tables, "P4", false)
	data := pkt.NewBuilder().
		Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 1, Dst: 0x0A000001}).
		TCP(1, 2).Bytes()

	run := func(name string, process func() error, bus *sim.Bus) {
		var events []sim.TraceEvent
		cancel := bus.Subscribe(sim.CollectTrace(&events))
		defer cancel()
		if err := process(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var sawModuleTable, sawMainTable bool
		lastSeq := uint64(0)
		for _, e := range events {
			if e.Seq <= lastSeq {
				t.Fatalf("%s: sequence not increasing: %+v", name, events)
			}
			lastSeq = e.Seq
			if e.Kind != "table" {
				continue
			}
			if strings.Contains(e.Name, "ipv4_lpm_tbl") {
				sawModuleTable = true
				if e.Module == "" || !strings.HasPrefix(e.Name, e.Module+".") {
					t.Errorf("%s: module table event lacks instance attribution: %+v", name, e)
				}
			}
			if e.Name == "forward_tbl" {
				sawMainTable = true
				if e.Module != "" {
					t.Errorf("%s: main-program event attributed to %q", name, e.Module)
				}
			}
		}
		if !sawModuleTable || !sawMainTable {
			t.Fatalf("%s: missing table events (module=%v main=%v): %+v", name, sawModuleTable, sawMainTable, events)
		}
	}

	exec := sim.NewExec(res.Pipeline, tables)
	run("compiled", func() error {
		_, err := exec.Process(data, sim.Metadata{InPort: 1})
		return err
	}, exec.Bus())

	interp := sim.NewInterp(res.Linked, tables)
	run("reference", func() error {
		_, err := interp.Process(data, sim.Metadata{InPort: 1})
		return err
	}, interp.Bus())
}

// TestLookupOutcomes pins the hit/default/miss classification feeding
// the per-table counters.
func TestLookupOutcomes(t *testing.T) {
	main, mods, err := lib.CompileProgram("P4")
	if err != nil {
		t.Fatal(err)
	}
	res, err := midend.Build(main, mods...)
	if err != nil {
		t.Fatal(err)
	}
	tables := sim.NewTables()
	lib.InstallDefaultRules(tables, "P4", false)
	metrics := sim.NewMetrics(obs.NewRegistry())
	exec := sim.NewExec(res.Pipeline, tables)
	exec.SetMetrics(metrics)

	routed := pkt.NewBuilder().
		Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 1, Dst: 0x0A000001}).
		TCP(1, 2).Bytes()
	if _, err := exec.Process(routed, sim.Metadata{InPort: 1}); err != nil {
		t.Fatal(err)
	}
	lpm := metrics.Table("l3_i.ipv4_i.ipv4_lpm_tbl")
	if lpm.Hits.Value() != 1 || lpm.Misses.Value() != 0 {
		t.Errorf("lpm hit/miss = %d/%d, want 1/0", lpm.Hits.Value(), lpm.Misses.Value())
	}

	// A destination outside every installed prefix: the LPM lookup runs
	// its default action (drop), not a hit.
	unrouted := pkt.NewBuilder().
		Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 1, Dst: 0xDEAD0001}).
		TCP(1, 2).Bytes()
	if _, err := exec.Process(unrouted, sim.Metadata{InPort: 1}); err != nil {
		t.Fatal(err)
	}
	if lpm.Hits.Value()+lpm.Defaults.Value()+lpm.Misses.Value() != 2 {
		t.Errorf("lpm outcomes after 2 packets = hits %d defaults %d misses %d",
			lpm.Hits.Value(), lpm.Defaults.Value(), lpm.Misses.Value())
	}
	if lpm.Defaults.Value()+lpm.Misses.Value() != 1 {
		t.Errorf("unrouted packet not counted as default/miss: defaults %d misses %d",
			lpm.Defaults.Value(), lpm.Misses.Value())
	}
}
