package sim

import (
	"fmt"
	"strings"
)

// TraceEvent is one observable step of packet processing — the paper's
// §8.2 debugging direction: "programs can be linked against µP4 debug
// modules ... logging information in the dataplane". The simulator
// exposes the equivalent hooks directly.
type TraceEvent struct {
	Kind   string // "table", "action", "parser-state", "module", "drop"
	Name   string // table/action/state/module name
	Detail string // matched action, key values, etc.
}

func (e TraceEvent) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%-12s %s", e.Kind, e.Name)
	}
	return fmt.Sprintf("%-12s %-40s %s", e.Kind, e.Name, e.Detail)
}

// Tracer receives trace events during processing. A nil tracer is off.
type Tracer func(TraceEvent)

// CollectTrace returns a tracer appending into a slice.
func CollectTrace(out *[]TraceEvent) Tracer {
	return func(e TraceEvent) { *out = append(*out, e) }
}

// SetTracer installs a tracer on the executor.
func (e *Exec) SetTracer(t Tracer) { e.tracer = t }

// SetTracer installs a tracer on the interpreter.
func (ip *Interp) SetTracer(t Tracer) { ip.tracer = t }

// FormatTrace renders events as an indented log.
func FormatTrace(events []TraceEvent) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString("  ")
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	return b.String()
}

func keyString(vals []uint64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%#x", v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
