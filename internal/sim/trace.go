package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
)

// TraceEvent is one observable step of packet processing — the paper's
// §8.2 debugging direction: "programs can be linked against µP4 debug
// modules ... logging information in the dataplane". The simulator
// exposes the equivalent hooks directly.
type TraceEvent struct {
	Seq    uint64 `json:"seq"`              // monotonic per-bus sequence number
	Kind   string `json:"kind"`             // "table", "action", "parser-state", "module", "drop"
	Module string `json:"module,omitempty"` // emitting module instance path ("" = main)
	Name   string `json:"name"`             // table/action/state/module name
	Detail string `json:"detail,omitempty"` // matched action, key values, etc.
}

func (e TraceEvent) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%-12s %s", e.Kind, e.Name)
	}
	return fmt.Sprintf("%-12s %-40s %s", e.Kind, e.Name, e.Detail)
}

// Tracer receives trace events during processing. A nil tracer is off.
type Tracer func(TraceEvent)

// Bus is a multi-sink trace event distributor. Emitters check Active()
// (one atomic load) before even constructing an event, so an idle bus
// costs nothing on the packet hot path; Publish stamps each event with
// a monotonic sequence number shared by all subscribers. Subscription
// management is copy-on-write: Publish never locks.
type Bus struct {
	active atomic.Int32 // subscriber count, for the fast-path check
	seq    atomic.Uint64
	subs   atomic.Value // map[int]Tracer, copy-on-write
	mu     sync.Mutex   // guards subscription changes
	nextID int
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	b := &Bus{}
	b.subs.Store(map[int]Tracer{})
	return b
}

// Active reports whether any subscriber is attached. Nil-safe.
func (b *Bus) Active() bool { return b != nil && b.active.Load() != 0 }

// Publish stamps e with the next sequence number and delivers it to
// every subscriber. No-op when the bus is nil or has no subscribers.
func (b *Bus) Publish(e TraceEvent) {
	if !b.Active() {
		return
	}
	e.Seq = b.seq.Add(1)
	for _, fn := range b.subs.Load().(map[int]Tracer) {
		fn(e)
	}
}

// Subscribe attaches a sink and returns its detach function. The sink
// may be called concurrently when packets are processed from multiple
// goroutines; use CollectTrace (or your own locking) for shared state.
func (b *Bus) Subscribe(t Tracer) (cancel func()) {
	if t == nil {
		return func() {}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextID
	b.nextID++
	old := b.subs.Load().(map[int]Tracer)
	next := make(map[int]Tracer, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = t
	b.subs.Store(next)
	b.active.Store(int32(len(next)))
	return func() { b.unsubscribe(id) }
}

func (b *Bus) unsubscribe(id int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	old := b.subs.Load().(map[int]Tracer)
	if _, ok := old[id]; !ok {
		return
	}
	next := make(map[int]Tracer, len(old)-1)
	for k, v := range old {
		if k != id {
			next[k] = v
		}
	}
	b.subs.Store(next)
	b.active.Store(int32(len(next)))
}

// CollectTrace returns a tracer appending into a slice. The append is
// mutex-guarded so one collector may be shared by concurrent switches
// (the network-test scenarios) without racing.
func CollectTrace(out *[]TraceEvent) Tracer {
	var mu sync.Mutex
	return func(e TraceEvent) {
		mu.Lock()
		*out = append(*out, e)
		mu.Unlock()
	}
}

// JSONTracer returns a tracer writing one JSON object per event to w —
// a jq-able export of composed-program execution. Writes are serialized
// by an internal mutex.
func JSONTracer(w io.Writer) Tracer {
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	return func(e TraceEvent) {
		mu.Lock()
		_ = enc.Encode(e)
		mu.Unlock()
	}
}

// Bus returns the executor's event bus.
func (e *Exec) Bus() *Bus { return e.bus }

// Bus returns the interpreter's event bus.
func (ip *Interp) Bus() *Bus { return ip.bus }

// SetBus replaces the executor's event bus (e.g. to share one bus — and
// one sequence numbering — across engines of a switch). Call before
// SetTracer or Subscribe.
func (e *Exec) SetBus(b *Bus) {
	if b != nil {
		e.bus = b
	}
}

// SetBus replaces the interpreter's event bus.
func (ip *Interp) SetBus(b *Bus) {
	if b != nil {
		ip.bus = b
	}
}

// SetTracer installs a tracer on the executor, replacing any tracer
// installed by a previous SetTracer call (nil removes it). It is a
// convenience wrapper over Bus().Subscribe for the single-sink case.
func (e *Exec) SetTracer(t Tracer) {
	if e.traceOff != nil {
		e.traceOff()
		e.traceOff = nil
	}
	if t != nil {
		e.traceOff = e.bus.Subscribe(t)
	}
}

// SetTracer installs a tracer on the interpreter (see Exec.SetTracer).
func (ip *Interp) SetTracer(t Tracer) {
	if ip.traceOff != nil {
		ip.traceOff()
		ip.traceOff = nil
	}
	if t != nil {
		ip.traceOff = ip.bus.Subscribe(t)
	}
}

// FormatTrace renders events as an indented log.
func FormatTrace(events []TraceEvent) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString("  ")
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	return b.String()
}

// moduleOf derives the emitting module instance from a fully qualified
// name ("l3_i.ipv4_i.ipv4_lpm_tbl" → "l3_i.ipv4_i"; unprefixed names
// belong to the main program). Used by the compiled engine, whose table
// names carry the instance path.
func moduleOf(fq string) string {
	if i := strings.LastIndexByte(fq, '.'); i >= 0 {
		return fq[:i]
	}
	return ""
}

func keyString(vals []uint64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%#x", v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
