package sim

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"microp4/internal/flow"
	"microp4/internal/ir"
	"microp4/internal/linker"
	"microp4/internal/types"
)

// Metadata carries a packet's intrinsic metadata into the dataplane
// (im_t, paper Fig. 6). Field names follow the meta_t enum.
type Metadata struct {
	InPort      uint64
	InTimestamp uint64
	PktLen      uint64
	// Qdepth is the QUEUE_DEPTH intrinsic: in the netsim it carries the
	// packet's queueing delay in virtual ticks, so in-band telemetry
	// derived from it is deterministic for a fixed seed.
	Qdepth uint64

	// M overrides the engine's attached metrics for this packet — the
	// per-worker telemetry shard hook. Nil uses the engine default.
	M *Metrics
	// Span, when non-nil, receives this packet's hop-level trace events
	// (table lookups, disposition). Nil (the default) records nothing.
	Span *HopSpan
}

// OutPkt is one output packet.
type OutPkt struct {
	Data []byte
	Port uint64
}

// ProcResult is the outcome of processing one packet.
type ProcResult struct {
	Out          []OutPkt // enqueued packets first, the final packet last (absent if dropped)
	Dropped      bool
	Recirculate  bool
	McastGroup   uint64   // nonzero when the program requested replication
	Digests      []uint64 // values sent to the control plane (im.digest)
	ParserReject bool

	// owner links a compiled-engine result to its pooled execution
	// state; Release (exec.go) recycles it. Nil for interpreter results.
	owner *execState
}

// maxParserSteps bounds parser FSM execution (defense against cyclic
// parse graphs reaching the interpreter).
const maxParserSteps = 4096

// errExit unwinds an exit statement to the current control boundary.
var errExit = errors.New("exit")

// Interp executes linked µP4-IR modules with source-level semantics.
type Interp struct {
	linked   *linker.Linked
	tables   *Tables
	regsMu   sync.Mutex             // guards the regs and flows maps (lazy allocation)
	regs     map[string][]uint64    // register state, persistent across packets
	flows    map[string]*flow.Table // flowtable state, persistent across packets
	bus      *Bus                   // trace event bus; idle unless subscribed
	traceOff func()                 // SetTracer's current subscription
	metrics  *Metrics               // nil = observability disabled
}

// NewInterp returns an interpreter over a linked program sharing the
// given control-plane state.
func NewInterp(l *linker.Linked, t *Tables) *Interp {
	return &Interp{linked: l, tables: t,
		regs: make(map[string][]uint64), flows: make(map[string]*flow.Table), bus: NewBus()}
}

// Register returns a register array's cells (allocated on first access),
// keyed by fully qualified instance path. The map itself is safe for
// concurrent Process calls; cell reads and writes are word-sized and
// unsynchronized, like the hardware they model.
func (ip *Interp) Register(path string, size int) []uint64 {
	ip.regsMu.Lock()
	defer ip.regsMu.Unlock()
	r, ok := ip.regs[path]
	if !ok || len(r) < size {
		nr := make([]uint64, size)
		copy(nr, r)
		ip.regs[path] = nr
		r = nr
	}
	return r
}

// FlowTable returns a flowtable instance's state (allocated on first
// access), keyed by fully qualified instance path like Register.
func (ip *Interp) FlowTable(path string, size int, idleTTL, estTTL uint64) *flow.Table {
	ip.regsMu.Lock()
	defer ip.regsMu.Unlock()
	t, ok := ip.flows[path]
	if !ok {
		t = flow.New(size, idleTTL, estTTL)
		ip.flows[path] = t
	}
	return t
}

// FlowTables returns the live flowtable instances by fully qualified
// path. Tables appear after the first packet touches them.
func (ip *Interp) FlowTables() map[string]*flow.Table {
	ip.regsMu.Lock()
	defer ip.regsMu.Unlock()
	out := make(map[string]*flow.Table, len(ip.flows))
	for k, v := range ip.flows {
		out[k] = v
	}
	return out
}

// ResetFlows clears every flowtable. The equivalence harness calls this
// before each witness run so all engines start from identical (empty)
// flow state.
func (ip *Interp) ResetFlows() {
	ip.regsMu.Lock()
	defer ip.regsMu.Unlock()
	for _, t := range ip.flows {
		t.Reset()
	}
}

// pktBuf is a mutable packet buffer shared across module frames.
type pktBuf struct {
	data []byte
}

// view is one module's window into a packet buffer.
type view struct {
	buf  *pktBuf
	base int
}

func (v view) bytes() []byte { return v.buf.data[min(v.base, len(v.buf.data)):] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// splice replaces the region [v.base+from, v.base+from+oldLen) with repl.
func (v view) splice(from, oldLen int, repl []byte) {
	start := v.base + from
	end := start + oldLen
	if start > len(v.buf.data) {
		start = len(v.buf.data)
	}
	if end > len(v.buf.data) {
		end = len(v.buf.data)
	}
	out := make([]byte, 0, len(v.buf.data)-(end-start)+len(repl))
	out = append(out, v.buf.data[:start]...)
	out = append(out, repl...)
	out = append(out, v.buf.data[end:]...)
	v.buf.data = out
}

// run is the shared mutable state of one Process call.
type run struct {
	ip     *Interp
	im     map[string]uint64 // shared intrinsic metadata ("out_port", "meta.IN_PORT", ...)
	result *ProcResult
	obs    *runObs  // non-nil only under ObserveProcess
	m      *Metrics // effective metrics sink (Metadata.M override or engine default)
	span   *HopSpan // optional hop trace (Metadata.Span)
}

// frame is one module invocation.
type frame struct {
	r       *run
	prog    *ir.Program
	inst    string // instance path for table naming ("" = main)
	store   map[string]uint64
	valid   map[string]bool
	varbits map[string][]byte // varbit payloads by header instance path
	pkts    map[string]view   // "$pkt" plus local pkt instances
	ims     map[string]bool   // names of local im_t instances (stored in store)
	parsed  int               // bytes consumed by this module's parser
	mcGroup uint64
	// im indirection: a module's "$im" may be bound to the shared
	// intrinsic metadata or to a caller's local im_t copy (e.g. the
	// test copy's metadata in Fig. 13).
	imGet      func(field string) uint64
	imSet      func(field string, v uint64)
	imIsGlobal bool
	obs        *frameObs // non-nil only under ObserveProcess
}

// Process runs the linked program on one packet. It never panics:
// interpreter panics are recovered into an *EngineFault, and every
// failure it returns belongs to the typed taxonomy (errors.go).
func (ip *Interp) Process(pkt []byte, meta Metadata) (*ProcResult, error) {
	return ip.process(pkt, meta, nil)
}

func (ip *Interp) process(pkt []byte, meta Metadata, obs *runObs) (res *ProcResult, err error) {
	m := ip.metrics
	if meta.M != nil {
		m = meta.M
	}
	span := meta.Span
	defer func() {
		recoverFault("reference", &res, &err)
		if err != nil {
			m.countError(err)
			if span != nil {
				span.Disposition = "error"
				span.Err = err.Error()
			}
		}
	}()
	sampled := m.sampleLatency()
	var start time.Time
	if sampled || span != nil {
		start = time.Now()
	}
	r := &run{
		m:    m,
		span: span,
		ip:   ip,
		im: map[string]uint64{
			"out_port":           0,
			"meta.IN_PORT":       meta.InPort,
			"meta.IN_TIMESTAMP":  meta.InTimestamp,
			"meta.PKT_LEN":       uint64(len(pkt)),
			"meta.OUT_TIMESTAMP": 0,
			"meta.INSTANCE_ID":   0,
			"meta.QUEUE_DEPTH":   meta.Qdepth,
			"meta.DEQ_TIMESTAMP": 0,
			"meta.ENQ_TIMESTAMP": 0,
		},
		result: &ProcResult{},
		obs:    obs,
	}
	buf := &pktBuf{data: append([]byte(nil), pkt...)}
	if obs != nil {
		obs.buf = buf
		obs.prov = make([]int, len(pkt))
		for i := range obs.prov {
			obs.prov[i] = i
		}
	}
	if _, err := r.runModuleFrame(ip.linked.Main, "", view{buf: buf}, nil, r.globalIM()); err != nil {
		return nil, err
	}
	res = r.result
	switch {
	case ip.linked.Main.Interface == "Orchestration":
		// An orchestration pipeline's outputs come solely from its
		// out_buf enqueues (§4.1); there is no implicit final packet.
		// Enqueues addressed to the drop port are filtered here, in the
		// architecture.
		kept := res.Out[:0]
		for _, o := range res.Out {
			if o.Port != types.DropPort {
				kept = append(kept, o)
			}
		}
		res.Out = kept
		if r.im["$perr"] != 0 {
			res.Dropped = true
			res.Out = nil
		}
	case r.im["out_port"] == types.DropPort || r.im["$perr"] != 0:
		res.Dropped = true
	default:
		res.Out = append(res.Out, OutPkt{Data: append([]byte(nil), buf.data...), Port: r.im["out_port"]})
	}
	if span != nil {
		if res.Dropped {
			span.Disposition = "drop"
		} else if len(res.Out) > 0 {
			span.Disposition = "forward"
			for _, o := range res.Out {
				span.OutPorts = append(span.OutPorts, o.Port)
			}
		} else {
			span.Disposition = "drop"
		}
		span.ExecNs += time.Since(start).Nanoseconds()
	}
	if m != nil {
		m.countResult(meta.InPort, len(pkt), res)
		if sampled {
			m.Latency.Observe(uint64(time.Since(start)))
		}
	}
	return res, nil
}

// argBinding passes a module call's data arguments.
type argBinding struct {
	param ir.ModParam
	value uint64 // in/inout input value
	loc   BitLoc // input-packet provenance of value (observation mode)
}

// ----------------------------------------------------------------------------
// Parser

func (f *frame) runParser() (accepted bool, err error) {
	state := f.prog.Parser.State("start")
	if state == nil {
		return false, &ParseError{Program: f.prog.Name, Reason: "no start state"}
	}
	for steps := 0; ; steps++ {
		if steps > maxParserSteps {
			return false, &ParseError{Program: f.prog.Name, State: state.Name,
				Reason: fmt.Sprintf("did not terminate within %d steps", maxParserSteps)}
		}
		if f.r.ip.bus.Active() {
			f.r.ip.bus.Publish(TraceEvent{Kind: "parser-state", Module: f.inst, Name: f.prog.Name + "." + state.Name})
		}
		if f.obs != nil {
			f.emitObs(ObsEvent{Kind: "state", State: state.Name})
		}
		for _, s := range state.Stmts {
			if s.Kind == ir.SExtract {
				ok, err := f.extract(s)
				if err != nil {
					return false, err
				}
				if !ok {
					if f.obs != nil {
						f.emitObs(ObsEvent{Kind: "reject", State: state.Name, Reason: "short"})
					}
					return false, nil // truncated packet rejects
				}
				continue
			}
			if err := f.execStmt(s); err != nil {
				return false, err
			}
		}
		target, err := f.transition(state)
		if err != nil {
			return false, err
		}
		switch target {
		case "accept":
			if f.obs != nil {
				f.emitObs(ObsEvent{Kind: "accept"})
			}
			return true, nil
		case "reject":
			if f.obs != nil {
				reason := "explicit"
				if f.obs.selNoMatch {
					reason = "no-match"
				}
				f.emitObs(ObsEvent{Kind: "reject", State: state.Name, Reason: reason})
			}
			return false, nil
		}
		state = f.prog.Parser.State(target)
		if state == nil {
			return false, &ParseError{Program: f.prog.Name, Reason: "transition to unknown state " + target}
		}
	}
}

func (f *frame) transition(st *ir.State) (string, error) {
	tr := st.Trans
	if tr == nil {
		return "reject", nil
	}
	if tr.Kind == "direct" {
		return tr.Target, nil
	}
	vals := make([]uint64, len(tr.Exprs))
	for i, e := range tr.Exprs {
		v, err := f.eval(e)
		if err != nil {
			return "", err
		}
		vals[i] = v
	}
	taken, target := -1, "reject"
	for i, c := range tr.Cases {
		if c.Default {
			taken, target = i, c.Target
			break
		}
		match := true
		for j := range c.Values {
			if c.DontCare[j] {
				continue
			}
			w := tr.Exprs[j].Width
			v := truncate(vals[j], w)
			if c.HasMask[j] {
				if v&c.Masks[j] != c.Values[j]&c.Masks[j] {
					match = false
					break
				}
			} else if v != c.Values[j] {
				match = false
				break
			}
		}
		if match {
			taken, target = i, c.Target
			break
		}
	}
	if f.obs != nil {
		locs := make([]BitLoc, len(tr.Exprs))
		for i, e := range tr.Exprs {
			locs[i] = f.resolveLoc(e)
		}
		f.obs.selNoMatch = taken < 0
		f.emitObs(ObsEvent{Kind: "select", State: st.Name, Trans: tr,
			SelVals: append([]uint64(nil), vals...), SelLocs: locs, Taken: taken})
	}
	return target, nil
}

// extract reads a header from the packet view at the current cursor.
// Returns false if the packet is too short.
func (f *frame) extract(s *ir.Stmt) (bool, error) {
	ht := f.headerType(s.Hdr)
	if ht == nil {
		return false, &ParseError{Program: f.prog.Name, Reason: "extract of unknown header " + s.Hdr}
	}
	v := f.pkts["$pkt"]
	data := v.bytes()
	fixedBits := 0
	for _, fl := range ht.Fields {
		if !fl.Varbit {
			fixedBits += fl.Width
		}
	}
	varBytes := 0
	if ht.HasVarbit {
		if s.VarSize == nil {
			return false, &ParseError{Program: f.prog.Name, Reason: "extract of varbit header " + s.Hdr + " without a size"}
		}
		bits, err := f.eval(s.VarSize)
		if err != nil {
			return false, err
		}
		if bits%8 != 0 {
			return false, &ParseError{Program: f.prog.Name,
				Reason: fmt.Sprintf("varbit size %d is not a whole number of bytes", bits)}
		}
		varBytes = int(bits / 8)
		if varBytes*8 > ht.BitWidth-fixedBits {
			return false, nil // oversized varbit rejects
		}
	}
	size := fixedBits/8 + varBytes
	if f.parsed+size > len(data) {
		return false, nil
	}
	startParsed := f.parsed
	off := f.parsed * 8
	varOff := -1
	for _, fl := range ht.Fields {
		if fl.Varbit {
			varOff = off
			off += varBytes * 8
			continue
		}
		f.store[s.Hdr+"."+fl.Name] = readBits(data, off, fl.Width)
		off += fl.Width
	}
	if varOff >= 0 {
		f.varbits[s.Hdr] = append([]byte(nil), data[varOff/8:varOff/8+varBytes]...)
	}
	f.valid[s.Hdr] = true
	f.parsed += size
	if f.obs != nil {
		f.observeExtract(s.Hdr, ht, v, startParsed, size, varBytes)
	}
	return true, nil
}

// ----------------------------------------------------------------------------
// Deparser

func (f *frame) runDeparser() ([]byte, error) {
	var out []byte
	var walk func(ss []*ir.Stmt) error
	walk = func(ss []*ir.Stmt) error {
		for _, s := range ss {
			switch s.Kind {
			case ir.SEmit:
				out = append(out, f.emitBytes(s.Hdr)...)
			case ir.SIf:
				cond, err := f.eval(s.Cond)
				if err != nil {
					return err
				}
				if cond != 0 {
					if err := walk(s.Then); err != nil {
						return err
					}
				} else if err := walk(s.Else); err != nil {
					return err
				}
			default:
				return &DeparseError{Program: f.prog.Name, Reason: "unsupported deparser statement " + s.Kind}
			}
		}
		return nil
	}
	if err := walk(f.prog.Deparser); err != nil {
		return nil, err
	}
	return out, nil
}

func (f *frame) emitBytes(hdr string) []byte {
	if !f.valid[hdr] {
		return nil
	}
	ht := f.headerType(hdr)
	if ht == nil {
		return nil
	}
	if f.obs != nil {
		vb := f.varbits[hdr]
		fixed := 0
		for _, fl := range ht.Fields {
			if !fl.Varbit {
				fixed += fl.Width
			}
		}
		f.obs.emitProv = append(f.obs.emitProv, f.emitProvOf(hdr, ht, fixed/8+len(vb), vb)...)
	}
	vb := f.varbits[hdr]
	fixedBits := 0
	for _, fl := range ht.Fields {
		if !fl.Varbit {
			fixedBits += fl.Width
		}
	}
	out := make([]byte, fixedBits/8+len(vb))
	off := 0
	for _, fl := range ht.Fields {
		if fl.Varbit {
			copy(out[off/8:], vb)
			off += len(vb) * 8
			continue
		}
		writeBits(out, off, fl.Width, f.store[hdr+"."+fl.Name])
		off += fl.Width
	}
	return out
}

func (f *frame) headerType(path string) *ir.HeaderType {
	d := f.prog.DeclByPath(path)
	if d == nil {
		return nil
	}
	return f.prog.Headers[d.TypeName]
}

// ----------------------------------------------------------------------------
// Expressions

func (f *frame) eval(e *ir.Expr) (uint64, error) {
	switch e.Kind {
	case ir.EConst:
		return e.Value, nil
	case ir.ERef:
		return f.load(e.Ref), nil
	case ir.EIsValid:
		if f.valid[e.Ref] {
			return 1, nil
		}
		return 0, nil
	case ir.EUn:
		x, err := f.eval(e.X)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "!":
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		case "~":
			return truncate(^x, e.Width), nil
		case "-":
			return truncate(-x, e.Width), nil
		case "cast":
			return truncate(x, e.Width), nil
		}
		return 0, &EngineFault{Engine: "reference", Reason: fmt.Sprintf("unknown unary %q", e.Op)}
	case ir.EBin:
		x, err := f.eval(e.X)
		if err != nil {
			return 0, err
		}
		y, err := f.eval(e.Y)
		if err != nil {
			return 0, err
		}
		if e.Op == "++" {
			return truncate(truncate(x, e.X.Width)<<uint(e.Y.Width)|truncate(y, e.Y.Width), e.Width), nil
		}
		w := e.Width
		if e.Bool {
			w = e.X.Width
		}
		return evalBinary(e.Op, truncate(x, orW(e.X.Width, w)), truncate(y, orW(e.Y.Width, w)), w)
	case ir.ESlice:
		x, err := f.eval(e.X)
		if err != nil {
			return 0, err
		}
		return x >> uint(e.Lo) & maskW(e.Hi-e.Lo+1), nil
	}
	return 0, &EngineFault{Engine: "reference", Reason: "cannot evaluate " + e.Kind + " expression"}
}

func orW(a, b int) int {
	if a > 0 {
		return a
	}
	return b
}

// load reads a storage path; "$im.*" routes to the shared metadata.
func (f *frame) load(ref string) uint64 {
	if strings.HasPrefix(ref, "$im.") {
		return f.imGet(ref[len("$im."):])
	}
	return f.store[ref]
}

func (f *frame) storeRef(ref string, v uint64) {
	if strings.HasPrefix(ref, "$im.") {
		f.imSet(ref[len("$im."):], v)
		return
	}
	if f.obs != nil {
		delete(f.obs.locs, ref) // provenance is re-established by SAssign when traceable
	}
	f.store[ref] = v
}

// assign writes v to an lvalue (plain ref or bit-slice of a ref).
func (f *frame) assign(lhs *ir.Expr, v uint64) error {
	switch lhs.Kind {
	case ir.ERef:
		f.storeRef(lhs.Ref, truncate(v, orW(lhs.Width, 64)))
		return nil
	case ir.ESlice:
		if lhs.X.Kind != ir.ERef {
			return &EngineFault{Engine: "reference", Reason: "assignment to slice of non-reference"}
		}
		cur := f.load(lhs.X.Ref)
		m := maskW(lhs.Hi-lhs.Lo+1) << uint(lhs.Lo)
		f.storeRef(lhs.X.Ref, cur&^m|(v<<uint(lhs.Lo))&m)
		return nil
	}
	return &EngineFault{Engine: "reference", Reason: fmt.Sprintf("assignment to unsupported lvalue %s", lhs)}
}
