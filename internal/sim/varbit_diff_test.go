package sim_test

import (
	"testing"

	"microp4/internal/frontend"
	"microp4/internal/mat"
	"microp4/internal/midend"
	"microp4/internal/pkt"
	"microp4/internal/sim"
)

// varbitSrc parses an IPv4 header whose options are a varbit field sized
// by IHL — the classic variable-length case the §C transformation
// enumerates into per-size states.
const varbitSrc = `
struct empty_t { }
header ethernet_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
header ipv4opt_h {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> totalLen;
  bit<16> identification; bit<3> flags; bit<13> fragOffset;
  bit<8> ttl; bit<8> protocol; bit<16> hdrChecksum;
  bit<32> srcAddr; bit<32> dstAddr;
  varbit<320> options;
}
struct hdr_t { ethernet_h eth; ipv4opt_h ipv4; }
program VarOpts : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) { 0x0800: parse_v4; default: accept; };
    }
    state parse_v4 {
      ex.extract(p, h.ipv4, ((bit<32>)h.ipv4.ihl - 5) * 32);
      transition accept;
    }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) {
    apply {
      if (h.ipv4.isValid()) {
        h.ipv4.ttl = h.ipv4.ttl - 1;
        im.set_out_port(2);
      } else {
        im.set_out_port(3);
      }
    }
  }
  control D(emitter em, pkt p, in hdr_t h) {
    apply { em.emit(p, h.eth); em.emit(p, h.ipv4); }
  }
}
VarOpts(P, C, D) main;
`

// TestVarbitDifferential runs IPv4 packets with 0..10 words of options
// through both engines: the §C split must preserve byte-level semantics,
// including the option bytes riding along unmodified.
func TestVarbitDifferential(t *testing.T) {
	main, err := frontend.CompileModule("varopts.up4", varbitSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := midend.Build(main)
	if err != nil {
		t.Fatal(err)
	}
	// Byte-stack: eth 14 + ipv4 20 + options max 40 = 74.
	if res.Pipeline.BsBytes != 74 {
		t.Fatalf("Bs = %d, want 74", res.Pipeline.BsBytes)
	}
	tables := sim.NewTables()
	exec := sim.NewExec(res.Pipeline, tables)
	interp := sim.NewInterp(res.Linked, tables)

	mkv4 := func(optWords int, ttl uint8) []byte {
		b := pkt.NewBuilder().Ethernet(1, 2, pkt.EtherTypeIPv4)
		var h [20]byte
		h[0] = byte(0x40 | (5 + optWords))
		h[8] = ttl
		h[9] = 6
		raw := b.Payload(h[:]).Bytes()
		for i := 0; i < optWords*4; i++ {
			raw = append(raw, byte(0x80+i))
		}
		return append(raw, []byte("tail-payload")...)
	}

	for optWords := 0; optWords <= 10; optWords++ {
		in := mkv4(optWords, 9)
		ri, err := interp.Process(in, sim.Metadata{})
		if err != nil {
			t.Fatalf("opts=%d: interp: %v", optWords, err)
		}
		rx, err := exec.Process(in, sim.Metadata{})
		if err != nil {
			t.Fatalf("opts=%d: exec: %v", optWords, err)
		}
		if summarize(ri) != summarize(rx) {
			t.Fatalf("opts=%d words: engines diverge:\n  %s\n  %s\n  in: %s",
				optWords, summarize(ri), summarize(rx), pkt.Dump(in))
		}
		if ri.Dropped {
			t.Fatalf("opts=%d: dropped", optWords)
		}
		out := ri.Out[0]
		if out.Port != 2 || pkt.IPv4TTL(out.Data, 14) != 8 {
			t.Fatalf("opts=%d: %+v", optWords, out)
		}
		// Option bytes and payload intact.
		for i := 0; i < optWords*4; i++ {
			if out.Data[34+i] != byte(0x80+i) {
				t.Fatalf("opts=%d: option byte %d corrupted", optWords, i)
			}
		}
		if string(out.Data[len(out.Data)-12:]) != "tail-payload" {
			t.Fatalf("opts=%d: payload corrupted", optWords)
		}
	}

	// An IHL larger than the varbit maximum (ihl=15 fits; a truncated
	// packet shorter than ihl says) rejects identically.
	short := mkv4(8, 9)[:40]
	ri, _ := interp.Process(short, sim.Metadata{})
	rx, _ := exec.Process(short, sim.Metadata{})
	if summarize(ri) != summarize(rx) || !ri.Dropped {
		t.Errorf("truncated options: interp=%s exec=%s", summarize(ri), summarize(rx))
	}
	// Non-IPv4 bypasses: port 3.
	arp := pkt.NewBuilder().Ethernet(1, 2, 0x0806).Payload([]byte{1, 2}).Bytes()
	ra, err := exec.Process(arp, sim.Metadata{})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Dropped || ra.Out[0].Port != 3 {
		t.Errorf("arp: %+v", ra)
	}
}

// TestVarbitSplitEncoding re-runs the options sweep with the §8.1
// split-parser encoding.
func TestVarbitSplitEncoding(t *testing.T) {
	main, err := frontend.CompileModule("varopts.up4", varbitSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := midend.BuildWith(midend.Options{
		Compose: mat.Options{SplitParserMATs: true},
	}, main)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := midend.Build(main)
	if err != nil {
		t.Fatal(err)
	}
	tables := sim.NewTables()
	exec := sim.NewExec(res.Pipeline, tables)
	interp := sim.NewInterp(plain.Linked, tables)
	for optWords := 0; optWords <= 10; optWords++ {
		var h [20]byte
		h[0] = byte(0x40 | (5 + optWords))
		h[8] = 7
		in := pkt.NewBuilder().Ethernet(1, 2, pkt.EtherTypeIPv4).Payload(h[:]).Bytes()
		for i := 0; i < optWords*4; i++ {
			in = append(in, byte(i))
		}
		rx, err := exec.Process(in, sim.Metadata{})
		if err != nil {
			t.Fatalf("opts=%d: %v", optWords, err)
		}
		ri, err := interp.Process(in, sim.Metadata{})
		if err != nil {
			t.Fatal(err)
		}
		if summarize(rx) != summarize(ri) {
			t.Fatalf("opts=%d: split diverges:\n  %s\n  %s", optWords, summarize(rx), summarize(ri))
		}
	}
}
