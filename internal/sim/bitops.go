// Package sim is the behavioral dataplane simulator: a reference
// interpreter that executes µP4-IR modules with source-level semantics,
// and an executor that runs the midend's composed MAT pipelines. Running
// both on the same traffic differentially validates µP4C's
// transformations (the substitute for the paper's BMv2/Tofino targets).
package sim

import "fmt"

// readBits reads w bits (w ≤ 64) starting at absolute bit offset off in
// buf, network bit order (MSB of buf[0] is bit 0). Bits beyond the buffer
// read as zero.
func readBits(buf []byte, off, w int) uint64 {
	var v uint64
	bit := off
	for remaining := w; remaining > 0; {
		byteIdx := bit >> 3
		inByte := bit & 7
		take := 8 - inByte
		if take > remaining {
			take = remaining
		}
		var b byte
		if byteIdx < len(buf) {
			b = buf[byteIdx]
		}
		chunk := b >> (8 - inByte - take) & byte(1<<take-1)
		v = v<<take | uint64(chunk)
		bit += take
		remaining -= take
	}
	return v
}

// writeBits writes the low w bits of v (w ≤ 64) at absolute bit offset
// off in buf. Writes beyond the buffer are dropped.
func writeBits(buf []byte, off, w int, v uint64) {
	bit := off
	for remaining := w; remaining > 0; {
		byteIdx := bit >> 3
		inByte := bit & 7
		take := 8 - inByte
		if take > remaining {
			take = remaining
		}
		if byteIdx < len(buf) {
			chunk := byte(v>>(remaining-take)) & byte(1<<take-1)
			shift := 8 - inByte - take
			mask := byte(1<<take-1) << shift
			buf[byteIdx] = buf[byteIdx]&^mask | chunk<<shift
		}
		bit += take
		remaining -= take
	}
}

// maskW returns a mask of the low w bits.
func maskW(w int) uint64 {
	if w <= 0 {
		return 0
	}
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

// truncate keeps the low w bits of v.
func truncate(v uint64, w int) uint64 { return v & maskW(w) }

// evalBinary evaluates a binary operator on w-bit operands.
func evalBinary(op string, x, y uint64, w int) (uint64, error) {
	b := func(cond bool) uint64 {
		if cond {
			return 1
		}
		return 0
	}
	switch op {
	case "+":
		return truncate(x+y, w), nil
	case "-":
		return truncate(x-y, w), nil
	case "*":
		return truncate(x*y, w), nil
	case "/":
		if y == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return x / y, nil
	case "%":
		if y == 0 {
			return 0, fmt.Errorf("modulo by zero")
		}
		return x % y, nil
	case "&":
		return x & y, nil
	case "|":
		return x | y, nil
	case "^":
		return x ^ y, nil
	case "<<":
		if y >= 64 {
			return 0, nil
		}
		return truncate(x<<y, w), nil
	case ">>":
		if y >= 64 {
			return 0, nil
		}
		return x >> y, nil
	case "==":
		return b(x == y), nil
	case "!=":
		return b(x != y), nil
	case "<":
		return b(x < y), nil
	case ">":
		return b(x > y), nil
	case "<=":
		return b(x <= y), nil
	case ">=":
		return b(x >= y), nil
	case "&&":
		return b(x != 0 && y != 0), nil
	case "||":
		return b(x != 0 || y != 0), nil
	}
	return 0, fmt.Errorf("unknown binary operator %q", op)
}
