package sim_test

import (
	"math/rand"
	"testing"

	"microp4/internal/lib"
	"microp4/internal/mat"
	"microp4/internal/midend"
	"microp4/internal/pkt"
	"microp4/internal/sim"
)

// TestOptimizedDifferential re-runs randomized traffic with the §8.1
// clean-copy elimination enabled: the optimized compiled pipeline must
// agree byte-for-byte with the unoptimized reference interpreter.
func TestOptimizedDifferential(t *testing.T) {
	const perProgram = 300
	for _, prog := range []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7"} {
		prog := prog
		t.Run(prog, func(t *testing.T) {
			main, mods, err := lib.CompileProgram(prog)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := midend.BuildWith(midend.Options{
				Compose: mat.Options{EliminateCleanCopies: true},
			}, main, mods...)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := midend.Build(main, mods...)
			if err != nil {
				t.Fatal(err)
			}
			tables := sim.NewTables()
			lib.InstallDefaultRules(tables, prog, false)
			optExec := sim.NewExec(opt.Pipeline, tables)
			interp := sim.NewInterp(plain.Linked, tables)

			r := rand.New(rand.NewSource(0xDEC0DE + int64(len(prog))))
			for i := 0; i < perProgram; i++ {
				data := randPacket(r)
				m := sim.Metadata{InPort: uint64(r.Intn(16))}
				ro, err := optExec.Process(data, m)
				if err != nil {
					t.Fatalf("pkt %d: optimized exec: %v\n%s", i, err, pkt.Dump(data))
				}
				ri, err := interp.Process(data, m)
				if err != nil {
					t.Fatalf("pkt %d: interp: %v", i, err)
				}
				if so, si := summarize(ro), summarize(ri); so != si {
					t.Fatalf("pkt %d: §8.1 optimization changed semantics:\n  opt:    %s\n  interp: %s\nin: %s",
						i, so, si, pkt.Dump(data))
				}
			}
		})
	}
}

// TestOptimizationShrinksPipeline checks the optimization actually
// removes work: P1's ACL module modifies nothing, so its deparser MAT
// must disappear entirely.
func TestOptimizationShrinksPipeline(t *testing.T) {
	main, mods, err := lib.CompileProgram("P1")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := midend.Build(main, mods...)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := midend.BuildWith(midend.Options{
		Compose: mat.Options{EliminateCleanCopies: true},
	}, main, mods...)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Pipeline.Tables["acl_i.$deparser_tbl"] == nil {
		t.Fatal("baseline P1 should have an ACL deparser MAT")
	}
	if opt.Pipeline.Tables["acl_i.$deparser_tbl"] != nil {
		t.Error("optimized P1 still has the ACL deparser MAT (the module never modifies the packet)")
	}
	// The optimized pipeline has strictly fewer synthesized statements.
	count := func(pl *mat.Pipeline) int {
		n := 0
		for _, a := range pl.Actions {
			n += len(a.Body)
		}
		return n
	}
	if co, cp := count(opt.Pipeline), count(plain.Pipeline); co >= cp {
		t.Errorf("optimized action statements %d not below baseline %d", co, cp)
	}
}
