package sim_test

import (
	"math/rand"
	"testing"

	"microp4/internal/lib"
	"microp4/internal/mat"
	"microp4/internal/midend"
	"microp4/internal/pkt"
	"microp4/internal/sim"
)

// TestSplitParserDifferential re-runs randomized traffic with the §8.1
// split-parser encoding: per-depth MATs must agree byte-for-byte with
// the reference interpreter.
func TestSplitParserDifferential(t *testing.T) {
	const perProgram = 300
	for _, prog := range []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7"} {
		prog := prog
		t.Run(prog, func(t *testing.T) {
			main, mods, err := lib.CompileProgram(prog)
			if err != nil {
				t.Fatal(err)
			}
			split, err := midend.BuildWith(midend.Options{
				Compose: mat.Options{SplitParserMATs: true},
			}, main, mods...)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := midend.Build(main, mods...)
			if err != nil {
				t.Fatal(err)
			}
			tables := sim.NewTables()
			lib.InstallDefaultRules(tables, prog, false)
			splitExec := sim.NewExec(split.Pipeline, tables)
			interp := sim.NewInterp(plain.Linked, tables)

			r := rand.New(rand.NewSource(0x5EED + int64(len(prog)*7)))
			for i := 0; i < perProgram; i++ {
				data := randPacket(r)
				m := sim.Metadata{InPort: uint64(r.Intn(16))}
				rs, err := splitExec.Process(data, m)
				if err != nil {
					t.Fatalf("pkt %d: split exec: %v\n%s", i, err, pkt.Dump(data))
				}
				ri, err := interp.Process(data, m)
				if err != nil {
					t.Fatalf("pkt %d: interp: %v", i, err)
				}
				if ss, si := summarize(rs), summarize(ri); ss != si {
					t.Fatalf("pkt %d: split-parser encoding changed semantics:\n  split:  %s\n  interp: %s\nin: %s",
						i, ss, si, pkt.Dump(data))
				}
			}
		})
	}
}

// TestSplitParserStructure pins the encoding's shape on the Fig. 10
// parser: depth tables replace the single path-product MAT.
func TestSplitParserStructure(t *testing.T) {
	main, mods, err := lib.CompileProgram("P7")
	if err != nil {
		t.Fatal(err)
	}
	res, err := midend.BuildWith(midend.Options{
		Compose: mat.Options{SplitParserMATs: true},
	}, main, mods...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline.Tables["l3_i.srv6_i.$parser_tbl"] != nil {
		t.Error("split mode still produced the monolithic parser MAT")
	}
	// The SRv6 parser is 6 states deep (ipv6, srh, seg4..seg1) → tables
	// $0..$6 (finalize included).
	found := 0
	for name := range res.Pipeline.Tables {
		if len(name) > 0 && name[len(name)-2] == '$' || name == "" {
			continue
		}
		_ = name
	}
	for d := 0; d <= 6; d++ {
		if res.Pipeline.Tables[nameAt("l3_i.srv6_i.$parser_tbl", d)] != nil {
			found++
		}
	}
	if found < 3 {
		t.Errorf("only %d depth tables found for the SRv6 parser", found)
	}
}

func nameAt(base string, d int) string {
	return base + "$" + string(rune('0'+d))
}
