package sim_test

import (
	"math/rand"
	"testing"

	"microp4/internal/pkt"
	"microp4/internal/sim"
)

// randPacket generates structured-random traffic: a random mix of valid
// protocol stacks, mutated fields, and raw garbage, so the differential
// engines are exercised on both well-formed and hostile inputs.
func randPacket(r *rand.Rand) []byte {
	switch r.Intn(10) {
	case 0: // raw garbage
		n := r.Intn(100)
		b := make([]byte, n)
		r.Read(b)
		return b
	case 1: // ethernet with random ethertype
		return pkt.NewBuilder().
			Ethernet(uint64(r.Int63())&0xFFFFFFFFFFFF, uint64(r.Int63())&0xFFFFFFFFFFFF, uint16(r.Intn(1<<16))).
			Payload(randBytes(r, r.Intn(60))).Bytes()
	case 2, 3, 4: // IPv4/TCP-ish
		b := pkt.NewBuilder().
			Ethernet(1, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{
				TTL:      uint8(r.Intn(256)),
				Protocol: []uint8{6, 17, 1, 250}[r.Intn(4)],
				Src:      r.Uint32(),
				Dst:      []uint32{0x0A000001 + r.Uint32()%1000, 0x14000002, r.Uint32()}[r.Intn(3)],
			})
		if r.Intn(2) == 0 {
			b.TCP(uint16(r.Intn(1<<16)), []uint16{22, 80, 443, uint16(r.Intn(1 << 16))}[r.Intn(4)])
		}
		return b.Payload(randBytes(r, r.Intn(40))).Bytes()
	case 5, 6: // IPv6
		return pkt.NewBuilder().
			Ethernet(1, 2, pkt.EtherTypeIPv6).
			IPv6(pkt.IPv6Opts{
				NextHdr:  []uint8{59, 6, 43}[r.Intn(3)],
				HopLimit: uint8(r.Intn(256)),
				SrcHi:    0xFD00000000000000 | uint64(r.Intn(1024)),
				DstHi:    []uint64{0x20010DB800000000, r.Uint64()}[r.Intn(2)],
				DstLo:    r.Uint64(),
			}).Payload(randBytes(r, r.Intn(80))).Bytes()
	case 7: // MPLS
		b := pkt.NewBuilder().Ethernet(1, 2, pkt.EtherTypeMPLS)
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			b.MPLS(uint32(r.Intn(1<<20)), uint8(r.Intn(8)), i == n-1, uint8(r.Intn(256)))
		}
		return b.Payload(randBytes(r, r.Intn(40))).Bytes()
	case 8: // truncations of valid packets
		base := pkt.NewBuilder().
			Ethernet(1, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 1, Dst: 0x0A000001}).
			TCP(1, 2).Bytes()
		if len(base) == 0 {
			return base
		}
		return base[:r.Intn(len(base))]
	default: // SRv6-ish
		n := 1 + r.Intn(4)
		segs := make([][2]uint64, n)
		for i := range segs {
			segs[i] = [2]uint64{0x20010DB800000000, uint64(r.Intn(1000))}
		}
		return pkt.NewBuilder().
			Ethernet(1, 2, pkt.EtherTypeIPv6).
			IPv6(pkt.IPv6Opts{NextHdr: 43, HopLimit: uint8(r.Intn(256)), DstHi: 3, DstLo: 4}).
			SRv6(6, uint8(r.Intn(n+2)), segs).
			Payload(randBytes(r, r.Intn(32))).Bytes()
	}
}

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

// TestRandomizedDifferential runs structured-random traffic through all
// three engines of every program and requires agreement — the strongest
// check that µP4C's homogenization and composition preserve semantics.
func TestRandomizedDifferential(t *testing.T) {
	const perProgram = 400
	for _, prog := range []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7"} {
		prog := prog
		t.Run(prog, func(t *testing.T) {
			e := buildEngines(t, prog)
			r := rand.New(rand.NewSource(0xC0FFEE + int64(len(prog))))
			for i := 0; i < perProgram; i++ {
				data := randPacket(r)
				m := sim.Metadata{InPort: uint64(r.Intn(64))}
				ri, err := e.interp.Process(data, m)
				if err != nil {
					t.Fatalf("pkt %d: interp: %v\n%s", i, err, pkt.Dump(data))
				}
				rx, err := e.exec.Process(data, m)
				if err != nil {
					t.Fatalf("pkt %d: exec: %v\n%s", i, err, pkt.Dump(data))
				}
				rm, err := e.monoInterp.Process(data, m)
				if err != nil {
					t.Fatalf("pkt %d: mono: %v\n%s", i, err, pkt.Dump(data))
				}
				si, sx, sm := summarize(ri), summarize(rx), summarize(rm)
				if si != sx {
					t.Fatalf("pkt %d: interp vs exec:\n  %s\n  %s\nin: %s", i, si, sx, pkt.Dump(data))
				}
				if si != sm {
					t.Fatalf("pkt %d: composed vs mono:\n  %s\n  %s\nin: %s", i, si, sm, pkt.Dump(data))
				}
			}
		})
	}
}
