package sim_test

import (
	"math/rand"
	"testing"

	"microp4/internal/frontend"
	"microp4/internal/ir"
	"microp4/internal/midend"
	"microp4/internal/pkt"
	"microp4/internal/sim"
)

// A caller whose parser has TWO accepting paths of different lengths
// (eth, or eth+vlan) invoking the same module: the callee's MAT entries
// must be replicated per caller path with different byte-stack bases,
// keyed on the caller's path-id (§5.3's path-product).

const vlanCalleeSrc = `
struct empty_t { }
header ipv4_h {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> totalLen;
  bit<16> identification; bit<3> flags; bit<13> fragOffset;
  bit<8> ttl; bit<8> protocol; bit<16> hdrChecksum;
  bit<32> srcAddr; bit<32> dstAddr;
}
struct chdr_t { ipv4_h ipv4; }
program V4 : implements Unicast {
  parser P(extractor ex, pkt p, out chdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.ipv4); transition accept; }
  }
  control C(pkt p, inout chdr_t h, inout empty_t m, im_t im, out bit<16> nh) {
    action route(bit<16> next_hop) { h.ipv4.ttl = h.ipv4.ttl - 1; nh = next_hop; }
    action none() { nh = 0; }
    table rt {
      key = { h.ipv4.dstAddr : lpm; }
      actions = { route; none; }
      default_action = none;
    }
    apply { nh = 0; rt.apply(); }
  }
  control D(emitter em, pkt p, in chdr_t h) { apply { em.emit(p, h.ipv4); } }
}
`

const vlanMainSrc = `
struct empty_t { }
header ethernet_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
header vlan_h { bit<3> pcp; bit<1> dei; bit<12> vid; bit<16> innerType; }
struct hdr_t { ethernet_h eth; vlan_h vlan; }
V4(pkt p, im_t im, out bit<16> nh);
program VlanRouter : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) {
        0x8100: parse_vlan;
        0x0800: accept;
        default: accept;
      };
    }
    state parse_vlan { ex.extract(p, h.vlan); transition accept; }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) {
    bit<16> nh;
    bit<16> effType;
    V4() v4_i;
    action fwd(bit<9> port) { im.set_out_port(port); }
    action drop_pkt() { im.drop(); }
    table forward_tbl {
      key = { nh : exact; }
      actions = { fwd; drop_pkt; }
      default_action = drop_pkt;
    }
    apply {
      nh = 0;
      effType = h.eth.etherType;
      if (h.vlan.isValid()) {
        effType = h.vlan.innerType;
      }
      if (effType == 0x0800) {
        // The callee's packet view starts after eth (14B) on one caller
        // path and after eth+vlan (18B) on the other.
        v4_i.apply(p, im, nh);
      }
      forward_tbl.apply();
    }
  }
  control D(emitter em, pkt p, in hdr_t h) {
    apply { em.emit(p, h.eth); em.emit(p, h.vlan); }
  }
}
VlanRouter(P, C, D) main;
`

func buildVlan(t *testing.T) (*sim.Exec, *sim.Interp, *midend.Result) {
	t.Helper()
	main, err := frontend.CompileModule("vlanmain.up4", vlanMainSrc)
	if err != nil {
		t.Fatal(err)
	}
	callee, err := frontend.CompileModule("v4.up4", vlanCalleeSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := midend.Build(main, callee)
	if err != nil {
		t.Fatal(err)
	}
	tables := sim.NewTables()
	tables.AddEntry("v4_i.rt", []sim.RuntimeKey{sim.LPM(0x0A000000, 8)}, "v4_i.route", 100)
	tables.AddEntry("forward_tbl", []sim.RuntimeKey{sim.Exact(100)}, "fwd", 5)
	return sim.NewExec(res.Pipeline, tables), sim.NewInterp(res.Linked, tables), res
}

// TestPathProductEntries pins the structure: the callee's parser MAT has
// one (match + truncation) entry pair per caller context.
func TestPathProductEntries(t *testing.T) {
	_, _, res := buildVlan(t)
	tbl := res.Pipeline.Tables["v4_i.$parser_tbl"]
	if tbl == nil {
		t.Fatal("callee parser MAT missing")
	}
	// Caller has 3 accepting paths (vlan, 0x0800, default) → 3 contexts;
	// callee has 1 path each → 3 match + 3 truncation entries.
	if len(tbl.Entries) != 6 {
		t.Fatalf("callee parser MAT has %d entries, want 6", len(tbl.Entries))
	}
	// The key includes the caller's path-id, matched exactly.
	hasParentKey := false
	for _, k := range tbl.Keys {
		if k.Expr.Kind == ir.ERef && k.Expr.Ref == "$pp" && k.MatchKind == "exact" {
			hasParentKey = true
		}
	}
	if !hasParentKey {
		t.Errorf("callee parser MAT does not key on the caller's path-id: %+v", tbl.Keys)
	}
	// Entries carry different byte-stack validity offsets: base 14 (no
	// vlan: byte 33) and base 18 (vlan: byte 37).
	offs := map[int]bool{}
	for _, k := range tbl.Keys {
		if k.Expr.Kind == ir.EBValid {
			offs[k.Expr.Off] = true
		}
	}
	if !offs[33] || !offs[37] {
		t.Errorf("validity offsets = %v, want 33 and 37 (per-caller-path bases)", offs)
	}
}

// TestPathProductDifferential runs vlan and non-vlan traffic through
// both engines.
func TestPathProductDifferential(t *testing.T) {
	exec, interp, _ := buildVlan(t)
	mk := func(vlan bool, dst uint32, ttl uint8) []byte {
		b := pkt.NewBuilder()
		if vlan {
			b.Ethernet(1, 2, 0x8100)
			// vlan tag: pcp/dei/vid + inner type 0x0800
			b.Payload([]byte{0x20, 0x05, 0x08, 0x00})
		} else {
			b.Ethernet(1, 2, pkt.EtherTypeIPv4)
		}
		return b.IPv4(pkt.IPv4Opts{TTL: ttl, Protocol: 6, Src: 9, Dst: dst}).
			TCP(1, 2).Payload([]byte("pp")).Bytes()
	}
	r := rand.New(rand.NewSource(11))
	cases := [][]byte{
		mk(false, 0x0A000001, 64),
		mk(true, 0x0A000001, 64),
		mk(false, 0x20000001, 64), // no route -> drop
		mk(true, 0x20000001, 64),
		mk(true, 0x0A000001, 64)[:20], // truncated vlan+ipv4
	}
	for i := 0; i < 100; i++ {
		cases = append(cases, mk(r.Intn(2) == 0, r.Uint32(), uint8(r.Intn(255)+1)))
	}
	for i, in := range cases {
		ri, err := interp.Process(in, sim.Metadata{})
		if err != nil {
			t.Fatalf("case %d interp: %v", i, err)
		}
		rx, err := exec.Process(in, sim.Metadata{})
		if err != nil {
			t.Fatalf("case %d exec: %v", i, err)
		}
		if summarize(ri) != summarize(rx) {
			t.Fatalf("case %d diverges:\n  interp: %s\n  exec:   %s\n  in: %s",
				i, summarize(ri), summarize(rx), pkt.Dump(in))
		}
	}
	// Sanity: the vlan and non-vlan routed packets both reach port 5
	// with TTL decremented at their different offsets.
	for _, vlan := range []bool{false, true} {
		in := mk(vlan, 0x0A000001, 64)
		rx, err := exec.Process(in, sim.Metadata{})
		if err != nil {
			t.Fatal(err)
		}
		if rx.Dropped || rx.Out[0].Port != 5 {
			t.Fatalf("vlan=%v: %+v", vlan, rx)
		}
		off := 14
		if vlan {
			off = 18
		}
		if pkt.IPv4TTL(rx.Out[0].Data, off) != 63 {
			t.Errorf("vlan=%v: ttl = %d, want 63", vlan, pkt.IPv4TTL(rx.Out[0].Data, off))
		}
	}
}

// Three-level nesting where BOTH the main and the middle module have
// multi-path parsers: the leaf's contexts are the full product.
const midSrc = `
struct empty_t { }
header outer_h { bit<8> kind; bit<8> pad; }
header ext_h { bit<16> extra; }
struct mhdr_t { outer_h outer; ext_h ext; }
Leaf(pkt p, im_t im, out bit<16> tag);
program Mid : implements Unicast {
  parser P(extractor ex, pkt p, out mhdr_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.outer);
      transition select(h.outer.kind) { 1: parse_ext; default: accept; };
    }
    state parse_ext { ex.extract(p, h.ext); transition accept; }
  }
  control C(pkt p, inout mhdr_t h, inout empty_t m, im_t im, out bit<16> tag) {
    Leaf() leaf_i;
    apply {
      tag = 0;
      leaf_i.apply(p, im, tag);
    }
  }
  control D(emitter em, pkt p, in mhdr_t h) {
    apply { em.emit(p, h.outer); em.emit(p, h.ext); }
  }
}
`

const leafSrc = `
struct empty_t { }
header tag_h { bit<16> t; }
struct lhdr_t { tag_h tag; }
program Leaf : implements Unicast {
  parser P(extractor ex, pkt p, out lhdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.tag); transition accept; }
  }
  control C(pkt p, inout lhdr_t h, inout empty_t m, im_t im, out bit<16> tag) {
    apply {
      tag = h.tag.t;
      h.tag.t = h.tag.t + 1;
    }
  }
  control D(emitter em, pkt p, in lhdr_t h) { apply { em.emit(p, h.tag); } }
}
`

const nestedMainSrc = `
struct empty_t { }
header pre_h { bit<8> sel; }
header opt_h { bit<24> opt; }
struct nhdr_t { pre_h pre; opt_h opt; }
Mid(pkt p, im_t im, out bit<16> tag);
program Nested : implements Unicast {
  parser P(extractor ex, pkt p, out nhdr_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.pre);
      transition select(h.pre.sel) { 7: parse_opt; default: accept; };
    }
    state parse_opt { ex.extract(p, h.opt); transition accept; }
  }
  control C(pkt p, inout nhdr_t h, inout empty_t m, im_t im) {
    bit<16> tag;
    Mid() mid_i;
    apply {
      tag = 0;
      mid_i.apply(p, im, tag);
      im.set_out_port((bit<9>) tag);
    }
  }
  control D(emitter em, pkt p, in nhdr_t h) { apply { em.emit(p, h.pre); em.emit(p, h.opt); } }
}
Nested(P, C, D) main;
`

func TestNestedPathProduct(t *testing.T) {
	compile := func(name, src string) *ir.Program {
		p, err := frontend.CompileModule(name, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return p
	}
	res, err := midend.Build(compile("nested.up4", nestedMainSrc),
		compile("mid.up4", midSrc), compile("leaf.up4", leafSrc))
	if err != nil {
		t.Fatal(err)
	}
	// Main: 2 paths; Mid under each: 2 paths → Leaf sees 4 contexts,
	// 1 path each → 4 match + 4 truncation entries.
	leaf := res.Pipeline.Tables["mid_i.leaf_i.$parser_tbl"]
	if leaf == nil {
		t.Fatal("leaf parser MAT missing")
	}
	if len(leaf.Entries) != 8 {
		t.Fatalf("leaf parser MAT has %d entries, want 8 (4 contexts × match+trunc)", len(leaf.Entries))
	}
	// All four distinct bases appear: 1+2, 1+4, 4+2, 4+4 → tag bytes at
	// offsets 3, 5, 6, 8 → validity bytes 4, 6, 7, 9.
	offs := map[int]bool{}
	for _, k := range leaf.Keys {
		if k.Expr.Kind == ir.EBValid {
			offs[k.Expr.Off] = true
		}
	}
	for _, want := range []int{4, 6, 7, 9} {
		if !offs[want] {
			t.Errorf("missing validity offset %d; have %v", want, offs)
		}
	}

	// Differential across all four shapes.
	tables := sim.NewTables()
	exec := sim.NewExec(res.Pipeline, tables)
	interp := sim.NewInterp(res.Linked, tables)
	mk := func(sel, kind uint8, tag uint16) []byte {
		b := []byte{sel}
		if sel == 7 {
			b = append(b, 0xAA, 0xBB, 0xCC) // opt_h
		}
		b = append(b, kind, 0x00) // outer_h
		if kind == 1 {
			b = append(b, 0x11, 0x22) // ext_h
		}
		return append(b, byte(tag>>8), byte(tag)) // tag_h
	}
	for _, sel := range []uint8{7, 3} {
		for _, kind := range []uint8{1, 0} {
			in := mk(sel, kind, 0x0042)
			ri, err := interp.Process(in, sim.Metadata{})
			if err != nil {
				t.Fatal(err)
			}
			rx, err := exec.Process(in, sim.Metadata{})
			if err != nil {
				t.Fatal(err)
			}
			if summarize(ri) != summarize(rx) {
				t.Fatalf("sel=%d kind=%d diverge:\n  %s\n  %s", sel, kind, summarize(ri), summarize(rx))
			}
			// The leaf read tag 0x42 (port) and incremented it in place.
			if ri.Dropped || ri.Out[0].Port != 0x42 {
				t.Fatalf("sel=%d kind=%d: %+v", sel, kind, ri)
			}
			data := ri.Out[0].Data
			if data[len(data)-1] != 0x43 {
				t.Errorf("sel=%d kind=%d: leaf did not increment the tag: % x", sel, kind, data)
			}
		}
	}
}
