package sim

import (
	"fmt"
	"sync/atomic"

	"microp4/internal/flow"
	"microp4/internal/ir"
	"microp4/internal/mat"
)

// This file is the slot compiler: at NewExec time the pipeline's IR is
// walked once and lowered into trees of closures over *execState, with
// every string-keyed reference (scalar paths, validity bits, registers,
// tables, action parameters) resolved through the pipeline's SlotMap
// into dense slice indexes. The per-packet hot path then runs compiled
// code over flat state — no maps, no IR dispatch, no allocation.
//
// Compilation is total: IR the executor cannot run (unknown statement
// kinds, unmapped references, malformed method calls) compiles into an
// operation that returns the same typed error the interpretive engine
// produced at runtime, so dead unsupported branches cost nothing and
// live ones fail identically.

type evalFn func(st *execState) (uint64, error)
type stmtFn func(st *execState) error
type assignFn func(st *execState, v uint64) error

// cParam is a compiled action parameter: the scalar slot the control
// plane's argument lands in, pre-truncated to the declared width.
type cParam struct {
	slot  int
	width int
}

// cAction is a compiled table action.
type cAction struct {
	name   string
	params []cParam
	body   []stmtFn
}

// tableMetricsCache memoizes the per-table counter series for one
// attached Metrics, so the hot path skips the name→series map lookup.
type tableMetricsCache struct {
	m  *Metrics
	tm *TableMetrics
}

type compiler struct {
	e  *Exec
	sm *mat.SlotMap
}

// runList executes a compiled statement list.
func runList(fns []stmtFn, st *execState) error {
	for _, f := range fns {
		if err := f(st); err != nil {
			return err
		}
	}
	return nil
}

// compile lowers the pipeline into e.prog/e.actions. It never panics:
// a compiler panic (malformed IR) degrades to a program that returns a
// typed EngineFault for every packet, mirroring how the interpretive
// executor surfaced the same IR at runtime.
func (e *Exec) compile() {
	defer func() {
		if r := recover(); r != nil {
			fault := &EngineFault{Engine: "compiled",
				Reason: fmt.Sprintf("pipeline compilation failed: %v", r), PanicValue: r}
			e.prog = []stmtFn{func(*execState) error { return fault }}
		}
	}()
	sm := e.pl.Slots()
	e.nScalars = sm.NumScalars()
	e.nValids = sm.NumValids()
	for _, t := range e.pl.Tables {
		if len(t.Keys) > e.maxKeys {
			e.maxKeys = len(t.Keys)
		}
	}
	e.imInPort = mustScalar(sm, "$im.meta.IN_PORT")
	e.imInTS = mustScalar(sm, "$im.meta.IN_TIMESTAMP")
	e.imPktLen = mustScalar(sm, "$im.meta.PKT_LEN")
	e.imQdepth = mustScalar(sm, "$im.meta.QUEUE_DEPTH")
	e.imOutPort = mustScalar(sm, "$im.out_port")
	e.imPerr = mustScalar(sm, "$im.$perr")

	c := &compiler{e: e, sm: sm}
	e.actions = make(map[string]*cAction, len(e.pl.Actions))
	for name, act := range e.pl.Actions {
		ca := &cAction{name: act.Name}
		for _, p := range act.Params {
			slot, ok := sm.Scalar(act.Name + "#" + p.Name)
			if !ok {
				panic("unmapped action parameter " + act.Name + "#" + p.Name)
			}
			ca.params = append(ca.params, cParam{slot: slot, width: p.Width})
		}
		ca.body = c.stmts(act.Body)
		e.actions[name] = ca
	}
	e.prog = c.stmts(e.pl.Stmts)
}

// mustScalar resolves an intrinsic path; SlotMap interns all of
// IntrinsicScalars, so a miss is a construction bug (caught by the
// compile recover).
func mustScalar(sm *mat.SlotMap, path string) int {
	slot, ok := sm.Scalar(path)
	if !ok {
		panic("intrinsic scalar not interned: " + path)
	}
	return slot
}

func (c *compiler) faultStmt(reason string) stmtFn {
	err := &EngineFault{Engine: "compiled", Reason: reason}
	return func(*execState) error { return err }
}

func (c *compiler) faultEval(reason string) evalFn {
	err := &EngineFault{Engine: "compiled", Reason: reason}
	return func(*execState) (uint64, error) { return 0, err }
}

func (c *compiler) stmts(ss []*ir.Stmt) []stmtFn {
	out := make([]stmtFn, len(ss))
	for i, s := range ss {
		out[i] = c.stmt(s)
	}
	return out
}

func (c *compiler) stmt(s *ir.Stmt) stmtFn {
	switch s.Kind {
	case ir.SAssign:
		rhs := c.expr(s.RHS)
		lhs := c.assign(s.LHS)
		return func(st *execState) error {
			v, err := rhs(st)
			if err != nil {
				return err
			}
			return lhs(st, v)
		}
	case ir.SIf:
		cond := c.expr(s.Cond)
		then := c.stmts(s.Then)
		els := c.stmts(s.Else)
		return func(st *execState) error {
			v, err := cond(st)
			if err != nil {
				return err
			}
			if v != 0 {
				return runList(then, st)
			}
			return runList(els, st)
		}
	case ir.SSwitch:
		return c.switchStmt(s)
	case ir.SSetValid, ir.SSetInvalid:
		slot, ok := c.sm.Valid(s.Hdr)
		if !ok {
			return c.faultStmt("unmapped header " + s.Hdr)
		}
		v := s.Kind == ir.SSetValid
		return func(st *execState) error {
			st.valid[slot] = v
			return nil
		}
	case ir.SExit:
		return func(*execState) error { return errExit }
	case ir.SApplyTable:
		return c.applyTable(s.Table)
	case ir.SShift:
		off, amt := s.Off, s.Amt
		return func(st *execState) error {
			st.shift(off, amt)
			return nil
		}
	case ir.SMethod:
		return c.method(s)
	}
	return c.faultStmt("cannot execute " + s.Kind + " statement")
}

func (c *compiler) switchStmt(s *ir.Stmt) stmtFn {
	type cCase struct {
		vals []uint64
		body []stmtFn
	}
	cond := c.expr(s.Cond)
	w := s.Cond.Width
	var cases []cCase
	var deflt []stmtFn
	hasDeflt := false
	for _, cs := range s.Cases {
		if cs.Default {
			deflt = c.stmts(cs.Body)
			hasDeflt = true
			continue
		}
		cases = append(cases, cCase{vals: cs.Values, body: c.stmts(cs.Body)})
	}
	return func(st *execState) error {
		v, err := cond(st)
		if err != nil {
			return err
		}
		v = truncate(v, w)
		for i := range cases {
			for _, cv := range cases[i].vals {
				if cv == v {
					return runList(cases[i].body, st)
				}
			}
		}
		if hasDeflt {
			return runList(deflt, st)
		}
		return nil
	}
}

func (c *compiler) method(s *ir.Stmt) stmtFn {
	switch s.Method {
	case "recirculate":
		return func(st *execState) error {
			st.res.Recirculate = true
			return nil
		}
	case "mc_engine_set_mc_group":
		if len(s.Args) < 1 {
			return c.faultStmt("mc_engine_set_mc_group without group argument")
		}
		group := c.expr(s.Args[0].Expr)
		slot := mustScalar(c.sm, "$mc.group")
		return func(st *execState) error {
			g, err := group(st)
			if err != nil {
				return err
			}
			st.scalars[slot] = g
			return nil
		}
	case "mc_engine_apply":
		slot := mustScalar(c.sm, "$mc.group")
		var out assignFn
		if len(s.Args) == 2 {
			out = c.assign(s.Args[1].Expr)
		}
		return func(st *execState) error {
			st.res.McastGroup = st.scalars[slot]
			if out != nil {
				return out(st, 0)
			}
			return nil
		}
	case "im_digest":
		if len(s.Args) < 1 {
			return c.faultStmt("im_digest without value argument")
		}
		val := c.expr(s.Args[0].Expr)
		return func(st *execState) error {
			v, err := val(st)
			if err != nil {
				return err
			}
			st.res.Digests = append(st.res.Digests, v)
			return nil
		}
	case "register_read", "register_write":
		return c.registerOp(s)
	case "flow_upsert", "flow_stick":
		return c.flowOp(s)
	}
	return c.faultStmt("cannot execute method " + s.Method)
}

func (c *compiler) registerOp(s *ir.Stmt) stmtFn {
	ri, ok := c.sm.Register(s.Target)
	if !ok {
		err := &TableError{Table: s.Target, Reason: "unknown register in pipeline"}
		return func(*execState) error { return err }
	}
	inst := &c.e.pl.Registers[ri]
	cells := c.e.regs[s.Target]
	size := uint64(inst.Size)
	width := inst.Width
	if len(s.Args) < 2 {
		return c.faultStmt("register op " + s.Method + " needs two arguments")
	}
	if s.Method == "register_read" {
		idx := c.expr(s.Args[1].Expr)
		dst := c.assign(s.Args[0].Expr)
		return func(st *execState) error {
			i, err := idx(st)
			if err != nil {
				return err
			}
			if i >= size {
				i %= size // size 0 panics, recovered as an EngineFault
			}
			return dst(st, truncate(cells[i], width))
		}
	}
	idx := c.expr(s.Args[0].Expr)
	val := c.expr(s.Args[1].Expr)
	return func(st *execState) error {
		i, err := idx(st)
		if err != nil {
			return err
		}
		if i >= size {
			i %= size
		}
		v, err := val(st)
		if err != nil {
			return err
		}
		cells[i] = truncate(v, width)
		return nil
	}
}

// flowOp compiles ft.upsert(hit, dir, srcAddr, dstAddr, proto,
// srcPort, dstPort) or ft.stick(hit, val, want, srcAddr, dstAddr,
// proto, srcPort, dstPort) into a closure over the executor's
// flow-table instance. The wheel advances on the IN_TIMESTAMP scalar
// slot, the same virtual clock the interpretive engine uses.
func (c *compiler) flowOp(s *ir.Stmt) stmtFn {
	op := "upsert"
	if s.Method == "flow_stick" {
		op = "stick"
	}
	fi, ok := c.sm.FlowTable(s.Target)
	if !ok {
		err := &FlowError{Table: s.Target, Op: op, Reason: "unknown flowtable in pipeline"}
		return func(*execState) error { return err }
	}
	name := c.e.pl.FlowTables[fi].Name
	tbl := c.e.flows[name]
	tsSlot := c.e.imInTS
	if op == "stick" {
		if len(s.Args) != 8 {
			return c.faultStmt("flow stick needs eight arguments")
		}
		hitDst := c.assign(s.Args[0].Expr)
		valDst := c.assign(s.Args[1].Expr)
		var args [6]evalFn // want, srcAddr, dstAddr, proto, srcPort, dstPort
		for i := range args {
			args[i] = c.expr(s.Args[i+2].Expr)
		}
		return func(st *execState) error {
			var vals [6]uint64
			for i, fn := range args {
				v, err := fn(st)
				if err != nil {
					return err
				}
				vals[i] = v
			}
			hit, val := tbl.Stick(flow.Key{
				SrcAddr: vals[1], DstAddr: vals[2], Proto: vals[3],
				SrcPort: vals[4], DstPort: vals[5],
			}, vals[0], st.scalars[tsSlot])
			st.m.countFlow(name, tbl)
			if err := hitDst(st, hit); err != nil {
				return err
			}
			return valDst(st, val)
		}
	}
	if len(s.Args) != 7 {
		return c.faultStmt("flow upsert needs seven arguments")
	}
	dst := c.assign(s.Args[0].Expr)
	var args [6]evalFn // dir, srcAddr, dstAddr, proto, srcPort, dstPort
	for i := range args {
		args[i] = c.expr(s.Args[i+1].Expr)
	}
	return func(st *execState) error {
		var vals [6]uint64
		for i, fn := range args {
			v, err := fn(st)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		hit := tbl.Upsert(flow.Key{
			SrcAddr: vals[1], DstAddr: vals[2], Proto: vals[3],
			SrcPort: vals[4], DstPort: vals[5],
		}, vals[0], st.scalars[tsSlot])
		st.m.countFlow(name, tbl)
		return dst(st, hit)
	}
}

func (c *compiler) applyTable(name string) stmtFn {
	def := c.e.pl.Tables[name]
	if def == nil {
		err := &TableError{Table: name, Reason: "unknown table in pipeline"}
		return func(*execState) error { return err }
	}
	nKeys := len(def.Keys)
	keyFns := make([]evalFn, nKeys)
	keyWs := make([]int, nKeys)
	for i, k := range def.Keys {
		keyFns[i] = c.expr(k.Expr)
		keyWs[i] = orW(k.Expr.Width, 64)
	}
	module := moduleOf(name)
	var tmc atomic.Pointer[tableMetricsCache]
	return func(st *execState) error {
		e := st.e
		kv := st.keys[:nKeys]
		for i, kf := range keyFns {
			v, err := kf(st)
			if err != nil {
				return err
			}
			kv[i] = truncate(v, keyWs[i])
		}
		call, outcome := e.tables.LookupWithOutcome(name, def, kv)
		if m := st.m; m != nil {
			// The cache tracks the engine's default metrics identity;
			// per-worker shards (Metadata.M) bypass it with a direct
			// lookup so concurrent workers don't thrash the pointer.
			var tm *TableMetrics
			if cache := tmc.Load(); cache != nil && cache.m == m {
				tm = cache.tm
			} else if m == e.metrics {
				tm = m.Table(name)
				tmc.Store(&tableMetricsCache{m: m, tm: tm})
			} else {
				tm = m.Table(name)
			}
			switch outcome {
			case LookupHit:
				tm.Hits.Inc()
			case LookupDefault:
				tm.Defaults.Inc()
			case LookupMiss:
				tm.Misses.Inc()
			}
		}
		if st.span != nil {
			act := ""
			if call != nil {
				act = call.Name
			}
			st.span.step(name, outcome, act)
		}
		if e.bus.Active() {
			detail := "miss (no default)"
			if call != nil {
				detail = "-> " + call.Name + " " + keyString(kv)
			}
			e.bus.Publish(TraceEvent{Kind: "table", Module: module, Name: name, Detail: detail})
		}
		if call == nil {
			return nil
		}
		act := e.actions[call.Name]
		if act == nil {
			return &TableError{Table: name, Action: call.Name, Reason: "selected unknown action"}
		}
		if len(call.Args) != len(act.params) {
			return &TableError{Table: name, Action: act.name,
				Reason: fmt.Sprintf("takes %d args, got %d", len(act.params), len(call.Args))}
		}
		for i := range act.params {
			p := &act.params[i]
			st.scalars[p.slot] = truncate(call.Args[i], p.width)
		}
		return runList(act.body, st)
	}
}

func (c *compiler) expr(e *ir.Expr) evalFn {
	if e == nil {
		return c.faultEval("cannot evaluate <nil> expression")
	}
	switch e.Kind {
	case ir.EConst:
		v := e.Value
		return func(*execState) (uint64, error) { return v, nil }
	case ir.ERef:
		slot, ok := c.sm.Scalar(e.Ref)
		if !ok {
			return c.faultEval("unmapped reference " + e.Ref)
		}
		return func(st *execState) (uint64, error) { return st.scalars[slot], nil }
	case ir.EIsValid:
		slot, ok := c.sm.Valid(e.Ref)
		if !ok {
			return c.faultEval("unmapped header " + e.Ref)
		}
		return func(st *execState) (uint64, error) {
			if st.valid[slot] {
				return 1, nil
			}
			return 0, nil
		}
	case ir.EBSlice:
		off, w := e.Off, e.Width
		return func(st *execState) (uint64, error) { return readBits(st.buf, off, w), nil }
	case ir.EBValid:
		off := e.Off
		return func(st *execState) (uint64, error) {
			if off < len(st.buf) {
				return 1, nil
			}
			return 0, nil
		}
	case ir.EUn:
		return c.unary(e)
	case ir.EBin:
		return c.binary(e)
	case ir.ESlice:
		x := c.expr(e.X)
		lo := uint(e.Lo)
		m := maskW(e.Hi - e.Lo + 1)
		return func(st *execState) (uint64, error) {
			v, err := x(st)
			if err != nil {
				return 0, err
			}
			return v >> lo & m, nil
		}
	}
	return c.faultEval("cannot evaluate " + e.Kind + " expression")
}

func (c *compiler) unary(e *ir.Expr) evalFn {
	x := c.expr(e.X)
	w := e.Width
	switch e.Op {
	case "!":
		return func(st *execState) (uint64, error) {
			v, err := x(st)
			if err != nil {
				return 0, err
			}
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case "~":
		return func(st *execState) (uint64, error) {
			v, err := x(st)
			if err != nil {
				return 0, err
			}
			return truncate(^v, w), nil
		}
	case "-":
		return func(st *execState) (uint64, error) {
			v, err := x(st)
			if err != nil {
				return 0, err
			}
			return truncate(-v, w), nil
		}
	case "cast":
		return func(st *execState) (uint64, error) {
			v, err := x(st)
			if err != nil {
				return 0, err
			}
			return truncate(v, w), nil
		}
	}
	return c.faultEval(fmt.Sprintf("unknown unary %q", e.Op))
}

func (c *compiler) binary(e *ir.Expr) evalFn {
	x := c.expr(e.X)
	y := c.expr(e.Y)
	if e.Op == "++" {
		xw, yw, w := e.X.Width, e.Y.Width, e.Width
		return func(st *execState) (uint64, error) {
			xv, err := x(st)
			if err != nil {
				return 0, err
			}
			yv, err := y(st)
			if err != nil {
				return 0, err
			}
			return truncate(truncate(xv, xw)<<uint(yw)|truncate(yv, yw), w), nil
		}
	}
	w := e.Width
	if e.Bool {
		w = e.X.Width
	}
	xw := orW(e.X.Width, w)
	yw := orW(e.Y.Width, w)
	op := binOpFn(e.Op, w)
	return func(st *execState) (uint64, error) {
		xv, err := x(st)
		if err != nil {
			return 0, err
		}
		yv, err := y(st)
		if err != nil {
			return 0, err
		}
		return op(truncate(xv, xw), truncate(yv, yw))
	}
}

// Shared error values for the arithmetic guards, matching evalBinary's
// messages (these are the taxonomy's only untyped errors; real midend
// output never divides by a runtime value).
var (
	errDivZero = fmt.Errorf("division by zero")
	errModZero = fmt.Errorf("modulo by zero")
)

// binOpFn pre-dispatches a binary operator to a width-closed function,
// mirroring evalBinary (bitops.go) case for case.
func binOpFn(op string, w int) func(x, y uint64) (uint64, error) {
	b := func(cond bool) uint64 {
		if cond {
			return 1
		}
		return 0
	}
	switch op {
	case "+":
		return func(x, y uint64) (uint64, error) { return truncate(x+y, w), nil }
	case "-":
		return func(x, y uint64) (uint64, error) { return truncate(x-y, w), nil }
	case "*":
		return func(x, y uint64) (uint64, error) { return truncate(x*y, w), nil }
	case "/":
		return func(x, y uint64) (uint64, error) {
			if y == 0 {
				return 0, errDivZero
			}
			return x / y, nil
		}
	case "%":
		return func(x, y uint64) (uint64, error) {
			if y == 0 {
				return 0, errModZero
			}
			return x % y, nil
		}
	case "&":
		return func(x, y uint64) (uint64, error) { return x & y, nil }
	case "|":
		return func(x, y uint64) (uint64, error) { return x | y, nil }
	case "^":
		return func(x, y uint64) (uint64, error) { return x ^ y, nil }
	case "<<":
		return func(x, y uint64) (uint64, error) {
			if y >= 64 {
				return 0, nil
			}
			return truncate(x<<y, w), nil
		}
	case ">>":
		return func(x, y uint64) (uint64, error) {
			if y >= 64 {
				return 0, nil
			}
			return x >> y, nil
		}
	case "==":
		return func(x, y uint64) (uint64, error) { return b(x == y), nil }
	case "!=":
		return func(x, y uint64) (uint64, error) { return b(x != y), nil }
	case "<":
		return func(x, y uint64) (uint64, error) { return b(x < y), nil }
	case ">":
		return func(x, y uint64) (uint64, error) { return b(x > y), nil }
	case "<=":
		return func(x, y uint64) (uint64, error) { return b(x <= y), nil }
	case ">=":
		return func(x, y uint64) (uint64, error) { return b(x >= y), nil }
	case "&&":
		return func(x, y uint64) (uint64, error) { return b(x != 0 && y != 0), nil }
	case "||":
		return func(x, y uint64) (uint64, error) { return b(x != 0 || y != 0), nil }
	}
	err := fmt.Errorf("unknown binary operator %q", op)
	return func(uint64, uint64) (uint64, error) { return 0, err }
}

func (c *compiler) assign(lhs *ir.Expr) assignFn {
	if lhs != nil {
		switch lhs.Kind {
		case ir.ERef:
			slot, ok := c.sm.Scalar(lhs.Ref)
			if !ok {
				break
			}
			w := orW(lhs.Width, 64)
			return func(st *execState, v uint64) error {
				st.scalars[slot] = truncate(v, w)
				return nil
			}
		case ir.ESlice:
			if lhs.X == nil || lhs.X.Kind != ir.ERef {
				err := &EngineFault{Engine: "compiled", Reason: "assignment to slice of non-reference"}
				return func(*execState, uint64) error { return err }
			}
			slot, ok := c.sm.Scalar(lhs.X.Ref)
			if !ok {
				break
			}
			lo := uint(lhs.Lo)
			m := maskW(lhs.Hi-lhs.Lo+1) << lo
			return func(st *execState, v uint64) error {
				cur := st.scalars[slot]
				st.scalars[slot] = cur&^m | (v<<lo)&m
				return nil
			}
		case ir.EBSlice:
			off, w := lhs.Off, lhs.Width
			// Writes past the current end of the packet extend it (growth
			// regions are placed by a preceding shift, but a grown packet's
			// final header write may still land at the very end).
			endByte := (off + w + 7) / 8
			return func(st *execState, v uint64) error {
				for len(st.buf) < endByte {
					st.buf = append(st.buf, 0)
				}
				writeBits(st.buf, off, w, v)
				return nil
			}
		}
	}
	err := &EngineFault{Engine: "compiled", Reason: fmt.Sprintf("assignment to unsupported lvalue %s", lhs)}
	return func(*execState, uint64) error { return err }
}
