package sim

import (
	"fmt"
	"strings"
	"time"

	"microp4/internal/flow"
	"microp4/internal/ir"
	"microp4/internal/types"
)

// execStmts runs a control statement list in the frame.
func (f *frame) execStmts(ss []*ir.Stmt) error {
	for _, s := range ss {
		if err := f.execStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (f *frame) execStmt(s *ir.Stmt) error {
	switch s.Kind {
	case ir.SAssign:
		v, err := f.eval(s.RHS)
		if err != nil {
			return err
		}
		// Resolve the RHS provenance before the assign kills the target's:
		// self-referencing updates like x = x - 1 need x's old location.
		var rl BitLoc
		if f.obs != nil && s.LHS.Kind == ir.ERef {
			rl = f.resolveLoc(s.RHS)
		}
		if err := f.assign(s.LHS, v); err != nil {
			return err
		}
		if rl.OK {
			// assign killed the target's provenance; a traceable RHS
			// (copy, cast, slice, or affine step of a located value)
			// restores it.
			f.obs.locs[s.LHS.Ref] = rl
		}
		return nil
	case ir.SIf:
		cond, err := f.eval(s.Cond)
		if err != nil {
			return err
		}
		if f.obs != nil {
			branch := 0
			if cond != 0 {
				branch = 1
			}
			f.emitObs(ObsEvent{Kind: "if", Stmt: s, CondVal: cond, Branch: branch,
				CondParts: f.condParts(s.Cond)})
		}
		if cond != 0 {
			return f.execStmts(s.Then)
		}
		return f.execStmts(s.Else)
	case ir.SSwitch:
		v, err := f.eval(s.Cond)
		if err != nil {
			return err
		}
		v = truncate(v, s.Cond.Width)
		matched, deflt := -1, -1
		for i, c := range s.Cases {
			if c.Default {
				if deflt < 0 {
					deflt = i
				}
				continue
			}
			for _, cv := range c.Values {
				if cv == v {
					matched = i
					break
				}
			}
			if matched >= 0 {
				break
			}
		}
		if f.obs != nil {
			f.emitObs(ObsEvent{Kind: "switch", Stmt: s, CondVal: v,
				Loc: f.resolveLoc(s.Cond), Branch: matched})
		}
		if matched >= 0 {
			return f.execStmts(s.Cases[matched].Body)
		}
		if deflt >= 0 {
			return f.execStmts(s.Cases[deflt].Body)
		}
		return nil
	case ir.SSetValid:
		f.valid[s.Hdr] = true
		return nil
	case ir.SSetInvalid:
		f.valid[s.Hdr] = false
		return nil
	case ir.SExit:
		return errExit
	case ir.SApplyTable:
		return f.applyTable(s.Table)
	case ir.SCallModule:
		return f.callModule(s)
	case ir.SMethod:
		return f.method(s)
	case ir.SEmit, ir.SExtract:
		return &EngineFault{Engine: "reference",
			Reason: fmt.Sprintf("%s: %s statement outside its block", f.prog.Name, s.Kind)}
	}
	return &EngineFault{Engine: "reference",
		Reason: fmt.Sprintf("%s: unsupported statement %s", f.prog.Name, s.Kind)}
}

// applyTable looks up and runs a table.
func (f *frame) applyTable(name string) error {
	def := f.prog.Tables[name]
	if def == nil {
		return &TableError{Table: name, Reason: "unknown table in " + f.prog.Name}
	}
	keyVals := make([]uint64, len(def.Keys))
	for i, k := range def.Keys {
		v, err := f.eval(k.Expr)
		if err != nil {
			return err
		}
		keyVals[i] = truncate(v, k.Expr.Width)
	}
	fq := name
	if f.inst != "" {
		fq = f.inst + "." + name
	}
	call, outcome := f.r.ip.tables.LookupWithOutcome(fq, def, keyVals)
	if f.r.m != nil {
		f.r.m.countTable(fq, outcome)
	}
	if f.r.span != nil {
		act := ""
		if call != nil {
			act = call.Name
		}
		f.r.span.step(fq, outcome, act)
	}
	if f.r.ip.bus.Active() {
		detail := "miss (no default)"
		if call != nil {
			detail = "-> " + call.Name + " " + keyString(keyVals)
		}
		f.r.ip.bus.Publish(TraceEvent{Kind: "table", Module: f.inst, Name: fq, Detail: detail})
	}
	// Control-plane entries use fully-qualified action names; the
	// module's own action map is unprefixed.
	actName := ""
	if call != nil {
		actName = call.Name
		if f.inst != "" {
			actName = strings.TrimPrefix(actName, f.inst+".")
		}
	}
	if f.obs != nil {
		locs := make([]BitLoc, len(def.Keys))
		for i, k := range def.Keys {
			locs[i] = f.resolveLoc(k.Expr)
		}
		f.emitObs(ObsEvent{Kind: "table", Table: def, FQ: fq,
			Keys: append([]uint64(nil), keyVals...), KeyLocs: locs,
			Outcome: outcome, Action: actName})
	}
	if call == nil {
		return nil // miss with no default: no-op
	}
	return f.runAction(actName, call.Args)
}

func (f *frame) runAction(name string, args []uint64) error {
	act := f.prog.Actions[name]
	if act == nil {
		return &TableError{Action: name, Reason: "unknown action in " + f.prog.Name}
	}
	if len(args) != len(act.Params) {
		return &TableError{Action: name,
			Reason: fmt.Sprintf("takes %d args, got %d", len(act.Params), len(args))}
	}
	for i, p := range act.Params {
		if f.obs != nil {
			delete(f.obs.locs, name+"#"+p.Name)
		}
		f.store[name+"#"+p.Name] = truncate(args[i], p.Width)
	}
	return f.execStmts(act.Body)
}

// callModule invokes a callee module at its apply() site.
func (f *frame) callModule(s *ir.Stmt) error {
	callee := f.r.ip.linked.Modules[s.Module]
	if callee == nil {
		return &EngineFault{Engine: "reference",
			Reason: fmt.Sprintf("%s: call of unlinked module %s", f.prog.Name, s.Module)}
	}
	// Resolve the packet view the callee receives.
	pktName := s.PktArg
	if pktName == "" {
		pktName = "$pkt"
	}
	pv, ok := f.pkts[pktName]
	if !ok {
		return &EngineFault{Engine: "reference",
			Reason: fmt.Sprintf("%s: call passes unknown pkt %s", f.prog.Name, pktName)}
	}
	base := pv.base
	if pktName == "$pkt" {
		base += f.parsed
	}
	childView := view{buf: pv.buf, base: base}
	var bindings []argBinding
	for i, a := range s.Args {
		if i >= len(callee.Params) {
			return &EngineFault{Engine: "reference",
				Reason: fmt.Sprintf("%s: too many args to %s", f.prog.Name, s.Module)}
		}
		b := argBinding{param: callee.Params[i]}
		if b.param.Dir != "out" {
			v, err := f.eval(a.Expr)
			if err != nil {
				return err
			}
			b.value = truncate(v, b.param.Width)
			if f.obs != nil {
				b.loc = f.resolveLoc(a.Expr)
			}
		}
		bindings = append(bindings, b)
	}
	childInst := s.Instance
	if f.inst != "" {
		childInst = f.inst + "." + s.Instance
	}
	if f.r.ip.bus.Active() {
		f.r.ip.bus.Publish(TraceEvent{Kind: "module", Module: childInst, Name: childInst, Detail: "apply " + s.Module})
	}
	// Bind the callee's $im: inherit ours for "$im", or route to a
	// local im_t copy living in this frame's store.
	imb := imBinding{get: f.imGet, set: f.imSet, isGlobal: f.imIsGlobal}
	if s.ImArg != "" && s.ImArg != "$im" {
		prefix := s.ImArg + "."
		imb = imBinding{
			get: func(field string) uint64 { return f.store[prefix+field] },
			set: func(field string, v uint64) { f.store[prefix+field] = v },
		}
	}
	// Run the callee; out/inout results are read back from its frame.
	cf, err := f.r.runModuleFrame(callee, childInst, childView, bindings, imb)
	if err != nil {
		return err
	}
	for i, a := range s.Args {
		mp := callee.Params[i]
		if mp.Dir == "out" || mp.Dir == "inout" {
			if err := f.assign(a.Expr, cf.store[mp.Name]); err != nil {
				return err
			}
			if f.obs != nil && a.Expr.Kind == ir.ERef {
				if l := cf.obs.locs[mp.Name]; l.OK {
					f.obs.locs[a.Expr.Ref] = l
				}
			}
		}
	}
	return nil
}

// method executes extern method statements.
func (f *frame) method(s *ir.Stmt) error {
	switch s.Method {
	case "pkt_copy_from":
		src, err := f.viewOfArg(s.Args[0].Expr)
		if err != nil {
			return err
		}
		f.pkts[s.Target] = view{buf: &pktBuf{data: append([]byte(nil), src.bytes()...)}}
		return nil
	case "im_copy_from":
		srcPrefix, err := f.imPrefixOfArg(s.Args[0].Expr)
		if err != nil {
			return err
		}
		f.copyIm(s.Target, srcPrefix)
		return nil
	case "mc_engine_set_mc_group":
		g, err := f.eval(s.Args[0].Expr)
		if err != nil {
			return err
		}
		f.mcGroup = g
		return nil
	case "mc_engine_apply":
		// PRE-style replication: record the group; the architecture
		// replicates at end of pipeline. A packet-instance id out-param
		// (2-arg form) is set to zero here.
		f.r.result.McastGroup = f.mcGroup
		if len(s.Args) == 2 {
			return f.assign(s.Args[1].Expr, 0)
		}
		return nil
	case "mc_engine_set_buf", "mc_buf_enqueue", "out_buf_merge", "out_buf_to_in_buf":
		return nil // joins/merges: outputs are already accumulated
	case "out_buf_enqueue":
		pv, err := f.viewOfArg(s.Args[0].Expr)
		if err != nil {
			return err
		}
		port := f.imGet("out_port")
		if prefix, err := f.imPrefixOfArg(s.Args[1].Expr); err == nil && prefix != "$im" {
			port = f.store[prefix+".out_port"]
		}
		f.r.result.Out = append(f.r.result.Out, OutPkt{
			Data: append([]byte(nil), pv.bytes()...),
			Port: port,
		})
		return nil
	case "recirculate":
		f.r.result.Recirculate = true
		return nil
	case "im_digest":
		v, err := f.eval(s.Args[0].Expr)
		if err != nil {
			return err
		}
		f.r.result.Digests = append(f.r.result.Digests, v)
		return nil
	case "register_read", "register_write":
		return f.registerOp(s)
	case "flow_upsert", "flow_stick":
		return f.flowOp(s)
	case "push_front", "pop_front":
		return &EngineFault{Engine: "reference",
			Reason: fmt.Sprintf("%s: header stack op %s reached the interpreter (run midend.Transform first)", f.prog.Name, s.Method)}
	}
	return &EngineFault{Engine: "reference",
		Reason: fmt.Sprintf("%s: unsupported method %s", f.prog.Name, s.Method)}
}

// registerOp executes a register read or write against the persistent
// register state (the §8.2 stateful extension). Register instances are
// keyed by fully qualified path so the interpreter and the compiled
// executor agree on naming.
func (f *frame) registerOp(s *ir.Stmt) error {
	var inst *ir.Instance
	for i := range f.prog.Instances {
		if f.prog.Instances[i].Name == s.Target && f.prog.Instances[i].Extern == "register" {
			inst = &f.prog.Instances[i]
		}
	}
	if inst == nil {
		return &TableError{Table: s.Target, Reason: "unknown register in " + f.prog.Name}
	}
	fq := s.Target
	if f.inst != "" {
		fq = f.inst + "." + s.Target
	}
	cells := f.r.ip.Register(fq, inst.Size)
	idxArg := 1
	if s.Method == "register_write" {
		idxArg = 0
	}
	idx, err := f.eval(s.Args[idxArg].Expr)
	if err != nil {
		return err
	}
	if idx >= uint64(inst.Size) {
		idx %= uint64(inst.Size) // wrap, like hardware index truncation
	}
	if s.Method == "register_read" {
		return f.assign(s.Args[0].Expr, truncate(cells[idx], inst.Width))
	}
	v, err := f.eval(s.Args[1].Expr)
	if err != nil {
		return err
	}
	cells[idx] = truncate(v, inst.Width)
	return nil
}

// flowOp executes ft.upsert(hit, dir, srcAddr, dstAddr, proto,
// srcPort, dstPort) or ft.stick(hit, val, want, srcAddr, dstAddr,
// proto, srcPort, dstPort) against the persistent flow-table state
// (the flow-state extension). Like registers, instances are keyed by
// fully qualified path so the interpreter and the compiled executor
// agree. The wheel advances on the packet's IN_TIMESTAMP intrinsic, so
// aging follows the same virtual clock the netsim drives.
func (f *frame) flowOp(s *ir.Stmt) error {
	op := "upsert"
	if s.Method == "flow_stick" {
		op = "stick"
	}
	var inst *ir.Instance
	for i := range f.prog.Instances {
		if f.prog.Instances[i].Name == s.Target && f.prog.Instances[i].Extern == "flowtable" {
			inst = &f.prog.Instances[i]
		}
	}
	if inst == nil {
		return &FlowError{Table: s.Target, Op: op, Reason: "unknown flowtable in " + f.prog.Name}
	}
	fq := s.Target
	if f.inst != "" {
		fq = f.inst + "." + s.Target
	}
	tbl := f.r.ip.FlowTable(fq, inst.Size, inst.IdleTTL, inst.EstTTL)
	now := f.imGet("meta.IN_TIMESTAMP")
	if op == "stick" {
		var vals [6]uint64 // want, srcAddr, dstAddr, proto, srcPort, dstPort
		for i := range vals {
			v, err := f.eval(s.Args[i+2].Expr)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		hit, val := tbl.Stick(flow.Key{
			SrcAddr: vals[1], DstAddr: vals[2], Proto: vals[3],
			SrcPort: vals[4], DstPort: vals[5],
		}, vals[0], now)
		f.r.m.countFlow(fq, tbl)
		if err := f.assign(s.Args[0].Expr, hit); err != nil {
			return err
		}
		return f.assign(s.Args[1].Expr, val)
	}
	var vals [6]uint64 // dir, srcAddr, dstAddr, proto, srcPort, dstPort
	for i := range vals {
		v, err := f.eval(s.Args[i+1].Expr)
		if err != nil {
			return err
		}
		vals[i] = v
	}
	hit := tbl.Upsert(flow.Key{
		SrcAddr: vals[1], DstAddr: vals[2], Proto: vals[3],
		SrcPort: vals[4], DstPort: vals[5],
	}, vals[0], now)
	f.r.m.countFlow(fq, tbl)
	return f.assign(s.Args[0].Expr, hit)
}

// viewOfArg resolves a pkt-typed argument expression to its view.
func (f *frame) viewOfArg(e *ir.Expr) (view, error) {
	if e.Kind != ir.ERef {
		return view{}, &EngineFault{Engine: "reference", Reason: "pkt argument is not a reference"}
	}
	v, ok := f.pkts[e.Ref]
	if !ok {
		return view{}, &EngineFault{Engine: "reference", Reason: "unknown pkt instance " + e.Ref}
	}
	return v, nil
}

// imPrefixOfArg resolves an im_t-typed argument to its storage prefix.
func (f *frame) imPrefixOfArg(e *ir.Expr) (string, error) {
	if e.Kind != ir.ERef {
		return "", &EngineFault{Engine: "reference", Reason: "im argument is not a reference"}
	}
	if e.Ref == "$im" || strings.HasPrefix(e.Ref, "$im.") {
		return "$im", nil
	}
	return e.Ref, nil
}

// copyIm copies the well-known im fields from one instance to another.
func (f *frame) copyIm(dst, srcPrefix string) {
	fields := []string{"out_port", "meta.IN_PORT", "meta.IN_TIMESTAMP", "meta.PKT_LEN",
		"meta.OUT_TIMESTAMP", "meta.INSTANCE_ID", "meta.QUEUE_DEPTH",
		"meta.DEQ_TIMESTAMP", "meta.ENQ_TIMESTAMP"}
	for _, fl := range fields {
		var v uint64
		if srcPrefix == "$im" {
			v = f.imGet(fl)
		} else {
			v = f.store[srcPrefix+"."+fl]
		}
		if dst == "$im" {
			f.imSet(fl, v)
		} else {
			f.store[dst+"."+fl] = v
		}
	}
}

// imBinding carries a module invocation's intrinsic-metadata view.
type imBinding struct {
	get      func(field string) uint64
	set      func(field string, v uint64)
	isGlobal bool
}

// globalIM binds a frame to the run's shared intrinsic metadata.
func (r *run) globalIM() imBinding {
	return imBinding{
		get:      func(field string) uint64 { return r.im[field] },
		set:      func(field string, v uint64) { r.im[field] = v },
		isGlobal: true,
	}
}

// runModuleFrame is runModule but returns the callee frame so the caller
// can read out-parameters.
func (r *run) runModuleFrame(prog *ir.Program, inst string, v view, args []argBinding, im imBinding) (*frame, error) {
	f := &frame{
		r: r, prog: prog, inst: inst,
		store:      make(map[string]uint64),
		valid:      make(map[string]bool),
		varbits:    make(map[string][]byte),
		pkts:       map[string]view{"$pkt": v},
		ims:        make(map[string]bool),
		imGet:      im.get,
		imSet:      im.set,
		imIsGlobal: im.isGlobal,
	}
	if r.obs != nil {
		f.obs = &frameObs{
			locs:    make(map[string]BitLoc),
			extLoc:  make(map[string]BitLoc),
			extProv: make(map[string][]int),
		}
		f.emitObs(ObsEvent{Kind: "enter"})
	}
	for _, in := range prog.Instances {
		switch in.Extern {
		case "pkt":
			f.pkts[in.Name] = view{buf: &pktBuf{}}
		case "im_t":
			f.ims[in.Name] = true
		}
	}
	for _, a := range args {
		if a.param.Dir != "out" {
			f.store[a.param.Name] = a.value
			if f.obs != nil && a.loc.OK {
				f.obs.locs[a.param.Name] = a.loc
			}
		}
	}
	if prog.Parser != nil {
		var pstart time.Time
		if r.span != nil {
			pstart = time.Now()
		}
		ok, err := f.runParser()
		if r.span != nil {
			r.span.ParseNs += time.Since(pstart).Nanoseconds()
		}
		if err != nil {
			return nil, err
		}
		if !ok {
			// Parser reject: drop via this invocation's im; when that is
			// the shared intrinsic metadata, the error is sticky so a
			// later module in the composition cannot overwrite the drop
			// decision — matching the monolithic program, whose single
			// parser rejects outright. A reject inside a module running
			// on a private copy (orchestration) drops only that copy.
			f.imSet("out_port", types.DropPort)
			if f.imIsGlobal {
				r.im["$perr"] = 1
				r.result.ParserReject = true
			}
			return f, nil
		}
	}
	if err := f.execStmts(prog.Apply); err != nil && err != errExit {
		return nil, err
	}
	if prog.Parser != nil || len(prog.Deparser) > 0 {
		// Deparse failures surface as *DeparseError and are counted
		// centrally at the Process boundary (Metrics.countError).
		var dstart time.Time
		if r.span != nil {
			dstart = time.Now()
		}
		emitted, err := f.runDeparser()
		if r.span != nil {
			r.span.DeparseNs += time.Since(dstart).Nanoseconds()
		}
		if err != nil {
			return nil, err
		}
		if r.obs != nil && v.buf == r.obs.buf {
			r.obs.splice(v.base, f.parsed, f.obs.emitProv)
		}
		v.splice(0, f.parsed, emitted)
	}
	return f, nil
}
