package sim_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"microp4/internal/frontend"
	"microp4/internal/midend"
	"microp4/internal/pkt"
	"microp4/internal/sim"
)

// passThroughSrc parses eth(+ipv4(+tcp)) and re-emits everything
// unchanged: deparse∘parse must be the identity on the wire.
const passThroughSrc = `
struct empty_t { }
header ethernet_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
header ipv4_h {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> totalLen;
  bit<16> identification; bit<3> flags; bit<13> fragOffset;
  bit<8> ttl; bit<8> protocol; bit<16> hdrChecksum;
  bit<32> srcAddr; bit<32> dstAddr;
}
header tcp_h {
  bit<16> srcPort; bit<16> dstPort; bit<32> seqNo; bit<32> ackNo;
  bit<4> dataOffset; bit<4> res; bit<8> tcpFlags; bit<16> window;
  bit<16> checksum; bit<16> urgentPtr;
}
struct hdr_t { ethernet_h eth; ipv4_h ipv4; tcp_h tcp; }
program Pass : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) { 0x0800: parse_ipv4; default: accept; };
    }
    state parse_ipv4 {
      ex.extract(p, h.ipv4);
      transition select(h.ipv4.protocol) { 6: parse_tcp; default: accept; };
    }
    state parse_tcp { ex.extract(p, h.tcp); transition accept; }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) {
    apply { im.set_out_port(1); }
  }
  control D(emitter em, pkt p, in hdr_t h) {
    apply { em.emit(p, h.eth); em.emit(p, h.ipv4); em.emit(p, h.tcp); }
  }
}
Pass(P, C, D) main;
`

// TestQuickDeparseParseIdentity: for any packet long enough to parse,
// both engines forward byte-identical data.
func TestQuickDeparseParseIdentity(t *testing.T) {
	main, err := frontend.CompileModule("pass.up4", passThroughSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := midend.Build(main)
	if err != nil {
		t.Fatal(err)
	}
	tables := sim.NewTables()
	exec := sim.NewExec(res.Pipeline, tables)
	interp := sim.NewInterp(res.Linked, tables)

	r := rand.New(rand.NewSource(7))
	f := func(seed int64, v4 bool, tcp bool, extra uint8) bool {
		r.Seed(seed)
		b := pkt.NewBuilder()
		et := uint16(r.Intn(1 << 16))
		proto := uint8(r.Intn(256))
		if v4 {
			et = pkt.EtherTypeIPv4
			if tcp {
				proto = 6
			} else if proto == 6 {
				proto = 17 // no TCP header follows, keep the parse shallow
			}
		}
		b.Ethernet(r.Uint64()&0xFFFFFFFFFFFF, r.Uint64()&0xFFFFFFFFFFFF, et)
		if v4 {
			b.IPv4(pkt.IPv4Opts{TTL: uint8(r.Intn(256)), Protocol: proto, Src: r.Uint32(), Dst: r.Uint32()})
			if tcp {
				b.TCP(uint16(r.Intn(1<<16)), uint16(r.Intn(1<<16)))
			}
		}
		payload := make([]byte, extra)
		r.Read(payload)
		in := b.Payload(payload).Bytes()

		ri, err := interp.Process(in, sim.Metadata{})
		if err != nil {
			return false
		}
		rx, err := exec.Process(in, sim.Metadata{})
		if err != nil {
			return false
		}
		if ri.Dropped || rx.Dropped {
			return false // all packets here are parseable
		}
		return bytes.Equal(ri.Out[0].Data, in) && bytes.Equal(rx.Out[0].Data, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPayloadBeyondByteStack: data past the operational region must pass
// through untouched even when the program edits headers.
func TestPayloadBeyondByteStack(t *testing.T) {
	main, err := frontend.CompileModule("pass.up4", passThroughSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := midend.Build(main)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline.BsBytes != 54 {
		t.Fatalf("Bs = %d, want 54 (eth+ipv4+tcp)", res.Pipeline.BsBytes)
	}
	big := make([]byte, 1500)
	for i := range big {
		big[i] = byte(i * 7)
	}
	in := pkt.NewBuilder().
		Ethernet(1, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 10, Protocol: 6, Src: 3, Dst: 4}).
		TCP(5, 6).Payload(big).Bytes()
	exec := sim.NewExec(res.Pipeline, sim.NewTables())
	out, err := exec.Process(in, sim.Metadata{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Out[0].Data, in) {
		t.Error("large payload corrupted")
	}
}
