package sim

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// This file defines the runtime's typed error taxonomy. Every failure
// Process can return is one of five classes, each a concrete struct
// matchable with errors.As and tagged with an ErrorClass for coarse
// matching via errors.Is against the class sentinels below. The
// contract the fuzz targets enforce: Process never panics and never
// returns an untyped error for a dataplane failure — arbitrary hostile
// input either processes, drops, or surfaces one of these.
//
// Note that a plain parser *reject* (truncated or unmatched packet) is
// not an error at all: the packet is dropped and counted, mirroring
// P4's reject semantics. ParseError is reserved for parser machinery
// failures — non-terminating FSMs, transitions to unknown states,
// malformed varbit sizes — that indicate a broken program, not a
// hostile packet.

// ErrorClass coarsely classifies a dataplane failure.
type ErrorClass int

const (
	// ClassParse: the parser FSM itself failed (distinct from a reject).
	ClassParse ErrorClass = iota
	// ClassDeparse: the deparser could not reassemble the packet.
	ClassDeparse
	// ClassTable: table/action/register state is inconsistent with the
	// program (unknown table, unknown action, arg arity mismatch).
	ClassTable
	// ClassEngine: an internal engine fault, including recovered panics.
	ClassEngine
	// ClassRecirc: the architecture's recirculation budget was exceeded.
	ClassRecirc
	// ClassControl: a control-plane operation was rejected — schema
	// validation failed, the message was malformed, or a transaction
	// protocol rule was violated. Unlike the dataplane classes these are
	// produced on the control path (Switch.Try*, the ctrlplane agent),
	// never by Process.
	ClassControl
	// ClassFlow: a flow-table operation failed — an unknown flowtable
	// instance reached an engine, or a FlowSync replication frame
	// carried an entry the table cannot admit. Produced by the flowtable
	// extern dispatch and the ctrlplane replication layer.
	ClassFlow
	// ClassUpgrade: an in-service upgrade (ISSU) operation failed — a
	// stage/canary/cutover precondition was violated, the canary
	// diverged, or the upgrade was rolled back. Produced on the control
	// path (Switch generation APIs, the issu state machine), never by
	// Process.
	ClassUpgrade
)

func (c ErrorClass) String() string {
	switch c {
	case ClassParse:
		return "parse"
	case ClassDeparse:
		return "deparse"
	case ClassTable:
		return "table"
	case ClassEngine:
		return "engine"
	case ClassRecirc:
		return "recirc"
	case ClassControl:
		return "control"
	case ClassFlow:
		return "flow"
	case ClassUpgrade:
		return "upgrade"
	}
	return "unknown"
}

// classError is a sentinel matched by errors.Is(err, ErrXxx).
type classError struct{ class ErrorClass }

func (e *classError) Error() string { return e.class.String() + " error" }

// Class sentinels: errors.Is(err, sim.ErrTable) matches any TableError.
var (
	ErrParse   error = &classError{ClassParse}
	ErrDeparse error = &classError{ClassDeparse}
	ErrTable   error = &classError{ClassTable}
	ErrEngine  error = &classError{ClassEngine}
	ErrRecirc  error = &classError{ClassRecirc}
	ErrControl error = &classError{ClassControl}
	ErrFlow    error = &classError{ClassFlow}
	ErrUpgrade error = &classError{ClassUpgrade}
)

func classIs(class ErrorClass, target error) bool {
	ce, ok := target.(*classError)
	return ok && ce.class == class
}

// ClassOf returns the taxonomy class of a runtime error, and whether
// err belongs to the taxonomy at all.
func ClassOf(err error) (ErrorClass, bool) {
	var (
		pe *ParseError
		de *DeparseError
		te *TableError
		ef *EngineFault
		re *RecircBudgetError
		ce *ControlError
		fe *FlowError
		ue *UpgradeError
	)
	switch {
	case errors.As(err, &pe):
		return ClassParse, true
	case errors.As(err, &de):
		return ClassDeparse, true
	case errors.As(err, &te):
		return ClassTable, true
	case errors.As(err, &ef):
		return ClassEngine, true
	case errors.As(err, &re):
		return ClassRecirc, true
	case errors.As(err, &ce):
		return ClassControl, true
	case errors.As(err, &fe):
		return ClassFlow, true
	case errors.As(err, &ue):
		return ClassUpgrade, true
	}
	return 0, false
}

// ParseError reports a parser machinery failure in a module.
type ParseError struct {
	Program string // program/module name
	State   string // parser state, when known
	Reason  string
}

func (e *ParseError) Error() string {
	if e.State != "" {
		return fmt.Sprintf("%s: parser state %s: %s", e.Program, e.State, e.Reason)
	}
	return fmt.Sprintf("%s: parser: %s", e.Program, e.Reason)
}

func (e *ParseError) Is(target error) bool { return classIs(ClassParse, target) }

// DeparseError reports a deparser failure in a module.
type DeparseError struct {
	Program string
	Reason  string
}

func (e *DeparseError) Error() string {
	return fmt.Sprintf("%s: deparser: %s", e.Program, e.Reason)
}

func (e *DeparseError) Is(target error) bool { return classIs(ClassDeparse, target) }

// TableError reports table state inconsistent with the program: an
// unknown table or register, an action the table cannot select, or an
// entry whose argument arity does not match the action.
type TableError struct {
	Table  string // fully qualified table (or register) name
	Action string // offending action, when known
	Reason string
}

func (e *TableError) Error() string {
	if e.Action != "" {
		return fmt.Sprintf("table %s: action %s: %s", e.Table, e.Action, e.Reason)
	}
	return fmt.Sprintf("table %s: %s", e.Table, e.Reason)
}

func (e *TableError) Is(target error) bool { return classIs(ClassTable, target) }

// EngineFault reports an internal execution-engine fault: an IR shape
// the engine cannot execute, or a panic recovered at the Process
// boundary (PanicValue and Stack are then set). A switch never crashes
// on one — the fault is returned, counted, and the packet is lost.
type EngineFault struct {
	Engine     string // "reference", "compiled", or "switch"
	Reason     string
	PanicValue any    // non-nil when recovered from a panic
	Stack      []byte // captured at recovery
}

func (e *EngineFault) Error() string {
	if e.PanicValue != nil {
		return fmt.Sprintf("%s engine: recovered panic: %s", e.Engine, e.Reason)
	}
	return fmt.Sprintf("%s engine: %s", e.Engine, e.Reason)
}

func (e *EngineFault) Is(target error) bool { return classIs(ClassEngine, target) }

// RecircBudgetError reports a packet that exceeded the architecture's
// recirculation budget (Switch.MaxRecirculations).
type RecircBudgetError struct {
	Limit int
}

func (e *RecircBudgetError) Error() string {
	return fmt.Sprintf("packet recirculated more than %d times", e.Limit)
}

func (e *RecircBudgetError) Is(target error) bool { return classIs(ClassRecirc, target) }

// Reject classes carried by ControlError.Kind — the {class} label of
// up4_ctrl_rejects_total and up4_churn_rejects_total. Stable strings:
// dashed, lower-case, never renamed.
const (
	RejectUnknownTable  = "unknown-table"  // table not in the control schema
	RejectKeyCount      = "key-count"      // wrong number of match keys
	RejectKeyWidth      = "key-width"      // key value/mask/prefix exceeds the column width
	RejectUnknownAction = "unknown-action" // action the table cannot select
	RejectArgArity      = "arg-arity"      // wrong number of action arguments
	RejectArgWidth      = "arg-width"      // argument exceeds the parameter width
	RejectBadGroup      = "bad-group"      // invalid multicast group or replication list
	RejectMalformed     = "malformed"      // undecodable control message
	RejectUnknownOp     = "unknown-op"     // unrecognized operation kind
	RejectTxn           = "txn"            // transaction protocol violation
)

// ControlError reports a rejected control-plane operation: the op named
// state the program's control schema does not admit, the message was
// malformed, or a transaction rule was violated. Kind is one of the
// Reject* classes above; rejects are deterministic (a retry of the same
// op is rejected again), so clients must not retry them.
type ControlError struct {
	Op     string // "add-entry", "set-default", "clear-table", "set-multicast", "prepare", ...
	Table  string // offending table, when relevant
	Action string // offending action, when relevant
	Kind   string // one of the Reject* classes
	Reason string
}

func (e *ControlError) Error() string {
	s := "control: " + e.Op
	if e.Table != "" {
		s += " " + e.Table
	}
	if e.Action != "" {
		s += " action " + e.Action
	}
	return s + ": " + e.Kind + ": " + e.Reason
}

func (e *ControlError) Is(target error) bool { return classIs(ClassControl, target) }

// FlowError reports a flow-table failure: an extern dispatch against an
// instance the program does not declare, or a replicated entry the
// table cannot admit. Dataplane flow misses are not errors (they are a
// hit=0 table-key value, mirroring parser-reject semantics); FlowError
// means the program or a sync peer is broken.
type FlowError struct {
	Table  string // fully qualified flowtable instance path
	Op     string // "upsert", "install", "resync", ...
	Reason string
}

func (e *FlowError) Error() string {
	if e.Op != "" {
		return fmt.Sprintf("flowtable %s: %s: %s", e.Table, e.Op, e.Reason)
	}
	return fmt.Sprintf("flowtable %s: %s", e.Table, e.Reason)
}

func (e *FlowError) Is(target error) bool { return classIs(ClassFlow, target) }

// UpgradeError reports an in-service upgrade failure: a generation
// staging, canary, or cutover step that could not proceed, or an
// upgrade that was rolled back. Phase names the state-machine step
// ("stage", "canary", "cutover", "rollback"); Gen is the staged
// generation involved (0 when none was created).
type UpgradeError struct {
	Phase  string
	Gen    uint64
	Reason string
}

func (e *UpgradeError) Error() string {
	if e.Gen != 0 {
		return fmt.Sprintf("upgrade %s: generation %d: %s", e.Phase, e.Gen, e.Reason)
	}
	return fmt.Sprintf("upgrade %s: %s", e.Phase, e.Reason)
}

func (e *UpgradeError) Is(target error) bool { return classIs(ClassUpgrade, target) }

// recoverFault converts an in-flight panic into an *EngineFault on
// *errp, clearing *resp — the never-panic boundary both engines (and
// the Switch architecture layer) install via defer.
func recoverFault(engine string, resp **ProcResult, errp *error) {
	if r := recover(); r != nil {
		*resp = nil
		*errp = &EngineFault{
			Engine:     engine,
			Reason:     fmt.Sprint(r),
			PanicValue: r,
			Stack:      debug.Stack(),
		}
	}
}
