package sim

import (
	"sort"
	"sync"

	"microp4/internal/ir"
)

// RuntimeKey is one key of a runtime table entry.
type RuntimeKey struct {
	DontCare  bool
	Value     uint64
	Mask      uint64 // for ternary keys; 0 means exact
	HasMask   bool
	PrefixLen int // for lpm keys
}

// Exact returns an exact-match key.
func Exact(v uint64) RuntimeKey { return RuntimeKey{Value: v} }

// Ternary returns a value/mask key.
func Ternary(v, m uint64) RuntimeKey { return RuntimeKey{Value: v, Mask: m, HasMask: true} }

// LPM returns a longest-prefix-match key.
func LPM(v uint64, plen int) RuntimeKey { return RuntimeKey{Value: v, PrefixLen: plen} }

// Any returns a don't-care key.
func Any() RuntimeKey { return RuntimeKey{DontCare: true} }

// RuntimeEntry is one control-plane-installed table entry.
type RuntimeEntry struct {
	Keys     []RuntimeKey
	Action   string
	Args     []uint64
	Priority int // lower wins among ternary matches

	// call is the entry's action invocation, prebuilt at install time so
	// the lookup hot path returns it without allocating.
	call *ir.ActionCall
}

// newRuntimeEntry builds an entry with its action call prebuilt.
func newRuntimeEntry(keys []RuntimeKey, action string, args []uint64, prio int) RuntimeEntry {
	return RuntimeEntry{
		Keys: keys, Action: action, Args: args, Priority: prio,
		call: &ir.ActionCall{Name: action, Args: args},
	}
}

// Tables is the control-plane state shared by the interpreter and the
// compiled executor: runtime entries and default-action overrides, keyed
// by fully-qualified table name (instance-path-prefixed, e.g.
// "l3_i.ipv4_lpm_tbl"). It is safe for concurrent use.
type Tables struct {
	mu       sync.RWMutex
	entries  map[string][]RuntimeEntry
	defaults map[string]*ir.ActionCall
	seq      int
}

// NewTables returns empty control-plane state.
func NewTables() *Tables {
	return &Tables{
		entries:  make(map[string][]RuntimeEntry),
		defaults: make(map[string]*ir.ActionCall),
	}
}

// AddEntry installs an entry; entries installed earlier win ties.
func (t *Tables) AddEntry(table string, keys []RuntimeKey, action string, args ...uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	t.entries[table] = append(t.entries[table], newRuntimeEntry(keys, action, args, t.seq))
}

// AddEntryWithPriority installs an entry with an explicit priority
// (lower wins).
func (t *Tables) AddEntryWithPriority(table string, prio int, keys []RuntimeKey, action string, args ...uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries[table] = append(t.entries[table], newRuntimeEntry(keys, action, args, prio))
}

// SetDefault overrides a table's default action.
func (t *Tables) SetDefault(table, action string, args ...uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.defaults[table] = &ir.ActionCall{Name: action, Args: args}
}

// ClearTable removes all runtime entries of a table.
func (t *Tables) ClearTable(table string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.entries, table)
}

// Entries returns a copy of a table's runtime entries, in installation
// order.
func (t *Tables) Entries(table string) []RuntimeEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]RuntimeEntry(nil), t.entries[table]...)
}

// EntryCount returns the number of runtime entries installed in a table.
func (t *Tables) EntryCount(table string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries[table])
}

// TablesSnapshot is a deep, immutable copy of control-plane table state
// — runtime entries, default overrides, and the priority sequence —
// taken by Snapshot and reinstated by Restore. It backs the switch
// checkpoints the ctrlplane's two-phase commit rolls back to on abort.
type TablesSnapshot struct {
	entries  map[string][]RuntimeEntry
	defaults map[string]*ir.ActionCall
	seq      int
}

// Snapshot returns a deep copy of the current table state. Safe to call
// while packets are being processed and entries installed; the snapshot
// is a consistent point-in-time view.
func (t *Tables) Snapshot() *TablesSnapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := &TablesSnapshot{
		entries:  make(map[string][]RuntimeEntry, len(t.entries)),
		defaults: make(map[string]*ir.ActionCall, len(t.defaults)),
		seq:      t.seq,
	}
	for name, es := range t.entries {
		cp := make([]RuntimeEntry, len(es))
		for i, e := range es {
			cp[i] = newRuntimeEntry(
				append([]RuntimeKey(nil), e.Keys...),
				e.Action,
				append([]uint64(nil), e.Args...),
				e.Priority,
			)
		}
		s.entries[name] = cp
	}
	for name, d := range t.defaults {
		dc := *d
		dc.Args = append([]uint64(nil), d.Args...)
		s.defaults[name] = &dc
	}
	return s
}

// Restore reinstates a snapshot, replacing all runtime entries and
// default overrides installed since it was taken. The snapshot itself is
// not consumed: it deep-copies on the way back in, so one snapshot may
// be restored more than once.
func (t *Tables) Restore(s *TablesSnapshot) {
	if s == nil {
		return
	}
	entries := make(map[string][]RuntimeEntry, len(s.entries))
	for name, es := range s.entries {
		cp := make([]RuntimeEntry, len(es))
		for i, e := range es {
			cp[i] = newRuntimeEntry(
				append([]RuntimeKey(nil), e.Keys...),
				e.Action,
				append([]uint64(nil), e.Args...),
				e.Priority,
			)
		}
		entries[name] = cp
	}
	defaults := make(map[string]*ir.ActionCall, len(s.defaults))
	for name, d := range s.defaults {
		dc := *d
		dc.Args = append([]uint64(nil), d.Args...)
		defaults[name] = &dc
	}
	t.mu.Lock()
	t.entries = entries
	t.defaults = defaults
	t.seq = s.seq
	t.mu.Unlock()
}

// LookupOutcome classifies a table lookup for observability.
type LookupOutcome int8

const (
	// LookupMiss: no entry matched and the table has no default action.
	LookupMiss LookupOutcome = iota
	// LookupHit: an installed or const entry matched.
	LookupHit
	// LookupDefault: no entry matched; the default action applies.
	LookupDefault
)

// Lookup matches key values against a table definition plus runtime
// state. Const entries (from the program text, including synthesized
// parser/deparser MAT entries) have priority over runtime entries, in
// declaration order. Returns the action to run, or the default action,
// or nil when the table has no default (a miss is then a no-op).
func (t *Tables) Lookup(fqName string, def *ir.Table, keyVals []uint64) *ir.ActionCall {
	call, _ := t.LookupWithOutcome(fqName, def, keyVals)
	return call
}

// LookupWithOutcome is Lookup, also reporting how the result was
// reached (entry hit, default action, or miss) for the per-table
// hit/miss/default counters.
// LookupWithOutcome is allocation-free: const entries match in place,
// and runtime entries return their prebuilt action call. Matching
// semantics: an entry with fewer keys than the table wildcards the
// rest; the best match has the highest LPM prefix-length sum, ties
// broken by lower priority (const entries rank by declaration order and
// always precede runtime entries).
func (t *Tables) LookupWithOutcome(fqName string, def *ir.Table, keyVals []uint64) (*ir.ActionCall, LookupOutcome) {
	t.mu.RLock()
	runtime := t.entries[fqName]
	defOverride := t.defaults[fqName]
	t.mu.RUnlock()

	var best *ir.ActionCall
	bestPlen, bestPrio := 0, 0
	for i := range def.Entries {
		e := &def.Entries[i]
		plen, ok := matchConstEntry(def, e, keyVals)
		if !ok {
			continue
		}
		if best == nil || plen > bestPlen || (plen == bestPlen && i < bestPrio) {
			best, bestPlen, bestPrio = &e.Action, plen, i
		}
	}
	for j := range runtime {
		re := &runtime[j]
		plen, ok := matchRuntimeEntry(def, re, keyVals)
		if !ok {
			continue
		}
		prio := len(def.Entries) + re.Priority
		if best == nil || plen > bestPlen || (plen == bestPlen && prio < bestPrio) {
			call := re.call
			if call == nil { // zero-value entry installed out of band
				call = &ir.ActionCall{Name: re.Action, Args: re.Args}
			}
			best, bestPlen, bestPrio = call, plen, prio
		}
	}
	if best != nil {
		return best, LookupHit
	}
	if defOverride != nil {
		return defOverride, LookupDefault
	}
	if def.Default != nil {
		return def.Default, LookupDefault
	}
	return nil, LookupMiss
}

// matchConstEntry matches one const entry, returning its LPM
// prefix-length sum.
func matchConstEntry(def *ir.Table, e *ir.Entry, keyVals []uint64) (plen int, ok bool) {
	for i := range e.Keys {
		if i >= len(def.Keys) {
			return 0, false
		}
		k := &e.Keys[i]
		rk := RuntimeKey{DontCare: k.DontCare, Value: k.Value, Mask: k.Mask, HasMask: k.HasMask, PrefixLen: k.PrefixLen}
		if !matchKey(def.Keys[i].MatchKind, rk, keyVals[i], def.Keys[i].Expr.Width) {
			return 0, false
		}
		if def.Keys[i].MatchKind == "lpm" && !k.DontCare {
			plen += k.PrefixLen
		}
	}
	return plen, true
}

// matchRuntimeEntry matches one installed entry, returning its LPM
// prefix-length sum.
func matchRuntimeEntry(def *ir.Table, e *RuntimeEntry, keyVals []uint64) (plen int, ok bool) {
	for i := range e.Keys {
		if i >= len(def.Keys) {
			return 0, false
		}
		if !matchKey(def.Keys[i].MatchKind, e.Keys[i], keyVals[i], def.Keys[i].Expr.Width) {
			return 0, false
		}
		if def.Keys[i].MatchKind == "lpm" && !e.Keys[i].DontCare {
			plen += e.Keys[i].PrefixLen
		}
	}
	return plen, true
}

// matchKey checks one key column.
func matchKey(kind string, k RuntimeKey, v uint64, width int) bool {
	if k.DontCare {
		return true
	}
	switch kind {
	case "exact":
		return k.Value == v
	case "ternary":
		if !k.HasMask {
			return k.Value == v
		}
		return k.Value&k.Mask == v&k.Mask
	case "lpm":
		if k.PrefixLen == 0 {
			return true
		}
		shift := uint(width - k.PrefixLen)
		if width >= 64 {
			shift = uint(64 - k.PrefixLen)
		}
		return k.Value>>shift == v>>shift
	case "range":
		// Value..Mask treated as an inclusive range.
		return v >= k.Value && v <= k.Mask
	}
	return false
}

// TableNames lists tables with runtime entries (sorted, for debugging).
func (t *Tables) TableNames() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []string
	for n := range t.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
