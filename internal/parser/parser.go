// Package parser implements a recursive-descent parser for the µP4
// dialect. It produces the AST defined in internal/ast.
package parser

import (
	"fmt"

	"microp4/internal/ast"
	"microp4/internal/lexer"
)

// Error is a syntax error with position information.
type Error struct {
	File string
	Pos  ast.Pos
	Msg  string
}

func (e *Error) Error() string {
	if e.File == "" {
		return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
	}
	return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
}

type parser struct {
	file string
	toks []lexer.Token
	pos  int
}

// ParseFile parses a complete µP4 source file.
func ParseFile(name, src string) (*ast.SourceFile, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		if le, ok := err.(*lexer.Error); ok {
			return nil, &Error{File: name, Pos: le.Pos, Msg: le.Msg}
		}
		return nil, err
	}
	return ParseTokens(name, toks)
}

// ParseTokens parses an already-lexed µP4 source file. Split from
// ParseFile so callers timing the compiler (obs.PassTimer) can measure
// the lexer and the parser as separate stages.
func ParseTokens(name string, toks []lexer.Token) (*ast.SourceFile, error) {
	p := &parser{file: name, toks: toks}
	f := &ast.SourceFile{Name: name}
	for !p.atEOF() {
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		f.Decls = append(f.Decls, d)
	}
	return f, nil
}

// ParseExpr parses a standalone expression (used in tests and tools).
func ParseExpr(src string) (ast.Expr, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: "<expr>", toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

// ----------------------------------------------------------------------------
// Token helpers

func (p *parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() lexer.Token {
	if p.atEOF() {
		last := ast.Pos{Line: 1, Col: 1}
		if len(p.toks) > 0 {
			last = p.toks[len(p.toks)-1].Pos
		}
		return lexer.Token{Kind: lexer.EOF, Pos: last}
	}
	return p.toks[p.pos]
}

func (p *parser) peekAt(n int) lexer.Token {
	if p.pos+n >= len(p.toks) {
		return lexer.Token{Kind: lexer.EOF}
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() lexer.Token {
	t := p.peek()
	if !p.atEOF() {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return &Error{File: p.file, Pos: p.peek().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) isPunct(s string) bool {
	t := p.peek()
	return t.Kind == lexer.Punct && t.Text == s
}

func (p *parser) isKeyword(s string) bool {
	t := p.peek()
	return t.Kind == lexer.Keyword && t.Text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKeyword(s string) bool {
	if p.isKeyword(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) (lexer.Token, error) {
	if p.isPunct(s) {
		return p.next(), nil
	}
	return lexer.Token{}, p.errorf("expected %q, found %s", s, p.peek())
}

func (p *parser) expectKeyword(s string) (lexer.Token, error) {
	if p.isKeyword(s) {
		return p.next(), nil
	}
	return lexer.Token{}, p.errorf("expected %q, found %s", s, p.peek())
}

func (p *parser) expectIdent() (lexer.Token, error) {
	if p.peek().Kind == lexer.Ident {
		return p.next(), nil
	}
	return lexer.Token{}, p.errorf("expected identifier, found %s", p.peek())
}

func (p *parser) expectNumber() (lexer.Token, error) {
	if p.peek().Kind == lexer.Number {
		return p.next(), nil
	}
	return lexer.Token{}, p.errorf("expected number, found %s", p.peek())
}

// ----------------------------------------------------------------------------
// Declarations

func (p *parser) parseDecl() (ast.Decl, error) {
	t := p.peek()
	switch {
	case p.isKeyword("header"):
		return p.parseHeaderDecl()
	case p.isKeyword("struct"):
		return p.parseStructDecl()
	case p.isKeyword("typedef"):
		return p.parseTypedefDecl()
	case p.isKeyword("const"):
		return p.parseConstDecl()
	case p.isKeyword("program"):
		return p.parseProgramDecl()
	case t.Kind == lexer.Ident:
		// Module prototype "L3(pkt p, ...);" or instantiation
		// "ModularRouter(P, C, D) main;". Both start IDENT "(" — decided
		// after the closing paren: ";" → prototype, IDENT → instantiation.
		return p.parseProtoOrInstantiation()
	default:
		return nil, p.errorf("expected declaration, found %s", t)
	}
}

func (p *parser) parseHeaderDecl() (ast.Decl, error) {
	kw, _ := p.expectKeyword("header")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	fields, err := p.parseFieldList()
	if err != nil {
		return nil, err
	}
	return &ast.HeaderDecl{P: kw.Pos, Name: name.Text, Fields: fields}, nil
}

func (p *parser) parseStructDecl() (ast.Decl, error) {
	kw, _ := p.expectKeyword("struct")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	fields, err := p.parseFieldList()
	if err != nil {
		return nil, err
	}
	return &ast.StructDecl{P: kw.Pos, Name: name.Text, Fields: fields}, nil
}

func (p *parser) parseFieldList() ([]ast.Field, error) {
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var fields []ast.Field
	for !p.isPunct("}") {
		ft, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		fields = append(fields, ast.Field{P: name.Pos, Name: name.Text, T: ft})
	}
	p.next() // }
	return fields, nil
}

func (p *parser) parseTypedefDecl() (ast.Decl, error) {
	kw, _ := p.expectKeyword("typedef")
	base, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &ast.TypedefDecl{P: kw.Pos, Name: name.Text, Base: base}, nil
}

func (p *parser) parseConstDecl() (ast.Decl, error) {
	kw, _ := p.expectKeyword("const")
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("="); err != nil {
		return nil, err
	}
	v, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &ast.ConstDecl{P: kw.Pos, Name: name.Text, T: t, Value: v}, nil
}

func (p *parser) parseProtoOrInstantiation() (ast.Decl, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	// Try instantiation first: a list of bare identifiers, then ") IDENT ;".
	if d, ok := p.tryInstantiation(name); ok {
		return d, nil
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &ast.ModuleProtoDecl{P: name.Pos, Name: name.Text, Params: params}, nil
}

// tryInstantiation attempts "Name(A, B, C) inst;" from just after "(".
// On failure, the token position is restored.
func (p *parser) tryInstantiation(name lexer.Token) (ast.Decl, bool) {
	save := p.pos
	var args []string
	for !p.isPunct(")") {
		t := p.peek()
		if t.Kind != lexer.Ident {
			p.pos = save
			return nil, false
		}
		args = append(args, t.Text)
		p.next()
		if !p.acceptPunct(",") {
			break
		}
	}
	if !p.acceptPunct(")") {
		p.pos = save
		return nil, false
	}
	inst := p.peek()
	if inst.Kind != lexer.Ident {
		p.pos = save
		return nil, false
	}
	p.next()
	if !p.acceptPunct(";") {
		p.pos = save
		return nil, false
	}
	return &ast.InstantiationDecl{P: name.Pos, TypeName: name.Text, Args: args, Name: inst.Text}, true
}

func (p *parser) parseProgramDecl() (ast.Decl, error) {
	kw, _ := p.expectKeyword("program")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("implements"); err != nil {
		return nil, err
	}
	iface, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	// Optional (and ignored) generic argument list: Unicast<>, Unicast<I,O>.
	if p.acceptPunct("<") {
		for !p.isPunct(">") {
			if _, err := p.parseType(); err != nil {
				return nil, err
			}
			if !p.acceptPunct(",") {
				break
			}
		}
		if _, err := p.expectPunct(">"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	prog := &ast.ProgramDecl{P: kw.Pos, Name: name.Text, Interface: iface.Text}
	for !p.isPunct("}") {
		switch {
		case p.isKeyword("parser"):
			pd, err := p.parseParserDecl()
			if err != nil {
				return nil, err
			}
			if prog.Parser != nil {
				return nil, p.errorf("program %s has more than one parser block", prog.Name)
			}
			prog.Parser = pd
		case p.isKeyword("control"):
			cd, err := p.parseControlDecl()
			if err != nil {
				return nil, err
			}
			prog.Controls = append(prog.Controls, cd)
		default:
			return nil, p.errorf("expected parser or control block in program, found %s", p.peek())
		}
	}
	p.next() // }
	return prog, nil
}

// ----------------------------------------------------------------------------
// Parser blocks

func (p *parser) parseParserDecl() (*ast.ParserDecl, error) {
	kw, _ := p.expectKeyword("parser")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	pd := &ast.ParserDecl{P: kw.Pos, Name: name.Text, Params: params}
	for !p.isPunct("}") {
		if p.isKeyword("state") {
			st, err := p.parseState()
			if err != nil {
				return nil, err
			}
			pd.States = append(pd.States, st)
			continue
		}
		// Local variable declaration.
		vd, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		pd.Locals = append(pd.Locals, vd)
	}
	p.next() // }
	return pd, nil
}

func (p *parser) parseState() (*ast.State, error) {
	kw, _ := p.expectKeyword("state")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	st := &ast.State{P: kw.Pos, Name: name.Text}
	for !p.isPunct("}") {
		if p.isKeyword("transition") {
			tr, err := p.parseTransition()
			if err != nil {
				return nil, err
			}
			if st.Trans != nil {
				return nil, p.errorf("state %s has more than one transition", st.Name)
			}
			st.Trans = tr
			continue
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Stmts = append(st.Stmts, s)
	}
	p.next() // }
	return st, nil
}

func (p *parser) parseTransition() (ast.Transition, error) {
	kw, _ := p.expectKeyword("transition")
	if p.isKeyword("select") {
		p.next()
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var exprs []ast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, e)
			if !p.acceptPunct(",") {
				break
			}
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if _, err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		sel := &ast.SelectTransition{P: kw.Pos, Exprs: exprs}
		for !p.isPunct("}") {
			c, err := p.parseSelectCase(len(exprs))
			if err != nil {
				return nil, err
			}
			sel.Cases = append(sel.Cases, c)
		}
		p.next() // }
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return sel, nil
	}
	target, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &ast.DirectTransition{P: kw.Pos, Target: target.Text}, nil
}

func (p *parser) parseSelectCase(n int) (ast.SelectCase, error) {
	pos := p.peek().Pos
	c := ast.SelectCase{P: pos}
	if p.acceptKeyword("default") {
		c.IsDefault = true
	} else {
		parens := p.acceptPunct("(")
		for {
			if p.isPunct("_") {
				p.next()
				c.Values = append(c.Values, nil)
				c.Masks = append(c.Masks, nil)
			} else {
				v, err := p.parseExpr()
				if err != nil {
					return c, err
				}
				var m ast.Expr
				if p.acceptPunct("&&&") {
					m, err = p.parseExpr()
					if err != nil {
						return c, err
					}
				}
				c.Values = append(c.Values, v)
				c.Masks = append(c.Masks, m)
			}
			if !p.acceptPunct(",") {
				break
			}
		}
		if parens {
			if _, err := p.expectPunct(")"); err != nil {
				return c, err
			}
		}
		if len(c.Values) != n {
			return c, &Error{File: p.file, Pos: pos,
				Msg: fmt.Sprintf("select case has %d keysets, select has %d expressions", len(c.Values), n)}
		}
	}
	if _, err := p.expectPunct(":"); err != nil {
		return c, err
	}
	target, err := p.expectIdent()
	if err != nil {
		return c, err
	}
	c.Target = target.Text
	if _, err := p.expectPunct(";"); err != nil {
		return c, err
	}
	return c, nil
}

// ----------------------------------------------------------------------------
// Control blocks

func (p *parser) parseControlDecl() (*ast.ControlDecl, error) {
	kw, _ := p.expectKeyword("control")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	cd := &ast.ControlDecl{P: kw.Pos, Name: name.Text, Params: params}
	for !p.isPunct("}") {
		switch {
		case p.isKeyword("apply"):
			p.next()
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			if cd.Apply != nil {
				return nil, p.errorf("control %s has more than one apply block", cd.Name)
			}
			cd.Apply = body
		case p.isKeyword("action"):
			a, err := p.parseActionDecl()
			if err != nil {
				return nil, err
			}
			cd.Locals = append(cd.Locals, a)
		case p.isKeyword("table"):
			t, err := p.parseTableDecl()
			if err != nil {
				return nil, err
			}
			cd.Locals = append(cd.Locals, t)
		case p.peek().Kind == lexer.Ident && p.peekAt(1).Kind == lexer.Punct && p.peekAt(1).Text == "(":
			// Instantiation: "L3() l3_i;" or "mc_engine() mce;".
			inst, err := p.parseInstDecl()
			if err != nil {
				return nil, err
			}
			cd.Locals = append(cd.Locals, inst)
		default:
			vd, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			cd.Locals = append(cd.Locals, vd)
		}
	}
	p.next() // }
	if cd.Apply == nil {
		return nil, &Error{File: p.file, Pos: kw.Pos, Msg: fmt.Sprintf("control %s has no apply block", cd.Name)}
	}
	return cd, nil
}

func (p *parser) parseInstDecl() (*ast.InstDecl, error) {
	tn, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []ast.Expr
	for !p.isPunct(")") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if !p.acceptPunct(",") {
			break
		}
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &ast.InstDecl{P: tn.Pos, TypeName: tn.Text, Args: args, Name: name.Text}, nil
}

func (p *parser) parseVarDecl() (*ast.VarDecl, error) {
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	vd := &ast.VarDecl{P: name.Pos, T: t, Name: name.Text}
	if p.acceptPunct("=") {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		vd.Init = init
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return vd, nil
}

func (p *parser) parseActionDecl() (*ast.ActionDecl, error) {
	kw, _ := p.expectKeyword("action")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ast.ActionDecl{P: kw.Pos, Name: name.Text, Params: params, Body: body}, nil
}

func (p *parser) parseTableDecl() (*ast.TableDecl, error) {
	kw, _ := p.expectKeyword("table")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	td := &ast.TableDecl{P: kw.Pos, Name: name.Text}
	for !p.isPunct("}") {
		switch {
		case p.isKeyword("key"):
			p.next()
			if _, err := p.expectPunct("="); err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("{"); err != nil {
				return nil, err
			}
			for !p.isPunct("}") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expectPunct(":"); err != nil {
					return nil, err
				}
				mk, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				switch mk.Text {
				case "exact", "lpm", "ternary", "range":
				default:
					return nil, &Error{File: p.file, Pos: mk.Pos, Msg: fmt.Sprintf("unknown match kind %q", mk.Text)}
				}
				if _, err := p.expectPunct(";"); err != nil {
					return nil, err
				}
				td.Keys = append(td.Keys, ast.TableKey{P: e.Pos(), Expr: e, MatchKind: mk.Text})
			}
			p.next() // }
			p.acceptPunct(";")
		case p.isKeyword("actions"):
			p.next()
			if _, err := p.expectPunct("="); err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("{"); err != nil {
				return nil, err
			}
			for !p.isPunct("}") {
				a, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				td.Actions = append(td.Actions, ast.ActionRef{P: a.Pos, Name: a.Text})
				if !p.acceptPunct(";") {
					p.acceptPunct(",")
				}
			}
			p.next() // }
			p.acceptPunct(";")
		case p.isKeyword("default_action"):
			p.next()
			if !p.acceptPunct("=") && !p.acceptPunct(":") {
				return nil, p.errorf("expected '=' or ':' after default_action")
			}
			ar, err := p.parseActionRef()
			if err != nil {
				return nil, err
			}
			td.DefaultAction = &ar
			if _, err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		case p.isKeyword("const"), p.isKeyword("entries"):
			p.acceptKeyword("const")
			if _, err := p.expectKeyword("entries"); err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("="); err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("{"); err != nil {
				return nil, err
			}
			for !p.isPunct("}") {
				ent, err := p.parseTableEntry()
				if err != nil {
					return nil, err
				}
				td.Entries = append(td.Entries, ent)
			}
			p.next() // }
			p.acceptPunct(";")
		case p.isKeyword("size"):
			p.next()
			if _, err := p.expectPunct("="); err != nil {
				return nil, err
			}
			n, err := p.expectNumber()
			if err != nil {
				return nil, err
			}
			td.Size = int(n.Value)
			if _, err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("unexpected %s in table declaration", p.peek())
		}
	}
	p.next() // }
	return td, nil
}

func (p *parser) parseActionRef() (ast.ActionRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return ast.ActionRef{}, err
	}
	ar := ast.ActionRef{P: name.Pos, Name: name.Text}
	if p.acceptPunct("(") {
		for !p.isPunct(")") {
			e, err := p.parseExpr()
			if err != nil {
				return ar, err
			}
			ar.Args = append(ar.Args, e)
			if !p.acceptPunct(",") {
				break
			}
		}
		if _, err := p.expectPunct(")"); err != nil {
			return ar, err
		}
	}
	return ar, nil
}

func (p *parser) parseTableEntry() (ast.TableEntry, error) {
	pos := p.peek().Pos
	ent := ast.TableEntry{P: pos}
	parens := p.acceptPunct("(")
	for {
		ks := ast.KeySet{P: p.peek().Pos}
		if p.isPunct("_") {
			p.next()
			ks.DontCare = true
		} else {
			v, err := p.parseExpr()
			if err != nil {
				return ent, err
			}
			ks.Value = v
			if p.acceptPunct("&&&") {
				m, err := p.parseExpr()
				if err != nil {
					return ent, err
				}
				ks.Mask = m
			}
		}
		ent.Keys = append(ent.Keys, ks)
		if !p.acceptPunct(",") {
			break
		}
	}
	if parens {
		if _, err := p.expectPunct(")"); err != nil {
			return ent, err
		}
	}
	if _, err := p.expectPunct(":"); err != nil {
		return ent, err
	}
	ar, err := p.parseActionRef()
	if err != nil {
		return ent, err
	}
	ent.Action = ar
	if _, err := p.expectPunct(";"); err != nil {
		return ent, err
	}
	return ent, nil
}

// ----------------------------------------------------------------------------
// Statements

func (p *parser) parseBlock() (*ast.BlockStmt, error) {
	lb, err := p.expectPunct("{")
	if err != nil {
		return nil, err
	}
	blk := &ast.BlockStmt{P: lb.Pos}
	for !p.isPunct("}") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next() // }
	return blk, nil
}

func (p *parser) parseStmt() (ast.Stmt, error) {
	t := p.peek()
	switch {
	case p.isPunct("{"):
		return p.parseBlock()
	case p.isPunct(";"):
		p.next()
		return &ast.EmptyStmt{P: t.Pos}, nil
	case p.isKeyword("if"):
		return p.parseIfStmt()
	case p.isKeyword("switch"):
		return p.parseSwitchStmt()
	case p.isKeyword("exit"), p.isKeyword("return"):
		p.next()
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &ast.ExitStmt{P: t.Pos}, nil
	case p.isKeyword("bit"), p.isKeyword("bool"), p.isKeyword("varbit"):
		vd, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		return &ast.VarDeclStmt{Decl: vd}, nil
	case t.Kind == lexer.Ident && p.peekAt(1).Kind == lexer.Ident:
		// "hdr_t h;" — variable declaration with a named type.
		vd, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		return &ast.VarDeclStmt{Decl: vd}, nil
	default:
		return p.parseAssignOrCall()
	}
}

func (p *parser) parseAssignOrCall() (ast.Stmt, error) {
	pos := p.peek().Pos
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.acceptPunct("=") {
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &ast.AssignStmt{P: pos, LHS: lhs, RHS: rhs}, nil
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	call, ok := lhs.(*ast.CallExpr)
	if !ok {
		return nil, &Error{File: p.file, Pos: pos, Msg: "expression statement must be a call"}
	}
	return &ast.CallStmt{P: pos, Call: call}, nil
}

func (p *parser) parseIfStmt() (ast.Stmt, error) {
	kw, _ := p.expectKeyword("if")
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	st := &ast.IfStmt{P: kw.Pos, Cond: cond, Then: then}
	if p.acceptKeyword("else") {
		if p.isKeyword("if") {
			els, err := p.parseIfStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		} else {
			els, err := p.parseStmtAsBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

// parseStmtAsBlock parses either a block or a single statement wrapped
// into a block.
func (p *parser) parseStmtAsBlock() (*ast.BlockStmt, error) {
	if p.isPunct("{") {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &ast.BlockStmt{P: s.Pos(), Stmts: []ast.Stmt{s}}, nil
}

func (p *parser) parseSwitchStmt() (ast.Stmt, error) {
	kw, _ := p.expectKeyword("switch")
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	st := &ast.SwitchStmt{P: kw.Pos, Expr: e}
	for !p.isPunct("}") {
		c := ast.SwitchCase{P: p.peek().Pos}
		if p.acceptKeyword("default") {
			c.IsDefault = true
		} else {
			for {
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c.Values = append(c.Values, v)
				// "case a, b:" style lists.
				if !p.acceptPunct(",") {
					break
				}
			}
		}
		if _, err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		body, err := p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
		c.Body = body
		st.Cases = append(st.Cases, c)
	}
	p.next() // }
	return st, nil
}

// ----------------------------------------------------------------------------
// Types and parameters

func (p *parser) parseType() (ast.Type, error) {
	t := p.peek()
	var base ast.Type
	switch {
	case p.isKeyword("bit"):
		p.next()
		if _, err := p.expectPunct("<"); err != nil {
			return nil, err
		}
		n, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(">"); err != nil {
			return nil, err
		}
		if n.Value == 0 || n.Value > 2048 {
			return nil, &Error{File: p.file, Pos: n.Pos, Msg: fmt.Sprintf("unsupported bit width %d", n.Value)}
		}
		base = &ast.BitType{P: t.Pos, Width: int(n.Value)}
	case p.isKeyword("varbit"):
		p.next()
		if _, err := p.expectPunct("<"); err != nil {
			return nil, err
		}
		n, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(">"); err != nil {
			return nil, err
		}
		base = &ast.VarbitType{P: t.Pos, MaxWidth: int(n.Value)}
	case p.isKeyword("bool"):
		p.next()
		base = &ast.BoolType{P: t.Pos}
	case t.Kind == lexer.Ident:
		p.next()
		base = &ast.NamedType{P: t.Pos, Name: t.Text}
	default:
		return nil, p.errorf("expected type, found %s", t)
	}
	// Header stack suffix: T[4].
	if p.isPunct("[") && p.peekAt(1).Kind == lexer.Number {
		p.next()
		n, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		if n.Value == 0 || n.Value > 64 {
			return nil, &Error{File: p.file, Pos: n.Pos, Msg: fmt.Sprintf("unsupported stack size %d", n.Value)}
		}
		base = &ast.StackType{P: t.Pos, Elem: base, Size: int(n.Value)}
	}
	return base, nil
}

func (p *parser) parseParams() ([]ast.Param, error) {
	var params []ast.Param
	for !p.isPunct(")") {
		dir := ast.DirNone
		switch {
		case p.acceptKeyword("in"):
			dir = ast.DirIn
		case p.acceptKeyword("out"):
			dir = ast.DirOut
		case p.acceptKeyword("inout"):
			dir = ast.DirInOut
		}
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		params = append(params, ast.Param{P: name.Pos, Dir: dir, T: t, Name: name.Text})
		if !p.acceptPunct(",") {
			break
		}
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return params, nil
}

// ----------------------------------------------------------------------------
// Expressions (precedence climbing)

// binaryPrec follows C/P4-16 operator precedence (loosest first).
var binaryPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"++": 9, "+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseExpr() (ast.Expr, error) {
	return p.parseBinary(1)
}

func (p *parser) parseBinary(minPrec int) (ast.Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != lexer.Punct {
			return lhs, nil
		}
		prec, ok := binaryPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		// "<" and ">" are also generic brackets; inside expressions they
		// are always comparisons in this dialect.
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &ast.BinaryExpr{P: t.Pos, Op: t.Text, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (ast.Expr, error) {
	t := p.peek()
	if t.Kind == lexer.Punct {
		switch t.Text {
		case "!", "~", "-":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &ast.UnaryExpr{P: t.Pos, Op: t.Text, X: x}, nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (ast.Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case p.isPunct("."):
			p.next()
			// Member may be an identifier or the keyword-like names
			// apply/next/last used as members.
			m := p.peek()
			if m.Kind != lexer.Ident && m.Kind != lexer.Keyword {
				return nil, p.errorf("expected member name after '.', found %s", m)
			}
			p.next()
			e = &ast.FieldExpr{P: t.Pos, X: e, Name: m.Text}
		case p.isPunct("["):
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.acceptPunct(":") {
				lo, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expectPunct("]"); err != nil {
					return nil, err
				}
				hiLit, ok1 := idx.(*ast.IntLit)
				loLit, ok2 := lo.(*ast.IntLit)
				if !ok1 || !ok2 {
					return nil, &Error{File: p.file, Pos: t.Pos, Msg: "bit-slice bounds must be integer literals"}
				}
				if hiLit.Value < loLit.Value {
					return nil, &Error{File: p.file, Pos: t.Pos, Msg: "bit-slice high bound below low bound"}
				}
				e = &ast.SliceExpr{P: t.Pos, X: e, Hi: int(hiLit.Value), Lo: int(loLit.Value)}
			} else {
				if _, err := p.expectPunct("]"); err != nil {
					return nil, err
				}
				e = &ast.IndexExpr{P: t.Pos, X: e, Index: idx}
			}
		case p.isPunct("("):
			p.next()
			call := &ast.CallExpr{P: t.Pos, Fun: e}
			for !p.isPunct(")") {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.acceptPunct(",") {
					break
				}
			}
			if _, err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			e = call
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == lexer.Number:
		p.next()
		return &ast.IntLit{P: t.Pos, Width: t.Width, Value: t.Value}, nil
	case p.isKeyword("true"):
		p.next()
		return &ast.BoolLit{P: t.Pos, Value: true}, nil
	case p.isKeyword("false"):
		p.next()
		return &ast.BoolLit{P: t.Pos, Value: false}, nil
	case t.Kind == lexer.Ident:
		p.next()
		return &ast.Ident{P: t.Pos, Name: t.Text}, nil
	case p.isPunct("("):
		// Cast "(bit<16>) x" or parenthesized expression.
		if p.peekAt(1).Kind == lexer.Keyword {
			switch p.peekAt(1).Text {
			case "bit", "bool", "varbit":
				p.next()
				ct, err := p.parseType()
				if err != nil {
					return nil, err
				}
				if _, err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &ast.CastExpr{P: t.Pos, T: ct, X: x}, nil
			}
		}
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errorf("expected expression, found %s", t)
	}
}
