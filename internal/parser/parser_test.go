package parser

import (
	"strings"
	"testing"

	"microp4/internal/ast"
)

// fig8Main is the ModularRouter program from Fig. 8b of the paper,
// lightly adapted to the dialect's concrete syntax.
const fig8Main = `
header ethernet_h {
  bit<48> dstMac;
  bit<48> srcMac;
  bit<16> etherType;
}

struct hdr_t {
  ethernet_h eth;
}

L3(pkt p, im_t im, out bit<16> nh, inout bit<16> etype);

program ModularRouter : implements Unicast<> {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.eth);
      transition accept;
    }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) {
    bit<16> nh;
    L3() l3_i;
    action drop_action() { im.drop(); }
    action forward(bit<48> dmac, bit<48> smac, bit<8> port) {
      h.eth.dstMac = dmac;
      h.eth.srcMac = smac;
      im.set_out_port(port);
    }
    table forward_tbl {
      key = { nh : exact; }
      actions = { forward; drop_action; }
      default_action = drop_action;
    }
    apply {
      l3_i.apply(p, im, nh, h.eth.etherType);
      forward_tbl.apply();
    }
  }
  control D(emitter em, pkt p, in hdr_t h) {
    apply { em.emit(p, h.eth); }
  }
}

ModularRouter(P, C, D) main;
`

func TestParseFig8(t *testing.T) {
	f, err := ParseFile("fig8.up4", fig8Main)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	if len(f.Decls) != 5 {
		t.Fatalf("got %d decls, want 5", len(f.Decls))
	}
	hdr, ok := f.Decls[0].(*ast.HeaderDecl)
	if !ok || hdr.Name != "ethernet_h" || len(hdr.Fields) != 3 {
		t.Errorf("decl 0 = %#v, want header ethernet_h with 3 fields", f.Decls[0])
	}
	if bt, ok := hdr.Fields[0].T.(*ast.BitType); !ok || bt.Width != 48 {
		t.Errorf("eth field 0 type = %v, want bit<48>", hdr.Fields[0].T)
	}
	proto, ok := f.Decls[2].(*ast.ModuleProtoDecl)
	if !ok || proto.Name != "L3" || len(proto.Params) != 4 {
		t.Fatalf("decl 2 = %#v, want module prototype L3/4", f.Decls[2])
	}
	if proto.Params[2].Dir != ast.DirOut || proto.Params[2].Name != "nh" {
		t.Errorf("L3 param 2 = %+v, want out nh", proto.Params[2])
	}
	prog, ok := f.Decls[3].(*ast.ProgramDecl)
	if !ok || prog.Name != "ModularRouter" || prog.Interface != "Unicast" {
		t.Fatalf("decl 3 = %#v, want program ModularRouter: Unicast", f.Decls[3])
	}
	if prog.Parser == nil || len(prog.Parser.States) != 1 {
		t.Fatalf("program parser missing or wrong states: %#v", prog.Parser)
	}
	if len(prog.Controls) != 2 {
		t.Fatalf("got %d controls, want 2", len(prog.Controls))
	}
	ctrl := prog.Controls[0]
	if len(ctrl.Locals) != 5 {
		t.Errorf("control C has %d locals, want 5 (var, inst, 2 actions, table)", len(ctrl.Locals))
	}
	var tbl *ast.TableDecl
	for _, l := range ctrl.Locals {
		if td, ok := l.(*ast.TableDecl); ok {
			tbl = td
		}
	}
	if tbl == nil || tbl.Name != "forward_tbl" {
		t.Fatalf("forward_tbl not found")
	}
	if len(tbl.Keys) != 1 || tbl.Keys[0].MatchKind != "exact" {
		t.Errorf("forward_tbl keys = %+v", tbl.Keys)
	}
	if len(tbl.Actions) != 2 || tbl.DefaultAction == nil || tbl.DefaultAction.Name != "drop_action" {
		t.Errorf("forward_tbl actions = %+v default = %+v", tbl.Actions, tbl.DefaultAction)
	}
	inst, ok := f.Decls[4].(*ast.InstantiationDecl)
	if !ok || inst.TypeName != "ModularRouter" || inst.Name != "main" || len(inst.Args) != 3 {
		t.Errorf("decl 4 = %#v, want ModularRouter(P,C,D) main", f.Decls[4])
	}
}

func TestParseSelectTransition(t *testing.T) {
	src := `
program X : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) {
        0x0800: parse_ipv4;
        0x86DD &&& 0xFFFF: parse_ipv6;
        default: accept;
      };
    }
    state parse_ipv4 { ex.extract(p, h.ipv4); transition accept; }
    state parse_ipv6 { ex.extract(p, h.ipv6); transition accept; }
  }
  control C(pkt p, inout hdr_t h, im_t im) { apply { } }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.eth); } }
}
`
	f, err := ParseFile("sel.up4", src)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	prog := f.Decls[0].(*ast.ProgramDecl)
	sel, ok := prog.Parser.States[0].Trans.(*ast.SelectTransition)
	if !ok {
		t.Fatalf("start transition is %#v, want select", prog.Parser.States[0].Trans)
	}
	if len(sel.Cases) != 3 {
		t.Fatalf("got %d cases, want 3", len(sel.Cases))
	}
	if sel.Cases[1].Masks[0] == nil {
		t.Errorf("case 1 should have a mask")
	}
	if !sel.Cases[2].IsDefault || sel.Cases[2].Target != "accept" {
		t.Errorf("case 2 = %+v, want default: accept", sel.Cases[2])
	}
}

func TestParseSwitchAndIf(t *testing.T) {
	src := `
program X : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start { transition accept; }
  }
  control C(pkt p, inout hdr_t h, im_t im, out bit<16> nh, inout bit<16> etype) {
    ipv4() ipv4_i;
    ipv6() ipv6_i;
    apply {
      switch (etype) {
        0x0800: ipv4_i.apply(p, im, nh);
        0x86DD: { ipv6_i.apply(p, im, nh); }
        default: { nh = 0; }
      }
      if (nh == 0 && etype != 0x86DD) {
        nh = 1;
      } else if (nh > 5) {
        nh = 2;
      } else {
        nh = 3;
      }
    }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}
`
	f, err := ParseFile("sw.up4", src)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	ctrl := f.Decls[0].(*ast.ProgramDecl).Controls[0]
	sw, ok := ctrl.Apply.Stmts[0].(*ast.SwitchStmt)
	if !ok || len(sw.Cases) != 3 {
		t.Fatalf("stmt 0 = %#v, want switch with 3 cases", ctrl.Apply.Stmts[0])
	}
	ifs, ok := ctrl.Apply.Stmts[1].(*ast.IfStmt)
	if !ok {
		t.Fatalf("stmt 1 = %#v, want if", ctrl.Apply.Stmts[1])
	}
	elif, ok := ifs.Else.(*ast.IfStmt)
	if !ok || elif.Else == nil {
		t.Fatalf("else-if chain not parsed: %#v", ifs.Else)
	}
}

func TestParseTableEntries(t *testing.T) {
	src := `
program X : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h) { state start { transition accept; } }
  control C(pkt p, inout hdr_t h, im_t im) {
    action a1(bit<8> x) { h.f = x; }
    action a2() { }
    table t {
      key = { h.a : exact; h.b : ternary; h.c : lpm; }
      actions = { a1; a2; }
      const entries = {
        (0x0800, _, 0x6) : a1(1);
        (0x86DD, 0xFF &&& 0x0F, _) : a2();
      }
      size = 128;
      default_action = a2();
    }
    apply { t.apply(); }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { } }
}
`
	f, err := ParseFile("entries.up4", src)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	ctrl := f.Decls[0].(*ast.ProgramDecl).Controls[0]
	var tbl *ast.TableDecl
	for _, l := range ctrl.Locals {
		if td, ok := l.(*ast.TableDecl); ok {
			tbl = td
		}
	}
	if tbl == nil {
		t.Fatal("table t not found")
	}
	if len(tbl.Entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(tbl.Entries))
	}
	e0 := tbl.Entries[0]
	if len(e0.Keys) != 3 || !e0.Keys[1].DontCare || e0.Keys[2].DontCare {
		t.Errorf("entry 0 keys = %+v", e0.Keys)
	}
	if e0.Action.Name != "a1" || len(e0.Action.Args) != 1 {
		t.Errorf("entry 0 action = %+v", e0.Action)
	}
	if tbl.Entries[1].Keys[1].Mask == nil {
		t.Errorf("entry 1 key 1 should have mask")
	}
	if tbl.Size != 128 {
		t.Errorf("size = %d, want 128", tbl.Size)
	}
}

func TestParseHeaderStackAndSlice(t *testing.T) {
	src := `
header label_h { bit<20> label; bit<3> tc; bit<1> s; bit<8> ttl; }
struct hdr_t { label_h[4] labels; }
program X : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start { ex.extract(p, h.labels.next); transition select(h.labels.last.s) { 1 : accept; default : start; }; }
  }
  control C(pkt p, inout hdr_t h, im_t im) {
    apply {
      h.labels[0].ttl = h.labels[0].ttl - 1;
      h.labels[1].label = (bit<20>) h.labels[0].label[19:4] ++ 4w0;
    }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.labels); } }
}
`
	f, err := ParseFile("stack.up4", src)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	st := f.Decls[1].(*ast.StructDecl)
	stk, ok := st.Fields[0].T.(*ast.StackType)
	if !ok || stk.Size != 4 {
		t.Fatalf("labels type = %v, want label_h[4]", st.Fields[0].T)
	}
	ctrl := f.Decls[2].(*ast.ProgramDecl).Controls[0]
	asg := ctrl.Apply.Stmts[1].(*ast.AssignStmt)
	bin, ok := asg.RHS.(*ast.BinaryExpr)
	if !ok || bin.Op != "++" {
		t.Fatalf("rhs = %#v, want concat", asg.RHS)
	}
	cast, ok := bin.X.(*ast.CastExpr)
	if !ok {
		t.Fatalf("concat lhs = %#v, want cast", bin.X)
	}
	if _, ok := cast.X.(*ast.SliceExpr); !ok {
		t.Errorf("cast operand = %#v, want slice", cast.X)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"header H {",
		"program X { }",
		"program X : implements Unicast { parser P() { state start { transition accept; } } parser Q() { state start { transition accept; } } control C(pkt p) { apply {} } }",
		"program X : implements Unicast { control C(pkt p) { } }",
		"header H { bit<0> f; }",
		"program X : implements Unicast { control C(pkt p) { apply { 1 + 2; } } }",
		"program X : implements Unicast { control C(pkt p) { table t { key = { x : bogus; } } apply { } } }",
	}
	for _, src := range cases {
		if _, err := ParseFile("bad.up4", src); err == nil {
			t.Errorf("ParseFile(%q...) succeeded, want error", firstLine(src))
		}
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func TestParseExprPrecedence(t *testing.T) {
	e, err := ParseExpr("a + b * c == d << 2 | e")
	if err != nil {
		t.Fatalf("ParseExpr: %v", err)
	}
	// Expect: ((a + (b*c)) == (d<<2)) | e
	or, ok := e.(*ast.BinaryExpr)
	if !ok || or.Op != "|" {
		t.Fatalf("top = %#v, want |", e)
	}
	eq, ok := or.X.(*ast.BinaryExpr)
	if !ok || eq.Op != "==" {
		t.Fatalf("or.X = %#v, want ==", or.X)
	}
	add, ok := eq.X.(*ast.BinaryExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("eq.X = %#v, want +", eq.X)
	}
	if mul, ok := add.Y.(*ast.BinaryExpr); !ok || mul.Op != "*" {
		t.Errorf("add.Y = %#v, want *", add.Y)
	}
}
