package parser

import (
	"math/rand"
	"strings"
	"testing"
)

// TestNoPanicOnGarbage feeds the parser mutated and truncated variants
// of valid source plus raw noise: it must return errors, never panic.
func TestNoPanicOnGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	corpus := []string{fig8Main, `
program X : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h) {
    state start { transition select(h.a) { 1: accept; }; }
  }
  control C(pkt p) { apply { if (a == 1) { b = 2; } } }
}`,
	}
	tokens := []string{"{", "}", "(", ")", ";", "bit<8>", "state", "transition",
		"select", "table", "key", "actions", "apply", "0x", "&&&", "++", "program"}
	for trial := 0; trial < 3000; trial++ {
		src := corpus[r.Intn(len(corpus))]
		switch r.Intn(4) {
		case 0: // truncate
			if len(src) > 0 {
				src = src[:r.Intn(len(src))]
			}
		case 1: // splice a random token somewhere
			pos := r.Intn(len(src) + 1)
			src = src[:pos] + tokens[r.Intn(len(tokens))] + src[pos:]
		case 2: // delete a random chunk
			if len(src) > 10 {
				a := r.Intn(len(src) - 10)
				b := a + r.Intn(10)
				src = src[:a] + src[b:]
			}
		case 3: // random bytes
			n := r.Intn(200)
			var b strings.Builder
			for i := 0; i < n; i++ {
				b.WriteByte(byte(r.Intn(128)))
			}
			src = b.String()
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on input %q: %v", src, p)
				}
			}()
			_, _ = ParseFile("fuzz.up4", src)
		}()
	}
}

// TestDeepNestingBounded ensures pathological nesting errors out (or
// parses) without exhausting the stack.
func TestDeepNestingBounded(t *testing.T) {
	depth := 500
	src := "program X : implements Unicast { control C(pkt p) { apply { " +
		strings.Repeat("if (true) { ", depth) +
		"a = 1;" + strings.Repeat(" }", depth) + " } } }"
	_, _ = ParseFile("deep.up4", src) // must terminate
}
