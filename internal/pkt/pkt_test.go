package pkt

import (
	"testing"
	"testing/quick"
)

func TestEthernetRoundTrip(t *testing.T) {
	f := func(dst, src uint64, et uint16) bool {
		dst &= 0xFFFFFFFFFFFF
		src &= 0xFFFFFFFFFFFF
		b := NewBuilder().Ethernet(dst, src, et).Bytes()
		return len(b) == 14 && EthDst(b) == dst && EthSrc(b) == src && EthType(b) == et
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPv4Fields(t *testing.T) {
	b := NewBuilder().
		Ethernet(1, 2, EtherTypeIPv4).
		IPv4(IPv4Opts{TTL: 63, Protocol: ProtoTCP, Src: 0x0A000001, Dst: 0x14000002}).
		Bytes()
	if len(b) != 34 {
		t.Fatalf("len = %d, want 34", len(b))
	}
	if IPv4TTL(b, 14) != 63 || IPv4Src(b, 14) != 0x0A000001 || IPv4Dst(b, 14) != 0x14000002 {
		t.Errorf("ipv4 fields wrong: %s", Dump(b))
	}
	if b[14]>>4 != 4 || b[14]&0xF != 5 {
		t.Errorf("version/ihl = %#x", b[14])
	}
	if b[14+9] != ProtoTCP {
		t.Errorf("protocol = %d", b[14+9])
	}
}

func TestIPv6Fields(t *testing.T) {
	b := NewBuilder().IPv6(IPv6Opts{
		NextHdr: 43, HopLimit: 17,
		SrcHi: 0x1111, SrcLo: 0x2222, DstHi: 0x20010DB8_00000000, DstLo: 0x42,
	}).Bytes()
	if len(b) != 40 {
		t.Fatalf("len = %d, want 40", len(b))
	}
	if b[0]>>4 != 6 {
		t.Errorf("version = %d", b[0]>>4)
	}
	if IPv6HopLimit(b, 0) != 17 || b[6] != 43 {
		t.Errorf("hop/nexthdr wrong")
	}
	if IPv6DstHi(b, 0) != 0x20010DB8_00000000 || IPv6DstLo(b, 0) != 0x42 {
		t.Errorf("dst wrong")
	}
}

func TestMPLS(t *testing.T) {
	f := func(label uint32, tc uint8, bottom bool, ttl uint8) bool {
		label &= 0xFFFFF
		b := NewBuilder().MPLS(label, tc, bottom, ttl).Bytes()
		if len(b) != 4 || MPLSLabel(b, 0) != label {
			return false
		}
		gotBottom := b[2]&1 == 1
		return gotBottom == bottom && b[3] == ttl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSRv6Layout(t *testing.T) {
	segs := [][2]uint64{{0xAAAA, 0xBBBB}, {0xCCCC, 0xDDDD}}
	b := NewBuilder().SRv6(59, 1, segs).Bytes()
	if len(b) != 8+32 {
		t.Fatalf("len = %d, want 40", len(b))
	}
	if b[0] != 59 || b[1] != 4 || b[2] != 4 || b[3] != 1 || b[4] != 1 {
		t.Errorf("SRH fixed fields wrong: %s", Dump(b[:8]))
	}
}

func TestTCPUDP(t *testing.T) {
	b := NewBuilder().TCP(443, 8080).Bytes()
	if len(b) != 20 || b[0] != 1 || b[1] != 0xBB {
		t.Errorf("tcp sport wrong: %s", Dump(b))
	}
	u := NewBuilder().UDP(53, 5353, 12).Bytes()
	if len(u) != 8 || u[2] != 0x14 || u[3] != 0xE9 {
		t.Errorf("udp dport wrong: %s", Dump(u))
	}
}

func TestBuilderChaining(t *testing.T) {
	b := NewBuilder().
		Ethernet(1, 2, EtherTypeIPv4).
		IPv4(IPv4Opts{TTL: 1}).
		TCP(1, 2).
		Payload([]byte{0xDE, 0xAD}).Bytes()
	if len(b) != 14+20+20+2 {
		t.Errorf("chained length = %d", len(b))
	}
	if b[len(b)-1] != 0xAD {
		t.Errorf("payload misplaced")
	}
}

func TestDump(t *testing.T) {
	out := Dump([]byte{0x00, 0xFF, 0x10})
	if out != "00 ff 10" {
		t.Errorf("Dump = %q", out)
	}
	if Dump(nil) != "" {
		t.Errorf("Dump(nil) = %q", Dump(nil))
	}
}
