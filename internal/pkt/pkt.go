// Package pkt builds and inspects test packets for the protocols used by
// the module library (Ethernet, IPv4, IPv6, MPLS, TCP, UDP, SRv6). It is
// a deliberately small, allocation-friendly encoder in the spirit of
// gopacket's SerializeLayers: layers are appended outermost-first.
package pkt

import (
	"encoding/binary"
	"fmt"
)

// EtherTypes.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeIPv6 = 0x86DD
	EtherTypeMPLS = 0x8847
)

// IP protocol numbers.
const (
	ProtoTCP     = 6
	ProtoUDP     = 17
	ProtoSRv6    = 43 // routing extension header
	ProtoIPv4    = 4
	ProtoICMPv6  = 58
	ProtoNoNext  = 59
	ProtoUnknown = 253
)

// Builder accumulates packet bytes.
type Builder struct {
	buf []byte
}

// NewBuilder returns an empty packet builder.
func NewBuilder() *Builder { return &Builder{} }

// Bytes returns the built packet.
func (b *Builder) Bytes() []byte { return b.buf }

// Ethernet appends an Ethernet header.
func (b *Builder) Ethernet(dst, src uint64, etherType uint16) *Builder {
	var h [14]byte
	putUint48(h[0:6], dst)
	putUint48(h[6:12], src)
	binary.BigEndian.PutUint16(h[12:14], etherType)
	b.buf = append(b.buf, h[:]...)
	return b
}

// IPv4Opts configures an IPv4 header.
type IPv4Opts struct {
	TTL      uint8
	Protocol uint8
	Src, Dst uint32
	TotalLen uint16 // 0 = filled at Finish time by caller if needed
	ID       uint16
	DSCP     uint8
}

// IPv4 appends a 20-byte IPv4 header.
func (b *Builder) IPv4(o IPv4Opts) *Builder {
	var h [20]byte
	h[0] = 0x45 // version 4, IHL 5
	h[1] = o.DSCP << 2
	binary.BigEndian.PutUint16(h[2:4], o.TotalLen)
	binary.BigEndian.PutUint16(h[4:6], o.ID)
	h[8] = o.TTL
	h[9] = o.Protocol
	binary.BigEndian.PutUint32(h[12:16], o.Src)
	binary.BigEndian.PutUint32(h[16:20], o.Dst)
	b.buf = append(b.buf, h[:]...)
	return b
}

// IPv6Opts configures an IPv6 header. Addresses are (hi, lo) 64-bit
// halves, matching the library's split address fields.
type IPv6Opts struct {
	NextHdr      uint8
	HopLimit     uint8
	SrcHi, SrcLo uint64
	DstHi, DstLo uint64
	PayloadLen   uint16
	TrafficClass uint8
	FlowLabel    uint32
}

// IPv6 appends a 40-byte IPv6 header.
func (b *Builder) IPv6(o IPv6Opts) *Builder {
	var h [40]byte
	h[0] = 0x60 | o.TrafficClass>>4
	h[1] = o.TrafficClass<<4 | uint8(o.FlowLabel>>16)
	binary.BigEndian.PutUint16(h[2:4], uint16(o.FlowLabel))
	binary.BigEndian.PutUint16(h[4:6], o.PayloadLen)
	h[6] = o.NextHdr
	h[7] = o.HopLimit
	binary.BigEndian.PutUint64(h[8:16], o.SrcHi)
	binary.BigEndian.PutUint64(h[16:24], o.SrcLo)
	binary.BigEndian.PutUint64(h[24:32], o.DstHi)
	binary.BigEndian.PutUint64(h[32:40], o.DstLo)
	b.buf = append(b.buf, h[:]...)
	return b
}

// MPLS appends one 4-byte MPLS label-stack entry.
func (b *Builder) MPLS(label uint32, tc uint8, bottom bool, ttl uint8) *Builder {
	var h [4]byte
	v := label<<12 | uint32(tc&7)<<9 | uint32(ttl)
	if bottom {
		v |= 1 << 8
	}
	binary.BigEndian.PutUint32(h[:], v)
	b.buf = append(b.buf, h[:]...)
	return b
}

// SRv6 appends a segment-routing header with the given 128-bit segments
// (each a (hi, lo) pair), segments-left, and next header.
func (b *Builder) SRv6(nextHdr uint8, segmentsLeft uint8, segs [][2]uint64) *Builder {
	n := len(segs)
	h := make([]byte, 8+16*n)
	h[0] = nextHdr
	h[1] = uint8(2 * n) // Hdr Ext Len in 8-byte units
	h[2] = 4            // routing type: SRH
	h[3] = segmentsLeft
	h[4] = uint8(n - 1) // last entry
	for i, s := range segs {
		binary.BigEndian.PutUint64(h[8+16*i:], s[0])
		binary.BigEndian.PutUint64(h[16+16*i:], s[1])
	}
	b.buf = append(b.buf, h...)
	return b
}

// TCP appends a 20-byte TCP header.
func (b *Builder) TCP(sport, dport uint16) *Builder {
	var h [20]byte
	binary.BigEndian.PutUint16(h[0:2], sport)
	binary.BigEndian.PutUint16(h[2:4], dport)
	h[12] = 5 << 4 // data offset
	b.buf = append(b.buf, h[:]...)
	return b
}

// UDP appends an 8-byte UDP header.
func (b *Builder) UDP(sport, dport, length uint16) *Builder {
	var h [8]byte
	binary.BigEndian.PutUint16(h[0:2], sport)
	binary.BigEndian.PutUint16(h[2:4], dport)
	binary.BigEndian.PutUint16(h[4:6], length)
	b.buf = append(b.buf, h[:]...)
	return b
}

// Payload appends raw bytes.
func (b *Builder) Payload(p []byte) *Builder {
	b.buf = append(b.buf, p...)
	return b
}

func putUint48(dst []byte, v uint64) {
	dst[0] = byte(v >> 40)
	dst[1] = byte(v >> 32)
	dst[2] = byte(v >> 24)
	dst[3] = byte(v >> 16)
	dst[4] = byte(v >> 8)
	dst[5] = byte(v)
}

// ----------------------------------------------------------------------------
// Decoding helpers for assertions

// EthDst returns the destination MAC of an Ethernet frame.
func EthDst(p []byte) uint64 { return uint48(p[0:6]) }

// EthSrc returns the source MAC.
func EthSrc(p []byte) uint64 { return uint48(p[6:12]) }

// EthType returns the EtherType.
func EthType(p []byte) uint16 { return binary.BigEndian.Uint16(p[12:14]) }

// IPv4TTL returns the TTL of the IPv4 header at offset off.
func IPv4TTL(p []byte, off int) uint8 { return p[off+8] }

// IPv4Dst returns the destination address of the IPv4 header at off.
func IPv4Dst(p []byte, off int) uint32 { return binary.BigEndian.Uint32(p[off+16 : off+20]) }

// IPv4Src returns the source address of the IPv4 header at off.
func IPv4Src(p []byte, off int) uint32 { return binary.BigEndian.Uint32(p[off+12 : off+16]) }

// IPv6HopLimit returns the hop limit of the IPv6 header at off.
func IPv6HopLimit(p []byte, off int) uint8 { return p[off+7] }

// IPv6DstHi returns the high 64 bits of the IPv6 destination at off.
func IPv6DstHi(p []byte, off int) uint64 { return binary.BigEndian.Uint64(p[off+24 : off+32]) }

// IPv6DstLo returns the low 64 bits of the IPv6 destination at off.
func IPv6DstLo(p []byte, off int) uint64 { return binary.BigEndian.Uint64(p[off+32 : off+40]) }

// MPLSLabel returns the label of the MPLS entry at off.
func MPLSLabel(p []byte, off int) uint32 {
	return binary.BigEndian.Uint32(p[off:off+4]) >> 12
}

func uint48(p []byte) uint64 {
	return uint64(p[0])<<40 | uint64(p[1])<<32 | uint64(p[2])<<24 |
		uint64(p[3])<<16 | uint64(p[4])<<8 | uint64(p[5])
}

// Dump renders a packet as hex for debugging.
func Dump(p []byte) string {
	out := ""
	for i, b := range p {
		if i > 0 && i%16 == 0 {
			out += "\n"
		} else if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%02x", b)
	}
	return out
}
