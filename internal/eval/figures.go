package eval

import (
	"fmt"
	"strings"

	"microp4/internal/analysis"
	"microp4/internal/frontend"
	"microp4/internal/ir"
	"microp4/internal/linker"
	"microp4/internal/pdg"
)

// Figure-9 programs: the exact header sizes of the paper's worked
// example (eth 14B, mpls 4B, ipv6 40B, ipv4 20B).
const fig9Headers = `
struct empty_t { }
header eth_h  { bit<48> dst; bit<48> src; bit<16> etherType; }
header mpls_h { bit<20> label; bit<3> tc; bit<1> s; bit<8> ttl; }
header ipv6_h { bit<4> version; bit<8> tclass; bit<20> flowlabel; bit<16> plen;
                bit<8> nexthdr; bit<8> hoplimit; bit<64> srcHi; bit<64> srcLo;
                bit<64> dstHi; bit<64> dstLo; }
header ipv4_h { bit<4> version; bit<4> ihl; bit<8> tos; bit<16> totalLen;
                bit<16> id; bit<3> flags; bit<13> frag; bit<8> ttl;
                bit<8> protocol; bit<16> csum; bit<32> src; bit<32> dst; }
`

// Fig9Callee1 parses eth+mpls+ipv6 (58B), removes mpls (δ=4) and adds
// ipv4 (Δ=20).
const Fig9Callee1 = fig9Headers + `
struct c1hdr_t { eth_h eth; mpls_h mpls; ipv6_h ipv6; ipv4_h ipv4; }
program Callee1 : implements Unicast {
  parser P(extractor ex, pkt p, out c1hdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.eth); transition parse_mpls; }
    state parse_mpls { ex.extract(p, h.mpls); transition parse_ipv6; }
    state parse_ipv6 { ex.extract(p, h.ipv6); transition accept; }
  }
  control C(pkt p, inout c1hdr_t h, inout empty_t m, im_t im) {
    apply {
      h.mpls.setInvalid();
      h.ipv4.setValid();
    }
  }
  control D(emitter em, pkt p, in c1hdr_t h) {
    apply { em.emit(p, h.eth); em.emit(p, h.mpls); em.emit(p, h.ipv4); em.emit(p, h.ipv6); }
  }
}
`

// Fig9Callee2 may extract eth, ipv6 and ipv4 (up to 74B).
const Fig9Callee2 = fig9Headers + `
struct c2hdr_t { eth_h eth; ipv6_h ipv6; ipv4_h ipv4; }
program Callee2 : implements Unicast {
  parser P(extractor ex, pkt p, out c2hdr_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) { 0x86DD: parse_ipv6; default: accept; };
    }
    state parse_ipv6 {
      ex.extract(p, h.ipv6);
      transition select(h.ipv6.nexthdr) { 4: parse_ipv4; default: accept; };
    }
    state parse_ipv4 { ex.extract(p, h.ipv4); transition accept; }
  }
  control C(pkt p, inout c2hdr_t h, inout empty_t m, im_t im) { apply { } }
  control D(emitter em, pkt p, in c2hdr_t h) {
    apply { em.emit(p, h.eth); em.emit(p, h.ipv6); em.emit(p, h.ipv4); }
  }
}
`

// Fig9Caller invokes both callees on one control path.
const Fig9Caller = fig9Headers + `
struct nohdr_t { }
Callee1(pkt p, im_t im);
Callee2(pkt p, im_t im);
program Caller : implements Unicast {
  parser P(extractor ex, pkt p, out nohdr_t h, inout empty_t m, im_t im) {
    state start { transition accept; }
  }
  control C(pkt p, inout nohdr_t h, inout empty_t m, im_t im) {
    Callee1() c1;
    Callee2() c2;
    apply {
      c1.apply(p, im);
      c2.apply(p, im);
    }
  }
  control D(emitter em, pkt p, in nohdr_t h) { apply { } }
}
`

// Figure9 runs the static analysis on the §5.2 worked example and
// renders the computed operational regions (the paper's numbers:
// El(caller)=78, Bs(caller)=98).
func Figure9() (string, *analysis.Result, error) {
	c1, err := frontend.CompileModule("callee1.up4", Fig9Callee1)
	if err != nil {
		return "", nil, err
	}
	c2, err := frontend.CompileModule("callee2.up4", Fig9Callee2)
	if err != nil {
		return "", nil, err
	}
	caller, err := frontend.CompileModule("caller.up4", Fig9Caller)
	if err != nil {
		return "", nil, err
	}
	l, err := linker.Link(caller, c1, c2)
	if err != nil {
		return "", nil, err
	}
	res, err := analysis.Analyze(l)
	if err != nil {
		return "", nil, err
	}
	var b strings.Builder
	b.WriteString("Figure 9: static analysis with multiple callees in a control path\n\n")
	fmt.Fprintf(&b, "%-10s %4s %4s %4s %4s %4s %7s\n", "program", "Elp", "Elc", "El", "Δ", "δ", "Bs")
	for _, name := range res.Order {
		st := res.Stats[name]
		fmt.Fprintf(&b, "%-10s %4d %4d %4d %4d %4d %7d\n",
			name, st.Elp, st.Elc, st.El, st.Inc, st.Dec, st.Bs)
	}
	main := res.Main()
	fmt.Fprintf(&b, "\npaper: El(caller) = 4 + 74 = 78 (got %d); Bs = 78 + 20 = 98 (got %d)\n",
		main.El, main.Bs)
	return b.String(), res, nil
}

// Fig10Src is the parser of Fig. 10a (eth → IPv6|IPv4 → TCP with the
// var_y forward-substitution example).
const Fig10Src = `
struct meta_t { bit<8> data1; bit<8> data2; }
header eth_h  { bit<48> dst; bit<48> src; bit<16> ethType; }
header ipv6_h { bit<4> version; bit<8> tclass; bit<20> flowlabel; bit<16> plen;
                bit<8> nexthdr; bit<8> hoplimit; bit<64> srcHi; bit<64> srcLo;
                bit<64> dstHi; bit<64> dstLo; }
header ipv4_h { bit<4> version; bit<4> ihl; bit<8> tos; bit<16> totalLen;
                bit<16> id; bit<3> flags; bit<13> frag; bit<8> ttl;
                bit<8> protocol; bit<16> csum; bit<32> src; bit<32> dst; }
header tcp_h  { bit<16> sport; bit<16> dport; bit<32> seq; bit<32> ack;
                bit<4> dataOff; bit<4> res; bit<8> flags; bit<16> window;
                bit<16> csum; bit<16> urgent; }
struct hdr_t { eth_h eth; ipv6_h ipv6; ipv4_h ipv4; tcp_h tcp; }

program Fig10 : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout meta_t m, im_t im) {
    bit<8> var_y;
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.ethType) {
        0x86DD: parse_ipv6;
        0x0800: parse_ipv4;
      };
    }
    state parse_ipv6 {
      ex.extract(p, h.ipv6);
      var_y = m.data1;
      transition select(h.ipv6.nexthdr) { 0x6: parse_tcp; };
    }
    state parse_ipv4 {
      ex.extract(p, h.ipv4);
      var_y = m.data2;
      transition select(h.ipv4.protocol) { 0x6: parse_tcp; };
    }
    state parse_tcp {
      ex.extract(p, h.tcp);
      transition select(var_y) { 0xFF: accept; };
    }
  }
  control C(pkt p, inout hdr_t h, inout meta_t m, im_t im) { apply { } }
  control D(emitter em, pkt p, in hdr_t h) {
    apply { em.emit(p, h.eth); em.emit(p, h.ipv6); em.emit(p, h.ipv4); em.emit(p, h.tcp); }
  }
}
Fig10(P, C, D) main;
`

// Figure10 runs the parser→MAT transformation on the Fig. 10 parser and
// renders the synthesized table.
func Figure10() (string, error) {
	main, err := frontend.CompileModule("fig10.up4", Fig10Src)
	if err != nil {
		return "", err
	}
	res, err := midendBuild(main)
	if err != nil {
		return "", err
	}
	tbl := res.Pipeline.Tables["$parser_tbl"]
	if tbl == nil {
		return "", fmt.Errorf("no parser MAT synthesized")
	}
	var b strings.Builder
	b.WriteString("Figure 10: transformation of a parser to a MAT control block\n\n")
	b.WriteString("key = {\n")
	for _, k := range tbl.Keys {
		fmt.Fprintf(&b, "  %s : %s;\n", k.Expr, k.MatchKind)
	}
	b.WriteString("}\nentries (priority order):\n")
	for i, e := range tbl.Entries {
		var cells []string
		for _, ek := range e.Keys {
			switch {
			case ek.DontCare:
				cells = append(cells, "_")
			case ek.HasMask:
				cells = append(cells, fmt.Sprintf("%#x&&&%#x", ek.Value, ek.Mask))
			default:
				cells = append(cells, fmt.Sprintf("%#x", ek.Value))
			}
		}
		fmt.Fprintf(&b, "  %2d: (%s) : %s\n", i, strings.Join(cells, ", "), e.Action.Name)
	}
	fmt.Fprintf(&b, "default_action : %s\n", tbl.Default.Name)
	fmt.Fprintf(&b, "\npaper: 2 accept paths (54B eth-ipv4-tcp, 74B eth-ipv6-tcp); ours adds a\ntruncation guard per path (entries %d total)\n", len(tbl.Entries))
	return b.String(), nil
}

// Fig13Src is the §C packet-slicing example (A-B validation).
const Fig13Src = `
struct empty_t { }
struct nohdr_t { }
Prog(pkt p, im_t im, out bit<32> res);
Test(pkt p, im_t im, out bit<32> res);
Log(pkt p, im_t im, in bit<32> a, in bit<32> b);
program Validate : implements Orchestration {
  control C(pkt p, inout nohdr_t h, inout empty_t m, im_t im, out_buf ob) {
    pkt pm;
    pkt pt;
    im_t imm;
    im_t it;
    bit<32> hp;
    bit<32> ht;
    Prog() prog_i;
    Test() test_i;
    Log() log_i;
    apply {
      pm.copy_from(p);
      imm.copy_from(im);
      pt.copy_from(p);
      it.copy_from(im);
      prog_i.apply(p, im, hp);
      test_i.apply(pt, it, ht);
      if (hp != ht) {
        log_i.apply(pm, imm, hp, ht);
        ob.enqueue(pm, imm);
      }
      it.set_out_port(DROP);
      ob.enqueue(p, im);
      ob.enqueue(pt, it);
    }
  }
}
Validate(C) main;
`

// Figure13 computes the packet slices and PPS of the §C example.
func Figure13() (string, error) {
	p, err := frontend.CompileModule("fig13.up4", Fig13Src)
	if err != nil {
		return "", err
	}
	g := pdg.Build(p)
	slices := g.Slices()
	pps, err := g.BuildPPS()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 13: slicing for multi-packet processing\n\n")
	// Invert: node -> slice labels (1=pm, 2=p, 3=pt as in the figure).
	labelOf := map[string]string{"pm": "1", "$pkt": "2", "pt": "3"}
	nodeLabels := make(map[int][]string)
	for pkt, ids := range slices {
		for _, id := range ids {
			nodeLabels[id] = append(nodeLabels[id], labelOf[pkt])
		}
	}
	for _, n := range g.Nodes {
		ls := nodeLabels[n.ID]
		stmt := strings.TrimRight(ir.StmtString(n.Stmt), "\n")
		if i := strings.IndexByte(stmt, '\n'); i > 0 {
			stmt = stmt[:i] + " ..."
		}
		fmt.Fprintf(&b, "  /* %-5s */ %s\n", strings.Join(ls, ","), stmt)
	}
	b.WriteString("\nPacket-Processing Schedule:\n")
	for _, th := range pps.Threads {
		fmt.Fprintf(&b, "  thread %-5s nodes %v\n", th.Pkt, th.Nodes)
	}
	fmt.Fprintf(&b, "  edges %v\n  serialized order: %v\n", pps.Edges, pps.Order)
	return b.String(), nil
}
