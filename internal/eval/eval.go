// Package eval regenerates the paper's evaluation artifacts: Table 1
// (the module×program composition matrix), Table 2 (PHV resource
// overhead of µP4 vs monolithic on the modeled Tofino), Table 3 (MAU
// stage counts), and the worked examples of Fig. 9 (static analysis),
// Fig. 10 (parser→MAT), and Fig. 13 (packet slicing).
package eval

import (
	"fmt"
	"sort"
	"strings"

	"microp4/internal/backend/tna"
	"microp4/internal/ir"
	"microp4/internal/lib"
	"microp4/internal/midend"
	"microp4/internal/obs"
)

// Table1 renders the composition matrix (which library modules make up
// each composed program).
func Table1() string {
	// Collect all module rows in the paper's order.
	rows := []string{"ACL", "Decap", "Eth", "FW", "INT", "IPv4", "IPv6", "LB",
		"MPLS", "NAT", "NAT64", "NPTv6", "SRv4", "SRv6"}
	var b strings.Builder
	b.WriteString("Table 1: Composing µP4 modules to build dataplane programs\n\n")
	fmt.Fprintf(&b, "%-8s", "Module")
	for _, p := range lib.Programs {
		fmt.Fprintf(&b, " %-3s", p.Name)
	}
	b.WriteString("\n")
	for _, mod := range rows {
		fmt.Fprintf(&b, "%-8s", mod)
		for _, p := range lib.Programs {
			mark := " "
			for _, m := range p.Table1Row {
				if m == mod {
					mark = "x"
				}
			}
			fmt.Fprintf(&b, " %-3s", mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ResourcePair is one program's composed and monolithic Tofino reports.
type ResourcePair struct {
	Program  string
	Composed *tna.Report
	Mono     *tna.Report
}

// CompileAll maps every program of Table 1 onto the modeled Tofino via
// both paths.
func CompileAll() ([]ResourcePair, error) {
	opts := tna.DefaultOptions()
	var out []ResourcePair
	for _, m := range lib.Programs {
		main, mods, err := lib.CompileProgram(m.Name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		res, err := midend.Build(main, mods...)
		if err != nil {
			return nil, fmt.Errorf("%s: midend: %w", m.Name, err)
		}
		comp, err := tna.CompileComposed(res.Pipeline, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: composed: %w", m.Name, err)
		}
		mono, err := lib.CompileMonolithic(m.Name)
		if err != nil {
			return nil, fmt.Errorf("%s: mono: %w", m.Name, err)
		}
		tmono, err := midend.Transform(mono)
		if err != nil {
			return nil, fmt.Errorf("%s: transform: %w", m.Name, err)
		}
		mrep, err := tna.CompileMonolithic(tmono, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: mono backend: %w", m.Name, err)
		}
		out = append(out, ResourcePair{Program: m.Name, Composed: comp, Mono: mrep})
	}
	return out, nil
}

func pct(c, m int) string {
	if m == 0 {
		return "   inf"
	}
	return fmt.Sprintf("%6.2f", float64(c-m)/float64(m)*100)
}

// Table2 renders the PHV resource overhead of µP4 programs relative to
// their monolithic versions (usage(µP4)−usage(mono))/usage(mono)×100%.
func Table2(pairs []ResourcePair) string {
	var b strings.Builder
	b.WriteString("Table 2: Resource overhead of µP4 programs relative to monolithic\n")
	b.WriteString("(modeled Tofino PHV; percentages)\n\n")
	fmt.Fprintf(&b, "%-8s %22s %22s\n", "", "PHV Container Used", "")
	fmt.Fprintf(&b, "%-8s %6s %6s %6s %8s\n", "Program", "8b", "16b", "32b", "Bits")
	for _, p := range pairs {
		if !p.Mono.Feasible {
			fmt.Fprintf(&b, "%-8s NA: Monolithic failed to compile (%s)\n", p.Program, p.Mono.Reason)
			continue
		}
		if !p.Composed.Feasible {
			fmt.Fprintf(&b, "%-8s NA: µP4 program failed to compile (%s)\n", p.Program, p.Composed.Reason)
			continue
		}
		fmt.Fprintf(&b, "%-8s %s %s %s %s\n", p.Program,
			pct(p.Composed.Used8, p.Mono.Used8),
			pct(p.Composed.Used16, p.Mono.Used16),
			pct(p.Composed.Used32, p.Mono.Used32),
			pct(p.Composed.Bits, p.Mono.Bits))
	}
	b.WriteString("\nAbsolute usage (containers; bits):\n")
	fmt.Fprintf(&b, "%-8s %28s %28s\n", "Program", "µP4 composed", "monolithic")
	for _, p := range pairs {
		c, m := p.Composed, p.Mono
		comp := fmt.Sprintf("%d/%d/%d; %d", c.Used8, c.Used16, c.Used32, c.Bits)
		if !c.Feasible {
			comp = "failed"
		}
		mono := fmt.Sprintf("%d/%d/%d; %d", m.Used8, m.Used16, m.Used32, m.Bits)
		if !m.Feasible {
			mono = "failed"
		}
		fmt.Fprintf(&b, "%-8s %28s %28s\n", p.Program, comp, mono)
	}
	return b.String()
}

// Table3 renders the MAU stage counts.
func Table3(pairs []ResourcePair) string {
	var b strings.Builder
	b.WriteString("Table 3: Number of stages utilized on the modeled Tofino\n\n")
	fmt.Fprintf(&b, "%-16s", "#stages")
	for _, p := range pairs {
		fmt.Fprintf(&b, " %4s", p.Program)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-16s", "P4 monolithic")
	for _, p := range pairs {
		if p.Mono.Feasible {
			fmt.Fprintf(&b, " %4d", p.Mono.Stages)
		} else {
			fmt.Fprintf(&b, " %4s", "NA")
		}
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-16s", "µP4 composed")
	for _, p := range pairs {
		if p.Composed.Feasible {
			fmt.Fprintf(&b, " %4d", p.Composed.Stages)
		} else {
			fmt.Fprintf(&b, " %4s", "NA")
		}
	}
	b.WriteString("\n")
	return b.String()
}

// ModuleList renders the library inventory.
func ModuleList() string {
	names := lib.ModuleNames()
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("µP4 module library:\n")
	for _, n := range names {
		p, err := lib.CompileModuleIR(n)
		if err != nil {
			fmt.Fprintf(&b, "  %-8s (compile error: %v)\n", n, err)
			continue
		}
		fmt.Fprintf(&b, "  %-8s %-13s tables=%d actions=%d\n",
			n, p.Interface, len(p.Tables), len(p.Actions))
	}
	return b.String()
}

// TimingsTable compiles the full P1–P9 suite through the composed path
// (frontend → midend → Tofino backend) with an obs.PassTimer attached
// and renders one aggregated per-stage breakdown. Same-name stages
// merge across programs, so each row is the suite-wide total for that
// stage.
func TimingsTable() (string, error) {
	pt := new(obs.PassTimer)
	for _, m := range lib.Programs {
		main, mods, err := lib.CompileProgramTimed(m.Name, pt)
		if err != nil {
			return "", fmt.Errorf("%s: %w", m.Name, err)
		}
		res, err := midend.BuildWith(midend.Options{Timer: pt}, main, mods...)
		if err != nil {
			return "", fmt.Errorf("%s: midend: %w", m.Name, err)
		}
		stop := pt.Time("backend")
		rep, err := tna.CompileComposed(res.Pipeline, tna.DefaultOptions())
		if err != nil {
			return "", fmt.Errorf("%s: backend: %w", m.Name, err)
		}
		stop(ir.CountStmts(res.Pipeline.Stmts), rep.Tables)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Compiler pass timings over the P1-P9 suite (aggregated):\n\n")
	b.WriteString(pt.String())
	return b.String(), nil
}

// midendBuild is a thin seam for the figure renderers.
func midendBuild(main *ir.Program, mods ...*ir.Program) (*midend.Result, error) {
	return midend.Build(main, mods...)
}
