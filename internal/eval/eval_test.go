package eval

import (
	"strings"
	"testing"
)

func TestTable1Rendering(t *testing.T) {
	out := Table1()
	if !strings.Contains(out, "Eth") || !strings.Contains(out, "P7") {
		t.Errorf("table 1 incomplete:\n%s", out)
	}
	// Eth appears in all eleven programs.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Eth") && strings.Count(line, "x") != 11 {
			t.Errorf("Eth row should have 11 marks: %q", line)
		}
		if strings.HasPrefix(line, "IPv4") && strings.Count(line, "x") != 9 {
			t.Errorf("IPv4 row should have 9 marks: %q", line)
		}
		if strings.HasPrefix(line, "SRv6") && strings.Count(line, "x") != 1 {
			t.Errorf("SRv6 row should have 1 mark: %q", line)
		}
	}
}

func TestTables2And3(t *testing.T) {
	pairs, err := CompileAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 11 {
		t.Fatalf("got %d pairs, want 11", len(pairs))
	}
	t2 := Table2(pairs)
	if !strings.Contains(t2, "NA: Monolithic failed to compile") {
		t.Errorf("table 2 must report the P7 monolithic failure:\n%s", t2)
	}
	t3 := Table3(pairs)
	if !strings.Contains(t3, "NA") {
		t.Errorf("table 3 must show NA for monolithic P7:\n%s", t3)
	}
	t.Logf("\n%s\n%s\n%s", Table1(), t2, t3)
}

func TestFigures(t *testing.T) {
	f9, res, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if res.Main().El != 78 || res.Main().Bs != 98 {
		t.Errorf("figure 9: El=%d Bs=%d, want 78/98", res.Main().El, res.Main().Bs)
	}
	f10, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f10, "bs[") {
		t.Errorf("figure 10 missing byte-stack keys:\n%s", f10)
	}
	f13, err := Figure13()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f13, "thread") || !strings.Contains(f13, "serialized order") {
		t.Errorf("figure 13 incomplete:\n%s", f13)
	}
	t.Logf("\n%s\n%s\n%s", f9, f10, f13)
}

func TestModuleList(t *testing.T) {
	out := ModuleList()
	for _, m := range []string{"IPv4", "IPv6", "MPLS", "NAT", "NPTv6", "SRv4", "SRv6", "ACL", "L3"} {
		if !strings.Contains(out, m) {
			t.Errorf("module list missing %s:\n%s", m, out)
		}
	}
}
