// Package netsim is the chaos-grade simulated network: a Network of
// named switches joined by Links, each link carrying a deterministic,
// seed-driven fault model (drop, duplicate, reorder, bit-flip,
// truncate, link down) and optional control-plane churn racing the
// traffic. It promotes the hand-wired topologies of the early tests
// into a first-class subsystem the µP4 paper's composition claims can
// be stress-checked against: one malformed or hostile packet exercises
// every linked module at once, and the runtime must degrade gracefully
// — typed errors, counted faults, never a panic.
//
// Determinism contract: for a fixed network seed, topology, and
// injected traffic, Run produces an identical fault event sequence and
// identical final counters on every run. Each link draws from its own
// splitmix-derived stream, so adding a link never perturbs the others.
package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"microp4"
	"microp4/internal/obs"
	"microp4/internal/sim"
	"microp4/internal/trace"
)

// Processor is the node abstraction: anything that turns a received
// packet into output packets. *microp4.Switch implements it.
type Processor interface {
	Process(pkt []byte, inPort uint64) ([]microp4.Output, error)
}

// HopProcessor is the traced node abstraction: a Processor that accepts
// a distributed-tracing context for the hop and returns the recorded
// hop span's id (so the network can parent link spans under it).
// *microp4.Switch implements it. Nodes that don't (e.g. the ctrlplane
// client) process untraced.
type HopProcessor interface {
	ProcessHop(pkt []byte, inPort uint64, hc trace.HopContext) ([]microp4.Output, uint64, error)
}

// endpoint is one attachment point: a node's port.
type endpoint struct {
	node string
	port uint64
}

func (e endpoint) String() string { return fmt.Sprintf("%s:%d", e.node, e.port) }

// Node is one switch in the network.
type Node struct {
	name  string
	proc  Processor
	churn []*Churn
}

// Link is one directed edge with its own fault stream. Connect creates
// a pair (one per direction), each with an independent stream.
type Link struct {
	name      string
	from, to  endpoint
	model     FaultModel
	rng       *rand.Rand
	down      bool
	partUntil uint64   // end tick of an open partition window
	held      *linkPkt // a reorder-held packet, trace context included
}

// Name returns the link's "from->to" name, the key fault events carry.
func (l *Link) Name() string { return l.name }

// Delivery is a packet that left the network on an unconnected port.
// Trace is the id of the distributed trace the packet belonged to and
// Span the id of the hop span that emitted it (both 0 when tracing was
// off or the packet was never given a context) — the join keys between
// an egressed packet's in-band telemetry and its host-side spans.
// Walking Span's ParentID chain recovers this exact copy's hop
// sequence even when link faults duplicated the packet mid-path.
type Delivery struct {
	Node  string
	Port  uint64
	Data  []byte
	Trace uint64
	Span  uint64
}

// RunStats summarizes one Run. All counts are deterministic for a
// fixed seed, topology, and traffic.
type RunStats struct {
	Steps      int // deliveries consumed (packets processed by nodes)
	Injected   int
	Egressed   int // packets that left on unconnected ports
	NodeDrops  int // Process calls that produced no output
	ProcErrors int // typed errors returned by Process (packet lost, run continues)
	Faults     map[FaultKind]int
}

// Network is a simulated topology under test.
type Network struct {
	seed  uint64
	nodes map[string]*Node
	order []string           // node names in AddSwitch order (deterministic iteration)
	links map[endpoint]*Link // keyed by transmitting endpoint
	lseq  []*Link            // links in Connect order
	queue []delivery         // in-flight packets, FIFO
	eg    map[string][]Delivery

	now      uint64 // virtual clock, in ticks (see clock.go)
	tseq     uint64 // timer creation sequence
	timers   timerQueue
	watchdog int // idle-timer-fire limit; 0 = DefaultWatchdogFires, <0 = off

	seq    uint64 // fault event sequence
	sinks  []func(FaultEvent)
	bus    *sim.Bus // fault events mirrored as trace events
	tracer *trace.Recorder
	reg    *obs.Registry
	faultC map[string]*obs.Counter // per (link, kind)
	delivC map[string]*obs.Counter // per link
	errC   map[string]*obs.Counter // per (node, class)
	stats  RunStats
}

// New returns an empty network whose fault and churn streams derive
// from seed.
func New(seed uint64) *Network {
	return &Network{
		seed:  seed,
		nodes: make(map[string]*Node),
		links: make(map[endpoint]*Link),
		eg:    make(map[string][]Delivery),
		bus:   sim.NewBus(),
		stats: RunStats{Faults: make(map[FaultKind]int)},
	}
}

// AddSwitch registers a named node. Names must be unique.
func (n *Network) AddSwitch(name string, p Processor) error {
	if name == "" || p == nil {
		return fmt.Errorf("netsim: switch needs a name and a processor")
	}
	if _, dup := n.nodes[name]; dup {
		return fmt.Errorf("netsim: duplicate switch %q", name)
	}
	n.nodes[name] = &Node{name: name, proc: p}
	n.order = append(n.order, name)
	return nil
}

// Connect joins a:aPort and b:bPort with a duplex link: two directed
// edges sharing the fault model but drawing from independent streams.
// A transmitting endpoint can carry at most one link.
func (n *Network) Connect(a string, aPort uint64, b string, bPort uint64, m FaultModel) error {
	if _, err := n.connectDirected(endpoint{a, aPort}, endpoint{b, bPort}, m); err != nil {
		return err
	}
	_, err := n.connectDirected(endpoint{b, bPort}, endpoint{a, aPort}, m)
	return err
}

func (n *Network) connectDirected(from, to endpoint, m FaultModel) (*Link, error) {
	if n.nodes[from.node] == nil || n.nodes[to.node] == nil {
		return nil, fmt.Errorf("netsim: link %v->%v references unknown switch", from, to)
	}
	if n.links[from] != nil {
		return nil, fmt.Errorf("netsim: endpoint %v already linked", from)
	}
	name := from.String() + "->" + to.String()
	l := &Link{
		name: name, from: from, to: to, model: m,
		rng: rand.New(rand.NewSource(linkSeed(n.seed, name))),
	}
	n.links[from] = l
	n.lseq = append(n.lseq, l)
	return l, nil
}

// SetLinkDown marks the directed link transmitting from node:port (and
// its reverse, when present) administratively down or up. Packets sent
// over a down link are lost with a FaultLinkDown event.
func (n *Network) SetLinkDown(node string, port uint64, down bool) error {
	l := n.links[endpoint{node, port}]
	if l == nil {
		return fmt.Errorf("netsim: no link at %s:%d", node, port)
	}
	l.down = down
	if rev := n.links[l.to]; rev != nil && rev.to == l.from {
		rev.down = down
	}
	return nil
}

// AddChurn attaches a deterministic control-plane churn injector to a
// node: before each packet the node processes, the injector performs
// opsPerPacket random control-plane operations (AddEntry, SetDefault,
// ClearTable, SetMulticastGroup) drawn from its own seed stream. The
// node's processor must also implement ChurnTarget (as
// *microp4.Switch does); when it additionally implements
// ValidatedChurnTarget, churn routes through the error-returning API
// and — if EnableMetrics was called first — counts rejections in
// up4_churn_rejects_total{node}.
func (n *Network) AddChurn(node string, cfg ChurnConfig, opsPerPacket int) error {
	nd := n.nodes[node]
	if nd == nil {
		return fmt.Errorf("netsim: unknown switch %q", node)
	}
	target, ok := nd.proc.(ChurnTarget)
	if !ok {
		return fmt.Errorf("netsim: switch %q does not accept control-plane churn", node)
	}
	c := NewChurn(splitmix64(n.seed^uint64(len(nd.churn)+1)^hashString(node)), target, cfg)
	c.ops = opsPerPacket
	if n.reg != nil {
		if _, validated := nd.proc.(ValidatedChurnTarget); validated {
			c.CountRejects(n.reg.Counter("up4_churn_rejects_total",
				"Churn operations rejected by the validated control API", obs.L("node", node)))
		}
	}
	nd.churn = append(nd.churn, c)
	return nil
}

// OnFault attaches a fault event sink and returns its detach function.
// Sinks run synchronously inside Run, in attach order.
func (n *Network) OnFault(fn func(FaultEvent)) (cancel func()) {
	n.sinks = append(n.sinks, fn)
	i := len(n.sinks) - 1
	return func() { n.sinks[i] = nil }
}

// Bus returns the network's trace bus: every fault event is mirrored
// onto it as a sim.TraceEvent{Kind: "fault"}, so chaos runs surface in
// the same stream as parser/table traces.
func (n *Network) Bus() *sim.Bus { return n.bus }

// SetTracing attaches (or, with nil, detaches) a distributed-tracing
// flight recorder to the network. With a recorder attached, every
// injected packet starts a trace whose context rides its deliveries
// end-to-end: nodes implementing HopProcessor record one hop span per
// packet processed (with the packet's deterministic queue depth — the
// ticks it waited in flight — surfaced as the QUEUE_DEPTH intrinsic),
// and every link traversal records a link span carrying the fault
// events injected on it. Attach the SAME recorder to the member
// switches (Switch.SetTracing) so hop and link spans land in one ring.
func (n *Network) SetTracing(rec *trace.Recorder) { n.tracer = rec }

// Tracing returns the recorder attached by SetTracing, or nil.
func (n *Network) Tracing() *trace.Recorder { return n.tracer }

// EnableMetrics attaches an obs registry counting per-link deliveries
// and faults and per-node processing errors. Idempotent.
func (n *Network) EnableMetrics() *obs.Registry {
	if n.reg == nil {
		n.reg = obs.NewRegistry()
		n.faultC = make(map[string]*obs.Counter)
		n.delivC = make(map[string]*obs.Counter)
		n.errC = make(map[string]*obs.Counter)
	}
	return n.reg
}

// Metrics returns the registry attached by EnableMetrics, or nil.
func (n *Network) Metrics() *obs.Registry { return n.reg }

// emit publishes one fault event everywhere it is observable: the
// attached sinks, the trace bus, the obs counters, and the run stats.
func (n *Network) emit(link string, kind FaultKind, detail string) {
	n.seq++
	e := FaultEvent{Seq: n.seq, Link: link, Kind: kind, Detail: detail}
	for _, fn := range n.sinks {
		if fn != nil {
			fn(e)
		}
	}
	if n.bus.Active() {
		n.bus.Publish(sim.TraceEvent{Kind: "fault", Name: link, Detail: string(kind) + " " + detail})
	}
	n.stats.Faults[kind]++
	if n.reg != nil {
		key := link + "\x00" + string(kind)
		c := n.faultC[key]
		if c == nil {
			c = n.reg.Counter("up4_link_faults_total", "Faults injected per link and kind",
				obs.L("link", link), obs.L("kind", string(kind)))
			n.faultC[key] = c
		}
		c.Inc()
	}
}

// delivery is one in-flight packet with its trace context: the trace
// it belongs to (0 = untraced), the span it descends from, and the tick
// it was sent.
type delivery struct {
	to     endpoint
	data   []byte
	tid    uint64
	parent uint64
	sentAt uint64
}

// Inject enqueues a packet arriving from outside the network at
// node:port. Delivery happens on the next Run. With tracing attached,
// each injected packet roots a fresh trace.
func (n *Network) Inject(node string, port uint64, data []byte) error {
	if n.nodes[node] == nil {
		return fmt.Errorf("netsim: unknown switch %q", node)
	}
	n.queue = append(n.queue, delivery{
		to:     endpoint{node, port},
		data:   append([]byte(nil), data...),
		tid:    n.tracer.NextID(), // 0 when tracing is off
		sentAt: n.now,
	})
	n.stats.Injected++
	return nil
}

// DefaultStepBudget bounds Run when maxSteps <= 0: generous enough for
// any sane topology, small enough that a pathological forwarding loop
// terminates the run instead of spinning forever.
const DefaultStepBudget = 1 << 20

// DefaultWatchdogFires is how many consecutive fruitless timer fires —
// no packet entered the queue, nothing egressed — Run tolerates before
// declaring the node set permanently parked. Healthy quiesce patterns
// (retry ladders against a dead peer, canary-timeout polls) burn at
// most dozens of fruitless fires before parking or giving up; a poller
// that re-arms forever without ever quiescing burns them linearly and
// is exactly the silent spin the watchdog converts into a diagnostic.
const DefaultWatchdogFires = 10000

// SetWatchdog overrides the run watchdog's tolerance for consecutive
// fruitless timer fires: 0 restores DefaultWatchdogFires, negative
// disables the watchdog entirely.
func (n *Network) SetWatchdog(fires int) { n.watchdog = fires }

func (n *Network) watchdogLimit() int {
	if n.watchdog != 0 {
		return n.watchdog
	}
	return DefaultWatchdogFires
}

// Run drains the delivery queue: each step pops one in-flight packet
// (advancing the virtual clock one tick), runs any churn injectors on
// the destination node, processes the packet, and transmits the outputs
// over their links (applying faults) or collects them as egress when
// the port has no link. When the queue is empty it releases
// reorder-held packets, then fires pending virtual-time timers (which
// may send more packets — the ctrlplane's retransmissions); it returns
// when the network is truly quiet or the step budget is exhausted.
//
// Typed processing errors do not abort the run — the packet is lost,
// the error is counted (per node and class when metrics are enabled),
// and chaos continues; that is the degradation the subsystem exists to
// exercise. Run only returns an error on a step-budget overrun.
func (n *Network) Run(maxSteps int) (RunStats, error) {
	if maxSteps <= 0 {
		maxSteps = DefaultStepBudget
	}
	steps := 0
	idleFires := 0 // consecutive timer fires that moved no packet
	for {
		for len(n.queue) > 0 {
			if steps >= maxSteps {
				return n.stats, fmt.Errorf("netsim: step budget %d exhausted with %d packets in flight (forwarding loop?)", maxSteps, len(n.queue))
			}
			steps++
			n.stats.Steps++
			n.now++
			d := n.queue[0]
			n.queue = n.queue[1:]
			node := n.nodes[d.to.node]
			for _, c := range node.churn {
				c.StepN(c.ops)
			}
			var outs []microp4.Output
			var err error
			hopSpan := uint64(0)
			if hp, ok := node.proc.(HopProcessor); ok && n.tracer != nil && d.tid != 0 {
				// Queue depth: ticks the packet waited in flight beyond the
				// minimum one-tick hop — a pure function of the seed.
				var q uint64
				if n.now > d.sentAt {
					q = n.now - d.sentAt - 1
				}
				outs, hopSpan, err = hp.ProcessHop(d.data, d.to.port, trace.HopContext{
					TraceID: d.tid, ParentID: d.parent, Node: node.name, Tick: n.now, Qdepth: q,
				})
			} else {
				outs, err = node.proc.Process(d.data, d.to.port)
			}
			if err != nil {
				n.stats.ProcErrors++
				n.countProcError(node.name, err)
				n.emit(d.to.String(), FaultProcError, errClass(err))
				continue
			}
			if len(outs) == 0 {
				n.stats.NodeDrops++
				continue
			}
			for _, o := range outs {
				n.transmit(endpoint{node.name, o.Port}, o.Data, d.tid, hopSpan)
			}
		}
		// Drain reorder-held packets so a quiet network leaves nothing
		// in limbo; deterministic order (links in Connect order). A
		// release re-fills the queue, so loop until truly quiet.
		released := false
		for _, l := range n.lseq {
			if l.held != nil {
				pk := *l.held
				l.held = nil
				n.emit(l.name, FaultReorder, fmt.Sprintf("released %dB at drain", len(pk.data)))
				n.deliver(l, pk)
				released = true
			}
		}
		if released {
			continue
		}
		// Quiet network: advance virtual time to the next timer. Timer
		// callbacks count against the step budget too — a timer that
		// perpetually reschedules itself must not hang Run. The watchdog
		// tracks whether firing timers still moves packets: a long streak
		// of fires that neither enqueued nor egressed anything while more
		// timers stay pending means some node set re-arms forever without
		// quiescing, and Run fails with the owners instead of silently
		// spinning to the step budget.
		if steps < maxSteps {
			egBefore := n.stats.Egressed
			if n.fireTimer() {
				steps++
				if len(n.queue) > 0 || n.stats.Egressed != egBefore {
					idleFires = 0
				} else if limit := n.watchdogLimit(); limit > 0 {
					idleFires++
					if idleFires >= limit && n.timers.Len() > 0 {
						return n.stats, fmt.Errorf(
							"netsim: watchdog: %d consecutive timer fires moved no packets with %d timers still pending — parked node set (timer owners: %s)",
							idleFires, n.timers.Len(), strings.Join(n.pendingTimerOwners(), ", "))
					}
				}
				continue
			}
		}
		if n.timers.Len() > 0 && steps >= maxSteps {
			return n.stats, fmt.Errorf("netsim: step budget %d exhausted with timers pending", maxSteps)
		}
		return n.stats, nil
	}
}

// SendFrom transmits a packet out of node:port mid-run, exactly as if
// the node's Process had emitted it: over the endpoint's link with
// faults applied, or to the egress collector when unconnected. It is
// how non-packet-triggered senders — the ctrlplane client's initial
// sends and retransmission timers — originate traffic. Single-threaded
// with Run: call it only from inside Process, a timer callback, or
// before/after Run.
func (n *Network) SendFrom(node string, port uint64, data []byte) error {
	if n.nodes[node] == nil {
		return fmt.Errorf("netsim: unknown switch %q", node)
	}
	n.transmit(endpoint{node, port}, append([]byte(nil), data...), 0, 0)
	return nil
}

// transmit sends one packet out of an endpoint: over its link with
// faults applied, or to the egress collector when unconnected. With
// tracing on and a trace context attached (tid != 0), the traversal
// records one link span parented under the transmitting hop span,
// carrying the fault events injected on it; deliveries descend from the
// link span, and a transmission whose packet never made it out (drop,
// link down) is marked lost.
func (n *Network) transmit(from endpoint, data []byte, tid, parent uint64) {
	l := n.links[from]
	if l == nil {
		n.eg[from.node] = append(n.eg[from.node],
			Delivery{Node: from.node, Port: from.port, Data: data, Trace: tid, Span: parent})
		n.stats.Egressed++
		return
	}
	emit := func(k FaultKind, detail string) { n.emit(l.name, k, detail) }
	var sp *trace.Span
	if n.tracer != nil && tid != 0 {
		sp = &trace.Span{
			TraceID: tid, SpanID: n.tracer.NextID(), ParentID: parent,
			Kind: "link", Name: l.name, Start: n.now, End: n.now,
		}
		base := emit
		emit = func(k FaultKind, detail string) {
			sp.Event(n.now, string(k), detail)
			if k == FaultDrop || k == FaultLinkDown {
				sp.Err = "lost"
			}
			base(k, detail)
		}
		parent = sp.SpanID
	}
	pk := linkPkt{data: data, tid: tid, parent: parent, sentAt: n.now}
	for _, out := range l.applyFaults(pk, emit) {
		n.deliver(l, out)
	}
	if sp != nil {
		n.tracer.Record(sp)
	}
}

func (n *Network) deliver(l *Link, pk linkPkt) {
	n.queue = append(n.queue, delivery{
		to: l.to, data: pk.data, tid: pk.tid, parent: pk.parent, sentAt: pk.sentAt,
	})
	if n.reg != nil {
		c := n.delivC[l.name]
		if c == nil {
			c = n.reg.Counter("up4_link_deliveries_total", "Packets delivered per link", obs.L("link", l.name))
			n.delivC[l.name] = c
		}
		c.Inc()
	}
}

func (n *Network) countProcError(node string, err error) {
	if n.reg == nil {
		return
	}
	key := node + "\x00" + errClass(err)
	c := n.errC[key]
	if c == nil {
		c = n.reg.Counter("up4_node_proc_errors_total", "Typed processing errors per node and class",
			obs.L("node", node), obs.L("class", errClass(err)))
		n.errC[key] = c
	}
	c.Inc()
}

func errClass(err error) string {
	if class, ok := sim.ClassOf(err); ok {
		return class.String()
	}
	return "untyped"
}

// Egress returns the packets that left the network at a node's
// unconnected ports, in emission order.
func (n *Network) Egress(node string) []Delivery { return n.eg[node] }

// EgressAll returns every egressed packet grouped by node name, with
// nodes sorted for deterministic reporting.
func (n *Network) EgressAll() []Delivery {
	names := make([]string, 0, len(n.eg))
	for name := range n.eg {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Delivery
	for _, name := range names {
		out = append(out, n.eg[name]...)
	}
	return out
}

// Stats returns the running totals (also returned by Run).
func (n *Network) Stats() RunStats { return n.stats }

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
