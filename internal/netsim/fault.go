package netsim

import (
	"fmt"
	"hash/fnv"
)

// FaultKind names one class of injected link fault.
type FaultKind string

const (
	// FaultDrop: the packet is silently discarded.
	FaultDrop FaultKind = "drop"
	// FaultDuplicate: the packet is delivered twice.
	FaultDuplicate FaultKind = "duplicate"
	// FaultReorder: the packet is held and delivered after the next one
	// transmitted on the same link.
	FaultReorder FaultKind = "reorder"
	// FaultBitFlip: one random bit of the payload is inverted.
	FaultBitFlip FaultKind = "bit-flip"
	// FaultTruncate: the packet is cut at a random byte offset.
	FaultTruncate FaultKind = "truncate"
	// FaultLinkDown: the packet hit an administratively-down link.
	FaultLinkDown FaultKind = "link-down"
	// FaultPartition: the packet fell into a seeded partition window —
	// a transient outage during which the link delivers nothing.
	FaultPartition FaultKind = "partition"
	// FaultProcError: not a link fault — a node returned a typed error
	// processing a delivery (the packet is lost, the run continues).
	FaultProcError FaultKind = "proc-error"
)

// FaultKinds lists every fault class, in stable order (for reports).
var FaultKinds = []FaultKind{
	FaultDrop, FaultDuplicate, FaultReorder, FaultBitFlip, FaultTruncate,
	FaultLinkDown, FaultPartition,
}

// FaultModel is a link's fault configuration: per-packet probabilities
// of each fault class, drawn from the link's deterministic seed-derived
// stream. The zero value is a perfect link.
type FaultModel struct {
	Drop      float64 // probability of dropping a packet
	Duplicate float64 // probability of delivering a packet twice
	Reorder   float64 // probability of holding a packet behind the next
	BitFlip   float64 // probability of flipping one random bit
	Truncate  float64 // probability of truncating at a random offset

	// Partition is the per-packet probability of opening a partition
	// window: a transient outage of PartitionLen virtual ticks during
	// which the link delivers nothing (the triggering packet included).
	// Windows are drawn from the link's seeded stream, so a run's
	// partition schedule is reproducible.
	Partition    float64
	PartitionLen uint64 // window length in virtual ticks (0 = 1 tick)
}

// Lossless reports whether the model can never perturb a packet.
func (m FaultModel) Lossless() bool {
	return m.Drop == 0 && m.Duplicate == 0 && m.Reorder == 0 && m.BitFlip == 0 &&
		m.Truncate == 0 && m.Partition == 0
}

// FaultEvent is one injected fault, stamped with the network-global
// sequence number. For a fixed seed and traffic, the sequence of fault
// events is identical run to run — chaos runs are reproducible.
type FaultEvent struct {
	Seq    uint64    `json:"seq"`
	Link   string    `json:"link"` // "s1:1->s2:0"
	Kind   FaultKind `json:"kind"`
	Detail string    `json:"detail,omitempty"`
}

func (e FaultEvent) String() string {
	return fmt.Sprintf("%5d %-22s %-9s %s", e.Seq, e.Link, e.Kind, e.Detail)
}

// linkSeed derives a link's private RNG seed from the network seed and
// the link's name, so every link has an independent deterministic
// stream and adding a link never perturbs the streams of others.
func linkSeed(networkSeed uint64, linkName string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(linkName))
	return int64(splitmix64(networkSeed ^ h.Sum64()))
}

// splitmix64 is the canonical seed-mixing finalizer: even adjacent
// network seeds yield uncorrelated link streams.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// linkPkt is one packet on a link, with its distributed-trace context:
// the trace it belongs to, the span its delivery descends from (the
// link span of the transmission that carried it), and the tick it was
// transmitted (whose distance to the processing tick is the
// deterministic queue-depth the telemetry module stamps in-band). A
// reorder-held packet keeps its original context across the hold.
type linkPkt struct {
	data   []byte
	tid    uint64
	parent uint64
	sentAt uint64
}

// applyFaults runs one transmitted packet through the link's fault
// model. It returns the packets to deliver, in order (zero on drop, two
// on duplicate or on a reorder release), emitting one event per fault
// via emit. The data slice is owned by the caller; mutating faults copy
// before flipping.
func (l *Link) applyFaults(pk linkPkt, emit func(FaultKind, string)) []linkPkt {
	if l.down {
		emit(FaultLinkDown, fmt.Sprintf("%dB lost", len(pk.data)))
		return nil
	}
	m := l.model
	if m.Partition > 0 {
		// The extra RNG draw is gated on the model using partitions at
		// all, so partition-free links keep their historical streams.
		if pk.sentAt < l.partUntil {
			emit(FaultPartition, fmt.Sprintf("%dB lost (window open to t=%d)", len(pk.data), l.partUntil))
			return nil
		}
		if l.rng.Float64() < m.Partition {
			plen := m.PartitionLen
			if plen == 0 {
				plen = 1
			}
			l.partUntil = pk.sentAt + plen
			emit(FaultPartition, fmt.Sprintf("%dB lost (opened %d-tick window)", len(pk.data), plen))
			return nil
		}
	}
	if m.Lossless() && l.held == nil {
		return []linkPkt{pk}
	}
	r := l.rng
	if r.Float64() < m.Drop {
		emit(FaultDrop, fmt.Sprintf("%dB lost", len(pk.data)))
		return l.flushHeld(nil)
	}
	if r.Float64() < m.BitFlip && len(pk.data) > 0 {
		bit := r.Intn(len(pk.data) * 8)
		pk.data = append([]byte(nil), pk.data...)
		pk.data[bit/8] ^= 1 << uint(bit%8)
		emit(FaultBitFlip, fmt.Sprintf("bit %d", bit))
	}
	if r.Float64() < m.Truncate && len(pk.data) > 1 {
		cut := 1 + r.Intn(len(pk.data)-1)
		pk.data = pk.data[:cut]
		emit(FaultTruncate, fmt.Sprintf("to %dB", cut))
	}
	out := []linkPkt{pk}
	if r.Float64() < m.Duplicate {
		dup := pk
		dup.data = append([]byte(nil), pk.data...)
		out = append(out, dup)
		emit(FaultDuplicate, fmt.Sprintf("%dB twice", len(pk.data)))
	}
	if r.Float64() < m.Reorder {
		// Hold this packet; it is released behind the next transmission
		// (or at drain time). Holding a second packet releases the first.
		held := l.held
		l.held = &out[len(out)-1]
		out = out[:len(out)-1]
		if held != nil {
			out = append(out, *held)
		}
		emit(FaultReorder, fmt.Sprintf("%dB held", len(l.held.data)))
		return out
	}
	return l.flushHeld(out)
}

// flushHeld releases a previously reordered packet behind out.
func (l *Link) flushHeld(out []linkPkt) []linkPkt {
	if l.held != nil {
		out = append(out, *l.held)
		l.held = nil
	}
	return out
}
