package netsim

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"microp4"
	"microp4/internal/sim"
)

// fwd is a stub processor: forwards every packet out a fixed port,
// optionally failing or consuming instead.
type fwd struct {
	outPort uint64
	err     error
	drop    bool
	seen    int
}

func (f *fwd) Process(pkt []byte, inPort uint64) ([]microp4.Output, error) {
	f.seen++
	if f.err != nil {
		return nil, f.err
	}
	if f.drop {
		return nil, nil
	}
	return []microp4.Output{{Port: f.outPort, Data: pkt}}, nil
}

// line builds s1 -> s2 -> s3, all forwarding 0 -> 1, with the given
// fault model on every link.
func line(t *testing.T, seed uint64, m FaultModel) (*Network, []*fwd) {
	t.Helper()
	n := New(seed)
	procs := make([]*fwd, 3)
	for i := range procs {
		procs[i] = &fwd{outPort: 1}
		if err := n.AddSwitch(fmt.Sprintf("s%d", i+1), procs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Connect("s1", 1, "s2", 0, m); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("s2", 1, "s3", 0, m); err != nil {
		t.Fatal(err)
	}
	return n, procs
}

func TestLosslessDelivery(t *testing.T) {
	n, procs := line(t, 1, FaultModel{})
	payload := []byte("end-to-end")
	if err := n.Inject("s1", 0, payload); err != nil {
		t.Fatal(err)
	}
	st, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	out := n.Egress("s3")
	if len(out) != 1 || !bytes.Equal(out[0].Data, payload) || out[0].Port != 1 {
		t.Fatalf("egress = %+v", out)
	}
	if st.Steps != 3 || st.Egressed != 1 || st.Injected != 1 {
		t.Errorf("stats = %+v", st)
	}
	for i, p := range procs {
		if p.seen != 1 {
			t.Errorf("s%d processed %d packets", i+1, p.seen)
		}
	}
}

func TestDropFault(t *testing.T) {
	n, _ := line(t, 2, FaultModel{Drop: 1})
	var events []FaultEvent
	n.OnFault(func(e FaultEvent) { events = append(events, e) })
	_ = n.Inject("s1", 0, []byte("doomed"))
	st, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Egress("s3")) != 0 {
		t.Error("packet survived a 100% lossy link")
	}
	if len(events) != 1 || events[0].Kind != FaultDrop || events[0].Link != "s1:1->s2:0" {
		t.Fatalf("events = %+v", events)
	}
	if st.Faults[FaultDrop] != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBitFlipAndTruncateMutate(t *testing.T) {
	n, _ := line(t, 3, FaultModel{BitFlip: 1})
	payload := bytes.Repeat([]byte{0xAA}, 32)
	_ = n.Inject("s1", 0, payload)
	if _, err := n.Run(0); err != nil {
		t.Fatal(err)
	}
	out := n.Egress("s3")
	if len(out) != 1 {
		t.Fatalf("egress = %+v", out)
	}
	if bytes.Equal(out[0].Data, payload) {
		t.Error("bit-flip link delivered the packet unmodified")
	}
	// The original buffer must not be mutated (copy-on-flip).
	if !bytes.Equal(payload, bytes.Repeat([]byte{0xAA}, 32)) {
		t.Error("fault injection mutated the caller's buffer")
	}

	n2, _ := line(t, 4, FaultModel{Truncate: 1})
	_ = n2.Inject("s1", 0, payload)
	if _, err := n2.Run(0); err != nil {
		t.Fatal(err)
	}
	out = n2.Egress("s3")
	if len(out) != 1 || len(out[0].Data) >= len(payload) {
		t.Fatalf("truncate egress = %d pkts", len(out))
	}
}

func TestDuplicateFault(t *testing.T) {
	n := New(5)
	a, b := &fwd{outPort: 1}, &fwd{outPort: 1}
	_ = n.AddSwitch("a", a)
	_ = n.AddSwitch("b", b)
	if err := n.Connect("a", 1, "b", 0, FaultModel{Duplicate: 1}); err != nil {
		t.Fatal(err)
	}
	_ = n.Inject("a", 0, []byte("twin"))
	st, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Egress("b")); got != 2 {
		t.Errorf("duplicated delivery count = %d, want 2", got)
	}
	if st.Faults[FaultDuplicate] != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestReorderSwapsPackets exercises the hold/release mechanics directly
// on a Link: a held packet is released behind the NEXT transmission.
func TestReorderSwapsPackets(t *testing.T) {
	l := &Link{name: "x", model: FaultModel{Reorder: 1}, rng: rand.New(rand.NewSource(linkSeed(0, "x")))}
	emit := func(FaultKind, string) {}
	if out := l.applyFaults(linkPkt{data: []byte{1}}, emit); len(out) != 0 {
		t.Fatalf("first packet not held: %v", out)
	}
	l.model = FaultModel{} // second packet sails through, releasing the first
	out := l.applyFaults(linkPkt{data: []byte{2}}, emit)
	if len(out) != 2 || out[0].data[0] != 2 || out[1].data[0] != 1 {
		t.Fatalf("release order = %v; want [2],[1]", out)
	}
}

// TestReorderDrainsHeldPackets checks Run never strands a held packet:
// a lone reordered packet is released at drain time and still delivered.
func TestReorderDrainsHeldPackets(t *testing.T) {
	n := New(6)
	a, b := &fwd{outPort: 1}, &fwd{outPort: 1}
	_ = n.AddSwitch("a", a)
	_ = n.AddSwitch("b", b)
	if err := n.Connect("a", 1, "b", 0, FaultModel{Reorder: 1}); err != nil {
		t.Fatal(err)
	}
	_ = n.Inject("a", 0, []byte{1})
	_ = n.Inject("a", 0, []byte{2})
	st, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Egress("b")); got != 2 {
		t.Fatalf("egress count = %d; want 2 (held packets must drain)", got)
	}
	if st.Faults[FaultReorder] == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLinkDown(t *testing.T) {
	n, _ := line(t, 7, FaultModel{})
	if err := n.SetLinkDown("s2", 1, true); err != nil {
		t.Fatal(err)
	}
	var events []FaultEvent
	n.OnFault(func(e FaultEvent) { events = append(events, e) })
	_ = n.Inject("s1", 0, []byte("blocked"))
	st, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Egress("s3")) != 0 {
		t.Error("packet crossed a down link")
	}
	if st.Faults[FaultLinkDown] != 1 {
		t.Errorf("stats = %+v, events %+v", st, events)
	}
	// Bring it back up: traffic flows again.
	if err := n.SetLinkDown("s2", 1, false); err != nil {
		t.Fatal(err)
	}
	_ = n.Inject("s1", 0, []byte("flows"))
	if _, err := n.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(n.Egress("s3")) != 1 {
		t.Error("packet lost after link came back up")
	}
}

func TestProcErrorDoesNotAbortRun(t *testing.T) {
	n := New(8)
	bad := &fwd{err: &sim.EngineFault{Engine: "reference", Reason: "synthetic"}}
	ok := &fwd{outPort: 1}
	_ = n.AddSwitch("bad", bad)
	_ = n.AddSwitch("ok", ok)
	reg := n.EnableMetrics()
	_ = n.Inject("bad", 0, []byte("boom"))
	_ = n.Inject("ok", 0, []byte("fine"))
	st, err := n.Run(0)
	if err != nil {
		t.Fatalf("run aborted: %v", err)
	}
	if st.ProcErrors != 1 || st.Faults[FaultProcError] != 1 {
		t.Errorf("stats = %+v", st)
	}
	if len(n.Egress("ok")) != 1 {
		t.Error("healthy node's packet was lost")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`up4_node_proc_errors_total{node="bad",class="engine"} 1`)) {
		t.Errorf("metrics missing proc error series:\n%s", buf.String())
	}
}

func TestStepBudgetCatchesForwardingLoop(t *testing.T) {
	n := New(9)
	a, b := &fwd{outPort: 1}, &fwd{outPort: 1}
	_ = n.AddSwitch("a", a)
	_ = n.AddSwitch("b", b)
	// a:1 <-> b:1 with both forwarding to port 1: an infinite loop.
	if err := n.Connect("a", 1, "b", 1, FaultModel{}); err != nil {
		t.Fatal(err)
	}
	_ = n.Inject("a", 1, []byte("orbit"))
	if _, err := n.Run(1000); err == nil {
		t.Fatal("forwarding loop not caught by the step budget")
	}
}

func TestWiringErrors(t *testing.T) {
	n := New(10)
	_ = n.AddSwitch("a", &fwd{})
	if err := n.AddSwitch("a", &fwd{}); err == nil {
		t.Error("duplicate switch accepted")
	}
	if err := n.Connect("a", 1, "ghost", 0, FaultModel{}); err == nil {
		t.Error("link to unknown switch accepted")
	}
	if err := n.Inject("ghost", 0, nil); err == nil {
		t.Error("inject at unknown switch accepted")
	}
	if err := n.SetLinkDown("a", 9, true); err == nil {
		t.Error("SetLinkDown on unlinked port accepted")
	}
	if err := n.AddChurn("ghost", ChurnConfig{}, 1); err == nil {
		t.Error("churn on unknown switch accepted")
	}
	if err := n.AddChurn("a", ChurnConfig{}, 1); err == nil {
		t.Error("churn on a non-ChurnTarget processor accepted")
	}
	_ = n.AddSwitch("b", &fwd{})
	if err := n.Connect("a", 1, "b", 0, FaultModel{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("a", 1, "b", 2, FaultModel{}); err == nil {
		t.Error("double-linked endpoint accepted")
	}
}

func TestFaultEventsOnTraceBus(t *testing.T) {
	n, _ := line(t, 11, FaultModel{Drop: 1})
	var traced []sim.TraceEvent
	n.Bus().Subscribe(sim.CollectTrace(&traced))
	_ = n.Inject("s1", 0, []byte("observed"))
	if _, err := n.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(traced) != 1 || traced[0].Kind != "fault" {
		t.Fatalf("trace = %+v", traced)
	}
}

func TestChurnStepsAreDeterministic(t *testing.T) {
	rec := func() []string {
		var ops []string
		c := NewChurn(42, &recordingTarget{ops: &ops}, ChurnConfig{
			Tables:   []string{"t1", "t2"},
			Actions:  map[string]string{"": "act"},
			ArgCount: 2, ArgMax: 100,
			Groups: []uint64{1}, Ports: []uint64{1, 2, 3},
		})
		c.StepN(200)
		return ops
	}
	a, b := rec(), rec()
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("op counts %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

type recordingTarget struct{ ops *[]string }

func (r *recordingTarget) AddEntry(table string, keys []microp4.Key, action string, args ...uint64) {
	*r.ops = append(*r.ops, fmt.Sprintf("add %s %s %v", table, action, args))
}
func (r *recordingTarget) SetDefault(table, action string, args ...uint64) {
	*r.ops = append(*r.ops, fmt.Sprintf("default %s %s %v", table, action, args))
}
func (r *recordingTarget) ClearTable(table string) {
	*r.ops = append(*r.ops, "clear "+table)
}
func (r *recordingTarget) SetMulticastGroup(gid uint64, ports ...uint64) {
	*r.ops = append(*r.ops, fmt.Sprintf("mc %d %v", gid, ports))
}

func TestPartitionWindows(t *testing.T) {
	// A certain partition with a long window blacks the link out for the
	// whole run: nothing crosses, every loss is a partition fault.
	n, _ := line(t, 11, FaultModel{Partition: 1, PartitionLen: 1 << 20})
	reg := n.EnableMetrics()
	for i := 0; i < 5; i++ {
		_ = n.Inject("s1", 0, []byte{byte(i)})
	}
	st, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Egress("s3")) != 0 {
		t.Error("packet crossed a partitioned link")
	}
	if st.Faults[FaultPartition] == 0 {
		t.Errorf("no partition faults recorded: %+v", st)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`kind="partition"`)) {
		t.Errorf("metrics missing partition fault series:\n%s", buf.String())
	}

	// Probabilistic windows are drawn from the seeded stream: the same
	// seed replays the identical partition schedule, and packets outside
	// the windows still get through.
	run := func() (int, map[FaultKind]int) {
		n, _ := line(t, 12, FaultModel{Partition: 0.3, PartitionLen: 2})
		for i := 0; i < 40; i++ {
			_ = n.Inject("s1", 0, []byte{byte(i)})
		}
		st, err := n.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return len(n.Egress("s3")), st.Faults
	}
	eg1, f1 := run()
	eg2, f2 := run()
	if eg1 != eg2 || f1[FaultPartition] != f2[FaultPartition] {
		t.Errorf("partition schedule not reproducible: %d/%v vs %d/%v", eg1, f1, eg2, f2)
	}
	if f1[FaultPartition] == 0 {
		t.Error("expected some partition faults at p=0.3")
	}
	if eg1 == 0 {
		t.Error("expected some deliveries outside partition windows")
	}
}
