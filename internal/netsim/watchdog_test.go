package netsim

import (
	"strings"
	"testing"

	"microp4"
)

type sinkProc struct{}

func (sinkProc) Process(pkt []byte, inPort uint64) ([]microp4.Output, error) { return nil, nil }

// TestRunWatchdogTripsOnParkedTimers: a poller that re-arms itself
// forever without ever moving a packet is exactly the parked node set
// the watchdog exists for — Run fails with a diagnostic naming the
// timer's owner instead of silently spinning to the step budget.
func TestRunWatchdogTripsOnParkedTimers(t *testing.T) {
	n := New(1)
	if err := n.AddSwitch("sw", sinkProc{}); err != nil {
		t.Fatal(err)
	}
	n.SetWatchdog(50)
	var spin func()
	spin = func() { n.AfterNamed("parked-poller", 1, spin) }
	n.AfterNamed("parked-poller", 1, spin)
	_, err := n.Run(0)
	if err == nil {
		t.Fatal("Run returned nil for a permanently-parked timer loop")
	}
	for _, want := range []string{"watchdog", "parked-poller"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diagnostic missing %q: %v", want, err)
		}
	}
}

// TestRunWatchdogIgnoresProgress: a self-re-arming timer that actually
// moves packets is a healthy sender, not a parked one — it may fire
// far past the tolerance without tripping, and once it quiesces Run
// returns cleanly.
func TestRunWatchdogIgnoresProgress(t *testing.T) {
	n := New(1)
	if err := n.AddSwitch("sw", sinkProc{}); err != nil {
		t.Fatal(err)
	}
	n.SetWatchdog(20)
	rounds := 0
	var send func()
	send = func() {
		rounds++
		if rounds > 100 {
			return // quiesce
		}
		_ = n.Inject("sw", 1, []byte{0xAB})
		n.AfterNamed("chatty-sender", 1, send)
	}
	n.AfterNamed("chatty-sender", 1, send)
	if _, err := n.Run(0); err != nil {
		t.Fatalf("watchdog tripped on a progressing sender: %v", err)
	}
	if st := n.Stats(); st.Injected != 100 {
		t.Errorf("sender injected %d packets, want 100", st.Injected)
	}
}

// TestRunWatchdogCountsEgressAsProgress: timers that SendFrom straight
// to an unconnected (egress) port never touch the queue but are still
// making progress.
func TestRunWatchdogCountsEgressAsProgress(t *testing.T) {
	n := New(1)
	if err := n.AddSwitch("sw", sinkProc{}); err != nil {
		t.Fatal(err)
	}
	n.SetWatchdog(20)
	rounds := 0
	var send func()
	send = func() {
		rounds++
		if rounds > 100 {
			return
		}
		_ = n.SendFrom("sw", 2, []byte{0xCD})
		n.AfterNamed("egress-sender", 1, send)
	}
	n.AfterNamed("egress-sender", 1, send)
	if _, err := n.Run(0); err != nil {
		t.Fatalf("watchdog tripped on an egressing sender: %v", err)
	}
	if got := len(n.Egress("sw")); got != 100 {
		t.Errorf("egress collected %d packets, want 100", got)
	}
}

// TestRunWatchdogDisabled: a negative tolerance turns the watchdog off
// and the step budget remains the only backstop.
func TestRunWatchdogDisabled(t *testing.T) {
	n := New(1)
	if err := n.AddSwitch("sw", sinkProc{}); err != nil {
		t.Fatal(err)
	}
	n.SetWatchdog(-1)
	var spin func()
	spin = func() { n.AfterNamed("parked", 1, spin) }
	n.AfterNamed("parked", 1, spin)
	_, err := n.Run(500)
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("disabled watchdog should leave the step budget in charge, got %v", err)
	}
}
