package netsim

import (
	"math/rand"
	"sync"

	"microp4"
)

// ChurnTarget is the control-plane surface the churn injector drives.
// *microp4.Switch implements it; the Switch's documented concurrency
// contract makes every operation safe to race live Process calls.
type ChurnTarget interface {
	AddEntry(table string, keys []microp4.Key, action string, args ...uint64)
	SetDefault(table, action string, args ...uint64)
	ClearTable(table string)
	SetMulticastGroup(gid uint64, ports ...uint64)
}

// ChurnConfig bounds what the injector mutates. Zero-valued fields
// disable the corresponding operation class.
type ChurnConfig struct {
	// Tables are candidate fully-qualified table names for
	// AddEntry/ClearTable/SetDefault churn.
	Tables []string
	// Action installed by churned entries/defaults, per table; tables
	// with no mapping get entries naming the table's first candidate in
	// Actions[""] (a global fallback).
	Actions map[string]string
	// ArgCount/ArgMax bound the random action arguments.
	ArgCount int
	ArgMax   uint64
	// Groups are multicast group ids to reprogram; Ports the candidate
	// replication ports.
	Groups []uint64
	Ports  []uint64
}

func (c ChurnConfig) empty() bool { return len(c.Tables) == 0 && len(c.Groups) == 0 }

// Churn is a deterministic control-plane churn injector: a seed-driven
// sequence of AddEntry / SetDefault / ClearTable / SetMulticastGroup
// calls against one switch. Step is safe to call from its own
// goroutine while other goroutines drive Process on the same switch —
// that is the race the chaos tests exist to exercise.
type Churn struct {
	mu     sync.Mutex
	rng    *rand.Rand
	target ChurnTarget
	cfg    ChurnConfig
	count  uint64
	ops    int // ops per network delivery, when attached via AddChurn
}

// NewChurn returns an injector driving target from a private stream.
func NewChurn(seed uint64, target ChurnTarget, cfg ChurnConfig) *Churn {
	return &Churn{rng: rand.New(rand.NewSource(int64(splitmix64(seed)))), target: target, cfg: cfg}
}

// Ops returns the number of operations performed so far.
func (c *Churn) Ops() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Step performs one random control-plane operation.
func (c *Churn) Step() { c.StepN(1) }

// StepN performs n operations (no-op when the config is empty).
func (c *Churn) StepN(n int) {
	if c.cfg.empty() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < n; i++ {
		c.step()
	}
}

func (c *Churn) step() {
	c.count++
	r := c.rng
	// Multicast churn interleaves with table churn when both configured.
	if len(c.cfg.Groups) > 0 && (len(c.cfg.Tables) == 0 || r.Intn(4) == 0) {
		gid := c.cfg.Groups[r.Intn(len(c.cfg.Groups))]
		nports := r.Intn(len(c.cfg.Ports) + 1)
		ports := make([]uint64, 0, nports)
		for j := 0; j < nports; j++ {
			ports = append(ports, c.cfg.Ports[r.Intn(len(c.cfg.Ports))])
		}
		c.target.SetMulticastGroup(gid, ports...)
		return
	}
	table := c.cfg.Tables[r.Intn(len(c.cfg.Tables))]
	action := c.cfg.Actions[table]
	if action == "" {
		action = c.cfg.Actions[""]
	}
	args := make([]uint64, c.cfg.ArgCount)
	for j := range args {
		if c.cfg.ArgMax > 0 {
			args[j] = r.Uint64() % (c.cfg.ArgMax + 1)
		}
	}
	switch r.Intn(8) {
	case 0:
		c.target.ClearTable(table)
	case 1:
		if action != "" {
			c.target.SetDefault(table, action, args...)
		}
	default:
		if action != "" {
			c.target.AddEntry(table, []microp4.Key{microp4.Exact(r.Uint64() & 0xFFFF)}, action, args...)
		}
	}
}
