package netsim

import (
	"math/rand"
	"sync"

	"microp4"
	"microp4/internal/obs"
)

// ChurnTarget is the control-plane surface the churn injector drives.
// *microp4.Switch implements it; the Switch's documented concurrency
// contract makes every operation safe to race live Process calls.
type ChurnTarget interface {
	AddEntry(table string, keys []microp4.Key, action string, args ...uint64)
	SetDefault(table, action string, args ...uint64)
	ClearTable(table string)
	SetMulticastGroup(gid uint64, ports ...uint64)
}

// ValidatedChurnTarget is the error-returning control surface
// (*microp4.Switch implements this too). When the target provides it,
// churn routes every op through it and counts the rejects — schema
// violations stop silently no-opping and become an observable signal
// (up4_churn_rejects_total).
type ValidatedChurnTarget interface {
	TryAddEntry(table string, keys []microp4.Key, action string, args ...uint64) error
	TrySetDefault(table, action string, args ...uint64) error
	TryClearTable(table string) error
	TrySetMulticastGroup(gid uint64, ports ...uint64) error
}

// ChurnConfig bounds what the injector mutates. Zero-valued fields
// disable the corresponding operation class.
type ChurnConfig struct {
	// Tables are candidate fully-qualified table names for
	// AddEntry/ClearTable/SetDefault churn.
	Tables []string
	// Actions is the action installed by churned entries/defaults, per
	// table; tables with no mapping get entries naming the table's
	// first candidate in Actions[""] (a global fallback).
	Actions map[string]string
	// API, when set, shapes the random operations to the dataplane's
	// control schema: match keys take each column's kind and width, and
	// action arguments take the parameter list's arity and widths —
	// instead of the blind one-exact-16-bit-key fallback. Churned ops
	// then exercise real table state rather than bouncing off
	// validation.
	API *microp4.ControlAPI
	// ArgCount/ArgMax bound the random action arguments for tables the
	// API does not describe.
	ArgCount int
	ArgMax   uint64
	// Groups are multicast group ids to reprogram; Ports the candidate
	// replication ports.
	Groups []uint64
	Ports  []uint64
}

func (c ChurnConfig) empty() bool { return len(c.Tables) == 0 && len(c.Groups) == 0 }

// Churn is a deterministic control-plane churn injector: a seed-driven
// sequence of AddEntry / SetDefault / ClearTable / SetMulticastGroup
// calls against one switch. Step is safe to call from its own
// goroutine while other goroutines drive Process on the same switch —
// that is the race the chaos tests exist to exercise.
type Churn struct {
	mu      sync.Mutex
	rng     *rand.Rand
	target  ChurnTarget
	cfg     ChurnConfig
	schema  map[string]*microp4.ControlTable // by table name, from cfg.API
	count   uint64
	rejectN uint64
	rejects *obs.Counter // optional: up4_churn_rejects_total
	ops     int          // ops per network delivery, when attached via AddChurn
}

// NewChurn returns an injector driving target from a private stream.
func NewChurn(seed uint64, target ChurnTarget, cfg ChurnConfig) *Churn {
	c := &Churn{rng: rand.New(rand.NewSource(int64(splitmix64(seed)))), target: target, cfg: cfg}
	if cfg.API != nil {
		c.schema = make(map[string]*microp4.ControlTable, len(cfg.API.Tables))
		for i := range cfg.API.Tables {
			c.schema[cfg.API.Tables[i].Name] = &cfg.API.Tables[i]
		}
	}
	return c
}

// CountRejects attaches a counter incremented once per rejected op
// (requires a ValidatedChurnTarget to observe rejections).
func (c *Churn) CountRejects(counter *obs.Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rejects = counter
}

// Ops returns the number of operations performed so far.
func (c *Churn) Ops() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Rejects returns the number of operations the validated API refused.
func (c *Churn) Rejects() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rejectN
}

// Step performs one random control-plane operation.
func (c *Churn) Step() { c.StepN(1) }

// StepN performs n operations (no-op when the config is empty).
func (c *Churn) StepN(n int) {
	if c.cfg.empty() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < n; i++ {
		c.step()
	}
}

// checked routes one op result through the reject accounting.
func (c *Churn) checked(err error) {
	if err != nil {
		c.rejectN++
		c.rejects.Inc()
	}
}

func (c *Churn) step() {
	c.count++
	r := c.rng
	vt, validated := c.target.(ValidatedChurnTarget)
	// Multicast churn interleaves with table churn when both configured.
	if len(c.cfg.Groups) > 0 && (len(c.cfg.Tables) == 0 || r.Intn(4) == 0) {
		gid := c.cfg.Groups[r.Intn(len(c.cfg.Groups))]
		nports := r.Intn(len(c.cfg.Ports) + 1)
		ports := make([]uint64, 0, nports)
		for j := 0; j < nports; j++ {
			ports = append(ports, c.cfg.Ports[r.Intn(len(c.cfg.Ports))])
		}
		if validated {
			c.checked(vt.TrySetMulticastGroup(gid, ports...))
		} else {
			c.target.SetMulticastGroup(gid, ports...)
		}
		return
	}
	table := c.cfg.Tables[r.Intn(len(c.cfg.Tables))]
	action := c.cfg.Actions[table]
	if action == "" {
		action = c.cfg.Actions[""]
	}
	args := c.argsFor(table, action)
	switch r.Intn(8) {
	case 0:
		if validated {
			c.checked(vt.TryClearTable(table))
		} else {
			c.target.ClearTable(table)
		}
	case 1:
		if action != "" {
			if validated {
				c.checked(vt.TrySetDefault(table, action, args...))
			} else {
				c.target.SetDefault(table, action, args...)
			}
		}
	default:
		if action != "" {
			keys := c.keysFor(table)
			if validated {
				c.checked(vt.TryAddEntry(table, keys, action, args...))
			} else {
				c.target.AddEntry(table, keys, action, args...)
			}
		}
	}
}

// keysFor draws a random key tuple shaped by the table's control
// schema: one key per column, each matching the column's kind and
// width. Tables the schema does not describe fall back to the blind
// single 16-bit exact key.
func (c *Churn) keysFor(table string) []microp4.Key {
	ct := c.schema[table]
	if ct == nil {
		return []microp4.Key{microp4.Exact(c.rng.Uint64() & 0xFFFF)}
	}
	keys := make([]microp4.Key, len(ct.Keys))
	for i, col := range ct.Keys {
		mask := widthMask(col.Width)
		switch col.MatchKind {
		case "lpm":
			keys[i] = microp4.LPM(c.rng.Uint64()&mask, c.rng.Intn(col.Width+1))
		case "ternary":
			keys[i] = microp4.Ternary(c.rng.Uint64()&mask, c.rng.Uint64()&mask)
		case "exact":
			keys[i] = microp4.Exact(c.rng.Uint64() & mask)
		default:
			keys[i] = microp4.Any()
		}
	}
	return keys
}

// argsFor draws action arguments: schema-shaped (arity and widths from
// the action's parameter list) when known, the blind ArgCount/ArgMax
// fallback otherwise.
func (c *Churn) argsFor(table, action string) []uint64 {
	if ct := c.schema[table]; ct != nil {
		for i := range ct.Actions {
			if ct.Actions[i].Name != action {
				continue
			}
			args := make([]uint64, len(ct.Actions[i].Params))
			for j, p := range ct.Actions[i].Params {
				args[j] = c.rng.Uint64() & widthMask(p.Width)
			}
			return args
		}
	}
	args := make([]uint64, c.cfg.ArgCount)
	for j := range args {
		if c.cfg.ArgMax > 0 {
			args[j] = c.rng.Uint64() % (c.cfg.ArgMax + 1)
		}
	}
	return args
}

// widthMask returns the value mask of a w-bit field.
func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	if w <= 0 {
		return 0
	}
	return (uint64(1) << uint(w)) - 1
}
