package netsim

import (
	"container/heap"
	"sort"
)

// The network's virtual clock. Time is measured in ticks: every
// delivery a node processes advances the clock by one, and timers fire
// only when the delivery queue is drained — so virtual time is a pure
// function of the seed, topology, and injected traffic, never of wall
// time. The ctrlplane client's timeouts, retry backoff, and circuit
// breaker all run on this clock, which is what makes an entire lossy
// control-plane conversation — including its retry schedule —
// reproducible from the seed alone.

// timer is one scheduled callback.
type timer struct {
	at    uint64 // virtual tick at (or after) which the timer fires
	seq   uint64 // creation order, the deterministic tiebreaker
	owner string // who scheduled it ("" = unnamed) — the watchdog's diagnostic
	fn    func() // nil when cancelled
}

// timerQueue is a min-heap ordered by (at, seq).
type timerQueue []*timer

func (q timerQueue) Len() int { return len(q) }
func (q timerQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q timerQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *timerQueue) Push(x any)   { *q = append(*q, x.(*timer)) }
func (q *timerQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}

// Now returns the current virtual time, in ticks.
func (n *Network) Now() uint64 { return n.now }

// After schedules fn to run at virtual time Now()+d, and returns a
// cancel function. Timers fire inside Run, single-threaded, only when
// the delivery queue is empty — a busy network delays them, which is
// harmless for their one use (detecting that an awaited packet is NOT
// going to arrive). Ties fire in creation order. fn may send packets
// (SendFrom), schedule further timers, or both.
func (n *Network) After(d uint64, fn func()) (cancel func()) {
	return n.AfterNamed("", d, fn)
}

// AfterNamed is After with an owner name attached to the timer. The
// name is pure diagnostics: when Run's watchdog declares the network
// permanently parked, the pending timers' owners are what it reports —
// name any timer that re-arms itself (pollers, retransmitters,
// replication rounds) so a quiesce bug indicts its subsystem by name.
func (n *Network) AfterNamed(owner string, d uint64, fn func()) (cancel func()) {
	n.tseq++
	t := &timer{at: n.now + d, seq: n.tseq, owner: owner, fn: fn}
	heap.Push(&n.timers, t)
	return func() { t.fn = nil }
}

// pendingTimerOwners returns the distinct owners of live pending
// timers, sorted, for the watchdog diagnostic.
func (n *Network) pendingTimerOwners() []string {
	seen := map[string]bool{}
	for _, t := range n.timers {
		if t.fn == nil {
			continue
		}
		name := t.owner
		if name == "" {
			name = "unnamed"
		}
		seen[name] = true
	}
	owners := make([]string, 0, len(seen))
	for name := range seen {
		owners = append(owners, name)
	}
	sort.Strings(owners)
	return owners
}

// fireTimer pops and runs the earliest pending timer, advancing the
// clock to its deadline. Returns false when no live timer is pending.
func (n *Network) fireTimer() bool {
	for n.timers.Len() > 0 {
		t := heap.Pop(&n.timers).(*timer)
		if t.fn == nil {
			continue // cancelled
		}
		if t.at > n.now {
			n.now = t.at
		}
		t.fn()
		return true
	}
	return false
}
