package netsim

import (
	"fmt"
	"reflect"
	"testing"

	"microp4"
)

// flipper forwards 0->1 but also bounces every third packet back out
// port 0, giving the chaos run some multi-hop structure.
type flipper struct{ seen int }

func (f *flipper) Process(pkt []byte, inPort uint64) ([]microp4.Output, error) {
	f.seen++
	out := uint64(1)
	if inPort == 1 {
		out = 0
	}
	res := []microp4.Output{{Port: out, Data: pkt}}
	if f.seen%3 == 0 && len(pkt) > 2 {
		res = append(res, microp4.Output{Port: out ^ 1, Data: pkt[:len(pkt)/2]})
	}
	return res, nil
}

// chaosRun builds a 3-switch line with lossy links, injects a fixed
// traffic pattern, and returns the full fault event sequence and stats.
func chaosRun(t *testing.T, seed uint64) ([]FaultEvent, RunStats) {
	t.Helper()
	n := New(seed)
	for i := 1; i <= 3; i++ {
		if err := n.AddSwitch(fmt.Sprintf("s%d", i), &flipper{}); err != nil {
			t.Fatal(err)
		}
	}
	m := FaultModel{Drop: 0.2, Duplicate: 0.15, Reorder: 0.1, BitFlip: 0.25, Truncate: 0.1}
	if err := n.Connect("s1", 1, "s2", 0, m); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("s2", 1, "s3", 0, m); err != nil {
		t.Fatal(err)
	}
	var events []FaultEvent
	n.OnFault(func(e FaultEvent) { events = append(events, e) })
	for i := 0; i < 200; i++ {
		pkt := make([]byte, 16)
		for j := range pkt {
			pkt[j] = byte(i + j)
		}
		if err := n.Inject("s1", 0, pkt); err != nil {
			t.Fatal(err)
		}
	}
	st, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return events, st
}

// TestChaosRunIsReproducible is the tentpole acceptance criterion:
// identical seed => identical per-link fault event sequence and final
// counters, over a >=3-switch network.
func TestChaosRunIsReproducible(t *testing.T) {
	e1, s1 := chaosRun(t, 0xC0FFEE)
	e2, s2 := chaosRun(t, 0xC0FFEE)
	if len(e1) == 0 {
		t.Fatal("chaos run with lossy links produced no fault events")
	}
	if !reflect.DeepEqual(e1, e2) {
		for i := range e1 {
			if i >= len(e2) || e1[i] != e2[i] {
				t.Fatalf("event %d diverged: %v vs %v", i, e1[i], e2[i])
			}
		}
		t.Fatalf("event counts diverged: %d vs %d", len(e1), len(e2))
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("stats diverged:\n%+v\n%+v", s1, s2)
	}
}

// TestDifferentSeedsDiverge guards against a degenerate implementation
// that ignores the seed entirely.
func TestDifferentSeedsDiverge(t *testing.T) {
	e1, _ := chaosRun(t, 1)
	e2, _ := chaosRun(t, 2)
	if reflect.DeepEqual(e1, e2) {
		t.Fatal("seeds 1 and 2 produced identical fault sequences")
	}
}

// TestLinkStreamsAreIndependent: adding an unrelated link must not
// perturb the fault stream of an existing one.
func TestLinkStreamsAreIndependent(t *testing.T) {
	run := func(extraLink bool) []FaultEvent {
		n := New(7)
		_ = n.AddSwitch("a", &fwd{outPort: 1})
		_ = n.AddSwitch("b", &fwd{outPort: 9}) // port 9: egress, stop forwarding
		_ = n.AddSwitch("c", &fwd{outPort: 9})
		if err := n.Connect("a", 1, "b", 0, FaultModel{Drop: 0.5}); err != nil {
			t.Fatal(err)
		}
		if extraLink {
			if err := n.Connect("a", 2, "c", 0, FaultModel{Drop: 0.5}); err != nil {
				t.Fatal(err)
			}
		}
		var events []FaultEvent
		n.OnFault(func(e FaultEvent) {
			if e.Link == "a:1->b:0" {
				events = append(events, e)
			}
		})
		for i := 0; i < 100; i++ {
			_ = n.Inject("a", 0, []byte{byte(i)})
		}
		if _, err := n.Run(0); err != nil {
			t.Fatal(err)
		}
		return events
	}
	without, with := run(false), run(true)
	if len(without) == 0 {
		t.Fatal("no drops on a 50% lossy link over 100 packets")
	}
	// Event sequence numbers are global and may shift; compare the
	// per-link fault kinds in order.
	kinds := func(es []FaultEvent) []FaultKind {
		out := make([]FaultKind, len(es))
		for i, e := range es {
			out[i] = e.Kind
		}
		return out
	}
	if !reflect.DeepEqual(kinds(without), kinds(with)) {
		t.Fatal("adding an unrelated link perturbed an existing link's fault stream")
	}
}
