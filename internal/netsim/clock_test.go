package netsim

import (
	"errors"
	"fmt"
	"testing"

	"microp4"
)

// TestTimersFireInVirtualTimeOrder: timers fire only once the delivery
// queue is quiet, earliest deadline first, with creation order breaking
// ties; cancelled timers never fire; Now advances to each deadline.
func TestTimersFireInVirtualTimeOrder(t *testing.T) {
	n := New(1)
	var fired []string
	n.After(30, func() { fired = append(fired, fmt.Sprintf("c@%d", n.Now())) })
	n.After(10, func() { fired = append(fired, fmt.Sprintf("a@%d", n.Now())) })
	cancel := n.After(20, func() { fired = append(fired, "cancelled") })
	n.After(20, func() { fired = append(fired, fmt.Sprintf("b@%d", n.Now())) })
	cancel()
	if _, err := n.Run(0); err != nil {
		t.Fatal(err)
	}
	want := "[a@10 b@20 c@30]"
	if got := fmt.Sprint(fired); got != want {
		t.Errorf("fired = %v, want %v", got, want)
	}
}

// TestTimerCanSendPackets: a timer callback that sends traffic (the
// retransmission pattern) wakes the network back up.
func TestTimerCanSendPackets(t *testing.T) {
	n := New(2)
	if err := n.AddSwitch("a", &fwd{}); err != nil {
		t.Fatal(err)
	}
	n.After(5, func() {
		if err := n.SendFrom("a", 1, []byte("late")); err != nil {
			t.Error(err)
		}
	})
	st, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Egressed != 1 {
		t.Errorf("egressed = %d, want the timer-sent packet", st.Egressed)
	}
}

// TestDeliveriesBeatTimers: a queued packet is always processed before
// a due timer — a reply already in flight must win its race against the
// timeout that would retransmit it.
func TestDeliveriesBeatTimers(t *testing.T) {
	n := New(3)
	if err := n.AddSwitch("a", &fwd{}); err != nil {
		t.Fatal(err)
	}
	var order []string
	n.After(1, func() { order = append(order, "timer") })
	_ = n.Inject("a", 0, []byte("pkt"))
	// A second injection mid-run keeps the queue busy past the timer's
	// nominal deadline.
	if _, err := n.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 || order[0] != "timer" {
		t.Fatalf("order = %v", order)
	}
	if n.Now() < 1 {
		t.Errorf("clock did not advance: %d", n.Now())
	}
}

// TestSelfRearmingTimerHitsBudget: a timer that always reschedules
// itself must trip the step budget instead of hanging Run.
func TestSelfRearmingTimerHitsBudget(t *testing.T) {
	n := New(4)
	var rearm func()
	rearm = func() { n.After(1, rearm) }
	n.After(1, rearm)
	if _, err := n.Run(50); err == nil {
		t.Fatal("self-rearming timer did not exhaust the budget")
	}
}

// TestSendFromUnknownNode: SendFrom validates its origin.
func TestSendFromUnknownNode(t *testing.T) {
	n := New(5)
	if err := n.SendFrom("ghost", 0, []byte("x")); err == nil {
		t.Error("SendFrom from unknown node accepted")
	}
}

// TestChurnSchemaShapedKeys: with a ControlAPI attached, churned
// entries take each column's kind and width instead of the blind
// 16-bit exact fallback.
func TestChurnSchemaShapedKeys(t *testing.T) {
	api := &microp4.ControlAPI{Tables: []microp4.ControlTable{{
		Name: "lpm_tbl",
		Keys: []microp4.ControlKey{
			{Field: "dst", Width: 32, MatchKind: "lpm"},
			{Field: "proto", Width: 8, MatchKind: "exact"},
		},
		Actions: []microp4.ControlAction{{
			Name:   "route",
			Params: []microp4.ControlActionParam{{Name: "nh", Width: 16}},
		}},
	}}}
	var keys [][]microp4.Key
	var args [][]uint64
	c := NewChurn(7, &shapeTarget{keys: &keys, args: &args}, ChurnConfig{
		Tables:  []string{"lpm_tbl"},
		Actions: map[string]string{"lpm_tbl": "route"},
		API:     api,
	})
	c.StepN(300)
	if len(keys) == 0 {
		t.Fatal("no entries churned")
	}
	for _, ks := range keys {
		if len(ks) != 2 {
			t.Fatalf("entry has %d keys, want 2 (schema-shaped)", len(ks))
		}
	}
	for _, as := range args {
		if len(as) != 1 {
			t.Fatalf("entry has %d args, want 1 (schema-shaped)", len(as))
		}
		if as[0] > 0xFFFF {
			t.Fatalf("arg %#x exceeds the schema's bit<16>", as[0])
		}
	}
}

// TestChurnRejectAccounting: a validated target's rejections are
// counted on the churn and (when wired) the metrics counter.
func TestChurnRejectAccounting(t *testing.T) {
	rejecting := &rejectingTarget{}
	c := NewChurn(9, rejecting, ChurnConfig{
		Tables:  []string{"t"},
		Actions: map[string]string{"t": "a"},
	})
	c.StepN(50)
	if c.Rejects() != c.Ops() {
		t.Errorf("rejects = %d of %d ops, want all rejected", c.Rejects(), c.Ops())
	}
}

// shapeTarget records the shapes of churned operations; both interfaces
// implemented so churn takes the validated path.
type shapeTarget struct {
	keys *[][]microp4.Key
	args *[][]uint64
}

func (s *shapeTarget) AddEntry(string, []microp4.Key, string, ...uint64) {}
func (s *shapeTarget) SetDefault(string, string, ...uint64)              {}
func (s *shapeTarget) ClearTable(string)                                 {}
func (s *shapeTarget) SetMulticastGroup(uint64, ...uint64)               {}
func (s *shapeTarget) TryAddEntry(table string, keys []microp4.Key, action string, args ...uint64) error {
	*s.keys = append(*s.keys, keys)
	*s.args = append(*s.args, args)
	return nil
}
func (s *shapeTarget) TrySetDefault(table, action string, args ...uint64) error {
	*s.args = append(*s.args, args)
	return nil
}
func (s *shapeTarget) TryClearTable(string) error                 { return nil }
func (s *shapeTarget) TrySetMulticastGroup(uint64, ...uint64) error { return nil }

// rejectingTarget refuses everything.
type rejectingTarget struct{}

var errNo = errors.New("no")

func (r *rejectingTarget) AddEntry(string, []microp4.Key, string, ...uint64) {}
func (r *rejectingTarget) SetDefault(string, string, ...uint64)              {}
func (r *rejectingTarget) ClearTable(string)                                 {}
func (r *rejectingTarget) SetMulticastGroup(uint64, ...uint64)               {}
func (r *rejectingTarget) TryAddEntry(string, []microp4.Key, string, ...uint64) error {
	return errNo
}
func (r *rejectingTarget) TrySetDefault(string, string, ...uint64) error { return errNo }
func (r *rejectingTarget) TryClearTable(string) error                    { return errNo }
func (r *rejectingTarget) TrySetMulticastGroup(uint64, ...uint64) error  { return errNo }
