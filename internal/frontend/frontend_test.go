package frontend

import (
	"encoding/json"
	"strings"
	"testing"

	"microp4/internal/ir"
)

const l3Src = `
struct empty_t { }
header ipv4_h {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> totalLen;
  bit<16> identification; bit<3> flags; bit<13> fragOffset;
  bit<8> ttl; bit<8> protocol; bit<16> hdrChecksum;
  bit<32> srcAddr; bit<32> dstAddr;
}
struct l3hdr_t { ipv4_h ipv4; }

program IPv4 : implements Unicast {
  parser P(extractor ex, pkt p, out l3hdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.ipv4); transition accept; }
  }
  control C(pkt p, inout l3hdr_t h, inout empty_t m, im_t im, out bit<16> nh) {
    action process(bit<16> next_hop) {
      h.ipv4.ttl = h.ipv4.ttl - 1;
      nh = next_hop;
    }
    action no_route() { nh = 0; im.drop(); }
    table ipv4_lpm_tbl {
      key = { h.ipv4.dstAddr : lpm; }
      actions = { process; no_route; }
      default_action = no_route;
      const entries = {
        (0x0A000000 &&& 0xFF000000) : process(7);
      }
    }
    apply { ipv4_lpm_tbl.apply(); }
  }
  control D(emitter em, pkt p, in l3hdr_t h) {
    apply { em.emit(p, h.ipv4); }
  }
}
`

func TestCompileModuleIPv4(t *testing.T) {
	p, err := CompileModule("ipv4.up4", l3Src)
	if err != nil {
		t.Fatalf("CompileModule: %v", err)
	}
	if p.Name != "IPv4" || p.Interface != "Unicast" {
		t.Errorf("program = %s:%s, want IPv4:Unicast", p.Name, p.Interface)
	}
	// Module signature: one out bit<16> nh.
	if len(p.Params) != 1 || p.Params[0].Name != "nh" || p.Params[0].Dir != "out" || p.Params[0].Width != 16 {
		t.Errorf("params = %+v, want [out nh:16]", p.Params)
	}
	// Flattened decls include $hdr.ipv4 and nh.
	if d := p.DeclByPath("$hdr.ipv4"); d == nil || d.Kind != ir.DeclHeader || d.TypeName != "ipv4_h" {
		t.Errorf("$hdr.ipv4 decl = %+v", d)
	}
	if d := p.DeclByPath("nh"); d == nil || d.Width != 16 {
		t.Errorf("nh decl = %+v", d)
	}
	// Parser state lowered.
	st := p.Parser.State("start")
	if st == nil || len(st.Stmts) != 1 || st.Stmts[0].Kind != ir.SExtract || st.Stmts[0].Hdr != "$hdr.ipv4" {
		t.Fatalf("start state = %+v", st)
	}
	// Table lowered with lpm entry and prefix length 8.
	tbl := p.Tables["ipv4_lpm_tbl"]
	if tbl == nil {
		t.Fatal("table missing")
	}
	if tbl.Keys[0].MatchKind != "lpm" || tbl.Keys[0].Expr.Ref != "$hdr.ipv4.dstAddr" {
		t.Errorf("key = %+v", tbl.Keys[0])
	}
	if len(tbl.Entries) != 1 || tbl.Entries[0].Keys[0].PrefixLen != 8 {
		t.Errorf("entries = %+v", tbl.Entries)
	}
	// Action body: ttl decrement and out-param write; drop lowered to
	// an assignment to $im.out_port.
	proc := p.Actions["process"]
	if proc == nil || len(proc.Body) != 2 {
		t.Fatalf("process action = %+v", proc)
	}
	if proc.Body[0].LHS.Ref != "$hdr.ipv4.ttl" {
		t.Errorf("stmt 0 lhs = %s", proc.Body[0].LHS.Ref)
	}
	if proc.Body[1].RHS.Ref != "process#next_hop" {
		t.Errorf("stmt 1 rhs = %s, want action param ref", proc.Body[1].RHS.Ref)
	}
	nr := p.Actions["no_route"]
	drop := nr.Body[1]
	if drop.Kind != ir.SAssign || drop.LHS.Ref != "$im.out_port" || drop.RHS.Value != 511 {
		t.Errorf("drop lowered to %s", ir.StmtString(drop))
	}
	// Deparser.
	if len(p.Deparser) != 1 || p.Deparser[0].Kind != ir.SEmit || p.Deparser[0].Hdr != "$hdr.ipv4" {
		t.Errorf("deparser = %+v", p.Deparser)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p, err := CompileModule("ipv4.up4", l3Src)
	if err != nil {
		t.Fatalf("CompileModule: %v", err)
	}
	data, err := p.ToJSON()
	if err != nil {
		t.Fatalf("ToJSON: %v", err)
	}
	q, err := ir.FromJSON(data)
	if err != nil {
		t.Fatalf("FromJSON: %v", err)
	}
	data2, err := q.ToJSON()
	if err != nil {
		t.Fatalf("ToJSON 2: %v", err)
	}
	if string(data) != string(data2) {
		t.Error("JSON round-trip is not stable")
	}
	var raw map[string]interface{}
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if raw["name"] != "IPv4" {
		t.Errorf("JSON name = %v", raw["name"])
	}
}

const routerSrc = `
struct empty_t { }
header ethernet_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
struct hdr_t { ethernet_h eth; }

L3(pkt p, im_t im, out bit<16> nh, inout bit<16> etype);

program ModularRouter : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.eth); transition accept; }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) {
    bit<16> nh;
    L3() l3_i;
    action drop_it() { im.drop(); }
    action forward(bit<48> dmac, bit<48> smac, bit<9> port) {
      h.eth.dstMac = dmac;
      h.eth.srcMac = smac;
      im.set_out_port(port);
    }
    table forward_tbl {
      key = { nh : exact; }
      actions = { forward; drop_it; }
      default_action = drop_it;
    }
    apply {
      l3_i.apply(p, im, nh, h.eth.etherType);
      forward_tbl.apply();
    }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.eth); } }
}
ModularRouter(P, C, D) main;
`

func TestCompileModularRouter(t *testing.T) {
	p, err := CompileModule("router.up4", routerSrc)
	if err != nil {
		t.Fatalf("CompileModule: %v", err)
	}
	if len(p.Apply) != 2 {
		t.Fatalf("apply = %+v, want 2 stmts", p.Apply)
	}
	call := p.Apply[0]
	if call.Kind != ir.SCallModule || call.Instance != "l3_i" || call.Module != "L3" {
		t.Fatalf("stmt 0 = %s", ir.StmtString(call))
	}
	// Data args: nh (out), h.eth.etherType (inout); pkt/im dropped.
	if len(call.Args) != 2 {
		t.Fatalf("call args = %+v, want 2", call.Args)
	}
	if call.Args[0].Dir != "out" || call.Args[0].Expr.Ref != "nh" {
		t.Errorf("arg 0 = %+v", call.Args[0])
	}
	if call.Args[1].Dir != "inout" || call.Args[1].Expr.Ref != "$hdr.eth.etherType" {
		t.Errorf("arg 1 = %+v", call.Args[1])
	}
	if len(p.Instances) != 1 || p.Instances[0].Module != "L3" {
		t.Errorf("instances = %+v", p.Instances)
	}
	if p.Protos["L3"] == nil || len(p.Protos["L3"].Params) != 2 {
		t.Errorf("proto L3 = %+v", p.Protos["L3"])
	}
}

func TestPrefixedSharesIm(t *testing.T) {
	p, err := CompileModule("ipv4.up4", l3Src)
	if err != nil {
		t.Fatalf("CompileModule: %v", err)
	}
	q := p.Prefixed("l3_i")
	if q.DeclByPath("l3_i.$hdr.ipv4") == nil {
		t.Error("prefixed decl l3_i.$hdr.ipv4 missing")
	}
	// The drop write must still target the shared $im.
	nr := q.Actions["l3_i.no_route"]
	if nr == nil {
		t.Fatalf("prefixed action missing; actions = %v", actionNames(q))
	}
	if nr.Body[1].LHS.Ref != "$im.out_port" {
		t.Errorf("prefixed drop lhs = %s, want $im.out_port", nr.Body[1].LHS.Ref)
	}
	if nr.Body[0].RHS.Ref != "l3_i.no_route" && !strings.HasPrefix(nr.Body[0].LHS.Ref, "l3_i.") {
		t.Errorf("prefixed body refs = %s", ir.StmtString(nr.Body[0]))
	}
	// Original must be untouched.
	if p.Actions["no_route"] == nil {
		t.Error("original program mutated by Prefixed")
	}
}

func actionNames(p *ir.Program) []string {
	var out []string
	for k := range p.Actions {
		out = append(out, k)
	}
	return out
}

func TestSelectLowering(t *testing.T) {
	src := `
struct empty_t { }
header ethernet_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
header ipv4_h { bit<8> ttl; bit<8> protocol; bit<16> csum; bit<32> src; bit<32> dst; }
struct hdr_t { ethernet_h eth; ipv4_h ipv4; }
program X : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) {
        0x0800: parse_ipv4;
        0x8100 &&& 0xEFFF: parse_ipv4;
        default: accept;
      };
    }
    state parse_ipv4 { ex.extract(p, h.ipv4); transition accept; }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) { apply { } }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.eth); em.emit(p, h.ipv4); } }
}
`
	p, err := CompileModule("sel.up4", src)
	if err != nil {
		t.Fatalf("CompileModule: %v", err)
	}
	tr := p.Parser.State("start").Trans
	if tr.Kind != "select" || len(tr.Cases) != 3 {
		t.Fatalf("trans = %+v", tr)
	}
	if tr.Exprs[0].Ref != "$hdr.eth.etherType" || tr.Exprs[0].Width != 16 {
		t.Errorf("select expr = %+v", tr.Exprs[0])
	}
	if tr.Cases[0].Values[0] != 0x0800 || tr.Cases[0].HasMask[0] {
		t.Errorf("case 0 = %+v", tr.Cases[0])
	}
	if !tr.Cases[1].HasMask[0] || tr.Cases[1].Masks[0] != 0xEFFF {
		t.Errorf("case 1 = %+v", tr.Cases[1])
	}
	if !tr.Cases[2].Default {
		t.Errorf("case 2 = %+v", tr.Cases[2])
	}
}
