// Package frontend lowers a checked µP4 AST into µP4-IR (paper Fig. 4a:
// "µP4C --arch=µPA" compiles an individual module into IR).
//
// Lowering normalizes the storage namespace: the packet extern becomes
// "$pkt", intrinsic metadata "$im", the parsed-headers struct "$hdr", and
// user metadata "$meta". Module data parameters and local variables keep
// their declared names. This normalization is what makes composition by
// prefixing (ir.Program.Prefixed) well-defined.
package frontend

import (
	"fmt"

	"microp4/internal/ast"
	"microp4/internal/ir"
	"microp4/internal/lexer"
	"microp4/internal/obs"
	"microp4/internal/parser"
	"microp4/internal/types"
)

// Canonical storage roots.
const (
	PktPath  = "$pkt"
	ImPath   = "$im"
	HdrPath  = "$hdr"
	MetaPath = "$meta"
)

// CompileModule parses, checks, and lowers one µP4 source file containing
// exactly one program declaration, returning its IR.
func CompileModule(name, src string) (*ir.Program, error) {
	return CompileModuleTimed(name, src, nil)
}

// CompileModuleTimed is CompileModule with per-stage wall time and
// input/output sizes recorded into pt (which may be nil): the lexer
// (source bytes → tokens), the parser (tokens → declarations), and the
// frontend proper (type check + lowering, declarations → IR
// statements). Sizes follow each stage's natural unit.
func CompileModuleTimed(name, src string, pt *obs.PassTimer) (*ir.Program, error) {
	stop := pt.Time("lexer")
	toks, err := lexer.Tokenize(src)
	if err != nil {
		if le, ok := err.(*lexer.Error); ok {
			return nil, &parser.Error{File: name, Pos: le.Pos, Msg: le.Msg}
		}
		return nil, err
	}
	stop(len(src), len(toks))
	stop = pt.Time("parser")
	f, err := parser.ParseTokens(name, toks)
	if err != nil {
		return nil, err
	}
	stop(len(toks), len(f.Decls))
	stop = pt.Time("frontend")
	env, err := types.Check(f)
	if err != nil {
		return nil, err
	}
	progs := make([]*ast.ProgramDecl, 0, 1)
	for _, d := range f.Decls {
		if pd, ok := d.(*ast.ProgramDecl); ok {
			progs = append(progs, pd)
		}
	}
	if len(progs) == 0 {
		return nil, fmt.Errorf("%s: no program declaration", name)
	}
	target := progs[0]
	if env.Main != nil {
		target = env.Programs[env.Main.TypeName]
	} else if len(progs) > 1 {
		return nil, fmt.Errorf("%s: multiple programs and no main instantiation", name)
	}
	prog, err := Lower(env, target)
	if err != nil {
		return nil, err
	}
	stop(len(f.Decls), prog.StmtCount())
	return prog, nil
}

// binding maps a source name to its canonical IR path and type.
type binding struct {
	path string
	t    *types.Type
}

type lowerer struct {
	env   *types.Env
	prog  *ir.Program
	binds []map[string]*binding // scope stack
	// action param namespace: set while lowering an action body.
	actionName string
	actionPrms map[string]int // param name -> width
	inParser   bool
}

func (lw *lowerer) pushScope() { lw.binds = append(lw.binds, make(map[string]*binding)) }
func (lw *lowerer) popScope()  { lw.binds = lw.binds[:len(lw.binds)-1] }

func (lw *lowerer) bind(name, path string, t *types.Type) {
	lw.binds[len(lw.binds)-1][name] = &binding{path: path, t: t}
}

func (lw *lowerer) lookup(name string) *binding {
	for i := len(lw.binds) - 1; i >= 0; i-- {
		if b, ok := lw.binds[i][name]; ok {
			return b
		}
	}
	return nil
}

func (lw *lowerer) errf(pos ast.Pos, format string, args ...interface{}) error {
	return fmt.Errorf("%s:%s: %s", lw.env.FileName, pos, fmt.Sprintf(format, args...))
}

// Lower converts one checked program declaration into IR.
func Lower(env *types.Env, pd *ast.ProgramDecl) (*ir.Program, error) {
	lw := &lowerer{
		env: env,
		prog: &ir.Program{
			Name:       pd.Name,
			Interface:  pd.Interface,
			SourceFile: env.FileName,
			Headers:    make(map[string]*ir.HeaderType),
			Actions:    make(map[string]*ir.Action),
			Tables:     make(map[string]*ir.Table),
			Protos:     make(map[string]*ir.Proto),
		},
	}
	for name, h := range env.Headers {
		ht := &ir.HeaderType{Name: name, BitWidth: h.BitWidth, HasVarbit: h.HasVarbit}
		for _, f := range h.Fields {
			ht.Fields = append(ht.Fields, ir.HeaderField{
				Name: f.Name, Width: f.Width, Offset: f.Offset, Varbit: f.Varbit, MaxWidth: f.MaxWidth,
			})
		}
		lw.prog.Headers[name] = ht
	}
	for name, proto := range env.Protos {
		p := &ir.Proto{Name: name}
		for _, prm := range proto.Params {
			t, err := env.Resolve(prm.T)
			if err != nil {
				return nil, err
			}
			if t.Kind == types.KindExtern {
				continue // pkt/im_t are implicit in IR calls
			}
			if t.Kind != types.KindBit {
				return nil, lw.errf(prm.P, "module prototype %s: only bit-typed data parameters are supported, got %s", name, t)
			}
			p.Params = append(p.Params, ir.ModParam{Name: prm.Name, Dir: prm.Dir.String(), Width: t.Width})
		}
		lw.prog.Protos[name] = p
	}

	// Identify the main control and deparser.
	var mainCtrl, deparser *ast.ControlDecl
	for _, c := range pd.Controls {
		if types.IsDeparser(c) {
			if deparser != nil {
				return nil, lw.errf(c.P, "program %s has more than one deparser control", pd.Name)
			}
			deparser = c
		} else {
			if mainCtrl != nil {
				return nil, lw.errf(c.P, "program %s has more than one non-deparser control; µPA pipelines are parser/control/deparser", pd.Name)
			}
			mainCtrl = c
		}
	}
	if mainCtrl == nil {
		return nil, fmt.Errorf("%s: program %s has no main control block", env.FileName, pd.Name)
	}

	lw.pushScope()
	// Bind block parameters across parser/control/deparser into the
	// canonical namespace, and record the module signature.
	if err := lw.bindBlockParams(mainCtrl.Params, true); err != nil {
		return nil, err
	}
	if pd.Parser != nil {
		if err := lw.bindBlockParams(pd.Parser.Params, false); err != nil {
			return nil, err
		}
	}
	if deparser != nil {
		if err := lw.bindBlockParams(deparser.Params, false); err != nil {
			return nil, err
		}
	}

	// Parser locals.
	if pd.Parser != nil {
		for _, v := range pd.Parser.Locals {
			if err := lw.declareLocal(v); err != nil {
				return nil, err
			}
		}
	}
	// Control locals: vars, instances, actions, tables.
	for _, l := range mainCtrl.Locals {
		switch l := l.(type) {
		case *ast.VarDecl:
			if err := lw.declareLocal(l); err != nil {
				return nil, err
			}
		case *ast.InstDecl:
			if types.IsExternName(l.TypeName) {
				inst := ir.Instance{Name: l.Name, Extern: l.TypeName}
				if l.TypeName == "register" {
					// register(size, width) name; — the §8.2 extension.
					if len(l.Args) != 2 {
						return nil, lw.errf(l.P, "register takes (size, width) constructor arguments")
					}
					size, err := env.EvalConst(l.Args[0])
					if err != nil {
						return nil, err
					}
					width, err := env.EvalConst(l.Args[1])
					if err != nil {
						return nil, err
					}
					if size == 0 || size > 1<<20 || width == 0 || width > 64 {
						return nil, lw.errf(l.P, "register(%d, %d): size must be 1..2^20, width 1..64", size, width)
					}
					inst.Size = int(size)
					inst.Width = int(width)
				}
				if l.TypeName == "flowtable" {
					// flowtable(size, idleTTL, estTTL) name; — the
					// flow-state extension (stateful firewall).
					if len(l.Args) != 3 {
						return nil, lw.errf(l.P, "flowtable takes (size, idleTTL, estTTL) constructor arguments")
					}
					size, err := env.EvalConst(l.Args[0])
					if err != nil {
						return nil, err
					}
					idle, err := env.EvalConst(l.Args[1])
					if err != nil {
						return nil, err
					}
					est, err := env.EvalConst(l.Args[2])
					if err != nil {
						return nil, err
					}
					if size == 0 || size > 1<<20 {
						return nil, lw.errf(l.P, "flowtable(%d, ...): size must be 1..2^20", size)
					}
					if idle == 0 || est == 0 || idle > 1<<32 || est > 1<<32 {
						return nil, lw.errf(l.P, "flowtable TTLs must be 1..2^32 ticks (got idle=%d, est=%d)", idle, est)
					}
					inst.Size = int(size)
					inst.IdleTTL = idle
					inst.EstTTL = est
				}
				lw.prog.Instances = append(lw.prog.Instances, inst)
				lw.bind(l.Name, l.Name, &types.Type{Kind: types.KindExtern, Name: l.TypeName})
			} else {
				lw.prog.Instances = append(lw.prog.Instances, ir.Instance{Name: l.Name, Module: l.TypeName})
				lw.bind(l.Name, l.Name, &types.Type{Kind: types.KindModule, Name: l.TypeName})
			}
		}
	}
	// Lower actions and tables after all bindings exist.
	for _, l := range mainCtrl.Locals {
		switch l := l.(type) {
		case *ast.ActionDecl:
			if err := lw.lowerAction(l); err != nil {
				return nil, err
			}
		case *ast.TableDecl:
			if err := lw.lowerTable(l); err != nil {
				return nil, err
			}
		}
	}
	// Parser states.
	if pd.Parser != nil {
		lw.inParser = true
		irp := &ir.Parser{}
		for _, st := range pd.Parser.States {
			ist, err := lw.lowerState(st)
			if err != nil {
				return nil, err
			}
			irp.States = append(irp.States, ist)
		}
		lw.prog.Parser = irp
		lw.inParser = false
	}
	// Control apply.
	body, err := lw.lowerStmts(mainCtrl.Apply.Stmts)
	if err != nil {
		return nil, err
	}
	lw.prog.Apply = body
	// Deparser.
	if deparser != nil {
		dep, err := lw.lowerStmts(deparser.Apply.Stmts)
		if err != nil {
			return nil, err
		}
		lw.prog.Deparser = dep
	}
	return lw.prog, nil
}

// bindBlockParams maps a block's parameters into the canonical namespace.
// When collectSig is true (main control), bit-typed parameters become the
// module's callable signature.
func (lw *lowerer) bindBlockParams(params []ast.Param, collectSig bool) error {
	structSeen := 0
	for _, p := range params {
		t, err := lw.env.Resolve(p.T)
		if err != nil {
			return err
		}
		switch t.Kind {
		case types.KindExtern:
			switch t.Name {
			case "pkt":
				lw.bind(p.Name, PktPath, t)
			case "im_t":
				lw.bind(p.Name, ImPath, t)
			case "extractor", "emitter":
				lw.bind(p.Name, "$"+t.Name, t)
			case "out_buf", "in_buf", "mc_buf":
				lw.bind(p.Name, "$"+t.Name, t)
			default:
				return lw.errf(p.P, "unsupported extern parameter type %s", t.Name)
			}
		case types.KindStruct:
			var root string
			if structSeen == 0 {
				root = HdrPath
			} else if structSeen == 1 {
				root = MetaPath
			} else {
				return lw.errf(p.P, "more than two struct parameters; expected headers and metadata")
			}
			// Another block may already have bound this role (e.g. the
			// parser re-declares h). Verify types agree, reuse the root.
			if prev := lw.lookup(p.Name); prev != nil && prev.path == root {
				structSeen++
				continue
			}
			if err := lw.flattenStruct(root, t.Name); err != nil {
				return err
			}
			lw.bind(p.Name, root, t)
			structSeen++
		case types.KindHeader:
			// A bare header parameter acts as a single-header $hdr.
			root := HdrPath
			if structSeen > 0 {
				root = MetaPath
			}
			if prev := lw.lookup(p.Name); prev != nil && prev.path == root {
				structSeen++
				continue
			}
			sub := root + ".h"
			lw.prog.Decls = append(lw.prog.Decls, ir.Decl{Path: sub, Kind: ir.DeclHeader, TypeName: t.Name})
			lw.bind(p.Name, sub, t)
			structSeen++
		case types.KindBit:
			if prev := lw.lookup(p.Name); prev != nil {
				if prev.t.Kind != types.KindBit || prev.t.Width != t.Width {
					return lw.errf(p.P, "parameter %s redeclared with different type", p.Name)
				}
				continue
			}
			lw.prog.Decls = append(lw.prog.Decls, ir.Decl{Path: p.Name, Kind: ir.DeclBits, Width: t.Width})
			lw.bind(p.Name, p.Name, t)
			if collectSig {
				lw.prog.Params = append(lw.prog.Params, ir.ModParam{Name: p.Name, Dir: p.Dir.String(), Width: t.Width})
			}
		case types.KindBool:
			if prev := lw.lookup(p.Name); prev != nil {
				continue
			}
			lw.prog.Decls = append(lw.prog.Decls, ir.Decl{Path: p.Name, Kind: ir.DeclBool, Width: 1})
			lw.bind(p.Name, p.Name, t)
			if collectSig {
				lw.prog.Params = append(lw.prog.Params, ir.ModParam{Name: p.Name, Dir: p.Dir.String(), Width: 1})
			}
		default:
			return lw.errf(p.P, "unsupported parameter type %s", t)
		}
	}
	return nil
}

// flattenStruct emits storage declarations for every field of struct
// sname rooted at path root.
func (lw *lowerer) flattenStruct(root, sname string) error {
	si := lw.env.Structs[sname]
	if si == nil {
		return fmt.Errorf("unknown struct %s", sname)
	}
	for _, f := range si.Fields {
		path := root + "." + f.Name
		switch f.T.Kind {
		case types.KindBit:
			lw.prog.Decls = append(lw.prog.Decls, ir.Decl{Path: path, Kind: ir.DeclBits, Width: f.T.Width})
		case types.KindBool:
			lw.prog.Decls = append(lw.prog.Decls, ir.Decl{Path: path, Kind: ir.DeclBool, Width: 1})
		case types.KindHeader:
			lw.prog.Decls = append(lw.prog.Decls, ir.Decl{Path: path, Kind: ir.DeclHeader, TypeName: f.T.Name})
		case types.KindStack:
			lw.prog.Decls = append(lw.prog.Decls, ir.Decl{
				Path: path, Kind: ir.DeclStack, TypeName: f.T.Elem.Name, StackSize: f.T.Size,
			})
		case types.KindStruct:
			if err := lw.flattenStruct(path, f.T.Name); err != nil {
				return err
			}
		default:
			return fmt.Errorf("struct field %s.%s has unsupported type", sname, f.Name)
		}
	}
	return nil
}

func (lw *lowerer) declareLocal(v *ast.VarDecl) error {
	t, err := lw.env.Resolve(v.T)
	if err != nil {
		return err
	}
	switch t.Kind {
	case types.KindBit:
		lw.prog.Decls = append(lw.prog.Decls, ir.Decl{Path: v.Name, Kind: ir.DeclBits, Width: t.Width})
	case types.KindBool:
		lw.prog.Decls = append(lw.prog.Decls, ir.Decl{Path: v.Name, Kind: ir.DeclBool, Width: 1})
	case types.KindHeader:
		lw.prog.Decls = append(lw.prog.Decls, ir.Decl{Path: v.Name, Kind: ir.DeclHeader, TypeName: t.Name})
	case types.KindStruct:
		if err := lw.flattenStruct(v.Name, t.Name); err != nil {
			return err
		}
	case types.KindExtern:
		// pkt/im_t locals (multi-packet programs, Fig. 13).
		lw.prog.Instances = append(lw.prog.Instances, ir.Instance{Name: v.Name, Extern: t.Name})
	default:
		return lw.errf(v.P, "unsupported local variable type %s", t)
	}
	lw.bind(v.Name, v.Name, t)
	return nil
}
