package frontend

import (
	"fmt"
	"math/bits"

	"microp4/internal/ast"
	"microp4/internal/ir"
	"microp4/internal/types"
)

// ----------------------------------------------------------------------------
// Paths

// pathOf resolves a chain of Ident/Field/Index expressions to a canonical
// storage path and its type.
func (lw *lowerer) pathOf(e ast.Expr) (string, *types.Type, error) {
	switch e := e.(type) {
	case *ast.Ident:
		if b := lw.lookup(e.Name); b != nil {
			return b.path, b.t, nil
		}
		return "", nil, lw.errf(e.P, "undefined: %s", e.Name)
	case *ast.FieldExpr:
		base, bt, err := lw.pathOf(e.X)
		if err != nil {
			return "", nil, err
		}
		switch bt.Kind {
		case types.KindStruct:
			si := lw.env.Structs[bt.Name]
			ft := si.Field(e.Name)
			if ft == nil {
				return "", nil, lw.errf(e.P, "struct %s has no field %s", bt.Name, e.Name)
			}
			return base + "." + e.Name, ft, nil
		case types.KindHeader:
			hi := lw.env.Headers[bt.Name]
			f := hi.Field(e.Name)
			if f == nil {
				return "", nil, lw.errf(e.P, "header %s has no field %s", bt.Name, e.Name)
			}
			if f.Varbit {
				return base + "." + e.Name, &types.Type{Kind: types.KindVarbit, MaxWidth: f.MaxWidth}, nil
			}
			return base + "." + e.Name, types.Bit(f.Width), nil
		case types.KindStack:
			switch e.Name {
			case "next", "last":
				return base + "." + e.Name, bt.Elem, nil
			case "lastIndex":
				return base + ".lastIndex", types.Bit(32), nil
			}
			return "", nil, lw.errf(e.P, "header stack has no member %s", e.Name)
		case types.KindExtern:
			return "", nil, lw.errf(e.P, "extern %s has no data member %s", bt.Name, e.Name)
		}
		return "", nil, lw.errf(e.P, "%s has no member %s", bt, e.Name)
	case *ast.IndexExpr:
		base, bt, err := lw.pathOf(e.X)
		if err != nil {
			return "", nil, err
		}
		if bt.Kind != types.KindStack {
			return "", nil, lw.errf(e.P, "indexing non-stack value")
		}
		idx, err := lw.env.EvalConst(e.Index)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("%s.%d", base, idx), bt.Elem, nil
	}
	return "", nil, lw.errf(e.Pos(), "expression is not a storage path")
}

// ----------------------------------------------------------------------------
// Expressions

// fit assigns width w to unsized constants in e.
func fit(e *ir.Expr, w int) {
	if e == nil {
		return
	}
	switch e.Kind {
	case ir.EConst:
		if e.Width == 0 {
			e.Width = w
		}
	case ir.EBin:
		switch e.Op {
		case "==", "!=", "<", ">", "<=", ">=", "&&", "||", "++":
			return
		}
		if e.Width == 0 {
			e.Width = w
		}
		fit(e.X, w)
		fit(e.Y, w)
	case ir.EUn:
		if e.Op == "cast" || e.Op == "!" {
			return
		}
		if e.Width == 0 {
			e.Width = w
		}
		fit(e.X, w)
	}
}

func (lw *lowerer) lowerExpr(e ast.Expr) (*ir.Expr, *types.Type, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return ir.Const(e.Value, e.Width), types.Bit(e.Width), nil
	case *ast.BoolLit:
		return ir.BoolConst(e.Value), types.BoolType, nil
	case *ast.Ident:
		// Action parameter?
		if lw.actionPrms != nil {
			if w, ok := lw.actionPrms[e.Name]; ok {
				return ir.Ref(lw.actionName+"#"+e.Name, w), types.Bit(w), nil
			}
		}
		if b := lw.lookup(e.Name); b != nil {
			switch b.t.Kind {
			case types.KindBit:
				return ir.Ref(b.path, b.t.Width), b.t, nil
			case types.KindBool:
				r := ir.Ref(b.path, 1)
				r.Bool = true
				return r, b.t, nil
			case types.KindExtern, types.KindHeader, types.KindStruct, types.KindStack:
				// Usable as a call receiver or extern argument.
				return ir.Ref(b.path, 0), b.t, nil
			}
			return nil, nil, lw.errf(e.P, "cannot use %s (%s) in an expression", e.Name, b.t)
		}
		if c, ok := lw.env.Consts[e.Name]; ok {
			return ir.Const(c.Value, c.Width), types.Bit(c.Width), nil
		}
		return nil, nil, lw.errf(e.P, "undefined: %s", e.Name)
	case *ast.FieldExpr, *ast.IndexExpr:
		path, t, err := lw.pathOf(e)
		if err != nil {
			return nil, nil, err
		}
		switch t.Kind {
		case types.KindBit:
			return ir.Ref(path, t.Width), t, nil
		case types.KindBool:
			r := ir.Ref(path, 1)
			r.Bool = true
			return r, t, nil
		case types.KindHeader, types.KindStack, types.KindVarbit:
			return ir.Ref(path, 0), t, nil
		}
		return nil, nil, lw.errf(e.Pos(), "cannot use %s in an expression", t)
	case *ast.SliceExpr:
		x, xt, err := lw.lowerExpr(e.X)
		if err != nil {
			return nil, nil, err
		}
		if xt.Kind != types.KindBit {
			return nil, nil, lw.errf(e.P, "bit-slicing non-bit value")
		}
		return &ir.Expr{Kind: ir.ESlice, X: x, Hi: e.Hi, Lo: e.Lo, Width: e.Hi - e.Lo + 1}, types.Bit(e.Hi - e.Lo + 1), nil
	case *ast.CastExpr:
		t, err := lw.env.Resolve(e.T)
		if err != nil {
			return nil, nil, err
		}
		x, _, err := lw.lowerExpr(e.X)
		if err != nil {
			return nil, nil, err
		}
		if t.Kind != types.KindBit {
			return nil, nil, lw.errf(e.P, "only bit casts are supported")
		}
		fit(x, t.Width)
		return &ir.Expr{Kind: ir.EUn, Op: "cast", X: x, Width: t.Width}, t, nil
	case *ast.UnaryExpr:
		x, xt, err := lw.lowerExpr(e.X)
		if err != nil {
			return nil, nil, err
		}
		out := &ir.Expr{Kind: ir.EUn, Op: e.Op, X: x, Width: x.Width}
		if e.Op == "!" {
			out.Bool = true
			out.Width = 1
			return out, types.BoolType, nil
		}
		return out, xt, nil
	case *ast.BinaryExpr:
		x, xt, err := lw.lowerExpr(e.X)
		if err != nil {
			return nil, nil, err
		}
		y, yt, err := lw.lowerExpr(e.Y)
		if err != nil {
			return nil, nil, err
		}
		out := &ir.Expr{Kind: ir.EBin, Op: e.Op, X: x, Y: y}
		switch e.Op {
		case "&&", "||", "==", "!=", "<", ">", "<=", ">=":
			if x.Width > 0 {
				fit(y, x.Width)
			} else if y.Width > 0 {
				fit(x, y.Width)
			}
			out.Bool = true
			out.Width = 1
			return out, types.BoolType, nil
		case "++":
			out.Width = x.Width + y.Width
			return out, types.Bit(out.Width), nil
		case "<<", ">>":
			out.Width = x.Width
			return out, xt, nil
		default:
			w := x.Width
			if w == 0 {
				w = y.Width
			}
			fit(x, w)
			fit(y, w)
			out.Width = w
			if xt.Kind == types.KindBit && xt.Width > 0 {
				return out, xt, nil
			}
			return out, yt, nil
		}
	case *ast.CallExpr:
		return lw.lowerCallExpr(e)
	}
	return nil, nil, lw.errf(e.Pos(), "unsupported expression")
}

// lowerCallExpr lowers calls usable in expression position: isValid,
// im.get_out_port, im.get_value.
func (lw *lowerer) lowerCallExpr(e *ast.CallExpr) (*ir.Expr, *types.Type, error) {
	fe, ok := e.Fun.(*ast.FieldExpr)
	if !ok {
		return nil, nil, lw.errf(e.P, "unsupported call in expression")
	}
	switch fe.Name {
	case "isValid":
		path, t, err := lw.pathOf(fe.X)
		if err != nil {
			return nil, nil, err
		}
		if t.Kind != types.KindHeader {
			return nil, nil, lw.errf(e.P, "isValid on non-header value")
		}
		return &ir.Expr{Kind: ir.EIsValid, Ref: path, Width: 1, Bool: true}, types.BoolType, nil
	case "get_out_port":
		recv, t, err := lw.pathOf(fe.X)
		if err != nil || t.Kind != types.KindExtern || t.Name != "im_t" {
			return nil, nil, lw.errf(e.P, "get_out_port on non-im_t value")
		}
		return ir.Ref(recv+".out_port", 9), types.Bit(9), nil
	case "get_value":
		recv, t, err := lw.pathOf(fe.X)
		if err != nil || t.Kind != types.KindExtern || t.Name != "im_t" {
			return nil, nil, lw.errf(e.P, "get_value on non-im_t value")
		}
		if len(e.Args) != 1 {
			return nil, nil, lw.errf(e.P, "get_value takes one meta_t argument")
		}
		id, ok := e.Args[0].(*ast.Ident)
		if !ok {
			return nil, nil, lw.errf(e.P, "get_value argument must be a meta_t field name")
		}
		if _, ok := types.MetaFields[id.Name]; !ok {
			return nil, nil, lw.errf(e.P, "unknown meta_t field %s", id.Name)
		}
		return ir.Ref(recv+".meta."+id.Name, 32), types.Bit(32), nil
	}
	return nil, nil, lw.errf(e.P, "call of %s is not usable in an expression", fe.Name)
}

// ----------------------------------------------------------------------------
// Statements

func (lw *lowerer) lowerStmts(ss []ast.Stmt) ([]*ir.Stmt, error) {
	var out []*ir.Stmt
	for _, s := range ss {
		ls, err := lw.lowerStmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, ls...)
	}
	return out, nil
}

func (lw *lowerer) lowerStmt(s ast.Stmt) ([]*ir.Stmt, error) {
	switch s := s.(type) {
	case *ast.EmptyStmt:
		return nil, nil
	case *ast.BlockStmt:
		lw.pushScope()
		defer lw.popScope()
		return lw.lowerStmts(s.Stmts)
	case *ast.ExitStmt:
		return []*ir.Stmt{{Kind: ir.SExit}}, nil
	case *ast.VarDeclStmt:
		if err := lw.declareLocal(s.Decl); err != nil {
			return nil, err
		}
		if s.Decl.Init == nil {
			return nil, nil
		}
		b := lw.lookup(s.Decl.Name)
		rhs, _, err := lw.lowerExpr(s.Decl.Init)
		if err != nil {
			return nil, err
		}
		fit(rhs, b.t.Width)
		return []*ir.Stmt{{Kind: ir.SAssign, LHS: ir.Ref(b.path, b.t.Width), RHS: rhs}}, nil
	case *ast.AssignStmt:
		lhs, lt, err := lw.lowerLValue(s.LHS)
		if err != nil {
			return nil, err
		}
		rhs, _, err := lw.lowerExpr(s.RHS)
		if err != nil {
			return nil, err
		}
		fit(rhs, lt.Width)
		return []*ir.Stmt{{Kind: ir.SAssign, LHS: lhs, RHS: rhs}}, nil
	case *ast.CallStmt:
		return lw.lowerCallStmt(s.Call)
	case *ast.IfStmt:
		cond, _, err := lw.lowerExpr(s.Cond)
		if err != nil {
			return nil, err
		}
		then, err := lw.lowerStmt(s.Then)
		if err != nil {
			return nil, err
		}
		st := &ir.Stmt{Kind: ir.SIf, Cond: cond, Then: then}
		if s.Else != nil {
			els, err := lw.lowerStmt(s.Else)
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return []*ir.Stmt{st}, nil
	case *ast.SwitchStmt:
		cond, ct, err := lw.lowerExpr(s.Expr)
		if err != nil {
			return nil, err
		}
		st := &ir.Stmt{Kind: ir.SSwitch, Cond: cond}
		for _, c := range s.Cases {
			ic := &ir.Case{Default: c.IsDefault}
			for _, v := range c.Values {
				cv, err := lw.env.EvalConst(v)
				if err != nil {
					return nil, err
				}
				ic.Values = append(ic.Values, maskTo(cv, ct.Width))
			}
			body, err := lw.lowerStmt(c.Body)
			if err != nil {
				return nil, err
			}
			ic.Body = body
			st.Cases = append(st.Cases, ic)
		}
		return []*ir.Stmt{st}, nil
	}
	return nil, lw.errf(s.Pos(), "unsupported statement")
}

// lowerLValue lowers an assignable expression (path or slice of path).
func (lw *lowerer) lowerLValue(e ast.Expr) (*ir.Expr, *types.Type, error) {
	if se, ok := e.(*ast.SliceExpr); ok {
		x, xt, err := lw.lowerLValue(se.X)
		if err != nil {
			return nil, nil, err
		}
		if xt.Kind != types.KindBit {
			return nil, nil, lw.errf(se.P, "bit-slicing non-bit lvalue")
		}
		return &ir.Expr{Kind: ir.ESlice, X: x, Hi: se.Hi, Lo: se.Lo, Width: se.Hi - se.Lo + 1},
			types.Bit(se.Hi - se.Lo + 1), nil
	}
	path, t, err := lw.pathOf(e)
	if err != nil {
		return nil, nil, err
	}
	switch t.Kind {
	case types.KindBit:
		return ir.Ref(path, t.Width), t, nil
	case types.KindBool:
		r := ir.Ref(path, 1)
		r.Bool = true
		return r, t, nil
	}
	return nil, nil, lw.errf(e.Pos(), "cannot assign to %s", t)
}

func maskTo(v uint64, w int) uint64 {
	if w <= 0 || w >= 64 {
		return v
	}
	return v & (1<<uint(w) - 1)
}

func (lw *lowerer) lowerCallStmt(call *ast.CallExpr) ([]*ir.Stmt, error) {
	fe, ok := call.Fun.(*ast.FieldExpr)
	if !ok {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recirculate" {
			args, err := lw.lowerArgs(call.Args)
			if err != nil {
				return nil, err
			}
			return []*ir.Stmt{{Kind: ir.SMethod, Method: "recirculate", Args: args}}, nil
		}
		return nil, lw.errf(call.P, "unsupported call statement")
	}
	method := fe.Name

	// Table apply?
	if id, ok := fe.X.(*ast.Ident); ok && method == "apply" {
		if _, isTable := lw.prog.Tables[id.Name]; isTable {
			return []*ir.Stmt{{Kind: ir.SApplyTable, Table: id.Name}}, nil
		}
	}

	recvPath, recvT, err := lw.pathOf(fe.X)
	if err != nil {
		return nil, err
	}
	switch recvT.Kind {
	case types.KindHeader:
		switch method {
		case "setValid":
			return []*ir.Stmt{{Kind: ir.SSetValid, Hdr: recvPath}}, nil
		case "setInvalid":
			return []*ir.Stmt{{Kind: ir.SSetInvalid, Hdr: recvPath}}, nil
		}
		return nil, lw.errf(call.P, "header has no method %s", method)
	case types.KindStack:
		switch method {
		case "push_front", "pop_front":
			n, err := lw.env.EvalConst(call.Args[0])
			if err != nil {
				return nil, err
			}
			return []*ir.Stmt{{
				Kind: ir.SMethod, Target: recvPath, Method: method,
				Args: []ir.Arg{{Expr: ir.Const(n, 32)}},
			}}, nil
		}
		return nil, lw.errf(call.P, "header stack has no method %s", method)
	case types.KindModule:
		return lw.lowerModuleCall(call, fe, recvPath, recvT.Name)
	case types.KindExtern:
		return lw.lowerExternCall(call, recvPath, recvT.Name, method)
	}
	return nil, lw.errf(call.P, "%s has no method %s", recvT, method)
}

func (lw *lowerer) lowerModuleCall(call *ast.CallExpr, fe *ast.FieldExpr, inst, module string) ([]*ir.Stmt, error) {
	if fe.Name != "apply" {
		return nil, lw.errf(call.P, "module %s has no method %s", module, fe.Name)
	}
	proto := lw.env.Protos[module]
	if proto == nil {
		return nil, lw.errf(call.P, "unknown module %s", module)
	}
	st := &ir.Stmt{Kind: ir.SCallModule, Instance: inst, Module: module, PktArg: PktPath, ImArg: ImPath}
	for i, a := range call.Args {
		pt, err := lw.env.Resolve(proto.Params[i].T)
		if err != nil {
			return nil, err
		}
		if pt.Kind == types.KindExtern {
			path, _, err := lw.pathOf(a)
			if err != nil {
				return nil, err
			}
			switch pt.Name {
			case "pkt":
				st.PktArg = path
			case "im_t":
				st.ImArg = path
			}
			continue
		}
		ea, _, err := lw.lowerExpr(a)
		if err != nil {
			return nil, err
		}
		fit(ea, pt.Width)
		st.Args = append(st.Args, ir.Arg{Expr: ea, Dir: proto.Params[i].Dir.String()})
	}
	return []*ir.Stmt{st}, nil
}

func (lw *lowerer) lowerArgs(args []ast.Expr) ([]ir.Arg, error) {
	var out []ir.Arg
	for _, a := range args {
		e, _, err := lw.lowerExpr(a)
		if err != nil {
			return nil, err
		}
		out = append(out, ir.Arg{Expr: e})
	}
	return out, nil
}

func (lw *lowerer) lowerExternCall(call *ast.CallExpr, recvPath, extern, method string) ([]*ir.Stmt, error) {
	switch extern {
	case "extractor":
		if method != "extract" {
			return nil, lw.errf(call.P, "extractor has no statement method %s", method)
		}
		if !lw.inParser {
			return nil, lw.errf(call.P, "extract outside parser")
		}
		hdrPath, ht, err := lw.pathOf(call.Args[1])
		if err != nil {
			return nil, err
		}
		if ht.Kind != types.KindHeader {
			return nil, lw.errf(call.P, "extract target must be a header instance")
		}
		st := &ir.Stmt{Kind: ir.SExtract, Hdr: hdrPath}
		if len(call.Args) == 3 {
			vs, _, err := lw.lowerExpr(call.Args[2])
			if err != nil {
				return nil, err
			}
			fit(vs, 32)
			st.VarSize = vs
		}
		return []*ir.Stmt{st}, nil
	case "emitter":
		if method != "emit" {
			return nil, lw.errf(call.P, "emitter has no method %s", method)
		}
		hdrPath, ht, err := lw.pathOf(call.Args[1])
		if err != nil {
			return nil, err
		}
		if ht.Kind != types.KindHeader && ht.Kind != types.KindStack {
			return nil, lw.errf(call.P, "emit target must be a header or header stack")
		}
		return []*ir.Stmt{{Kind: ir.SEmit, Hdr: hdrPath}}, nil
	case "im_t":
		switch method {
		case "set_out_port":
			arg, _, err := lw.lowerExpr(call.Args[0])
			if err != nil {
				return nil, err
			}
			fit(arg, 9)
			if arg.Width != 9 {
				arg = &ir.Expr{Kind: ir.EUn, Op: "cast", X: arg, Width: 9}
			}
			return []*ir.Stmt{{Kind: ir.SAssign, LHS: ir.Ref(recvPath+".out_port", 9), RHS: arg}}, nil
		case "drop":
			return []*ir.Stmt{{
				Kind: ir.SAssign,
				LHS:  ir.Ref(recvPath+".out_port", 9),
				RHS:  ir.Const(types.DropPort, 9),
			}}, nil
		case "copy_from":
			args, err := lw.lowerArgs(call.Args)
			if err != nil {
				return nil, err
			}
			return []*ir.Stmt{{Kind: ir.SMethod, Target: recvPath, Method: "im_copy_from", Args: args}}, nil
		case "digest":
			// CPU–dataplane interface (§6.4/§8.2): send a value to the
			// control plane.
			args, err := lw.lowerArgs(call.Args)
			if err != nil {
				return nil, err
			}
			return []*ir.Stmt{{Kind: ir.SMethod, Target: recvPath, Method: "im_digest", Args: args}}, nil
		}
		return nil, lw.errf(call.P, "im_t has no statement method %s", method)
	case "pkt":
		if method == "copy_from" {
			args, err := lw.lowerArgs(call.Args)
			if err != nil {
				return nil, err
			}
			return []*ir.Stmt{{Kind: ir.SMethod, Target: recvPath, Method: "pkt_copy_from", Args: args}}, nil
		}
		return nil, lw.errf(call.P, "pkt has no method %s", method)
	case "register":
		args, err := lw.lowerArgs(call.Args)
		if err != nil {
			return nil, err
		}
		if method == "read" && args[0].Expr.Kind != ir.ERef && args[0].Expr.Kind != ir.ESlice {
			return nil, lw.errf(call.P, "register read destination must be assignable")
		}
		return []*ir.Stmt{{Kind: ir.SMethod, Target: recvPath, Method: "register_" + method, Args: args}}, nil
	case "flowtable":
		// ft.upsert(hit, dir, srcAddr, dstAddr, proto, srcPort, dstPort)
		// and ft.stick(hit, val, want, srcAddr, dstAddr, proto, srcPort,
		// dstPort): the two dataplane operations of the flow-state
		// extension. The out-params (hit, and stick's pinned value) feed
		// match-action keys, so policy decisions stay in the control
		// plane.
		switch method {
		case "upsert":
			args, err := lw.lowerArgs(call.Args)
			if err != nil {
				return nil, err
			}
			if len(args) != 7 {
				return nil, lw.errf(call.P, "flowtable upsert takes (hit, dir, srcAddr, dstAddr, proto, srcPort, dstPort), got %d arguments", len(args))
			}
			if args[0].Expr.Kind != ir.ERef && args[0].Expr.Kind != ir.ESlice {
				return nil, lw.errf(call.P, "flowtable upsert hit destination must be assignable")
			}
			return []*ir.Stmt{{Kind: ir.SMethod, Target: recvPath, Method: "flow_upsert", Args: args}}, nil
		case "stick":
			args, err := lw.lowerArgs(call.Args)
			if err != nil {
				return nil, err
			}
			if len(args) != 8 {
				return nil, lw.errf(call.P, "flowtable stick takes (hit, val, want, srcAddr, dstAddr, proto, srcPort, dstPort), got %d arguments", len(args))
			}
			for i := 0; i < 2; i++ {
				if args[i].Expr.Kind != ir.ERef && args[i].Expr.Kind != ir.ESlice {
					return nil, lw.errf(call.P, "flowtable stick hit and value destinations must be assignable")
				}
			}
			return []*ir.Stmt{{Kind: ir.SMethod, Target: recvPath, Method: "flow_stick", Args: args}}, nil
		}
		return nil, lw.errf(call.P, "flowtable has no method %s (only upsert and stick)", method)
	case "mc_engine", "out_buf", "in_buf", "mc_buf":
		args, err := lw.lowerArgs(call.Args)
		if err != nil {
			return nil, err
		}
		return []*ir.Stmt{{Kind: ir.SMethod, Target: recvPath, Method: extern + "_" + method, Args: args}}, nil
	}
	return nil, lw.errf(call.P, "extern %s has no method %s", extern, method)
}

// ----------------------------------------------------------------------------
// Actions and tables

func (lw *lowerer) lowerAction(a *ast.ActionDecl) error {
	act := &ir.Action{Name: a.Name}
	lw.actionName = a.Name
	lw.actionPrms = make(map[string]int)
	defer func() {
		lw.actionName = ""
		lw.actionPrms = nil
	}()
	for _, p := range a.Params {
		t, err := lw.env.Resolve(p.T)
		if err != nil {
			return err
		}
		if t.Kind != types.KindBit {
			return lw.errf(p.P, "action parameters must have bit type")
		}
		act.Params = append(act.Params, ir.Param{Name: p.Name, Width: t.Width})
		lw.actionPrms[p.Name] = t.Width
	}
	body, err := lw.lowerStmts(a.Body.Stmts)
	if err != nil {
		return err
	}
	act.Body = body
	lw.prog.Actions[a.Name] = act
	return nil
}

func (lw *lowerer) lowerTable(td *ast.TableDecl) error {
	t := &ir.Table{Name: td.Name, Size: td.Size}
	for _, k := range td.Keys {
		e, _, err := lw.lowerExpr(k.Expr)
		if err != nil {
			return err
		}
		t.Keys = append(t.Keys, ir.Key{Expr: e, MatchKind: k.MatchKind})
	}
	for _, a := range td.Actions {
		t.Actions = append(t.Actions, a.Name)
	}
	if td.DefaultAction != nil {
		ac := ir.ActionCall{Name: td.DefaultAction.Name}
		for _, arg := range td.DefaultAction.Args {
			v, err := lw.env.EvalConst(arg)
			if err != nil {
				return err
			}
			ac.Args = append(ac.Args, v)
		}
		t.Default = &ac
	}
	for _, ent := range td.Entries {
		ie := ir.Entry{Action: ir.ActionCall{Name: ent.Action.Name}}
		for _, arg := range ent.Action.Args {
			v, err := lw.env.EvalConst(arg)
			if err != nil {
				return err
			}
			ie.Action.Args = append(ie.Action.Args, v)
		}
		for i, ks := range ent.Keys {
			w := t.Keys[i].Expr.Width
			ek := ir.EntryKey{}
			if ks.DontCare {
				ek.DontCare = true
			} else {
				v, err := lw.env.EvalConst(ks.Value)
				if err != nil {
					return err
				}
				ek.Value = maskTo(v, w)
				if ks.Mask != nil {
					m, err := lw.env.EvalConst(ks.Mask)
					if err != nil {
						return err
					}
					ek.Mask = maskTo(m, w)
					ek.HasMask = true
					if t.Keys[i].MatchKind == "lpm" {
						plen, ok := prefixLen(ek.Mask, w)
						if !ok {
							return lw.errf(ks.P, "lpm mask %#x is not a prefix mask", ek.Mask)
						}
						ek.PrefixLen = plen
					}
				} else if t.Keys[i].MatchKind == "lpm" {
					ek.PrefixLen = w
				}
			}
			ie.Keys = append(ie.Keys, ek)
		}
		t.Entries = append(t.Entries, ie)
	}
	lw.prog.Tables[td.Name] = t
	return nil
}

// prefixLen returns the prefix length of a contiguous high mask.
func prefixLen(mask uint64, w int) (int, bool) {
	if mask == 0 {
		return 0, true
	}
	ones := bits.OnesCount64(mask)
	// A prefix mask of length n in width w is ones in [w-n, w).
	want := (uint64(1)<<uint(ones) - 1) << uint(w-ones)
	if w >= 64 {
		want = ^uint64(0) << uint(64-ones)
	}
	if mask == want {
		return ones, true
	}
	return 0, false
}

// ----------------------------------------------------------------------------
// Parser states

func (lw *lowerer) lowerState(st *ast.State) (*ir.State, error) {
	out := &ir.State{Name: st.Name}
	stmts, err := lw.lowerStmts(st.Stmts)
	if err != nil {
		return nil, err
	}
	out.Stmts = stmts
	switch tr := st.Trans.(type) {
	case nil:
		out.Trans = &ir.Trans{Kind: "direct", Target: ast.StateReject}
	case *ast.DirectTransition:
		out.Trans = &ir.Trans{Kind: "direct", Target: tr.Target}
	case *ast.SelectTransition:
		it := &ir.Trans{Kind: "select"}
		var widths []int
		for _, e := range tr.Exprs {
			le, lt, err := lw.lowerExpr(e)
			if err != nil {
				return nil, err
			}
			it.Exprs = append(it.Exprs, le)
			widths = append(widths, lt.Width)
		}
		for _, c := range tr.Cases {
			ic := &ir.TransCase{Target: c.Target, Default: c.IsDefault}
			if !c.IsDefault {
				for i, v := range c.Values {
					if v == nil {
						ic.Values = append(ic.Values, 0)
						ic.Masks = append(ic.Masks, 0)
						ic.HasMask = append(ic.HasMask, false)
						ic.DontCare = append(ic.DontCare, true)
						continue
					}
					cv, err := lw.env.EvalConst(v)
					if err != nil {
						return nil, err
					}
					ic.Values = append(ic.Values, maskTo(cv, widths[i]))
					if c.Masks[i] != nil {
						m, err := lw.env.EvalConst(c.Masks[i])
						if err != nil {
							return nil, err
						}
						ic.Masks = append(ic.Masks, maskTo(m, widths[i]))
						ic.HasMask = append(ic.HasMask, true)
					} else {
						ic.Masks = append(ic.Masks, 0)
						ic.HasMask = append(ic.HasMask, false)
					}
					ic.DontCare = append(ic.DontCare, false)
				}
			}
			it.Cases = append(it.Cases, ic)
		}
		out.Trans = it
	}
	return out, nil
}
