package frontend_test

import (
	"strings"
	"testing"

	"microp4/internal/frontend"
	"microp4/internal/lib"
)

// FuzzCompile hammers the whole frontend (lexer, parser, type checker,
// midend) with mutated µP4 source. Every library module seeds the
// corpus, so the mutator starts from realistic programs. Compile errors
// are expected and fine; panics are bugs.
func FuzzCompile(f *testing.F) {
	for _, name := range lib.ModuleNames() {
		src, err := lib.ModuleSource(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(src)
	}
	for _, prog := range []string{"P1", "P4", "P7", "P10", "P11"} {
		m, err := lib.Program(prog)
		if err != nil {
			continue
		}
		if src, err := lib.Source(m.MainFile); err == nil {
			f.Add(src)
		}
		// The scenario-pack monoliths are the largest single-module
		// programs in the tree — deep parsers, flowtable calls, header
		// grow/shrink — so they pull the mutator into rarer grammar.
		if m.MonoFile != "" {
			if src, err := lib.Source(m.MonoFile); err == nil {
				f.Add(src)
			}
		}
	}
	f.Add("")
	f.Add("module m() {}")
	f.Add("header h { bit<8> f; } module m(inout h x) { parser { extract(x); } }")

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized")
		}
		// Reject pathological nesting cheaply; the parser is recursive
		// descent and deep artificial nesting only measures stack size.
		if strings.Count(src, "(") > 2000 || strings.Count(src, "{") > 2000 {
			t.Skip("pathological nesting")
		}
		_, _ = frontend.CompileModule("fuzz.up4", src)
	})
}
