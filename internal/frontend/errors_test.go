package frontend

import (
	"strings"
	"testing"
)

// wrap builds a minimal program around a control body.
func wrap(body string) string {
	return `
struct empty_t { }
header ethernet_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
struct hdr_t { ethernet_h eth; }
program W : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.eth); transition accept; }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) { ` + body + ` }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.eth); } }
}
`
}

func TestLoweringErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no-program", "header h_t { bit<8> f; }", "no program"},
		{"two-deparsers", `
struct empty_t { }
struct h_t { }
program W : implements Unicast {
  parser P(extractor ex, pkt p, out h_t h, inout empty_t m, im_t im) { state start { transition accept; } }
  control C(pkt p, inout h_t h, inout empty_t m, im_t im) { apply { } }
  control D1(emitter em, pkt p, in h_t h) { apply { } }
  control D2(emitter em, pkt p, in h_t h) { apply { } }
}`, "more than one deparser"},
		{"two-controls", `
struct empty_t { }
struct h_t { }
program W : implements Unicast {
  parser P(extractor ex, pkt p, out h_t h, inout empty_t m, im_t im) { state start { transition accept; } }
  control C1(pkt p, inout h_t h, inout empty_t m, im_t im) { apply { } }
  control C2(pkt p, inout h_t h, inout empty_t m, im_t im) { apply { } }
}`, "more than one non-deparser"},
		{"bad-register-args", wrap(`register(0, 32) r; apply { }`), "register"},
		{"register-width", wrap(`register(16, 128) r; apply { }`), "width"},
		{"module-struct-param", `
struct empty_t { }
struct h_t { }
struct odd_t { bit<8> x; }
M(pkt p, im_t im, in odd_t o);
program W : implements Unicast {
  parser P(extractor ex, pkt p, out h_t h, inout empty_t m, im_t im) { state start { transition accept; } }
  control C(pkt p, inout h_t h, inout empty_t m, im_t im) { M() m_i; apply { } }
}`, "bit-typed data parameters"},
	}
	for _, c := range cases {
		_, err := CompileModule(c.name+".up4", c.src)
		if err == nil {
			t.Errorf("%s: compiled, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestBoolAndCastLowering(t *testing.T) {
	p, err := CompileModule("bc.up4", wrap(`
    bool flag;
    bit<8> small;
    bit<32> wide;
    apply {
      flag = true;
      small = 0xFF;
      wide = (bit<32>) small;
      small = (bit<8>) wide;
      if (flag) {
        wide = wide + 1;
      }
      flag = h.eth.etherType == 0x0800;
    }`))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if d := p.DeclByPath("flag"); d == nil || d.Kind != "bool" {
		t.Errorf("flag decl = %+v", d)
	}
}

func TestSliceAssignLowering(t *testing.T) {
	p, err := CompileModule("sl.up4", wrap(`
    bit<32> acc;
    apply {
      acc[7:0] = (bit<8>) h.eth.etherType;
      acc[31:16] = h.eth.etherType;
    }`))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(p.Apply) != 2 {
		t.Fatalf("apply = %d stmts", len(p.Apply))
	}
	lhs := p.Apply[0].LHS
	if lhs.Kind != "slice" || lhs.Hi != 7 || lhs.Lo != 0 {
		t.Errorf("slice lhs = %+v", lhs)
	}
}

func TestMetaGetValueLowering(t *testing.T) {
	p, err := CompileModule("gv.up4", wrap(`
    bit<32> ts;
    apply {
      ts = im.get_value(IN_TIMESTAMP);
      if (im.get_out_port() == 0) {
        im.set_out_port(3);
      }
    }`))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if p.Apply[0].RHS.Ref != "$im.meta.IN_TIMESTAMP" {
		t.Errorf("get_value ref = %s", p.Apply[0].RHS.Ref)
	}
}

func TestConcatAndShift(t *testing.T) {
	p, err := CompileModule("cc.up4", wrap(`
    bit<32> combined;
    apply {
      combined = h.eth.etherType ++ h.eth.etherType;
      combined = combined << 4;
      combined = combined >> 2;
      combined = ~combined;
      combined = -combined;
    }`))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if p.Apply[0].RHS.Op != "++" || p.Apply[0].RHS.Width != 32 {
		t.Errorf("concat = %+v", p.Apply[0].RHS)
	}
}

// TestTypedefAndConsts drives typedefs and named constants through the
// whole frontend: header fields, table entries, select cases.
func TestTypedefAndConsts(t *testing.T) {
	src := `
typedef bit<48> mac_t;
typedef bit<16> etype_t;
const etype_t TYPE_IPV4 = 0x0800;
const bit<9> CPU_PORT = 64;
struct empty_t { }
header ethernet_h { mac_t dstMac; mac_t srcMac; etype_t etherType; }
header ipv4_h { bit<8> ttl; bit<8> protocol; bit<16> csum; bit<32> src; bit<32> dst; }
struct hdr_t { ethernet_h eth; ipv4_h ipv4; }
program TD : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.eth);
      transition select(h.eth.etherType) {
        TYPE_IPV4: parse_v4;
        default: accept;
      };
    }
    state parse_v4 { ex.extract(p, h.ipv4); transition accept; }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) {
    action to_cpu() { im.set_out_port(CPU_PORT); }
    action keep() { }
    table punt {
      key = { h.eth.etherType : exact; }
      actions = { to_cpu; keep; }
      const entries = {
        TYPE_IPV4 : keep();
      }
      default_action = to_cpu;
    }
    apply { punt.apply(); }
  }
  control D(emitter em, pkt p, in hdr_t h) {
    apply { em.emit(p, h.eth); em.emit(p, h.ipv4); }
  }
}
TD(P, C, D) main;
`
	p, err := CompileModule("td.up4", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if p.Headers["ethernet_h"].Field("dstMac").Width != 48 {
		t.Error("typedef width lost")
	}
	tr := p.Parser.State("start").Trans
	if tr.Cases[0].Values[0] != 0x0800 {
		t.Errorf("const select case = %#x", tr.Cases[0].Values[0])
	}
	tbl := p.Tables["punt"]
	if tbl.Entries[0].Keys[0].Value != 0x0800 {
		t.Errorf("const entry key = %#x", tbl.Entries[0].Keys[0].Value)
	}
	cpu := p.Actions["to_cpu"]
	if cpu.Body[0].RHS.Value != 64 {
		t.Errorf("const action arg = %+v", cpu.Body[0].RHS)
	}
}

// TestMaskedSelectEndToEnd checks &&& select masks survive lowering.
func TestMaskedSelectEndToEnd(t *testing.T) {
	src := `
struct empty_t { }
header v_h { bit<16> tagged; }
header w_h { bit<8> x; }
struct hdr_t { v_h v; w_h w; }
program MK : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start {
      ex.extract(p, h.v);
      transition select(h.v.tagged) {
        0x8100 &&& 0xEFFF: parse_w;
        default: accept;
      };
    }
    state parse_w { ex.extract(p, h.w); transition accept; }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) { apply { } }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.v); em.emit(p, h.w); } }
}
MK(P, C, D) main;
`
	p, err := CompileModule("mk.up4", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	c := p.Parser.State("start").Trans.Cases[0]
	if !c.HasMask[0] || c.Masks[0] != 0xEFFF || c.Values[0] != 0x8100 {
		t.Errorf("masked case = %+v", c)
	}
}
