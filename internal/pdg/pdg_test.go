package pdg

import (
	"reflect"
	"testing"

	"microp4/internal/frontend"
	"microp4/internal/ir"
)

// fig13Src is the A-B validation program of Fig. 13 (§C): the packet is
// copied for a mirror (pm) and a test run (pt); the production program
// processes p, the test program processes pt, and mismatching results
// are logged using the pristine copy pm. (The figure's
// `im.set_out_port(DROP)` is written against the test copy's metadata
// `it`, consistent with its slice-3 annotation.)
const fig13Src = `
struct empty_t { }
struct nohdr_t { }
Prog(pkt p, im_t im, out bit<32> res);
Test(pkt p, im_t im, out bit<32> res);
Log(pkt p, im_t im, in bit<32> a, in bit<32> b);
program Validate : implements Orchestration {
  control C(pkt p, inout nohdr_t h, inout empty_t m, im_t im, out_buf ob) {
    pkt pm;
    pkt pt;
    im_t imm;
    im_t it;
    bit<32> hp;
    bit<32> ht;
    Prog() prog_i;
    Test() test_i;
    Log() log_i;
    apply {
      pm.copy_from(p);
      imm.copy_from(im);
      pt.copy_from(p);
      it.copy_from(im);
      prog_i.apply(p, im, hp);
      test_i.apply(pt, it, ht);
      if (hp != ht) {
        log_i.apply(pm, imm, hp, ht);
        ob.enqueue(pm, imm);
      }
      it.set_out_port(DROP);
      ob.enqueue(p, im);
      ob.enqueue(pt, it);
    }
  }
}
Validate(C) main;
`

func buildFig13(t *testing.T) (*ir.Program, *Graph) {
	t.Helper()
	p, err := frontend.CompileModule("fig13.up4", fig13Src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p, Build(p)
}

// node indices in the apply block (flattened pre-order):
//
//	0 pm.copy_from(p)      5 test_i.apply(pt,it,ht)   9  it.set_out_port(DROP)
//	1 imm.copy_from(im)    6 if (hp != ht)            10 ob.enqueue(p,im)
//	2 pt.copy_from(p)      7 log_i.apply(pm,imm,...)  11 ob.enqueue(pt,it)
//	3 it.copy_from(im)     8 ob.enqueue(pm,imm)
//	4 prog_i.apply(p,im,hp)
func TestFigure13Slicing(t *testing.T) {
	_, g := buildFig13(t)
	if len(g.Nodes) != 12 {
		for _, n := range g.Nodes {
			t.Logf("node %d: %s", n.ID, ir.StmtString(n.Stmt))
		}
		t.Fatalf("got %d nodes, want 12", len(g.Nodes))
	}
	slices := g.Slices()
	want := map[string][]int{
		"pm":   {0, 1, 4, 5, 6, 7, 8}, // the figure's slice 1
		"$pkt": {4, 10},               // slice 2
		"pt":   {2, 3, 5, 9, 11},      // slice 3
	}
	for pkt, ids := range want {
		if !reflect.DeepEqual(slices[pkt], ids) {
			t.Errorf("slice(%s) = %v, want %v", pkt, slices[pkt], ids)
		}
	}
	// Overlaps: prog.apply is in slices 2 and 1; test.apply in 3 and 1
	// (the figure's "2,1" and "3,1" annotations).
	if !containsInt(slices["pm"], 4) || !containsInt(slices["$pkt"], 4) {
		t.Error("prog.apply should be in both pm's and p's slices")
	}
	if !containsInt(slices["pm"], 5) || !containsInt(slices["pt"], 5) {
		t.Error("test.apply should be in both pm's and pt's slices")
	}
}

func TestFigure13PPS(t *testing.T) {
	_, g := buildFig13(t)
	pps, err := g.BuildPPS()
	if err != nil {
		t.Fatalf("BuildPPS: %v", err)
	}
	if len(pps.Threads) != 3 {
		t.Fatalf("got %d threads, want 3: %+v", len(pps.Threads), pps.Threads)
	}
	byPkt := map[string][]int{}
	for _, th := range pps.Threads {
		byPkt[th.Pkt] = th.Nodes
	}
	// Cross-instance calls belong to the thread of the packet they
	// process (§C: such calls are excluded from other threads).
	if !reflect.DeepEqual(byPkt["$pkt"], []int{4, 10}) {
		t.Errorf("thread($pkt) = %v, want [4 10]", byPkt["$pkt"])
	}
	if !reflect.DeepEqual(byPkt["pt"], []int{2, 3, 5, 9, 11}) {
		t.Errorf("thread(pt) = %v, want [2 3 5 9 11]", byPkt["pt"])
	}
	if !reflect.DeepEqual(byPkt["pm"], []int{0, 1, 6, 7, 8}) {
		t.Errorf("thread(pm) = %v, want [0 1 6 7 8]", byPkt["pm"])
	}
	// The production and test threads feed the mirror thread (hp, ht).
	wantEdges := [][2]string{{"$pkt", "pm"}, {"pt", "pm"}}
	if !reflect.DeepEqual(pps.Edges, wantEdges) {
		t.Errorf("edges = %v, want %v", pps.Edges, wantEdges)
	}
	// Serializable: production first, then test, then the mirror.
	if !reflect.DeepEqual(pps.Order, []string{"$pkt", "pt", "pm"}) {
		t.Errorf("order = %v, want [$pkt pt pm]", pps.Order)
	}
}

// TestPPSCycleDetection builds a program whose threads mutually depend
// on each other's results — not serializable.
func TestPPSCycleDetection(t *testing.T) {
	src := `
struct empty_t { }
struct nohdr_t { }
F(pkt p, im_t im, in bit<32> x, out bit<32> y);
program Cyclic : implements Orchestration {
  control C(pkt p, inout nohdr_t h, inout empty_t m, im_t im, out_buf ob) {
    pkt pa;
    bit<32> a;
    bit<32> b;
    F() f1;
    F() f2;
    apply {
      pa.copy_from(p);
      a = 0;
      b = 0;
      f1.apply(p, im, b, a);   // thread $pkt reads b, writes a
      f2.apply(pa, im, a, b);  // thread pa reads a, writes b
      f1.apply(p, im, b, a);   // thread $pkt reads b again: pa -> $pkt
      ob.enqueue(p, im);
      ob.enqueue(pa, im);
    }
  }
}
Cyclic(C) main;
`
	p, err := frontend.CompileModule("cyc.up4", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	g := Build(p)
	if _, err := g.BuildPPS(); err == nil {
		t.Error("BuildPPS accepted a cyclic packet-processing schedule")
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
