// Package pdg implements µP4C's preprocessing for multi-packet programs
// (§5.4, §C): it builds a Program Dependence Graph over a control block,
// computes packet slices per pkt instance (Fig. 13), extracts per-packet
// threads, and assembles the Packet-Processing Schedule (PPS) that the
// backend realizes with target replication primitives (e.g. V1Model
// clone).
package pdg

import (
	"fmt"
	"sort"
	"strings"

	"microp4/internal/ir"
)

// Node is one statement of the control block.
type Node struct {
	ID     int
	Stmt   *ir.Stmt
	Reads  []string
	Writes []string
	// PktUse names the pkt instance this node processes ("" if none):
	// the packet argument of a module call, the source/target of a
	// copy_from, or the enqueued packet.
	PktUse string
	// PktInit is set on copy_from nodes: the node initializes PktUse.
	PktInit bool
	CtrlDep int // enclosing conditional node id, -1 at top level
}

// Graph is the PDG of one control block.
type Graph struct {
	Nodes []*Node
	// PktInstances lists the pkt instances in play: "$pkt" plus locals.
	PktInstances []string
	externs      map[string]bool // pkt and im_t instances (dependence units)
}

// Build constructs the PDG of prog's apply block.
func Build(prog *ir.Program) *Graph {
	g := &Graph{}
	pkts := map[string]bool{"$pkt": true}
	externs := map[string]bool{"$im": true}
	for _, inst := range prog.Instances {
		if inst.Extern == "pkt" {
			pkts[inst.Name] = true
		}
		if inst.Extern == "pkt" || inst.Extern == "im_t" {
			externs[inst.Name] = true
		}
	}
	for p := range pkts {
		g.PktInstances = append(g.PktInstances, p)
	}
	sort.Strings(g.PktInstances)
	g.externs = externs

	var walk func(ss []*ir.Stmt, ctrl int)
	walk = func(ss []*ir.Stmt, ctrl int) {
		for _, s := range ss {
			n := &Node{ID: len(g.Nodes), Stmt: s, CtrlDep: ctrl}
			g.Nodes = append(g.Nodes, n)
			reads := map[string]bool{}
			writes := map[string]bool{}
			collectExpr := func(e *ir.Expr) {
				if e == nil {
					return
				}
				e.Walk(func(x *ir.Expr) {
					if x.Kind == ir.ERef {
						reads[x.Ref] = true
					}
					if x.Kind == ir.EIsValid {
						reads[x.Ref+".$valid"] = true
					}
				})
			}
			switch s.Kind {
			case ir.SAssign:
				collectExpr(s.RHS)
				if s.LHS.Kind == ir.ERef {
					writes[s.LHS.Ref] = true
					delete(reads, s.LHS.Ref)
				} else {
					collectExpr(s.LHS)
				}
			case ir.SCallModule:
				// A module call reads and mutates its packet and im, and
				// touches its data arguments per direction.
				n.PktUse = s.PktArg
				reads[s.PktArg] = true
				writes[s.PktArg] = true
				reads[s.ImArg] = true
				writes[s.ImArg] = true
				for _, a := range s.Args {
					if a.Dir == "in" || a.Dir == "inout" || a.Dir == "" {
						collectExpr(a.Expr)
					}
					if (a.Dir == "out" || a.Dir == "inout") && a.Expr.Kind == ir.ERef {
						writes[a.Expr.Ref] = true
					}
				}
			case ir.SMethod:
				switch s.Method {
				case "pkt_copy_from":
					n.PktUse = s.Target
					n.PktInit = true
					writes[s.Target] = true
					if len(s.Args) > 0 && s.Args[0].Expr.Kind == ir.ERef {
						reads[s.Args[0].Expr.Ref] = true
					}
				case "im_copy_from":
					writes[s.Target] = true
					if len(s.Args) > 0 && s.Args[0].Expr.Kind == ir.ERef {
						reads[s.Args[0].Expr.Ref] = true
					}
				case "out_buf_enqueue":
					if len(s.Args) > 0 && s.Args[0].Expr.Kind == ir.ERef {
						n.PktUse = s.Args[0].Expr.Ref
						reads[n.PktUse] = true
					}
					if len(s.Args) > 1 && s.Args[1].Expr.Kind == ir.ERef {
						reads[s.Args[1].Expr.Ref] = true
					}
				default:
					for _, a := range s.Args {
						collectExpr(a.Expr)
					}
					if s.Target != "" {
						writes[s.Target] = true
					}
				}
			case ir.SApplyTable:
				if tbl := prog.Tables[s.Table]; tbl != nil {
					for _, k := range tbl.Keys {
						collectExpr(k.Expr)
					}
					for _, an := range tbl.Actions {
						if act := prog.Actions[an]; act != nil {
							ir.WalkStmts(act.Body, func(as *ir.Stmt) {
								collectExpr(as.RHS)
								collectExpr(as.Cond)
								if as.Kind == ir.SAssign && as.LHS.Kind == ir.ERef {
									writes[as.LHS.Ref] = true
								}
							})
						}
					}
				}
			case ir.SIf, ir.SSwitch:
				collectExpr(s.Cond)
				walk(s.Then, n.ID)
				walk(s.Else, n.ID)
				for _, c := range s.Cases {
					walk(c.Body, n.ID)
				}
			case ir.SSetValid, ir.SSetInvalid:
				writes[s.Hdr+".$valid"] = true
			}
			// Extern-instance fields (it.out_port, $im.meta.*) fold onto
			// their instance for dependence purposes.
			n.Reads = normalize(reads, externs)
			n.Writes = normalize(writes, externs)
		}
	}
	walk(prog.Apply, -1)
	return g
}

// normalize folds extern-instance field paths onto their instance.
func normalize(m map[string]bool, externs map[string]bool) []string {
	set := map[string]bool{}
	for k := range m {
		folded := k
		if i := strings.IndexByte(k, '.'); i > 0 && externs[k[:i]] {
			folded = k[:i]
		}
		set[folded] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Slices computes the packet slice of every pkt instance (§C): the
// executable subset of the PDG affecting the instance's value — a
// backward closure over data and control dependences from every
// statement using the instance.
func (g *Graph) Slices() map[string][]int {
	// defs[i][sym] — whether node i writes sym.
	writes := make([]map[string]bool, len(g.Nodes))
	for i, n := range g.Nodes {
		writes[i] = map[string]bool{}
		for _, w := range n.Writes {
			writes[i][w] = true
		}
	}
	out := make(map[string][]int)
	for _, pktName := range g.PktInstances {
		inSlice := make(map[int]bool)
		var work []int
		for _, n := range g.Nodes {
			if n.PktUse == pktName {
				work = append(work, n.ID)
			}
		}
		isPkt := make(map[string]bool, len(g.PktInstances))
		for _, p := range g.PktInstances {
			isPkt[p] = true
		}
		for len(work) > 0 {
			id := work[len(work)-1]
			work = work[:len(work)-1]
			if inSlice[id] {
				continue
			}
			inSlice[id] = true
			n := g.Nodes[id]
			// Nodes processing a different pkt instance are slice
			// frontier: included (they define values this slice uses)
			// but not traversed through — their own dependencies belong
			// to that instance's thread (§C, Fig. 13: prog.apply carries
			// labels "2,1" while pt's copy stays in slice 3 only).
			if n.PktUse != "" && n.PktUse != pktName {
				continue
			}
			// Control dependence.
			if n.CtrlDep >= 0 && !inSlice[n.CtrlDep] {
				work = append(work, n.CtrlDep)
			}
			// Data dependence: every earlier definition of a read symbol.
			for _, r := range n.Reads {
				if isPkt[r] && r != pktName {
					continue
				}
				for j := id - 1; j >= 0; j-- {
					if writes[j][r] && !inSlice[j] {
						work = append(work, j)
					}
				}
			}
		}
		ids := make([]int, 0, len(inSlice))
		for id := range inSlice {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		out[pktName] = ids
	}
	return out
}

// Thread is the per-packet-instance sub-program of the PPS.
type Thread struct {
	Pkt   string
	Nodes []int
}

// PPS is the Packet-Processing Schedule: threads plus common (CPS)
// nodes, with inter-thread dependence edges, topologically ordered.
type PPS struct {
	Threads []Thread
	CPS     []int       // nodes shared by multiple slices with no pkt use
	Edges   [][2]string // thread dependence edges (from, to)
	Order   []string    // serialized thread order
}

// BuildPPS extracts threads from the slices and checks serializability
// (§C): read-after-write dependences between threads must form a DAG.
// Anti-dependences through a thread's initializing copy_from are
// resolved by the copy itself — the realization's clone primitive
// snapshots the packet — and do not create edges.
func (g *Graph) BuildPPS() (*PPS, error) {
	slices := g.Slices()
	pps := &PPS{}
	owner := make(map[int]string) // node -> owning thread
	for _, n := range g.Nodes {
		if n.PktUse != "" {
			owner[n.ID] = n.PktUse
		}
	}
	// Shared, pkt-free nodes are CPS; exclusive pkt-free nodes join
	// their only slice's thread.
	sliceCount := make(map[int]int)
	sliceOf := make(map[int]string)
	for pkt, ids := range slices {
		for _, id := range ids {
			sliceCount[id]++
			sliceOf[id] = pkt
		}
	}
	for _, n := range g.Nodes {
		if owner[n.ID] != "" {
			continue
		}
		switch {
		case sliceCount[n.ID] == 1:
			owner[n.ID] = sliceOf[n.ID]
		case sliceCount[n.ID] > 1:
			pps.CPS = append(pps.CPS, n.ID)
		}
	}
	byThread := make(map[string][]int)
	for id, th := range owner {
		byThread[th] = append(byThread[th], id)
	}
	for _, pkt := range g.PktInstances {
		ids := byThread[pkt]
		sort.Ints(ids)
		pps.Threads = append(pps.Threads, Thread{Pkt: pkt, Nodes: ids})
	}
	sort.Ints(pps.CPS)

	// Inter-thread read-after-write edges.
	lastWriter := make(map[string]int)
	edgeSet := make(map[[2]string]bool)
	for _, n := range g.Nodes {
		for _, r := range n.Reads {
			if w, ok := lastWriter[r]; ok {
				from, to := owner[w], owner[n.ID]
				if from != "" && to != "" && from != to && !g.Nodes[n.ID].PktInit {
					edgeSet[[2]string{from, to}] = true
				}
			}
		}
		for _, w := range n.Writes {
			lastWriter[w] = n.ID
		}
	}
	for e := range edgeSet {
		pps.Edges = append(pps.Edges, e)
	}
	sort.Slice(pps.Edges, func(i, j int) bool {
		if pps.Edges[i][0] != pps.Edges[j][0] {
			return pps.Edges[i][0] < pps.Edges[j][0]
		}
		return pps.Edges[i][1] < pps.Edges[j][1]
	})

	// Topological order over threads; a cycle means the PPS is not
	// serializable on targets without concurrent multi-copy processing.
	order, err := topo(g.PktInstances, pps.Edges)
	if err != nil {
		return nil, err
	}
	pps.Order = order
	return pps, nil
}

func topo(nodes []string, edges [][2]string) ([]string, error) {
	indeg := make(map[string]int)
	adj := make(map[string][]string)
	for _, n := range nodes {
		indeg[n] = 0
	}
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		indeg[e[1]]++
	}
	var ready []string
	for _, n := range nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, m := range adj[n] {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
		sort.Strings(ready)
	}
	if len(order) != len(nodes) {
		return nil, fmt.Errorf("packet-processing schedule has a dependence cycle among threads %v; it is not serializable (§C)", nodes)
	}
	return order, nil
}
