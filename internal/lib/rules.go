package lib

import "microp4/internal/sim"

// Canonical test routes shared by every program's rule set.
const (
	NetA    = 0x0A000000 // 10.0.0.0/8  -> next hop 100 -> port 1
	NetB    = 0x14000000 // 20.0.0.0/8  -> next hop 200 -> port 2
	NetV6Hi = 0x20010DB8_00000000
	NhA     = 100
	NhB     = 200
	NhV6    = 300
	PortA   = 1
	PortB   = 2
	PortV6  = 3
	DmacA   = 0x00AA00000001
	SmacA   = 0x00BB00000001
)

// InstallDefaultRules installs the standard evaluation rule set for one
// of P1..P9 into tables. When mono is false, composed (instance-prefixed)
// table and action names are used; when true, the monolithic program's
// flat names. Both installs produce semantically identical dataplanes —
// the property the differential tests check.
func InstallDefaultRules(t *sim.Tables, prog string, mono bool) {
	type namer func(table, action string) (string, string)
	composedNames := func(prefix string) namer {
		return func(table, action string) (string, string) {
			return prefix + "." + table, prefix + "." + action
		}
	}
	flat := func(table, action string) (string, string) { return table, action }

	add := func(n namer, table string, keys []sim.RuntimeKey, action string, args ...uint64) {
		tn, an := n(table, action)
		t.AddEntry(tn, keys, an, args...)
	}

	// Ethernet forwarding by next hop (every program except P1).
	installForward := func() {
		t.AddEntry("forward_tbl", []sim.RuntimeKey{sim.Exact(NhA)}, "forward", DmacA, SmacA, PortA)
		t.AddEntry("forward_tbl", []sim.RuntimeKey{sim.Exact(NhB)}, "forward", DmacA, SmacA, PortB)
		t.AddEntry("forward_tbl", []sim.RuntimeKey{sim.Exact(NhV6)}, "forward", DmacA, SmacA, PortV6)
	}
	// IPv4 and IPv6 routing tables.
	installV4 := func(n namer, processAction string) {
		add(n, "ipv4_lpm_tbl", []sim.RuntimeKey{sim.LPM(NetA, 8)}, processAction, NhA)
		add(n, "ipv4_lpm_tbl", []sim.RuntimeKey{sim.LPM(NetB, 8)}, processAction, NhB)
	}
	installV6 := func(n namer, processAction string) {
		add(n, "ipv6_lpm_tbl", []sim.RuntimeKey{sim.LPM(NetV6Hi, 32)}, processAction, NhV6)
	}

	switch prog {
	case "P1":
		dmacT, aclT := flat, flat
		setPort, deny := "set_port", "deny"
		if !mono {
			aclT = composedNames("acl_i")
		}
		// Deny TCP to port 22 from anywhere; allow the rest.
		add(aclT, "acl_tbl", []sim.RuntimeKey{
			sim.Any(), sim.Any(), sim.Ternary(6, 0xFF), sim.Ternary(22, 0xFFFF),
		}, deny)
		add(dmacT, "dmac_tbl", []sim.RuntimeKey{sim.Exact(DmacA)}, setPort, 5)
	case "P2":
		mplsT := flat
		if !mono {
			mplsT = composedNames("mpls_i")
		}
		add(mplsT, "mpls_tbl", []sim.RuntimeKey{sim.Exact(1000)}, "swap", 2000, NhA)
		add(mplsT, "mpls_tbl", []sim.RuntimeKey{sim.Exact(999)}, "pop_to_ipv4", NhB)
		if mono {
			installV4(flat, "v4_process")
			installV6(flat, "v6_process")
		} else {
			installV4(composedNames("l3_i.ipv4_i"), "process")
			installV6(composedNames("l3_i.ipv6_i"), "process")
		}
		installForward()
	case "P3":
		natT := flat
		if !mono {
			natT = composedNames("nat_i")
		}
		add(natT, "nat_tbl", []sim.RuntimeKey{sim.Exact(0xC0A80002), sim.Exact(6)},
			"snat_tcp", 0x08080808, 40000)
		add(natT, "nat_tbl", []sim.RuntimeKey{sim.Exact(0xC0A80003), sim.Exact(17)},
			"snat_udp", 0x08080809, 40001)
		if mono {
			installV4(flat, "v4_process")
			installV6(flat, "v6_process")
		} else {
			installV4(composedNames("l3_i.ipv4_i"), "process")
			installV6(composedNames("l3_i.ipv6_i"), "process")
		}
		installForward()
	case "P4":
		if mono {
			installV4(flat, "v4_process")
			installV6(flat, "v6_process")
		} else {
			installV4(composedNames("l3_i.ipv4_i"), "process")
			installV6(composedNames("l3_i.ipv6_i"), "process")
		}
		installForward()
	case "P5":
		nptT := flat
		if !mono {
			nptT = composedNames("npt_i")
		}
		// Translate the internal prefix fd00::/16 to the external prefix.
		add(nptT, "npt_tbl", []sim.RuntimeKey{sim.LPM(0xFD00000000000000, 16)},
			"translate_out", NetV6Hi)
		if mono {
			installV4(flat, "v4_process")
			installV6(flat, "v6_process")
		} else {
			installV4(composedNames("l3_i.ipv4_i"), "process")
			installV6(composedNames("l3_i.ipv6_i"), "process")
		}
		installForward()
	case "P6":
		// sr4_tbl uses const entries; only routing tables needed.
		if mono {
			installV4(flat, "v4_process")
			installV6(flat, "v6_process")
		} else {
			installV4(composedNames("l3_i.ipv4_i"), "process")
			installV6(composedNames("l3_i.ipv6_i"), "process")
		}
		installForward()
	case "P7":
		if mono {
			installV4(flat, "v4_process")
			installV6(flat, "v6_process")
		} else {
			installV4(composedNames("l3_i.ipv4_i"), "process")
			installV6(composedNames("l3_i.ipv6_i"), "process")
		}
		installForward()
	case "P8":
		InstallTelemetryRules(t, mono, 1)
		if mono {
			installV4(flat, "v4_process")
			installV6(flat, "v6_process")
		} else {
			installV4(composedNames("l3_i.ipv4_i"), "process")
			installV6(composedNames("l3_i.ipv6_i"), "process")
		}
		installForward()
	case "P9":
		InstallFlowstateRules(t)
		if mono {
			installV4(flat, "v4_process")
			installV6(flat, "v6_process")
		} else {
			installV4(composedNames("l3_i.ipv4_i"), "process")
			installV6(composedNames("l3_i.ipv6_i"), "process")
		}
		installForward()
	}
}

// InstallTelemetryRules programs P8's tel_tbl to stamp hop records with
// switch id swid. The table is keyed on the record count already in the
// packet, and only counts 0..3 get a stamp action — the telemetry
// record stack holds four entries, so the table's default skip() is the
// overflow guard that keeps a fifth record from ever being produced.
// Multi-switch topologies call this per switch with distinct ids.
func InstallTelemetryRules(t *sim.Tables, mono bool, swid uint64) {
	table, action := "tel_i.tel_tbl", "tel_i.stamp"
	if mono {
		table, action = "tel_tbl", "stamp"
	}
	for cnt := uint64(0); cnt < 4; cnt++ {
		t.AddEntry(table, []sim.RuntimeKey{sim.Exact(cnt)}, action, swid)
	}
}

// InstallFlowstateRules programs P9's direction and firewall policy:
// traffic arriving on PortB is the reverse (outside) direction, and
// fw_tbl passes everything except unsolicited reverse traffic —
// (dir=1, hit=0) falls through to the default deny. The tables live in
// the main program, so composed and monolithic variants share the flat
// names (only the flowtable itself is instance-prefixed when composed,
// and its entries come from the dataplane, not from here).
func InstallFlowstateRules(t *sim.Tables) {
	t.AddEntry("dir_tbl", []sim.RuntimeKey{sim.Exact(PortB)}, "dir_rev")
	t.AddEntry("fw_tbl", []sim.RuntimeKey{sim.Exact(0), sim.Exact(0)}, "allow")
	t.AddEntry("fw_tbl", []sim.RuntimeKey{sim.Exact(0), sim.Exact(1)}, "allow")
	t.AddEntry("fw_tbl", []sim.RuntimeKey{sim.Exact(1), sim.Exact(1)}, "allow")
}
