package lib

import "microp4/internal/sim"

// Canonical test routes shared by every program's rule set.
const (
	NetA    = 0x0A000000 // 10.0.0.0/8  -> next hop 100 -> port 1
	NetB    = 0x14000000 // 20.0.0.0/8  -> next hop 200 -> port 2
	NetV6Hi = 0x20010DB8_00000000
	NhA     = 100
	NhB     = 200
	NhV6    = 300
	PortA   = 1
	PortB   = 2
	PortV6  = 3
	DmacA   = 0x00AA00000001
	SmacA   = 0x00BB00000001
)

// NF scenario-pack constants (P10 carrier edge, P11 front-end LB).
const (
	TunDst      = 0xC0000201         // 192.0.2.1: local tunnel endpoint
	Nat64PfxHi  = 0x0064FF9B00000000 // 64:ff9b::/96 well-known prefix
	Nat64Pool   = 0xC6336401         // 198.51.100.1: NAT64 pool address
	V6ClientHi  = NetV6Hi            // bound IPv6 client, high 64 bits
	V6ClientLo  = 0x0000000000000042 // bound IPv6 client, low 64 bits
	VipAddr     = 0x0A0000FE         // 10.0.0.254: virtual service IP
	VipPort     = 80
	BackendPort = 8080
	NumBackends = 3 // backend b lives at NetB|b, forwarded out PortB
)

// InstallDefaultRules installs the standard evaluation rule set for one
// of P1..P11 into tables. When mono is false, composed (instance-prefixed)
// table and action names are used; when true, the monolithic program's
// flat names. Both installs produce semantically identical dataplanes —
// the property the differential tests check.
func InstallDefaultRules(t *sim.Tables, prog string, mono bool) {
	type namer func(table, action string) (string, string)
	composedNames := func(prefix string) namer {
		return func(table, action string) (string, string) {
			return prefix + "." + table, prefix + "." + action
		}
	}
	flat := func(table, action string) (string, string) { return table, action }

	add := func(n namer, table string, keys []sim.RuntimeKey, action string, args ...uint64) {
		tn, an := n(table, action)
		t.AddEntry(tn, keys, an, args...)
	}

	// Ethernet forwarding by next hop (every program except P1).
	installForward := func() {
		t.AddEntry("forward_tbl", []sim.RuntimeKey{sim.Exact(NhA)}, "forward", DmacA, SmacA, PortA)
		t.AddEntry("forward_tbl", []sim.RuntimeKey{sim.Exact(NhB)}, "forward", DmacA, SmacA, PortB)
		t.AddEntry("forward_tbl", []sim.RuntimeKey{sim.Exact(NhV6)}, "forward", DmacA, SmacA, PortV6)
	}
	// IPv4 and IPv6 routing tables.
	installV4 := func(n namer, processAction string) {
		add(n, "ipv4_lpm_tbl", []sim.RuntimeKey{sim.LPM(NetA, 8)}, processAction, NhA)
		add(n, "ipv4_lpm_tbl", []sim.RuntimeKey{sim.LPM(NetB, 8)}, processAction, NhB)
	}
	installV6 := func(n namer, processAction string) {
		add(n, "ipv6_lpm_tbl", []sim.RuntimeKey{sim.LPM(NetV6Hi, 32)}, processAction, NhV6)
	}

	switch prog {
	case "P1":
		dmacT, aclT := flat, flat
		setPort, deny := "set_port", "deny"
		if !mono {
			aclT = composedNames("acl_i")
		}
		// Deny TCP to port 22 from anywhere; allow the rest.
		add(aclT, "acl_tbl", []sim.RuntimeKey{
			sim.Any(), sim.Any(), sim.Ternary(6, 0xFF), sim.Ternary(22, 0xFFFF),
		}, deny)
		add(dmacT, "dmac_tbl", []sim.RuntimeKey{sim.Exact(DmacA)}, setPort, 5)
	case "P2":
		mplsT := flat
		if !mono {
			mplsT = composedNames("mpls_i")
		}
		add(mplsT, "mpls_tbl", []sim.RuntimeKey{sim.Exact(1000)}, "swap", 2000, NhA)
		add(mplsT, "mpls_tbl", []sim.RuntimeKey{sim.Exact(999)}, "pop_to_ipv4", NhB)
		if mono {
			installV4(flat, "v4_process")
			installV6(flat, "v6_process")
		} else {
			installV4(composedNames("l3_i.ipv4_i"), "process")
			installV6(composedNames("l3_i.ipv6_i"), "process")
		}
		installForward()
	case "P3":
		natT := flat
		if !mono {
			natT = composedNames("nat_i")
		}
		add(natT, "nat_tbl", []sim.RuntimeKey{sim.Exact(0xC0A80002), sim.Exact(6)},
			"snat_tcp", 0x08080808, 40000)
		add(natT, "nat_tbl", []sim.RuntimeKey{sim.Exact(0xC0A80003), sim.Exact(17)},
			"snat_udp", 0x08080809, 40001)
		if mono {
			installV4(flat, "v4_process")
			installV6(flat, "v6_process")
		} else {
			installV4(composedNames("l3_i.ipv4_i"), "process")
			installV6(composedNames("l3_i.ipv6_i"), "process")
		}
		installForward()
	case "P4":
		if mono {
			installV4(flat, "v4_process")
			installV6(flat, "v6_process")
		} else {
			installV4(composedNames("l3_i.ipv4_i"), "process")
			installV6(composedNames("l3_i.ipv6_i"), "process")
		}
		installForward()
	case "P5":
		nptT := flat
		if !mono {
			nptT = composedNames("npt_i")
		}
		// Translate the internal prefix fd00::/16 to the external prefix.
		add(nptT, "npt_tbl", []sim.RuntimeKey{sim.LPM(0xFD00000000000000, 16)},
			"translate_out", NetV6Hi)
		if mono {
			installV4(flat, "v4_process")
			installV6(flat, "v6_process")
		} else {
			installV4(composedNames("l3_i.ipv4_i"), "process")
			installV6(composedNames("l3_i.ipv6_i"), "process")
		}
		installForward()
	case "P6":
		// sr4_tbl uses const entries; only routing tables needed.
		if mono {
			installV4(flat, "v4_process")
			installV6(flat, "v6_process")
		} else {
			installV4(composedNames("l3_i.ipv4_i"), "process")
			installV6(composedNames("l3_i.ipv6_i"), "process")
		}
		installForward()
	case "P7":
		if mono {
			installV4(flat, "v4_process")
			installV6(flat, "v6_process")
		} else {
			installV4(composedNames("l3_i.ipv4_i"), "process")
			installV6(composedNames("l3_i.ipv6_i"), "process")
		}
		installForward()
	case "P8":
		InstallTelemetryRules(t, mono, 1)
		if mono {
			installV4(flat, "v4_process")
			installV6(flat, "v6_process")
		} else {
			installV4(composedNames("l3_i.ipv4_i"), "process")
			installV6(composedNames("l3_i.ipv6_i"), "process")
		}
		installForward()
	case "P9":
		InstallFlowstateRules(t)
		if mono {
			installV4(flat, "v4_process")
			installV6(flat, "v6_process")
		} else {
			installV4(composedNames("l3_i.ipv4_i"), "process")
			installV6(composedNames("l3_i.ipv6_i"), "process")
		}
		installForward()
	case "P10":
		dcT, natT := flat, flat
		if !mono {
			dcT = composedNames("dc_i")
			natT = composedNames("n64_i")
		}
		// Terminate every locally addressed tunnel flavor.
		add(dcT, "tun_tbl", []sim.RuntimeKey{sim.Exact(TunDst), sim.Exact(4)}, "decap_v4")
		add(dcT, "tun_tbl", []sim.RuntimeKey{sim.Exact(TunDst), sim.Exact(41)}, "decap_v6")
		add(dcT, "tun_tbl", []sim.RuntimeKey{sim.Exact(TunDst), sim.Exact(47)}, "decap_gre")
		// One bound IPv6 client mapped onto the pool address, both ways.
		add(natT, "bind_tbl", []sim.RuntimeKey{sim.Exact(V6ClientHi), sim.Exact(V6ClientLo)},
			"map_out", Nat64Pool)
		add(natT, "rev_tbl", []sim.RuntimeKey{sim.Exact(Nat64Pool)},
			"map_in", V6ClientHi, V6ClientLo)
		// Pass everything except unsolicited inbound translations:
		// (rev=1, hit=0) falls through to the default deny.
		t.AddEntry("nat_pol_tbl", []sim.RuntimeKey{sim.Exact(0), sim.Exact(0)}, "allow")
		t.AddEntry("nat_pol_tbl", []sim.RuntimeKey{sim.Exact(0), sim.Exact(1)}, "allow")
		t.AddEntry("nat_pol_tbl", []sim.RuntimeKey{sim.Exact(1), sim.Exact(1)}, "allow")
		if mono {
			installV4(flat, "v4_process")
			installV6(flat, "v6_process")
		} else {
			installV4(composedNames("l3_i.ipv4_i"), "process")
			installV6(composedNames("l3_i.ipv6_i"), "process")
		}
		installForward()
	case "P11":
		balT, aclT := flat, flat
		if !mono {
			balT = composedNames("bal_i")
			aclT = composedNames("acl_i")
		}
		InstallBalancerPool(t, mono, 0)
		add(balT, "vip_tbl", []sim.RuntimeKey{
			sim.Exact(VipAddr), sim.Exact(6), sim.Exact(VipPort)}, "vip_hit", 1)
		// Deny TCP to port 22 — evaluated on the rewritten header.
		add(aclT, "acl_tbl", []sim.RuntimeKey{
			sim.Any(), sim.Any(), sim.Ternary(6, 0xFF), sim.Ternary(22, 0xFFFF),
		}, "deny")
		t.AddEntry("fwd_tbl", []sim.RuntimeKey{sim.Exact(1), sim.Exact(0), sim.Exact(0)},
			"forward", DmacA, SmacA, PortA)
		for bk := uint64(1); bk <= NumBackends; bk++ {
			t.AddEntry("fwd_tbl", []sim.RuntimeKey{sim.Exact(1), sim.Exact(1), sim.Exact(bk)},
				"forward", DmacA, SmacA, PortB)
		}
	}
}

// InstallBalancerPool (re)programs P11's backend pool: the eight hash
// buckets of service 1 are spread round-robin over the live backends,
// rotated by shift, and backend_tbl resolves backend b to address
// NetB|b on BackendPort. Failover tests call this again with a new
// shift to model pool churn: bucket_tbl entries are replaced in place,
// which must never reassign an established (stuck) flow.
func InstallBalancerPool(t *sim.Tables, mono bool, shift uint64) {
	bucketT, backendT := "bucket_tbl", "backend_tbl"
	pick, toBackend := "pick", "to_backend"
	if !mono {
		bucketT, backendT = "bal_i.bucket_tbl", "bal_i.backend_tbl"
		pick, toBackend = "bal_i.pick", "bal_i.to_backend"
	}
	t.ClearTable(bucketT)
	t.ClearTable(backendT)
	for b := uint64(0); b < 8; b++ {
		bk := (b+shift)%NumBackends + 1
		t.AddEntry(bucketT, []sim.RuntimeKey{sim.Exact(1), sim.Exact(b)}, pick, bk)
	}
	for bk := uint64(1); bk <= NumBackends; bk++ {
		t.AddEntry(backendT, []sim.RuntimeKey{sim.Exact(bk)}, toBackend,
			NetB|bk, BackendPort)
	}
}

// InstallTelemetryRules programs P8's tel_tbl to stamp hop records with
// switch id swid. The table is keyed on the record count already in the
// packet, and only counts 0..3 get a stamp action — the telemetry
// record stack holds four entries, so the table's default skip() is the
// overflow guard that keeps a fifth record from ever being produced.
// Multi-switch topologies call this per switch with distinct ids.
func InstallTelemetryRules(t *sim.Tables, mono bool, swid uint64) {
	table, action := "tel_i.tel_tbl", "tel_i.stamp"
	if mono {
		table, action = "tel_tbl", "stamp"
	}
	for cnt := uint64(0); cnt < 4; cnt++ {
		t.AddEntry(table, []sim.RuntimeKey{sim.Exact(cnt)}, action, swid)
	}
}

// InstallFlowstateRules programs P9's direction and firewall policy:
// traffic arriving on PortB is the reverse (outside) direction, and
// fw_tbl passes everything except unsolicited reverse traffic —
// (dir=1, hit=0) falls through to the default deny. The tables live in
// the main program, so composed and monolithic variants share the flat
// names (only the flowtable itself is instance-prefixed when composed,
// and its entries come from the dataplane, not from here).
func InstallFlowstateRules(t *sim.Tables) {
	t.AddEntry("dir_tbl", []sim.RuntimeKey{sim.Exact(PortB)}, "dir_rev")
	t.AddEntry("fw_tbl", []sim.RuntimeKey{sim.Exact(0), sim.Exact(0)}, "allow")
	t.AddEntry("fw_tbl", []sim.RuntimeKey{sim.Exact(0), sim.Exact(1)}, "allow")
	t.AddEntry("fw_tbl", []sim.RuntimeKey{sim.Exact(1), sim.Exact(1)}, "allow")
}
