package lib

import (
	"testing"

	"microp4/internal/midend"
)

// TestCompositionGoldens pins structural invariants of every composed
// program — byte-stack size, table count, instance count, and min-packet
// size — so accidental changes to the compiler or library surface as
// diffs here rather than as silent behaviour shifts.
func TestCompositionGoldens(t *testing.T) {
	want := map[string]struct {
		bs        int // byte-stack bytes (Eq. 4)
		minPkt    int
		tables    int // total MATs incl. synthetic
		userTbls  int
		instances int // inlined module instances incl. main
	}{
		"P1": {bs: 54, minPkt: 14, tables: 6, userTbls: 2, instances: 2},
		"P2": {bs: 58, minPkt: 14, tables: 13, userTbls: 4, instances: 5},
		"P3": {bs: 54, minPkt: 14, tables: 13, userTbls: 4, instances: 5},
		"P4": {bs: 54, minPkt: 14, tables: 10, userTbls: 3, instances: 4},
		"P5": {bs: 54, minPkt: 14, tables: 13, userTbls: 4, instances: 5},
		"P6": {bs: 84, minPkt: 14, tables: 13, userTbls: 4, instances: 5},
		"P7": {bs: 126, minPkt: 14, tables: 12, userTbls: 3, instances: 5},
		"P8": {bs: 72, minPkt: 14, tables: 13, userTbls: 4, instances: 5},
		"P9":  {bs: 54, minPkt: 14, tables: 14, userTbls: 5, instances: 5},
		"P10": {bs: 156, minPkt: 14, tables: 18, userTbls: 7, instances: 6},
		"P11": {bs: 54, minPkt: 14, tables: 11, userTbls: 5, instances: 3},
	}
	for _, m := range Programs {
		main, mods, err := CompileProgram(m.Name)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		res, err := midend.Build(main, mods...)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		w, ok := want[m.Name]
		if !ok {
			t.Fatalf("no golden for %s", m.Name)
		}
		pl := res.Pipeline
		if pl.BsBytes != w.bs {
			t.Errorf("%s: byte-stack %d, golden %d", m.Name, pl.BsBytes, w.bs)
		}
		if pl.MinPkt != w.minPkt {
			t.Errorf("%s: min-packet %d, golden %d", m.Name, pl.MinPkt, w.minPkt)
		}
		if len(pl.Tables) != w.tables {
			t.Errorf("%s: %d tables, golden %d", m.Name, len(pl.Tables), w.tables)
		}
		if len(pl.UserTables) != w.userTbls {
			t.Errorf("%s: %d user tables, golden %d", m.Name, len(pl.UserTables), w.userTbls)
		}
		if len(pl.Instances) != w.instances {
			t.Errorf("%s: %d instances, golden %d", m.Name, len(pl.Instances), w.instances)
		}
	}
}
