// Package lib is the µP4 module library and program suite from the
// paper's evaluation (§7, Table 1): the reusable packet-processing
// modules and the composed programs P1–P11 built from them, plus
// monolithic P4-style equivalents used as baselines in Tables 2 and 3.
// (P8, in-band telemetry, P9, the stateful firewall, and the P10/P11
// production-NF pack — tunnel-terminating NAT64 edge and L4 load
// balancer — extend the paper's suite with this repo's observability
// and flow-state work.)
package lib

import (
	"embed"
	"fmt"
	"sort"

	"microp4/internal/frontend"
	"microp4/internal/ir"
	"microp4/internal/obs"
)

//go:embed up4/*.up4 mono/*.up4
var sources embed.FS

// moduleFiles maps module name to source file.
var moduleFiles = map[string]string{
	"ACL":       "up4/acl.up4",
	"Balancer":  "up4/balancer.up4",
	"Decap":     "up4/decap.up4",
	"FlowCount": "up4/flowcount.up4",
	"Flowstate": "up4/flowstate.up4",
	"NAT64":     "up4/nat64.up4",
	"IPv4":      "up4/ipv4.up4",
	"IPv4Opts":  "up4/ipv4opts.up4",
	"IPv6":      "up4/ipv6.up4",
	"L3":        "up4/l3.up4",
	"L3SRv6":    "up4/l3srv6.up4",
	"MPLS":      "up4/mpls.up4",
	"NAT":       "up4/nat.up4",
	"NPTv6":     "up4/nptv6.up4",
	"SRv4":      "up4/srv4.up4",
	"SRv6":      "up4/srv6.up4",
	"Telemetry": "up4/telemetry.up4",
}

// Manifest describes one composed program of Table 1.
type Manifest struct {
	Name     string   // P1..P9
	Main     string   // main program name
	MainFile string   // source file of the main program
	Modules  []string // transitively required library modules
	MonoFile string   // monolithic equivalent source file
	// Table1Row lists the module names as Table 1 reports them ("Eth"
	// denotes the Ethernet processing embodied by the main program).
	Table1Row []string
}

// Programs is the Table 1 suite in order.
var Programs = []Manifest{
	{
		Name: "P1", Main: "P1EthAcl", MainFile: "up4/p1_ethacl.up4",
		Modules:   []string{"ACL"},
		MonoFile:  "mono/p1.up4",
		Table1Row: []string{"Eth", "ACL"},
	},
	{
		Name: "P2", Main: "P2Edge", MainFile: "up4/p2_edge.up4",
		Modules:   []string{"MPLS", "L3", "IPv4", "IPv6"},
		MonoFile:  "mono/p2.up4",
		Table1Row: []string{"Eth", "IPv4", "IPv6", "MPLS"},
	},
	{
		Name: "P3", Main: "P3Nat", MainFile: "up4/p3_nat.up4",
		Modules:   []string{"NAT", "L3", "IPv4", "IPv6"},
		MonoFile:  "mono/p3.up4",
		Table1Row: []string{"Eth", "IPv4", "IPv6", "NAT"},
	},
	{
		Name: "P4", Main: "P4Router", MainFile: "up4/p4_router.up4",
		Modules:   []string{"L3", "IPv4", "IPv6"},
		MonoFile:  "mono/p4.up4",
		Table1Row: []string{"Eth", "IPv4", "IPv6"},
	},
	{
		Name: "P5", Main: "P5Nptv6", MainFile: "up4/p5_nptv6.up4",
		Modules:   []string{"NPTv6", "L3", "IPv4", "IPv6"},
		MonoFile:  "mono/p5.up4",
		Table1Row: []string{"Eth", "IPv4", "IPv6", "NPTv6"},
	},
	{
		Name: "P6", Main: "P6Srv4", MainFile: "up4/p6_srv4.up4",
		Modules:   []string{"SRv4", "L3", "IPv4", "IPv6"},
		MonoFile:  "mono/p6.up4",
		Table1Row: []string{"Eth", "IPv4", "IPv6", "SRv4"},
	},
	{
		Name: "P7", Main: "P7Srv6", MainFile: "up4/p7_srv6.up4",
		Modules:   []string{"L3SRv6", "SRv6", "IPv4", "IPv6"},
		MonoFile:  "mono/p7.up4",
		Table1Row: []string{"Eth", "IPv4", "IPv6", "SRv6"},
	},
	{
		Name: "P8", Main: "P8Int", MainFile: "up4/p8_int.up4",
		Modules:   []string{"Telemetry", "L3", "IPv4", "IPv6"},
		MonoFile:  "mono/p8.up4",
		Table1Row: []string{"Eth", "IPv4", "IPv6", "INT"},
	},
	{
		Name: "P9", Main: "P9Fw", MainFile: "up4/p9_fw.up4",
		Modules:   []string{"Flowstate", "L3", "IPv4", "IPv6"},
		MonoFile:  "mono/p9.up4",
		Table1Row: []string{"Eth", "IPv4", "IPv6", "FW"},
	},
	{
		Name: "P10", Main: "P10Edge", MainFile: "up4/p10_edge.up4",
		Modules:   []string{"Decap", "NAT64", "L3", "IPv4", "IPv6"},
		MonoFile:  "mono/p10.up4",
		Table1Row: []string{"Eth", "IPv4", "IPv6", "Decap", "NAT64"},
	},
	{
		Name: "P11", Main: "P11Lb", MainFile: "up4/p11_lb.up4",
		Modules:   []string{"Balancer", "ACL"},
		MonoFile:  "mono/p11.up4",
		Table1Row: []string{"Eth", "LB", "ACL"},
	},
}

// Program returns the manifest for P1..P9.
func Program(name string) (Manifest, error) {
	for _, m := range Programs {
		if m.Name == name || m.Main == name {
			return m, nil
		}
	}
	return Manifest{}, fmt.Errorf("unknown program %q (have P1..P11)", name)
}

// ModuleNames lists the library modules, sorted.
func ModuleNames() []string {
	out := make([]string, 0, len(moduleFiles))
	for n := range moduleFiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ModuleSource returns a module's µP4 source text.
func ModuleSource(name string) (string, error) {
	f, ok := moduleFiles[name]
	if !ok {
		return "", fmt.Errorf("unknown module %q", name)
	}
	data, err := sources.ReadFile(f)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// Source returns the raw content of any embedded source file.
func Source(path string) (string, error) {
	data, err := sources.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// CompileModuleIR compiles one library module to µP4-IR.
func CompileModuleIR(name string) (*ir.Program, error) {
	src, err := ModuleSource(name)
	if err != nil {
		return nil, err
	}
	return frontend.CompileModule(moduleFiles[name], src)
}

// CompileProgram compiles a composed program's main and all its modules.
func CompileProgram(name string) (main *ir.Program, mods []*ir.Program, err error) {
	return CompileProgramTimed(name, nil)
}

// CompileProgramTimed is CompileProgram recording frontend stage
// timings into pt (which may be nil).
func CompileProgramTimed(name string, pt *obs.PassTimer) (main *ir.Program, mods []*ir.Program, err error) {
	m, err := Program(name)
	if err != nil {
		return nil, nil, err
	}
	src, err := Source(m.MainFile)
	if err != nil {
		return nil, nil, err
	}
	main, err = frontend.CompileModuleTimed(m.MainFile, src, pt)
	if err != nil {
		return nil, nil, err
	}
	for _, mod := range m.Modules {
		msrc, err := ModuleSource(mod)
		if err != nil {
			return nil, nil, err
		}
		p, err := frontend.CompileModuleTimed(moduleFiles[mod], msrc, pt)
		if err != nil {
			return nil, nil, err
		}
		mods = append(mods, p)
	}
	return main, mods, nil
}

// CompileMonolithic compiles a program's monolithic baseline.
func CompileMonolithic(name string) (*ir.Program, error) {
	m, err := Program(name)
	if err != nil {
		return nil, err
	}
	src, err := Source(m.MonoFile)
	if err != nil {
		return nil, err
	}
	return frontend.CompileModule(m.MonoFile, src)
}
