package lib

import (
	"strings"
	"testing"

	"microp4/internal/ir"
	"microp4/internal/midend"
)

func TestAllModulesCompile(t *testing.T) {
	for _, name := range ModuleNames() {
		p, err := CompileModuleIR(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if p.Interface != "Unicast" {
			t.Errorf("%s implements %s, expected Unicast", name, p.Interface)
		}
		// Every module's IR serializes.
		if _, err := p.ToJSON(); err != nil {
			t.Errorf("%s: ToJSON: %v", name, err)
		}
	}
}

func TestAllProgramsBuild(t *testing.T) {
	for _, m := range Programs {
		main, mods, err := CompileProgram(m.Name)
		if err != nil {
			t.Errorf("%s: %v", m.Name, err)
			continue
		}
		if main.Name != m.Main {
			t.Errorf("%s: main program is %s, manifest says %s", m.Name, main.Name, m.Main)
		}
		res, err := midend.Build(main, mods...)
		if err != nil {
			t.Errorf("%s: midend: %v", m.Name, err)
			continue
		}
		if res.Pipeline.BsBytes <= 0 {
			t.Errorf("%s: byte-stack %d", m.Name, res.Pipeline.BsBytes)
		}
		// Every composed program exposes at least one user table.
		if len(res.Pipeline.UserTables) == 0 {
			t.Errorf("%s: no control-plane tables", m.Name)
		}
	}
}

func TestAllMonolithicsCompile(t *testing.T) {
	for _, m := range Programs {
		p, err := CompileMonolithic(m.Name)
		if err != nil {
			t.Errorf("%s: %v", m.Name, err)
			continue
		}
		if !strings.HasPrefix(p.Name, "Mono") {
			t.Errorf("%s: monolithic program named %s", m.Name, p.Name)
		}
		if _, err := midend.Transform(p); err != nil {
			t.Errorf("%s: transform: %v", m.Name, err)
		}
	}
}

func TestManifestConsistency(t *testing.T) {
	if len(Programs) != 11 {
		t.Fatalf("got %d programs, want 11", len(Programs))
	}
	ethCount, v4Count := 0, 0
	nfCount := map[string]int{}
	for _, m := range Programs {
		for _, row := range m.Table1Row {
			switch row {
			case "Eth":
				ethCount++
			case "IPv4":
				v4Count++
			case "MPLS", "NAT", "NPTv6", "SRv4", "SRv6", "INT", "FW",
				"Decap", "NAT64", "LB":
				nfCount[row]++
			}
		}
		if _, err := Source(m.MainFile); err != nil {
			t.Errorf("%s: main file: %v", m.Name, err)
		}
		if _, err := Source(m.MonoFile); err != nil {
			t.Errorf("%s: mono file: %v", m.Name, err)
		}
	}
	if ethCount != 11 {
		t.Errorf("Eth in %d programs, want 11", ethCount)
	}
	if v4Count != 9 {
		t.Errorf("IPv4 in %d programs, want 9", v4Count)
	}
	for nf, n := range nfCount {
		if n != 1 {
			t.Errorf("%s in %d programs, want 1", nf, n)
		}
	}
}

func TestProgramLookup(t *testing.T) {
	if _, err := Program("P3"); err != nil {
		t.Error(err)
	}
	if _, err := Program("P4Router"); err != nil {
		t.Error("lookup by main program name failed")
	}
	if _, err := Program("P99"); err == nil {
		t.Error("unknown program accepted")
	}
	if _, err := ModuleSource("Bogus"); err == nil {
		t.Error("unknown module accepted")
	}
}

// TestModuleIndependence pins µP4's central promise: each library module
// compiles in isolation, with its own headers — no shared declarations.
func TestModuleIndependence(t *testing.T) {
	for _, name := range ModuleNames() {
		p, err := CompileModuleIR(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// A module's storage namespace is self-contained: every table key
		// and action body references only the module's own decls, action
		// params, or the shared intrinsic metadata.
		check := func(e *ir.Expr) {
			e.Walk(func(x *ir.Expr) {
				if x.Kind != ir.ERef {
					return
				}
				ref := x.Ref
				if strings.HasPrefix(ref, "$im") || strings.Contains(ref, "#") {
					return
				}
				if p.DeclByPath(ref) != nil {
					return
				}
				// Header-field and stack-element refs resolve via a
				// prefix decl ("$hdr.ls.0.label" → stack "$hdr.ls").
				for i := len(ref) - 1; i > 0; i-- {
					if ref[i] == '.' && p.DeclByPath(ref[:i]) != nil {
						return
					}
				}
				t.Errorf("%s: reference %q escapes the module", name, ref)
			})
		}
		for _, tbl := range p.Tables {
			for _, k := range tbl.Keys {
				check(k.Expr)
			}
		}
		for _, a := range p.Actions {
			ir.WalkStmts(a.Body, func(s *ir.Stmt) {
				if s.RHS != nil {
					check(s.RHS)
				}
			})
		}
	}
}
