package ctrlplane_test

import (
	"testing"

	"microp4/internal/ctrlplane"
	"microp4/internal/obs"
	"microp4/internal/sim"
)

// sendOp drives one encoded op straight into an agent (no network) and
// decodes the reply.
func sendOp(t *testing.T, a *ctrlplane.Agent, op *ctrlplane.CtrlOp) *ctrlplane.CtrlReply {
	t.Helper()
	outs, err := a.Process(ctrlplane.EncodeCtrlOp(op), ctrlPort)
	if err != nil {
		t.Fatalf("agent.Process: %v", err)
	}
	if len(outs) != 1 || outs[0].Port != ctrlPort {
		t.Fatalf("agent emitted %+v, want one reply on the control port", outs)
	}
	rep, err := ctrlplane.DecodeCtrlReply(outs[0].Data)
	if err != nil {
		t.Fatalf("reply does not decode: %v", err)
	}
	return rep
}

func newTestAgent(t *testing.T) (*ctrlplane.Agent, *ctrlplane.Metrics) {
	t.Helper()
	m := ctrlplane.NewMetrics(obs.NewRegistry())
	sw := compileP4(t).NewSwitch()
	return ctrlplane.NewAgent(sw, ctrlplane.AgentConfig{
		Name: "s1", CtrlPort: ctrlPort, Metrics: m,
	}), m
}

// TestAgentDedup: a retransmitted (session, seq) replays the cached
// reply and never re-applies the op — at-least-once in, exactly-once out.
func TestAgentDedup(t *testing.T) {
	a, _ := newTestAgent(t)
	op := &ctrlplane.CtrlOp{Session: 5, Seq: 1, Kind: ctrlplane.OpSetMulticast,
		Group: 7, Ports: []uint64{1, 2}}
	first := sendOp(t, a, op)
	if first.Status != ctrlplane.StatusOK {
		t.Fatalf("first send rejected: %+v", first)
	}
	// Same (session, seq), different body: a real client never does
	// this, so the cached reply (not a fresh application) must win —
	// proving the dedup path short-circuits before the op is applied.
	dup := &ctrlplane.CtrlOp{Session: 5, Seq: 1, Kind: ctrlplane.OpSetMulticast, Group: 0}
	second := sendOp(t, a, dup)
	if second.Status != ctrlplane.StatusOK {
		t.Errorf("duplicate got %+v, want the cached OK replay", second)
	}
	// A fresh sequence with the invalid body is judged on its own.
	bad := &ctrlplane.CtrlOp{Session: 5, Seq: 2, Kind: ctrlplane.OpSetMulticast, Group: 0}
	if rep := sendOp(t, a, bad); rep.Status != ctrlplane.StatusRejected || rep.Class != sim.RejectBadGroup {
		t.Errorf("fresh invalid op got %+v, want %s rejection", rep, sim.RejectBadGroup)
	}
}

// TestAgentDedupWindowEviction: sequences older than the window are
// forgotten; a replay outside the window is treated as new.
func TestAgentDedupWindowEviction(t *testing.T) {
	m := ctrlplane.NewMetrics(obs.NewRegistry())
	sw := compileP4(t).NewSwitch()
	a := ctrlplane.NewAgent(sw, ctrlplane.AgentConfig{
		Name: "s1", CtrlPort: ctrlPort, Window: 2, Metrics: m,
	})
	for seq := uint64(1); seq <= 3; seq++ {
		sendOp(t, a, &ctrlplane.CtrlOp{Session: 5, Seq: seq,
			Kind: ctrlplane.OpClearTable, Table: "forward_tbl"})
	}
	// Seq 1 was evicted (window 2 holds 2 and 3): replaying it with a
	// now-invalid body is re-judged, not replayed from cache.
	rep := sendOp(t, a, &ctrlplane.CtrlOp{Session: 5, Seq: 1,
		Kind: ctrlplane.OpClearTable, Table: "nope_tbl"})
	if rep.Status != ctrlplane.StatusRejected {
		t.Errorf("evicted seq replayed a cached reply: %+v", rep)
	}
}

// TestAgentDropsCorruptOps: undecodable control packets produce no
// reply (the client's timeout recovers) and count as malformed rejects.
func TestAgentDropsCorruptOps(t *testing.T) {
	reg := obs.NewRegistry()
	m := ctrlplane.NewMetrics(reg)
	sw := compileP4(t).NewSwitch()
	a := ctrlplane.NewAgent(sw, ctrlplane.AgentConfig{Name: "s1", CtrlPort: ctrlPort, Metrics: m})
	enc := ctrlplane.EncodeCtrlOp(&ctrlplane.CtrlOp{Session: 1, Seq: 1,
		Kind: ctrlplane.OpClearTable, Table: "forward_tbl"})
	enc[len(enc)/2] ^= 0x40
	outs, err := a.Process(enc, ctrlPort)
	if err != nil || len(outs) != 0 {
		t.Fatalf("corrupt op: outs=%v err=%v, want silent drop", outs, err)
	}
	c := reg.Counter("up4_ctrl_rejects_total", "", obs.L("class", sim.RejectMalformed))
	if c.Value() != 1 {
		t.Errorf("up4_ctrl_rejects_total{class=malformed} = %d, want 1", c.Value())
	}
}

// TestAgentTxnLifecycle drives stage → prepare → commit and stage →
// prepare → abort directly, checking idempotence at each step.
func TestAgentTxnLifecycle(t *testing.T) {
	a, _ := newTestAgent(t)
	sw := a.Switch()
	seq := uint64(0)
	next := func(op ctrlplane.CtrlOp) *ctrlplane.CtrlReply {
		seq++
		op.Session = 5
		op.Seq = seq
		return sendOp(t, a, &op)
	}

	// Txn 1: install a multicast group, then commit.
	if rep := next(ctrlplane.CtrlOp{Txn: 1, Kind: ctrlplane.OpSetMulticast,
		Group: 7, Ports: []uint64{1, 2}}); rep.Status != ctrlplane.StatusOK {
		t.Fatalf("stage: %+v", rep)
	}
	if rep := next(ctrlplane.CtrlOp{Txn: 1, Kind: ctrlplane.OpPrepare}); rep.Status != ctrlplane.StatusOK {
		t.Fatalf("prepare: %+v", rep)
	}
	// Prepare is idempotent (a lost reply means a retransmitted prepare).
	if rep := next(ctrlplane.CtrlOp{Txn: 1, Kind: ctrlplane.OpPrepare}); rep.Status != ctrlplane.StatusOK {
		t.Fatalf("re-prepare: %+v", rep)
	}
	if rep := next(ctrlplane.CtrlOp{Txn: 1, Kind: ctrlplane.OpCommit}); rep.Status != ctrlplane.StatusOK {
		t.Fatalf("commit: %+v", rep)
	}

	// Txn 2: stage a group change, prepare, then abort — the committed
	// txn-1 state must survive, the txn-2 change must not.
	if rep := next(ctrlplane.CtrlOp{Txn: 2, Kind: ctrlplane.OpSetMulticast,
		Group: 7, Ports: []uint64{5}}); rep.Status != ctrlplane.StatusOK {
		t.Fatalf("stage 2: %+v", rep)
	}
	if rep := next(ctrlplane.CtrlOp{Txn: 2, Kind: ctrlplane.OpPrepare}); rep.Status != ctrlplane.StatusOK {
		t.Fatalf("prepare 2: %+v", rep)
	}
	if rep := next(ctrlplane.CtrlOp{Txn: 2, Kind: ctrlplane.OpAbort}); rep.Status != ctrlplane.StatusOK {
		t.Fatalf("abort 2: %+v", rep)
	}
	// Aborting again, or aborting a transaction never seen, is fine.
	if rep := next(ctrlplane.CtrlOp{Txn: 2, Kind: ctrlplane.OpAbort}); rep.Status != ctrlplane.StatusOK {
		t.Fatalf("re-abort: %+v", rep)
	}
	if rep := next(ctrlplane.CtrlOp{Txn: 99, Kind: ctrlplane.OpAbort}); rep.Status != ctrlplane.StatusOK {
		t.Fatalf("abort of unknown txn: %+v", rep)
	}
	// Committing an unknown or unprepared transaction is a txn reject.
	if rep := next(ctrlplane.CtrlOp{Txn: 99, Kind: ctrlplane.OpCommit}); rep.Status != ctrlplane.StatusRejected || rep.Class != sim.RejectTxn {
		t.Fatalf("commit of unknown txn: %+v, want %s reject", rep, sim.RejectTxn)
	}
	_ = sw
}

// TestAgentStagedValidation: invalid ops are rejected at staging time,
// before any prepare.
func TestAgentStagedValidation(t *testing.T) {
	a, _ := newTestAgent(t)
	rep := sendOp(t, a, &ctrlplane.CtrlOp{Session: 5, Seq: 1, Txn: 1,
		Kind: ctrlplane.OpAddEntry, Table: "nope_tbl", Action: "x"})
	if rep.Status != ctrlplane.StatusRejected || rep.Class != sim.RejectUnknownTable {
		t.Errorf("staged invalid op got %+v, want %s rejection", rep, sim.RejectUnknownTable)
	}
}
