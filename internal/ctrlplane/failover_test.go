package ctrlplane_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"microp4"
	"microp4/internal/ctrlplane"
	"microp4/internal/flow"
	"microp4/internal/lib"
	"microp4/internal/netsim"
	"microp4/internal/obs"
	"microp4/internal/pkt"
	"microp4/internal/trace"
)

// The flow-state failover scenario: an active P9 stateful firewall
// replicates its connection table to a warm standby over lossy links;
// when the active dies mid-churn, the standby is promoted and the
// established flows keep passing return traffic.

const syncPort = 7

// compileProg builds any library program's dataplane.
func compileProg(t testing.TB, prog string) *microp4.Dataplane {
	t.Helper()
	m, err := lib.Program(prog)
	if err != nil {
		t.Fatal(err)
	}
	src, err := lib.Source(m.MainFile)
	if err != nil {
		t.Fatal(err)
	}
	main, err := microp4.CompileModule(m.MainFile, src)
	if err != nil {
		t.Fatal(err)
	}
	var mods []*microp4.Module
	for _, name := range m.Modules {
		msrc, err := lib.ModuleSource(name)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := microp4.CompileModule(name+".up4", msrc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mods = append(mods, mod)
	}
	dp, err := microp4.Build(main, mods...)
	if err != nil {
		t.Fatal(err)
	}
	return dp
}

// installP9Rules programs the standard P9 firewall policy and routes
// (the sw.AddEntry mirror of lib.InstallDefaultRules("P9")).
func installP9Rules(sw *microp4.Switch) {
	sw.AddEntry("dir_tbl", []microp4.Key{microp4.Exact(lib.PortB)}, "dir_rev")
	sw.AddEntry("fw_tbl", []microp4.Key{microp4.Exact(0), microp4.Exact(0)}, "allow")
	sw.AddEntry("fw_tbl", []microp4.Key{microp4.Exact(0), microp4.Exact(1)}, "allow")
	sw.AddEntry("fw_tbl", []microp4.Key{microp4.Exact(1), microp4.Exact(1)}, "allow")
	sw.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl", []microp4.Key{microp4.LPM(lib.NetA, 8)},
		"l3_i.ipv4_i.process", lib.NhA)
	sw.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl", []microp4.Key{microp4.LPM(lib.NetB, 8)},
		"l3_i.ipv4_i.process", lib.NhB)
	sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(lib.NhA)}, "forward",
		lib.DmacA, lib.SmacA, lib.PortA)
	sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(lib.NhB)}, "forward",
		lib.DmacA, lib.SmacA, lib.PortB)
}

// flowFwd and flowRev build the i-th flow's forward (inside→out, enters
// on PortA) and return (outside→in, enters on PortB) packets.
func flowFwd(i int) []byte {
	return pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP,
			Src: uint32(lib.NetA) | uint32(i+1), Dst: uint32(lib.NetB) | uint32(i+1)}).
		TCP(uint16(1000+i), 443).Payload([]byte("syn")).Bytes()
}

func flowRev(i int) []byte {
	return pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP,
			Src: uint32(lib.NetB) | uint32(i+1), Dst: uint32(lib.NetA) | uint32(i+1)}).
		TCP(443, uint16(1000+i)).Payload([]byte("ack")).Bytes()
}

func flowKey(i int) flow.Key {
	return flow.Key{SrcAddr: lib.NetA | uint64(i+1), DstAddr: lib.NetB | uint64(i+1),
		Proto: 6, SrcPort: uint64(1000 + i), DstPort: 443}
}

// pair wires an active replicator and a warm standby over sync links
// with the given fault model.
type pair struct {
	n   *netsim.Network
	act *ctrlplane.Replicator
	sby *ctrlplane.StandbyAgent
	reg *obs.Registry
	rec *trace.Recorder
}

func newPair(t testing.TB, seed uint64, fm netsim.FaultModel) *pair {
	t.Helper()
	dp := compileProg(t, "P9")
	n := netsim.New(seed)
	rec := trace.NewRecorder(8192)
	n.SetTracing(rec)
	reg := obs.NewRegistry()
	metrics := ctrlplane.NewMetrics(reg)

	actSw := dp.NewSwitch()
	installP9Rules(actSw)
	act := ctrlplane.NewReplicator(n, actSw, ctrlplane.ReplicaConfig{
		Name: "act", SyncPort: syncPort, Seed: seed,
		Metrics: metrics, Tracer: rec, Bus: n.Bus(),
	})

	sbySw := dp.NewSwitch()
	act.Bootstrap(sbySw) // control state travels by Checkpoint/Restore
	sby := ctrlplane.NewStandbyAgent(n, sbySw, ctrlplane.ReplicaConfig{
		Name: "sby", SyncPort: syncPort,
		Metrics: metrics, Tracer: rec, Bus: n.Bus(),
	})

	if err := n.AddSwitch("act", act); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSwitch("sby", sby); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("act", syncPort, "sby", syncPort, fm); err != nil {
		t.Fatal(err)
	}
	return &pair{n: n, act: act, sby: sby, reg: reg, rec: rec}
}

func (p *pair) run(t testing.TB) netsim.RunStats {
	t.Helper()
	st, err := p.n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestFlowReplicationLossless: over perfect links, every learned flow
// reaches the standby, the active's lag drains to zero, and the
// replicator parks its timer once the channel is idle.
func TestFlowReplicationLossless(t *testing.T) {
	p := newPair(t, 11, netsim.FaultModel{})
	p.act.Start()
	const flows = 5
	for i := 0; i < flows; i++ {
		if err := p.n.Inject("act", lib.PortA, flowFwd(i)); err != nil {
			t.Fatal(err)
		}
		if err := p.n.Inject("act", lib.PortB, flowRev(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.run(t)

	if lag := p.act.Lag(); lag != 0 {
		t.Errorf("active still has %d unsynced entries after a drained run", lag)
	}
	sbyTbl := p.sby.Switch().FlowTable("fs_i.conn")
	if sbyTbl == nil {
		t.Fatal("standby has no fs_i.conn flow table")
	}
	if sbyTbl.Len() != flows {
		t.Errorf("standby holds %d flows, want %d", sbyTbl.Len(), flows)
	}
	for i := 0; i < flows; i++ {
		e, ok := sbyTbl.Lookup(flowKey(i))
		if !ok {
			t.Errorf("flow %d missing on standby", i)
			continue
		}
		if e.State != flow.StateEstablished {
			t.Errorf("flow %d replicated as state %d, want established", i, e.State)
		}
	}
	if p.sby.LastHeard() == 0 {
		t.Error("standby never heard a sync frame")
	}
	applied, malformed := p.sby.Applied()
	if applied == 0 || malformed != 0 {
		t.Errorf("standby applied=%d malformed=%d, want >0 and 0", applied, malformed)
	}
	if rounds, _ := p.act.Rounds(); rounds == 0 {
		t.Error("replicator ran no rounds")
	}
	// The lag gauge drained to zero and the flowsync spans landed on
	// the flight recorder.
	var expo strings.Builder
	if err := p.reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo.String(), `up4_flow_sync_lag{node="act"} 0`) {
		t.Error("up4_flow_sync_lag gauge missing or nonzero:\n" + expo.String())
	}
	roundSpans := 0
	for _, sp := range p.rec.Spans() {
		if sp.Kind == "flowsync" {
			roundSpans++
		}
	}
	if roundSpans == 0 {
		t.Error("no flowsync spans recorded")
	}
}

// TestStandbyRobustness: corrupt sync frames are dropped without a
// reply and change nothing — not the flow table, not the last-heard
// clock, and never the promoted flag — while duplicated valid frames
// replay the cached ack without double-applying.
func TestStandbyRobustness(t *testing.T) {
	// A standalone standby with no links: every ack it emits lands in
	// the egress collector where the test can inspect it.
	dp := compileProg(t, "P9")
	n := netsim.New(13)
	sbySw := dp.NewSwitch()
	installP9Rules(sbySw)
	sby := ctrlplane.NewStandbyAgent(n, sbySw, ctrlplane.ReplicaConfig{
		Name: "sby", SyncPort: syncPort, Bus: n.Bus(),
	})
	if err := n.AddSwitch("sby", sby); err != nil {
		t.Fatal(err)
	}
	run := func() {
		t.Helper()
		if _, err := n.Run(0); err != nil {
			t.Fatal(err)
		}
	}
	sync := ctrlplane.EncodeFlowSync(&ctrlplane.FlowSync{
		Session: 0xABCD, Seq: 1, Kind: ctrlplane.SyncUpdate, Table: "fs_i.conn", Clock: 5,
		Entries: []ctrlplane.FlowRec{{Key: flowKey(0), State: flow.StateEstablished, Expire: 70000}},
	})

	// Corrupted and garbage frames: dropped, no reply, no state change.
	for _, bad := range [][]byte{
		{},
		{0x00, 0x01, 0x02},
		append(append([]byte(nil), sync...), 0xFF), // trailing byte breaks the checksum
		func() []byte { c := append([]byte(nil), sync...); c[len(c)/2] ^= 0x10; return c }(),
	} {
		if err := n.Inject("sby", syncPort, bad); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if got := len(n.Egress("sby")); got != 0 {
		t.Fatalf("standby replied to %d corrupt frames, want silence", got)
	}
	if applied, malformed := sby.Applied(); applied != 0 || malformed == 0 {
		t.Errorf("after corruption: applied=%d malformed=%d, want 0 and >0", applied, malformed)
	}
	if sby.LastHeard() != 0 {
		t.Error("corrupt frames refreshed the standby's last-heard clock")
	}
	if sby.Promoted() {
		t.Fatal("corrupt frames promoted the standby")
	}
	if tb := sbySw.FlowTable("fs_i.conn"); tb != nil && tb.Len() != 0 {
		t.Errorf("corrupt frames installed %d flows", tb.Len())
	}

	// The same valid frame delivered twice: one install, two acks (the
	// second replayed from the dedup cache).
	if err := n.Inject("sby", syncPort, sync); err != nil {
		t.Fatal(err)
	}
	if err := n.Inject("sby", syncPort, sync); err != nil {
		t.Fatal(err)
	}
	run()
	acks := n.Egress("sby")
	if len(acks) != 2 {
		t.Fatalf("got %d acks for a duplicated frame, want 2", len(acks))
	}
	for _, d := range acks {
		ack, err := ctrlplane.DecodeFlowAck(d.Data)
		if err != nil {
			t.Fatalf("undecodable ack: %v", err)
		}
		if ack.Session != 0xABCD || ack.Seq != 1 || ack.Applied != 1 {
			t.Errorf("ack %+v, want session=0xABCD seq=1 applied=1", ack)
		}
	}
	if applied, _ := sby.Applied(); applied != 1 {
		t.Errorf("duplicate frame double-applied: applied=%d, want 1", applied)
	}
	if tb := sbySw.FlowTable("fs_i.conn"); tb == nil || tb.Len() != 1 {
		t.Error("valid frame did not install its entry")
	}
}

// failoverOutcome is one full failover run's deterministic signature.
type failoverOutcome struct {
	established int // flows established on the active before the kill
	survived    int // of those, flows whose return traffic passed post-promotion
	resyncs     uint64
	signature   string // egress bytes + fault tallies, for run-to-run identity
}

// runFailover drives the acceptance scenario at one seed: churn flows
// through the active over ≥10% drop (plus dup and reorder) sync links,
// kill the active mid-churn, promote the standby, then replay return
// traffic against it.
func runFailover(t *testing.T, seed uint64) failoverOutcome {
	t.Helper()
	lossy := netsim.FaultModel{Drop: 0.10, Duplicate: 0.05, Reorder: 0.05}
	p := newPair(t, seed, lossy)
	p.act.Start()

	const flows = 60
	// First half of the churn: learn and establish, draining the
	// network (and the sync rounds) in bursts.
	for i := 0; i < flows; i++ {
		if err := p.n.Inject("act", lib.PortA, flowFwd(i)); err != nil {
			t.Fatal(err)
		}
		if err := p.n.Inject("act", lib.PortB, flowRev(i)); err != nil {
			t.Fatal(err)
		}
		if i%8 == 7 {
			p.run(t)
		}
	}
	p.run(t)

	// Snapshot which flows the active holds established right before
	// the kill — the population whose survival is measured.
	actTbl := p.act.Switch().FlowTable("fs_i.conn")
	if actTbl == nil {
		t.Fatal("active has no fs_i.conn flow table")
	}
	var establishedIdx []int
	for i := 0; i < flows; i++ {
		if e, ok := actTbl.Lookup(flowKey(i)); ok && e.State == flow.StateEstablished {
			establishedIdx = append(establishedIdx, i)
		}
	}
	if len(establishedIdx) < flows*9/10 {
		t.Fatalf("churn established only %d/%d flows on the active", len(establishedIdx), flows)
	}

	// Kill the active mid-churn: sync links go dark, its replicator
	// stops. (Data ports are unconnected, so nothing else changes.)
	if err := p.n.SetLinkDown("act", syncPort, true); err != nil {
		t.Fatal(err)
	}
	if err := p.n.SetLinkDown("sby", syncPort, true); err != nil {
		t.Fatal(err)
	}
	p.act.Stop()
	heardAtKill := p.sby.LastHeard()
	if heardAtKill == 0 {
		t.Fatal("standby never heard from the active before the kill")
	}

	// Promote after observing silence. Promotion is a local decision —
	// nothing arrived on the wire to cause it.
	p.sby.Promote()
	if !p.sby.Promoted() {
		t.Fatal("promotion did not take")
	}

	// Return traffic for every pre-kill established flow now hits the
	// promoted standby. Each flow the replication carried is still
	// established there and keeps passing; only flows whose sync frames
	// were all lost at the moment of death may fail.
	for _, i := range establishedIdx {
		if err := p.n.Inject("sby", lib.PortB, flowRev(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.run(t)
	survived := 0
	var sig strings.Builder
	for _, d := range p.n.Egress("sby") {
		if d.Port == lib.PortA {
			survived++
		}
		fmt.Fprintf(&sig, "egress %d %x\n", d.Port, d.Data)
	}
	st := p.n.Stats()
	for _, k := range netsim.FaultKinds {
		fmt.Fprintf(&sig, "fault %s %d\n", k, st.Faults[k])
	}
	fmt.Fprintf(&sig, "steps %d heard %d\n", st.Steps, heardAtKill)
	_, resyncs := p.act.Rounds()
	return failoverOutcome{
		established: len(establishedIdx),
		survived:    survived,
		resyncs:     resyncs,
		signature:   sig.String(),
	}
}

// TestFlowFailover is the PR's acceptance gate: with ≥10% drop plus
// duplication and reordering on the sync channel, killing the active
// mid-churn and promoting the standby keeps at least 95% of the
// pre-kill established flows passing return traffic — and the entire
// run, faults included, is byte-identical for a fixed seed.
func TestFlowFailover(t *testing.T) {
	for _, seed := range []uint64{42, 7, 1001} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			first := runFailover(t, seed)
			if first.established == 0 {
				t.Fatal("no established flows to measure")
			}
			if first.survived*100 < first.established*95 {
				t.Errorf("only %d/%d established flows survived failover (<95%%)",
					first.survived, first.established)
			}
			if first.resyncs == 0 {
				t.Error("no anti-entropy resync rounds ran during the churn")
			}
			second := runFailover(t, seed)
			if first.signature != second.signature {
				t.Errorf("failover run is not reproducible for seed %d:\n--- first\n%s--- second\n%s",
					seed, first.signature, second.signature)
			}
		})
	}
}

// scrapeURL fetches a URL and returns its body.
func scrapeURL(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestFlowScrapeEndpoints runs the lossless replication scenario with
// full observability attached and scrapes the HTTP surface: /metrics
// must expose the dataplane flow-table gauges (up4_flow_entries and
// friends) and the replication lag gauge, and /trace/spans must return
// the flight recorder with the flowsync round and ack spans in it.
func TestFlowScrapeEndpoints(t *testing.T) {
	p := newPair(t, 21, netsim.FaultModel{})
	swReg := p.act.Switch().EnableMetrics()
	p.act.Start()
	const flows = 3
	for i := 0; i < flows; i++ {
		if err := p.n.Inject("act", lib.PortA, flowFwd(i)); err != nil {
			t.Fatal(err)
		}
		if err := p.n.Inject("act", lib.PortB, flowRev(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.run(t)

	// The active switch's registry carries the flow-table gauges.
	dataSrv := httptest.NewServer(obs.NewHandler(swReg, nil, nil))
	defer dataSrv.Close()
	dataMetrics := scrapeURL(t, dataSrv.URL+"/metrics")
	for _, want := range []string{
		fmt.Sprintf(`up4_flow_entries{table="fs_i.conn"} %d`, flows),
		fmt.Sprintf(`up4_flow_inserts{table="fs_i.conn"} %d`, flows),
		`up4_flow_evictions{table="fs_i.conn"} 0`,
		`up4_flow_expiries{table="fs_i.conn"} 0`,
	} {
		if !strings.Contains(dataMetrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, dataMetrics)
		}
	}

	// The control-plane registry carries the replication lag gauge, and
	// the same server exposes the shared flight recorder.
	ctrlSrv := httptest.NewServer(obs.NewHandler(p.reg, nil, p.rec.WriteJSON))
	defer ctrlSrv.Close()
	ctrlMetrics := scrapeURL(t, ctrlSrv.URL+"/metrics")
	if !strings.Contains(ctrlMetrics, `up4_flow_sync_lag{node="act"} 0`) {
		t.Errorf("/metrics missing drained up4_flow_sync_lag gauge:\n%s", ctrlMetrics)
	}

	spans, faults, err := trace.ReadJSON([]byte(scrapeURL(t, ctrlSrv.URL+"/trace/spans")))
	if err != nil {
		t.Fatalf("/trace/spans: %v", err)
	}
	names := map[string]int{}
	for _, sp := range spans {
		if sp.Kind == "flowsync" {
			names[sp.Name]++
		}
	}
	if names["round"] == 0 || names["ack"] == 0 {
		t.Errorf("/trace/spans flowsync span names = %v, want round and ack spans", names)
	}
	if len(faults) != 0 {
		t.Errorf("clean run pinned %d fault dumps", len(faults))
	}
}

// TestFlowSyncPartitionHeal: when the sync channel partitions, the
// active keeps serving traffic and accumulates unsynced entries
// (graceful degradation); when the partition heals, the next traffic
// re-arms the replicator and the incremental-plus-resync stream drains
// the backlog into the standby.
func TestFlowSyncPartitionHeal(t *testing.T) {
	p := newPair(t, 99, netsim.FaultModel{})
	p.act.Start()

	// Healthy phase: two flows replicate.
	for i := 0; i < 2; i++ {
		if err := p.n.Inject("act", lib.PortA, flowFwd(i)); err != nil {
			t.Fatal(err)
		}
		if err := p.n.Inject("act", lib.PortB, flowRev(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.run(t)
	if lag := p.act.Lag(); lag != 0 {
		t.Fatalf("healthy phase left %d unsynced entries", lag)
	}

	// Partition: the sync channel goes dark in both directions, churn
	// continues. The active must keep serving — forward traffic still
	// routes — while the new flows pile up unsynced, and Run must
	// terminate (the replicator parks instead of spinning its timer).
	if err := p.n.SetLinkDown("act", syncPort, true); err != nil {
		t.Fatal(err)
	}
	if err := p.n.SetLinkDown("sby", syncPort, true); err != nil {
		t.Fatal(err)
	}
	egressBefore := len(p.n.Egress("act"))
	for i := 2; i < 6; i++ {
		if err := p.n.Inject("act", lib.PortA, flowFwd(i)); err != nil {
			t.Fatal(err)
		}
		if err := p.n.Inject("act", lib.PortB, flowRev(i)); err != nil {
			t.Fatal(err)
		}
	}
	p.run(t)
	if got := len(p.n.Egress("act")) - egressBefore; got != 8 {
		t.Errorf("active forwarded %d packets during the partition, want 8", got)
	}
	if lag := p.act.Lag(); lag != 4 {
		t.Errorf("partition phase holds %d unsynced entries, want 4", lag)
	}
	sbyTbl := p.sby.Switch().FlowTable("fs_i.conn")
	if sbyTbl.Len() != 2 {
		t.Errorf("standby gained flows across a partition: %d, want 2", sbyTbl.Len())
	}

	// Heal: links come back; the next dataplane packet re-arms the
	// replicator and the backlog drains.
	if err := p.n.SetLinkDown("act", syncPort, false); err != nil {
		t.Fatal(err)
	}
	if err := p.n.SetLinkDown("sby", syncPort, false); err != nil {
		t.Fatal(err)
	}
	if err := p.n.Inject("act", lib.PortA, flowFwd(0)); err != nil { // refresh re-arms
		t.Fatal(err)
	}
	p.run(t)
	if lag := p.act.Lag(); lag != 0 {
		t.Errorf("backlog did not drain after heal: %d unsynced", lag)
	}
	if sbyTbl.Len() != 6 {
		t.Errorf("standby holds %d flows after heal, want 6", sbyTbl.Len())
	}
}
