package ctrlplane

import (
	"reflect"
	"testing"
)

// sampleOps covers every op kind and key kind the wire format carries.
func sampleOps() []*CtrlOp {
	return []*CtrlOp{
		{
			Session: 0xDEADBEEF01, Seq: 1, Kind: OpAddEntry,
			Table:  "l3_i.ipv4_i.ipv4_lpm_tbl",
			Action: "l3_i.ipv4_i.process",
			Keys:   []CtrlKey{LPM(0x0A000000, 8)},
			Args:   []uint64{100},
		},
		{
			Session: 7, Seq: 2, Txn: 3, Kind: OpAddEntry,
			Table:  "acl_tbl",
			Action: "deny",
			Keys:   []CtrlKey{Any(), Exact(42), Ternary(6, 0xFF), LPM(0x20010DB8, 32)},
		},
		{Session: 7, Seq: 3, Kind: OpSetDefault, Table: "forward_tbl", Action: "drop_pkt"},
		{Session: 7, Seq: 4, Kind: OpClearTable, Table: "forward_tbl"},
		{Session: 7, Seq: 5, Kind: OpSetMulticast, Group: 9, Ports: []uint64{1, 2, 3}},
		{Session: 7, Seq: 6, Txn: 3, Kind: OpPrepare},
		{Session: 7, Seq: 7, Txn: 3, Kind: OpCommit},
		{Session: 7, Seq: 8, Txn: 3, Kind: OpAbort},
	}
}

func TestCtrlOpRoundTrip(t *testing.T) {
	for _, op := range sampleOps() {
		enc := EncodeCtrlOp(op)
		got, err := DecodeCtrlOp(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", op.Kind, err)
		}
		if !reflect.DeepEqual(got, op) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", op.Kind, got, op)
		}
		// Canonical: re-encoding the decoded op reproduces the bytes.
		if string(EncodeCtrlOp(got)) != string(enc) {
			t.Errorf("%s: re-encode is not byte-identical", op.Kind)
		}
	}
}

func TestCtrlReplyRoundTrip(t *testing.T) {
	for _, rep := range []*CtrlReply{
		{Session: 1, Seq: 2, Status: StatusOK},
		{Session: 0xFFFFFFFFFFFFFFFF, Seq: 9, Status: StatusRejected,
			Class: "key-width", Reason: "key 0 value 0x10000 exceeds 16 bits"},
	} {
		enc := EncodeCtrlReply(rep)
		got, err := DecodeCtrlReply(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, rep) {
			t.Errorf("reply round trip mismatch:\n got %+v\nwant %+v", got, rep)
		}
	}
}

// TestCtrlOpCorruptionDetected flips every single bit of an encoded op;
// the checksum must turn each corruption into a decode error (never a
// different valid op) — that is what makes a bit-flip fault equivalent
// to a drop.
func TestCtrlOpCorruptionDetected(t *testing.T) {
	enc := EncodeCtrlOp(sampleOps()[0])
	for i := 0; i < len(enc)*8; i++ {
		corrupt := append([]byte(nil), enc...)
		corrupt[i/8] ^= 1 << (i % 8)
		if _, err := DecodeCtrlOp(corrupt); err == nil {
			t.Fatalf("bit flip at %d decoded as a valid op", i)
		}
	}
}

// TestCtrlOpTruncationDetected drops tail bytes; every prefix must fail.
func TestCtrlOpTruncationDetected(t *testing.T) {
	enc := EncodeCtrlOp(sampleOps()[1])
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeCtrlOp(enc[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded as a valid op", n, len(enc))
		}
	}
}

func TestDecodeRejectsForeignMessages(t *testing.T) {
	op := EncodeCtrlOp(sampleOps()[0])
	rep := EncodeCtrlReply(&CtrlReply{Session: 1, Seq: 1, Status: StatusOK})
	if _, err := DecodeCtrlOp(rep); err == nil {
		t.Error("op decoder accepted a reply message")
	}
	if _, err := DecodeCtrlReply(op); err == nil {
		t.Error("reply decoder accepted an op message")
	}
	if _, err := DecodeCtrlOp(nil); err == nil {
		t.Error("op decoder accepted empty input")
	}
	// Trailing garbage after a valid body: strict decode must refuse.
	// (The checksum already catches it, but the trailing-bytes check is
	// what guarantees every byte is accounted for.)
	if _, err := DecodeCtrlOp(append(append([]byte(nil), op...), 0)); err == nil {
		t.Error("op decoder accepted trailing bytes")
	}
}

func TestEncodeCapsOversizedFields(t *testing.T) {
	op := &CtrlOp{Session: 1, Seq: 1, Kind: OpAddEntry, Table: "t", Action: "a"}
	for i := 0; i < maxWireKeys+10; i++ {
		op.Keys = append(op.Keys, Exact(uint64(i)))
	}
	for i := 0; i < maxWireArgs+10; i++ {
		op.Args = append(op.Args, uint64(i))
	}
	for i := 0; i < maxWirePorts+10; i++ {
		op.Ports = append(op.Ports, uint64(i))
	}
	got, err := DecodeCtrlOp(EncodeCtrlOp(op))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Keys) != maxWireKeys || len(got.Args) != maxWireArgs || len(got.Ports) != maxWirePorts {
		t.Errorf("caps not applied: %d keys, %d args, %d ports",
			len(got.Keys), len(got.Args), len(got.Ports))
	}
}
