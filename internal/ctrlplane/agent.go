package ctrlplane

import (
	"fmt"
	"sort"

	"microp4"
	"microp4/internal/sim"
)

// AgentConfig tunes one per-switch agent.
type AgentConfig struct {
	// Name labels the agent's trace events (usually the node name).
	Name string
	// CtrlPort is the port control messages arrive on; packets on any
	// other port are forwarded to the wrapped switch's dataplane.
	CtrlPort uint64
	// Window bounds the per-session dedup cache (default 128 replies).
	// A retransmission of a sequence number still in the window replays
	// the cached reply instead of re-applying the op.
	Window int
	// Metrics counts rejects (optional; share the client's registry).
	Metrics *Metrics
	// Bus receives "ctrl" trace events (optional; usually the
	// network's Bus).
	Bus *sim.Bus
}

// Agent is the switch-side half of the control protocol: a
// netsim.Processor wrapping a *microp4.Switch. Control-port packets
// are decoded, deduplicated by (session, sequence), validated against
// the switch's control schema, applied (or staged/prepared/committed/
// aborted for transactions), and answered; any other port passes
// through to the dataplane. Corrupted control packets are dropped
// without reply — the client's retransmission recovers them.
//
// All control state (sessions, transactions) is touched only by the
// network's single-threaded run loop; the wrapped switch's own methods
// are safe to race with direct Process calls and churn, per the Switch
// concurrency contract.
type Agent struct {
	sw       *microp4.Switch
	cfg      AgentConfig
	sessions map[uint64]*session
	txns     map[uint64]*agentTxn
}

// session is one client channel's dedup state.
type session struct {
	replies map[uint64][]byte // seq → encoded reply
	order   []uint64          // insertion order, for window eviction
}

// agentTxn is one in-progress transaction on this agent.
type agentTxn struct {
	staged   []*CtrlOp
	prepared bool
	cp       *microp4.Checkpoint // taken at prepare, for rollback on abort
}

// NewAgent wraps a switch in a control-protocol agent.
func NewAgent(sw *microp4.Switch, cfg AgentConfig) *Agent {
	if cfg.Window <= 0 {
		cfg.Window = 128
	}
	return &Agent{
		sw:       sw,
		cfg:      cfg,
		sessions: make(map[uint64]*session),
		txns:     make(map[uint64]*agentTxn),
	}
}

// Switch returns the wrapped switch.
func (a *Agent) Switch() *microp4.Switch { return a.sw }

// Process implements netsim.Processor: control traffic on the control
// port, dataplane traffic everywhere else.
func (a *Agent) Process(pkt []byte, inPort uint64) ([]microp4.Output, error) {
	if inPort != a.cfg.CtrlPort {
		return a.sw.Process(pkt, inPort)
	}
	op, err := DecodeCtrlOp(pkt)
	if err != nil {
		// Corruption (bit flips, truncation) or garbage: no session or
		// sequence to answer to, so drop; the sender's timeout recovers.
		a.cfg.Metrics.Reject(sim.RejectMalformed)
		a.event("reject", sim.RejectMalformed+": "+err.Error())
		return nil, nil
	}
	sess := a.session(op.Session)
	if cached, ok := sess.replies[op.Seq]; ok {
		// At-least-once made exactly-once: a duplicate (retransmission
		// or link-level dup) replays the cached verdict, never the op.
		a.event("dup", fmt.Sprintf("session %#x seq %d", op.Session, op.Seq))
		return []microp4.Output{{Port: a.cfg.CtrlPort, Data: append([]byte(nil), cached...)}}, nil
	}
	rep := a.handle(op)
	enc := EncodeCtrlReply(rep)
	sess.remember(op.Seq, enc, a.cfg.Window)
	return []microp4.Output{{Port: a.cfg.CtrlPort, Data: enc}}, nil
}

func (a *Agent) session(id uint64) *session {
	s := a.sessions[id]
	if s == nil {
		s = &session{replies: make(map[uint64][]byte)}
		a.sessions[id] = s
	}
	return s
}

func (s *session) remember(seq uint64, reply []byte, window int) {
	if _, dup := s.replies[seq]; !dup {
		s.order = append(s.order, seq)
	}
	s.replies[seq] = reply
	for len(s.order) > window {
		delete(s.replies, s.order[0])
		s.order = s.order[1:]
	}
}

// handle applies one fresh (non-duplicate) op and builds its reply.
func (a *Agent) handle(op *CtrlOp) *CtrlReply {
	ok := &CtrlReply{Session: op.Session, Seq: op.Seq, Status: StatusOK}
	switch op.Kind {
	case OpAddEntry, OpSetDefault, OpClearTable, OpSetMulticast:
		if op.Txn != 0 {
			// Staged: validate now (rejects surface before prepare),
			// apply at prepare.
			if ce := a.validate(op); ce != nil {
				return a.reject(op, ce)
			}
			t := a.txn(op.Txn)
			t.staged = append(t.staged, op)
			a.event("stage", fmt.Sprintf("txn %d %s %s", op.Txn, op.Kind, op.Table))
			return ok
		}
		if err := a.apply(op); err != nil {
			ce, isCtrl := err.(*sim.ControlError)
			if !isCtrl {
				ce = &sim.ControlError{Op: op.Kind.String(), Table: op.Table,
					Kind: sim.RejectUnknownOp, Reason: err.Error()}
			}
			return a.reject(op, ce)
		}
		a.event("apply", fmt.Sprintf("%s %s", op.Kind, op.Table))
		return ok

	case OpPrepare:
		return a.prepare(op)

	case OpCommit:
		t := a.txns[op.Txn]
		if t == nil {
			return a.reject(op, &sim.ControlError{Op: "commit", Kind: sim.RejectTxn,
				Reason: fmt.Sprintf("unknown transaction %d", op.Txn)})
		}
		if !t.prepared {
			return a.reject(op, &sim.ControlError{Op: "commit", Kind: sim.RejectTxn,
				Reason: fmt.Sprintf("transaction %d is not prepared", op.Txn)})
		}
		delete(a.txns, op.Txn) // discard the checkpoint: changes are final
		a.event("commit", fmt.Sprintf("txn %d", op.Txn))
		return ok

	case OpAbort:
		// Abort is idempotent and always succeeds: aborting a
		// transaction this agent never saw (every staged op was lost)
		// is a clean no-op.
		if t := a.txns[op.Txn]; t != nil {
			if t.prepared {
				a.sw.Restore(t.cp)
			}
			delete(a.txns, op.Txn)
		}
		a.event("abort", fmt.Sprintf("txn %d", op.Txn))
		return ok
	}
	return a.reject(op, &sim.ControlError{Op: op.Kind.String(),
		Kind: sim.RejectUnknownOp, Reason: "unrecognized operation"})
}

// prepare checkpoints the switch and applies the staged ops (in client
// sequence order — arrival order varies under reorder faults, sequence
// order does not). On any failure the checkpoint is restored and the
// transaction stays staged-but-unprepared, awaiting the coordinator's
// abort.
func (a *Agent) prepare(op *CtrlOp) *CtrlReply {
	t := a.txn(op.Txn) // preparing an empty transaction is legal
	if t.prepared {
		return &CtrlReply{Session: op.Session, Seq: op.Seq, Status: StatusOK}
	}
	sort.Slice(t.staged, func(i, j int) bool { return t.staged[i].Seq < t.staged[j].Seq })
	cp := a.sw.Checkpoint()
	for _, staged := range t.staged {
		if err := a.apply(staged); err != nil {
			a.sw.Restore(cp)
			ce, isCtrl := err.(*sim.ControlError)
			if !isCtrl {
				ce = &sim.ControlError{Op: "prepare", Kind: sim.RejectTxn, Reason: err.Error()}
			}
			return a.reject(op, ce)
		}
	}
	t.prepared = true
	t.cp = cp
	a.event("prepare", fmt.Sprintf("txn %d: %d ops applied", op.Txn, len(t.staged)))
	return &CtrlReply{Session: op.Session, Seq: op.Seq, Status: StatusOK}
}

func (a *Agent) txn(id uint64) *agentTxn {
	t := a.txns[id]
	if t == nil {
		t = &agentTxn{}
		a.txns[id] = t
	}
	return t
}

// apply runs one op against the switch through the validated API.
func (a *Agent) apply(op *CtrlOp) error {
	switch op.Kind {
	case OpAddEntry:
		return a.sw.TryAddEntry(op.Table, wireKeys(op.Keys), op.Action, op.Args...)
	case OpSetDefault:
		return a.sw.TrySetDefault(op.Table, op.Action, op.Args...)
	case OpClearTable:
		return a.sw.TryClearTable(op.Table)
	case OpSetMulticast:
		return a.sw.TrySetMulticastGroup(op.Group, op.Ports...)
	}
	return &sim.ControlError{Op: op.Kind.String(), Kind: sim.RejectUnknownOp,
		Reason: "not an applicable operation"}
}

// validate checks an op against the switch's control schema without
// applying it (used for staged ops). Nil schema (uncomposed dataplane)
// validates everything.
func (a *Agent) validate(op *CtrlOp) *sim.ControlError {
	sc := a.sw.Schema()
	if sc == nil {
		return nil
	}
	var err error
	switch op.Kind {
	case OpAddEntry:
		err = sc.ValidateAddEntry(op.Table, wireKeys(op.Keys), op.Action, op.Args)
	case OpSetDefault:
		err = sc.ValidateSetDefault(op.Table, op.Action, op.Args)
	case OpClearTable:
		err = sc.ValidateClearTable(op.Table)
	case OpSetMulticast:
		err = sc.ValidateSetMulticastGroup(op.Group, op.Ports)
	}
	if err == nil {
		return nil
	}
	if ce, isCtrl := err.(*sim.ControlError); isCtrl {
		return ce
	}
	return &sim.ControlError{Op: op.Kind.String(), Kind: sim.RejectUnknownOp, Reason: err.Error()}
}

func (a *Agent) reject(op *CtrlOp, ce *sim.ControlError) *CtrlReply {
	a.cfg.Metrics.Reject(ce.Kind)
	a.event("reject", fmt.Sprintf("%s: %s: %s", op.Kind, ce.Kind, ce.Reason))
	return rejected(op, ce)
}

func (a *Agent) event(name, detail string) {
	if a.cfg.Bus.Active() {
		a.cfg.Bus.Publish(sim.TraceEvent{Kind: "ctrl", Module: a.cfg.Name, Name: name, Detail: detail})
	}
}

func wireKeys(ks []CtrlKey) []microp4.Key {
	out := make([]microp4.Key, len(ks))
	for i, k := range ks {
		out[i] = k.runtimeKey()
	}
	return out
}
