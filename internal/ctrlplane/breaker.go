package ctrlplane

import "microp4/internal/obs"

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the channel failed repeatedly; requests are held
	// back until the reopen deadline to avoid hammering a partitioned
	// or overwhelmed peer.
	BreakerOpen
	// BreakerHalfOpen: one probe request is allowed through; its
	// outcome decides between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes one channel's circuit breaker. Zero fields take
// the defaults.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker (default 5).
	FailureThreshold int
	// OpenFor is how long, in virtual ticks, the breaker stays open
	// before allowing a half-open probe (default 512).
	OpenFor uint64
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor == 0 {
		c.OpenFor = 512
	}
	return c
}

// breaker is a per-channel circuit breaker on the network's virtual
// clock. Single-threaded with the netsim run loop, like everything in
// the client.
type breaker struct {
	cfg      BreakerConfig
	state    BreakerState
	failures int
	openedAt uint64
	gauge    *obs.Gauge // nil-safe
}

func newBreaker(cfg BreakerConfig, gauge *obs.Gauge) *breaker {
	return &breaker{cfg: cfg.withDefaults(), gauge: gauge}
}

func (b *breaker) set(s BreakerState) {
	b.state = s
	b.gauge.Set(int64(s))
}

// allow reports whether a send may go out now. An open breaker past its
// reopen deadline transitions to half-open and admits one probe.
func (b *breaker) allow(now uint64) bool {
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now >= b.openedAt+b.cfg.OpenFor {
			b.set(BreakerHalfOpen)
			return true
		}
		return false
	case BreakerHalfOpen:
		// One probe at a time: the probe that flipped the breaker
		// half-open is in flight; hold the rest.
		return false
	}
	return true
}

// retryAt returns the earliest tick a held-back send should retry.
func (b *breaker) retryAt() uint64 { return b.openedAt + b.cfg.OpenFor }

// success records a reply: any reply proves the channel works.
func (b *breaker) success() {
	b.failures = 0
	if b.state != BreakerClosed {
		b.set(BreakerClosed)
	}
}

// failure records a timeout at the given tick.
func (b *breaker) failure(now uint64) {
	b.failures++
	switch b.state {
	case BreakerClosed:
		if b.failures >= b.cfg.FailureThreshold {
			b.openedAt = now
			b.set(BreakerOpen)
		}
	case BreakerHalfOpen:
		// The probe failed: back to open, with a fresh deadline.
		b.openedAt = now
		b.set(BreakerOpen)
	}
}
