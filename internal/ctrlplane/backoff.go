package ctrlplane

import "math/rand"

// BackoffConfig tunes the retry schedule: capped exponential backoff
// with "equal jitter" (half deterministic, half drawn from the
// client's seeded stream). Delays are in virtual ticks. Zero fields
// take the defaults.
type BackoffConfig struct {
	Base uint64  // first retry delay (default 16 ticks)
	Cap  uint64  // maximum delay (default 1024 ticks)
	Mult float64 // growth factor per attempt (default 2.0)
}

func (c BackoffConfig) withDefaults() BackoffConfig {
	if c.Base == 0 {
		c.Base = 16
	}
	if c.Cap == 0 {
		c.Cap = 1024
	}
	if c.Mult < 1 {
		c.Mult = 2.0
	}
	return c
}

// delay returns the backoff before retry number attempt (1-based),
// drawing jitter from rng. With equal jitter the delay lands in
// [d/2, d] for d = min(cap, base·mult^(attempt-1)) — randomized enough
// to de-synchronize retry storms, bounded enough to keep worst-case
// convergence time predictable. The rng is the client's private seeded
// stream, consumed in deterministic order by the single-threaded run
// loop: identical seed ⇒ identical jitter ⇒ identical retry schedule.
func (c BackoffConfig) delay(attempt int, rng *rand.Rand) uint64 {
	d := float64(c.Base)
	for i := 1; i < attempt; i++ {
		d *= c.Mult
		if d >= float64(c.Cap) {
			break
		}
	}
	top := uint64(d)
	if top > c.Cap {
		top = c.Cap
	}
	if top == 0 {
		top = 1
	}
	half := top / 2
	jitter := uint64(rng.Int63n(int64(top-half) + 1))
	return half + jitter
}
