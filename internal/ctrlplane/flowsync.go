package ctrlplane

import (
	"fmt"

	"microp4/internal/flow"
)

// Flow-state replication wire protocol. An active switch streams its
// flow-table contents to a warm standby over the same lossy links the
// control protocol crosses, so an active failure can be survived by
// promoting the standby without dropping established connections.
//
// The protocol reuses the control codec's failure split:
//
//   - the codec turns corruption into losses (checksum, strict length
//     accounting — FuzzDecodeFlowSync holds the never-panic contract);
//   - the standby makes at-least-once delivery safe by deduplicating
//     on (session, sequence) and replaying the cached ack, and applies
//     entries through flow.Table.Install, which is idempotent and
//     never demotes an established flow on a reordered older update;
//   - the active turns losses into delays: an entry stays unsynced
//     until its ack arrives, so the next round retransmits it, and a
//     periodic anti-entropy resync replays the full table to heal any
//     divergence that slips past the incremental stream.
//
// Promotion is never wire-triggered: no FlowSync message can flip a
// standby into the active role, so corrupted or forged frames cannot
// promote a stale standby. The failover decision stays with the
// operator (or the test harness), informed by the standby's
// last-heard-from-active clock.

// SyncKind names one replication message flavor.
type SyncKind uint8

const (
	// SyncUpdate carries the incremental batch: entries learned or
	// changed since their last acknowledged replication. An empty
	// update doubles as the health probe that keeps the standby's
	// last-heard clock fresh.
	SyncUpdate SyncKind = iota + 1
	// SyncResync carries an anti-entropy snapshot chunk: every live
	// entry, synced or not, in the table's deterministic insertion
	// order.
	SyncResync
	syncKindEnd
)

func (k SyncKind) String() string {
	switch k {
	case SyncUpdate:
		return "update"
	case SyncResync:
		return "resync"
	}
	return fmt.Sprintf("sync(%d)", uint8(k))
}

// FlowRec is one replicated flow entry: the 5-tuple, the connection
// state, the expiry tick on the active's flow clock, and the pinned
// stick value (zero for plain upsert tables). The standby installs it
// verbatim — its own wheel is behind the active's, so the entry simply
// lives at least as long there.
type FlowRec struct {
	Key    flow.Key
	State  uint8
	Expire uint64
	Val    uint64
}

// FlowSync is one replication message from active to standby. Session
// identifies the active↔standby channel; Seq is channel-monotonic and
// is what the standby deduplicates on (a retransmission reuses neither
// — lost entries are re-batched under a fresh Seq, and Install
// idempotence makes the re-apply safe). Clock is the active's flow
// clock at send time, replicated for lag observability.
type FlowSync struct {
	Session uint64
	Seq     uint64
	Kind    SyncKind
	Table   string // fully qualified flowtable path ("" = pure probe)
	Clock   uint64
	Entries []FlowRec
}

// FlowAck answers one FlowSync, echoing Session and Seq. Applied
// reports how many entries the standby installed (diagnostics only —
// acknowledgment is per-message, not per-entry).
type FlowAck struct {
	Session uint64
	Seq     uint64
	Applied uint64
}

// maxWireFlows bounds the entries per FlowSync frame; the replicator
// chunks larger batches across frames.
const maxWireFlows = 256

const (
	wireMsgFlowSync = 3
	wireMsgFlowAck  = 4
)

// EncodeFlowSync serializes a replication message for transmission.
func EncodeFlowSync(m *FlowSync) []byte {
	w := &wireWriter{buf: make([]byte, 0, 64+57*len(m.Entries))}
	w.u8(wireMagic)
	w.u8(wireVersion)
	w.u8(wireMsgFlowSync)
	w.u8(uint8(m.Kind))
	w.u64(m.Session)
	w.u64(m.Seq)
	w.str(m.Table)
	w.u64(m.Clock)
	ne := len(m.Entries)
	if ne > maxWireFlows {
		ne = maxWireFlows
	}
	w.u16(uint16(ne))
	for _, e := range m.Entries[:ne] {
		w.u64(e.Key.SrcAddr)
		w.u64(e.Key.DstAddr)
		w.u64(e.Key.Proto)
		w.u64(e.Key.SrcPort)
		w.u64(e.Key.DstPort)
		w.u8(e.State)
		w.u64(e.Expire)
		w.u64(e.Val)
	}
	return w.finish()
}

// DecodeFlowSync parses a replication message. Arbitrary input never
// panics; corrupted, truncated, or oversized messages return an error.
func DecodeFlowSync(data []byte) (*FlowSync, error) {
	r := &wireReader{buf: data}
	if t := r.checkHeader(); r.err == nil && t != wireMsgFlowSync {
		r.fail("not a flow-sync message")
	}
	m := &FlowSync{}
	m.Kind = SyncKind(r.u8())
	if r.err == nil && (m.Kind == 0 || m.Kind >= syncKindEnd) {
		r.fail("unknown sync kind")
	}
	m.Session = r.u64()
	m.Seq = r.u64()
	m.Table = r.str()
	m.Clock = r.u64()
	ne := int(r.u16())
	if ne > maxWireFlows {
		r.fail("too many flow entries")
		ne = 0
	}
	for i := 0; i < ne && r.err == nil; i++ {
		var e FlowRec
		e.Key.SrcAddr = r.u64()
		e.Key.DstAddr = r.u64()
		e.Key.Proto = r.u64()
		e.Key.SrcPort = r.u64()
		e.Key.DstPort = r.u64()
		e.State = r.u8()
		if r.err == nil && e.State > flow.StateEstablished {
			r.fail("unknown flow state")
		}
		e.Expire = r.u64()
		e.Val = r.u64()
		m.Entries = append(m.Entries, e)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// EncodeFlowAck serializes an acknowledgment for transmission.
func EncodeFlowAck(a *FlowAck) []byte {
	w := &wireWriter{buf: make([]byte, 0, 32)}
	w.u8(wireMagic)
	w.u8(wireVersion)
	w.u8(wireMsgFlowAck)
	w.u8(0) // reserved, keeps the 4-byte fixed header shape
	w.u64(a.Session)
	w.u64(a.Seq)
	w.u64(a.Applied)
	return w.finish()
}

// DecodeFlowAck parses an acknowledgment (same guarantees as
// DecodeFlowSync).
func DecodeFlowAck(data []byte) (*FlowAck, error) {
	r := &wireReader{buf: data}
	if t := r.checkHeader(); r.err == nil && t != wireMsgFlowAck {
		r.fail("not a flow-ack message")
	}
	if v := r.u8(); r.err == nil && v != 0 {
		r.fail("nonzero reserved byte")
	}
	a := &FlowAck{}
	a.Session = r.u64()
	a.Seq = r.u64()
	a.Applied = r.u64()
	if err := r.finish(); err != nil {
		return nil, err
	}
	return a, nil
}
