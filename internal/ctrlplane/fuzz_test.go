package ctrlplane

import (
	"reflect"
	"testing"
)

// FuzzDecodeCtrlOp feeds arbitrary bytes to the strict decoder. The
// invariants: never a panic, and any input that decodes successfully
// round-trips — re-encoding the decoded op reproduces the exact input
// bytes (the wire format is canonical), and re-decoding yields an
// identical struct.
func FuzzDecodeCtrlOp(f *testing.F) {
	for _, op := range sampleOps() {
		f.Add(EncodeCtrlOp(op))
	}
	f.Add(EncodeCtrlReply(&CtrlReply{Session: 1, Seq: 1, Status: StatusOK}))
	f.Add([]byte{})
	f.Add([]byte{wireMagic, wireVersion, wireMsgOp})
	f.Add(make([]byte, 512))
	f.Fuzz(func(t *testing.T, data []byte) {
		op, err := DecodeCtrlOp(data)
		if err != nil {
			return
		}
		enc := EncodeCtrlOp(op)
		if string(enc) != string(data) {
			t.Fatalf("valid op did not re-encode canonically:\n in %x\nout %x", data, enc)
		}
		again, err := DecodeCtrlOp(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded op failed: %v", err)
		}
		if !reflect.DeepEqual(op, again) {
			t.Fatalf("round trip not identity:\n first %+v\nsecond %+v", op, again)
		}
	})
}

// FuzzDecodeFlowSync: the replication decoder holds the same contract
// as the control decoders — never a panic on arbitrary bytes, and any
// input that decodes successfully re-encodes to the exact input (the
// wire format is canonical).
func FuzzDecodeFlowSync(f *testing.F) {
	for _, m := range sampleSyncs() {
		f.Add(EncodeFlowSync(m))
	}
	f.Add(EncodeFlowAck(&FlowAck{Session: 1, Seq: 1, Applied: 2}))
	f.Add(EncodeCtrlOp(sampleOps()[0]))
	f.Add([]byte{})
	f.Add([]byte{wireMagic, wireVersion, wireMsgFlowSync})
	f.Add(make([]byte, 512))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeFlowSync(data)
		if err != nil {
			return
		}
		enc := EncodeFlowSync(m)
		if string(enc) != string(data) {
			t.Fatalf("valid sync did not re-encode canonically:\n in %x\nout %x", data, enc)
		}
		again, err := DecodeFlowSync(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded sync failed: %v", err)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("round trip not identity:\n first %+v\nsecond %+v", m, again)
		}
	})
}

// FuzzDecodeFlowAck: same contract for the ack decoder.
func FuzzDecodeFlowAck(f *testing.F) {
	f.Add(EncodeFlowAck(&FlowAck{Session: 1, Seq: 1, Applied: 0}))
	f.Add(EncodeFlowAck(&FlowAck{Session: 0xFFFFFFFFFFFFFFFF, Seq: 9, Applied: 256}))
	f.Add(EncodeFlowSync(sampleSyncs()[1]))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeFlowAck(data)
		if err != nil {
			return
		}
		enc := EncodeFlowAck(a)
		if string(enc) != string(data) {
			t.Fatalf("valid ack did not re-encode canonically:\n in %x\nout %x", data, enc)
		}
	})
}

// FuzzDecodeCtrlReply: same contract for the reply decoder.
func FuzzDecodeCtrlReply(f *testing.F) {
	f.Add(EncodeCtrlReply(&CtrlReply{Session: 1, Seq: 1, Status: StatusOK}))
	f.Add(EncodeCtrlReply(&CtrlReply{Session: 2, Seq: 3, Status: StatusRejected,
		Class: "key-width", Reason: "nope"}))
	f.Add(EncodeCtrlOp(sampleOps()[0]))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeCtrlReply(data)
		if err != nil {
			return
		}
		enc := EncodeCtrlReply(rep)
		if string(enc) != string(data) {
			t.Fatalf("valid reply did not re-encode canonically:\n in %x\nout %x", data, enc)
		}
	})
}
