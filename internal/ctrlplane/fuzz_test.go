package ctrlplane

import (
	"reflect"
	"testing"
)

// FuzzDecodeCtrlOp feeds arbitrary bytes to the strict decoder. The
// invariants: never a panic, and any input that decodes successfully
// round-trips — re-encoding the decoded op reproduces the exact input
// bytes (the wire format is canonical), and re-decoding yields an
// identical struct.
func FuzzDecodeCtrlOp(f *testing.F) {
	for _, op := range sampleOps() {
		f.Add(EncodeCtrlOp(op))
	}
	f.Add(EncodeCtrlReply(&CtrlReply{Session: 1, Seq: 1, Status: StatusOK}))
	f.Add([]byte{})
	f.Add([]byte{wireMagic, wireVersion, wireMsgOp})
	f.Add(make([]byte, 512))
	f.Fuzz(func(t *testing.T, data []byte) {
		op, err := DecodeCtrlOp(data)
		if err != nil {
			return
		}
		enc := EncodeCtrlOp(op)
		if string(enc) != string(data) {
			t.Fatalf("valid op did not re-encode canonically:\n in %x\nout %x", data, enc)
		}
		again, err := DecodeCtrlOp(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded op failed: %v", err)
		}
		if !reflect.DeepEqual(op, again) {
			t.Fatalf("round trip not identity:\n first %+v\nsecond %+v", op, again)
		}
	})
}

// FuzzDecodeCtrlReply: same contract for the reply decoder.
func FuzzDecodeCtrlReply(f *testing.F) {
	f.Add(EncodeCtrlReply(&CtrlReply{Session: 1, Seq: 1, Status: StatusOK}))
	f.Add(EncodeCtrlReply(&CtrlReply{Session: 2, Seq: 3, Status: StatusRejected,
		Class: "key-width", Reason: "nope"}))
	f.Add(EncodeCtrlOp(sampleOps()[0]))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeCtrlReply(data)
		if err != nil {
			return
		}
		enc := EncodeCtrlReply(rep)
		if string(enc) != string(data) {
			t.Fatalf("valid reply did not re-encode canonically:\n in %x\nout %x", data, enc)
		}
	})
}
