package ctrlplane_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"microp4"
	"microp4/internal/ctrlplane"
	"microp4/internal/lib"
	"microp4/internal/netsim"
	"microp4/internal/obs"
	"microp4/internal/pkt"
	"microp4/internal/sim"
)

// compileP4 builds the flagship composed router (program P4).
func compileP4(t testing.TB) *microp4.Dataplane {
	t.Helper()
	m, err := lib.Program("P4")
	if err != nil {
		t.Fatal(err)
	}
	src, err := lib.Source(m.MainFile)
	if err != nil {
		t.Fatal(err)
	}
	main, err := microp4.CompileModule(m.MainFile, src)
	if err != nil {
		t.Fatal(err)
	}
	var mods []*microp4.Module
	for _, name := range m.Modules {
		msrc, err := lib.ModuleSource(name)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := microp4.CompileModule(name+".up4", msrc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mods = append(mods, mod)
	}
	dp, err := microp4.Build(main, mods...)
	if err != nil {
		t.Fatal(err)
	}
	return dp
}

// v4Packet is routable via NetA/8 → next hop NhA → port PortA once the
// standard rules are installed.
func v4Packet() []byte {
	return pkt.NewBuilder().
		Ethernet(2, 3, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 1, Dst: lib.NetA | 1}).
		TCP(1000, 80).Bytes()
}

// routes checks whether a switch currently forwards the NetA packet.
func routes(t *testing.T, sw *microp4.Switch) bool {
	t.Helper()
	out, err := sw.Process(v4Packet(), 0)
	if err != nil {
		t.Fatalf("dataplane probe: %v", err)
	}
	return len(out) == 1 && out[0].Port == lib.PortA
}

// updatePlan is the standard two-switch transactional rollout: route
// NetA on both switches.
func updatePlan(peers []string) []ctrlplane.TxnOp {
	var ops []ctrlplane.TxnOp
	for _, p := range peers {
		ops = append(ops,
			ctrlplane.TxnOp{Peer: p, Op: ctrlplane.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl",
				[]ctrlplane.CtrlKey{ctrlplane.LPM(lib.NetA, 8)}, "l3_i.ipv4_i.process", lib.NhA)},
			ctrlplane.TxnOp{Peer: p, Op: ctrlplane.AddEntry("forward_tbl",
				[]ctrlplane.CtrlKey{ctrlplane.Exact(lib.NhA)}, "forward", lib.DmacA, lib.SmacA, lib.PortA)},
			ctrlplane.TxnOp{Peer: p, Op: ctrlplane.SetDefault("forward_tbl", "drop_pkt")},
		)
	}
	return ops
}

const ctrlPort = 9

// scenario is one deterministic control-plane run: a controller and two
// switch agents joined by lossy links, driving updatePlan as one
// transaction.
type scenario struct {
	n        *netsim.Network
	client   *ctrlplane.Client
	switches map[string]*microp4.Switch
	reg      *obs.Registry
	metrics  *ctrlplane.Metrics
	events   []string // FaultEvents and "ctrl" trace events, interleaved in emission order
	result   *ctrlplane.TxnResult
}

func newScenario(t *testing.T, seed uint64, fm netsim.FaultModel) *scenario {
	t.Helper()
	dp := compileP4(t)
	s := &scenario{
		n:        netsim.New(seed),
		switches: map[string]*microp4.Switch{},
		reg:      obs.NewRegistry(),
	}
	s.metrics = ctrlplane.NewMetrics(s.reg)
	s.n.OnFault(func(e netsim.FaultEvent) {
		s.events = append(s.events, fmt.Sprintf("fault %s %s %s", e.Link, e.Kind, e.Detail))
	})
	s.n.Bus().Subscribe(func(e sim.TraceEvent) {
		if e.Kind == "ctrl" {
			s.events = append(s.events, fmt.Sprintf("ctrl %s %s %s", e.Module, e.Name, e.Detail))
		}
	})
	client, err := ctrlplane.NewClient(s.n, "ctrl", ctrlplane.Config{Seed: seed, Metrics: s.metrics})
	if err != nil {
		t.Fatal(err)
	}
	s.client = client
	for i, name := range []string{"s1", "s2"} {
		sw := dp.NewSwitch()
		sw.EnableMetrics()
		s.switches[name] = sw
		agent := ctrlplane.NewAgent(sw, ctrlplane.AgentConfig{
			Name: name, CtrlPort: ctrlPort, Metrics: s.metrics, Bus: s.n.Bus(),
		})
		if err := s.n.AddSwitch(name, agent); err != nil {
			t.Fatal(err)
		}
		local := uint64(i + 1)
		if err := client.AddPeer(name, local); err != nil {
			t.Fatal(err)
		}
		if err := s.n.Connect("ctrl", local, name, ctrlPort, fm); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func (s *scenario) transact(t *testing.T, ops []ctrlplane.TxnOp) {
	t.Helper()
	if err := s.client.Transaction(ops, func(r ctrlplane.TxnResult) { s.result = &r }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.n.Run(0); err != nil {
		t.Fatal(err)
	}
	if s.result == nil {
		t.Fatal("network went quiet without resolving the transaction")
	}
}

func (s *scenario) engineFaults() uint64 {
	var total uint64
	for _, sw := range s.switches {
		total += sw.Metrics().Counter("up4_engine_faults_total", "").Value()
	}
	return total
}

// lossy is the acceptance fault model: ≥10% drop plus duplication and
// reorder on every control link.
var lossy = netsim.FaultModel{Drop: 0.12, Duplicate: 0.08, Reorder: 0.15}

// TestTransactionConvergesOverLossyLinks is the acceptance scenario: a
// multi-switch transactional update rides links that drop, duplicate,
// and reorder control packets, and still lands atomically — every
// switch ends up forwarding, retries happened, and no engine faulted.
func TestTransactionConvergesOverLossyLinks(t *testing.T) {
	s := newScenario(t, 0x5EED, lossy)
	for name, sw := range s.switches {
		if routes(t, sw) {
			t.Fatalf("%s forwards before any rules were installed", name)
		}
	}
	s.transact(t, updatePlan(s.client.Peers()))
	if !s.result.Committed || len(s.result.PeerErrs) != 0 {
		t.Fatalf("transaction did not commit cleanly: %+v", *s.result)
	}
	for name, sw := range s.switches {
		if !routes(t, sw) {
			t.Errorf("%s did not converge to the planned state", name)
		}
	}
	if got := s.metrics.Retries.Value(); got == 0 {
		t.Error("up4_ctrl_retries_total = 0, want > 0 (losses must have forced retransmissions)")
	}
	if got := s.engineFaults(); got != 0 {
		t.Errorf("up4_engine_faults_total = %d, want 0", got)
	}
	if got := s.metrics.TxnCommits.Value(); got != 1 {
		t.Errorf("up4_ctrl_txn_commits_total = %d, want 1", got)
	}
}

// TestTransactionDeterministicPerSeed runs the identical lossy scenario
// twice: the interleaved FaultEvent / retry / commit sequence must be
// byte-identical, and a different seed must diverge.
func TestTransactionDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) string {
		s := newScenario(t, seed, lossy)
		s.transact(t, updatePlan(s.client.Peers()))
		return strings.Join(s.events, "\n")
	}
	a, b := run(0x5EED), run(0x5EED)
	if a != b {
		t.Errorf("same seed, different event sequence:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if c := run(0xD1FF); c == a {
		t.Error("different seed reproduced the identical event sequence — clock or rng is not seed-driven")
	}
}

// TestTransactionAbortsAtomically dooms the plan with one invalid op:
// every switch must roll back to its pre-transaction state even though
// the valid ops were staged and possibly prepared.
func TestTransactionAbortsAtomically(t *testing.T) {
	s := newScenario(t, 0x5EED, lossy)
	// Pre-existing state the rollback must preserve.
	for _, sw := range s.switches {
		if err := sw.TryAddEntry("l3_i.ipv6_i.ipv6_lpm_tbl",
			[]microp4.Key{microp4.LPM(lib.NetV6Hi, 32)}, "l3_i.ipv6_i.process", lib.NhV6); err != nil {
			t.Fatal(err)
		}
	}
	plan := updatePlan(s.client.Peers())
	plan = append(plan, ctrlplane.TxnOp{Peer: "s2",
		Op: ctrlplane.AddEntry("no_such_tbl", []ctrlplane.CtrlKey{ctrlplane.Exact(1)}, "forward", 1)})
	s.transact(t, plan)
	if s.result.Committed {
		t.Fatalf("transaction with an invalid op committed: %+v", *s.result)
	}
	var ce *sim.ControlError
	if err := s.result.PeerErrs["s2"]; !errors.As(err, &ce) || ce.Kind != sim.RejectUnknownTable {
		t.Errorf("s2 error = %v, want ControlError kind %q", err, sim.RejectUnknownTable)
	}
	for name, sw := range s.switches {
		if routes(t, sw) {
			t.Errorf("%s kept transactional state after abort", name)
		}
		if v6 := pkt.NewBuilder().Ethernet(2, 3, pkt.EtherTypeIPv6).
			IPv6(pkt.IPv6Opts{HopLimit: 64, NextHdr: 6, DstHi: lib.NetV6Hi | 1}).Bytes(); v6 != nil {
			// The pre-existing v6 route must have survived the rollback:
			// it routes to NhV6, which has no forward entry, so the probe
			// is simply that processing still succeeds without fault.
			if _, err := sw.Process(v6, 0); err != nil {
				t.Errorf("%s: pre-existing state damaged by rollback: %v", name, err)
			}
		}
	}
	if got := s.metrics.TxnAborts.Value(); got != 1 {
		t.Errorf("up4_ctrl_txn_aborts_total = %d, want 1", got)
	}
}

// TestUnreachablePeerAborts takes one control link administratively
// down: the transaction must give up after MaxAttempts and abort, with
// the reachable switch rolled back.
func TestUnreachablePeerAborts(t *testing.T) {
	s := newScenario(t, 7, netsim.FaultModel{})
	if err := s.n.SetLinkDown("ctrl", 2, true); err != nil {
		t.Fatal(err)
	}
	s.transact(t, updatePlan(s.client.Peers()))
	if s.result.Committed {
		t.Fatal("transaction committed with an unreachable participant")
	}
	if err := s.result.PeerErrs["s2"]; !errors.Is(err, ctrlplane.ErrUnreachable) {
		t.Errorf("s2 error = %v, want ErrUnreachable", err)
	}
	if routes(t, s.switches["s1"]) {
		t.Error("reachable switch s1 kept transactional state after abort")
	}
	if s.metrics.Timeouts.Value() == 0 {
		t.Error("up4_ctrl_timeouts_total = 0, want > 0")
	}
}

// TestBreakerOpensOnDeadPeer checks the circuit breaker: enough
// consecutive timeouts trip it open (gauge = 1), and sends while open
// are held rather than burned.
func TestBreakerOpensOnDeadPeer(t *testing.T) {
	s := newScenario(t, 11, netsim.FaultModel{Drop: 1.0})
	var errs []error
	for i := 0; i < 3; i++ {
		err := s.client.Do("s1", ctrlplane.ClearTable("forward_tbl"),
			func(_ *ctrlplane.CtrlReply, err error) { errs = append(errs, err) })
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.n.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(errs) != 3 {
		t.Fatalf("resolved %d of 3 calls", len(errs))
	}
	for _, err := range errs {
		if !errors.Is(err, ctrlplane.ErrUnreachable) {
			t.Errorf("err = %v, want ErrUnreachable", err)
		}
	}
	gauge := s.reg.Gauge("up4_ctrl_breaker_state", "", obs.L("peer", "s1"))
	if gauge.Value() == int64(ctrlplane.BreakerClosed) {
		t.Error("breaker still closed after a fully dead channel")
	}
}

// TestCommitRacesDataplaneAndChurn drives a committing transaction
// through the network's run loop while other goroutines hammer the same
// switches with live traffic and schema-shaped churn. Run under -race;
// the assertion is the absence of data races and a committed result.
func TestCommitRacesDataplaneAndChurn(t *testing.T) {
	s := newScenario(t, 0xACE, netsim.FaultModel{Drop: 0.05, Duplicate: 0.05})
	api := compileP4(t).ControlAPI()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for name, sw := range s.switches {
		churn := netsim.NewChurn(0xC0FFEE, sw, netsim.ChurnConfig{
			Tables: []string{"forward_tbl", "l3_i.ipv4_i.ipv4_lpm_tbl"},
			Actions: map[string]string{
				"forward_tbl":              "forward",
				"l3_i.ipv4_i.ipv4_lpm_tbl": "l3_i.ipv4_i.process",
			},
			API:    api,
			Groups: []uint64{1}, Ports: []uint64{1, 2},
		})
		wg.Add(2)
		go func(sw *microp4.Switch) {
			defer wg.Done()
			data := v4Packet()
			for {
				select {
				case <-stop:
					return
				default:
					if _, err := sw.Process(data, 0); err != nil {
						t.Errorf("dataplane under churn: %v", err)
						return
					}
				}
			}
		}(sw)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					churn.Step()
				}
			}
		}()
		_ = name
	}
	s.transact(t, updatePlan(s.client.Peers()))
	close(stop)
	wg.Wait()
	if !s.result.Committed {
		t.Fatalf("transaction did not commit: %+v", *s.result)
	}
	if got := s.engineFaults(); got != 0 {
		t.Errorf("up4_engine_faults_total = %d under race, want 0", got)
	}
}

// TestChurnRejectCounting wires churn through the network with a
// deliberately bogus table in the mix: the validated API must refuse
// those ops and up4_churn_rejects_total must count them.
func TestChurnRejectCounting(t *testing.T) {
	dp := compileP4(t)
	n := netsim.New(3)
	reg := n.EnableMetrics()
	sw := dp.NewSwitch()
	if err := n.AddSwitch("s1", sw); err != nil {
		t.Fatal(err)
	}
	if err := n.AddChurn("s1", netsim.ChurnConfig{
		Tables:  []string{"forward_tbl", "bogus_tbl"},
		Actions: map[string]string{"forward_tbl": "forward", "bogus_tbl": "nope"},
		API:     dp.ControlAPI(),
	}, 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := n.Inject("s1", 0, v4Packet()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Run(0); err != nil {
		t.Fatal(err)
	}
	rejects := reg.Counter("up4_churn_rejects_total", "", obs.L("node", "s1")).Value()
	if rejects == 0 {
		t.Error("up4_churn_rejects_total = 0, want > 0 (bogus_tbl ops must be refused)")
	}
}
