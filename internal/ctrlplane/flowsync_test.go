package ctrlplane

import (
	"reflect"
	"testing"

	"microp4/internal/flow"
)

// sampleSyncs covers both sync kinds, the bare probe, and multi-entry
// batches.
func sampleSyncs() []*FlowSync {
	return []*FlowSync{
		{Session: 0xFEED01, Seq: 1, Kind: SyncUpdate}, // bare probe
		{
			Session: 0xFEED01, Seq: 2, Kind: SyncUpdate, Table: "fs_i.conn", Clock: 17,
			Entries: []FlowRec{
				{Key: flow.Key{SrcAddr: 0x0A000001, DstAddr: 0x14000001, Proto: 6,
					SrcPort: 4321, DstPort: 443}, State: flow.StateNew, Expire: 273},
			},
		},
		{
			Session: 0xFEED01, Seq: 3, Kind: SyncResync, Table: "fs_i.conn", Clock: 99,
			Entries: []FlowRec{
				{Key: flow.Key{SrcAddr: 1, DstAddr: 2, Proto: 6, SrcPort: 3, DstPort: 4},
					State: flow.StateEstablished, Expire: 65635, Val: 0xB00F},
				{Key: flow.Key{SrcAddr: 5, DstAddr: 6, Proto: 17, SrcPort: 7, DstPort: 8},
					State: flow.StateNew, Expire: 355},
			},
		},
	}
}

func TestFlowSyncRoundTrip(t *testing.T) {
	for _, m := range sampleSyncs() {
		enc := EncodeFlowSync(m)
		got, err := DecodeFlowSync(enc)
		if err != nil {
			t.Fatalf("seq %d: decode: %v", m.Seq, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("seq %d: round trip mismatch:\n got %+v\nwant %+v", m.Seq, got, m)
		}
		if string(EncodeFlowSync(got)) != string(enc) {
			t.Errorf("seq %d: re-encode is not byte-identical", m.Seq)
		}
	}
}

func TestFlowAckRoundTrip(t *testing.T) {
	for _, a := range []*FlowAck{
		{Session: 1, Seq: 2, Applied: 0},
		{Session: 0xFFFFFFFFFFFFFFFF, Seq: 9, Applied: 256},
	} {
		enc := EncodeFlowAck(a)
		got, err := DecodeFlowAck(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, a) {
			t.Errorf("ack round trip mismatch:\n got %+v\nwant %+v", got, a)
		}
	}
}

// TestFlowSyncCorruptionDetected flips every single bit of an encoded
// sync message; the checksum must turn each corruption into a decode
// error, never into a different valid message — the property that lets
// the standby treat bit flips as drops.
func TestFlowSyncCorruptionDetected(t *testing.T) {
	enc := EncodeFlowSync(sampleSyncs()[2])
	for i := 0; i < len(enc)*8; i++ {
		corrupt := append([]byte(nil), enc...)
		corrupt[i/8] ^= 1 << (i % 8)
		if _, err := DecodeFlowSync(corrupt); err == nil {
			t.Fatalf("bit flip at %d decoded as a valid sync message", i)
		}
	}
	ack := EncodeFlowAck(&FlowAck{Session: 3, Seq: 4, Applied: 5})
	for i := 0; i < len(ack)*8; i++ {
		corrupt := append([]byte(nil), ack...)
		corrupt[i/8] ^= 1 << (i % 8)
		if _, err := DecodeFlowAck(corrupt); err == nil {
			t.Fatalf("bit flip at %d decoded as a valid ack", i)
		}
	}
}

// TestFlowSyncRejectsCrossTypes: a sync frame must not decode as an
// ack or a control message, and vice versa — the type byte is under
// the checksum.
func TestFlowSyncRejectsCrossTypes(t *testing.T) {
	sync := EncodeFlowSync(sampleSyncs()[1])
	if _, err := DecodeFlowAck(sync); err == nil {
		t.Error("sync frame decoded as ack")
	}
	if _, err := DecodeCtrlOp(sync); err == nil {
		t.Error("sync frame decoded as ctrl op")
	}
	ack := EncodeFlowAck(&FlowAck{Session: 1, Seq: 1})
	if _, err := DecodeFlowSync(ack); err == nil {
		t.Error("ack decoded as sync frame")
	}
	if _, err := DecodeFlowSync(EncodeCtrlOp(sampleOps()[0])); err == nil {
		t.Error("ctrl op decoded as sync frame")
	}
}

func TestFlowSyncTruncationDetected(t *testing.T) {
	enc := EncodeFlowSync(sampleSyncs()[2])
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeFlowSync(enc[:n]); err == nil {
			t.Fatalf("truncation to %dB decoded as a valid sync message", n)
		}
	}
}
