package ctrlplane

import (
	"fmt"
	"sort"

	"microp4"
	"microp4/internal/flow"
	"microp4/internal/netsim"
	"microp4/internal/sim"
	"microp4/internal/trace"
)

// ReplicaConfig tunes one active↔standby replication channel. The same
// config is handed to both ends (the Name differs per node).
type ReplicaConfig struct {
	// Name is this node's name in the netsim network (labels events,
	// derives the session id on the active side).
	Name string
	// SyncPort carries replication traffic; packets on any other port
	// pass through to the wrapped switch's dataplane.
	SyncPort uint64
	// Seed derives the replication session id (active side).
	Seed uint64
	// Interval is the virtual-tick spacing of replication rounds
	// (default 16).
	Interval uint64
	// ResyncEvery makes every Nth round an anti-entropy full-table
	// resync instead of an incremental update (default 8; 0 disables).
	ResyncEvery uint64
	// IdleRounds is how many workless rounds the replicator runs —
	// still probing the standby — before quiescing its timer so a
	// drained network can go quiet. Dataplane traffic re-arms it
	// (default 3).
	IdleRounds int
	// Window bounds the standby's per-session dedup cache (default 128).
	Window int
	// Metrics records sync lag and malformed-frame rejects (optional).
	Metrics *Metrics
	// Tracer receives "flowsync" spans: rounds, ack lag, promotion
	// (optional).
	Tracer *trace.Recorder
	// Bus receives "flowsync" trace events (optional).
	Bus *sim.Bus
}

func (c ReplicaConfig) withDefaults() ReplicaConfig {
	if c.Interval == 0 {
		c.Interval = 16
	}
	if c.ResyncEvery == 0 {
		c.ResyncEvery = 8
	}
	if c.IdleRounds <= 0 {
		c.IdleRounds = 3
	}
	if c.Window <= 0 {
		c.Window = 128
	}
	return c
}

// sentBatch is the bookkeeping for one in-flight FlowSync frame: which
// keys it carried (to MarkSynced on ack) and when it left (ack lag).
type sentBatch struct {
	table  string
	keys   []flow.Key
	sentAt uint64
}

// Replicator is the active side of flow-state replication: a
// netsim.Processor wrapping the active *microp4.Switch. Dataplane
// packets pass through (and re-arm the sync timer); acks arriving on
// the sync port mark their batch's entries synced. Rounds run on the
// network's virtual clock: each round batches every flow table's
// unsynced entries into FlowSync frames (or the full table, on
// anti-entropy rounds) and transmits them toward the standby. Entries
// whose frames are lost simply stay unsynced and are re-batched next
// round — retransmission is free, riding the same Synced bit the
// dataplane clears on every change worth replicating.
//
// All replicator state is touched only by the network's single-threaded
// run loop (Process, timers, and acks all run inside Network.Run).
type Replicator struct {
	n   *netsim.Network
	sw  *microp4.Switch
	cfg ReplicaConfig

	session   uint64
	seq       uint64
	rounds    uint64
	resyncs   uint64
	idle      int
	scheduled bool
	stopped   bool
	cancel    func()

	inflight    map[uint64]sentBatch
	lastAck     uint64 // network tick of the most recent valid ack
	lastRoundAt uint64 // network tick of the previous round
}

// NewReplicator wraps the active switch. Call Start (or let the first
// dataplane packet arm the timer) after wiring the network.
func NewReplicator(n *netsim.Network, sw *microp4.Switch, cfg ReplicaConfig) *Replicator {
	cfg = cfg.withDefaults()
	return &Replicator{
		n:        n,
		sw:       sw,
		cfg:      cfg,
		session:  mix(cfg.Seed^hashName(cfg.Name)) | 1,
		inflight: make(map[uint64]sentBatch),
	}
}

// Switch returns the wrapped active switch.
func (r *Replicator) Switch() *microp4.Switch { return r.sw }

// Bootstrap provisions a freshly paired standby with the active's
// control-plane state via Switch Checkpoint/Restore — table entries,
// defaults, and multicast groups — so replication only has to carry
// the fast-changing flow state. Promotion later restores nothing: the
// standby has been a live, fully programmed switch all along.
func (r *Replicator) Bootstrap(standby *microp4.Switch) {
	standby.Restore(r.sw.Checkpoint())
	r.event("bootstrap", "control state copied to standby")
}

// Start arms the periodic sync timer.
func (r *Replicator) Start() {
	if !r.stopped {
		r.schedule()
	}
}

// Stop cancels replication permanently (the active is being killed).
func (r *Replicator) Stop() {
	r.stopped = true
	if r.cancel != nil {
		r.cancel()
		r.cancel = nil
	}
	r.scheduled = false
}

// Lag returns the number of live entries not yet acknowledged by the
// standby, summed over all flow tables.
func (r *Replicator) Lag() int {
	lag := 0
	for _, path := range r.sw.FlowTablePaths() {
		if tb := r.sw.FlowTable(path); tb != nil {
			lag += len(tb.Unsynced(nil))
		}
	}
	return lag
}

// LastAck returns the network tick of the most recent valid ack (0 =
// never heard).
func (r *Replicator) LastAck() uint64 { return r.lastAck }

// Rounds returns (rounds run, anti-entropy resyncs among them).
func (r *Replicator) Rounds() (rounds, resyncs uint64) { return r.rounds, r.resyncs }

// Process implements netsim.Processor: acks on the sync port, dataplane
// traffic everywhere else. Dataplane packets re-arm a quiesced timer —
// new traffic means new flow state to replicate.
func (r *Replicator) Process(pkt []byte, inPort uint64) ([]microp4.Output, error) {
	if inPort == r.cfg.SyncPort {
		r.handleAck(pkt)
		return nil, nil
	}
	out, err := r.sw.Process(pkt, inPort)
	if !r.stopped && !r.scheduled {
		r.idle = 0
		r.schedule()
	}
	return out, err
}

func (r *Replicator) handleAck(pkt []byte) {
	ack, err := DecodeFlowAck(pkt)
	if err != nil {
		// Corruption or garbage: drop, count. The entries ride again
		// next round.
		r.cfg.Metrics.Reject(sim.RejectMalformed)
		r.event("reject", "flow-ack: "+err.Error())
		return
	}
	if ack.Session != r.session {
		r.event("reject", fmt.Sprintf("flow-ack: foreign session %#x", ack.Session))
		return
	}
	r.lastAck = r.n.Now()
	b, ok := r.inflight[ack.Seq]
	if !ok {
		return // duplicate ack, or ack of a batch already purged
	}
	delete(r.inflight, ack.Seq)
	if tb := r.sw.FlowTable(b.table); tb != nil {
		for _, k := range b.keys {
			tb.MarkSynced(k)
		}
	}
	if r.cfg.Tracer != nil {
		id := r.cfg.Tracer.NextID()
		sp := &trace.Span{TraceID: id, SpanID: id, Kind: "flowsync", Name: "ack",
			Start: b.sentAt, End: r.n.Now()}
		sp.Event(r.n.Now(), "lag", fmt.Sprintf("seq=%d entries=%d lag=%d ticks",
			ack.Seq, len(b.keys), r.n.Now()-b.sentAt))
		r.cfg.Tracer.Record(sp)
	}
}

func (r *Replicator) schedule() {
	r.scheduled = true
	r.cancel = r.n.AfterNamed("replicator "+r.cfg.Name, r.cfg.Interval, r.round)
}

// round runs one replication round: purge stale in-flight bookkeeping,
// batch and send unsynced (or, on anti-entropy rounds, all) entries
// per table, fall back to an empty probe frame when there is nothing
// to send, then re-arm — unless the channel has been idle long enough
// to quiesce.
func (r *Replicator) round() {
	r.scheduled = false
	r.cancel = nil
	if r.stopped {
		return
	}
	prevRound := r.lastRoundAt
	r.lastRoundAt = r.n.Now()
	r.rounds++
	resync := r.cfg.ResyncEvery > 0 && r.rounds%r.cfg.ResyncEvery == 0
	if resync {
		r.resyncs++
	}
	var span *trace.Span
	if r.cfg.Tracer != nil {
		id := r.cfg.Tracer.NextID()
		span = &trace.Span{TraceID: id, SpanID: id, Kind: "flowsync", Name: "round", Start: r.n.Now()}
		if resync {
			span.Name = "resync"
		}
	}

	// Frames that never got acked within a few rounds are presumed
	// lost; drop the bookkeeping (their entries are still unsynced and
	// re-batch below). Sorted so the purge order is deterministic.
	horizon := r.cfg.Interval * 4
	var stale []uint64
	for seq, b := range r.inflight {
		if r.n.Now() > b.sentAt+horizon {
			stale = append(stale, seq)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
	for _, seq := range stale {
		delete(r.inflight, seq)
	}

	sent, lag := 0, 0
	for _, path := range r.sw.FlowTablePaths() {
		tb := r.sw.FlowTable(path)
		if tb == nil {
			continue
		}
		lag += len(tb.Unsynced(nil))
		var ents []flow.Entry
		kind := SyncUpdate
		if resync {
			ents = tb.Entries()
			kind = SyncResync
		} else {
			ents = tb.Unsynced(nil)
		}
		for off := 0; off < len(ents); off += maxWireFlows {
			end := off + maxWireFlows
			if end > len(ents) {
				end = len(ents)
			}
			chunk := ents[off:end]
			msg := &FlowSync{Session: r.session, Seq: r.nextSeq(), Kind: kind,
				Table: path, Clock: tb.Now(), Entries: make([]FlowRec, len(chunk))}
			keys := make([]flow.Key, len(chunk))
			for i, e := range chunk {
				msg.Entries[i] = FlowRec{Key: e.Key, State: e.State, Expire: e.Expire, Val: e.Val}
				keys[i] = e.Key
			}
			r.inflight[msg.Seq] = sentBatch{table: path, keys: keys, sentAt: r.n.Now()}
			_ = r.n.SendFrom(r.cfg.Name, r.cfg.SyncPort, EncodeFlowSync(msg))
			sent++
			span.Event(r.n.Now(), "send", fmt.Sprintf("%s %s seq=%d entries=%d",
				msg.Kind, path, msg.Seq, len(chunk)))
		}
	}
	if sent == 0 {
		// Nothing to replicate: send the bare probe that keeps the
		// standby's last-heard clock (its staleness signal) fresh.
		probe := &FlowSync{Session: r.session, Seq: r.nextSeq(), Kind: SyncUpdate}
		r.inflight[probe.Seq] = sentBatch{sentAt: r.n.Now()}
		_ = r.n.SendFrom(r.cfg.Name, r.cfg.SyncPort, EncodeFlowSync(probe))
		span.Event(r.n.Now(), "probe", fmt.Sprintf("seq=%d", probe.Seq))
	}
	if g := r.cfg.Metrics.FlowSyncLag(r.cfg.Name); g != nil {
		g.Set(int64(lag))
	}
	if span != nil {
		span.End = r.n.Now()
		span.Event(r.n.Now(), "lag", fmt.Sprintf("unsynced=%d inflight=%d", lag, len(r.inflight)))
		r.cfg.Tracer.Record(span)
	}

	// Keep the timer hot while replication makes progress: data frames
	// going out and acks coming back. Probe-only rounds, and rounds
	// sending into a void (a partitioned or dead standby), count toward
	// quiescing — after IdleRounds of either, the replicator parks.
	// This is the graceful-degradation half of the design: the active
	// keeps serving, the unreplicated entries keep their unsynced mark,
	// and the next dataplane packet re-arms the timer, so a healed
	// partition resyncs as soon as traffic flows.
	progress := r.lastAck > 0 && r.lastAck >= prevRound
	if sent > 0 && (progress || r.rounds == 1) {
		r.idle = 0
	} else {
		r.idle++
	}
	if r.idle < r.cfg.IdleRounds {
		r.schedule()
	}
}

func (r *Replicator) nextSeq() uint64 {
	r.seq++
	return r.seq
}

func (r *Replicator) event(name, detail string) {
	if r.cfg.Bus.Active() {
		r.cfg.Bus.Publish(sim.TraceEvent{Kind: "flowsync", Module: r.cfg.Name, Name: name, Detail: detail})
	}
}

// StandbyAgent is the passive side: a netsim.Processor wrapping the
// warm-standby *microp4.Switch. Sync-port frames are decoded,
// deduplicated by (session, sequence) with the cached ack replayed for
// duplicates, and applied through flow.Table.Install; any other port
// passes through to the dataplane (which serves traffic the moment the
// operator points it here — promotion changes bookkeeping, not the
// dataplane). Corrupted frames are dropped without reply, and no wire
// message can promote: a forged or bit-flipped frame can never turn a
// stale standby into an active.
type StandbyAgent struct {
	n   *netsim.Network
	sw  *microp4.Switch
	cfg ReplicaConfig

	sessions  map[uint64]*session
	lastHeard uint64 // network tick of the last valid sync frame
	lastClock uint64 // active's flow clock from that frame
	applied   uint64 // entries installed
	malformed uint64 // frames dropped as corrupt
	promoted  bool
}

// NewStandbyAgent wraps the standby switch.
func NewStandbyAgent(n *netsim.Network, sw *microp4.Switch, cfg ReplicaConfig) *StandbyAgent {
	cfg = cfg.withDefaults()
	return &StandbyAgent{n: n, sw: sw, cfg: cfg, sessions: make(map[uint64]*session)}
}

// Switch returns the wrapped standby switch.
func (s *StandbyAgent) Switch() *microp4.Switch { return s.sw }

// Promoted reports whether Promote has run.
func (s *StandbyAgent) Promoted() bool { return s.promoted }

// LastHeard returns the network tick of the last valid sync frame
// (0 = never heard from the active).
func (s *StandbyAgent) LastHeard() uint64 { return s.lastHeard }

// SilentFor returns how many ticks have passed since the active was
// last heard — the staleness signal a failover decision consults.
func (s *StandbyAgent) SilentFor() uint64 { return s.n.Now() - s.lastHeard }

// Applied returns (entries installed, frames dropped as corrupt).
func (s *StandbyAgent) Applied() (applied, malformed uint64) { return s.applied, s.malformed }

// Promote flips this standby into the active role: every replicated
// entry is marked unsynced, so a future standby paired with this node
// starts from a full resync. The dataplane needs no switch-over — it
// has been live (tables bootstrapped, flows replicated) the whole time.
// Promote is a local operator decision; nothing on the wire calls it.
func (s *StandbyAgent) Promote() {
	if s.promoted {
		return
	}
	s.promoted = true
	adopted := 0
	for _, path := range s.sw.FlowTablePaths() {
		if tb := s.sw.FlowTable(path); tb != nil {
			adopted += tb.Len()
			tb.MarkAllUnsynced()
		}
	}
	silent := s.SilentFor()
	s.event("promote", fmt.Sprintf("adopted %d flows, active silent %d ticks", adopted, silent))
	if s.cfg.Tracer != nil {
		id := s.cfg.Tracer.NextID()
		sp := &trace.Span{TraceID: id, SpanID: id, Kind: "flowsync", Name: "promote",
			Start: s.n.Now(), End: s.n.Now()}
		sp.Event(s.n.Now(), "promote", fmt.Sprintf("adopted=%d silent=%d", adopted, silent))
		s.cfg.Tracer.Record(sp)
	}
}

// Process implements netsim.Processor: replication on the sync port,
// dataplane traffic everywhere else.
func (s *StandbyAgent) Process(pkt []byte, inPort uint64) ([]microp4.Output, error) {
	if inPort != s.cfg.SyncPort {
		return s.sw.Process(pkt, inPort)
	}
	msg, err := DecodeFlowSync(pkt)
	if err != nil {
		// Corruption (bit flips, truncation) or garbage: drop without
		// reply — the entries stay unsynced on the active and ride the
		// next round. Standby state, including the promoted flag and
		// the last-heard clock, is untouched.
		s.malformed++
		s.cfg.Metrics.Reject(sim.RejectMalformed)
		s.event("reject", "flow-sync: "+err.Error())
		return nil, nil
	}
	sess := s.session(msg.Session)
	if cached, ok := sess.replies[msg.Seq]; ok {
		// Link-level duplicate: replay the cached ack, never re-count.
		s.event("dup", fmt.Sprintf("session %#x seq %d", msg.Session, msg.Seq))
		return []microp4.Output{{Port: s.cfg.SyncPort, Data: append([]byte(nil), cached...)}}, nil
	}
	applied := 0
	if msg.Table != "" {
		tb := s.sw.FlowTable(msg.Table)
		if tb == nil {
			// A valid frame for a table this dataplane does not have:
			// program mismatch. Acking would make the active mark the
			// entries synced when nothing holds them, so drop instead.
			s.event("reject", "flow-sync: unknown table "+msg.Table)
			return nil, nil
		}
		for _, rec := range msg.Entries {
			tb.Install(flow.Entry{Key: rec.Key, State: rec.State, Synced: true, Expire: rec.Expire, Val: rec.Val})
			applied++
		}
		s.applied += uint64(applied)
	}
	s.lastHeard = s.n.Now()
	s.lastClock = msg.Clock
	ack := EncodeFlowAck(&FlowAck{Session: msg.Session, Seq: msg.Seq, Applied: uint64(applied)})
	sess.remember(msg.Seq, ack, s.cfg.Window)
	s.event("apply", fmt.Sprintf("%s %s seq=%d entries=%d", msg.Kind, msg.Table, msg.Seq, applied))
	return []microp4.Output{{Port: s.cfg.SyncPort, Data: ack}}, nil
}

func (s *StandbyAgent) session(id uint64) *session {
	sess := s.sessions[id]
	if sess == nil {
		sess = &session{replies: make(map[uint64][]byte)}
		s.sessions[id] = sess
	}
	return sess
}

func (s *StandbyAgent) event(name, detail string) {
	if s.cfg.Bus.Active() {
		s.cfg.Bus.Publish(sim.TraceEvent{Kind: "flowsync", Module: s.cfg.Name, Name: name, Detail: detail})
	}
}
