package ctrlplane

import (
	"math/rand"
	"testing"
)

// TestBackoffDeterminism: the same seed yields the same jittered
// schedule, a different seed a different one, and every delay is inside
// the equal-jitter envelope [d/2, d] with d capped.
func TestBackoffDeterminism(t *testing.T) {
	cfg := BackoffConfig{Base: 16, Cap: 256, Mult: 2}.withDefaults()
	sched := func(seed int64) []uint64 {
		rng := rand.New(rand.NewSource(seed))
		var ds []uint64
		for attempt := 1; attempt <= 8; attempt++ {
			ds = append(ds, cfg.delay(attempt, rng))
		}
		return ds
	}
	a, b, c := sched(1), sched(1), sched(2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i+1, a, b)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced the identical schedule")
	}
	want := uint64(16)
	for i, d := range a {
		top := want
		if top > 256 {
			top = 256
		}
		if d < top/2 || d > top {
			t.Errorf("attempt %d delay %d outside [%d, %d]", i+1, d, top/2, top)
		}
		want *= 2
	}
}

// TestBreakerLifecycle walks closed → open → half-open → closed and the
// half-open → open failure path on a virtual clock.
func TestBreakerLifecycle(t *testing.T) {
	br := newBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: 100}, nil)
	now := uint64(0)
	if br.state != BreakerClosed {
		t.Fatalf("initial state %v", br.state)
	}
	for i := 0; i < 3; i++ {
		if !br.allow(now) {
			t.Fatalf("closed breaker refused request %d", i)
		}
		br.failure(now)
	}
	if br.state != BreakerOpen {
		t.Fatalf("state after %d failures = %v, want open", 3, br.state)
	}
	if br.allow(now + 50) {
		t.Error("open breaker admitted a request before its deadline")
	}
	// Past the deadline: exactly one probe goes through (half-open).
	if !br.allow(now + 101) {
		t.Fatal("breaker did not half-open at its deadline")
	}
	if br.state != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", br.state)
	}
	if br.allow(now + 102) {
		t.Error("half-open breaker admitted a second concurrent probe")
	}
	// Probe failure slams it shut again with a fresh deadline.
	br.failure(now + 110)
	if br.state != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", br.state)
	}
	if !br.allow(now + 211) {
		t.Fatal("breaker did not re-open a probe window")
	}
	br.success()
	if br.state != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", br.state)
	}
	if !br.allow(now + 212) {
		t.Error("closed breaker refused a request")
	}
}
