package ctrlplane

import (
	"fmt"

	"microp4/internal/sim"
	"microp4/internal/trace"
)

// TxnOp is one operation of a transaction plan: an op (OpAddEntry,
// OpSetDefault, OpClearTable, or OpSetMulticast) destined for one
// peer. Session, Seq, and Txn are assigned by the client.
type TxnOp struct {
	Peer string
	Op   CtrlOp
}

// TxnResult reports a transaction's outcome. Committed means every
// participant durably applied the batch — except peers listed in
// PeerErrs with an ErrUnreachable during the commit phase, which are
// in doubt (they prepared, and will commit if the channel heals; the
// classic 2PC limitation, surfaced honestly instead of hidden).
// A non-committed result is a rollback: every participant the abort
// reached retains none of the batch; a participant unreachable even by
// the abort is listed in PeerErrs and may hold prepared state.
type TxnResult struct {
	Txn       uint64
	Committed bool
	// PeerErrs records per-peer failures: a staged op's rejection, a
	// failed prepare, or exhausted retries, keyed by peer name.
	PeerErrs map[string]error
}

// Err summarizes the result as an error (nil on a clean commit).
func (r TxnResult) Err() error {
	if r.Committed && len(r.PeerErrs) == 0 {
		return nil
	}
	if r.Committed {
		return fmt.Errorf("ctrlplane: txn %d committed with %d peers in doubt", r.Txn, len(r.PeerErrs))
	}
	return fmt.Errorf("ctrlplane: txn %d aborted (%d peer errors)", r.Txn, len(r.PeerErrs))
}

// Transaction runs a multi-switch atomic batch over two-phase commit:
// every op is staged on its peer (validated on receipt, applied later),
// then each participant prepares (checkpoint + apply), and only when
// every participant has prepared does the coordinator commit; any
// rejection or unreachable peer before that point aborts everywhere,
// restoring the checkpoints. done fires during the network run.
//
// Each phase's messages ride the same lossy links as everything else —
// staging, prepare, commit, and abort are all individually retried,
// idempotent (agent-side dedup), and breaker-gated.
func (c *Client) Transaction(ops []TxnOp, done func(TxnResult)) error {
	if done == nil {
		done = func(TxnResult) {}
	}
	c.nextTxn++
	t := &txnCoord{
		c:    c,
		id:   c.nextTxn,
		ops:  ops,
		errs: make(map[string]error),
		done: done,
	}
	if c.tracer != nil {
		tid := c.tracer.NextID()
		t.root = &trace.Span{
			TraceID: tid, SpanID: tid, Kind: "txn",
			Name:  fmt.Sprintf("%s txn %d", c.name, t.id),
			Start: c.n.Now(), End: c.n.Now(),
		}
		c.tracer.Record(t.root)
	}
	// Participants in first-appearance order: deterministic iteration
	// for every later phase.
	seen := make(map[string]bool)
	for _, op := range ops {
		if c.peers[op.Peer] == nil {
			return fmt.Errorf("ctrlplane: txn references unknown peer %q", op.Peer)
		}
		if !seen[op.Peer] {
			seen[op.Peer] = true
			t.peers = append(t.peers, op.Peer)
		}
	}
	if len(ops) == 0 {
		t.finish("committed", "empty transaction")
		done(TxnResult{Txn: t.id, Committed: true, PeerErrs: t.errs})
		return nil
	}
	c.event("txn-stage", fmt.Sprintf("txn %d: %d ops across %d peers", t.id, len(ops), len(t.peers)))
	t.stage()
	return nil
}

// txnCoord is the coordinator state machine for one transaction.
type txnCoord struct {
	c       *Client
	id      uint64
	ops     []TxnOp
	peers   []string // participants, first-appearance order
	pending int
	doomed  bool
	errs    map[string]error
	done    func(TxnResult)
	root    *trace.Span // the transaction's trace root (nil when untraced)
}

// startPhase opens a 2PC phase span under the transaction root and
// points the client's current-span at it, so every Do the caller issues
// next reports its send/retry/timeout/breaker lifecycle to this phase.
// The caller must clear c.curSpan (endPhase) once its sends are issued;
// late events still reach the span through the calls that captured it.
func (t *txnCoord) startPhase(name string) {
	if t.root == nil {
		return
	}
	now := t.c.n.Now()
	sp := &trace.Span{
		TraceID: t.root.TraceID, SpanID: t.c.tracer.NextID(), ParentID: t.root.SpanID,
		Kind: "txn", Name: name, Start: now, End: now,
	}
	t.c.tracer.Record(sp)
	t.c.curSpan = sp
}

// endPhase stops attributing new Do calls to the current phase span.
func (t *txnCoord) endPhase() {
	if t.root != nil {
		t.c.curSpan = nil
	}
}

// finish closes the root span with the transaction's outcome.
func (t *txnCoord) finish(outcome, detail string) {
	if t.root == nil {
		return
	}
	now := t.c.n.Now()
	t.root.Event(now, outcome, detail)
	t.root.End = now
	if outcome == "aborted" {
		t.root.Err = detail
	}
}

// fail records a peer failure (first error per peer wins) and dooms
// the transaction.
func (t *txnCoord) fail(peer string, err error) {
	t.doomed = true
	if _, dup := t.errs[peer]; !dup {
		t.errs[peer] = err
	}
}

// stage sends every op with the transaction tag; agents validate and
// buffer them. All ops are pipelined at once — ordering is recovered
// agent-side by client sequence number at prepare.
func (t *txnCoord) stage() {
	t.startPhase("stage")
	defer t.endPhase()
	t.pending = len(t.ops)
	for _, op := range t.ops {
		peerName := op.Peer
		wire := op.Op
		wire.Txn = t.id
		_ = t.c.Do(peerName, wire, func(rep *CtrlReply, err error) {
			if err != nil {
				t.fail(peerName, err)
			} else if rep.Status == StatusRejected {
				t.fail(peerName, replyError(rep))
			}
			t.pending--
			if t.pending == 0 {
				if t.doomed {
					t.abort()
				} else {
					t.prepare()
				}
			}
		})
	}
}

// prepare asks every participant to checkpoint and apply its batch.
func (t *txnCoord) prepare() {
	t.c.event("txn-prepare", fmt.Sprintf("txn %d", t.id))
	t.startPhase("prepare")
	defer t.endPhase()
	t.pending = len(t.peers)
	for _, peerName := range t.peers {
		peerName := peerName
		_ = t.c.Do(peerName, CtrlOp{Kind: OpPrepare, Txn: t.id}, func(rep *CtrlReply, err error) {
			if err != nil {
				t.fail(peerName, err)
			} else if rep.Status == StatusRejected {
				t.fail(peerName, replyError(rep))
			}
			t.pending--
			if t.pending == 0 {
				if t.doomed {
					t.abort()
				} else {
					t.commit()
				}
			}
		})
	}
}

// commit finalizes on every participant. A peer unreachable here is in
// doubt: it has prepared and its agent will hold the applied state; the
// result says so rather than pretending otherwise.
func (t *txnCoord) commit() {
	t.startPhase("commit")
	defer t.endPhase()
	t.pending = len(t.peers)
	for _, peerName := range t.peers {
		peerName := peerName
		_ = t.c.Do(peerName, CtrlOp{Kind: OpCommit, Txn: t.id}, func(rep *CtrlReply, err error) {
			if err != nil {
				t.fail(peerName, err)
			} else if rep.Status == StatusRejected {
				t.fail(peerName, replyError(rep))
			}
			t.pending--
			if t.pending == 0 {
				t.c.cfg.Metrics.TxnCommits.Inc()
				t.c.event("txn-commit", fmt.Sprintf("txn %d (%d peer errors)", t.id, len(t.errs)))
				t.finish("committed", fmt.Sprintf("%d peer errors", len(t.errs)))
				t.done(TxnResult{Txn: t.id, Committed: true, PeerErrs: t.errs})
			}
		})
	}
}

// abort rolls back every participant (restore checkpoint, discard
// staged ops). Abort is agent-side idempotent and always succeeds when
// it arrives; a peer unreachable even by the abort is recorded in
// PeerErrs — it usually holds only staged-but-unapplied ops, but may
// hold prepared state when its prepare reply (rather than the prepare
// itself) was what kept getting lost.
func (t *txnCoord) abort() {
	t.startPhase("abort")
	defer t.endPhase()
	t.pending = len(t.peers)
	for _, peerName := range t.peers {
		peerName := peerName
		_ = t.c.Do(peerName, CtrlOp{Kind: OpAbort, Txn: t.id}, func(rep *CtrlReply, err error) {
			if err != nil {
				t.fail(peerName, err)
			}
			t.pending--
			if t.pending == 0 {
				t.c.cfg.Metrics.TxnAborts.Inc()
				t.c.event("txn-abort", fmt.Sprintf("txn %d (%d peer errors)", t.id, len(t.errs)))
				t.finish("aborted", fmt.Sprintf("%d peer errors", len(t.errs)))
				t.done(TxnResult{Txn: t.id, Committed: false, PeerErrs: t.errs})
			}
		})
	}
}

// replyError converts a rejection reply into a *sim.ControlError.
func replyError(rep *CtrlReply) error {
	return &sim.ControlError{Op: "txn", Kind: rep.Class, Reason: rep.Reason}
}
