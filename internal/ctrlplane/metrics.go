package ctrlplane

import (
	"microp4/internal/obs"
)

// Metrics bundles the control-plane counters, registered in one
// obs.Registry and shared by a Client and its Agents (pass the same
// registry to both). The nil *Metrics is valid and counts nothing —
// obs counters are nil-safe — so instrumentation call sites stay
// unconditional.
type Metrics struct {
	reg *obs.Registry

	Retries    *obs.Counter // up4_ctrl_retries_total: retransmissions sent
	Timeouts   *obs.Counter // up4_ctrl_timeouts_total: awaited replies that never came
	TxnCommits *obs.Counter // up4_ctrl_txn_commits_total
	TxnAborts  *obs.Counter // up4_ctrl_txn_aborts_total

	rejects map[string]*obs.Counter // up4_ctrl_rejects_total{class}
	breaker map[string]*obs.Gauge   // up4_ctrl_breaker_state{peer}
	flowLag map[string]*obs.Gauge   // up4_flow_sync_lag{node}
}

// NewMetrics registers the control-plane series in reg. Returns nil
// when reg is nil.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		reg:        reg,
		Retries:    reg.Counter("up4_ctrl_retries_total", "Control-plane retransmissions sent"),
		Timeouts:   reg.Counter("up4_ctrl_timeouts_total", "Control-plane requests that timed out awaiting a reply"),
		TxnCommits: reg.Counter("up4_ctrl_txn_commits_total", "Control-plane transactions committed"),
		TxnAborts:  reg.Counter("up4_ctrl_txn_aborts_total", "Control-plane transactions aborted"),
		rejects:    make(map[string]*obs.Counter),
		breaker:    make(map[string]*obs.Gauge),
		flowLag:    make(map[string]*obs.Gauge),
	}
}

// Reject counts one rejected op by class (a sim.Reject* string).
func (m *Metrics) Reject(class string) {
	if m == nil {
		return
	}
	c := m.rejects[class]
	if c == nil {
		c = m.reg.Counter("up4_ctrl_rejects_total",
			"Control-plane ops rejected by schema or protocol validation", obs.L("class", class))
		m.rejects[class] = c
	}
	c.Inc()
}

// FlowSyncLag returns the per-node replication lag gauge: flow entries
// awaiting standby acknowledgment, set each sync round. Nil when
// metrics are off.
func (m *Metrics) FlowSyncLag(node string) *obs.Gauge {
	if m == nil {
		return nil
	}
	g := m.flowLag[node]
	if g == nil {
		g = m.reg.Gauge("up4_flow_sync_lag",
			"Flow entries awaiting standby acknowledgment", obs.L("node", node))
		m.flowLag[node] = g
	}
	return g
}

// BreakerGauge returns the per-peer circuit breaker state gauge
// (0 closed, 1 open, 2 half-open). Nil when metrics are off.
func (m *Metrics) BreakerGauge(peer string) *obs.Gauge {
	if m == nil {
		return nil
	}
	g := m.breaker[peer]
	if g == nil {
		g = m.reg.Gauge("up4_ctrl_breaker_state",
			"Circuit breaker state per control channel (0 closed, 1 open, 2 half-open)", obs.L("peer", peer))
		m.breaker[peer] = g
	}
	return g
}
