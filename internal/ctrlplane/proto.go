// Package ctrlplane is the resilient distributed control plane: a
// controller Client and per-switch Agent speaking a sequence-numbered,
// idempotent protocol whose messages travel as byte-encoded packets
// over netsim links — subjecting control traffic to the same drop,
// duplication, reorder, and bit-flip faults as the data traffic it
// programs around.
//
// The design splits failure handling across the layers that can each
// handle it best:
//
//   - the codec detects corruption (checksum) and truncation (strict
//     length accounting), turning bit-flips into losses;
//   - the agent makes at-least-once delivery safe by deduplicating on
//     (session, sequence) and replaying the cached reply, and makes
//     invalid state changes impossible by validating every operation
//     against the switch's control schema before touching it;
//   - the client turns losses into delays with timeouts and capped
//     exponential backoff (seeded jitter on the network's virtual
//     clock, so the retry schedule is reproducible from the seed), and
//     turns a partitioned peer into graceful degradation with a
//     per-channel circuit breaker;
//   - transactions make multi-switch updates atomic with two-phase
//     commit, rolling back via switch checkpoints on abort.
package ctrlplane

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"microp4"
	"microp4/internal/sim"
)

// OpKind names one control operation.
type OpKind uint8

const (
	OpAddEntry OpKind = iota + 1
	OpSetDefault
	OpClearTable
	OpSetMulticast
	// OpPrepare, OpCommit, OpAbort drive two-phase commit for the
	// transaction named by CtrlOp.Txn.
	OpPrepare
	OpCommit
	OpAbort
	opKindEnd // one past the last valid kind
)

func (k OpKind) String() string {
	switch k {
	case OpAddEntry:
		return "add-entry"
	case OpSetDefault:
		return "set-default"
	case OpClearTable:
		return "clear-table"
	case OpSetMulticast:
		return "set-multicast"
	case OpPrepare:
		return "prepare"
	case OpCommit:
		return "commit"
	case OpAbort:
		return "abort"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// KeyKind names one match-key encoding.
type KeyKind uint8

const (
	KeyExact KeyKind = iota
	KeyTernary
	KeyLPM
	KeyAny
	keyKindEnd
)

// CtrlKey is one wire-encoded match key.
type CtrlKey struct {
	Kind      KeyKind
	Value     uint64
	Mask      uint64 // ternary mask
	PrefixLen uint32 // lpm prefix length
}

// Exact, Ternary, LPM, and Any build wire keys mirroring the public
// microp4 key constructors.
func Exact(v uint64) CtrlKey          { return CtrlKey{Kind: KeyExact, Value: v} }
func Ternary(v, mask uint64) CtrlKey  { return CtrlKey{Kind: KeyTernary, Value: v, Mask: mask} }
func LPM(v uint64, plen int) CtrlKey  { return CtrlKey{Kind: KeyLPM, Value: v, PrefixLen: uint32(plen)} }
func Any() CtrlKey                    { return CtrlKey{Kind: KeyAny} }

// runtimeKey converts a wire key to a public switch key.
func (k CtrlKey) runtimeKey() microp4.Key {
	switch k.Kind {
	case KeyTernary:
		return microp4.Ternary(k.Value, k.Mask)
	case KeyLPM:
		return microp4.LPM(k.Value, int(k.PrefixLen))
	case KeyAny:
		return microp4.Any()
	}
	return microp4.Exact(k.Value)
}

// CtrlOp is one control request. Session identifies the
// client↔agent channel; Seq is the channel-monotonic sequence number
// the agent deduplicates on (a retransmission reuses the Seq, so
// at-least-once delivery applies each op exactly once). Txn, when
// nonzero, stages the op into that transaction instead of applying it
// immediately; OpPrepare/OpCommit/OpAbort then drive the transaction.
type CtrlOp struct {
	Session uint64
	Seq     uint64
	Txn     uint64
	Kind    OpKind
	Table   string
	Action  string
	Keys    []CtrlKey
	Args    []uint64
	Group   uint64
	Ports   []uint64
}

// Status is a reply's disposition.
type Status uint8

const (
	// StatusOK: the op was applied (or staged, prepared, committed,
	// aborted — whatever its kind asks for).
	StatusOK Status = 1
	// StatusRejected: schema validation or a transaction rule refused
	// the op. Rejections are deterministic — retrying is pointless —
	// and carry the reject class and reason.
	StatusRejected Status = 2
)

// CtrlReply answers one CtrlOp, echoing its Session and Seq.
type CtrlReply struct {
	Session uint64
	Seq     uint64
	Status  Status
	Class   string // reject class (sim.Reject*), when rejected
	Reason  string
}

// Rejected builds the reply for a validation failure.
func rejected(op *CtrlOp, ce *sim.ControlError) *CtrlReply {
	return &CtrlReply{Session: op.Session, Seq: op.Seq, Status: StatusRejected,
		Class: ce.Kind, Reason: ce.Reason}
}

// Wire format. Little-endian throughout; strings are u16 length +
// bytes; slices are u16 count + elements. A 4-byte FNV-1a checksum
// trails every message, so link-level bit flips and truncations decode
// as errors (and become retransmissions) instead of as different valid
// messages. Decoding is strict: caps on every count, no trailing
// garbage, never a panic — DecodeCtrlOp and DecodeCtrlReply are fuzzed
// on arbitrary bytes.
const (
	wireMagic   = 0xC5
	wireVersion = 1

	wireMsgOp    = 1
	wireMsgReply = 2

	maxWireString = 1024
	maxWireKeys   = 64
	maxWireArgs   = 64
	maxWirePorts  = 256
)

type wireWriter struct{ buf []byte }

func (w *wireWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *wireWriter) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *wireWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *wireWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *wireWriter) str(s string) {
	if len(s) > maxWireString {
		s = s[:maxWireString]
	}
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *wireWriter) finish() []byte {
	h := fnv.New32a()
	_, _ = h.Write(w.buf)
	return binary.LittleEndian.AppendUint32(w.buf, h.Sum32())
}

// EncodeCtrlOp serializes an op for transmission.
func EncodeCtrlOp(op *CtrlOp) []byte {
	w := &wireWriter{buf: make([]byte, 0, 64)}
	w.u8(wireMagic)
	w.u8(wireVersion)
	w.u8(wireMsgOp)
	w.u8(uint8(op.Kind))
	w.u64(op.Session)
	w.u64(op.Seq)
	w.u64(op.Txn)
	w.str(op.Table)
	w.str(op.Action)
	nk := len(op.Keys)
	if nk > maxWireKeys {
		nk = maxWireKeys
	}
	w.u16(uint16(nk))
	for _, k := range op.Keys[:nk] {
		w.u8(uint8(k.Kind))
		w.u64(k.Value)
		w.u64(k.Mask)
		w.u32(k.PrefixLen)
	}
	na := len(op.Args)
	if na > maxWireArgs {
		na = maxWireArgs
	}
	w.u16(uint16(na))
	for _, a := range op.Args[:na] {
		w.u64(a)
	}
	w.u64(op.Group)
	np := len(op.Ports)
	if np > maxWirePorts {
		np = maxWirePorts
	}
	w.u16(uint16(np))
	for _, p := range op.Ports[:np] {
		w.u64(p)
	}
	return w.finish()
}

// EncodeCtrlReply serializes a reply for transmission.
func EncodeCtrlReply(r *CtrlReply) []byte {
	w := &wireWriter{buf: make([]byte, 0, 48)}
	w.u8(wireMagic)
	w.u8(wireVersion)
	w.u8(wireMsgReply)
	w.u8(uint8(r.Status))
	w.u64(r.Session)
	w.u64(r.Seq)
	w.str(r.Class)
	w.str(r.Reason)
	return w.finish()
}

// wireReader is a bounds-checked cursor; the first failure latches.
type wireReader struct {
	buf []byte
	pos int
	err error
}

func (r *wireReader) fail(why string) {
	if r.err == nil {
		r.err = fmt.Errorf("ctrlplane: malformed message: %s", why)
	}
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.fail("truncated")
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *wireReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wireReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *wireReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *wireReader) str() string {
	n := int(r.u16())
	if n > maxWireString {
		r.fail("string too long")
		return ""
	}
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// checkHeader consumes and verifies magic/version and the trailing
// checksum, returning the message type byte.
func (r *wireReader) checkHeader() uint8 {
	if len(r.buf) < 8 { // magic+version+type+status/kind + checksum
		r.fail("too short")
		return 0
	}
	body, sum := r.buf[:len(r.buf)-4], binary.LittleEndian.Uint32(r.buf[len(r.buf)-4:])
	h := fnv.New32a()
	_, _ = h.Write(body)
	if h.Sum32() != sum {
		r.fail("bad checksum")
		return 0
	}
	r.buf = body // everything after is parsed against the checksummed body
	if r.u8() != wireMagic {
		r.fail("bad magic")
		return 0
	}
	if r.u8() != wireVersion {
		r.fail("unsupported version")
		return 0
	}
	return r.u8()
}

// finish rejects messages with trailing bytes — a truncation-resistant
// codec must account for every byte.
func (r *wireReader) finish() error {
	if r.err == nil && r.pos != len(r.buf) {
		r.fail("trailing bytes")
	}
	return r.err
}

// DecodeCtrlOp parses an op message. Arbitrary input never panics;
// corrupted, truncated, or oversized messages return an error.
func DecodeCtrlOp(data []byte) (*CtrlOp, error) {
	r := &wireReader{buf: data}
	if t := r.checkHeader(); r.err == nil && t != wireMsgOp {
		r.fail("not an op message")
	}
	op := &CtrlOp{}
	op.Kind = OpKind(r.u8())
	if r.err == nil && (op.Kind == 0 || op.Kind >= opKindEnd) {
		r.fail("unknown op kind")
	}
	op.Session = r.u64()
	op.Seq = r.u64()
	op.Txn = r.u64()
	op.Table = r.str()
	op.Action = r.str()
	nk := int(r.u16())
	if nk > maxWireKeys {
		r.fail("too many keys")
		nk = 0
	}
	for i := 0; i < nk && r.err == nil; i++ {
		k := CtrlKey{Kind: KeyKind(r.u8())}
		if r.err == nil && k.Kind >= keyKindEnd {
			r.fail("unknown key kind")
		}
		k.Value = r.u64()
		k.Mask = r.u64()
		k.PrefixLen = r.u32()
		op.Keys = append(op.Keys, k)
	}
	na := int(r.u16())
	if na > maxWireArgs {
		r.fail("too many args")
		na = 0
	}
	for i := 0; i < na && r.err == nil; i++ {
		op.Args = append(op.Args, r.u64())
	}
	op.Group = r.u64()
	np := int(r.u16())
	if np > maxWirePorts {
		r.fail("too many ports")
		np = 0
	}
	for i := 0; i < np && r.err == nil; i++ {
		op.Ports = append(op.Ports, r.u64())
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return op, nil
}

// DecodeCtrlReply parses a reply message (same guarantees as
// DecodeCtrlOp).
func DecodeCtrlReply(data []byte) (*CtrlReply, error) {
	r := &wireReader{buf: data}
	if t := r.checkHeader(); r.err == nil && t != wireMsgReply {
		r.fail("not a reply message")
	}
	rep := &CtrlReply{}
	rep.Status = Status(r.u8())
	if r.err == nil && rep.Status != StatusOK && rep.Status != StatusRejected {
		r.fail("unknown status")
	}
	rep.Session = r.u64()
	rep.Seq = r.u64()
	rep.Class = r.str()
	rep.Reason = r.str()
	if err := r.finish(); err != nil {
		return nil, err
	}
	return rep, nil
}
