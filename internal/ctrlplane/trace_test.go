package ctrlplane_test

import (
	"encoding/json"
	"testing"

	"microp4/internal/netsim"
	"microp4/internal/trace"
)

// collectTxnSpans splits a recorder's transaction spans into the root
// (TraceID == SpanID) and the 2PC phase spans keyed by name.
func collectTxnSpans(t *testing.T, rec *trace.Recorder) (*trace.Span, map[string]*trace.Span) {
	t.Helper()
	var root *trace.Span
	phases := map[string]*trace.Span{}
	for _, sp := range rec.Spans() {
		if sp.Kind != "txn" {
			continue
		}
		if sp.SpanID == sp.TraceID {
			if root != nil {
				t.Fatal("more than one txn root span recorded")
			}
			root = sp
		} else {
			if phases[sp.Name] != nil {
				t.Fatalf("duplicate %q phase span", sp.Name)
			}
			phases[sp.Name] = sp
		}
	}
	return root, phases
}

// TestTransactionTraceSpans commits the standard rollout over lossy
// links with tracing on: the recorder must hold one root span plus
// stage/prepare/commit phase children carrying every per-peer send and
// the retries the losses forced.
func TestTransactionTraceSpans(t *testing.T) {
	rec := trace.NewRecorder(1024)
	s := newScenario(t, 0x5EED, lossy)
	s.client.SetTracing(rec)
	ops := updatePlan(s.client.Peers())
	s.transact(t, ops)
	if !s.result.Committed {
		t.Fatalf("transaction aborted: %+v", *s.result)
	}

	root, phases := collectTxnSpans(t, rec)
	if root == nil {
		t.Fatal("no txn root span recorded")
	}
	committed := false
	for _, e := range root.Events {
		if e.Kind == "committed" {
			committed = true
		}
	}
	if !committed {
		t.Errorf("root span lacks a committed event: %+v", root.Events)
	}
	if root.End < root.Start {
		t.Errorf("root span ends (t=%d) before it starts (t=%d)", root.End, root.Start)
	}

	for _, name := range []string{"stage", "prepare", "commit"} {
		sp := phases[name]
		if sp == nil {
			t.Fatalf("missing %q phase span", name)
		}
		if sp.TraceID != root.TraceID || sp.ParentID != root.SpanID {
			t.Errorf("%s span not parented under the root: trace %d parent %d, want %d/%d",
				name, sp.TraceID, sp.ParentID, root.TraceID, root.SpanID)
		}
	}
	if phases["abort"] != nil {
		t.Error("committed transaction recorded an abort phase span")
	}

	sends, retries := 0, 0
	for _, sp := range phases {
		for _, e := range sp.Events {
			switch e.Kind {
			case "send":
				sends++
			case "retry":
				retries++
			}
		}
	}
	// One first-attempt send per staged op plus one per participant in
	// each of prepare and commit.
	wantSends := len(ops) + 2*len(s.client.Peers())
	if sends != wantSends {
		t.Errorf("phase spans carry %d send events, want %d", sends, wantSends)
	}
	if retries == 0 {
		t.Error("no retry events on any phase span — lossy links must have forced retransmissions")
	}
}

// TestUnreachablePeerTraceAborts points the plan at a dead-linked peer:
// the root span must end aborted and the abort phase must be present.
func TestUnreachablePeerTraceAborts(t *testing.T) {
	rec := trace.NewRecorder(1024)
	s := newScenario(t, 0x5EED, netsim.FaultModel{})
	s.n.SetLinkDown("ctrl", 2, true)
	s.client.SetTracing(rec)
	s.transact(t, updatePlan(s.client.Peers()))
	if s.result.Committed {
		t.Fatalf("transaction committed through a dead link: %+v", *s.result)
	}

	root, phases := collectTxnSpans(t, rec)
	if root == nil {
		t.Fatal("no txn root span recorded")
	}
	if root.Err == "" {
		t.Error("aborted transaction's root span has no Err")
	}
	if phases["abort"] == nil {
		t.Error("aborted transaction recorded no abort phase span")
	}
	timeouts := 0
	for _, sp := range phases {
		for _, e := range sp.Events {
			if e.Kind == "timeout" {
				timeouts++
			}
		}
	}
	if timeouts == 0 {
		t.Error("no timeout events on any phase span despite an unreachable peer")
	}
}

// TestTransactionTraceDeterministicPerSeed reruns the identical lossy
// scenario: the canonical span JSON must be byte-identical.
func TestTransactionTraceDeterministicPerSeed(t *testing.T) {
	run := func() []byte {
		rec := trace.NewRecorder(1024)
		s := newScenario(t, 0x5EED, lossy)
		s.client.SetTracing(rec)
		s.transact(t, updatePlan(s.client.Peers()))
		var canon []trace.Span
		for _, sp := range rec.Spans() {
			canon = append(canon, sp.Canonical())
		}
		b, err := json.Marshal(canon)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Errorf("same seed, different span stream:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}
