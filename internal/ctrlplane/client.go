package ctrlplane

import (
	"errors"
	"fmt"
	"math/rand"

	"microp4"
	"microp4/internal/netsim"
	"microp4/internal/sim"
	"microp4/internal/trace"
)

// ErrUnreachable wraps a give-up: every attempt at a request timed out
// (match with errors.Is).
var ErrUnreachable = errors.New("ctrlplane: peer unreachable")

// Config tunes the controller client. Zero fields take the defaults.
type Config struct {
	// Seed drives the retry-jitter stream and session-id derivation.
	// The client shares the network's virtual clock, so identical seed
	// (and network) means an identical retry schedule, tick for tick.
	Seed uint64
	// Timeout is how long, in virtual ticks, to await a reply before
	// retrying (default 64).
	Timeout uint64
	// MaxAttempts bounds the sends per request, first try included
	// (default 8); exhausted attempts surface ErrUnreachable.
	MaxAttempts int
	Backoff     BackoffConfig
	Breaker     BreakerConfig
	// Metrics counts retries, timeouts, and transaction outcomes
	// (optional; share one registry with the agents).
	Metrics *Metrics
}

func (c Config) withDefaults() Config {
	if c.Timeout == 0 {
		c.Timeout = 64
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	c.Backoff = c.Backoff.withDefaults()
	c.Breaker = c.Breaker.withDefaults()
	return c
}

// Client is the controller side of the control protocol: a
// netsim.Processor node whose requests ride the simulated network's
// lossy links. Every request is retried on timeout with capped
// exponential backoff (seeded jitter, virtual clock — deterministic
// per seed), deduplicated at the agent, and gated by a per-channel
// circuit breaker. Do issues one op; Transaction runs a multi-switch
// atomic batch over two-phase commit.
//
// The client is single-threaded with the network's run loop: create
// it, wire its ports, enqueue work with Do/Transaction, then drive
// everything — sends, replies, timeouts, retries — by running the
// network. Callbacks fire inside Run.
type Client struct {
	n       *netsim.Network
	name    string
	cfg     Config
	rng     *rand.Rand
	peers   map[string]*peer
	byPort  map[uint64]*peer
	order   []string // peer names in AddPeer order (deterministic iteration)
	nextTxn uint64

	tracer  *trace.Recorder
	curSpan *trace.Span // the txn phase span issuing the current sends
}

// SetTracing attaches (or, with nil, detaches) a distributed-tracing
// flight recorder: every transaction records a root "txn" span plus one
// child span per 2PC phase (stage, prepare, commit, abort), with the
// per-peer sends, retries, timeouts, backoffs, and breaker holds each
// phase incurred attached as events on the phase that issued them.
// Attach the same recorder the network and switches use so control-
// plane spans land in the same flight-recorder ring as packet spans.
func (c *Client) SetTracing(rec *trace.Recorder) { c.tracer = rec }

// peer is one control channel to one switch agent.
type peer struct {
	name     string
	port     uint64 // the client's local port wired to this peer
	session  uint64
	nextSeq  uint64
	inflight map[uint64]*call
	br       *breaker
}

// call is one request's lifecycle: send → (reply | timeout → backoff →
// resend)* → done.
type call struct {
	p        *peer
	op       *CtrlOp
	data     []byte
	attempts int
	cancel   func() // pending timeout or backoff timer
	resolved bool
	done     func(*CtrlReply, error)
	span     *trace.Span // txn phase span this call reports to (may be nil)
}

// callEvent publishes a call-lifecycle event to the trace bus and, when
// the call belongs to a traced transaction phase, attaches it to that
// phase's span (extending the span to the current tick). The client is
// single-threaded with the network run loop, so mutating an
// already-recorded span is safe.
func (c *Client) callEvent(cl *call, name, detail string) {
	c.event(name, detail)
	if cl.span != nil {
		cl.span.Event(c.n.Now(), name, detail)
		cl.span.End = c.n.Now()
	}
}

// NewClient creates a controller node named name in the network.
func NewClient(n *netsim.Network, name string, cfg Config) (*Client, error) {
	c := &Client{
		n:      n,
		name:   name,
		cfg:    cfg.withDefaults(),
		peers:  make(map[string]*peer),
		byPort: make(map[uint64]*peer),
	}
	c.rng = rand.New(rand.NewSource(int64(mix(c.cfg.Seed ^ 0xC0117E01))))
	if err := n.AddSwitch(name, c); err != nil {
		return nil, err
	}
	return c, nil
}

// AddPeer declares a control channel: requests to peerName leave the
// client on localPort (Connect that port to the agent's control port).
// The channel's session id derives from the client seed and the peer
// name, so sessions are stable per seed.
func (c *Client) AddPeer(peerName string, localPort uint64) error {
	if _, dup := c.peers[peerName]; dup {
		return fmt.Errorf("ctrlplane: duplicate peer %q", peerName)
	}
	if c.byPort[localPort] != nil {
		return fmt.Errorf("ctrlplane: port %d already carries peer %q", localPort, c.byPort[localPort].name)
	}
	p := &peer{
		name:     peerName,
		port:     localPort,
		session:  mix(c.cfg.Seed^hashName(peerName)) | 1, // nonzero
		nextSeq:  1,
		inflight: make(map[uint64]*call),
		br:       newBreaker(c.cfg.Breaker, c.cfg.Metrics.BreakerGauge(peerName)),
	}
	c.peers[peerName] = p
	c.byPort[localPort] = p
	c.order = append(c.order, peerName)
	return nil
}

// Peers returns the peer names in AddPeer order.
func (c *Client) Peers() []string { return append([]string(nil), c.order...) }

// Do issues one op to a peer. The op's Session and Seq are assigned
// here; done fires during the network run with the reply (which may be
// a rejection — deterministic, do not retry) or an ErrUnreachable
// after MaxAttempts timeouts. A nil done fires and forgets.
func (c *Client) Do(peerName string, op CtrlOp, done func(*CtrlReply, error)) error {
	p := c.peers[peerName]
	if p == nil {
		return fmt.Errorf("ctrlplane: unknown peer %q", peerName)
	}
	if done == nil {
		done = func(*CtrlReply, error) {}
	}
	op.Session = p.session
	op.Seq = p.nextSeq
	p.nextSeq++
	cl := &call{p: p, op: &op, data: EncodeCtrlOp(&op), done: done, span: c.curSpan}
	p.inflight[op.Seq] = cl
	c.send(cl)
	return nil
}

// send transmits (or, when the breaker is open, defers) one attempt.
func (c *Client) send(cl *call) {
	if cl.resolved {
		return
	}
	now := c.n.Now()
	if !cl.p.br.allow(now) {
		// Channel is broken: hold the request until the breaker's
		// half-open probe time instead of burning an attempt on it.
		at := cl.p.br.retryAt()
		d := uint64(1)
		if at > now {
			d = at - now
		}
		c.callEvent(cl, "breaker-hold", fmt.Sprintf("%s seq %d: %s until t+%d", cl.p.name, cl.op.Seq, cl.p.br.state, d))
		cl.cancel = c.n.After(d, func() { c.send(cl) })
		return
	}
	cl.attempts++
	if cl.attempts > 1 {
		c.cfg.Metrics.Retries.Inc()
		c.callEvent(cl, "retry", fmt.Sprintf("%s seq %d attempt %d", cl.p.name, cl.op.Seq, cl.attempts))
	} else {
		c.callEvent(cl, "send", fmt.Sprintf("%s seq %d %s %s", cl.p.name, cl.op.Seq, cl.op.Kind, cl.op.Table))
	}
	_ = c.n.SendFrom(c.name, cl.p.port, cl.data)
	cl.cancel = c.n.After(c.cfg.Timeout, func() { c.onTimeout(cl) })
}

// onTimeout handles an awaited reply that never arrived.
func (c *Client) onTimeout(cl *call) {
	if cl.resolved {
		return
	}
	c.cfg.Metrics.Timeouts.Inc()
	c.callEvent(cl, "timeout", fmt.Sprintf("%s seq %d attempt %d", cl.p.name, cl.op.Seq, cl.attempts))
	now := c.n.Now()
	cl.p.br.failure(now)
	if cl.attempts >= c.cfg.MaxAttempts {
		c.resolve(cl, nil, fmt.Errorf("%w: %s: %d attempts timed out",
			ErrUnreachable, cl.p.name, cl.attempts))
		return
	}
	d := c.cfg.Backoff.delay(cl.attempts, c.rng)
	c.callEvent(cl, "backoff", fmt.Sprintf("%s seq %d: retry in %d ticks", cl.p.name, cl.op.Seq, d))
	cl.cancel = c.n.After(d, func() { c.send(cl) })
}

func (c *Client) resolve(cl *call, rep *CtrlReply, err error) {
	if cl.resolved {
		return
	}
	cl.resolved = true
	if cl.cancel != nil {
		cl.cancel()
		cl.cancel = nil
	}
	delete(cl.p.inflight, cl.op.Seq)
	cl.done(rep, err)
}

// Process implements netsim.Processor: the client's inbound traffic is
// replies from agents. Undecodable packets (corruption en route) and
// stale replies (a duplicate racing its retransmission's answer) are
// dropped — retransmission and dedup make that safe.
func (c *Client) Process(pkt []byte, inPort uint64) ([]microp4.Output, error) {
	rep, err := DecodeCtrlReply(pkt)
	if err != nil {
		c.event("drop", "undecodable reply: "+err.Error())
		return nil, nil
	}
	p := c.byPort[inPort]
	if p == nil || rep.Session != p.session {
		c.event("drop", fmt.Sprintf("reply for unknown session %#x on port %d", rep.Session, inPort))
		return nil, nil
	}
	cl := p.inflight[rep.Seq]
	if cl == nil {
		c.event("stale", fmt.Sprintf("%s seq %d (already resolved)", p.name, rep.Seq))
		return nil, nil
	}
	p.br.success()
	if rep.Status == StatusRejected {
		c.callEvent(cl, "rejected", fmt.Sprintf("%s seq %d: %s: %s", p.name, rep.Seq, rep.Class, rep.Reason))
	} else {
		c.callEvent(cl, "reply", fmt.Sprintf("%s seq %d ok", p.name, rep.Seq))
	}
	c.resolve(cl, rep, nil)
	return nil, nil
}

func (c *Client) event(name, detail string) {
	if bus := c.n.Bus(); bus.Active() {
		bus.Publish(sim.TraceEvent{Kind: "ctrl", Module: c.name, Name: name, Detail: detail})
	}
}

// Op constructors for building requests and transaction plans.

// AddEntry builds an entry-install op.
func AddEntry(table string, keys []CtrlKey, action string, args ...uint64) CtrlOp {
	return CtrlOp{Kind: OpAddEntry, Table: table, Keys: keys, Action: action, Args: args}
}

// SetDefault builds a default-action override op.
func SetDefault(table, action string, args ...uint64) CtrlOp {
	return CtrlOp{Kind: OpSetDefault, Table: table, Action: action, Args: args}
}

// ClearTable builds a table-clear op.
func ClearTable(table string) CtrlOp { return CtrlOp{Kind: OpClearTable, Table: table} }

// SetMulticast builds a multicast-group programming op.
func SetMulticast(gid uint64, ports ...uint64) CtrlOp {
	return CtrlOp{Kind: OpSetMulticast, Group: gid, Ports: ports}
}

// mix is splitmix64, the seed-mixing finalizer.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
