package tna_test

import (
	"testing"

	"microp4/internal/backend/tna"
	"microp4/internal/lib"
	"microp4/internal/midend"
)

func reports(t testing.TB, prog string) (composed, mono *tna.Report) {
	t.Helper()
	opts := tna.DefaultOptions()
	main, mods, err := lib.CompileProgram(prog)
	if err != nil {
		t.Fatalf("%s: %v", prog, err)
	}
	res, err := midend.Build(main, mods...)
	if err != nil {
		t.Fatalf("%s: midend: %v", prog, err)
	}
	composed, err = tna.CompileComposed(res.Pipeline, opts)
	if err != nil {
		t.Fatalf("%s: composed: %v", prog, err)
	}
	m, err := lib.CompileMonolithic(prog)
	if err != nil {
		t.Fatalf("%s: mono: %v", prog, err)
	}
	tm, err := midend.Transform(m)
	if err != nil {
		t.Fatalf("%s: transform: %v", prog, err)
	}
	mono, err = tna.CompileMonolithic(tm, opts)
	if err != nil {
		t.Fatalf("%s: mono backend: %v", prog, err)
	}
	return composed, mono
}

// TestP2ResourceAnecdote pins the §7.3 P2 narrative: the composed P2
// compiles, and its worst ALU operation stays within the budget thanks
// to 16-bit alignment.
func TestP2ResourceAnecdote(t *testing.T) {
	c, _ := reports(t, "P2")
	if !c.Feasible {
		t.Fatalf("composed P2 infeasible: %s", c.Reason)
	}
	if c.WorstALU > tna.DefaultOptions().ALUBudget {
		t.Errorf("composed P2 worst ALU op uses %d operands with no split recorded", c.WorstALU)
	}
}
