package tna_test

import (
	"strings"
	"testing"

	"microp4/internal/backend/tna"
	"microp4/internal/lib"
	"microp4/internal/midend"
)

func reports(t testing.TB, prog string) (composed, mono *tna.Report) {
	t.Helper()
	opts := tna.DefaultOptions()
	main, mods, err := lib.CompileProgram(prog)
	if err != nil {
		t.Fatalf("%s: %v", prog, err)
	}
	res, err := midend.Build(main, mods...)
	if err != nil {
		t.Fatalf("%s: midend: %v", prog, err)
	}
	composed, err = tna.CompileComposed(res.Pipeline, opts)
	if err != nil {
		t.Fatalf("%s: composed: %v", prog, err)
	}
	m, err := lib.CompileMonolithic(prog)
	if err != nil {
		t.Fatalf("%s: mono: %v", prog, err)
	}
	tm, err := midend.Transform(m)
	if err != nil {
		t.Fatalf("%s: transform: %v", prog, err)
	}
	mono, err = tna.CompileMonolithic(tm, opts)
	if err != nil {
		t.Fatalf("%s: mono backend: %v", prog, err)
	}
	return composed, mono
}

// TestTable2Shape verifies the paper's Table 2 findings on the modeled
// Tofino: every µP4 program fits; 16-bit container usage is a multiple
// of the monolithic baseline's (the byte-stack alignment pass); 32-bit
// usage is a small fraction; total allocated PHV bits stay within 1.6×.
func TestTable2Shape(t *testing.T) {
	for _, prog := range []string{"P1", "P2", "P3", "P4", "P5", "P6"} {
		c, m := reports(t, prog)
		if !c.Feasible {
			t.Errorf("%s composed infeasible: %s", prog, c.Reason)
			continue
		}
		if !m.Feasible {
			t.Errorf("%s monolithic infeasible: %s", prog, m.Reason)
			continue
		}
		// Paper: "µP4 programs heavily utilize 16b containers — almost 3×
		// of their monolithic counterparts" (P1's ratio is the smallest
		// in our model at ~2×).
		if float64(c.Used16) < 1.9*float64(m.Used16) {
			t.Errorf("%s: composed 16b usage %d not ≈2× monolithic %d", prog, c.Used16, m.Used16)
		}
		if c.Used32 >= m.Used32 {
			t.Errorf("%s: composed 32b usage %d not below monolithic %d", prog, c.Used32, m.Used32)
		}
		if float64(c.Bits) > 1.6*float64(m.Bits) {
			t.Errorf("%s: composed bits %d exceed 1.6× monolithic %d", prog, c.Bits, m.Bits)
		}
		if c.Bits < m.Bits {
			t.Errorf("%s: composed bits %d below monolithic %d (composition is not free)", prog, c.Bits, m.Bits)
		}
	}
}

// TestTable3Shape verifies the paper's Table 3 findings: composed
// programs need more MAU stages than monolithic ones ((de)parsers became
// MATs), monolithic programs stay within 3-5 stages, and everything that
// compiles fits the 12-stage pipeline.
func TestTable3Shape(t *testing.T) {
	for _, prog := range []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7"} {
		c, m := reports(t, prog)
		if !c.Feasible {
			t.Errorf("%s composed infeasible: %s", prog, c.Reason)
			continue
		}
		if c.Stages > 12 {
			t.Errorf("%s: composed needs %d stages (>12)", prog, c.Stages)
		}
		if prog == "P7" {
			continue // monolithic P7 does not compile
		}
		if !m.Feasible {
			t.Errorf("%s monolithic infeasible: %s", prog, m.Reason)
			continue
		}
		if m.Stages < 2 || m.Stages > 5 {
			t.Errorf("%s: monolithic stages = %d, want 2-5", prog, m.Stages)
		}
		if c.Stages <= m.Stages {
			t.Errorf("%s: composed stages %d not above monolithic %d", prog, c.Stages, m.Stages)
		}
	}
}

// TestMonolithicP7Fails reproduces §7.3: "bf-p4c failed to allocate
// resources for the monolithic version of P7" — on the modeled target,
// the flat path runs out of 32-bit PHV containers for the SRv6 segment
// list, while the µP4 path (whose backend realigns storage) fits.
func TestMonolithicP7Fails(t *testing.T) {
	c, m := reports(t, "P7")
	if m.Feasible {
		t.Fatalf("monolithic P7 compiled; the paper's P7 does not (reason empty)")
	}
	if !strings.Contains(m.Reason, "PHV") {
		t.Errorf("monolithic P7 failed for the wrong reason: %s", m.Reason)
	}
	if !c.Feasible {
		t.Errorf("composed P7 should fit on the target: %s", c.Reason)
	}
}

// TestP2ResourceAnecdote pins the §7.3 P2 narrative: the composed P2
// compiles, and its worst ALU operation stays within the budget thanks
// to 16-bit alignment.
func TestP2ResourceAnecdote(t *testing.T) {
	c, _ := reports(t, "P2")
	if !c.Feasible {
		t.Fatalf("composed P2 infeasible: %s", c.Reason)
	}
	if c.WorstALU > tna.DefaultOptions().ALUBudget {
		t.Errorf("composed P2 worst ALU op uses %d operands with no split recorded", c.WorstALU)
	}
}
