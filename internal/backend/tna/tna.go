// Package tna is µP4C's backend for the Tofino Native Architecture
// (§6.3). It maps a composed MAT pipeline — or, for baselines, a
// monolithic program — onto the modeled Tofino resources: PHV container
// allocation (internal/target/phv) and MAU stage scheduling
// (internal/target/mau).
//
// Two behaviours distinguish the µP4 path from the flat path, mirroring
// the paper:
//   - the alignment pass: byte-stack elements and µP4 header fields are
//     packed into 16-bit containers ("this pass adjusts the size of
//     elements in byte-stack", §6.3);
//   - the splitting pass: assignments whose operands exceed the
//     per-action-ALU container budget are broken into a series of MATs.
//     The flat path has no such pass — which is how the monolithic P7
//     fails to compile (§7.3).
package tna

import (
	"sort"

	"microp4/internal/ir"
	"microp4/internal/target/mau"
	"microp4/internal/target/phv"
)

// Report is the hardware-mapping outcome for one program.
type Report struct {
	Program   string
	Composed  bool
	Feasible  bool
	Reason    string // why mapping failed, when infeasible
	Used8     int
	Used16    int
	Used32    int
	Bits      int
	Stages    int
	Tables    int // logical tables scheduled
	SplitOps  int // assignments split by the µP4 backend pass
	WorstALU  int
	WorstName string
}

// Options tune the modeled target.
type Options struct {
	Inventory phv.Inventory
	MAU       mau.Config
	ALUBudget int
}

// DefaultOptions models the Tofino profile used throughout the
// evaluation.
func DefaultOptions() Options {
	return Options{
		Inventory: phv.TofinoInventory,
		MAU:       mau.TofinoConfig,
		ALUBudget: phv.MaxALUOperands,
	}
}

// ----------------------------------------------------------------------------
// Symbol extraction

// symsOfExpr collects the storage symbols an expression touches.
// Byte-stack accesses map to the "$bs" symbol; validity tests map to the
// header's POV symbol.
func symsOfExpr(e *ir.Expr, out map[string]bool) {
	if e == nil {
		return
	}
	e.Walk(func(x *ir.Expr) {
		switch x.Kind {
		case ir.ERef:
			out[x.Ref] = true
		case ir.EBSlice, ir.EBValid:
			out["$bs"] = true
		case ir.EIsValid:
			out[povSym(x.Ref)] = true
		}
	})
}

func povSym(hdr string) string { return hdr + ".$valid" }

// rw accumulates reads and writes of statements.
type rw struct {
	reads, writes map[string]bool
}

func newRW() *rw { return &rw{reads: map[string]bool{}, writes: map[string]bool{}} }

func (r *rw) stmt(s *ir.Stmt) {
	switch s.Kind {
	case ir.SAssign:
		symsOfExpr(s.RHS, r.reads)
		switch s.LHS.Kind {
		case ir.ERef:
			r.writes[s.LHS.Ref] = true
		case ir.ESlice:
			if s.LHS.X != nil && s.LHS.X.Kind == ir.ERef {
				r.writes[s.LHS.X.Ref] = true
				r.reads[s.LHS.X.Ref] = true
			}
		case ir.EBSlice:
			r.writes["$bs"] = true
		}
	case ir.SSetValid, ir.SSetInvalid:
		r.writes[povSym(s.Hdr)] = true
	case ir.SShift:
		r.reads["$bs"] = true
		r.writes["$bs"] = true
	case ir.SIf:
		symsOfExpr(s.Cond, r.reads)
	case ir.SSwitch:
		symsOfExpr(s.Cond, r.reads)
	case ir.SMethod:
		for _, a := range s.Args {
			symsOfExpr(a.Expr, r.reads)
		}
	}
}

func (r *rw) stmts(ss []*ir.Stmt) {
	ir.WalkStmts(ss, r.stmt)
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ----------------------------------------------------------------------------
// Field collection

type fieldSet struct {
	fields []phv.Field
	seen   map[string]bool
}

func newFieldSet() *fieldSet { return &fieldSet{seen: map[string]bool{}} }

func (fs *fieldSet) add(f phv.Field) {
	if fs.seen[f.Name] {
		return
	}
	fs.seen[f.Name] = true
	fs.fields = append(fs.fields, f)
}

// addIntrinsic adds the fixed intrinsic-metadata footprint every program
// carries (out port + timestamps etc.).
func (fs *fieldSet) addIntrinsic() {
	fs.add(phv.Field{Name: "$im.out_port", Bits: 9, Group: "$im", Fixed: true})
	for _, m := range []string{"IN_PORT", "IN_TIMESTAMP", "PKT_LEN", "INSTANCE_ID"} {
		fs.add(phv.Field{Name: "$im.meta." + m, Bits: 32, Group: "$im32." + m, Fixed: true})
	}
}
