package tna_test

import (
	"testing"

	"microp4/internal/backend/tna"
	"microp4/internal/lib"
	"microp4/internal/midend"
)

// TestPrintCalibration dumps the modeled Tofino resource usage for every
// program, composed and monolithic — run with -v to inspect. The
// assertions encode the paper's Table 2/3 shape; exact values are pinned
// by the golden tests in table_test.go.
func TestPrintCalibration(t *testing.T) {
	opts := tna.DefaultOptions()
	for _, m := range lib.Programs {
		main, mods, err := lib.CompileProgram(m.Name)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		res, err := midend.Build(main, mods...)
		if err != nil {
			t.Fatalf("%s: midend: %v", m.Name, err)
		}
		comp, err := tna.CompileComposed(res.Pipeline, opts)
		if err != nil {
			t.Fatalf("%s: composed: %v", m.Name, err)
		}
		mono, err := lib.CompileMonolithic(m.Name)
		if err != nil {
			t.Fatalf("%s: mono compile: %v", m.Name, err)
		}
		tmono, err := midend.Transform(mono)
		if err != nil {
			t.Fatalf("%s: mono transform: %v", m.Name, err)
		}
		mrep, err := tna.CompileMonolithic(tmono, opts)
		if err != nil {
			t.Fatalf("%s: mono backend: %v", m.Name, err)
		}
		t.Logf("%s composed: feas=%v 8b=%d 16b=%d 32b=%d bits=%d stages=%d tables=%d splits=%d worstALU=%d(%s) reason=%s",
			m.Name, comp.Feasible, comp.Used8, comp.Used16, comp.Used32, comp.Bits, comp.Stages, comp.Tables, comp.SplitOps, comp.WorstALU, comp.WorstName, comp.Reason)
		t.Logf("%s mono:     feas=%v 8b=%d 16b=%d 32b=%d bits=%d stages=%d tables=%d worstALU=%d(%s) reason=%s",
			m.Name, mrep.Feasible, mrep.Used8, mrep.Used16, mrep.Used32, mrep.Bits, mrep.Stages, mrep.Tables, mrep.WorstALU, mrep.WorstName, mrep.Reason)
	}
}
