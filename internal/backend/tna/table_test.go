package tna_test

import (
	"strings"
	"testing"
)

// goldenRow pins the modeled-Tofino resource report of one program,
// composed and monolithic. The values regenerate with
//
//	go run ./cmd/up4bench -table 2   # containers + bits
//	go run ./cmd/up4bench -table 3   # stages
//
// and must move together with the absolute-usage table in
// EXPERIMENTS.md. A deliberate model change (allocator packing, stage
// dependency rules, inventory calibration) updates both; an accidental
// drift fails here first.
type goldenRow struct {
	c8, c16, c32, cBits, cStages int // composed (zero when infeasible)
	m8, m16, m32, mBits, mStages int // monolithic (zero when infeasible)
	composedInfeasible           bool
	monoInfeasible               bool
}

var golden = map[string]goldenRow{
	"P1": {c8: 1, c16: 44, c32: 4, cBits: 840, cStages: 6, m8: 9, m16: 16, m32: 12, mBits: 712, mStages: 4},
	"P2": {c8: 1, c16: 63, c32: 4, cBits: 1144, cStages: 9, m8: 14, m16: 8, m32: 21, mBits: 912, mStages: 3},
	"P3": {c8: 1, c16: 58, c32: 4, cBits: 1064, cStages: 10, m8: 12, m16: 17, m32: 21, mBits: 1040, mStages: 3},
	"P4": {c8: 1, c16: 52, c32: 4, cBits: 968, cStages: 8, m8: 10, m16: 8, m32: 19, mBits: 816, mStages: 3},
	"P5": {c8: 1, c16: 61, c32: 4, cBits: 1112, cStages: 10, m8: 10, m16: 8, m32: 19, mBits: 816, mStages: 3},
	"P6": {c8: 2, c16: 84, c32: 4, cBits: 1488, cStages: 10, m8: 16, m16: 8, m32: 23, mBits: 992, mStages: 3},
	"P7": {c8: 2, c16: 96, c32: 22, cBits: 2256, cStages: 11, monoInfeasible: true},
	// Beyond the paper's Table 2/3 (which stop at P7): the telemetry
	// router and the stateful firewall, pinned the same way.
	"P8": {c8: 2, c16: 77, c32: 4, cBits: 1376, cStages: 12, m8: 29, m16: 9, m32: 19, mBits: 984, mStages: 3},
	"P9": {c8: 1, c16: 67, c32: 4, cBits: 1208, cStages: 11, m8: 12, m16: 13, m32: 19, mBits: 912, mStages: 4},
	// The NF scenario pack (PR 10) exceeds a single modeled Tofino pipe:
	// the carrier edge (decap × NAT64 × dual-stack routing) exhausts PHV
	// in both forms, and the composed load balancer's dependency chain
	// needs a 13th MAU stage. Pinned by TestScenarioPackExceedsSinglePipe
	// so a model change that silently makes them fit (or shifts the
	// failure) is caught.
	"P10": {composedInfeasible: true, monoInfeasible: true},
	"P11": {composedInfeasible: true, m8: 11, m16: 22, m32: 14, mBits: 888, mStages: 10},
}

// TestTable2Golden pins the exact Table 2/3 values of every program on
// the modeled Tofino.
func TestTable2Golden(t *testing.T) {
	for _, prog := range []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10", "P11"} {
		want := golden[prog]
		c, m := reports(t, prog)
		if want.composedInfeasible {
			if c.Feasible {
				t.Errorf("%s composed compiled; golden says infeasible", prog)
			}
		} else if !c.Feasible {
			t.Errorf("%s composed infeasible: %s", prog, c.Reason)
			continue
		} else if got := [5]int{c.Used8, c.Used16, c.Used32, c.Bits, c.Stages}; got != [5]int{want.c8, want.c16, want.c32, want.cBits, want.cStages} {
			t.Errorf("%s composed = 8b:%d 16b:%d 32b:%d bits:%d stages:%d, want 8b:%d 16b:%d 32b:%d bits:%d stages:%d",
				prog, c.Used8, c.Used16, c.Used32, c.Bits, c.Stages, want.c8, want.c16, want.c32, want.cBits, want.cStages)
		}
		if want.monoInfeasible {
			if m.Feasible {
				t.Errorf("%s monolithic compiled; golden says infeasible", prog)
			}
			continue
		}
		if !m.Feasible {
			t.Errorf("%s monolithic infeasible: %s", prog, m.Reason)
			continue
		}
		if got := [5]int{m.Used8, m.Used16, m.Used32, m.Bits, m.Stages}; got != [5]int{want.m8, want.m16, want.m32, want.mBits, want.mStages} {
			t.Errorf("%s monolithic = 8b:%d 16b:%d 32b:%d bits:%d stages:%d, want 8b:%d 16b:%d 32b:%d bits:%d stages:%d",
				prog, m.Used8, m.Used16, m.Used32, m.Bits, m.Stages, want.m8, want.m16, want.m32, want.mBits, want.mStages)
		}
	}
}

// TestTable2Shape verifies the paper's Table 2 findings on the modeled
// Tofino: every µP4 program fits; 16-bit container usage is a multiple
// of the monolithic baseline's (the byte-stack alignment pass — ours
// lands at ≈2.8–10.5×, the paper at ≈3.3–6.6×); 32-bit usage is a small
// fraction (−67…−83%; paper −64…−86%); total allocated PHV bits stay
// within 1.6× and never drop below monolithic.
func TestTable2Shape(t *testing.T) {
	for _, prog := range []string{"P1", "P2", "P3", "P4", "P5", "P6"} {
		c, m := reports(t, prog)
		if !c.Feasible {
			t.Errorf("%s composed infeasible: %s", prog, c.Reason)
			continue
		}
		if !m.Feasible {
			t.Errorf("%s monolithic infeasible: %s", prog, m.Reason)
			continue
		}
		// Paper: "µP4 programs heavily utilize 16b containers — almost 3×
		// of their monolithic counterparts" (P1's ratio is the smallest
		// in our model at ~2.8×).
		if float64(c.Used16) < 1.9*float64(m.Used16) {
			t.Errorf("%s: composed 16b usage %d not ≈2× monolithic %d", prog, c.Used16, m.Used16)
		}
		// 32b reduction: composed needs at most half the monolithic
		// count (measured −67…−83%).
		if 2*c.Used32 > m.Used32 {
			t.Errorf("%s: composed 32b usage %d not ≤ half of monolithic %d", prog, c.Used32, m.Used32)
		}
		if float64(c.Bits) > 1.6*float64(m.Bits) {
			t.Errorf("%s: composed bits %d exceed 1.6× monolithic %d", prog, c.Bits, m.Bits)
		}
		if c.Bits < m.Bits {
			t.Errorf("%s: composed bits %d below monolithic %d (composition is not free)", prog, c.Bits, m.Bits)
		}
	}
}

// TestTable3Shape verifies the paper's Table 3 findings: composed
// programs need more MAU stages than monolithic ones ((de)parsers became
// MATs), monolithic programs stay within 2-5 stages, and everything that
// compiles fits the 12-stage pipeline.
func TestTable3Shape(t *testing.T) {
	for _, prog := range []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7"} {
		c, m := reports(t, prog)
		if !c.Feasible {
			t.Errorf("%s composed infeasible: %s", prog, c.Reason)
			continue
		}
		if c.Stages > 12 {
			t.Errorf("%s: composed needs %d stages (>12)", prog, c.Stages)
		}
		if prog == "P7" {
			continue // monolithic P7 does not compile
		}
		if !m.Feasible {
			t.Errorf("%s monolithic infeasible: %s", prog, m.Reason)
			continue
		}
		if m.Stages < 2 || m.Stages > 5 {
			t.Errorf("%s: monolithic stages = %d, want 2-5", prog, m.Stages)
		}
		if c.Stages <= m.Stages {
			t.Errorf("%s: composed stages %d not above monolithic %d", prog, c.Stages, m.Stages)
		}
	}
}

// TestScenarioPackExceedsSinglePipe pins why the PR 10 NF scenarios do
// not fit the modeled single Tofino pipe — the same result class as
// monolithic P7, but hit from three different directions: the composed
// carrier edge runs out of 16-bit containers (six instances' worth of
// byte-stack state), its monolithic twin runs out of 32-bit containers
// on the 128-bit IPv6 addresses, and the composed load balancer's
// table-dependency chain overflows the 12-stage MAU.
func TestScenarioPackExceedsSinglePipe(t *testing.T) {
	c10, m10 := reports(t, "P10")
	if c10.Feasible || !strings.Contains(c10.Reason, "out of 16-bit PHV containers") {
		t.Errorf("composed P10 should exhaust 16-bit PHV, got feasible=%v reason=%q", c10.Feasible, c10.Reason)
	}
	if m10.Feasible || !strings.Contains(m10.Reason, "out of 32-bit PHV containers") {
		t.Errorf("monolithic P10 should exhaust 32-bit PHV, got feasible=%v reason=%q", m10.Feasible, m10.Reason)
	}
	c11, m11 := reports(t, "P11")
	if c11.Feasible || !strings.Contains(c11.Reason, "12-stage pipeline") {
		t.Errorf("composed P11 should overflow the MAU stages, got feasible=%v reason=%q", c11.Feasible, c11.Reason)
	}
	if !m11.Feasible {
		t.Errorf("monolithic P11 should fit: %s", m11.Reason)
	}
}

// TestMonolithicP7Fails reproduces §7.3: "bf-p4c failed to allocate
// resources for the monolithic version of P7" — on the modeled target,
// the flat path runs out of 32-bit PHV containers for the 4×128-bit
// SRv6 segment list, while the µP4 path (whose backend realigns storage
// to 16-bit containers and may spill across classes) fits.
func TestMonolithicP7Fails(t *testing.T) {
	c, m := reports(t, "P7")
	if m.Feasible {
		t.Fatalf("monolithic P7 compiled; the paper's P7 does not (reason empty)")
	}
	if !strings.Contains(m.Reason, "PHV") {
		t.Errorf("monolithic P7 failed for the wrong reason: %s", m.Reason)
	}
	if !strings.Contains(m.Reason, "out of 32-bit PHV containers") {
		t.Errorf("monolithic P7 should exhaust the 32-bit class, got: %s", m.Reason)
	}
	if !c.Feasible {
		t.Errorf("composed P7 should fit on the target: %s", c.Reason)
	}
}
