package tna

import (
	"fmt"

	"microp4/internal/ir"
	"microp4/internal/mat"
	"microp4/internal/target/mau"
	"microp4/internal/target/phv"
)

// resolver answers width/group queries over a storage namespace.
type resolver struct {
	decls   []ir.Decl
	headers map[string]*ir.HeaderType
	byPath  map[string]*ir.Decl
}

func newResolver(decls []ir.Decl, headers map[string]*ir.HeaderType) *resolver {
	r := &resolver{decls: decls, headers: headers, byPath: make(map[string]*ir.Decl, len(decls))}
	for i := range decls {
		r.byPath[decls[i].Path] = &decls[i]
	}
	return r
}

// field resolves a scalar reference to a PHV field request, or false for
// non-storage symbols ($bs, POVs, intrinsic metadata, action params).
func (r *resolver) field(ref string) (phv.Field, bool) {
	if d, ok := r.byPath[ref]; ok && (d.Kind == ir.DeclBits || d.Kind == ir.DeclBool) {
		w := d.Width
		if w == 0 {
			w = 1
		}
		return phv.Field{Name: ref, Bits: w, Group: "var:" + ref}, true
	}
	// Header field: longest declared header prefix.
	for i := len(ref) - 1; i > 0; i-- {
		if ref[i] != '.' {
			continue
		}
		inst, fname := ref[:i], ref[i+1:]
		d, ok := r.byPath[inst]
		if !ok || d.Kind != ir.DeclHeader {
			continue
		}
		ht := r.headers[d.TypeName]
		if ht == nil {
			continue
		}
		if f := ht.Field(fname); f != nil {
			return phv.Field{Name: ref, Bits: f.Width, Group: inst}, true
		}
	}
	return phv.Field{}, false
}

// ----------------------------------------------------------------------------
// Per-assignment ALU operand accounting

// operandsOfAssign counts the PHV containers a single ALU operation of
// this assignment must access. Wide assignments decompose into one move
// per destination container (VLIW: each container has its own ALU), so
// the metric is per destination container: 1 (the destination) plus the
// source containers feeding it. A container-aligned source contributes
// one container per destination chunk; a misaligned or sliced source
// straddles two; every additional operand of a compound right-hand side
// adds its own sources (the §6.3 "complex assignment" case).
func operandsOfAssign(s *ir.Stmt, alloc *phv.Alloc) int {
	if s.Kind != ir.SAssign {
		return 0
	}
	var leafCost func(e *ir.Expr) int
	leafCost = func(e *ir.Expr) int {
		if e == nil {
			return 0
		}
		switch e.Kind {
		case ir.EConst:
			return 0
		case ir.ERef:
			n := len(alloc.ByField[e.Ref])
			if n > 2 {
				n = 2 // one destination chunk reads at most two of them
			}
			if n == 0 {
				n = 1 // action data / unallocated scalar
			}
			return n
		case ir.EBSlice:
			if e.Off%16 == 0 && e.Width <= 16 {
				return 1
			}
			return 2
		case ir.EIsValid:
			return 1
		case ir.ESlice, ir.EUn:
			return leafCost(e.X)
		case ir.EBin:
			return leafCost(e.X) + leafCost(e.Y)
		}
		return 1
	}
	return 1 + leafCost(s.RHS)
}

// worstAssign scans a statement tree for the assignment with the most
// operands.
func worstAssign(ss []*ir.Stmt, alloc *phv.Alloc) int {
	worst := 0
	ir.WalkStmts(ss, func(s *ir.Stmt) {
		if n := operandsOfAssign(s, alloc); n > worst {
			worst = n
		}
	})
	return worst
}

// splitCount totals the extra operations needed to fit every assignment
// within the operand budget.
func splitCount(ss []*ir.Stmt, alloc *phv.Alloc, budget int) int {
	extra := 0
	ir.WalkStmts(ss, func(s *ir.Stmt) {
		if n := operandsOfAssign(s, alloc); n > budget {
			extra += (n + budget - 1) / budget
			extra--
		}
	})
	return extra
}

// ----------------------------------------------------------------------------
// Composed compilation (the µP4 path)

// CompileComposed maps a composed MAT pipeline onto the modeled Tofino.
// Infeasibility is reported in Report.Feasible/Reason rather than as an
// error (errors are reserved for malformed input).
func CompileComposed(pl *mat.Pipeline, opts Options) (*Report, error) {
	rep := &Report{Program: pl.Name, Composed: true, Feasible: true}
	res := newResolver(pl.Decls, pl.Headers)

	// --- Fields.
	fs := newFieldSet()
	fs.addIntrinsic()
	// Byte-stack: 16-bit-aligned elements (the §6.3 alignment pass).
	for i := 0; i < (pl.BsBytes+1)/2; i++ {
		fs.add(phv.Field{Name: fmt.Sprintf("$bs.e%d", i), Bits: 16, Group: "$bs"})
	}
	// Path-id metadata.
	for _, pv := range pl.PathVars {
		fs.add(phv.Field{Name: pv, Bits: mat.PathVarWidth, Group: "var:" + pv})
	}
	// POV bits for every header instance.
	for _, d := range pl.Decls {
		if d.Kind == ir.DeclHeader {
			fs.add(phv.Field{Name: povSym(d.Path), Bits: 1, POV: true})
		}
	}
	// Scalars referenced by user (non-synthetic) tables and control flow.
	// Fields only touched by synthetic copy actions are byte-stack
	// sourced directly (the §8.1 dead-copy optimization).
	userRW := newRW()
	collectUserSymbols(pl, userRW)
	for _, ref := range keys(userRW.reads) {
		if f, ok := res.field(ref); ok {
			fs.add(f)
		}
	}
	for _, ref := range keys(userRW.writes) {
		if f, ok := res.field(ref); ok {
			fs.add(f)
		}
	}

	alloc, err := (&phv.Allocator{Inv: opts.Inventory, Mode: phv.ModeAligned16}).Allocate(fs.fields)
	if err != nil {
		rep.Feasible = false
		rep.Reason = fmt.Sprintf("PHV allocation: %v", err)
		return rep, nil
	}
	rep.Used8, rep.Used16, rep.Used32 = alloc.Used8, alloc.Used16, alloc.Used32
	rep.Bits = alloc.BitsAllocated

	// --- ALU accounting with the splitting pass (§6.3): assignments
	// exceeding the operand budget are broken into a series of MATs.
	splitsByTable := make(map[string]int)
	for name, tbl := range pl.Tables {
		extra := 0
		for _, an := range tbl.Actions {
			act := pl.Actions[an]
			if act == nil {
				continue
			}
			if n := worstAssign(act.Body, alloc); n > rep.WorstALU {
				rep.WorstALU, rep.WorstName = n, an
			}
			if e := splitCount(act.Body, alloc, opts.ALUBudget); e > extra {
				extra = e
			}
		}
		if extra > 0 {
			splitsByTable[name] = extra
			rep.SplitOps += extra
		}
	}

	// --- Stage scheduling.
	tables := collectTables(pl.Stmts, pl.Tables, pl.Actions, splitsByTable)
	rep.Tables = len(tables)
	sched, err := mau.Plan(tables, opts.MAU)
	if err != nil {
		rep.Feasible = false
		rep.Reason = fmt.Sprintf("MAU scheduling: %v", err)
		return rep, nil
	}
	rep.Stages = sched.NumStages
	return rep, nil
}

// collectUserSymbols gathers reads/writes of non-synthetic tables,
// control-flow conditions, and standalone assignments.
func collectUserSymbols(pl *mat.Pipeline, out *rw) {
	var walk func(ss []*ir.Stmt)
	walk = func(ss []*ir.Stmt) {
		for _, s := range ss {
			switch s.Kind {
			case ir.SApplyTable:
				tbl := pl.Tables[s.Table]
				if tbl == nil || tbl.Synthetic {
					continue
				}
				for _, k := range tbl.Keys {
					symsOfExpr(k.Expr, out.reads)
				}
				for _, an := range tbl.Actions {
					if act := pl.Actions[an]; act != nil {
						out.stmts(act.Body)
					}
				}
			case ir.SIf:
				symsOfExpr(s.Cond, out.reads)
				walk(s.Then)
				walk(s.Else)
			case ir.SSwitch:
				symsOfExpr(s.Cond, out.reads)
				for _, c := range s.Cases {
					walk(c.Body)
				}
			default:
				out.stmt(s)
			}
		}
	}
	walk(pl.Stmts)
	delete(out.reads, "$bs")
	delete(out.writes, "$bs")
}

// ----------------------------------------------------------------------------
// Logical-table linearization (shared by both paths)

// collectTables linearizes a statement tree into logical tables with
// dependency symbols and exclusivity tags, folding standalone
// assignments into the next table and appending split move-tables.
func collectTables(stmts []*ir.Stmt, tbls map[string]*ir.Table, acts map[string]*ir.Action, splits map[string]int) []mau.Table {
	var out []mau.Table
	pending := newRW()
	conds := 0
	flushInto := func(t *mau.Table) {
		t.Reads = append(t.Reads, keys(pending.reads)...)
		t.Writes = append(t.Writes, keys(pending.writes)...)
		pending = newRW()
	}
	var walk func(ss []*ir.Stmt, tag []mau.Branch)
	walk = func(ss []*ir.Stmt, tag []mau.Branch) {
		for _, s := range ss {
			switch s.Kind {
			case ir.SApplyTable:
				tbl := tbls[s.Table]
				t := mau.Table{Name: s.Table, Tag: tag}
				r := newRW()
				if tbl != nil {
					for _, k := range tbl.Keys {
						symsOfExpr(k.Expr, r.reads)
					}
					for _, an := range tbl.Actions {
						if act := acts[an]; act != nil {
							r.stmts(act.Body)
						}
					}
				}
				t.Reads = keys(r.reads)
				t.Writes = keys(r.writes)
				flushInto(&t)
				out = append(out, t)
				for i := 0; i < splits[s.Table]; i++ {
					out = append(out, mau.Table{
						Name:   fmt.Sprintf("%s$split%d", s.Table, i),
						Reads:  []string{"$bs"},
						Writes: []string{"$bs"},
						Tag:    tag,
					})
				}
			case ir.SIf:
				conds++
				cid := conds
				g := mau.Table{Name: fmt.Sprintf("$gw%d", cid), Gateway: true, Tag: tag}
				r := newRW()
				symsOfExpr(s.Cond, r.reads)
				g.Reads = keys(r.reads)
				flushInto(&g)
				out = append(out, g)
				walk(s.Then, append(append([]mau.Branch(nil), tag...), mau.Branch{Cond: cid, Arm: 0}))
				walk(s.Else, append(append([]mau.Branch(nil), tag...), mau.Branch{Cond: cid, Arm: 1}))
			case ir.SSwitch:
				conds++
				cid := conds
				g := mau.Table{Name: fmt.Sprintf("$gw%d", cid), Gateway: true, Tag: tag}
				r := newRW()
				symsOfExpr(s.Cond, r.reads)
				g.Reads = keys(r.reads)
				flushInto(&g)
				out = append(out, g)
				for i, c := range s.Cases {
					walk(c.Body, append(append([]mau.Branch(nil), tag...), mau.Branch{Cond: cid, Arm: i}))
				}
			default:
				pending.stmt(s)
			}
		}
	}
	walk(stmts, nil)
	if len(pending.reads)+len(pending.writes) > 0 {
		t := mau.Table{Name: "$tail_moves"}
		flushInto(&t)
		out = append(out, t)
	}
	return out
}

// ----------------------------------------------------------------------------
// Monolithic compilation (the flat baseline path)

// CompileMonolithic maps a flat program (already midend.Transform-ed so
// header stacks are unrolled) onto the modeled Tofino. The parser and
// deparser run in dedicated hardware and cost no MAU stages; all parsed
// header fields live in the PHV, packed in natural size classes without
// cross-class spill.
func CompileMonolithic(p *ir.Program, opts Options) (*Report, error) {
	rep := &Report{Program: p.Name, Feasible: true}

	fs := newFieldSet()
	fs.addIntrinsic()
	for _, d := range p.Decls {
		switch d.Kind {
		case ir.DeclHeader:
			ht := p.Headers[d.TypeName]
			if ht == nil {
				return nil, fmt.Errorf("%s: unknown header type %s", p.Name, d.TypeName)
			}
			fs.add(phv.Field{Name: povSym(d.Path), Bits: 1, POV: true})
			for _, f := range ht.Fields {
				fs.add(phv.Field{Name: d.Path + "." + f.Name, Bits: f.Width, Group: d.Path})
			}
		case ir.DeclBits, ir.DeclBool:
			w := d.Width
			if w == 0 {
				w = 1
			}
			fs.add(phv.Field{Name: d.Path, Bits: w, Group: "var:" + d.Path})
		case ir.DeclStack:
			return nil, fmt.Errorf("%s: header stack %s not unrolled (run midend.Transform first)", p.Name, d.Path)
		}
	}
	alloc, err := (&phv.Allocator{Inv: opts.Inventory, Mode: phv.ModeNatural}).Allocate(fs.fields)
	if err != nil {
		rep.Feasible = false
		rep.Reason = fmt.Sprintf("PHV allocation: %v", err)
		return rep, nil
	}
	rep.Used8, rep.Used16, rep.Used32 = alloc.Used8, alloc.Used16, alloc.Used32
	rep.Bits = alloc.BitsAllocated

	// ALU operand budget: the flat path cannot split wide operations —
	// exceeding the budget is a compile failure (§7.3).
	check := func(name string, body []*ir.Stmt) {
		if n := worstAssign(body, alloc); n > rep.WorstALU {
			rep.WorstALU, rep.WorstName = n, name
		}
	}
	for name, act := range p.Actions {
		check(name, act.Body)
	}
	check("apply", p.Apply)
	if rep.WorstALU > opts.ALUBudget {
		rep.Feasible = false
		rep.Reason = fmt.Sprintf("action %s: an assignment accesses %d PHV containers; at most %d are accessible per action ALU (the flat path has no restructuring pass)",
			rep.WorstName, rep.WorstALU, opts.ALUBudget)
		return rep, nil
	}

	tables := collectTables(p.Apply, p.Tables, p.Actions, nil)
	rep.Tables = len(tables)
	sched, err := mau.Plan(tables, opts.MAU)
	if err != nil {
		rep.Feasible = false
		rep.Reason = fmt.Sprintf("MAU scheduling: %v", err)
		return rep, nil
	}
	rep.Stages = sched.NumStages
	return rep, nil
}
