package v1model_test

import (
	"strings"
	"testing"

	"microp4/internal/backend/v1model"
	"microp4/internal/frontend"
	"microp4/internal/ir"
	"microp4/internal/lib"
	"microp4/internal/mat"
	"microp4/internal/midend"
	"microp4/internal/sim"
)

func buildP4(t *testing.T) *mat.Pipeline {
	t.Helper()
	main, mods, err := lib.CompileProgram("P4")
	if err != nil {
		t.Fatal(err)
	}
	res, err := midend.Build(main, mods...)
	if err != nil {
		t.Fatal(err)
	}
	return res.Pipeline
}

func TestSplitAllIngress(t *testing.T) {
	pl := buildP4(t)
	part, err := v1model.Split(pl)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	// The router touches no queueing metadata: everything lands in
	// ingress (as on the paper's example programs).
	if len(part.Egress) != 0 {
		t.Errorf("egress has %d statements, want 0", len(part.Egress))
	}
	if len(part.Ingress) != len(pl.Stmts) {
		t.Errorf("ingress has %d statements, want %d", len(part.Ingress), len(pl.Stmts))
	}
	if len(part.BridgeMeta) != 0 {
		t.Errorf("bridge metadata = %v, want none", part.BridgeMeta)
	}
}

// egressSrc uses deq_timestamp, forcing a split: the monitor write and
// everything depending on it must move to egress, and the nh value it
// consumes must be bridged.
const egressSrc = `
struct empty_t { }
header ethernet_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
struct hdr_t { ethernet_h eth; }
program EgressUser : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.eth); transition accept; }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) {
    bit<16> nh;
    bit<32> lat;
    bit<32> lat2;
    action fwd(bit<9> port) { im.set_out_port(port); nh = 1; }
    table fwd_tbl {
      key = { h.eth.dstMac : exact; }
      actions = { fwd; }
    }
    apply {
      nh = 0;
      fwd_tbl.apply();
      lat = im.get_value(DEQ_TIMESTAMP);
      if (nh == 1) {
        lat2 = lat + 1;
      }
    }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.eth); } }
}
EgressUser(P, C, D) main;
`

func TestSplitWithEgressMetadata(t *testing.T) {
	main, err := frontend.CompileModule("egress.up4", egressSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := midend.Build(main)
	if err != nil {
		t.Fatal(err)
	}
	part, err := v1model.Split(res.Pipeline)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if len(part.Egress) == 0 {
		t.Fatal("no statements moved to egress despite deq_timestamp read")
	}
	// The lat assignment and the dependent conditional must be egress.
	found := 0
	ir.WalkStmts(part.Egress, func(s *ir.Stmt) {
		if s.Kind == ir.SAssign && s.LHS.Kind == ir.ERef &&
			(s.LHS.Ref == "lat" || s.LHS.Ref == "lat2") {
			found++
		}
	})
	if found != 2 {
		t.Errorf("found %d egress latency assignments, want 2", found)
	}
	// Ingress must keep the table apply (it writes the output port).
	hasTable := false
	ir.WalkStmts(part.Ingress, func(s *ir.Stmt) {
		if s.Kind == ir.SApplyTable && s.Table == "fwd_tbl" {
			hasTable = true
		}
	})
	if !hasTable {
		t.Error("fwd_tbl not placed in ingress")
	}
	// nh crosses the boundary (written in ingress, read in egress), and
	// so does the path-id the duplicated guard re-evaluates.
	if len(part.BridgeMeta) != 2 || part.BridgeMeta[0] != "$pp" || part.BridgeMeta[1] != "nh" {
		t.Errorf("bridge metadata = %v, want [$pp nh]", part.BridgeMeta)
	}
}

// conflictSrc reads queueing metadata and then sets the output port in
// the same statement chain — V1Model cannot place that.
const conflictSrc = `
struct empty_t { }
header ethernet_h { bit<48> dstMac; bit<48> srcMac; bit<16> etherType; }
struct hdr_t { ethernet_h eth; }
program Conflicted : implements Unicast {
  parser P(extractor ex, pkt p, out hdr_t h, inout empty_t m, im_t im) {
    state start { ex.extract(p, h.eth); transition accept; }
  }
  control C(pkt p, inout hdr_t h, inout empty_t m, im_t im) {
    apply {
      if (im.get_value(DEQ_TIMESTAMP) > 100) {
        im.set_out_port(9);
      }
    }
  }
  control D(emitter em, pkt p, in hdr_t h) { apply { em.emit(p, h.eth); } }
}
Conflicted(P, C, D) main;
`

func TestSplitConstraintViolation(t *testing.T) {
	main, err := frontend.CompileModule("conflict.up4", conflictSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := midend.Build(main)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v1model.Split(res.Pipeline); err == nil {
		t.Error("Split accepted a statement that reads deq_timestamp and writes the output port")
	}
}

func TestEmitV1Model(t *testing.T) {
	pl := buildP4(t)
	part, err := v1model.Split(pl)
	if err != nil {
		t.Fatal(err)
	}
	src := v1model.Emit(pl, part)
	for _, want := range []string{
		"#include <v1model.p4>",
		"byte_h[54] bs",            // P4's byte-stack is 54 bytes
		"control up4_ingress",      // partitioned controls
		"control up4_egress",       // (empty but present)
		"forward_tbl",              // the user table survives
		"l3_i_ipv4_i_ipv4_lpm_tbl", // composed module table, mangled
		"V1Switch(",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated V1Model source missing %q", want)
		}
	}
	// Deterministic output.
	if src != v1model.Emit(pl, part) {
		t.Error("Emit is not deterministic")
	}
}

// TestPartitionPreservesSemantics executes the partitioned pipeline
// (ingress then egress) and the original pipeline on traffic and
// requires identical outcomes — the paper's partitioning is a
// program transformation, not just an annotation.
func TestPartitionPreservesSemantics(t *testing.T) {
	main, err := frontend.CompileModule("egress.up4", egressSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := midend.Build(main)
	if err != nil {
		t.Fatal(err)
	}
	part, err := v1model.Split(res.Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	split := res.Pipeline.WithStmts(append(append([]*ir.Stmt(nil), part.Ingress...), part.Egress...))

	tables := sim.NewTables()
	tables.AddEntry("fwd_tbl", []sim.RuntimeKey{sim.Exact(0xAB)}, "fwd", 3)
	orig := sim.NewExec(res.Pipeline, tables)
	parted := sim.NewExec(split, tables)

	for i := 0; i < 50; i++ {
		data := pktBytes(uint64(i%3) * 0x55) // vary the dmac
		m := sim.Metadata{InPort: uint64(i)}
		r1, err := orig.Process(data, m)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := parted.Process(data, m)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Dropped != r2.Dropped || len(r1.Out) != len(r2.Out) {
			t.Fatalf("pkt %d: partitioned pipeline diverges", i)
		}
		for j := range r1.Out {
			if r1.Out[j].Port != r2.Out[j].Port || string(r1.Out[j].Data) != string(r2.Out[j].Data) {
				t.Fatalf("pkt %d out %d differs", i, j)
			}
		}
	}
}

func pktBytes(dmac uint64) []byte {
	b := make([]byte, 14)
	for i := 0; i < 6; i++ {
		b[i] = byte(dmac >> uint(40-8*i))
	}
	b[12] = 0x08
	return append(b, []byte("payload")...)
}
