// Package v1model is µP4C's backend for the V1Model architecture
// (§5.5). Its core job is the partitioning transformation: allocating
// the composed program's packet-processing onto V1Model's ingress and
// egress control blocks while respecting the architecture's metadata
// constraints — egress_spec may only be written in ingress; queueing
// metadata (deq_timestamp etc.) may only be read in egress. Live values
// crossing the boundary get synthesized partition-metadata.
package v1model

import (
	"fmt"
	"sort"
	"strings"

	"microp4/internal/ir"
	"microp4/internal/mat"
)

// Egress-only intrinsic metadata reads (queueing metadata, §5.5: "to
// prevent accessing dequeue timestamp of a packet in ingress").
var egressOnlyReads = map[string]bool{
	"$im.meta.DEQ_TIMESTAMP": true,
	"$im.meta.ENQ_TIMESTAMP": true,
	"$im.meta.QUEUE_DEPTH":   true,
	"$im.meta.OUT_TIMESTAMP": true,
}

// Ingress-only writes (V1Model's egress_spec).
var ingressOnlyWrites = map[string]bool{
	"$im.out_port": true,
}

// Partition is the ingress/egress split of a composed pipeline.
type Partition struct {
	Ingress []*ir.Stmt
	Egress  []*ir.Stmt
	// BridgeMeta lists the scalar paths written in ingress and read in
	// egress; the backend synthesizes partition-metadata for them
	// (§5.5: "µP4C synthesizes partition-metadata that can be passed as
	// user-metadata between ingress and egress control blocks").
	BridgeMeta []string
}

// stmtIO summarizes one top-level statement's reads and writes,
// including the tables it applies.
type stmtIO struct {
	reads  map[string]bool
	writes map[string]bool
}

func ioOfStmt(s *ir.Stmt, tables map[string]*ir.Table, actions map[string]*ir.Action) *stmtIO {
	io := &stmtIO{reads: map[string]bool{}, writes: map[string]bool{}}
	var visitExpr func(e *ir.Expr)
	visitExpr = func(e *ir.Expr) {
		if e == nil {
			return
		}
		e.Walk(func(x *ir.Expr) {
			switch x.Kind {
			case ir.ERef:
				io.reads[x.Ref] = true
			case ir.EIsValid:
				io.reads[x.Ref+".$valid"] = true
			}
		})
	}
	var visit func(s *ir.Stmt)
	visit = func(s *ir.Stmt) {
		switch s.Kind {
		case ir.SAssign:
			visitExpr(s.RHS)
			switch s.LHS.Kind {
			case ir.ERef:
				io.writes[s.LHS.Ref] = true
			case ir.ESlice:
				if s.LHS.X != nil && s.LHS.X.Kind == ir.ERef {
					io.writes[s.LHS.X.Ref] = true
					io.reads[s.LHS.X.Ref] = true
				}
			case ir.EBSlice:
				io.writes["$bs"] = true
			}
		case ir.SSetValid, ir.SSetInvalid:
			io.writes[s.Hdr+".$valid"] = true
		case ir.SShift:
			io.reads["$bs"] = true
			io.writes["$bs"] = true
		case ir.SApplyTable:
			if tbl := tables[s.Table]; tbl != nil {
				for _, k := range tbl.Keys {
					visitExpr(k.Expr)
					if k.Expr.Kind == ir.EBSlice || k.Expr.Kind == ir.EBValid {
						io.reads["$bs"] = true
					}
				}
				for _, an := range tbl.Actions {
					if act := actions[an]; act != nil {
						for _, as := range act.Body {
							visit(as)
						}
					}
				}
			}
		}
		visitExpr(s.Cond)
		for _, t := range s.Then {
			visit(t)
		}
		for _, t := range s.Else {
			visit(t)
		}
		for _, c := range s.Cases {
			for _, t := range c.Body {
				visit(t)
			}
		}
	}
	visit(s)
	return io
}

func (io *stmtIO) readsEgressOnly() bool {
	for r := range io.reads {
		if egressOnlyReads[r] {
			return true
		}
	}
	return false
}

func (io *stmtIO) writesIngressOnly() bool {
	for w := range io.writes {
		if ingressOnlyWrites[w] {
			return true
		}
	}
	return false
}

// splitter carries the partitioning state across the recursive CFG walk
// — the paper's two-state FSM generalized to nested control flow: a
// conditional whose branches split across the boundary is duplicated on
// both sides (µP4C "converts control dependencies into data dependencies
// by synthesizing appropriate metadata": the condition's operands become
// bridged metadata).
type splitter struct {
	pl             *mat.Pipeline
	egressWritten  map[string]bool
	egressRead     map[string]bool
	ingressWritten map[string]bool
	err            error
}

// Split partitions a composed pipeline into ingress and egress: every
// statement that reads egress-only metadata — and everything data-
// dependent on it — moves to egress. A statement needing both an
// egress-only read and an ingress-only write is a constraint violation.
func Split(pl *mat.Pipeline) (*Partition, error) {
	sp := &splitter{
		pl:             pl,
		egressWritten:  make(map[string]bool),
		egressRead:     make(map[string]bool),
		ingressWritten: make(map[string]bool),
	}
	ing, egr := sp.split(pl.Stmts, false)
	if sp.err != nil {
		return nil, sp.err
	}
	p := &Partition{Ingress: ing, Egress: egr}
	for r := range sp.egressRead {
		if !sp.ingressWritten[r] {
			continue
		}
		if r == "$bs" || strings.HasSuffix(r, ".$valid") || strings.HasPrefix(r, "$im.") {
			continue
		}
		if d := pl.DeclByPath(r); d != nil && (d.Kind == ir.DeclBits || d.Kind == ir.DeclBool) {
			p.BridgeMeta = append(p.BridgeMeta, r)
		}
	}
	sort.Strings(p.BridgeMeta)
	return p, nil
}

func (sp *splitter) split(ss []*ir.Stmt, force bool) (ing, egr []*ir.Stmt) {
	for _, s := range ss {
		switch s.Kind {
		case ir.SIf, ir.SSwitch:
			condIO := &stmtIO{reads: map[string]bool{}, writes: map[string]bool{}}
			tmp := &ir.Stmt{Kind: ir.SIf, Cond: s.Cond}
			*condIO = *ioOfStmt(tmp, nil, nil)
			forceInner := force || condIO.readsEgressOnly()
			var ti, te, ei, ee []*ir.Stmt
			var caseSplits [][2][]*ir.Stmt
			if s.Kind == ir.SIf {
				ti, te = sp.split(s.Then, forceInner)
				ei, ee = sp.split(s.Else, forceInner)
			} else {
				for _, c := range s.Cases {
					ci, ce := sp.split(c.Body, forceInner)
					caseSplits = append(caseSplits, [2][]*ir.Stmt{ci, ce})
				}
			}
			if sp.err != nil {
				return ing, egr
			}
			mark := func(toEgress bool) {
				for r := range condIO.reads {
					if toEgress {
						sp.egressRead[r] = true
					}
				}
			}
			if s.Kind == ir.SIf {
				if len(ti)+len(ei) > 0 {
					ing = append(ing, &ir.Stmt{Kind: ir.SIf, Cond: s.Cond.Clone(), Then: ti, Else: ei})
				}
				if len(te)+len(ee) > 0 {
					egr = append(egr, &ir.Stmt{Kind: ir.SIf, Cond: s.Cond.Clone(), Then: te, Else: ee})
					mark(true)
				}
			} else {
				anyI, anyE := false, false
				iCase := make([]*ir.Case, len(s.Cases))
				eCase := make([]*ir.Case, len(s.Cases))
				for i, c := range s.Cases {
					iCase[i] = &ir.Case{Values: c.Values, Default: c.Default, Body: caseSplits[i][0]}
					eCase[i] = &ir.Case{Values: c.Values, Default: c.Default, Body: caseSplits[i][1]}
					anyI = anyI || len(caseSplits[i][0]) > 0
					anyE = anyE || len(caseSplits[i][1]) > 0
				}
				if anyI {
					ing = append(ing, &ir.Stmt{Kind: ir.SSwitch, Cond: s.Cond.Clone(), Cases: iCase})
				}
				if anyE {
					egr = append(egr, &ir.Stmt{Kind: ir.SSwitch, Cond: s.Cond.Clone(), Cases: eCase})
					mark(true)
				}
			}
		default:
			io := ioOfStmt(s, sp.pl.Tables, sp.pl.Actions)
			toEgress := force || io.readsEgressOnly()
			if !toEgress {
				for r := range io.reads {
					if sp.egressWritten[r] {
						toEgress = true
						break
					}
				}
			}
			if !toEgress {
				for w := range io.writes {
					if sp.egressWritten[w] || sp.egressRead[w] {
						toEgress = true
						break
					}
				}
			}
			if toEgress {
				if io.writesIngressOnly() {
					sp.err = fmt.Errorf("statement both depends on egress-only metadata and writes the output port; V1Model cannot place it (%s)", ir.StmtString(s))
					return ing, egr
				}
				egr = append(egr, s)
				for w := range io.writes {
					sp.egressWritten[w] = true
				}
				for r := range io.reads {
					sp.egressRead[r] = true
				}
			} else {
				ing = append(ing, s)
				for w := range io.writes {
					sp.ingressWritten[w] = true
				}
			}
		}
	}
	return ing, egr
}
