package emitutil

import (
	"strings"
	"testing"

	"microp4/internal/ir"
)

func TestMangle(t *testing.T) {
	cases := map[string]string{
		"l3_i.ipv4_i.ipv4_lpm_tbl": "l3_i_ipv4_i_ipv4_lpm_tbl",
		"$pp":                      "u_pp",
		"a#x":                      "a__x",
		"$hdr.ls.0.label":          "u_hdr_ls_0_label",
	}
	for in, want := range cases {
		if got := Mangle(in); got != want {
			t.Errorf("Mangle(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExprRendering(t *testing.T) {
	cases := []struct {
		e    *ir.Expr
		want string
	}{
		{ir.Const(0x800, 16), "16w0x800"},
		{ir.Ref("nh", 16), "meta.nh"},
		{&ir.Expr{Kind: ir.EBSlice, Off: 96, Width: 16}, "bs_read(96, 16)"},
		{&ir.Expr{Kind: ir.EBValid, Off: 53}, "bs_valid(53)"},
		{&ir.Expr{Kind: ir.EIsValid, Ref: "$hdr.eth"}, "hdr_valid.u_hdr_eth"},
		{&ir.Expr{Kind: ir.EBin, Op: "+", X: ir.Ref("a", 8), Y: ir.Const(1, 8)}, "(meta.a + 8w0x1)"},
		{&ir.Expr{Kind: ir.EUn, Op: "cast", Width: 32, X: ir.Ref("a", 8)}, "(bit<32>)meta.a"},
		{&ir.Expr{Kind: ir.ESlice, X: ir.Ref("a", 32), Hi: 7, Lo: 0}, "meta.a[7:0]"},
		{ir.BoolConst(true), "true"},
	}
	for _, c := range cases {
		if got := Expr(c.e); got != c.want {
			t.Errorf("Expr(%s) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestStmtsRendering(t *testing.T) {
	out := Stmts([]*ir.Stmt{
		{Kind: ir.SAssign, LHS: ir.Ref("a", 8), RHS: ir.Const(1, 8)},
		{Kind: ir.SIf, Cond: ir.BoolConst(true),
			Then: []*ir.Stmt{{Kind: ir.SExit}},
			Else: []*ir.Stmt{{Kind: ir.SShift, Off: 10, Amt: -2}}},
		{Kind: ir.SApplyTable, Table: "x.t"},
	}, 0)
	for _, want := range []string{"meta.a = 8w0x1;", "if (true) {", "exit;", "bs_shift(10, -2);", "x_t.apply();"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered statements missing %q:\n%s", want, out)
		}
	}
}

func TestTableAndAction(t *testing.T) {
	tbl := &ir.Table{
		Name:    "m.t",
		Keys:    []ir.Key{{Expr: ir.Ref("m.k", 16), MatchKind: "lpm"}},
		Actions: []string{"m.a"},
		Default: &ir.ActionCall{Name: "m.a"},
		Entries: []ir.Entry{{}},
	}
	out := Table(tbl)
	for _, want := range []string{"table m_t", "meta.m_k : lpm;", "m_a;", "default_action = m_a;", "1 const entries"} {
		if !strings.Contains(out, want) {
			t.Errorf("table rendering missing %q:\n%s", want, out)
		}
	}
	act := &ir.Action{Name: "m.a", Params: []ir.Param{{Name: "p", Width: 9}},
		Body: []*ir.Stmt{{Kind: ir.SAssign, LHS: ir.Ref("$im.out_port", 9), RHS: ir.Ref("m.a#p", 9)}}}
	aout := Action(act)
	if !strings.Contains(aout, "action m_a(bit<9> m_a__p)") {
		t.Errorf("action rendering:\n%s", aout)
	}
}

func TestSortedNames(t *testing.T) {
	tables := map[string]*ir.Table{"b": {}, "a": {}, "c": {}}
	got := SortedTableNames(tables)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedTableNames = %v", got)
	}
	actions := map[string]*ir.Action{"z": {}, "y": {}}
	if names := SortedActionNames(actions); names[0] != "y" {
		t.Errorf("SortedActionNames = %v", names)
	}
}
