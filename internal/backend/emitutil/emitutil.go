// Package emitutil renders µP4-IR fragments as P4-like source text,
// shared by the V1Model and TNA backends' code generators.
package emitutil

import (
	"fmt"
	"sort"
	"strings"

	"microp4/internal/ir"
)

// Mangle turns a composed storage path into a P4-safe identifier.
func Mangle(path string) string {
	r := strings.NewReplacer(".", "_", "$", "u_", "#", "__", "[", "_", "]", "_")
	return r.Replace(path)
}

// Expr renders an IR expression.
func Expr(e *ir.Expr) string {
	if e == nil {
		return "/*nil*/"
	}
	switch e.Kind {
	case ir.EConst:
		if e.Bool {
			if e.Value != 0 {
				return "true"
			}
			return "false"
		}
		if e.Width > 0 {
			return fmt.Sprintf("%dw0x%X", e.Width, e.Value)
		}
		return fmt.Sprintf("%d", e.Value)
	case ir.ERef:
		return "meta." + Mangle(e.Ref)
	case ir.EIsValid:
		return "hdr_valid." + Mangle(e.Ref)
	case ir.EBSlice:
		return fmt.Sprintf("bs_read(%d, %d)", e.Off, e.Width)
	case ir.EBValid:
		return fmt.Sprintf("bs_valid(%d)", e.Off)
	case ir.EBin:
		return fmt.Sprintf("(%s %s %s)", Expr(e.X), e.Op, Expr(e.Y))
	case ir.EUn:
		if e.Op == "cast" {
			return fmt.Sprintf("(bit<%d>)%s", e.Width, Expr(e.X))
		}
		return e.Op + Expr(e.X)
	case ir.ESlice:
		return fmt.Sprintf("%s[%d:%d]", Expr(e.X), e.Hi, e.Lo)
	}
	return "/*?*/"
}

// Stmts renders a statement list with indentation.
func Stmts(ss []*ir.Stmt, indent int) string {
	var b strings.Builder
	for _, s := range ss {
		writeStmt(&b, s, indent)
	}
	return b.String()
}

func writeStmt(b *strings.Builder, s *ir.Stmt, indent int) {
	in := strings.Repeat("    ", indent)
	switch s.Kind {
	case ir.SAssign:
		fmt.Fprintf(b, "%s%s = %s;\n", in, Expr(s.LHS), Expr(s.RHS))
	case ir.SIf:
		fmt.Fprintf(b, "%sif (%s) {\n", in, Expr(s.Cond))
		b.WriteString(Stmts(s.Then, indent+1))
		if len(s.Else) > 0 {
			fmt.Fprintf(b, "%s} else {\n", in)
			b.WriteString(Stmts(s.Else, indent+1))
		}
		fmt.Fprintf(b, "%s}\n", in)
	case ir.SSwitch:
		fmt.Fprintf(b, "%sswitch (%s) {\n", in, Expr(s.Cond))
		for _, c := range s.Cases {
			if c.Default {
				fmt.Fprintf(b, "%s  default: {\n", in)
			} else {
				fmt.Fprintf(b, "%s  case %v: {\n", in, c.Values)
			}
			b.WriteString(Stmts(c.Body, indent+1))
			fmt.Fprintf(b, "%s  }\n", in)
		}
		fmt.Fprintf(b, "%s}\n", in)
	case ir.SApplyTable:
		fmt.Fprintf(b, "%s%s.apply();\n", in, Mangle(s.Table))
	case ir.SSetValid:
		fmt.Fprintf(b, "%shdr_valid.%s = true;\n", in, Mangle(s.Hdr))
	case ir.SSetInvalid:
		fmt.Fprintf(b, "%shdr_valid.%s = false;\n", in, Mangle(s.Hdr))
	case ir.SShift:
		fmt.Fprintf(b, "%sbs_shift(%d, %d);\n", in, s.Off, s.Amt)
	case ir.SExit:
		fmt.Fprintf(b, "%sexit;\n", in)
	default:
		fmt.Fprintf(b, "%s/* %s */\n", in, s.Kind)
	}
}

// Table renders a table declaration.
func Table(t *ir.Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "    table %s {\n", Mangle(t.Name))
	if len(t.Keys) > 0 {
		b.WriteString("        key = {\n")
		for _, k := range t.Keys {
			fmt.Fprintf(&b, "            %s : %s;\n", Expr(k.Expr), k.MatchKind)
		}
		b.WriteString("        }\n")
	}
	b.WriteString("        actions = {\n")
	for _, a := range t.Actions {
		fmt.Fprintf(&b, "            %s;\n", Mangle(a))
	}
	b.WriteString("        }\n")
	if t.Default != nil {
		fmt.Fprintf(&b, "        default_action = %s;\n", Mangle(t.Default.Name))
	}
	if len(t.Entries) > 0 {
		fmt.Fprintf(&b, "        // %d const entries synthesized by µP4C\n", len(t.Entries))
	}
	b.WriteString("    }\n")
	return b.String()
}

// Action renders an action declaration.
func Action(a *ir.Action) string {
	var b strings.Builder
	var params []string
	for _, p := range a.Params {
		params = append(params, fmt.Sprintf("bit<%d> %s", p.Width, Mangle(a.Name+"#"+p.Name)))
	}
	fmt.Fprintf(&b, "    action %s(%s) {\n", Mangle(a.Name), strings.Join(params, ", "))
	b.WriteString(Stmts(a.Body, 2))
	b.WriteString("    }\n")
	return b.String()
}

// SortedTableNames returns table names sorted for stable output.
func SortedTableNames(tables map[string]*ir.Table) []string {
	out := make([]string, 0, len(tables))
	for n := range tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SortedActionNames returns action names sorted for stable output.
func SortedActionNames(actions map[string]*ir.Action) []string {
	out := make([]string, 0, len(actions))
	for n := range actions {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
