// Package ast defines the abstract syntax tree for the µP4 dialect of P4.
//
// The dialect follows the surface syntax used throughout the µP4 paper
// (SIGCOMM 2020, Figs. 1, 8, 10, 12, 13): header and struct declarations,
// parsers written as finite state machines with select transitions,
// controls with actions and match-action tables, and µP4's additions —
// program packages implementing the Unicast/Multicast/Orchestration
// interfaces, module prototypes, and logical externs (pkt, im_t,
// extractor, emitter, in_buf, out_buf, mc_buf, mc_engine).
package ast

import "fmt"

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Node is implemented by every AST node.
type Node interface {
	Pos() Pos
}

// ----------------------------------------------------------------------------
// Types

// Type is the interface implemented by all type expressions.
type Type interface {
	Node
	typeNode()
	String() string
}

// BitType is bit<N>.
type BitType struct {
	P     Pos
	Width int
}

// BoolType is bool.
type BoolType struct {
	P Pos
}

// VarbitType is varbit<N> — a variable-length field with a maximum width.
type VarbitType struct {
	P        Pos
	MaxWidth int
}

// NamedType refers to a header, struct, typedef, extern, or module name.
type NamedType struct {
	P    Pos
	Name string
}

// StackType is a header stack such as label_h[4].
type StackType struct {
	P    Pos
	Elem Type
	Size int
}

func (t *BitType) Pos() Pos    { return t.P }
func (t *BoolType) Pos() Pos   { return t.P }
func (t *VarbitType) Pos() Pos { return t.P }
func (t *NamedType) Pos() Pos  { return t.P }
func (t *StackType) Pos() Pos  { return t.P }

func (*BitType) typeNode()    {}
func (*BoolType) typeNode()   {}
func (*VarbitType) typeNode() {}
func (*NamedType) typeNode()  {}
func (*StackType) typeNode()  {}

func (t *BitType) String() string    { return fmt.Sprintf("bit<%d>", t.Width) }
func (t *BoolType) String() string   { return "bool" }
func (t *VarbitType) String() string { return fmt.Sprintf("varbit<%d>", t.MaxWidth) }
func (t *NamedType) String() string  { return t.Name }
func (t *StackType) String() string  { return fmt.Sprintf("%s[%d]", t.Elem, t.Size) }

// ----------------------------------------------------------------------------
// Top-level declarations

// SourceFile is a parsed µP4 source file.
type SourceFile struct {
	Name  string // file name, for diagnostics
	Decls []Decl
}

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

// Field is a header or struct field.
type Field struct {
	P    Pos
	Name string
	T    Type
}

// HeaderDecl declares a header type.
type HeaderDecl struct {
	P      Pos
	Name   string
	Fields []Field
}

// StructDecl declares a struct type.
type StructDecl struct {
	P      Pos
	Name   string
	Fields []Field
}

// TypedefDecl declares a type alias.
type TypedefDecl struct {
	P    Pos
	Name string
	Base Type
}

// ConstDecl declares a compile-time constant.
type ConstDecl struct {
	P     Pos
	Name  string
	T     Type
	Value Expr
}

// Direction is a parameter direction.
type Direction int

// Parameter directions. DirNone is used for extern-typed parameters such
// as pkt and im_t, which are passed by reference.
const (
	DirNone Direction = iota
	DirIn
	DirOut
	DirInOut
)

func (d Direction) String() string {
	switch d {
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	case DirInOut:
		return "inout"
	}
	return ""
}

// Param is a parser, control, action, or module parameter.
type Param struct {
	P    Pos
	Dir  Direction
	T    Type
	Name string
}

// ModuleProtoDecl is a module prototype such as
//
//	L3(pkt p, im_t im, out bit<16> nh, inout bit<16> type);
//
// It declares the callable signature of another µP4 program (paper §4,
// Fig. 8 circled 1 and 3).
type ModuleProtoDecl struct {
	P      Pos
	Name   string
	Params []Param
}

// ProgramDecl is a µP4 program package:
//
//	program ModularRouter : implements Unicast { parser P ... control C ... control D ... }
type ProgramDecl struct {
	P         Pos
	Name      string
	Interface string // Unicast, Multicast, or Orchestration
	Parser    *ParserDecl
	Controls  []*ControlDecl // control blocks; last emit-only one is the deparser
}

// InstantiationDecl is the main package instantiation:
//
//	ModularRouter(P, C, D) main;
type InstantiationDecl struct {
	P        Pos
	TypeName string
	Args     []string
	Name     string
}

func (d *HeaderDecl) Pos() Pos        { return d.P }
func (d *StructDecl) Pos() Pos        { return d.P }
func (d *TypedefDecl) Pos() Pos       { return d.P }
func (d *ConstDecl) Pos() Pos         { return d.P }
func (d *ModuleProtoDecl) Pos() Pos   { return d.P }
func (d *ProgramDecl) Pos() Pos       { return d.P }
func (d *InstantiationDecl) Pos() Pos { return d.P }

func (*HeaderDecl) declNode()        {}
func (*StructDecl) declNode()        {}
func (*TypedefDecl) declNode()       {}
func (*ConstDecl) declNode()         {}
func (*ModuleProtoDecl) declNode()   {}
func (*ProgramDecl) declNode()       {}
func (*InstantiationDecl) declNode() {}

// ----------------------------------------------------------------------------
// Parser blocks

// ParserDecl is a parser block: an FSM of states.
type ParserDecl struct {
	P      Pos
	Name   string
	Params []Param
	Locals []*VarDecl
	States []*State
}

func (d *ParserDecl) Pos() Pos { return d.P }

// State is a single parser state.
type State struct {
	P     Pos
	Name  string
	Stmts []Stmt
	Trans Transition // nil means implicit reject
}

func (s *State) Pos() Pos { return s.P }

// Transition is a parser state transition.
type Transition interface {
	Node
	transNode()
}

// DirectTransition is "transition next_state;".
type DirectTransition struct {
	P      Pos
	Target string
}

// SelectTransition is "transition select(e1, e2) { ... }".
type SelectTransition struct {
	P     Pos
	Exprs []Expr
	Cases []SelectCase
}

// SelectCase is one arm of a select transition. A nil Values slice with
// IsDefault set is the default arm. Each value may carry a mask (v &&& m).
type SelectCase struct {
	P         Pos
	Values    []Expr
	Masks     []Expr // nil entries mean exact match
	IsDefault bool
	Target    string
}

func (t *DirectTransition) Pos() Pos { return t.P }
func (t *SelectTransition) Pos() Pos { return t.P }

func (*DirectTransition) transNode() {}
func (*SelectTransition) transNode() {}

// Builtin parser state names.
const (
	StateStart  = "start"
	StateAccept = "accept"
	StateReject = "reject"
)

// ----------------------------------------------------------------------------
// Control blocks

// ControlDecl is a control block: local declarations and an apply block.
type ControlDecl struct {
	P       Pos
	Name    string
	Params  []Param
	Locals  []ControlLocal
	Apply   *BlockStmt
	IsDecap bool // internal marker: emit-only deparser
}

func (d *ControlDecl) Pos() Pos { return d.P }

// ControlLocal is a declaration local to a control block.
type ControlLocal interface {
	Node
	controlLocalNode()
}

// VarDecl declares a local variable (also used in parsers).
type VarDecl struct {
	P    Pos
	T    Type
	Name string
	Init Expr // may be nil
}

// InstDecl instantiates a module or extern: "L3() l3_i;" or "mc_engine() mce;".
type InstDecl struct {
	P        Pos
	TypeName string
	Args     []Expr
	Name     string
}

// ActionDecl declares an action.
type ActionDecl struct {
	P      Pos
	Name   string
	Params []Param
	Body   *BlockStmt
}

// TableKey is one key element of a table.
type TableKey struct {
	P         Pos
	Expr      Expr
	MatchKind string // exact, lpm, ternary, range
}

// ActionRef names an action with optional bound arguments (default_action).
type ActionRef struct {
	P    Pos
	Name string
	Args []Expr
}

// TableEntry is a const entry.
type TableEntry struct {
	P      Pos
	Keys   []KeySet
	Action ActionRef
}

// KeySet is one key expression in a const entry: a value, value&&&mask, or "_".
type KeySet struct {
	P        Pos
	DontCare bool
	Value    Expr
	Mask     Expr // nil for exact
}

// TableDecl declares a match-action table.
type TableDecl struct {
	P             Pos
	Name          string
	Keys          []TableKey
	Actions       []ActionRef
	DefaultAction *ActionRef
	Entries       []TableEntry
	Size          int
}

func (d *VarDecl) Pos() Pos    { return d.P }
func (d *InstDecl) Pos() Pos   { return d.P }
func (d *ActionDecl) Pos() Pos { return d.P }
func (d *TableDecl) Pos() Pos  { return d.P }

func (*VarDecl) controlLocalNode()    {}
func (*InstDecl) controlLocalNode()   {}
func (*ActionDecl) controlLocalNode() {}
func (*TableDecl) controlLocalNode()  {}

// ----------------------------------------------------------------------------
// Statements

// Stmt is a statement.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is { stmts }.
type BlockStmt struct {
	P     Pos
	Stmts []Stmt
}

// AssignStmt is lhs = rhs;.
type AssignStmt struct {
	P   Pos
	LHS Expr
	RHS Expr
}

// CallStmt is a method call used as a statement, e.g. tbl.apply();.
type CallStmt struct {
	P    Pos
	Call *CallExpr
}

// IfStmt is if (cond) { } else { }.
type IfStmt struct {
	P    Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
}

// SwitchCase is one arm of a switch statement.
type SwitchCase struct {
	P         Pos
	Values    []Expr
	IsDefault bool
	Body      *BlockStmt
}

// SwitchStmt is switch (expr) { v: {...} ... }.
type SwitchStmt struct {
	P     Pos
	Expr  Expr
	Cases []SwitchCase
}

// VarDeclStmt wraps a variable declaration appearing inside a block.
type VarDeclStmt struct {
	Decl *VarDecl
}

// ExitStmt terminates pipeline processing for this packet.
type ExitStmt struct {
	P Pos
}

// EmptyStmt is a bare semicolon.
type EmptyStmt struct {
	P Pos
}

func (s *BlockStmt) Pos() Pos   { return s.P }
func (s *AssignStmt) Pos() Pos  { return s.P }
func (s *CallStmt) Pos() Pos    { return s.P }
func (s *IfStmt) Pos() Pos      { return s.P }
func (s *SwitchStmt) Pos() Pos  { return s.P }
func (s *VarDeclStmt) Pos() Pos { return s.Decl.P }
func (s *ExitStmt) Pos() Pos    { return s.P }
func (s *EmptyStmt) Pos() Pos   { return s.P }

func (*BlockStmt) stmtNode()   {}
func (*AssignStmt) stmtNode()  {}
func (*CallStmt) stmtNode()    {}
func (*IfStmt) stmtNode()      {}
func (*SwitchStmt) stmtNode()  {}
func (*VarDeclStmt) stmtNode() {}
func (*ExitStmt) stmtNode()    {}
func (*EmptyStmt) stmtNode()   {}

// ----------------------------------------------------------------------------
// Expressions

// Expr is an expression.
type Expr interface {
	Node
	exprNode()
}

// Ident is a bare identifier.
type Ident struct {
	P    Pos
	Name string
}

// IntLit is an integer literal, optionally width-annotated (8w255).
type IntLit struct {
	P     Pos
	Width int // 0 means unsized
	Value uint64
}

// BoolLit is true or false.
type BoolLit struct {
	P     Pos
	Value bool
}

// FieldExpr is x.name.
type FieldExpr struct {
	P    Pos
	X    Expr
	Name string
}

// IndexExpr is stack[i] with a constant index, or the pseudo-indices
// next/last handled as FieldExpr.
type IndexExpr struct {
	P     Pos
	X     Expr
	Index Expr
}

// SliceExpr is x[hi:lo] bit slicing.
type SliceExpr struct {
	P      Pos
	X      Expr
	Hi, Lo int
}

// CallExpr is a function or method call; Fun is an Ident or FieldExpr.
type CallExpr struct {
	P    Pos
	Fun  Expr
	Args []Expr
}

// BinaryExpr is x op y.
type BinaryExpr struct {
	P    Pos
	Op   string
	X, Y Expr
}

// UnaryExpr is op x.
type UnaryExpr struct {
	P  Pos
	Op string
	X  Expr
}

// CastExpr is (bit<16>) x.
type CastExpr struct {
	P Pos
	T Type
	X Expr
}

func (e *Ident) Pos() Pos      { return e.P }
func (e *IntLit) Pos() Pos     { return e.P }
func (e *BoolLit) Pos() Pos    { return e.P }
func (e *FieldExpr) Pos() Pos  { return e.P }
func (e *IndexExpr) Pos() Pos  { return e.P }
func (e *SliceExpr) Pos() Pos  { return e.P }
func (e *CallExpr) Pos() Pos   { return e.P }
func (e *BinaryExpr) Pos() Pos { return e.P }
func (e *UnaryExpr) Pos() Pos  { return e.P }
func (e *CastExpr) Pos() Pos   { return e.P }

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*BoolLit) exprNode()    {}
func (*FieldExpr) exprNode()  {}
func (*IndexExpr) exprNode()  {}
func (*SliceExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CastExpr) exprNode()   {}
