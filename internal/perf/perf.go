// Package perf is the benchmark-trajectory harness behind `up4bench
// -perf` and the CI regression gate. It measures packet-processing
// throughput (ns/packet, packets/second, allocations/packet) of the
// behavioral target across the Table 1 programs and engine modes, and
// emits/compares a stable JSON report (BENCH_5.json) so regressions
// show up as CI failures rather than folklore.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"microp4"
	"microp4/internal/lib"
	"microp4/internal/midend"
	"microp4/internal/pkt"
	"microp4/internal/sim"
)

// Schema identifies the report layout; bump on incompatible change.
const Schema = "up4bench/perf/v1"

// Result is one measured (program, engine, mode) cell.
type Result struct {
	Program      string  `json:"program"`
	Engine       string  `json:"engine"` // "compiled" | "reference"
	Mode         string  `json:"mode"`   // "serial" | "batch" | "parallel"
	Workers      int     `json:"workers"`
	Packets      int64   `json:"packets"`
	NsPerPkt     float64 `json:"ns_per_pkt"`
	PPS          float64 `json:"pps"`
	AllocsPerPkt float64 `json:"allocs_per_pkt"`
}

// Key is the stable identity of a result row, used to join baseline
// and current reports.
func (r Result) Key() string {
	return fmt.Sprintf("%s/%s/%s/w%d", r.Program, r.Engine, r.Mode, r.Workers)
}

// Report is the full benchmark trajectory artifact.
type Report struct {
	Schema  string   `json:"schema"`
	Go      string   `json:"go"`
	Cores   int      `json:"cores"`
	Results []Result `json:"results"`
}

// Load reads a report from disk and checks its schema.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// Write serializes a report to disk, sorted for stable diffs.
func (r *Report) Write(path string) error {
	sort.Slice(r.Results, func(i, j int) bool {
		return r.Results[i].Key() < r.Results[j].Key()
	})
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// allocSlack absorbs measurement noise in allocations/packet: one-time
// lazy growth (map buckets, pool warm-up on a new goroutine) amortized
// over a short run shows up as a small fraction per packet even on a
// zero-alloc path.
const allocSlack = 0.05

// Compare joins current results against a baseline and reports the
// rows that regressed by more than factor.
//
// ns/packet gates only on serial and batch rows: parallel throughput
// depends on the machine's core count, which differs between the
// baseline recorder and the CI runner. Allocations/packet gate on
// EVERY row, including parallel — allocation counts are
// machine-independent, and a zero-alloc baseline must stay zero-alloc
// (within allocSlack) in all modes.
func Compare(baseline, current *Report, factor float64) []string {
	cur := make(map[string]Result, len(current.Results))
	for _, r := range current.Results {
		cur[r.Key()] = r
	}
	var violations []string
	for _, b := range baseline.Results {
		c, ok := cur[b.Key()]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from current run", b.Key()))
			continue
		}
		if b.Mode != "parallel" && b.NsPerPkt > 0 && c.NsPerPkt > factor*b.NsPerPkt {
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f ns/pkt vs baseline %.0f (>%.1fx)", b.Key(), c.NsPerPkt, b.NsPerPkt, factor))
		}
		if b.AllocsPerPkt <= allocSlack {
			if c.AllocsPerPkt > allocSlack {
				violations = append(violations, fmt.Sprintf(
					"%s: %.2f allocs/pkt vs zero-alloc baseline", b.Key(), c.AllocsPerPkt))
			}
		} else if c.AllocsPerPkt > factor*b.AllocsPerPkt {
			violations = append(violations, fmt.Sprintf(
				"%s: %.2f allocs/pkt vs baseline %.2f (>%.1fx)", b.Key(), c.AllocsPerPkt, b.AllocsPerPkt, factor))
		}
	}
	return violations
}

// Traffic builds the standard benchmark packet mix (one routable IPv4
// TCP packet, one routable IPv6 packet) — parseable by every Table 1
// program.
func Traffic() [][]byte {
	return [][]byte{
		pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6, Src: 0xC0A80002, Dst: 0x0A000001}).
			TCP(1, 80).Payload(make([]byte, 64)).Bytes(),
		pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv6).
			IPv6(pkt.IPv6Opts{NextHdr: 59, HopLimit: 9, DstHi: lib.NetV6Hi, DstLo: 1}).
			Payload(make([]byte, 64)).Bytes(),
	}
}

// FlowChurn builds the stateful benchmark mix for P9: 2*flows routable
// IPv4 TCP packets over `flows` distinct connections, alternating the
// forward (NetA→NetB) and return-shaped (NetB→NetA) tuples. Replayed in
// a loop with an advancing clock, the mix exercises the flowtable hot
// path end to end: hash lookup on every packet, first-cycle learns
// through the free list, steady-state refreshes that re-file timer-wheel
// references, and the per-packet wheel advance that ages entries out.
func FlowChurn(flows int) [][]byte {
	out := make([][]byte, 0, 2*flows)
	for i := 0; i < flows; i++ {
		fwd := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6,
				Src: uint32(lib.NetA) | uint32(i+1), Dst: uint32(lib.NetB) | uint32(i+1)}).
			TCP(uint16(1000+i), 443).Payload(make([]byte, 64)).Bytes()
		rev := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6,
				Src: uint32(lib.NetB) | uint32(i+1), Dst: uint32(lib.NetA) | uint32(i+1)}).
			TCP(443, uint16(1000+i)).Payload(make([]byte, 64)).Bytes()
		out = append(out, fwd, rev)
	}
	return out
}

// EdgeMix builds the carrier-edge benchmark mix for P10: per flow, a
// NAT64 outbound IPv6 packet (learns/refreshes the translation entry),
// its IPv4 reply toward the pool (reverse flowtable lookup plus the
// v4→v6 header rewrite, which grows the packet), and a tunneled IPv4
// packet terminating at TunDst (decap shrinks the packet). Together
// they keep every P10 stage hot: decap, both NAT64 rewrite directions,
// the flowtable, and both LPM families.
func EdgeMix(flows int) [][]byte {
	out := make([][]byte, 0, 3*flows)
	for i := 0; i < flows; i++ {
		sp := uint16(1000 + i)
		v6out := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv6).
			IPv6(pkt.IPv6Opts{NextHdr: 6, HopLimit: 64, PayloadLen: 84,
				SrcHi: lib.V6ClientHi, SrcLo: lib.V6ClientLo,
				DstHi: lib.Nat64PfxHi, DstLo: uint64(lib.NetB) | 1}).
			TCP(sp, 443).Payload(make([]byte, 64)).Bytes()
		v4rep := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6,
				Src: uint32(lib.NetB) | 1, Dst: lib.Nat64Pool}).
			TCP(443, sp).Payload(make([]byte, 64)).Bytes()
		inner := pkt.NewBuilder().Ethernet(0, 0, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6,
				Src: uint32(lib.NetA) | uint32(i+1), Dst: uint32(lib.NetB) | 2,
				TotalLen: 104}).
			TCP(sp, 80).Payload(make([]byte, 64)).Bytes()[14:]
		tun := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 32, Protocol: 4, Src: 0x08080808, Dst: lib.TunDst,
				TotalLen: uint16(20 + len(inner))}).
			Payload(inner).Bytes()
		out = append(out, v6out, v4rep, tun)
	}
	return out
}

// VipMix builds the load-balancer benchmark mix for P11: `flows`
// distinct client connections to the VIP service (flowtable stick on
// every packet, backend rewrite, full checksum recompute) interleaved
// with one non-VIP passthrough per flow so the upstream path stays
// measured too.
func VipMix(flows int) [][]byte {
	out := make([][]byte, 0, 2*flows)
	for i := 0; i < flows; i++ {
		vip := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6,
				Src: 0x0A000000 | uint32(i+1), Dst: lib.VipAddr}).
			TCP(uint16(2000+i), lib.VipPort).Payload(make([]byte, 64)).Bytes()
		plain := pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
			IPv4(pkt.IPv4Opts{TTL: 64, Protocol: 6,
				Src: 0x0A000000 | uint32(i+1), Dst: uint32(lib.NetB) | 7}).
			TCP(uint16(2000+i), 8443).Payload(make([]byte, 64)).Bytes()
		out = append(out, vip, plain)
	}
	return out
}

// TrafficFor selects the benchmark mix for a program: the flow-churn
// mix for P9, the carrier-edge mix for P10, the VIP mix for P11 (all
// three have the flowtable on their hot path), and the standard
// stateless mix for everything else.
func TrafficFor(prog string) [][]byte {
	switch prog {
	case "P9":
		return FlowChurn(64)
	case "P10":
		return EdgeMix(32)
	case "P11":
		return VipMix(64)
	}
	return Traffic()
}

// Engines builds both packet engines for one Table 1 program with the
// standard rule set installed (the same construction bench_test uses).
func Engines(prog string) (*sim.Exec, *sim.Interp, error) {
	main, mods, err := lib.CompileProgram(prog)
	if err != nil {
		return nil, nil, err
	}
	res, err := midend.Build(main, mods...)
	if err != nil {
		return nil, nil, err
	}
	tables := sim.NewTables()
	lib.InstallDefaultRules(tables, prog, false)
	return sim.NewExec(res.Pipeline, tables), sim.NewInterp(res.Linked, tables), nil
}

// Switch builds a public-API switch for one Table 1 program with the
// standard rule set installed.
func Switch(prog string) (*microp4.Switch, error) {
	m, err := lib.Program(prog)
	if err != nil {
		return nil, err
	}
	src, err := lib.Source(m.MainFile)
	if err != nil {
		return nil, err
	}
	mainMod, err := microp4.CompileModule(m.MainFile, src)
	if err != nil {
		return nil, err
	}
	var mods []*microp4.Module
	for _, name := range m.Modules {
		msrc, err := lib.ModuleSource(name)
		if err != nil {
			return nil, err
		}
		mod, err := microp4.CompileModule(name+".up4", msrc)
		if err != nil {
			return nil, err
		}
		mods = append(mods, mod)
	}
	dp, err := microp4.Build(mainMod, mods...)
	if err != nil {
		return nil, err
	}
	sw := dp.NewSwitch()
	installRules(sw, prog)
	return sw, nil
}

// installRules replays the lib rule set through the public Switch API.
func installRules(sw *microp4.Switch, prog string) {
	t := sim.NewTables()
	lib.InstallDefaultRules(t, prog, false)
	for _, name := range t.TableNames() {
		for _, e := range t.Entries(name) {
			keys := make([]microp4.Key, len(e.Keys))
			for i, k := range e.Keys {
				switch {
				case k.DontCare:
					keys[i] = microp4.Any()
				case k.HasMask:
					keys[i] = microp4.Ternary(k.Value, k.Mask)
				case k.PrefixLen > 0:
					keys[i] = microp4.LPM(k.Value, k.PrefixLen)
				default:
					keys[i] = microp4.Exact(k.Value)
				}
			}
			sw.AddEntry(name, keys, e.Action, e.Args...)
		}
	}
}

// Measure runs fn — which must process `batch` packets per call — in a
// timed loop for roughly dur and returns ns/packet, packets/second,
// and heap allocations/packet (global Mallocs delta, so run nothing
// else concurrently).
func Measure(dur time.Duration, batch int, fn func() error) (Result, error) {
	// Warm up: one call outside the measurement settles pools, lazy
	// metric series, and slot compilation.
	if err := fn(); err != nil {
		return Result{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	var packets int64
	for time.Since(start) < dur {
		if err := fn(); err != nil {
			return Result{}, err
		}
		packets += int64(batch)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if packets == 0 {
		return Result{}, fmt.Errorf("no packets processed")
	}
	ns := float64(elapsed.Nanoseconds()) / float64(packets)
	return Result{
		Packets:      packets,
		NsPerPkt:     ns,
		PPS:          1e9 / ns,
		AllocsPerPkt: float64(after.Mallocs-before.Mallocs) / float64(packets),
	}, nil
}

// RunSuite measures every (program, engine, mode) cell for roughly dur
// per cell and returns the trajectory report. Modes: compiled and
// reference engines serially (sim-level, metrics off), plus the public
// Switch's ProcessBatch with one worker ("batch") and with `workers`
// goroutines ("parallel").
func RunSuite(programs []string, dur time.Duration, workers int, progress func(string)) (*Report, error) {
	if progress == nil {
		progress = func(string) {}
	}
	rep := &Report{
		Schema: Schema,
		Go:     runtime.Version(),
		Cores:  runtime.NumCPU(),
	}
	const batchSize = 256
	for _, prog := range programs {
		traffic := TrafficFor(prog)
		batch := make([][]byte, batchSize)
		for i := range batch {
			batch[i] = traffic[i%len(traffic)]
		}
		exec, interp, err := Engines(prog)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", prog, err)
		}

		// The serial cells advance the virtual clock one tick per packet
		// (the same cadence the Switch batch path uses), so P9's timer
		// wheel ages entries during the measurement instead of freezing
		// at tick zero. The clock runs on across both serial cells — the
		// engines share one flow table, and rewinding it would stall the
		// wheel for the second cell.
		progress(prog + " compiled/serial")
		var seq int
		var clock uint64
		r, err := Measure(dur, len(traffic), func() error {
			for range traffic {
				clock++
				res, err := exec.Process(traffic[seq%len(traffic)],
					sim.Metadata{InPort: 1, InTimestamp: clock})
				if err != nil {
					return err
				}
				res.Release()
				seq++
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s compiled: %v", prog, err)
		}
		r.Program, r.Engine, r.Mode, r.Workers = prog, "compiled", "serial", 1
		rep.Results = append(rep.Results, r)

		progress(prog + " reference/serial")
		seq = 0
		r, err = Measure(dur, len(traffic), func() error {
			for range traffic {
				clock++
				if _, err := interp.Process(traffic[seq%len(traffic)],
					sim.Metadata{InPort: 1, InTimestamp: clock}); err != nil {
					return err
				}
				seq++
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s reference: %v", prog, err)
		}
		r.Program, r.Engine, r.Mode, r.Workers = prog, "reference", "serial", 1
		rep.Results = append(rep.Results, r)

		for _, mode := range []struct {
			name    string
			workers int
		}{{"batch", 1}, {"parallel", workers}} {
			sw, err := Switch(prog)
			if err != nil {
				return nil, fmt.Errorf("%s switch: %v", prog, err)
			}
			sw.SetWorkers(mode.workers)
			progress(fmt.Sprintf("%s compiled/%s w%d", prog, mode.name, mode.workers))
			var results []microp4.BatchResult
			r, err = Measure(dur, batchSize, func() error {
				results = sw.ProcessBatchInto(batch, 1, results)
				var ferr error
				for i := range results {
					if results[i].Err != nil {
						ferr = results[i].Err
					}
					results[i].Release()
				}
				sw.Digests() // drain so the slice cannot grow unbounded
				return ferr
			})
			if err != nil {
				return nil, fmt.Errorf("%s %s: %v", prog, mode.name, err)
			}
			r.Program, r.Engine, r.Mode, r.Workers = prog, "compiled", mode.name, mode.workers
			rep.Results = append(rep.Results, r)
		}

		// The cutover cell (P9 only, the stateful program upgrades care
		// about): worst-case packet stall across repeated generation
		// swaps — the first packet after CutOver pays for the atomic
		// adoption plus the flow-state carry.
		if prog == "P9" {
			progress(prog + " compiled/cutover")
			r, err = MeasureCutover(dur)
			if err != nil {
				return nil, fmt.Errorf("%s cutover: %v", prog, err)
			}
			rep.Results = append(rep.Results, r)
		}
	}
	return rep, nil
}

// cutoverDataplane builds the P9 v2 program (the standard benign
// upgrade target) against the P9 module set.
func cutoverDataplane() (*microp4.Dataplane, error) {
	m, err := lib.Program("P9")
	if err != nil {
		return nil, err
	}
	src, err := lib.Source("up4/p9_fw_v2.up4")
	if err != nil {
		return nil, err
	}
	mainMod, err := microp4.CompileModule("p9_fw_v2.up4", src)
	if err != nil {
		return nil, err
	}
	var mods []*microp4.Module
	for _, name := range m.Modules {
		msrc, err := lib.ModuleSource(name)
		if err != nil {
			return nil, err
		}
		mod, err := microp4.CompileModule(name+".up4", msrc)
		if err != nil {
			return nil, err
		}
		mods = append(mods, mod)
	}
	return microp4.Build(mainMod, mods...)
}

// MeasureCutover measures generation-swap latency on a P9 switch with
// an established flow population: each cycle stages the v2 dataplane
// (off the clock — staging is preparation, not stall), then times
// CutOver plus the first packet processed on the new generation.
// NsPerPkt reports the MAX stall observed (the number an operator
// cares about: the longest any packet waits during an in-service
// upgrade); Packets counts swap cycles; AllocsPerPkt is allocations
// per cycle (the flow-state carry allocates, by design, off the
// steady-state hot path).
func MeasureCutover(dur time.Duration) (Result, error) {
	sw, err := Switch("P9")
	if err != nil {
		return Result{}, err
	}
	for _, p := range FlowChurn(64) {
		if _, err := sw.Process(p, 1); err != nil {
			return Result{}, err
		}
	}
	v2, err := cutoverDataplane()
	if err != nil {
		return Result{}, err
	}
	probe := FlowChurn(1)[1] // a return packet: flowtable hit on the new generation
	cycle := func() (time.Duration, error) {
		if _, err := sw.StageGeneration(v2); err != nil {
			return 0, err
		}
		t0 := time.Now()
		if _, err := sw.CutOver(); err != nil {
			return 0, err
		}
		if _, err := sw.Process(probe, 1); err != nil {
			return 0, err
		}
		return time.Since(t0), nil
	}
	// Warm-up cycles settle pools and the staging path's lazy work.
	for i := 0; i < 3; i++ {
		if _, err := cycle(); err != nil {
			return Result{}, err
		}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var maxStall time.Duration
	var cycles int64
	start := time.Now()
	for time.Since(start) < dur {
		stall, err := cycle()
		if err != nil {
			return Result{}, err
		}
		if stall > maxStall {
			maxStall = stall
		}
		cycles++
	}
	runtime.ReadMemStats(&after)
	if cycles == 0 {
		return Result{}, fmt.Errorf("no cutover cycles completed")
	}
	return Result{
		Program:      "P9",
		Engine:       "compiled",
		Mode:         "cutover",
		Workers:      1,
		Packets:      cycles,
		NsPerPkt:     float64(maxStall.Nanoseconds()),
		PPS:          float64(cycles) / time.Since(start).Seconds(),
		AllocsPerPkt: float64(after.Mallocs-before.Mallocs) / float64(cycles),
	}, nil
}

// Table renders a report as an aligned text table.
func Table(r *Report) string {
	out := fmt.Sprintf("%-8s %-10s %-9s %3s %12s %14s %8s\n",
		"program", "engine", "mode", "w", "ns/pkt", "pps", "allocs")
	for _, res := range r.Results {
		out += fmt.Sprintf("%-8s %-10s %-9s %3d %12.1f %14.0f %8.2f\n",
			res.Program, res.Engine, res.Mode, res.Workers, res.NsPerPkt, res.PPS, res.AllocsPerPkt)
	}
	return out
}
