package issu_test

import (
	"fmt"
	"strings"
	"testing"

	"microp4/internal/ctrlplane"
	"microp4/internal/flow"
	"microp4/internal/issu"
	"microp4/internal/lib"
	"microp4/internal/netsim"
	"microp4/internal/obs"
	"microp4/internal/trace"
)

// The mid-canary kill scenario: the active switch of a replicated pair
// is being upgraded when it dies — sync links dark, upgrade channel
// dark, replicator stopped — in the middle of the shadow canary. The
// coordinator must exhaust its retries, abort the upgrade, and the
// promoted standby must keep passing every flow it replicated:
// in-service upgrade composes with failover instead of fighting it.

// killRig is the scenario's topology: coordinator ↔ (agent wrapping the
// active replicator) ↔ standby, every channel lossy.
type killRig struct {
	n     *netsim.Network
	act   *ctrlplane.Replicator
	sby   *ctrlplane.StandbyAgent
	agent *issu.Agent
	reg   *obs.Registry
	coord *issu.Coordinator
}

func newKillRig(t testing.TB, seed uint64) *killRig {
	t.Helper()
	dp := compileP9(t)
	n := netsim.New(seed)
	rec := trace.NewRecorder(8192)
	n.SetTracing(rec)
	reg := obs.NewRegistry()
	cpm := ctrlplane.NewMetrics(reg)
	ism := issu.NewMetrics(reg)

	actSw := dp.NewSwitch()
	installP9Rules(actSw)
	act := ctrlplane.NewReplicator(n, actSw, ctrlplane.ReplicaConfig{
		Name: "act", SyncPort: syncPort, Seed: seed,
		Metrics: cpm, Tracer: rec, Bus: n.Bus(),
	})
	// The upgrade agent fronts the replicator: upgrade ops peel off on
	// their port, everything else (data and sync frames) flows through.
	agent := issu.NewAgent("act", actSw, issu.AgentConfig{
		UpgradePort: upgradePort, Inner: act,
		Upgrader: issu.UpgraderConfig{Metrics: ism, Tracer: rec, Bus: n.Bus(), Now: n.Now},
	})

	sbySw := dp.NewSwitch()
	act.Bootstrap(sbySw)
	sby := ctrlplane.NewStandbyAgent(n, sbySw, ctrlplane.ReplicaConfig{
		Name: "sby", SyncPort: syncPort, Metrics: cpm, Tracer: rec, Bus: n.Bus(),
	})

	if err := n.AddSwitch("act", agent); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSwitch("sby", sby); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("act", syncPort, "sby", syncPort, chaosLinks); err != nil {
		t.Fatal(err)
	}
	coord, err := issu.NewCoordinator(n, "coord", issu.CoordinatorConfig{
		Seed: seed, CanaryN: 256, Metrics: ism, Tracer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.AddPeer("act", coordPort); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("coord", coordPort, "act", upgradePort, chaosLinks); err != nil {
		t.Fatal(err)
	}
	return &killRig{n: n, act: act, sby: sby, agent: agent, reg: reg, coord: coord}
}

// runMidCanaryKill drives the scenario at one seed and returns its
// deterministic signature.
func runMidCanaryKill(t *testing.T, seed uint64) string {
	t.Helper()
	r := newKillRig(t, seed)
	r.act.Start()

	// Churn: establish the flow population on the active while the
	// replicator streams it to the standby over the lossy sync links.
	const flows = 40
	for i := 0; i < flows; i++ {
		if err := r.n.Inject("act", lib.PortA, flowFwd(i)); err != nil {
			t.Fatal(err)
		}
		if err := r.n.Inject("act", lib.PortB, flowRev(i)); err != nil {
			t.Fatal(err)
		}
		if i%8 == 7 {
			if _, err := r.n.Run(0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := r.n.Run(0); err != nil {
		t.Fatal(err)
	}
	actTbl := r.act.Switch().FlowTable("fs_i.conn")
	var established []int
	for i := 0; i < flows; i++ {
		if e, ok := actTbl.Lookup(flowKey(i)); ok && e.State == flow.StateEstablished {
			established = append(established, i)
		}
	}
	if len(established) < flows*9/10 {
		t.Fatalf("churn established only %d/%d flows", len(established), flows)
	}

	// Start the coordinated upgrade with a canary budget far beyond what
	// the pump will deliver before the kill, and pump data through the
	// active so the canary is genuinely mirroring when it dies.
	var upErr error
	upDone := false
	p := &pump{n: r.n, node: "act", flows: flows, every: 6}
	if err := r.coord.Upgrade("P9v2", v2Main(t), p9Modules(t), func(e error) {
		upErr, upDone = e, true
		p.stop()
	}); err != nil {
		t.Fatal(err)
	}
	p.start()

	// The kill watch: the moment the canary has mirrored a few packets —
	// provably mid-canary — the active dies: sync and upgrade links go
	// dark, the replicator stops, the pump has nothing left to feed.
	killed := false
	var watch func()
	checks := 0
	watch = func() {
		if killed || checks > 2000 {
			return
		}
		checks++
		st := r.act.Switch().CanaryStatus()
		if r.agent.Upgrader().Phase() == issu.PhaseCanary && st.Mirrored >= 3 && st.Active {
			killed = true
			p.stop()
			for _, ep := range []struct {
				node string
				port uint64
			}{{"act", syncPort}, {"sby", syncPort}, {"act", upgradePort}, {"coord", coordPort}} {
				if err := r.n.SetLinkDown(ep.node, ep.port, true); err != nil {
					t.Error(err)
				}
			}
			r.act.Stop()
			return
		}
		r.n.After(4, watch)
	}
	r.n.After(4, watch)
	if _, err := r.n.Run(0); err != nil {
		t.Fatal(err)
	}

	if !killed {
		t.Fatal("kill watch never saw the canary mirroring")
	}
	if !upDone {
		t.Fatal("coordinator never resolved the upgrade after the kill")
	}
	if upErr == nil {
		t.Fatal("upgrade committed despite the active dying mid-canary")
	}
	if !strings.Contains(upErr.Error(), "unreachable") {
		t.Errorf("abort reason does not name the unreachable peer: %v", upErr)
	}

	// Promotion: the standby takes over, and every flow the replication
	// stream carried keeps passing return traffic — the aborted upgrade
	// cost nothing.
	r.sby.Promote()
	if !r.sby.Promoted() {
		t.Fatal("promotion did not take")
	}
	sbyTbl := r.sby.Switch().FlowTable("fs_i.conn")
	var replicated []int
	for _, i := range established {
		if e, ok := sbyTbl.Lookup(flowKey(i)); ok && e.State == flow.StateEstablished {
			replicated = append(replicated, i)
		}
	}
	if len(replicated)*100 < len(established)*90 {
		t.Fatalf("only %d/%d established flows replicated before the kill",
			len(replicated), len(established))
	}
	before := len(r.n.Egress("sby"))
	for _, i := range replicated {
		if err := r.n.Inject("sby", lib.PortB, flowRev(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.n.Run(0); err != nil {
		t.Fatal(err)
	}
	survived := 0
	for _, d := range r.n.Egress("sby")[before:] {
		if d.Port == lib.PortA {
			survived++
		}
	}
	if survived != len(replicated) {
		t.Errorf("%d/%d replicated flows survived promotion, want all",
			survived, len(replicated))
	}
	// The standby never saw an upgrade: still generation 1, nothing
	// staged.
	if g := r.sby.Switch().Generation(); g != 1 {
		t.Errorf("standby generation %d, want 1", g)
	}

	var sig strings.Builder
	for _, d := range r.n.EgressAll() {
		fmt.Fprintf(&sig, "egress %s %d %x\n", d.Node, d.Port, d.Data)
	}
	st := r.n.Stats()
	for _, k := range netsim.FaultKinds {
		fmt.Fprintf(&sig, "fault %s %d\n", k, st.Faults[k])
	}
	fmt.Fprintf(&sig, "steps %d established %d replicated %d survived %d err %v\n",
		st.Steps, len(established), len(replicated), survived, upErr)
	return sig.String()
}

// TestUpgraderStateMachine exercises the per-switch state machine
// locally, no network: stage → canary → commit on the happy path, plus
// the refusals that keep it honest.
func TestUpgraderStateMachine(t *testing.T) {
	dp := compileP9(t)
	sw := dp.NewSwitch()
	installP9Rules(sw)
	reg := obs.NewRegistry()
	u := issu.NewUpgrader("dut", sw, issu.UpgraderConfig{Metrics: issu.NewMetrics(reg)})

	if err := u.Commit(); err == nil {
		t.Fatal("commit with nothing staged succeeded")
	}
	if err := u.StartCanary(8); err == nil {
		t.Fatal("canary with nothing staged succeeded")
	}

	stageOp := &issu.UpgradeOp{Kind: issu.OpStage, Program: "P9v2",
		Main: v2Main(t), Modules: p9Modules(t)}
	if err := u.Stage(stageOp); err != nil {
		t.Fatal(err)
	}
	if u.Phase() != issu.PhaseStaged {
		t.Fatalf("phase %s after stage", u.Phase())
	}
	if err := u.Stage(stageOp); err == nil {
		t.Fatal("double stage succeeded")
	}
	if err := u.StartCanary(4); err != nil {
		t.Fatal(err)
	}
	if err := u.Commit(); err == nil {
		t.Fatal("commit with the canary still running succeeded")
	}
	// Four identical clean packets consume the budget.
	for i := 0; i < 4; i++ {
		if _, err := sw.Process(flowFwd(0), lib.PortA); err != nil {
			t.Fatal(err)
		}
		u.Poll()
	}
	_, _, st := u.Status()
	if st.Active || st.Diverged || st.Mirrored != 4 {
		t.Fatalf("canary status %+v after a clean budget", st)
	}
	if err := u.Commit(); err != nil {
		t.Fatal(err)
	}
	if u.Phase() != issu.PhaseCommitted || sw.Generation() != 2 {
		t.Fatalf("phase %s generation %d after commit", u.Phase(), sw.Generation())
	}

	// A second attempt with a broken program fails at stage and leaves
	// the committed generation alone.
	bad := v2Main(t)
	bad.Source = strings.Replace(bad.Source, "transition accept;", "transition nowhere;", 1)
	if err := u.Stage(&issu.UpgradeOp{Kind: issu.OpStage, Program: "broken",
		Main: bad, Modules: p9Modules(t)}); err == nil {
		t.Fatal("staging an uncompilable program succeeded")
	}
	if sw.Generation() != 2 || sw.StagedGeneration() != 0 {
		t.Fatal("failed stage disturbed the live generation")
	}
}
