package issu_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"microp4"
	"microp4/internal/flow"
	"microp4/internal/issu"
	"microp4/internal/lib"
	"microp4/internal/netsim"
	"microp4/internal/obs"
	"microp4/internal/pkt"
	"microp4/internal/trace"
)

// The in-service upgrade acceptance scenarios: a P9 stateful firewall
// upgrades to P9 v2 mid-flow-churn, with the coordinator↔agent channel
// running over 10% drop (plus dup and reorder) links. A clean upgrade
// canaries and cuts over without dropping an established flow; a buggy
// v2 always diverges the canary and rolls back, leaving the switch
// byte-identical to a never-upgraded twin; killing the active switch
// mid-canary aborts the upgrade and the promoted standby keeps serving.

const (
	upgradePort = 9 // agent side of the coordinator↔agent channel
	coordPort   = 1 // coordinator side
	syncPort    = 7 // active↔standby flow replication (scenario C)
)

// compileP9 builds the P9 dataplane from the library catalog.
func compileP9(t testing.TB) *microp4.Dataplane {
	t.Helper()
	m, err := lib.Program("P9")
	if err != nil {
		t.Fatal(err)
	}
	src, err := lib.Source(m.MainFile)
	if err != nil {
		t.Fatal(err)
	}
	main, err := microp4.CompileModule(m.MainFile, src)
	if err != nil {
		t.Fatal(err)
	}
	var mods []*microp4.Module
	for _, name := range m.Modules {
		msrc, err := lib.ModuleSource(name)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := microp4.CompileModule(name+".up4", msrc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mods = append(mods, mod)
	}
	dp, err := microp4.Build(main, mods...)
	if err != nil {
		t.Fatal(err)
	}
	return dp
}

// v2Main returns the P9 v2 main module (the benign upgrade: a staged
// but unconfigured qos_tbl, byte-identical behavior until programmed).
func v2Main(t testing.TB) issu.Module {
	t.Helper()
	src, err := lib.Source("up4/p9_fw_v2.up4")
	if err != nil {
		t.Fatal(err)
	}
	return issu.Module{Name: "p9_fw_v2.up4", Source: src}
}

// buggyMain mutates v2 so the firewall's allow action drops: the exact
// "recompiled with a bad policy" upgrade the canary exists to catch.
func buggyMain(t testing.TB) issu.Module {
	t.Helper()
	m := v2Main(t)
	mutated := strings.Replace(m.Source, "action allow() { }", "action allow() { im.drop(); }", 1)
	if mutated == m.Source {
		t.Fatal("buggy mutation found nothing to replace")
	}
	m.Name = "p9_fw_v2_buggy.up4"
	m.Source = mutated
	return m
}

// p9Modules ships the library modules P9 composes.
func p9Modules(t testing.TB) []issu.Module {
	t.Helper()
	m, err := lib.Program("P9")
	if err != nil {
		t.Fatal(err)
	}
	var out []issu.Module
	for _, name := range m.Modules {
		src, err := lib.ModuleSource(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, issu.Module{Name: name + ".up4", Source: src})
	}
	return out
}

// installP9Rules programs the standard P9 firewall policy and routes.
func installP9Rules(sw *microp4.Switch) {
	sw.AddEntry("dir_tbl", []microp4.Key{microp4.Exact(lib.PortB)}, "dir_rev")
	sw.AddEntry("fw_tbl", []microp4.Key{microp4.Exact(0), microp4.Exact(0)}, "allow")
	sw.AddEntry("fw_tbl", []microp4.Key{microp4.Exact(0), microp4.Exact(1)}, "allow")
	sw.AddEntry("fw_tbl", []microp4.Key{microp4.Exact(1), microp4.Exact(1)}, "allow")
	sw.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl", []microp4.Key{microp4.LPM(lib.NetA, 8)},
		"l3_i.ipv4_i.process", lib.NhA)
	sw.AddEntry("l3_i.ipv4_i.ipv4_lpm_tbl", []microp4.Key{microp4.LPM(lib.NetB, 8)},
		"l3_i.ipv4_i.process", lib.NhB)
	sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(lib.NhA)}, "forward",
		lib.DmacA, lib.SmacA, lib.PortA)
	sw.AddEntry("forward_tbl", []microp4.Key{microp4.Exact(lib.NhB)}, "forward",
		lib.DmacA, lib.SmacA, lib.PortB)
}

func flowFwd(i int) []byte {
	return pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP,
			Src: uint32(lib.NetA) | uint32(i+1), Dst: uint32(lib.NetB) | uint32(i+1)}).
		TCP(uint16(1000+i), 443).Payload([]byte("syn")).Bytes()
}

func flowRev(i int) []byte {
	return pkt.NewBuilder().Ethernet(lib.DmacA, 2, pkt.EtherTypeIPv4).
		IPv4(pkt.IPv4Opts{TTL: 64, Protocol: pkt.ProtoTCP,
			Src: uint32(lib.NetB) | uint32(i+1), Dst: uint32(lib.NetA) | uint32(i+1)}).
		TCP(443, uint16(1000+i)).Payload([]byte("ack")).Bytes()
}

func flowKey(i int) flow.Key {
	return flow.Key{SrcAddr: lib.NetA | uint64(i+1), DstAddr: lib.NetB | uint64(i+1),
		Proto: 6, SrcPort: uint64(1000 + i), DstPort: 443}
}

// pump is a timer-driven traffic generator: it injects one data packet
// every interval until stopped (or a runaway cap), alternating forward
// and return packets across the flow population so the canary sees
// learns, hits, and refreshes. It records everything it injected so a
// twin can replay the identical history.
type pump struct {
	n        *netsim.Network
	node     string
	flows    int
	every    uint64
	i        int
	stopped  bool
	injected []injected
}

type injected struct {
	port uint64
	data []byte
}

const pumpCap = 5000

func (p *pump) start() { p.n.After(p.every, p.tick) }
func (p *pump) stop()  { p.stopped = true }

func (p *pump) tick() {
	if p.stopped || p.i >= pumpCap {
		return
	}
	f := (p.i / 2) % p.flows
	port, data := uint64(lib.PortA), flowFwd(f)
	if p.i%2 == 1 {
		port, data = lib.PortB, flowRev(f)
	}
	p.i++
	p.injected = append(p.injected, injected{port, data})
	_ = p.n.Inject(p.node, port, data)
	p.n.After(p.every, p.tick)
}

// harness wires one switch behind an upgrade agent and a coordinator
// across a lossy control channel.
type harness struct {
	n       *netsim.Network
	sw      *microp4.Switch
	agent   *issu.Agent
	coord   *issu.Coordinator
	reg     *obs.Registry
	rec     *trace.Recorder
	pump    *pump
	upErr   error
	upDone  bool
	dataLog []injected // every data packet the switch processed, in order
}

func newHarness(t testing.TB, seed uint64, fm netsim.FaultModel) *harness {
	t.Helper()
	dp := compileP9(t)
	n := netsim.New(seed)
	rec := trace.NewRecorder(8192)
	n.SetTracing(rec)
	reg := obs.NewRegistry()
	metrics := issu.NewMetrics(reg)

	sw := dp.NewSwitch()
	installP9Rules(sw)
	agent := issu.NewAgent("dut", sw, issu.AgentConfig{
		UpgradePort: upgradePort,
		Upgrader:    issu.UpgraderConfig{Metrics: metrics, Tracer: rec, Bus: n.Bus(), Now: n.Now},
	})
	if err := n.AddSwitch("dut", agent); err != nil {
		t.Fatal(err)
	}
	coord, err := issu.NewCoordinator(n, "coord", issu.CoordinatorConfig{
		Seed: seed, CanaryN: 24, Metrics: metrics, Tracer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.AddPeer("dut", coordPort); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("coord", coordPort, "dut", upgradePort, fm); err != nil {
		t.Fatal(err)
	}
	return &harness{n: n, sw: sw, agent: agent, coord: coord, reg: reg, rec: rec,
		pump: &pump{n: n, node: "dut", flows: 24, every: 6}}
}

func (h *harness) run(t testing.TB) {
	t.Helper()
	if _, err := h.n.Run(0); err != nil {
		t.Fatal(err)
	}
}

// churn establishes the flow population (forward then return for each
// flow) and returns the indices established on the switch.
func (h *harness) churn(t testing.TB) []int {
	t.Helper()
	for i := 0; i < h.pump.flows; i++ {
		h.inject(t, lib.PortA, flowFwd(i))
		h.inject(t, lib.PortB, flowRev(i))
	}
	h.run(t)
	tbl := h.sw.FlowTable("fs_i.conn")
	if tbl == nil {
		t.Fatal("no fs_i.conn flow table")
	}
	var established []int
	for i := 0; i < h.pump.flows; i++ {
		if e, ok := tbl.Lookup(flowKey(i)); ok && e.State == flow.StateEstablished {
			established = append(established, i)
		}
	}
	if len(established) != h.pump.flows {
		t.Fatalf("churn established %d/%d flows", len(established), h.pump.flows)
	}
	return established
}

func (h *harness) inject(t testing.TB, port uint64, data []byte) {
	t.Helper()
	h.dataLog = append(h.dataLog, injected{port, data})
	if err := h.n.Inject("dut", port, data); err != nil {
		t.Fatal(err)
	}
}

// upgrade drives a full coordinated upgrade with the pump supplying
// canary traffic; the pump stops as soon as the upgrade resolves.
func (h *harness) upgrade(t testing.TB, main issu.Module) {
	t.Helper()
	err := h.coord.Upgrade("P9v2", main, p9Modules(t), func(e error) {
		h.upErr, h.upDone = e, true
		h.pump.stop()
	})
	if err != nil {
		t.Fatal(err)
	}
	h.pump.start()
	h.run(t)
	h.dataLog = append(h.dataLog, h.pump.injected...)
	if !h.upDone {
		t.Fatal("upgrade never resolved")
	}
}

// signature fingerprints the whole run: every egress packet, the fault
// tallies, the virtual clock, and the upgrade outcome.
func (h *harness) signature() string {
	var sig strings.Builder
	for _, d := range h.n.Egress("dut") {
		fmt.Fprintf(&sig, "egress %d %x\n", d.Port, d.Data)
	}
	st := h.n.Stats()
	for _, k := range netsim.FaultKinds {
		fmt.Fprintf(&sig, "fault %s %d\n", k, st.Faults[k])
	}
	fmt.Fprintf(&sig, "steps %d gen %d staged %d phase %s err %v\n",
		st.Steps, h.sw.Generation(), h.sw.StagedGeneration(), h.agent.Upgrader().Phase(), h.upErr)
	return sig.String()
}

var chaosLinks = netsim.FaultModel{Drop: 0.10, Duplicate: 0.05, Reorder: 0.05}

// runClean is the success path at one seed: churn, coordinated upgrade
// over lossy links, clean canary, cutover, and zero dropped established
// flows after adoption.
func runClean(t *testing.T, seed uint64) string {
	t.Helper()
	h := newHarness(t, seed, chaosLinks)
	established := h.churn(t)
	h.upgrade(t, v2Main(t))

	if h.upErr != nil {
		t.Fatalf("clean upgrade aborted: %v", h.upErr)
	}
	if got := h.agent.Upgrader().Phase(); got != issu.PhaseCommitted {
		t.Fatalf("phase %s after clean upgrade, want committed", got)
	}
	if gen := h.sw.Generation(); gen != 2 {
		t.Errorf("live generation %d after cutover, want 2", gen)
	}
	if h.sw.StagedGeneration() != 0 {
		t.Error("a generation is still staged after cutover")
	}
	if st := h.sw.CanaryStatus(); st.Active {
		t.Error("canary still attached after cutover")
	}
	// The new generation must know the v2 table to prove it really is v2.
	if err := h.sw.TrySetDefault("qos_tbl", "keep_prio"); err != nil {
		t.Errorf("post-cutover generation lacks the v2 qos_tbl: %v", err)
	}

	// Every established flow keeps passing return traffic through the
	// new generation: the cutover carried the connection table.
	before := len(h.n.Egress("dut"))
	for _, i := range established {
		h.inject(t, lib.PortB, flowRev(i))
	}
	h.run(t)
	survived := 0
	for _, d := range h.n.Egress("dut")[before:] {
		if d.Port == lib.PortA {
			survived++
		}
	}
	if survived*100 < len(established)*99 {
		t.Errorf("only %d/%d established flows survived the cutover (<99%%)",
			survived, len(established))
	}

	// Counters and spans landed.
	var expo strings.Builder
	if err := h.reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`up4_issu_staged_total{node="dut"} 1`,
		`up4_issu_cutovers_total{node="dut"} 1`,
	} {
		if !strings.Contains(expo.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, expo.String())
		}
	}
	names := map[string]int{}
	for _, sp := range h.rec.Spans() {
		if sp.Kind == "issu" {
			names[sp.Name]++
		}
	}
	for _, want := range []string{"coordinate", "upgrade", "stage", "canary", "cutover"} {
		if names[want] == 0 {
			t.Errorf("no %q issu span recorded (got %v)", want, names)
		}
	}
	return h.signature()
}

// runBuggy is the rollback path at one seed: the shipped v2 drops
// allowed traffic, the canary diverges on live packets, the agent rolls
// back, and the switch stays byte-identical to a never-upgraded twin.
func runBuggy(t *testing.T, seed uint64) string {
	t.Helper()
	h := newHarness(t, seed, chaosLinks)
	h.churn(t)
	h.upgrade(t, buggyMain(t))

	if h.upErr == nil {
		t.Fatal("buggy upgrade committed")
	}
	if !errors.Is(h.upErr, microp4.ErrUpgrade) {
		t.Errorf("abort error is not an UpgradeError: %v", h.upErr)
	}
	if !strings.Contains(h.upErr.Error(), "diverged") {
		t.Errorf("abort reason does not name the divergence: %v", h.upErr)
	}
	if got := h.agent.Upgrader().Phase(); got != issu.PhaseRolledBack {
		t.Fatalf("phase %s after buggy upgrade, want rolled-back", got)
	}
	if gen := h.sw.Generation(); gen != 1 {
		t.Errorf("live generation %d after rollback, want 1", gen)
	}
	if h.sw.StagedGeneration() != 0 {
		t.Error("buggy generation still staged after rollback")
	}
	var expo strings.Builder
	if err := h.reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`up4_issu_rollbacks_total{node="dut"} 1`,
		`up4_issu_canary_diverged_total{node="dut"} 1`,
	} {
		if !strings.Contains(expo.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, expo.String())
		}
	}

	// Post-rollback traffic keeps flowing on the old generation.
	for i := 0; i < h.pump.flows; i++ {
		h.inject(t, lib.PortB, flowRev(i))
	}
	h.run(t)

	// Zero post-rollback divergence: a twin switch that never saw the
	// upgrade, fed the identical data-packet history, produces the
	// identical outputs — the staged generation and its shadow canary
	// left no trace on the live path.
	twin := compileP9(t).NewSwitch()
	installP9Rules(twin)
	var twinSig, dutSig strings.Builder
	for _, in := range h.dataLog {
		outs, err := twin.Process(in.data, in.port)
		if err != nil {
			t.Fatalf("twin processing error: %v", err)
		}
		for _, o := range outs {
			fmt.Fprintf(&twinSig, "%d %x\n", o.Port, o.Data)
		}
	}
	for _, d := range h.n.Egress("dut") {
		fmt.Fprintf(&dutSig, "%d %x\n", d.Port, d.Data)
	}
	if twinSig.Len() == 0 {
		t.Fatal("twin produced no output")
	}
	if dutSig.String() != twinSig.String() {
		t.Error("post-rollback outputs diverge from the never-upgraded twin")
	}
	return h.signature()
}

// TestUpgradeUnderChaos is the PR's acceptance gate, run at each seed:
// the clean upgrade commits and keeps ≥99% of established flows, the
// buggy upgrade always rolls back with zero divergence from a
// never-upgraded twin, and both runs are byte-identical per seed.
func TestUpgradeUnderChaos(t *testing.T) {
	for _, seed := range []uint64{42, 7, 1001} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Run("clean-cutover", func(t *testing.T) {
				first := runClean(t, seed)
				if second := runClean(t, seed); first != second {
					t.Errorf("clean upgrade not reproducible for seed %d:\n--- first\n%s--- second\n%s",
						seed, first, second)
				}
			})
			t.Run("buggy-rolled-back", func(t *testing.T) {
				first := runBuggy(t, seed)
				if second := runBuggy(t, seed); first != second {
					t.Errorf("buggy upgrade not reproducible for seed %d:\n--- first\n%s--- second\n%s",
						seed, first, second)
				}
			})
			t.Run("mid-canary-kill", func(t *testing.T) {
				first := runMidCanaryKill(t, seed)
				if second := runMidCanaryKill(t, seed); first != second {
					t.Errorf("mid-canary kill not reproducible for seed %d:\n--- first\n%s--- second\n%s",
						seed, first, second)
				}
			})
		})
	}
}
