package issu

import (
	"fmt"
	"math/rand"

	"microp4"
	"microp4/internal/netsim"
	"microp4/internal/sim"
	"microp4/internal/trace"
)

// CoordinatorConfig tunes the upgrade coordinator. Zero fields take the
// defaults. All durations are virtual ticks.
type CoordinatorConfig struct {
	// Seed drives the retry-jitter stream and session-id derivation;
	// with the same network and seed every upgrade replays tick for
	// tick.
	Seed uint64
	// Timeout is how long to await a reply before retrying (default 64).
	Timeout uint64
	// MaxAttempts bounds the sends per request (default 8); exhausting
	// them marks the peer unreachable and aborts the upgrade.
	MaxAttempts int
	// CanaryN is the per-switch mirror budget (default 64 packets).
	CanaryN uint64
	// CanaryTimeout bounds the canary phase: if any canary has not
	// completed this many ticks after starting, the upgrade aborts
	// (default 4096).
	CanaryTimeout uint64
	// PollEvery is the canary progress query cadence (default 32).
	PollEvery uint64
	// Metrics counts per-node transitions (shared with the agents).
	Metrics *Metrics
	// Tracer records a root "issu" coordination span per upgrade.
	Tracer *trace.Recorder
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.Timeout == 0 {
		c.Timeout = 64
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.CanaryN == 0 {
		c.CanaryN = 64
	}
	if c.CanaryTimeout == 0 {
		c.CanaryTimeout = 4096
	}
	if c.PollEvery == 0 {
		c.PollEvery = 32
	}
	return c
}

// Coordinator drives one in-service upgrade across a set of switches
// with two-phase-commit semantics over the lossy control network:
//
//	stage everywhere → canary everywhere → all clean? commit : abort
//
// Staging is the prepare, a clean canary is the vote, commit is the
// atomic cutover, and any divergence, rollback, unreachable peer, or
// canary timeout aborts the whole upgrade — every switch keeps (or
// reverts to) its old generation. Like the ctrlplane client it is
// single-threaded with the network's run loop: call Upgrade, then run
// the network; the done callback fires inside Run.
type Coordinator struct {
	n    *netsim.Network
	name string
	cfg  CoordinatorConfig
	rng  *rand.Rand

	peers  []*cpeer
	byPort map[uint64]*cpeer

	run *upgradeRun // the in-flight upgrade (one at a time)
}

type cpeer struct {
	name     string
	port     uint64
	session  uint64
	nextSeq  uint64
	inflight map[uint64]*ucall
	phase    Phase // last phase the peer reported
}

type ucall struct {
	p        *cpeer
	data     []byte
	seq      uint64
	kind     OpKind
	attempts int
	cancel   func()
	resolved bool
	done     func(*UpgradeReply, error)
}

type upgradeRun struct {
	program     string
	main        Module
	modules     []Module
	done        func(error)
	state       string // "stage", "canary", "poll", "commit", "abort"
	pending     int    // replies awaited in the current phase
	aborting    bool
	finished    bool
	canaryStart uint64
	cancelPoll  func()
	span        *trace.Span
}

// NewCoordinator creates the coordinator node named name in the
// network.
func NewCoordinator(n *netsim.Network, name string, cfg CoordinatorConfig) (*Coordinator, error) {
	c := &Coordinator{
		n:      n,
		name:   name,
		cfg:    cfg.withDefaults(),
		byPort: make(map[uint64]*cpeer),
	}
	c.rng = rand.New(rand.NewSource(int64(mix(c.cfg.Seed ^ 0x155D0C0DE))))
	if err := n.AddSwitch(name, c); err != nil {
		return nil, err
	}
	return c, nil
}

// AddPeer declares an upgrade channel: ops to peerName leave the
// coordinator on localPort (Connect that port to the agent's upgrade
// port). Session ids derive from the seed and peer name.
func (c *Coordinator) AddPeer(peerName string, localPort uint64) error {
	for _, p := range c.peers {
		if p.name == peerName {
			return fmt.Errorf("issu: duplicate peer %q", peerName)
		}
	}
	if c.byPort[localPort] != nil {
		return fmt.Errorf("issu: port %d already carries peer %q", localPort, c.byPort[localPort].name)
	}
	p := &cpeer{
		name:     peerName,
		port:     localPort,
		session:  mix(c.cfg.Seed^hashName(peerName)^0x0B5E55ED) | 1,
		nextSeq:  1,
		inflight: make(map[uint64]*ucall),
	}
	c.peers = append(c.peers, p)
	c.byPort[localPort] = p
	return nil
}

// Upgrade starts driving program (main + modules) onto every peer. The
// done callback fires inside the network run with nil on a committed
// upgrade or a *sim.UpgradeError describing why it was aborted. One
// upgrade at a time.
func (c *Coordinator) Upgrade(program string, main Module, modules []Module, done func(error)) error {
	if c.run != nil && !c.run.finished {
		return &sim.UpgradeError{Phase: "coordinate", Reason: "an upgrade is already in flight"}
	}
	if len(c.peers) == 0 {
		return &sim.UpgradeError{Phase: "coordinate", Reason: "no peers"}
	}
	if done == nil {
		done = func(error) {}
	}
	r := &upgradeRun{program: program, main: main, modules: modules, done: done}
	if rec := c.cfg.Tracer; rec != nil {
		id := rec.NextID()
		r.span = &trace.Span{TraceID: id, SpanID: id, Kind: "issu", Name: "coordinate",
			Start: c.n.Now(), End: c.n.Now()}
		r.span.Event(c.n.Now(), "program", program)
	}
	c.run = r
	c.stagePhase()
	return nil
}

func (c *Coordinator) event(name, detail string) {
	if bus := c.n.Bus(); bus.Active() {
		bus.Publish(sim.TraceEvent{Kind: "issu", Module: c.name, Name: name, Detail: detail})
	}
	if r := c.run; r != nil && r.span != nil {
		r.span.Event(c.n.Now(), name, detail)
		r.span.End = c.n.Now()
	}
}

// ----------------------------------------------------------------------------
// Phases

func (c *Coordinator) stagePhase() {
	r := c.run
	r.state = "stage"
	r.pending = len(c.peers)
	c.event("stage", fmt.Sprintf("%s to %d peers", r.program, len(c.peers)))
	for _, p := range c.peers {
		op := &UpgradeOp{Kind: OpStage, Program: r.program, Main: r.main, Modules: r.modules}
		c.send(p, op, func(rep *UpgradeReply, err error) {
			if c.phaseFailed(rep, err, "stage") {
				return
			}
			r.pending--
			if r.pending == 0 {
				c.canaryPhase()
			}
		})
	}
}

func (c *Coordinator) canaryPhase() {
	r := c.run
	r.state = "canary"
	r.pending = len(c.peers)
	c.event("canary", fmt.Sprintf("budget %d packets per peer", c.cfg.CanaryN))
	for _, p := range c.peers {
		op := &UpgradeOp{Kind: OpCanary, CanaryN: c.cfg.CanaryN}
		c.send(p, op, func(rep *UpgradeReply, err error) {
			if c.phaseFailed(rep, err, "canary") {
				return
			}
			r.pending--
			if r.pending == 0 {
				r.canaryStart = c.n.Now()
				c.schedulePoll()
			}
		})
	}
}

func (c *Coordinator) schedulePoll() {
	r := c.run
	r.state = "poll"
	r.cancelPoll = c.n.AfterNamed(c.name+" canary-poll", c.cfg.PollEvery, c.pollPhase)
}

func (c *Coordinator) pollPhase() {
	r := c.run
	if r == nil || r.finished || r.aborting {
		return
	}
	if c.n.Now()-r.canaryStart > c.cfg.CanaryTimeout {
		c.abortAll(&sim.UpgradeError{Phase: "canary",
			Reason: fmt.Sprintf("canary timeout after %d ticks", c.n.Now()-r.canaryStart)})
		return
	}
	r.pending = len(c.peers)
	complete := true
	for _, p := range c.peers {
		p := p
		c.send(p, &UpgradeOp{Kind: OpQuery}, func(rep *UpgradeReply, err error) {
			if c.phaseFailed(rep, err, "canary") {
				return
			}
			p.phase = rep.Phase
			if rep.Remaining > 0 || rep.Mirrored == 0 || rep.Phase != PhaseCanary {
				complete = false
			}
			r.pending--
			if r.pending > 0 {
				return
			}
			if complete {
				c.commitPhase()
			} else {
				c.schedulePoll()
			}
		})
	}
}

func (c *Coordinator) commitPhase() {
	r := c.run
	r.state = "commit"
	r.pending = len(c.peers)
	c.event("commit", "all canaries clean")
	for _, p := range c.peers {
		c.send(p, &UpgradeOp{Kind: OpCommit}, func(rep *UpgradeReply, err error) {
			if c.phaseFailed(rep, err, "commit") {
				return
			}
			r.pending--
			if r.pending == 0 {
				c.finish(nil)
			}
		})
	}
}

// phaseFailed inspects one reply; a refusal, a peer-side rollback, or
// an unreachable peer aborts the whole upgrade. Returns true when the
// run is no longer advancing through the current phase.
func (c *Coordinator) phaseFailed(rep *UpgradeReply, err error, phase string) bool {
	r := c.run
	if r == nil || r.finished || r.aborting {
		return true
	}
	if err != nil {
		c.abortAll(&sim.UpgradeError{Phase: phase, Reason: err.Error()})
		return true
	}
	if rep.Phase == PhaseRolledBack || rep.Diverged {
		reason := rep.Detail
		if reason == "" {
			reason = "peer rolled back"
		}
		c.abortAll(&sim.UpgradeError{Phase: phase, Gen: rep.Gen, Reason: reason})
		return true
	}
	if !rep.Ok {
		c.abortAll(&sim.UpgradeError{Phase: phase, Gen: rep.Gen, Reason: rep.Detail})
		return true
	}
	return false
}

// abortAll rolls every peer back and finishes the run with cause.
func (c *Coordinator) abortAll(cause *sim.UpgradeError) {
	r := c.run
	if r == nil || r.finished || r.aborting {
		return
	}
	r.aborting = true
	r.state = "abort"
	if r.cancelPoll != nil {
		r.cancelPoll()
		r.cancelPoll = nil
	}
	c.event("abort", cause.Error())
	// Cancel the in-flight calls of the failed phase; their replies are
	// moot now.
	for _, p := range c.peers {
		for _, cl := range p.inflight {
			cl.resolved = true
			if cl.cancel != nil {
				cl.cancel()
			}
		}
		p.inflight = make(map[uint64]*ucall)
	}
	r.pending = len(c.peers)
	for _, p := range c.peers {
		c.send(p, &UpgradeOp{Kind: OpAbort}, func(rep *UpgradeReply, err error) {
			// Best effort: an unreachable peer (e.g. a killed active
			// switch) cannot be rolled back from here — its replacement
			// never saw the staged generation anyway.
			r.pending--
			if r.pending == 0 {
				c.finish(cause)
			}
		})
	}
}

func (c *Coordinator) finish(err error) {
	r := c.run
	if r == nil || r.finished {
		return
	}
	r.finished = true
	if r.cancelPoll != nil {
		r.cancelPoll()
		r.cancelPoll = nil
	}
	if err == nil {
		c.event("committed", r.program)
	}
	if rec := c.cfg.Tracer; rec != nil && r.span != nil {
		outcome := "committed"
		if err != nil {
			outcome = "aborted: " + err.Error()
		}
		r.span.End = c.n.Now()
		r.span.Event(r.span.End, "outcome", outcome)
		rec.Record(r.span)
	}
	r.done(err)
}

// ----------------------------------------------------------------------------
// Reliable send (timeout, capped seeded backoff, at-least-once)

func (c *Coordinator) send(p *cpeer, op *UpgradeOp, done func(*UpgradeReply, error)) {
	op.Session = p.session
	op.Seq = p.nextSeq
	p.nextSeq++
	cl := &ucall{p: p, data: EncodeUpgradeOp(op), seq: op.Seq, kind: op.Kind, done: done}
	p.inflight[op.Seq] = cl
	c.transmit(cl)
}

func (c *Coordinator) transmit(cl *ucall) {
	if cl.resolved {
		return
	}
	cl.attempts++
	_ = c.n.SendFrom(c.name, cl.p.port, cl.data)
	cl.cancel = c.n.AfterNamed(c.name+" await "+cl.p.name, c.cfg.Timeout, func() { c.onTimeout(cl) })
}

func (c *Coordinator) onTimeout(cl *ucall) {
	if cl.resolved {
		return
	}
	if cl.attempts >= c.cfg.MaxAttempts {
		c.resolve(cl, nil, fmt.Errorf("%s unreachable: %d attempts at %s timed out",
			cl.p.name, cl.attempts, cl.kind))
		return
	}
	// Capped exponential backoff with seeded jitter on the virtual
	// clock: deterministic per seed, like the ctrlplane client.
	d := c.cfg.Timeout << uint(cl.attempts-1)
	if d > 8*c.cfg.Timeout {
		d = 8 * c.cfg.Timeout
	}
	d += uint64(c.rng.Intn(16))
	cl.cancel = c.n.AfterNamed(c.name+" retry "+cl.p.name, d, func() { c.transmit(cl) })
}

func (c *Coordinator) resolve(cl *ucall, rep *UpgradeReply, err error) {
	if cl.resolved {
		return
	}
	cl.resolved = true
	if cl.cancel != nil {
		cl.cancel()
		cl.cancel = nil
	}
	delete(cl.p.inflight, cl.seq)
	cl.done(rep, err)
}

// Process implements netsim.Processor: inbound traffic is agent
// replies. Undecodable and stale frames are dropped — retransmission
// and dedup make that safe.
func (c *Coordinator) Process(pkt []byte, inPort uint64) ([]microp4.Output, error) {
	rep, err := DecodeUpgradeReply(pkt)
	if err != nil {
		c.event("drop", "undecodable reply: "+err.Error())
		return nil, nil
	}
	p := c.byPort[inPort]
	if p == nil || rep.Session != p.session {
		return nil, nil
	}
	cl := p.inflight[rep.Seq]
	if cl == nil {
		return nil, nil // stale duplicate
	}
	c.resolve(cl, rep, nil)
	return nil, nil
}

// mix is splitmix64, the seed-mixing finalizer.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
