package issu

import "microp4/internal/obs"

// Metrics bundles the in-service-upgrade counters, labeled per node and
// registered in one obs.Registry (share it with the ctrlplane and
// switch metrics so one scrape sees the whole picture). The nil
// *Metrics is valid and counts nothing — obs counters are nil-safe — so
// instrumentation call sites stay unconditional.
type Metrics struct {
	reg *obs.Registry

	staged    map[string]*obs.Counter // up4_issu_staged_total{node}
	cutovers  map[string]*obs.Counter // up4_issu_cutovers_total{node}
	rollbacks map[string]*obs.Counter // up4_issu_rollbacks_total{node}
	diverged  map[string]*obs.Counter // up4_issu_canary_diverged_total{node}
}

// NewMetrics registers the ISSU series in reg. Returns nil when reg is
// nil.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		reg:       reg,
		staged:    make(map[string]*obs.Counter),
		cutovers:  make(map[string]*obs.Counter),
		rollbacks: make(map[string]*obs.Counter),
		diverged:  make(map[string]*obs.Counter),
	}
}

func (m *Metrics) counter(set map[string]*obs.Counter, name, help, node string) *obs.Counter {
	c := set[node]
	if c == nil {
		c = m.reg.Counter(name, help, obs.L("node", node))
		set[node] = c
	}
	return c
}

// Staged counts one successfully staged generation on node.
func (m *Metrics) Staged(node string) {
	if m == nil {
		return
	}
	m.counter(m.staged, "up4_issu_staged_total", "Generations staged for in-service upgrade", node).Inc()
}

// Cutover counts one adopted generation on node.
func (m *Metrics) Cutover(node string) {
	if m == nil {
		return
	}
	m.counter(m.cutovers, "up4_issu_cutovers_total", "In-service upgrades cut over to the staged generation", node).Inc()
}

// Rollback counts one rolled-back upgrade on node.
func (m *Metrics) Rollback(node string) {
	if m == nil {
		return
	}
	m.counter(m.rollbacks, "up4_issu_rollbacks_total", "In-service upgrades rolled back before adoption", node).Inc()
}

// CanaryDiverged counts one canary divergence on node.
func (m *Metrics) CanaryDiverged(node string) {
	if m == nil {
		return
	}
	m.counter(m.diverged, "up4_issu_canary_diverged_total", "Shadow canaries that observed a divergence between generations", node).Inc()
}
