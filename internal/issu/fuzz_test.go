package issu

import (
	"reflect"
	"testing"
)

// FuzzDecodeUpgradeOp feeds arbitrary bytes to the staged-program
// decoder. The contract matches the ctrlplane codecs: never a panic,
// and any input that decodes successfully round-trips — re-encoding
// the decoded op reproduces the exact input bytes (the wire format is
// canonical) and re-decoding yields an identical struct.
func FuzzDecodeUpgradeOp(f *testing.F) {
	for _, op := range sampleUpgradeOps() {
		f.Add(EncodeUpgradeOp(op))
	}
	f.Add(EncodeUpgradeReply(sampleUpgradeReplies()[0]))
	f.Add([]byte{})
	f.Add([]byte{wireMagic, wireVersion, wireMsgOp})
	f.Add(make([]byte, 512))
	f.Fuzz(func(t *testing.T, data []byte) {
		op, err := DecodeUpgradeOp(data)
		if err != nil {
			return
		}
		enc := EncodeUpgradeOp(op)
		if string(enc) != string(data) {
			t.Fatalf("valid op did not re-encode canonically:\n in %x\nout %x", data, enc)
		}
		again, err := DecodeUpgradeOp(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded op failed: %v", err)
		}
		if !reflect.DeepEqual(op, again) {
			t.Fatalf("round trip not identity:\n first %+v\nsecond %+v", op, again)
		}
	})
}

// FuzzDecodeUpgradeReply holds the reply decoder to the same contract.
func FuzzDecodeUpgradeReply(f *testing.F) {
	for _, rep := range sampleUpgradeReplies() {
		f.Add(EncodeUpgradeReply(rep))
	}
	f.Add(EncodeUpgradeOp(sampleUpgradeOps()[0]))
	f.Add([]byte{})
	f.Add([]byte{wireMagic, wireVersion, wireMsgReply})
	f.Add(make([]byte, 512))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeUpgradeReply(data)
		if err != nil {
			return
		}
		enc := EncodeUpgradeReply(rep)
		if string(enc) != string(data) {
			t.Fatalf("valid reply did not re-encode canonically:\n in %x\nout %x", data, enc)
		}
		again, err := DecodeUpgradeReply(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded reply failed: %v", err)
		}
		if !reflect.DeepEqual(rep, again) {
			t.Fatalf("round trip not identity:\n first %+v\nsecond %+v", rep, again)
		}
	})
}
