package issu

import (
	"fmt"

	"microp4"
	"microp4/internal/netsim"
	"microp4/internal/sim"
)

// AgentConfig wires an upgrade agent into a node.
type AgentConfig struct {
	// UpgradePort is the control port upgrade traffic arrives on;
	// everything else is handed to the wrapped data-path processor.
	UpgradePort uint64
	// Inner handles non-upgrade traffic: a Replicator, another
	// protocol layer, or nil to process straight on the switch.
	Inner netsim.Processor
	// Upgrader tunes the per-switch state machine.
	Upgrader UpgraderConfig
}

// Agent is the switch-side endpoint of the upgrade protocol: a
// netsim.Processor that demultiplexes one upgrade control port in front
// of the node's data path. Upgrade ops are deduplicated on (session,
// sequence) with cached-reply replay, so the coordinator's
// retransmissions are harmless; undecodable frames (corruption en
// route) are dropped silently — retransmission makes that safe. Every
// data packet also advances the Upgrader's auto-rollback watch, so a
// canary divergence rolls back within one packet of being observed.
type Agent struct {
	name  string
	sw    *microp4.Switch
	inner netsim.Processor
	port  uint64
	u     *Upgrader
	bus   *sim.Bus

	sessions map[uint64]*agentSession
}

// dedupWindow bounds the cached replies kept per session.
const dedupWindow = 128

type agentSession struct {
	replies map[uint64][]byte
	maxSeq  uint64
}

// NewAgent builds the upgrade agent for one switch.
func NewAgent(name string, sw *microp4.Switch, cfg AgentConfig) *Agent {
	return &Agent{
		name:     name,
		sw:       sw,
		inner:    cfg.Inner,
		port:     cfg.UpgradePort,
		u:        NewUpgrader(name, sw, cfg.Upgrader),
		bus:      cfg.Upgrader.Bus,
		sessions: make(map[uint64]*agentSession),
	}
}

// Upgrader exposes the state machine (tests and local drivers).
func (a *Agent) Upgrader() *Upgrader { return a.u }

func (a *Agent) event(name, detail string) {
	if a.bus != nil && a.bus.Active() {
		a.bus.Publish(sim.TraceEvent{Kind: "issu", Module: a.name, Name: name, Detail: detail})
	}
}

// Process implements netsim.Processor.
func (a *Agent) Process(pkt []byte, inPort uint64) ([]microp4.Output, error) {
	if inPort != a.port {
		var outs []microp4.Output
		var err error
		if a.inner != nil {
			outs, err = a.inner.Process(pkt, inPort)
		} else {
			outs, err = a.sw.Process(pkt, inPort)
		}
		a.u.Poll()
		return outs, err
	}
	op, derr := DecodeUpgradeOp(pkt)
	if derr != nil {
		a.event("drop", "undecodable upgrade op: "+derr.Error())
		return nil, nil
	}
	sess := a.sessions[op.Session]
	if sess == nil {
		sess = &agentSession{replies: make(map[uint64][]byte)}
		a.sessions[op.Session] = sess
	}
	if cached, ok := sess.replies[op.Seq]; ok {
		a.event("replay", fmt.Sprintf("seq %d (duplicate)", op.Seq))
		return []microp4.Output{{Port: a.port, Data: cached}}, nil
	}
	rep := a.apply(op)
	data := EncodeUpgradeReply(rep)
	sess.replies[op.Seq] = data
	if op.Seq > sess.maxSeq {
		sess.maxSeq = op.Seq
	}
	if old := sess.maxSeq - dedupWindow; sess.maxSeq > dedupWindow {
		delete(sess.replies, old)
	}
	return []microp4.Output{{Port: a.port, Data: data}}, nil
}

// apply executes one deduplicated op against the state machine.
func (a *Agent) apply(op *UpgradeOp) *UpgradeReply {
	var err error
	switch op.Kind {
	case OpStage:
		err = a.u.Stage(op)
	case OpCanary:
		err = a.u.StartCanary(op.CanaryN)
	case OpQuery:
		a.u.Poll() // a query may be the first traffic after a divergence
	case OpCommit:
		err = a.u.Commit()
	case OpAbort:
		a.u.Abort("coordinator abort")
	default:
		err = &sim.UpgradeError{Phase: "agent", Reason: "unknown op kind"}
	}
	phase, gen, st := a.u.Status()
	rep := &UpgradeReply{
		Session:   op.Session,
		Seq:       op.Seq,
		Ok:        err == nil,
		Phase:     phase,
		Gen:       gen,
		Mirrored:  st.Mirrored,
		Remaining: st.Remaining,
		Diverged:  st.Diverged,
	}
	if err != nil {
		rep.Detail = err.Error()
	} else if phase == PhaseRolledBack {
		rep.Detail = a.u.Detail()
	}
	return rep
}
