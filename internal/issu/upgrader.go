package issu

import (
	"fmt"

	"microp4"
	"microp4/internal/sim"
	"microp4/internal/trace"
)

// UpgraderConfig tunes a per-switch upgrade state machine. All fields
// are optional.
type UpgraderConfig struct {
	// Metrics counts staged/cutover/rollback/diverged transitions.
	Metrics *Metrics
	// Tracer records a root "issu" span per upgrade attempt with one
	// child span per phase (stage, canary, cutover or rollback).
	Tracer *trace.Recorder
	// Bus publishes upgrade lifecycle events as "issu" trace events.
	Bus *sim.Bus
	// Now supplies the virtual tick for span timestamps (nil = zeros).
	Now func() uint64
}

// Upgrader is the upgrade state machine of one switch: idle → staged →
// canary → committed, with every phase able to fall to rolled-back. It
// compiles shipped sources, stages them as a generation, watches the
// shadow canary, and rolls back automatically on any divergence or
// engine fault the canary surfaces. Drive it from the node's packet
// loop (the Agent does) — it is not internally synchronized beyond what
// the Switch generation APIs provide.
type Upgrader struct {
	name string
	sw   *microp4.Switch
	cfg  UpgraderConfig

	phase  Phase
	gen    uint64 // staged (or adopted) generation
	detail string // last refusal or rollback reason

	root *trace.Span // per-attempt root span, recorded at the terminal phase
}

// NewUpgrader builds the state machine for one switch.
func NewUpgrader(name string, sw *microp4.Switch, cfg UpgraderConfig) *Upgrader {
	return &Upgrader{name: name, sw: sw, cfg: cfg}
}

// Phase returns the current phase. PhaseCommitted and PhaseRolledBack
// are terminal for the attempt; Stage resets to a fresh attempt.
func (u *Upgrader) Phase() Phase { return u.phase }

// Detail returns the last refusal or rollback reason ("" when none).
func (u *Upgrader) Detail() string { return u.detail }

// Generation returns the generation sequence the current attempt staged
// (or adopted), 0 before any.
func (u *Upgrader) Generation() uint64 { return u.gen }

func (u *Upgrader) now() uint64 {
	if u.cfg.Now != nil {
		return u.cfg.Now()
	}
	return 0
}

func (u *Upgrader) event(name, detail string) {
	if u.cfg.Bus != nil && u.cfg.Bus.Active() {
		u.cfg.Bus.Publish(sim.TraceEvent{Kind: "issu", Module: u.name, Name: name, Detail: detail})
	}
}

// phaseSpan records one child span under the attempt's root span.
func (u *Upgrader) phaseSpan(name, detail string) {
	rec := u.cfg.Tracer
	if rec == nil || u.root == nil {
		return
	}
	now := u.now()
	sp := &trace.Span{
		TraceID: u.root.TraceID, SpanID: rec.NextID(), ParentID: u.root.SpanID,
		Kind: "issu", Name: name, Start: now, End: now,
	}
	if detail != "" {
		sp.Event(now, name, detail)
	}
	rec.Record(sp)
	u.root.End = now
}

// finishRoot records the attempt's root span at a terminal transition.
func (u *Upgrader) finishRoot(outcome string) {
	if rec := u.cfg.Tracer; rec != nil && u.root != nil {
		u.root.End = u.now()
		u.root.Event(u.root.End, "outcome", outcome)
		rec.Record(u.root)
	}
	u.root = nil
}

// Stage compiles the shipped program and stages it as a generation.
// Callable from idle or from a terminal phase (a new attempt); an
// in-flight attempt must be aborted first. Errors are *sim.UpgradeError.
func (u *Upgrader) Stage(op *UpgradeOp) error {
	if u.phase == PhaseStaged || u.phase == PhaseCanary {
		return &sim.UpgradeError{Phase: "stage", Gen: u.gen,
			Reason: "an upgrade is already in flight (phase " + u.phase.String() + ")"}
	}
	if rec := u.cfg.Tracer; rec != nil {
		id := rec.NextID()
		u.root = &trace.Span{TraceID: id, SpanID: id, Kind: "issu", Name: "upgrade",
			Start: u.now(), End: u.now()}
		u.root.Event(u.now(), "program", op.Program)
	}
	dp, err := compileProgram(op)
	if err != nil {
		u.detail = err.Error()
		u.event("stage-failed", u.detail)
		u.phaseSpan("stage", "compile failed: "+u.detail)
		u.finishRoot("stage-failed")
		return &sim.UpgradeError{Phase: "stage", Reason: err.Error()}
	}
	gen, err := u.sw.StageGeneration(dp)
	if err != nil {
		u.detail = err.Error()
		u.event("stage-failed", u.detail)
		u.phaseSpan("stage", u.detail)
		u.finishRoot("stage-failed")
		return err
	}
	u.phase, u.gen, u.detail = PhaseStaged, gen, ""
	u.cfg.Metrics.Staged(u.name)
	u.event("staged", fmt.Sprintf("%s as generation %d", op.Program, gen))
	u.phaseSpan("stage", fmt.Sprintf("%s -> generation %d", op.Program, gen))
	return nil
}

// StartCanary begins mirroring the next n live packets through the
// staged generation.
func (u *Upgrader) StartCanary(n uint64) error {
	if u.phase != PhaseStaged {
		return &sim.UpgradeError{Phase: "canary", Gen: u.gen,
			Reason: "no staged generation (phase " + u.phase.String() + ")"}
	}
	if err := u.sw.StartCanary(int(n)); err != nil {
		u.detail = err.Error()
		return err
	}
	u.phase = PhaseCanary
	u.event("canary", fmt.Sprintf("mirroring %d packets through generation %d", n, u.gen))
	u.phaseSpan("canary", fmt.Sprintf("budget %d", n))
	return nil
}

// Poll advances the automatic-rollback watch: if the canary observed a
// divergence (including engine faults, which surface as an error-class
// divergence), the upgrade rolls back immediately. Call it from the
// packet loop — it costs one atomic load when no canary is running.
func (u *Upgrader) Poll() {
	if u.phase != PhaseCanary {
		return
	}
	st := u.sw.CanaryStatus()
	if st.Diverged {
		u.cfg.Metrics.CanaryDiverged(u.name)
		u.rollback("canary diverged: " + st.Reason)
	}
}

// Status reports the phase, generation, and canary progress.
func (u *Upgrader) Status() (Phase, uint64, microp4.CanaryStatus) {
	return u.phase, u.gen, u.sw.CanaryStatus()
}

// Commit cuts over to the staged generation. From PhaseCanary the
// canary must have completed cleanly (a still-running canary refuses,
// a diverged one rolls back); from PhaseStaged it commits uncanaried —
// the coordinator decides whether that is allowed.
func (u *Upgrader) Commit() error {
	switch u.phase {
	case PhaseCanary:
		st := u.sw.CanaryStatus()
		if st.Diverged {
			u.cfg.Metrics.CanaryDiverged(u.name)
			u.rollback("canary diverged: " + st.Reason)
			return &sim.UpgradeError{Phase: "cutover", Gen: u.gen, Reason: "canary diverged: " + st.Reason}
		}
		if st.Active {
			return &sim.UpgradeError{Phase: "cutover", Gen: u.gen,
				Reason: fmt.Sprintf("canary still running (%d packets left)", st.Remaining)}
		}
	case PhaseStaged:
	default:
		return &sim.UpgradeError{Phase: "cutover", Gen: u.gen,
			Reason: "nothing to commit (phase " + u.phase.String() + ")"}
	}
	gen, err := u.sw.CutOver()
	if err != nil {
		u.rollbackOnCutoverErr(err)
		return err
	}
	u.phase, u.gen, u.detail = PhaseCommitted, gen, ""
	u.cfg.Metrics.Cutover(u.name)
	u.event("committed", fmt.Sprintf("generation %d live", gen))
	u.phaseSpan("cutover", fmt.Sprintf("generation %d live", gen))
	u.finishRoot("committed")
	return nil
}

// rollbackOnCutoverErr handles CutOver refusing (e.g. a divergence that
// landed between the status check and the cutover): the staged
// generation is discarded.
func (u *Upgrader) rollbackOnCutoverErr(err error) {
	u.cfg.Metrics.CanaryDiverged(u.name)
	u.rollback("cutover refused: " + err.Error())
}

// Abort rolls the in-flight upgrade back with an external reason
// (coordinator decision, canary timeout). Aborting with nothing in
// flight is a harmless no-op so duplicated/retried aborts stay
// idempotent.
func (u *Upgrader) Abort(reason string) {
	if u.phase != PhaseStaged && u.phase != PhaseCanary {
		return
	}
	u.rollback(reason)
}

func (u *Upgrader) rollback(reason string) {
	u.sw.AbortStaged()
	u.phase, u.detail = PhaseRolledBack, reason
	u.cfg.Metrics.Rollback(u.name)
	u.event("rolled-back", reason)
	u.phaseSpan("rollback", reason)
	u.finishRoot("rolled-back")
}

// compileProgram runs the µP4 frontend and midend on a shipped program.
func compileProgram(op *UpgradeOp) (*microp4.Dataplane, error) {
	main, err := microp4.CompileModule(op.Main.Name, op.Main.Source)
	if err != nil {
		return nil, fmt.Errorf("main %s: %w", op.Main.Name, err)
	}
	mods := make([]*microp4.Module, 0, len(op.Modules))
	for _, m := range op.Modules {
		mod, err := microp4.CompileModule(m.Name, m.Source)
		if err != nil {
			return nil, fmt.Errorf("module %s: %w", m.Name, err)
		}
		mods = append(mods, mod)
	}
	return microp4.Build(main, mods...)
}
