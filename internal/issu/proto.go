// Package issu implements in-service program upgrade over the chaos
// network: a wire protocol that ships a newly composed µP4 program to
// running switches, a per-switch Upgrader state machine that stages it
// as a copy-on-write generation, shadow-canaries live traffic through
// both generations, and either cuts over atomically or rolls back, and
// a Coordinator that drives the whole upgrade across a switch set with
// two-phase commit semantics — stage everywhere, canary everywhere,
// commit only when every canary came back clean.
//
// The protocol rides the same lossy netsim links as data traffic, with
// the same resilience split the ctrlplane uses: the codec turns
// corruption into losses (checksum, strict length accounting), the
// agent deduplicates on (session, sequence) and replays cached replies,
// and the coordinator retries on timeout with capped seeded backoff on
// the virtual clock, so every upgrade is deterministic per seed.
package issu

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Phase is the upgrade state machine's position on one switch.
type Phase uint8

const (
	PhaseIdle       Phase = iota // no upgrade in progress
	PhaseStaged                  // a generation is staged, no canary yet
	PhaseCanary                  // the shadow canary is mirroring traffic
	PhaseCommitted               // the staged generation was adopted
	PhaseRolledBack              // the upgrade was discarded
)

func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseStaged:
		return "staged"
	case PhaseCanary:
		return "canary"
	case PhaseCommitted:
		return "committed"
	case PhaseRolledBack:
		return "rolled-back"
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// OpKind names one upgrade operation.
type OpKind uint8

const (
	// OpStage ships the new program's sources; the agent compiles and
	// stages them as a generation.
	OpStage OpKind = iota + 1
	// OpCanary starts mirroring the next CanaryN live packets through
	// the staged generation.
	OpCanary
	// OpQuery polls the upgrade phase and canary progress.
	OpQuery
	// OpCommit cuts over to the staged generation.
	OpCommit
	// OpAbort rolls the upgrade back, discarding the staged generation.
	OpAbort
	opKindEnd
)

func (k OpKind) String() string {
	switch k {
	case OpStage:
		return "stage"
	case OpCanary:
		return "canary"
	case OpQuery:
		return "query"
	case OpCommit:
		return "commit"
	case OpAbort:
		return "abort"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Module is one µP4 source file of a staged program.
type Module struct {
	Name   string // file name (diagnostics anchor to it)
	Source string // µP4 source text
}

// UpgradeOp is one upgrade request. Session identifies the
// coordinator↔agent channel; Seq is channel-monotonic and deduplicated
// by the agent, so at-least-once delivery applies each op exactly once.
// OpStage carries the program; the other kinds leave it empty.
type UpgradeOp struct {
	Session uint64
	Seq     uint64
	Kind    OpKind
	Program string   // display name of the program being staged
	Main    Module   // main program source
	Modules []Module // library modules the main composes
	CanaryN uint64   // OpCanary: packets to mirror
}

// UpgradeReply answers one UpgradeOp, echoing Session and Seq. Ok
// reports whether the op was applied; Detail carries the refusal or
// rollback reason otherwise. Phase, Gen, and the canary fields report
// the agent's state after the op (OpQuery is a pure read).
type UpgradeReply struct {
	Session   uint64
	Seq       uint64
	Ok        bool
	Phase     Phase
	Gen       uint64 // staged (or adopted) generation sequence number
	Mirrored  uint64 // canary packets mirrored so far
	Remaining uint64 // canary budget left
	Diverged  bool
	Detail    string
}

// Wire format. Little-endian; strings are u16 length + bytes except
// sources, which are u32 length + bytes (programs outgrow a u16);
// a 4-byte FNV-1a checksum trails every message. Decoding is strict:
// caps on every count and length, no trailing garbage, never a panic —
// DecodeUpgradeOp and DecodeUpgradeReply are fuzzed on arbitrary bytes.
const (
	wireMagic   = 0xD7
	wireVersion = 1

	wireMsgOp    = 1
	wireMsgReply = 2

	maxWireName    = 1024
	maxWireSource  = 1 << 16 // 64 KiB per source file
	maxWireModules = 16
)

type wireWriter struct{ buf []byte }

func (w *wireWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *wireWriter) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *wireWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *wireWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

func (w *wireWriter) str(s string) {
	if len(s) > maxWireName {
		s = s[:maxWireName]
	}
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *wireWriter) source(s string) {
	if len(s) > maxWireSource {
		s = s[:maxWireSource]
	}
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *wireWriter) finish() []byte {
	h := fnv.New32a()
	_, _ = h.Write(w.buf)
	return binary.LittleEndian.AppendUint32(w.buf, h.Sum32())
}

// EncodeUpgradeOp serializes an op for transmission.
func EncodeUpgradeOp(op *UpgradeOp) []byte {
	w := &wireWriter{buf: make([]byte, 0, 256)}
	w.u8(wireMagic)
	w.u8(wireVersion)
	w.u8(wireMsgOp)
	w.u8(uint8(op.Kind))
	w.u64(op.Session)
	w.u64(op.Seq)
	w.str(op.Program)
	w.str(op.Main.Name)
	w.source(op.Main.Source)
	nm := len(op.Modules)
	if nm > maxWireModules {
		nm = maxWireModules
	}
	w.u16(uint16(nm))
	for _, m := range op.Modules[:nm] {
		w.str(m.Name)
		w.source(m.Source)
	}
	w.u64(op.CanaryN)
	return w.finish()
}

// EncodeUpgradeReply serializes a reply for transmission.
func EncodeUpgradeReply(r *UpgradeReply) []byte {
	w := &wireWriter{buf: make([]byte, 0, 96)}
	w.u8(wireMagic)
	w.u8(wireVersion)
	w.u8(wireMsgReply)
	ok := uint8(0)
	if r.Ok {
		ok = 1
	}
	w.u8(ok)
	w.u64(r.Session)
	w.u64(r.Seq)
	w.u8(uint8(r.Phase))
	w.u64(r.Gen)
	w.u64(r.Mirrored)
	w.u64(r.Remaining)
	div := uint8(0)
	if r.Diverged {
		div = 1
	}
	w.u8(div)
	w.str(r.Detail)
	return w.finish()
}

// wireReader is a bounds-checked cursor; the first failure latches.
type wireReader struct {
	buf []byte
	pos int
	err error
}

func (r *wireReader) fail(why string) {
	if r.err == nil {
		r.err = fmt.Errorf("issu: malformed message: %s", why)
	}
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.fail("truncated")
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *wireReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wireReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *wireReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *wireReader) str() string {
	n := int(r.u16())
	if n > maxWireName {
		r.fail("string too long")
		return ""
	}
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (r *wireReader) source() string {
	n := int(r.u32())
	if n > maxWireSource {
		r.fail("source too long")
		return ""
	}
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// checkHeader consumes and verifies magic/version and the trailing
// checksum, returning the message type byte.
func (r *wireReader) checkHeader() uint8 {
	if len(r.buf) < 8 {
		r.fail("too short")
		return 0
	}
	body, sum := r.buf[:len(r.buf)-4], binary.LittleEndian.Uint32(r.buf[len(r.buf)-4:])
	h := fnv.New32a()
	_, _ = h.Write(body)
	if h.Sum32() != sum {
		r.fail("bad checksum")
		return 0
	}
	r.buf = body
	if r.u8() != wireMagic {
		r.fail("bad magic")
		return 0
	}
	if r.u8() != wireVersion {
		r.fail("unsupported version")
		return 0
	}
	return r.u8()
}

// finish rejects messages with trailing bytes.
func (r *wireReader) finish() error {
	if r.err == nil && r.pos != len(r.buf) {
		r.fail("trailing bytes")
	}
	return r.err
}

// DecodeUpgradeOp parses an op message. Arbitrary input never panics;
// corrupted, truncated, or oversized messages return an error.
func DecodeUpgradeOp(data []byte) (*UpgradeOp, error) {
	r := &wireReader{buf: data}
	if t := r.checkHeader(); r.err == nil && t != wireMsgOp {
		r.fail("not an op message")
	}
	op := &UpgradeOp{}
	op.Kind = OpKind(r.u8())
	if r.err == nil && (op.Kind == 0 || op.Kind >= opKindEnd) {
		r.fail("unknown op kind")
	}
	op.Session = r.u64()
	op.Seq = r.u64()
	op.Program = r.str()
	op.Main.Name = r.str()
	op.Main.Source = r.source()
	nm := int(r.u16())
	if nm > maxWireModules {
		r.fail("too many modules")
		nm = 0
	}
	for i := 0; i < nm && r.err == nil; i++ {
		var m Module
		m.Name = r.str()
		m.Source = r.source()
		op.Modules = append(op.Modules, m)
	}
	op.CanaryN = r.u64()
	if err := r.finish(); err != nil {
		return nil, err
	}
	return op, nil
}

// DecodeUpgradeReply parses a reply message (same guarantees as
// DecodeUpgradeOp).
func DecodeUpgradeReply(data []byte) (*UpgradeReply, error) {
	r := &wireReader{buf: data}
	if t := r.checkHeader(); r.err == nil && t != wireMsgReply {
		r.fail("not a reply message")
	}
	rep := &UpgradeReply{}
	ok := r.u8()
	if r.err == nil && ok > 1 {
		r.fail("bad ok flag")
	}
	rep.Ok = ok == 1
	rep.Session = r.u64()
	rep.Seq = r.u64()
	rep.Phase = Phase(r.u8())
	if r.err == nil && rep.Phase > PhaseRolledBack {
		r.fail("unknown phase")
	}
	rep.Gen = r.u64()
	rep.Mirrored = r.u64()
	rep.Remaining = r.u64()
	div := r.u8()
	if r.err == nil && div > 1 {
		r.fail("bad diverged flag")
	}
	rep.Diverged = div == 1
	rep.Detail = r.str()
	if err := r.finish(); err != nil {
		return nil, err
	}
	return rep, nil
}
