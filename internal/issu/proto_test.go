package issu

import (
	"reflect"
	"strings"
	"testing"
)

func sampleUpgradeOps() []*UpgradeOp {
	return []*UpgradeOp{
		{Session: 1, Seq: 1, Kind: OpStage, Program: "P9v2",
			Main:    Module{Name: "p9_fw_v2.up4", Source: "program P9Fw {}"},
			Modules: []Module{{Name: "Flowstate.up4", Source: "// flowstate"}, {Name: "L3.up4", Source: "// l3"}}},
		{Session: 0xDEAD, Seq: 7, Kind: OpCanary, CanaryN: 64},
		{Session: 2, Seq: 3, Kind: OpQuery},
		{Session: 2, Seq: 4, Kind: OpCommit},
		{Session: 2, Seq: 5, Kind: OpAbort},
	}
}

func sampleUpgradeReplies() []*UpgradeReply {
	return []*UpgradeReply{
		{Session: 1, Seq: 1, Ok: true, Phase: PhaseStaged, Gen: 2},
		{Session: 1, Seq: 2, Ok: true, Phase: PhaseCanary, Gen: 2, Mirrored: 10, Remaining: 54},
		{Session: 1, Seq: 3, Ok: false, Phase: PhaseRolledBack, Gen: 2, Diverged: true,
			Detail: "canary diverged: packet 3 (tick 9): output 0: port 1 vs 0"},
		{Session: 9, Seq: 9, Ok: true, Phase: PhaseCommitted, Gen: 3},
	}
}

// TestUpgradeWireRoundTrip: every op and reply survives an
// encode/decode cycle as an identical struct.
func TestUpgradeWireRoundTrip(t *testing.T) {
	for _, op := range sampleUpgradeOps() {
		got, err := DecodeUpgradeOp(EncodeUpgradeOp(op))
		if err != nil {
			t.Fatalf("%s: %v", op.Kind, err)
		}
		if !reflect.DeepEqual(op, got) {
			t.Errorf("op round trip:\n sent %+v\n got  %+v", op, got)
		}
	}
	for _, rep := range sampleUpgradeReplies() {
		got, err := DecodeUpgradeReply(EncodeUpgradeReply(rep))
		if err != nil {
			t.Fatalf("reply seq %d: %v", rep.Seq, err)
		}
		if !reflect.DeepEqual(rep, got) {
			t.Errorf("reply round trip:\n sent %+v\n got  %+v", rep, got)
		}
	}
}

// TestUpgradeWireRejects: corruption, truncation, cross-type confusion,
// and out-of-range fields all decode to errors, never to structs.
func TestUpgradeWireRejects(t *testing.T) {
	op := EncodeUpgradeOp(sampleUpgradeOps()[0])
	rep := EncodeUpgradeReply(sampleUpgradeReplies()[0])
	cases := map[string][]byte{
		"empty":         {},
		"short":         {wireMagic, wireVersion},
		"bad magic":     func() []byte { c := clone(op); c[0] ^= 0xFF; return c }(),
		"bad version":   func() []byte { c := clone(op); c[1]++; return c }(),
		"flipped bit":   func() []byte { c := clone(op); c[len(c)/2] ^= 0x04; return c }(),
		"trailing byte": append(clone(op), 0x00),
		"truncated":     op[:len(op)-6],
		"reply as op":   rep,
		"all zero":      make([]byte, 64),
	}
	for name, data := range cases {
		if _, err := DecodeUpgradeOp(data); err == nil {
			t.Errorf("DecodeUpgradeOp accepted %s", name)
		}
	}
	if _, err := DecodeUpgradeReply(op); err == nil {
		t.Error("DecodeUpgradeReply accepted an op message")
	}
	// A structurally valid op with an unknown kind byte is rejected.
	bad := *sampleUpgradeOps()[2]
	bad.Kind = opKindEnd
	if _, err := DecodeUpgradeOp(EncodeUpgradeOp(&bad)); err == nil {
		t.Error("DecodeUpgradeOp accepted an unknown op kind")
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

// TestUpgradeWireCaps: encoders clamp to the decoder's limits so a
// locally built op always survives the wire (truncated, not rejected).
func TestUpgradeWireCaps(t *testing.T) {
	op := &UpgradeOp{Kind: OpStage, Program: strings.Repeat("x", 4096),
		Main: Module{Name: "m", Source: strings.Repeat("s", maxWireSource+100)}}
	for i := 0; i < maxWireModules+4; i++ {
		op.Modules = append(op.Modules, Module{Name: "mod", Source: "y"})
	}
	got, err := DecodeUpgradeOp(EncodeUpgradeOp(op))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Program) != maxWireName {
		t.Errorf("program name clamped to %d, want %d", len(got.Program), maxWireName)
	}
	if len(got.Main.Source) != maxWireSource {
		t.Errorf("source clamped to %d, want %d", len(got.Main.Source), maxWireSource)
	}
	if len(got.Modules) != maxWireModules {
		t.Errorf("modules clamped to %d, want %d", len(got.Modules), maxWireModules)
	}
}

// TestPhaseAndKindStrings pins the diagnostic names.
func TestPhaseAndKindStrings(t *testing.T) {
	for want, got := range map[string]string{
		"idle": PhaseIdle.String(), "staged": PhaseStaged.String(),
		"canary": PhaseCanary.String(), "committed": PhaseCommitted.String(),
		"rolled-back": PhaseRolledBack.String(), "phase(9)": Phase(9).String(),
		"stage": OpStage.String(), "query": OpQuery.String(),
		"commit": OpCommit.String(), "abort": OpAbort.String(), "op(0)": OpKind(0).String(),
	} {
		if want != got {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
