// Package linker loads and links µP4-IR modules (the first midend step,
// paper §5.1): it resolves each module instantiation in the main program
// to a compiled module IR, verifies signatures against the caller's
// prototypes, and rejects recursive module graphs (§6.4).
package linker

import (
	"fmt"
	"sort"

	"microp4/internal/ir"
)

// Linked is a linked µP4 dataplane: a main program plus every module it
// (transitively) instantiates.
type Linked struct {
	Main    *ir.Program
	Modules map[string]*ir.Program // keyed by program name
}

// Link links main against the given library modules. Modules not
// referenced are dropped; missing or mismatching modules are errors.
func Link(main *ir.Program, mods ...*ir.Program) (*Linked, error) {
	byName := make(map[string]*ir.Program, len(mods))
	for _, m := range mods {
		if m.Name == main.Name {
			return nil, fmt.Errorf("module %s has the same name as the main program", m.Name)
		}
		if _, dup := byName[m.Name]; dup {
			return nil, fmt.Errorf("duplicate module %s", m.Name)
		}
		byName[m.Name] = m
	}
	l := &Linked{Main: main, Modules: make(map[string]*ir.Program)}
	// BFS over the call graph with cycle detection via DFS colors.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(p *ir.Program, chain []string) error
	visit = func(p *ir.Program, chain []string) error {
		color[p.Name] = gray
		chain = append(chain, p.Name)
		for _, callee := range p.CalleeModules() {
			m, ok := byName[callee]
			if !ok {
				return fmt.Errorf("%s instantiates module %s, which is not among the linked modules", p.Name, callee)
			}
			if err := checkSignature(p, m); err != nil {
				return err
			}
			switch color[callee] {
			case gray:
				return fmt.Errorf("recursive module composition: %v -> %s (µP4 rejects cyclic dependencies)", chain, callee)
			case white:
				if err := visit(m, chain); err != nil {
					return err
				}
			}
			l.Modules[callee] = m
		}
		color[p.Name] = black
		return nil
	}
	if err := visit(main, nil); err != nil {
		return nil, err
	}
	return l, nil
}

// checkSignature verifies the caller's prototype for callee matches the
// callee module's actual signature.
func checkSignature(caller, callee *ir.Program) error {
	proto := caller.Protos[callee.Name]
	if proto == nil {
		return fmt.Errorf("%s instantiates %s without a module prototype", caller.Name, callee.Name)
	}
	if len(proto.Params) != len(callee.Params) {
		return fmt.Errorf("%s: prototype for %s has %d data parameters, module has %d",
			caller.Name, callee.Name, len(proto.Params), len(callee.Params))
	}
	for i, pp := range proto.Params {
		mp := callee.Params[i]
		if pp.Width != mp.Width {
			return fmt.Errorf("%s: prototype for %s parameter %d is bit<%d>, module declares bit<%d>",
				caller.Name, callee.Name, i+1, pp.Width, mp.Width)
		}
		if pp.Dir != mp.Dir {
			return fmt.Errorf("%s: prototype for %s parameter %d is %q, module declares %q",
				caller.Name, callee.Name, i+1, pp.Dir, mp.Dir)
		}
	}
	return nil
}

// Program returns the named program (main or module), or nil.
func (l *Linked) Program(name string) *ir.Program {
	if l.Main.Name == name {
		return l.Main
	}
	return l.Modules[name]
}

// TopoOrder returns all linked programs bottom-up: callees before callers,
// ending with main. The order is deterministic.
func (l *Linked) TopoOrder() []*ir.Program {
	var order []*ir.Program
	done := make(map[string]bool)
	var visit func(p *ir.Program)
	visit = func(p *ir.Program) {
		if done[p.Name] {
			return
		}
		done[p.Name] = true
		callees := p.CalleeModules()
		sort.Strings(callees)
		for _, c := range callees {
			if m := l.Modules[c]; m != nil {
				visit(m)
			}
		}
		order = append(order, p)
	}
	visit(l.Main)
	return order
}
