package linker

import (
	"testing"

	"microp4/internal/ir"
)

func module(name string, callees ...string) *ir.Program {
	p := &ir.Program{
		Name:      name,
		Interface: "Unicast",
		Headers:   map[string]*ir.HeaderType{},
		Actions:   map[string]*ir.Action{},
		Tables:    map[string]*ir.Table{},
		Protos:    map[string]*ir.Proto{},
	}
	for i, c := range callees {
		instName := "i" + string(rune('a'+i))
		p.Instances = append(p.Instances, ir.Instance{Name: instName, Module: c})
		p.Protos[c] = &ir.Proto{Name: c}
		p.Apply = append(p.Apply, &ir.Stmt{Kind: ir.SCallModule, Instance: instName, Module: c})
	}
	return p
}

func TestLinkDiamond(t *testing.T) {
	// main -> {a, b}, a -> c, b -> c: a diamond is fine (c linked once).
	c := module("C")
	a := module("A", "C")
	b := module("B", "C")
	main := module("Main", "A", "B")
	l, err := Link(main, a, b, c)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if len(l.Modules) != 3 {
		t.Errorf("linked %d modules, want 3", len(l.Modules))
	}
	order := l.TopoOrder()
	pos := map[string]int{}
	for i, p := range order {
		pos[p.Name] = i
	}
	if pos["C"] > pos["A"] || pos["C"] > pos["B"] || pos["Main"] != len(order)-1 {
		t.Errorf("topo order wrong: %v", names(order))
	}
	// Deterministic.
	again := l.TopoOrder()
	for i := range order {
		if order[i].Name != again[i].Name {
			t.Errorf("TopoOrder not deterministic")
		}
	}
}

func TestLinkUnusedModulesDropped(t *testing.T) {
	main := module("Main", "A")
	a := module("A")
	unused := module("Zed")
	l, err := Link(main, a, unused)
	if err != nil {
		t.Fatal(err)
	}
	if l.Program("Zed") != nil {
		t.Error("unused module retained")
	}
	if l.Program("A") == nil || l.Program("Main") == nil {
		t.Error("used modules missing")
	}
}

func TestLinkErrors(t *testing.T) {
	// Missing module.
	if _, err := Link(module("Main", "Ghost")); err == nil {
		t.Error("missing module accepted")
	}
	// Duplicate module names.
	if _, err := Link(module("Main", "A"), module("A"), module("A")); err == nil {
		t.Error("duplicate module accepted")
	}
	// Module named like main.
	if _, err := Link(module("Main"), module("Main")); err == nil {
		t.Error("module shadowing main accepted")
	}
	// Self-recursion.
	self := module("Self", "Self")
	if _, err := Link(self, module("Self")); err == nil {
		t.Error("self-recursive module accepted")
	}
}

func TestSignatureChecks(t *testing.T) {
	callee := module("A")
	callee.Params = []ir.ModParam{{Name: "nh", Dir: "out", Width: 16}}
	main := module("Main", "A")
	main.Protos["A"] = &ir.Proto{Name: "A", Params: []ir.ModParam{{Name: "nh", Dir: "out", Width: 16}}}
	if _, err := Link(main, callee); err != nil {
		t.Errorf("matching signature rejected: %v", err)
	}
	// Width mismatch.
	bad := module("Main", "A")
	bad.Protos["A"] = &ir.Proto{Name: "A", Params: []ir.ModParam{{Name: "nh", Dir: "out", Width: 32}}}
	if _, err := Link(bad, callee); err == nil {
		t.Error("width mismatch accepted")
	}
	// Direction mismatch.
	bad2 := module("Main", "A")
	bad2.Protos["A"] = &ir.Proto{Name: "A", Params: []ir.ModParam{{Name: "nh", Dir: "in", Width: 16}}}
	if _, err := Link(bad2, callee); err == nil {
		t.Error("direction mismatch accepted")
	}
	// Arity mismatch.
	bad3 := module("Main", "A")
	bad3.Protos["A"] = &ir.Proto{Name: "A"}
	if _, err := Link(bad3, callee); err == nil {
		t.Error("arity mismatch accepted")
	}
	// No prototype at all.
	bad4 := module("Main", "A")
	delete(bad4.Protos, "A")
	if _, err := Link(bad4, callee); err == nil {
		t.Error("missing prototype accepted")
	}
}

func names(ps []*ir.Program) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
