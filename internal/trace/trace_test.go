package trace

import (
	"bytes"
	"fmt"
	"testing"
)

func span(id uint64, name string) *Span {
	return &Span{TraceID: id, SpanID: id, Kind: "hop", Name: name}
}

func TestRecorderRingWindow(t *testing.T) {
	r := NewRecorder(3) // rounds up to 4
	for i := uint64(1); i <= 10; i++ {
		r.Record(span(i, fmt.Sprint(i)))
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r.Len())
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring kept %d spans, want capacity 4", len(spans))
	}
	for i, sp := range spans {
		if want := uint64(7 + i); sp.SpanID != want {
			t.Errorf("spans[%d] = %d, want %d (oldest-first window)", i, sp.SpanID, want)
		}
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	if r.NextID() != 0 || r.Len() != 0 || r.Spans() != nil || r.Faults() != nil {
		t.Error("nil recorder methods must no-op")
	}
	r.Record(span(1, "x"))
	r.NoteFault(span(1, "x"), []byte{1})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	spans, faults, err := ReadJSON(buf.Bytes())
	if err != nil {
		t.Fatalf("nil recorder's export is not valid: %v", err)
	}
	if len(spans) != 0 || len(faults) != 0 {
		t.Errorf("nil recorder exported %d spans, %d faults", len(spans), len(faults))
	}

	var b *Buffer
	if b.NextID() != 0 {
		t.Error("nil buffer NextID != 0")
	}
	b.Add(span(1, "x"))
	b.Flush()
}

func TestNoteFaultPinsRecentAndPacket(t *testing.T) {
	r := NewRecorder(64)
	for i := uint64(1); i <= 40; i++ {
		r.Record(span(i, fmt.Sprint(i)))
	}
	pktBytes := []byte{0xDE, 0xAD}
	faulting := span(99, "boom")
	r.NoteFault(faulting, pktBytes)
	pktBytes[0] = 0 // the dump must have copied

	faults := r.Faults()
	if len(faults) != 1 {
		t.Fatalf("pinned %d dumps, want 1", len(faults))
	}
	d := faults[0]
	if d.Span != faulting {
		t.Error("dump does not pin the faulting span")
	}
	if !bytes.Equal(d.Packet, []byte{0xDE, 0xAD}) {
		t.Errorf("dump packet = % x, want the original bytes copied", d.Packet)
	}
	if len(d.Recent) != faultDumpRecent {
		t.Fatalf("dump pinned %d recent spans, want %d", len(d.Recent), faultDumpRecent)
	}
	if first := d.Recent[0].SpanID; first != 40-faultDumpRecent+1 {
		t.Errorf("recent window starts at %d, want %d", first, 40-faultDumpRecent+1)
	}

	// Eviction: only the newest maxFaultDumps dumps survive.
	for i := 0; i < maxFaultDumps+5; i++ {
		r.NoteFault(span(uint64(100+i), "boom"), nil)
	}
	faults = r.Faults()
	if len(faults) != maxFaultDumps {
		t.Fatalf("kept %d dumps, want %d", len(faults), maxFaultDumps)
	}
	if faults[len(faults)-1].Span.SpanID != uint64(100+maxFaultDumps+4) {
		t.Error("eviction dropped the newest dump instead of the oldest")
	}
}

func TestWriteReadJSONRoundTrip(t *testing.T) {
	r := NewRecorder(16)
	s := span(1, "hop")
	s.Event(5, "retry", "s1 seq 2")
	r.Record(s)
	r.NoteFault(span(2, "boom"), []byte{1, 2, 3})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	spans, faults, err := ReadJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "hop" || len(spans[0].Events) != 1 {
		t.Errorf("round-trip lost span detail: %+v", spans)
	}
	if len(faults) != 1 || !bytes.Equal(faults[0].Packet, []byte{1, 2, 3}) {
		t.Errorf("round-trip lost fault dump: %+v", faults)
	}

	if _, _, err := ReadJSON([]byte(`{"schema":"up4trace/v0"}`)); err == nil {
		t.Error("foreign schema accepted")
	}
	if _, _, err := ReadJSON([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestBufferStagesUntilFlush(t *testing.T) {
	r := NewRecorder(16)
	b := NewBuffer(r)
	if b.NextID() == 0 {
		t.Error("buffer NextID must allocate from the recorder")
	}
	b.Add(span(1, "a"))
	b.Add(span(2, "b"))
	if r.Len() != 0 {
		t.Fatal("spans published before Flush")
	}
	b.Flush()
	spans := r.Spans()
	if len(spans) != 2 || spans[0].Name != "a" || spans[1].Name != "b" {
		t.Fatalf("flush published %+v, want a then b", spans)
	}
	b.Flush() // idempotent on an empty buffer
	if r.Len() != 2 {
		t.Error("re-flush duplicated spans")
	}
}
