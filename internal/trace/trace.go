// Package trace is the distributed packet-tracing core of the µP4
// reproduction: per-packet trace contexts propagated end-to-end through
// the simulated network, one span per switch hop (parse / per-table
// lookup / deparse, disposition), one span per link traversal (carrying
// the injected fault events), and one span per control-plane
// transaction phase — all feeding a bounded lock-free flight-recorder
// ring that dumps on engine faults and exports as JSON.
//
// It is the host-side half of the §8.2 debugging story: the
// telemetry.up4 library module stamps the same hop facts (switch id,
// latency bucket, TTL) into the packet in-band, and the two views are
// cross-checked byte for byte in the evaluation tests.
//
// Determinism contract: span identity, structure, ticks, and events
// derive only from the virtual clock and seeded fault streams —
// identical seed and traffic means identical spans, modulo the
// wall-clock ns timing fields, which Canonical zeroes for comparisons.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"microp4/internal/sim"
)

// Schema identifies the JSON export layout; bump on incompatible change.
const Schema = "up4trace/v1"

// Event is one timestamped annotation on a span: a link fault, a
// control-plane retry, a breaker transition.
type Event struct {
	Tick   uint64 `json:"tick"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// Span is one unit of traced work. Kind selects which optional fields
// are meaningful:
//
//	"hop"  — a packet processed by one switch: InPort, Qdepth, and Hop
//	         (the engine-recorded parse/table/deparse detail).
//	"link" — a packet traversing one netsim link: Events carry the
//	         injected faults; Err is "lost" when nothing was delivered.
//	"txn"  — one control-plane transaction phase (stage, prepare,
//	         commit, abort): Events carry per-peer sends, retries,
//	         timeouts, and breaker holds.
type Span struct {
	TraceID  uint64 `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id,omitempty"`
	Kind     string `json:"kind"`
	Name     string `json:"name"`
	Start    uint64 `json:"start"` // virtual tick
	End      uint64 `json:"end"`

	InPort uint64       `json:"in_port,omitempty"`
	Qdepth uint64       `json:"qdepth,omitempty"`
	Hop    *sim.HopSpan `json:"hop,omitempty"`

	Events []Event `json:"events,omitempty"`
	Err    string  `json:"err,omitempty"`
}

// Event appends one annotation. Nil-safe.
func (s *Span) Event(tick uint64, kind, detail string) {
	if s != nil {
		s.Events = append(s.Events, Event{Tick: tick, Kind: kind, Detail: detail})
	}
}

// Canonical returns a deep copy with every wall-clock-dependent field
// zeroed (the hop's parse/exec/deparse nanoseconds), leaving only the
// seed-deterministic structure. Two chaos runs with the same seed and
// traffic must produce byte-identical canonical spans.
func (s *Span) Canonical() Span {
	c := *s
	if s.Hop != nil {
		h := *s.Hop
		h.ParseNs, h.ExecNs, h.DeparseNs = 0, 0, 0
		h.Tables = append([]sim.TableStep(nil), s.Hop.Tables...)
		h.OutPorts = append([]uint64(nil), s.Hop.OutPorts...)
		c.Hop = &h
	}
	c.Events = append([]Event(nil), s.Events...)
	return c
}

// FaultDump is one pinned engine-fault snapshot: the faulting span, the
// packet bytes that triggered it, and the ring's most recent spans at
// the moment of the fault.
type FaultDump struct {
	Span   *Span   `json:"span"`
	Packet []byte  `json:"packet"` // base64 in JSON
	Recent []*Span `json:"recent,omitempty"`
}

// DefaultCapacity is the flight-recorder ring size when NewRecorder is
// given no preference.
const DefaultCapacity = 4096

// faultDumpRecent bounds how many trailing spans each fault dump pins.
const faultDumpRecent = 32

// maxFaultDumps bounds the pinned dumps (oldest evicted first).
const maxFaultDumps = 16

// Recorder is the bounded lock-free flight recorder: a power-of-two
// ring of span pointers overwritten oldest-first, a span/trace id
// allocator, and a small mutex-guarded side list of pinned engine-fault
// dumps. Record is one atomic add plus one atomic pointer store —
// multiple workers may record concurrently; readers (Spans, WriteJSON)
// see a consistent-enough snapshot for post-run export.
//
// A nil *Recorder is the tracing-off state: every method no-ops (and
// allocates nothing), so call sites stay unconditional.
type Recorder struct {
	slots []atomic.Pointer[Span]
	mask  uint64
	seq   atomic.Uint64 // next ring slot (total spans recorded)
	ids   atomic.Uint64 // last allocated span/trace id

	mu     sync.Mutex
	faults []FaultDump
}

// NewRecorder returns a flight recorder holding the last `capacity`
// spans (rounded up to a power of two; <=0 selects DefaultCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Recorder{slots: make([]atomic.Pointer[Span], n), mask: uint64(n - 1)}
}

// NextID allocates a fresh nonzero span or trace id. Nil-safe (0).
func (r *Recorder) NextID() uint64 {
	if r == nil {
		return 0
	}
	return r.ids.Add(1)
}

// Record stores one span in the ring, overwriting the oldest when full.
// The recorder keeps the pointer: a span may gain Events after being
// recorded (control-plane retries arrive later on the virtual clock),
// but only single-threaded with the eventual reader. Nil-safe.
func (r *Recorder) Record(s *Span) {
	if r == nil || s == nil {
		return
	}
	i := r.seq.Add(1) - 1
	r.slots[i&r.mask].Store(s)
}

// Len returns how many spans have ever been recorded. Nil-safe.
func (r *Recorder) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Spans snapshots the ring oldest-to-newest. Nil-safe (nil).
func (r *Recorder) Spans() []*Span {
	if r == nil {
		return nil
	}
	total := r.seq.Load()
	n := total
	if n > uint64(len(r.slots)) {
		n = uint64(len(r.slots))
	}
	out := make([]*Span, 0, n)
	for i := total - n; i < total; i++ {
		if s := r.slots[i&r.mask].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// NoteFault pins an engine-fault dump: the faulting span, a copy of the
// offending packet bytes, and the last spans leading up to it. At most
// maxFaultDumps are kept (oldest evicted). Nil-safe.
func (r *Recorder) NoteFault(s *Span, packet []byte) {
	if r == nil {
		return
	}
	spans := r.Spans()
	if len(spans) > faultDumpRecent {
		spans = spans[len(spans)-faultDumpRecent:]
	}
	d := FaultDump{Span: s, Packet: append([]byte(nil), packet...), Recent: spans}
	r.mu.Lock()
	r.faults = append(r.faults, d)
	if len(r.faults) > maxFaultDumps {
		r.faults = r.faults[len(r.faults)-maxFaultDumps:]
	}
	r.mu.Unlock()
}

// Faults returns the pinned engine-fault dumps, oldest first. Nil-safe.
func (r *Recorder) Faults() []FaultDump {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]FaultDump(nil), r.faults...)
}

// export is the JSON document layout of WriteJSON.
type export struct {
	Schema   string      `json:"schema"`
	Recorded uint64      `json:"recorded"` // total spans ever recorded
	Spans    []*Span     `json:"spans"`    // the ring's surviving window
	Faults   []FaultDump `json:"faults,omitempty"`
}

// WriteJSON renders the recorder — schema tag, the ring's surviving
// span window oldest-first, and any pinned fault dumps — as one
// indented JSON document. Nil-safe: a nil recorder writes an empty
// document with the schema tag, so `-trace-out` always yields valid
// JSON.
func (r *Recorder) WriteJSON(w io.Writer) error {
	doc := export{Schema: Schema, Recorded: r.Len(), Spans: r.Spans(), Faults: r.Faults()}
	if doc.Spans == nil {
		doc.Spans = []*Span{}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadJSON parses a WriteJSON document, checking the schema tag — the
// consumer half of `up4run -trace-out`, used by the CI smoke test.
func ReadJSON(data []byte) ([]*Span, []FaultDump, error) {
	var doc export
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, nil, err
	}
	if doc.Schema != Schema {
		return nil, nil, fmt.Errorf("trace: schema %q, want %q", doc.Schema, Schema)
	}
	return doc.Spans, doc.Faults, nil
}

// Buffer is a per-worker span staging area: spans append locally
// (no cross-worker contention) and publish to the shared ring in one
// Flush at the end of the worker's batch — the trace analogue of the
// obs telemetry shards. A nil or recorder-less buffer no-ops.
type Buffer struct {
	r     *Recorder
	spans []*Span
}

// NewBuffer returns a staging buffer feeding r (which may be nil).
func NewBuffer(r *Recorder) *Buffer { return &Buffer{r: r} }

// NextID allocates a fresh id from the underlying recorder. Nil-safe.
func (b *Buffer) NextID() uint64 {
	if b == nil || b.r == nil {
		return 0
	}
	return b.r.NextID()
}

// Add stages one span. Nil-safe.
func (b *Buffer) Add(s *Span) {
	if b != nil && b.r != nil && s != nil {
		b.spans = append(b.spans, s)
	}
}

// Flush publishes the staged spans to the ring in order and resets the
// buffer for reuse. Nil-safe.
func (b *Buffer) Flush() {
	if b == nil || b.r == nil {
		return
	}
	for _, s := range b.spans {
		b.r.Record(s)
	}
	b.spans = b.spans[:0]
}

// HopContext is the trace context a network hands a switch for one hop:
// which trace the packet belongs to, the span it descends from, where
// and when it is being processed, and how long it waited in flight
// (the deterministic queue-depth proxy the telemetry.up4 module reads
// via im.get_value(QUEUE_DEPTH)).
type HopContext struct {
	TraceID  uint64
	ParentID uint64
	Node     string
	Tick     uint64
	Qdepth   uint64
}
