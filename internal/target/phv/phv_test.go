package phv

import (
	"strings"
	"testing"
)

func alloc(t *testing.T, inv Inventory, mode Mode, fields ...Field) *Alloc {
	t.Helper()
	a, err := (&Allocator{Inv: inv, Mode: mode}).Allocate(fields)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	return a
}

func TestNaturalClasses(t *testing.T) {
	a := alloc(t, TofinoInventory, ModeNatural,
		Field{Name: "ttl", Bits: 8, Group: "ipv4"},
		Field{Name: "totalLen", Bits: 16, Group: "ipv4"},
		Field{Name: "src", Bits: 32, Group: "ipv4"},
		Field{Name: "dstMac", Bits: 48, Group: "eth"},
	)
	// ttl→1×8b, totalLen→1×16b, src→1×32b, dstMac→ceil(48/32)=2×32b.
	if a.Used8 != 1 || a.Used16 != 1 || a.Used32 != 3 {
		t.Errorf("got %d/%d/%d containers, want 1/1/3", a.Used8, a.Used16, a.Used32)
	}
	if n := len(a.ByField["dstMac"]); n != 2 {
		t.Errorf("dstMac spans %d containers, want 2", n)
	}
	if a.BitsAllocated != 8+16+3*32 {
		t.Errorf("BitsAllocated = %d, want %d", a.BitsAllocated, 8+16+3*32)
	}
}

func TestNaturalAdjacentSmallFieldsShare(t *testing.T) {
	a := alloc(t, TofinoInventory, ModeNatural,
		Field{Name: "version", Bits: 4, Group: "ipv4"},
		Field{Name: "ihl", Bits: 4, Group: "ipv4"},
		Field{Name: "flags", Bits: 3, Group: "ipv4"},
		Field{Name: "other", Bits: 4, Group: "ipv6"},
	)
	// version+ihl share one 8b container; flags fits the remaining 0
	// bits of nothing — it opens a second; "other" is another group and
	// cannot co-reside.
	if a.Used8 != 3 {
		t.Errorf("Used8 = %d, want 3", a.Used8)
	}
	if a.ByField["version"][0] != a.ByField["ihl"][0] {
		t.Errorf("version and ihl should share a container: %v vs %v",
			a.ByField["version"], a.ByField["ihl"])
	}
	if a.ByField["other"][0] == a.ByField["flags"][0] {
		t.Errorf("fields of different groups must not co-reside")
	}
}

func TestAligned16UpsizesAndCoResides(t *testing.T) {
	a := alloc(t, TofinoInventory, ModeAligned16,
		Field{Name: "ttl", Bits: 8, Group: "ipv4"},
		Field{Name: "protocol", Bits: 8, Group: "ipv4"},
		Field{Name: "dstMac", Bits: 48, Group: "eth"},
	)
	// The alignment pass (§6.3) puts everything in 16b containers:
	// ttl+protocol co-reside in one, dstMac takes ceil(48/16)=3.
	if a.Used8 != 0 || a.Used16 != 4 || a.Used32 != 0 {
		t.Errorf("got %d/%d/%d containers, want 0/4/0", a.Used8, a.Used16, a.Used32)
	}
	if a.ByField["ttl"][0] != a.ByField["protocol"][0] {
		t.Errorf("same-group 8-bit fields should share a 16b container")
	}
	if n := len(a.ByField["dstMac"]); n != 3 {
		t.Errorf("dstMac spans %d containers, want 3", n)
	}
}

func TestAligned16VsNaturalWideField(t *testing.T) {
	wide := Field{Name: "seg", Bits: 64, Group: "srh"}
	nat := alloc(t, TofinoInventory, ModeNatural, wide)
	ali := alloc(t, TofinoInventory, ModeAligned16, wide)
	if nat.Used32 != 2 || nat.Used16 != 0 {
		t.Errorf("natural: 64b field wants 2×32b, got %d/%d/%d", nat.Used8, nat.Used16, nat.Used32)
	}
	if ali.Used16 != 4 || ali.Used32 != 0 {
		t.Errorf("aligned16: 64b field wants 4×16b, got %d/%d/%d", ali.Used8, ali.Used16, ali.Used32)
	}
}

func TestPOVPacking(t *testing.T) {
	var fields []Field
	for i := 0; i < 9; i++ {
		fields = append(fields, Field{Name: strings.Repeat("h", i+1) + ".$valid", Bits: 1, POV: true})
	}
	for _, mode := range []Mode{ModeNatural, ModeAligned16} {
		a := alloc(t, TofinoInventory, mode, fields...)
		// 9 POV bits pack 8-per-8b-container → 2 containers, both modes.
		if a.Used8 != 2 || a.Used16 != 0 || a.Used32 != 0 {
			t.Errorf("%v: 9 POV bits used %d/%d/%d containers, want 2/0/0",
				mode, a.Used8, a.Used16, a.Used32)
		}
	}
}

func TestFixedPinsToNaturalClass(t *testing.T) {
	a := alloc(t, TofinoInventory, ModeAligned16,
		Field{Name: "$im.meta.TS", Bits: 32, Group: "$im32", Fixed: true},
		Field{Name: "$im.out_port", Bits: 9, Group: "$im", Fixed: true},
	)
	// Fixed intrinsics ignore the alignment pass: 32b stays a 32b
	// container, 9b takes a 16b container — identical on both paths.
	if a.Used32 != 1 || a.Used16 != 1 || a.Used8 != 0 {
		t.Errorf("got %d/%d/%d containers, want 0/1/1", a.Used8, a.Used16, a.Used32)
	}
}

func TestNaturalExhaustionIsInfeasible(t *testing.T) {
	inv := Inventory{N8: 64, N16: 96, N32: 2}
	_, err := (&Allocator{Inv: inv, Mode: ModeNatural}).Allocate([]Field{
		{Name: "segs.0.hi", Bits: 64, Group: "segs"},
		{Name: "segs.0.lo", Bits: 64, Group: "segs"},
	})
	if err == nil {
		t.Fatal("want 32-bit class exhaustion, got success")
	}
	// The flat path has no cross-class spill: this is the §7.3
	// monolithic-P7 failure mode, and the message must say so.
	if !strings.Contains(err.Error(), "out of 32-bit PHV containers") {
		t.Errorf("error should name the exhausted class: %v", err)
	}
	if !strings.Contains(err.Error(), "segs.0.lo") {
		t.Errorf("error should name the unplaceable field: %v", err)
	}
}

func TestAligned16SpillsInto32b(t *testing.T) {
	inv := Inventory{N8: 4, N16: 2, N32: 4}
	a := alloc(t, inv, ModeAligned16,
		Field{Name: "a", Bits: 16, Group: "g1"},
		Field{Name: "b", Bits: 16, Group: "g2"},
		Field{Name: "c", Bits: 64, Group: "g3"},
	)
	// a and b take both 16b containers; c's four 16-bit chunks spill
	// into 32b containers, two chunks per container.
	if a.Used16 != 2 || a.Used32 != 2 {
		t.Errorf("got %d×16b %d×32b, want 2×16b 2×32b", a.Used16, a.Used32)
	}
	cs := a.ByField["c"]
	if len(cs) != 4 {
		t.Fatalf("c spans %d container slots, want 4", len(cs))
	}
	for _, c := range cs {
		if c.Size != 32 {
			t.Errorf("c's chunks should all have spilled to 32b containers: %v", cs)
		}
	}
	if cs[0] != cs[1] || cs[2] != cs[3] {
		t.Errorf("spilled chunks should pack two per 32b container: %v", cs)
	}
}

func TestAligned16TotalExhaustion(t *testing.T) {
	inv := Inventory{N8: 0, N16: 1, N32: 1}
	_, err := (&Allocator{Inv: inv, Mode: ModeAligned16}).Allocate([]Field{
		{Name: "big", Bits: 128, Group: "g"},
	})
	if err == nil {
		t.Fatal("want exhaustion even with spill, got success")
	}
	if !strings.Contains(err.Error(), "no 32-bit containers left to spill into") {
		t.Errorf("error should describe the failed spill: %v", err)
	}
}

func TestZeroWidthTreatedAsOneBit(t *testing.T) {
	a := alloc(t, TofinoInventory, ModeNatural, Field{Name: "flag", Bits: 0, Group: "m"})
	if a.Used8 != 1 {
		t.Errorf("zero-width field should take one 8b container, got %d", a.Used8)
	}
}

func TestDeterminism(t *testing.T) {
	fields := []Field{
		{Name: "a", Bits: 48, Group: "eth"},
		{Name: "b", Bits: 9, Group: "im", Fixed: true},
		{Name: "c", Bits: 1, POV: true},
		{Name: "d", Bits: 3, Group: "ipv4"},
		{Name: "e", Bits: 13, Group: "ipv4"},
	}
	for _, mode := range []Mode{ModeNatural, ModeAligned16} {
		first := alloc(t, TofinoInventory, mode, fields...)
		for i := 0; i < 10; i++ {
			again := alloc(t, TofinoInventory, mode, fields...)
			if first.Used8 != again.Used8 || first.Used16 != again.Used16 ||
				first.Used32 != again.Used32 || first.BitsAllocated != again.BitsAllocated {
				t.Fatalf("%v: allocation not deterministic", mode)
			}
			for name, cs := range first.ByField {
				got := again.ByField[name]
				if len(got) != len(cs) {
					t.Fatalf("%v: ByField[%s] varies across runs", mode, name)
				}
				for j := range cs {
					if got[j] != cs[j] {
						t.Fatalf("%v: ByField[%s][%d] varies across runs", mode, name, j)
					}
				}
			}
		}
	}
}
