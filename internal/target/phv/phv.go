// Package phv models Tofino's Packet Header Vector: the pool of 8-,
// 16-, and 32-bit containers every header field and metadata scalar
// must be mapped into before a program can run. It is the repo's
// substitute for bf-p4c's PHV allocation phase, and the source of the
// Table 2 numbers (container counts and allocated bits; see
// DESIGN.md, "Target-model calibration").
//
// Two packing disciplines are modeled, matching the two compilation
// paths of the paper:
//
//   - ModeNatural is the flat (monolithic) path: every field lives in
//     its natural size class — ≤8 bits in an 8b container, 9–16 bits
//     in a 16b container, wider fields in as many dedicated 32b
//     containers as they need. Adjacent small fields of the same
//     group (header instance) share containers, but a class that runs
//     out is a hard allocation failure: the flat path has no
//     restructuring pass and cannot spill across classes (the §7.3
//     monolithic-P7 failure).
//
//   - ModeAligned16 is the µP4 path after the §6.3 alignment pass:
//     byte-stack elements and header-field copies are packed
//     16-bit-aligned into 16b containers (wide fields take
//     ceil(bits/16) of them), and when the 16b class is exhausted the
//     backend may spill chunks into 32b containers. This is why
//     composed programs lean heavily on 16b containers (Table 2's
//     ≈2–5× blow-up) while barely touching the 32b class.
//
// In both modes, POV (packet-occupancy-vector) validity bits pack
// eight per shared 8b container, and Fixed fields (intrinsic
// metadata) pin to their natural class so the two paths carry an
// identical intrinsic footprint.
package phv

import "fmt"

// Inventory is the per-class container budget of a target.
type Inventory struct {
	N8  int // 8-bit containers
	N16 int // 16-bit containers
	N32 int // 32-bit containers
}

// TofinoInventory is the modeled Tofino profile: 64×8b and 96×16b
// (the publicly documented container counts) and 28×32b — the 32-bit
// class models the budget left to a user program after bf-p4c's
// infrastructure reservations. See DESIGN.md, "Target-model
// calibration", for why this single knob reproduces the §7.3
// monolithic-P7 failure.
var TofinoInventory = Inventory{N8: 64, N16: 96, N32: 28}

// MaxALUOperands is the per-action-ALU operand budget: the number of
// PHV containers one ALU operation may access (the destination plus
// its sources). Assignments exceeding it must be split into a series
// of MATs (µP4C's backend pass, §6.3) or fail to compile (the flat
// path, §7.3).
const MaxALUOperands = 4

// Mode selects the packing discipline.
type Mode int

const (
	// ModeNatural packs fields monolithically in their natural size
	// classes with no cross-class spill (the flat bf-p4c path).
	ModeNatural Mode = iota
	// ModeAligned16 packs fields 16-bit-aligned into 16b containers,
	// spilling to 32b when the class is exhausted (the µP4 backend
	// after the §6.3 alignment pass).
	ModeAligned16
)

func (m Mode) String() string {
	switch m {
	case ModeNatural:
		return "natural"
	case ModeAligned16:
		return "aligned16"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Field is one PHV allocation request.
type Field struct {
	Name  string // fully-qualified storage path (e.g. "h.ipv4.ttl")
	Bits  int    // width; 0 is treated as 1
	Group string // co-residency group (header instance or "var:" scope)
	POV   bool   // validity bit: packs 8-per-8b-container, ignores Group
	Fixed bool   // intrinsic metadata: pins to its natural class in every Mode
}

// Container identifies one allocated PHV container.
type Container struct {
	Size  int // 8, 16, or 32
	Index int // ordinal within its size class, allocation order
}

// Alloc is the outcome of a successful allocation.
type Alloc struct {
	Used8         int
	Used16        int
	Used32        int
	BitsAllocated int                    // container capacity consumed: 8·Used8 + 16·Used16 + 32·Used32
	ByField       map[string][]Container // every container each field occupies (shared containers appear under each resident)
}

// Allocator maps fields onto an Inventory under a Mode.
type Allocator struct {
	Inv  Inventory
	Mode Mode
}

// open is a partially-filled container accepting co-residents.
type open struct {
	c   Container
	rem int // bits still free
}

// allocState tracks class usage during one Allocate call.
type allocState struct {
	inv   Inventory
	used8, used16, used32 int
}

// take claims a fresh container of the given size, or reports class
// exhaustion.
func (st *allocState) take(size int) (Container, bool) {
	switch size {
	case 8:
		if st.used8 >= st.inv.N8 {
			return Container{}, false
		}
		st.used8++
		return Container{Size: 8, Index: st.used8 - 1}, true
	case 16:
		if st.used16 >= st.inv.N16 {
			return Container{}, false
		}
		st.used16++
		return Container{Size: 16, Index: st.used16 - 1}, true
	case 32:
		if st.used32 >= st.inv.N32 {
			return Container{}, false
		}
		st.used32++
		return Container{Size: 32, Index: st.used32 - 1}, true
	}
	return Container{}, false
}

func naturalClass(bits int) int {
	switch {
	case bits <= 8:
		return 8
	case bits <= 16:
		return 16
	default:
		return 32
	}
}

// Allocate maps the fields onto the inventory in order. Allocation is
// deterministic: identical input yields an identical Alloc. On class
// exhaustion it returns a descriptive infeasibility error naming the
// class and the field that could not be placed.
func (a *Allocator) Allocate(fields []Field) (*Alloc, error) {
	st := &allocState{inv: a.Inv}
	out := &Alloc{ByField: make(map[string][]Container, len(fields))}
	// Open (shared) containers: POV bits pool globally; small fields
	// pool per (group, class).
	var povOpen *open
	groupOpen := make(map[string]*open) // key: group + "/" + class

	place := func(f *Field, c Container) {
		out.ByField[f.Name] = append(out.ByField[f.Name], c)
	}
	fresh := func(f *Field, size int) (Container, error) {
		c, ok := st.take(size)
		if !ok {
			return Container{}, fmt.Errorf("out of %d-bit PHV containers placing %s (%d bits; inventory %d)",
				size, f.Name, f.Bits, a.inventoryOf(size))
		}
		return c, nil
	}
	// shared places a small field into the group's open container of
	// the given class, opening a new one when it does not fit.
	shared := func(f *Field, size, bits int) error {
		key := fmt.Sprintf("%s/%d", f.Group, size)
		o := groupOpen[key]
		if o == nil || o.rem < bits {
			c, err := fresh(f, size)
			if err != nil {
				return err
			}
			o = &open{c: c, rem: size}
			groupOpen[key] = o
		}
		o.rem -= bits
		place(f, o.c)
		return nil
	}
	// dedicated places a wide field across ceil(bits/size) fresh
	// containers of one class.
	dedicated := func(f *Field, size, bits int) error {
		for n := (bits + size - 1) / size; n > 0; n-- {
			c, err := fresh(f, size)
			if err != nil {
				return err
			}
			place(f, c)
		}
		return nil
	}
	// spill16 places 16-bit chunks with 32b-class overflow: the µP4
	// backend may re-home aligned chunks when the 16b class runs dry
	// (two chunks per 32b container).
	var spillOpen *open
	spill16 := func(f *Field, bits int) error {
		for n := (bits + 15) / 16; n > 0; n-- {
			if c, ok := st.take(16); ok {
				place(f, c)
				continue
			}
			if spillOpen == nil || spillOpen.rem < 16 {
				c, ok := st.take(32)
				if !ok {
					return fmt.Errorf("out of 16-bit PHV containers placing %s (%d bits) and no 32-bit containers left to spill into (inventory %d×16b, %d×32b)",
						f.Name, f.Bits, a.Inv.N16, a.Inv.N32)
				}
				spillOpen = &open{c: c, rem: 32}
			}
			spillOpen.rem -= 16
			place(f, spillOpen.c)
		}
		return nil
	}

	for i := range fields {
		f := &fields[i]
		bits := f.Bits
		if bits <= 0 {
			bits = 1
		}
		switch {
		case f.POV:
			// Validity bits pack 8 per shared 8b container in both
			// modes.
			if povOpen == nil || povOpen.rem < 1 {
				c, err := fresh(f, 8)
				if err != nil {
					return nil, err
				}
				povOpen = &open{c: c, rem: 8}
			}
			povOpen.rem--
			place(f, povOpen.c)
		case f.Fixed || a.Mode == ModeNatural:
			// Natural size classes; no cross-class spill.
			if cls := naturalClass(bits); cls == 32 {
				if err := dedicated(f, 32, bits); err != nil {
					return nil, err
				}
			} else if err := shared(f, cls, bits); err != nil {
				return nil, err
			}
		default: // ModeAligned16
			if bits > 16 {
				if err := spill16(f, bits); err != nil {
					return nil, err
				}
			} else {
				// Same-group small fields may co-reside in one 16b
				// container; a group change or a full container opens
				// a new one.
				key := f.Group + "/a16"
				o := groupOpen[key]
				if o == nil || o.rem < bits {
					c, ok := st.take(16)
					if !ok {
						// The aligned path spills small fields too.
						if err := spill16(f, bits); err != nil {
							return nil, err
						}
						continue
					}
					o = &open{c: c, rem: 16}
					groupOpen[key] = o
				}
				o.rem -= bits
				place(f, o.c)
			}
		}
	}

	out.Used8, out.Used16, out.Used32 = st.used8, st.used16, st.used32
	out.BitsAllocated = 8*out.Used8 + 16*out.Used16 + 32*out.Used32
	return out, nil
}

func (a *Allocator) inventoryOf(size int) int {
	switch size {
	case 8:
		return a.Inv.N8
	case 16:
		return a.Inv.N16
	case 32:
		return a.Inv.N32
	}
	return 0
}
