// Package mau models Tofino's Match-Action Unit pipeline: a fixed
// sequence of stages, each holding a bounded number of logical
// tables, onto which a program's tables must be scheduled without
// violating their data dependencies. It is the repo's substitute for
// bf-p4c's table-placement phase and the source of the Table 3 stage
// counts (see DESIGN.md, "Target-model calibration").
//
// The scheduler is a deterministic in-order greedy pass. A table is
// placed at the earliest stage that
//
//   - is no earlier than any preceding table it is not mutually
//     exclusive with (the pipeline executes program order; a later
//     table cannot run in an earlier stage),
//   - strictly follows every preceding table whose writes it reads
//     (match dependency) or whose writes it also writes (output
//     dependency) — anti dependencies (read→write) may share a
//     stage, and
//   - has a free logical-table slot (gateways run in per-stage
//     condition hardware and do not consume slots).
//
// Mutually exclusive tables — those whose branch tags diverge at the
// same gateway condition into different arms — may share a stage
// regardless of apparent conflicts, since at most one of them
// executes per packet: bf-p4c's mutual-exclusion analysis, which is
// what lets an if/else or switch ladder cost one stage instead of
// one per arm.
package mau

import "fmt"

// Branch is one step of a table's control-flow tag: execution reached
// the table through arm Arm of gateway condition Cond.
type Branch struct {
	Cond int // gateway condition id
	Arm  int // which arm of that condition
}

// Table is one logical match-action table to schedule.
type Table struct {
	Name    string
	Reads   []string // storage symbols matched on or read by actions
	Writes  []string // storage symbols written by actions
	Gateway bool     // condition gateway: occupies no table slot
	Tag     []Branch // control path from the pipeline root to this table
}

// Config describes a target MAU pipeline.
type Config struct {
	Stages         int // pipeline depth; 0 means unbounded
	TablesPerStage int // logical-table slots per stage; 0 means unbounded
}

// TofinoConfig is the modeled Tofino profile: 12 stages of 16 logical
// tables each.
var TofinoConfig = Config{Stages: 12, TablesPerStage: 16}

// Placement records where one table landed.
type Placement struct {
	Table string
	Stage int // 0-based
}

// Schedule is a successful placement of every table.
type Schedule struct {
	NumStages  int            // stages actually used (max stage + 1)
	StageOf    map[string]int // table name → 0-based stage
	Placements []Placement    // in input order
}

// Exclusive reports whether two control-flow tags are mutually
// exclusive: they share a prefix and then diverge into different arms
// of the same gateway condition, so at most one of the two tables
// executes for any packet.
func Exclusive(a, b []Branch) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			continue
		}
		return a[i].Cond == b[i].Cond && a[i].Arm != b[i].Arm
	}
	return false
}

func intersects(a, b []string) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		if set[s] {
			return true
		}
	}
	return false
}

// Plan schedules the tables, given in program order, onto cfg's
// pipeline. It returns a descriptive infeasibility error when a table
// cannot be placed within cfg.Stages.
func Plan(tables []Table, cfg Config) (*Schedule, error) {
	sched := &Schedule{StageOf: make(map[string]int, len(tables))}
	stageOf := make([]int, len(tables))
	load := make(map[int]int)
	for i := range tables {
		t := &tables[i]
		s := 0
		for j := 0; j < i; j++ {
			u := &tables[j]
			if Exclusive(u.Tag, t.Tag) {
				continue
			}
			// Program order: never earlier than a non-exclusive
			// predecessor.
			min := stageOf[j]
			// Match (write→read) and output (write→write)
			// dependencies force a stage advance; anti dependencies
			// may share the stage.
			if intersects(u.Writes, t.Reads) || intersects(u.Writes, t.Writes) {
				min = stageOf[j] + 1
			}
			if min > s {
				s = min
			}
		}
		if !t.Gateway && cfg.TablesPerStage > 0 {
			for load[s] >= cfg.TablesPerStage {
				s++
			}
		}
		if cfg.Stages > 0 && s >= cfg.Stages {
			return nil, fmt.Errorf("table %s needs stage %d of a %d-stage pipeline (dependency chains and per-stage capacity %d exhausted the MAU)",
				t.Name, s+1, cfg.Stages, cfg.TablesPerStage)
		}
		stageOf[i] = s
		sched.StageOf[t.Name] = s
		sched.Placements = append(sched.Placements, Placement{Table: t.Name, Stage: s})
		if !t.Gateway {
			load[s]++
		}
		if s+1 > sched.NumStages {
			sched.NumStages = s + 1
		}
	}
	return sched, nil
}
