package mau

import (
	"strings"
	"testing"
)

func plan(t *testing.T, cfg Config, tables ...Table) *Schedule {
	t.Helper()
	s, err := Plan(tables, cfg)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	return s
}

func TestIndependentTablesShareAStage(t *testing.T) {
	s := plan(t, TofinoConfig,
		Table{Name: "a", Reads: []string{"x"}, Writes: []string{"y"}},
		Table{Name: "b", Reads: []string{"x"}, Writes: []string{"z"}},
	)
	if s.NumStages != 1 {
		t.Errorf("independent tables need %d stages, want 1", s.NumStages)
	}
}

func TestMatchDependencyChains(t *testing.T) {
	// a writes x, b matches on x, c matches on b's output: a strict
	// write→read chain, one stage each.
	s := plan(t, TofinoConfig,
		Table{Name: "a", Writes: []string{"x"}},
		Table{Name: "b", Reads: []string{"x"}, Writes: []string{"y"}},
		Table{Name: "c", Reads: []string{"y"}},
	)
	if s.NumStages != 3 {
		t.Errorf("chain scheduled in %d stages, want 3", s.NumStages)
	}
	for name, want := range map[string]int{"a": 0, "b": 1, "c": 2} {
		if s.StageOf[name] != want {
			t.Errorf("stage(%s) = %d, want %d", name, s.StageOf[name], want)
		}
	}
}

func TestOutputDependencyForcesOrder(t *testing.T) {
	// Two writers of the same field execute in distinct stages
	// (write→write order), even with no reader between them.
	s := plan(t, TofinoConfig,
		Table{Name: "w1", Writes: []string{"x"}},
		Table{Name: "w2", Writes: []string{"x"}},
	)
	if s.StageOf["w2"] != s.StageOf["w1"]+1 {
		t.Errorf("w1@%d w2@%d: output dependency must advance a stage",
			s.StageOf["w1"], s.StageOf["w2"])
	}
}

func TestAntiDependencySharesStage(t *testing.T) {
	// r reads x, then w writes x: the reader matched on the old value,
	// so both fit one stage (read→write is not a stage barrier).
	s := plan(t, TofinoConfig,
		Table{Name: "r", Reads: []string{"x"}},
		Table{Name: "w", Writes: []string{"x"}},
	)
	if s.NumStages != 1 {
		t.Errorf("anti-dependent pair needs %d stages, want 1", s.NumStages)
	}
}

func TestExclusiveArmsShareAStage(t *testing.T) {
	// if (c) { thenT } else { elseT }: both arms write nh, but at most
	// one executes per packet, so they co-reside; the join table reads
	// nh and must follow both.
	s := plan(t, TofinoConfig,
		Table{Name: "gw", Gateway: true, Reads: []string{"c"}},
		Table{Name: "thenT", Writes: []string{"nh"}, Tag: []Branch{{Cond: 1, Arm: 0}}},
		Table{Name: "elseT", Writes: []string{"nh"}, Tag: []Branch{{Cond: 1, Arm: 1}}},
		Table{Name: "join", Reads: []string{"nh"}},
	)
	if s.StageOf["thenT"] != s.StageOf["elseT"] {
		t.Errorf("exclusive arms at stages %d vs %d, want shared",
			s.StageOf["thenT"], s.StageOf["elseT"])
	}
	if s.StageOf["gw"] != 0 || s.StageOf["thenT"] != 0 {
		t.Errorf("gateway and arm should share stage 0: gw@%d thenT@%d",
			s.StageOf["gw"], s.StageOf["thenT"])
	}
	if s.StageOf["join"] != 1 {
		t.Errorf("join@%d, want 1 (follows both arms)", s.StageOf["join"])
	}
	if s.NumStages != 2 {
		t.Errorf("NumStages = %d, want 2", s.NumStages)
	}
}

func TestNestedExclusivity(t *testing.T) {
	// Arms of the same switch are exclusive only against each other;
	// a table on the shared path after the switch orders behind both.
	inner := func(arm int, name string) Table {
		return Table{Name: name, Writes: []string{"x"}, Tag: []Branch{{Cond: 1, Arm: arm}}}
	}
	s := plan(t, TofinoConfig,
		Table{Name: "gw", Gateway: true, Reads: []string{"sel"}},
		inner(0, "case0"),
		inner(1, "case1"),
		inner(2, "case2"),
		Table{Name: "after", Writes: []string{"x"}},
	)
	for _, n := range []string{"case0", "case1", "case2"} {
		if s.StageOf[n] != 0 {
			t.Errorf("%s@%d, want 0 (mutually exclusive arms share)", n, s.StageOf[n])
		}
	}
	if s.StageOf["after"] != 1 {
		t.Errorf("after@%d, want 1 (write→write with every arm)", s.StageOf["after"])
	}
}

func TestExclusivePredicate(t *testing.T) {
	cases := []struct {
		a, b []Branch
		want bool
	}{
		{nil, nil, false},
		{[]Branch{{1, 0}}, nil, false},                                     // prefix: gateway vs its arm
		{[]Branch{{1, 0}}, []Branch{{1, 1}}, true},                         // sibling arms
		{[]Branch{{1, 0}}, []Branch{{1, 0}}, false},                        // same arm
		{[]Branch{{1, 0}, {2, 0}}, []Branch{{1, 0}, {2, 1}}, true},         // nested siblings
		{[]Branch{{1, 0}, {2, 0}}, []Branch{{1, 1}, {3, 0}}, true},         // diverge at outer level
		{[]Branch{{1, 0}, {2, 0}}, []Branch{{1, 0}}, false},                // arm vs enclosing path
	}
	for i, c := range cases {
		if got := Exclusive(c.a, c.b); got != c.want {
			t.Errorf("case %d: Exclusive(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
		if got := Exclusive(c.b, c.a); got != c.want {
			t.Errorf("case %d: Exclusive is not symmetric", i)
		}
	}
}

func TestStageCapacity(t *testing.T) {
	cfg := Config{Stages: 12, TablesPerStage: 2}
	s := plan(t, cfg,
		Table{Name: "a"}, Table{Name: "b"}, Table{Name: "c"},
		Table{Name: "gw", Gateway: true}, Table{Name: "d"},
	)
	// Two tables per stage; the gateway costs no slot.
	if s.StageOf["c"] != 1 {
		t.Errorf("c@%d, want 1 (stage 0 full)", s.StageOf["c"])
	}
	if s.StageOf["gw"] != 1 || s.StageOf["d"] != 1 {
		t.Errorf("gw@%d d@%d, want both at 1 (gateways are slot-free)",
			s.StageOf["gw"], s.StageOf["d"])
	}
}

func TestPipelineDepthExceeded(t *testing.T) {
	// A 13-deep write→read chain cannot fit 12 stages.
	var tables []Table
	prev := "start"
	for i := 0; i < 13; i++ {
		sym := string(rune('a' + i))
		tables = append(tables, Table{Name: "t" + sym, Reads: []string{prev}, Writes: []string{sym}})
		prev = sym
	}
	_, err := Plan(tables, TofinoConfig)
	if err == nil {
		t.Fatal("13-stage chain scheduled on a 12-stage pipeline")
	}
	if !strings.Contains(err.Error(), "12-stage pipeline") {
		t.Errorf("error should name the pipeline depth: %v", err)
	}
	if !strings.Contains(err.Error(), "tm") {
		t.Errorf("error should name the unplaceable table: %v", err)
	}
}

func TestUnboundedConfig(t *testing.T) {
	var tables []Table
	prev := "s0"
	for i := 0; i < 40; i++ {
		sym := string(rune('A' + i))
		tables = append(tables, Table{Name: "t" + sym, Reads: []string{prev}, Writes: []string{sym}})
		prev = sym
	}
	s := plan(t, Config{}, tables...)
	if s.NumStages != 40 {
		t.Errorf("unbounded config scheduled %d stages, want 40", s.NumStages)
	}
}

func TestEmptyPlan(t *testing.T) {
	s := plan(t, TofinoConfig)
	if s.NumStages != 0 || len(s.Placements) != 0 {
		t.Errorf("empty input: NumStages=%d placements=%d, want 0/0", s.NumStages, len(s.Placements))
	}
}
