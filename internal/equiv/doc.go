// Package equiv mechanically checks that µP4C's compilation pipeline
// preserves behavior on every reachable execution path of the composed
// programs P1–P9: the slot-compiled MAT engine (sim.Exec), the reference
// interpreter (sim.Interp), and an independently re-transformed copy of
// the program must produce byte-identical outputs on one concrete
// witness per path.
//
// # Architecture
//
// The checker is a three-stage pipeline:
//
//  1. Universe construction. analysis.EnumerateParserPaths gives every
//     start→accept and start→reject route of every linked program's
//     parser (keyed by ParserPath.Key); equiv additionally derives the
//     implicit no-match reject paths — a select with no default case
//     rejects when no case matches, which the enumeration (by design)
//     does not list — as "<prefix>[-1]:reject" keys.
//     analysis.EnumerateControlSites gives every table apply and
//     if/switch decision with its outcome alphabet.
//
//  2. Witness synthesis, concolically. A seed packet is run through the
//     reference interpreter in observation mode (sim.ObserveProcess),
//     which records every decision taken and — crucially — the
//     input-packet bit location each deciding value was read from
//     (sim.BitLoc), tracked through casts, slices, module-call argument
//     binding, and deparser write-back splices. For every decision the
//     explorer forks each untried alternative: select cases and branch
//     arms are forced by rewriting the located input bytes; table
//     outcomes are forced by installing (or withholding) an entry whose
//     keys are the observed key values. Each forced variant is re-run;
//     if the recorded decision prefix did not replay, the attempt is
//     recorded as unreached with its reason — never silently dropped.
//     Truncation probes (the packet cut one byte short of each observed
//     extraction) exercise the parser's "short" reject handling, which
//     is outside the enumerable path universe.
//
//  3. Differential execution. Every deduplicated witness — a packet, an
//     ingress port, and a set of table entries applied to a
//     snapshot-restored empty control plane — is run through the three
//     engines; outputs (packets, ports), drop/recirculate/multicast
//     disposition, digests, and error classes must agree exactly. A
//     divergence is minimized greedily (dropping table ops, then
//     trimming trailing packet bytes) before being reported.
//
// # Soundness boundary
//
// The guarantee is per enumerated path, not per packet: parse graphs
// must be acyclic (stack loops are unrolled by the midend first) and
// enumeration is exhaustive but capped at 8192 paths per parser, past
// which the program is rejected outright rather than sampled. Varbit
// extraction lengths are explored at the values the seeds and forcing
// produce, not at every length; the fuzz targets (internal/sim's fuzz
// differential) remain the complement that explores arbitrary packet
// bytes, while this package guarantees decision-structure coverage.
// Paths whose witnesses cannot be synthesized — e.g. a table miss
// shadowed by const entries, or a decision on a value with no input
// provenance — are reported with reasons in Report.Unreached.
//
// # Entry points
//
// Check runs the whole pipeline for one program and returns a Report;
// `up4c -verify-paths` and the equiv tests are thin wrappers over it.
// Options.Transform injects the midend transform used by the third
// engine — the mutation tests prove non-vacuity by injecting a broken
// transform and requiring a divergence.
package equiv
