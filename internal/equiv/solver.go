package equiv

import (
	"fmt"

	"microp4/internal/analysis"
	"microp4/internal/ir"
	"microp4/internal/sim"
)

// ----------------------------------------------------------------------------
// Bit-level packet access. Private mirrors of internal/sim's unexported
// helpers (same network bit order: MSB of byte 0 is bit 0), so witness
// synthesis writes bytes exactly as the interpreter reads them.

func maskW(w int) uint64 {
	if w <= 0 {
		return 0
	}
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

func truncate(v uint64, w int) uint64 { return v & maskW(w) }

func readBits(buf []byte, off, w int) uint64 {
	var v uint64
	bit := off
	for remaining := w; remaining > 0; {
		byteIdx := bit >> 3
		inByte := bit & 7
		take := 8 - inByte
		if take > remaining {
			take = remaining
		}
		var b byte
		if byteIdx < len(buf) {
			b = buf[byteIdx]
		}
		chunk := b >> (8 - inByte - take) & byte(1<<take-1)
		v = v<<take | uint64(chunk)
		bit += take
		remaining -= take
	}
	return v
}

func writeBits(buf []byte, off, w int, v uint64) {
	bit := off
	for remaining := w; remaining > 0; {
		byteIdx := bit >> 3
		inByte := bit & 7
		take := 8 - inByte
		if take > remaining {
			take = remaining
		}
		if byteIdx < len(buf) {
			chunk := byte(v>>(remaining-take)) & byte(1<<take-1)
			shift := 8 - inByte - take
			mask := byte(1<<take-1) << shift
			buf[byteIdx] = buf[byteIdx]&^mask | chunk<<shift
		}
		bit += take
		remaining -= take
	}
}

// writeLoc writes value v into the input-packet location loc, checking
// that the value fits and the location is inside the packet. Returns a
// reason string on failure ("" = written).
func writeLoc(pkt []byte, loc sim.BitLoc, v uint64) string {
	if !loc.OK {
		return "value has no input-packet provenance"
	}
	// The location's value is truncate(bits + Add, Width), so any v that
	// fits Width is representable: invert the affine offset in the same
	// modular arithmetic.
	if loc.Width < 64 && v>>uint(loc.Width) != 0 {
		return fmt.Sprintf("value %#x does not fit the %d-bit source field", v, loc.Width)
	}
	if loc.Off < 0 || loc.Off+loc.Width > len(pkt)*8 {
		return "source field lies outside the packet"
	}
	writeBits(pkt, loc.Off, loc.Width, truncate(v-loc.Add, loc.Width))
	return ""
}

// ----------------------------------------------------------------------------
// Select-case steering

// matchesCase reports whether value tuple vals (already truncated to the
// select expressions' widths ws) matches transition case c.
func matchesCase(c *ir.TransCase, vals []uint64, ws []int) bool {
	if c.Default {
		return true
	}
	for j := range c.Values {
		if j >= len(vals) {
			break
		}
		if j < len(c.DontCare) && c.DontCare[j] {
			continue
		}
		v := truncate(vals[j], ws[j])
		if j < len(c.HasMask) && c.HasMask[j] {
			if v&c.Masks[j] != c.Values[j]&c.Masks[j] {
				return false
			}
		} else if v != c.Values[j] {
			return false
		}
	}
	return true
}

// avoidColumn tries to pick a single column j and value making every
// case in avoid fail to match, leaving the other columns at their
// current values. Returns the new tuple, or a reason.
func avoidColumn(avoid []*ir.TransCase, vals []uint64, ws []int) ([]uint64, string) {
	if len(avoid) == 0 {
		return vals, ""
	}
	for j := range vals {
		w := ws[j]
		// A case that don't-cares this column can never be broken here.
		skip := false
		for _, c := range avoid {
			if j >= len(c.Values) || (j < len(c.DontCare) && c.DontCare[j]) {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		cands := []uint64{0, 1, maskW(w), truncate(vals[j], w)}
		for _, c := range avoid {
			cv := c.Values[j]
			cands = append(cands, truncate(cv^1, w), truncate(cv+1, w), truncate(cv-1, w), truncate(^cv, w))
			if j < len(c.HasMask) && c.HasMask[j] {
				cands = append(cands, truncate(cv^c.Masks[j], w))
			}
		}
		for _, v := range cands {
			ok := true
			for _, c := range avoid {
				cv := c.Values[j]
				if j < len(c.HasMask) && c.HasMask[j] {
					if v&c.Masks[j] == cv&c.Masks[j] {
						ok = false
						break
					}
				} else if v == cv {
					ok = false
					break
				}
			}
			if ok {
				out := append([]uint64(nil), vals...)
				out[j] = v
				return out, ""
			}
		}
	}
	return nil, "no single-column value avoids every competing case"
}

// chooseCaseValues returns select-expression values steering a select
// with cases cs (current truncated values cur, widths ws) to case index
// target; target < 0 means past every case, i.e. the implicit no-match
// reject (only meaningful when cs has no default case). The interpreter
// takes the first matching case in declaration order — and a default
// case matches unconditionally when reached — so steering must also
// avoid every earlier case. A non-empty reason means the target cannot
// be steered to with these semantics.
func chooseCaseValues(cs []*ir.TransCase, cur []uint64, ws []int, target int) ([]uint64, string) {
	vals := append([]uint64(nil), cur...)
	var avoid []*ir.TransCase
	upto := len(cs)
	if target >= 0 {
		upto = target
	}
	for k := 0; k < upto; k++ {
		if cs[k].Default {
			return nil, fmt.Sprintf("an earlier default case (index %d) always wins", k)
		}
		avoid = append(avoid, cs[k])
	}
	if target >= 0 && !cs[target].Default {
		c := cs[target]
		for j := range vals {
			if j >= len(c.Values) {
				break
			}
			switch {
			case j < len(c.DontCare) && c.DontCare[j]:
				// free column
			case j < len(c.HasMask) && c.HasMask[j]:
				vals[j] = truncate(vals[j]&^c.Masks[j]|c.Values[j]&c.Masks[j], ws[j])
			default:
				vals[j] = truncate(c.Values[j], ws[j])
			}
		}
		// The assignment above may have made an earlier case match; the
		// avoidance pass below may only touch columns the target
		// don't-cares, so filter the avoid set to cases still matching
		// and verify the fix kept the target matched.
		var still []*ir.TransCase
		for _, a := range avoid {
			if matchesCase(a, vals, ws) {
				still = append(still, a)
			}
		}
		if len(still) > 0 {
			fixed, reason := avoidColumn(still, vals, ws)
			if reason != "" {
				return nil, "shadowed by an earlier case: " + reason
			}
			if !matchesCase(c, fixed, ws) {
				return nil, "avoiding earlier cases breaks the target case"
			}
			// Re-check the whole earlier range (the fix may wake another).
			for _, a := range avoid {
				if matchesCase(a, fixed, ws) {
					return nil, "shadowed by an earlier case after avoidance"
				}
			}
			vals = fixed
		}
		return vals, ""
	}
	// Default target or no-match: only avoidance.
	out, reason := avoidColumn(avoid, vals, ws)
	if reason != "" {
		return nil, reason
	}
	return out, ""
}

// exprWidth returns the bit width an expression evaluates at inside a
// select comparison.
func exprWidth(e *ir.Expr) int {
	if e == nil {
		return 0
	}
	if e.Kind == ir.ESlice {
		return e.Hi - e.Lo + 1
	}
	return e.Width
}

// ----------------------------------------------------------------------------
// Static per-path packet synthesis

// statLocs tracks field locations while replaying a parser path's
// statements statically; it is the static shadow of the interpreter's
// frameObs.locs.
type statLocs map[string]sim.BitLoc

func (m statLocs) resolve(e *ir.Expr) sim.BitLoc {
	if e == nil {
		return sim.BitLoc{}
	}
	switch e.Kind {
	case ir.ERef:
		return m[e.Ref]
	case ir.EUn:
		if e.Op != "cast" {
			return sim.BitLoc{}
		}
		in := m.resolve(e.X)
		if !in.OK {
			return sim.BitLoc{}
		}
		if e.Width > 0 && e.Width < in.Width {
			return sim.BitLoc{Off: in.Off + in.Width - e.Width, Width: e.Width, OK: true}
		}
		return in
	case ir.ESlice:
		in := m.resolve(e.X)
		if !in.OK || e.Hi >= in.Width || e.Lo < 0 || e.Hi < e.Lo {
			return sim.BitLoc{}
		}
		return sim.BitLoc{Off: in.Off + in.Width - 1 - e.Hi, Width: e.Hi - e.Lo + 1, OK: true}
	}
	return sim.BitLoc{}
}

// SolvePacket synthesizes a packet that drives p's parser down the given
// enumerated path, byte-by-byte from the path's select constraints. pad
// extra zero bytes follow the extracted region so accepting paths have
// payload to deparse. Paths through varbit extractions are not solvable
// statically (the concolic explorer covers them); they return an error.
func SolvePacket(p *ir.Program, path *analysis.ParserPath, pad int) ([]byte, error) {
	for _, ex := range path.Extracts {
		if ex.Varbit {
			return nil, fmt.Errorf("%s: path %s extracts varbit header %s; not statically solvable", p.Name, path.Key(), ex.Hdr)
		}
	}
	pkt := make([]byte, path.Bytes+pad)
	locs := make(statLocs)
	nextExtract := 0
	for _, step := range path.Steps {
		for _, s := range step.Stmts {
			switch s.Kind {
			case ir.SExtract:
				if nextExtract >= len(path.Extracts) {
					return nil, fmt.Errorf("%s: path %s has more extracts than recorded", p.Name, path.Key())
				}
				ex := path.Extracts[nextExtract]
				nextExtract++
				ht := p.HeaderOf(ex.Hdr)
				if ht == nil {
					return nil, fmt.Errorf("%s: unknown header %s", p.Name, ex.Hdr)
				}
				off := ex.ByteOff * 8
				for _, fl := range ht.Fields {
					locs[ex.Hdr+"."+fl.Name] = sim.BitLoc{Off: off, Width: fl.Width, OK: true}
					off += fl.Width
				}
			case ir.SAssign:
				// A parser-state assignment breaks the static field→byte
				// correspondence for its target.
				if s.LHS != nil && s.LHS.Kind == ir.ERef {
					delete(locs, s.LHS.Ref)
				}
			}
		}
		c := step.Constraint
		if c == nil {
			continue
		}
		st := p.Parser.State(step.State)
		if st == nil || st.Trans == nil || st.Trans.Kind != "select" {
			return nil, fmt.Errorf("%s: state %s has a constraint but no select", p.Name, step.State)
		}
		tr := st.Trans
		ws := make([]int, len(tr.Exprs))
		cur := make([]uint64, len(tr.Exprs))
		eLocs := make([]sim.BitLoc, len(tr.Exprs))
		for j, e := range tr.Exprs {
			ws[j] = exprWidth(e)
			eLocs[j] = locs.resolve(e)
			if !eLocs[j].OK {
				return nil, fmt.Errorf("%s: select operand %d in state %s has no static packet location", p.Name, j, step.State)
			}
			cur[j] = readBits(pkt, eLocs[j].Off, eLocs[j].Width)
		}
		vals, reason := chooseCaseValues(tr.Cases, cur, ws, c.CaseIndex)
		if reason != "" {
			return nil, fmt.Errorf("%s: state %s case %d: %s", p.Name, step.State, c.CaseIndex, reason)
		}
		for j := range vals {
			if truncate(vals[j], ws[j]) == truncate(cur[j], ws[j]) {
				continue
			}
			if r := writeLoc(pkt, eLocs[j], vals[j]); r != "" {
				return nil, fmt.Errorf("%s: state %s operand %d: %s", p.Name, step.State, j, r)
			}
		}
	}
	return pkt, nil
}
