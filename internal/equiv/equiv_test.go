package equiv

import (
	"fmt"
	"strings"
	"testing"

	"microp4/internal/ir"
	"microp4/internal/lib"
	"microp4/internal/midend"
	"microp4/internal/sim"
)

// TestPathCoverageGate is the CI hard gate: for every composed program,
// all enumerated accepting and rejecting parser paths must be witnessed
// and differentially checked with zero divergences, and every control-
// site outcome outside the documented structurally-unreachable set must
// be covered.
func TestPathCoverageGate(t *testing.T) {
	for _, m := range lib.Programs {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			r, err := Check(m.Name, Options{})
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			if r.Capped {
				t.Errorf("witness cap hit: exploration incomplete")
			}
			if r.TotalDivergences != 0 {
				t.Errorf("%d divergences:\n%s", r.TotalDivergences, r.String())
			}
			if !r.ParserCoverageOK() {
				t.Errorf("parser-path coverage incomplete:\n%s", r.String())
			}
			for _, k := range r.UnexpectedMissing() {
				t.Errorf("uncovered control-site outcome %s (not in the documented unreachable set)", k)
			}
			if !r.OK() {
				t.Errorf("Report.OK() = false")
			}
			// Conversely: every allowlisted outcome must actually be
			// missing — if the checker starts covering one, the structural
			// argument above is stale and the list must shrink.
			missing := make(map[string]bool)
			for _, s := range r.Sites {
				for _, o := range s.Missing {
					missing[s.Label+"|"+o] = true
				}
			}
			for k := range StructurallyUnreachable[m.Name] {
				if !missing[k] {
					t.Errorf("outcome %s is covered now; remove it from StructurallyUnreachable", k)
				}
			}
			// Unreached outcomes must carry a documented reason.
			if len(missing) > 0 && len(r.Unreached) == 0 {
				t.Errorf("missing outcomes without unreached notes:\n%s", r.String())
			}
		})
	}
}

// mutateTTL flips the IPv4 module's TTL decrement into an increment —
// a midend "transform" with a deliberate bug.
func mutateTTL(p *ir.Program) (*ir.Program, error) {
	q, err := midend.Transform(p)
	if err != nil {
		return nil, err
	}
	if q.Name != "IPv4" {
		return q, nil
	}
	n := 0
	var walk func(ss []*ir.Stmt)
	walk = func(ss []*ir.Stmt) {
		for _, s := range ss {
			if s == nil {
				continue
			}
			if s.Kind == ir.SAssign && s.RHS != nil && s.RHS.Kind == ir.EBin &&
				s.RHS.Op == "-" && strings.Contains(s.LHS.Ref, "ttl") {
				s.RHS.Op = "+"
				n++
			}
			walk(s.Then)
			walk(s.Else)
			for _, c := range s.Cases {
				walk(c.Body)
			}
		}
	}
	for _, a := range q.Actions {
		walk(a.Body)
	}
	walk(q.Apply)
	if n == 0 {
		return nil, fmt.Errorf("mutation found no ttl decrement to flip")
	}
	return q, nil
}

// walkNat64 applies mutate to every statement of a transformed NAT64
// module and errors if nothing matched (a silently vacuous mutation is
// worse than none).
func walkNat64(p *ir.Program, what string, mutate func(*ir.Stmt) bool) (*ir.Program, error) {
	q, err := midend.Transform(p)
	if err != nil {
		return nil, err
	}
	if q.Name != "NAT64" {
		return q, nil
	}
	n := 0
	var walk func(ss []*ir.Stmt)
	walk = func(ss []*ir.Stmt) {
		for _, s := range ss {
			if s == nil {
				continue
			}
			if mutate(s) {
				n++
			}
			walk(s.Then)
			walk(s.Else)
			for _, c := range s.Cases {
				walk(c.Body)
			}
		}
	}
	for _, a := range q.Actions {
		walk(a.Body)
	}
	walk(q.Apply)
	if n == 0 {
		return nil, fmt.Errorf("mutation found no %s to flip", what)
	}
	return q, nil
}

// mutateNat64Checksum breaks the IPv6→IPv4 translation's checksum
// finalization: the one's-complement fold `sum ^ 0xFFFF` becomes
// `sum & 0xFFFF`, which never equals the correct value.
func mutateNat64Checksum(p *ir.Program) (*ir.Program, error) {
	return walkNat64(p, "checksum xor", func(s *ir.Stmt) bool {
		if s.Kind != ir.SAssign || s.LHS == nil || !strings.Contains(s.LHS.Ref, "hdrChecksum") {
			return false
		}
		hit := false
		var fix func(e *ir.Expr)
		fix = func(e *ir.Expr) {
			if e == nil {
				return
			}
			if e.Kind == ir.EBin && e.Op == "^" && e.Y != nil &&
				e.Y.Kind == ir.EConst && e.Y.Value == 0xFFFF {
				e.Op = "&"
				hit = true
			}
			fix(e.X)
			fix(e.Y)
		}
		fix(s.RHS)
		return hit
	})
}

// mutateNat64Prefix corrupts the IPv4→IPv6 address rewrite: the
// synthesized source address gets the wrong NAT64 prefix.
func mutateNat64Prefix(p *ir.Program) (*ir.Program, error) {
	return walkNat64(p, "NAT64 prefix constant", func(s *ir.Stmt) bool {
		if s.Kind != ir.SAssign || s.RHS == nil {
			return false
		}
		hit := false
		var fix func(e *ir.Expr)
		fix = func(e *ir.Expr) {
			if e == nil {
				return
			}
			if e.Kind == ir.EConst && e.Value == 0x0064FF9B00000000 {
				e.Value ^= 0x0000000100000000
				hit = true
			}
			fix(e.X)
			fix(e.Y)
		}
		fix(s.RHS)
		return hit
	})
}

// TestP10Nat64MutationDetected proves the P10 gate catches dataplane
// bugs in the scenario pack's hardest module: flipping either the
// translated header's checksum math or the synthesized v6 address must
// surface as divergences with concrete witnesses.
func TestP10Nat64MutationDetected(t *testing.T) {
	for name, mut := range map[string]func(*ir.Program) (*ir.Program, error){
		"checksum": mutateNat64Checksum,
		"address":  mutateNat64Prefix,
	} {
		t.Run(name, func(t *testing.T) {
			r, err := Check("P10", Options{Transform: mut})
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			if r.TotalDivergences == 0 {
				t.Fatalf("broken NAT64 %s produced no divergences; the gate is vacuous:\n%s", name, r.String())
			}
			d := r.Divergences[0]
			if d.Pair != "reference vs re-transformed" {
				t.Errorf("divergence pair = %q, want reference vs re-transformed", d.Pair)
			}
			if d.Witness == nil || len(d.Witness.Packet) == 0 {
				t.Error("divergence carries no witness packet")
			}
		})
	}
}

// TestMutationDetected proves the gate is not vacuous: a deliberately
// broken midend transform must produce divergences, and the divergence
// report must carry a concrete minimized witness.
func TestMutationDetected(t *testing.T) {
	r, err := Check("P4", Options{Transform: mutateTTL})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if r.TotalDivergences == 0 {
		t.Fatalf("broken transform produced no divergences; the gate is vacuous:\n%s", r.String())
	}
	if len(r.Divergences) == 0 {
		t.Fatal("divergences counted but none kept")
	}
	d := r.Divergences[0]
	if d.Pair != "reference vs re-transformed" {
		t.Errorf("divergence pair = %q, want reference vs re-transformed", d.Pair)
	}
	if d.Witness == nil || len(d.Witness.Packet) == 0 {
		t.Error("divergence carries no witness packet")
	}
}

// TestMutationCleanBaseline pins the mutation test's sensitivity: the
// same program with the honest transform has no divergences, so the
// failures above are attributable to the injected bug alone.
func TestMutationCleanBaseline(t *testing.T) {
	r, err := Check("P4", Options{})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if r.TotalDivergences != 0 {
		t.Fatalf("clean P4 diverges:\n%s", r.String())
	}
}

func TestSatisfyCmp(t *testing.T) {
	loc8 := sim.BitLoc{Off: 0, Width: 8, OK: true}
	cases := []struct {
		op   string
		c    uint64
		want uint64
		fail bool
	}{
		{"==", 7, 7, false},
		{"==", 300, 0, true}, // not representable in 8 bits
		{"!=", 7, 6, false},
		{">", 7, 8, false},
		{">", 255, 0, true},
		{">=", 255, 255, false},
		{"<", 0, 0, true},
		{"<", 9, 0, false},
		{"<=", 0, 0, false},
	}
	for _, tc := range cases {
		v, reason := satisfyCmp(tc.op, tc.c, loc8)
		if tc.fail != (reason != "") {
			t.Errorf("satisfyCmp(%q, %d): reason=%q, want fail=%v", tc.op, tc.c, reason, tc.fail)
			continue
		}
		if !tc.fail && v != tc.want {
			t.Errorf("satisfyCmp(%q, %d) = %d, want %d", tc.op, tc.c, v, tc.want)
		}
	}
}

// TestWriteLocAffine checks the affine inversion: a location recording
// "value = truncate(bits + Add, Width)" must have its bits set so the
// expression evaluates to the requested value, including wrap-around.
func TestWriteLocAffine(t *testing.T) {
	loc := sim.BitLoc{Off: 8, Width: 8, Add: ^uint64(0), OK: true} // value = bits - 1
	pkt := make([]byte, 4)
	if r := writeLoc(pkt, loc, 3); r != "" {
		t.Fatalf("writeLoc: %s", r)
	}
	if pkt[1] != 4 {
		t.Errorf("bits = %d, want 4 (value 3 = 4 - 1)", pkt[1])
	}
	// Wrap-around: value 255 needs raw bits 0.
	if r := writeLoc(pkt, loc, 255); r != "" {
		t.Fatalf("writeLoc wrap: %s", r)
	}
	if pkt[1] != 0 {
		t.Errorf("bits = %d, want 0 (value 255 = truncate(0 - 1, 8))", pkt[1])
	}
	if r := writeLoc(pkt, loc, 256); r == "" {
		t.Error("value 256 accepted for an 8-bit location")
	}
	if r := writeLoc(pkt, sim.BitLoc{}, 1); r == "" {
		t.Error("write through a !OK location accepted")
	}
}

func TestPartHolds(t *testing.T) {
	cases := []struct {
		p    sim.CondPart
		want bool
	}{
		{sim.CondPart{Op: "==", Const: 5, Val: 5, OK: true}, true},
		{sim.CondPart{Op: "==", Const: 5, Val: 4, OK: true}, false},
		{sim.CondPart{Op: ">", Const: 0, Val: 1, OK: true}, true},
		{sim.CondPart{Op: "<=", Const: 3, Val: 4, OK: true}, false},
		{sim.CondPart{Val: 1}, true},  // opaque: truth is the value
		{sim.CondPart{Val: 0}, false}, // opaque false
	}
	for i, tc := range cases {
		if got := partHolds(tc.p); got != tc.want {
			t.Errorf("case %d: partHolds = %v, want %v", i, got, tc.want)
		}
	}
}
