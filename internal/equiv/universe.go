package equiv

import (
	"fmt"
	"sort"
	"strings"

	"microp4/internal/analysis"
	"microp4/internal/ir"
	"microp4/internal/linker"
)

// parserUniverse is the coverage universe of one program's parser: every
// enumerated path key plus the derived implicit no-match reject keys.
type parserUniverse struct {
	Prog    string
	Keys    []string // deterministic order: enumerated first, then derived
	Accepts int
	Rejects int                             // explicit + derived no-match
	Paths   map[string]*analysis.ParserPath // enumerated paths by key
}

// noMatchKey builds the key of the implicit reject path that falls off
// the case list of the select ending steps[k]: the enumerated prefix,
// a "[-1]" marker for the unmatched select, and a reject disposition.
// The format lines up with ParserPath.Key and with the observed-trace
// key assembly (a select event with Taken == -1 prints as "[-1]").
func noMatchKey(steps []analysis.PathStep, k int) string {
	var b strings.Builder
	for i := 0; i <= k; i++ {
		if i > 0 {
			b.WriteByte('>')
		}
		b.WriteString(steps[i].State)
		if i < k && steps[i].Constraint != nil {
			fmt.Fprintf(&b, "[%d]", steps[i].Constraint.CaseIndex)
		}
	}
	b.WriteString("[-1]:reject")
	return b.String()
}

// transHasDefault reports whether a select transition declares a default
// case (in which case no-match reject is impossible).
func transHasDefault(tr *ir.Trans) bool {
	if tr == nil {
		return true
	}
	for _, c := range tr.Cases {
		if c.Default {
			return true
		}
	}
	return false
}

// buildParserUniverses enumerates the parser-path universe of every
// program in the linked composition (main first, then modules sorted by
// name). Programs without a parser are omitted.
func buildParserUniverses(l *linker.Linked) ([]*parserUniverse, error) {
	progs := []*ir.Program{l.Main}
	names := make([]string, 0, len(l.Modules))
	for n := range l.Modules {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		progs = append(progs, l.Modules[n])
	}

	var out []*parserUniverse
	for _, p := range progs {
		if p.Parser == nil {
			continue
		}
		paths, err := analysis.EnumerateParserPaths(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		u := &parserUniverse{Prog: p.Name, Paths: make(map[string]*analysis.ParserPath)}
		seen := make(map[string]bool)
		for _, pp := range paths {
			k := pp.Key()
			if seen[k] {
				return nil, fmt.Errorf("%s: duplicate parser path key %s", p.Name, k)
			}
			seen[k] = true
			u.Keys = append(u.Keys, k)
			u.Paths[k] = pp
			if pp.Rejected {
				u.Rejects++
			} else {
				u.Accepts++
			}
		}
		// Derived no-match rejects: one per selecting prefix whose select
		// has no default case. Prefixes are shared across enumerated
		// paths, so dedup on the key.
		for _, pp := range paths {
			for k, st := range pp.Steps {
				if st.Constraint == nil {
					continue
				}
				state := p.Parser.State(st.State)
				if state == nil || transHasDefault(state.Trans) {
					continue
				}
				key := noMatchKey(pp.Steps, k)
				if !seen[key] {
					seen[key] = true
					u.Keys = append(u.Keys, key)
					u.Rejects++
				}
			}
		}
		out = append(out, u)
	}
	return out, nil
}

// siteState tracks coverage of one control site.
type siteState struct {
	Site    *analysis.ControlSite
	Label   string
	Covered map[string]bool
}

// buildSites enumerates control sites and assigns stable, readable
// labels (the fq table name, or "<prog>:<kind>#<n>" for branches).
func buildSites(l *linker.Linked) ([]*siteState, map[siteKey]*siteState, error) {
	sites, err := analysis.EnumerateControlSites(l)
	if err != nil {
		return nil, nil, err
	}
	byStmt := make(map[siteKey]*siteState, len(sites))
	counts := make(map[string]int)
	out := make([]*siteState, 0, len(sites))
	for _, s := range sites {
		label := s.FQ
		if s.Kind != "table" {
			scope := s.Prog
			if s.Inst != "" {
				scope = s.Inst
			}
			counts[scope+s.Kind]++
			label = fmt.Sprintf("%s:%s#%d", scope, s.Kind, counts[scope+s.Kind])
		}
		st := &siteState{Site: s, Label: label, Covered: make(map[string]bool)}
		out = append(out, st)
		byStmt[siteKey{s.Inst, s.Stmt}] = st
	}
	return out, byStmt, nil
}

// siteKey identifies a control site the way observation events do: the
// deciding statement pointer under a module instance path.
type siteKey struct {
	inst string
	stmt *ir.Stmt
}
