package equiv

import (
	"fmt"
	"sort"
	"strings"

	"microp4/internal/ir"
	"microp4/internal/sim"
)

// checker is the per-program exploration state.
type checker struct {
	prog string
	opts Options
	eng  *engines

	progs map[string]*ir.Program // linked programs by name

	parserU    []*parserUniverse
	parserCov  map[string]map[string]bool // prog -> covered universe keys
	unknown    map[string]map[string]bool // prog -> observed keys outside the universe
	sites      []*siteState
	siteByStmt map[siteKey]*siteState
	siteByFQ   map[string]*siteState

	stmtIDs map[*ir.Stmt]int

	seen      map[string]bool // trace signatures already checked
	tried     map[string]bool // prefix|alternative forcings already attempted
	queue     []*job
	unreached []unreachedNote
	noted     map[string]bool

	divs      []*Divergence
	totalDivs int

	witnesses int
	probes    int
	capped    bool
}

type job struct {
	w      *Witness
	prefix []string // decision signatures that must replay before the forced one
	note   string   // what this job tries to reach (for unreached reporting)
	covKey string   // site coverage item the job aims at ("" = parser path)
	prog   string   // parser program the job aims at ("" = none)
}

type unreachedNote struct {
	What   string
	Reason string
	covKey string // site coverage item this was aiming at ("" = parser path)
	prog   string // parser program the aim belongs to ("" = none)
}

// alternative is one untaken decision outcome and how to force it.
type alternative struct {
	sig    string // dedup key; unique per distinct forcing attempt
	expect string // decision signature the replay must show ("" = sig)
	desc   string
	covKey string
	prog   string
	force  func(w *Witness) (*Witness, string)
}

func newChecker(prog string, opts Options, eng *engines) (*checker, error) {
	c := &checker{
		prog: prog, opts: opts, eng: eng,
		progs:     map[string]*ir.Program{eng.linked.Main.Name: eng.linked.Main},
		parserCov: make(map[string]map[string]bool),
		unknown:   make(map[string]map[string]bool),
		stmtIDs:   make(map[*ir.Stmt]int),
		seen:      make(map[string]bool),
		tried:     make(map[string]bool),
		noted:     make(map[string]bool),
		siteByFQ:  make(map[string]*siteState),
	}
	for n, p := range eng.linked.Modules {
		c.progs[n] = p
	}
	var err error
	c.parserU, err = buildParserUniverses(eng.linked)
	if err != nil {
		return nil, err
	}
	for _, u := range c.parserU {
		c.parserCov[u.Prog] = make(map[string]bool)
	}
	c.sites, c.siteByStmt, err = buildSites(eng.linked)
	if err != nil {
		return nil, err
	}
	for _, s := range c.sites {
		if s.Site.Kind == "table" {
			if _, dup := c.siteByFQ[s.Site.FQ]; !dup {
				c.siteByFQ[s.Site.FQ] = s
			}
		}
	}
	return c, nil
}

// ----------------------------------------------------------------------------
// Signatures

func (c *checker) stmtID(s *ir.Stmt) int {
	id, ok := c.stmtIDs[s]
	if !ok {
		id = len(c.stmtIDs) + 1
		c.stmtIDs[s] = id
	}
	return id
}

func outcomeStr(ev *sim.ObsEvent) string {
	switch ev.Outcome {
	case sim.LookupHit:
		return "hit:" + ev.Action
	case sim.LookupDefault:
		return "default:" + ev.Action
	default:
		return "miss"
	}
}

func isDecision(kind string) bool {
	return kind == "select" || kind == "table" || kind == "if" || kind == "switch"
}

func (c *checker) decisionSig(ev *sim.ObsEvent) string {
	switch ev.Kind {
	case "select":
		return fmt.Sprintf("sel:%s:%s=%d", ev.Inst, ev.State, ev.Taken)
	case "table":
		return "tbl:" + ev.FQ + "=" + outcomeStr(ev)
	case "if":
		return fmt.Sprintf("if:%s:%d=%d", ev.Inst, c.stmtID(ev.Stmt), ev.Branch)
	case "switch":
		return fmt.Sprintf("sw:%s:%d=%d", ev.Inst, c.stmtID(ev.Stmt), ev.Branch)
	}
	return ""
}

// traceSig canonically identifies an execution's decision structure.
func (c *checker) traceSig(events []sim.ObsEvent) string {
	var b strings.Builder
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case "enter":
			fmt.Fprintf(&b, "E:%s/%s;", ev.Inst, ev.Prog)
		case "state":
			b.WriteString("s:" + ev.State + ";")
		case "accept":
			b.WriteString("A:" + ev.Inst + ";")
		case "reject":
			fmt.Fprintf(&b, "R:%s:%s;", ev.Inst, ev.Reason)
		default:
			if isDecision(ev.Kind) {
				b.WriteString(c.decisionSig(ev) + ";")
			}
		}
	}
	return b.String()
}

// ----------------------------------------------------------------------------
// Coverage marking

// assembleParserKey rebuilds, from the events following an "enter", the
// invocation's parser-path key in ParserPath.Key format. It returns the
// key and the terminal disposition ("accept", "reject", "short", or ""
// when the frame has no parser events).
func assembleParserKey(rest []sim.ObsEvent, inst string) (string, string) {
	var b strings.Builder
	states := 0
	for i := range rest {
		ev := &rest[i]
		if ev.Inst != inst {
			break
		}
		switch ev.Kind {
		case "state":
			if states > 0 {
				b.WriteByte('>')
			}
			states++
			b.WriteString(ev.State)
		case "select":
			fmt.Fprintf(&b, "[%d]", ev.Taken)
		case "accept":
			b.WriteString(":accept")
			return b.String(), "accept"
		case "reject":
			if ev.Reason == "short" {
				return "", "short"
			}
			b.WriteString(":reject")
			return b.String(), "reject"
		case "extract":
			// layout only; not part of the key
		default:
			// First control event: the parser finished without a
			// terminal event (program without a parser).
			return "", ""
		}
	}
	return "", ""
}

func (c *checker) mark(events []sim.ObsEvent) (sawShort bool) {
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case "enter":
			key, disp := assembleParserKey(events[i+1:], ev.Inst)
			if disp == "short" {
				sawShort = true
				continue
			}
			if key == "" {
				continue
			}
			if u := c.universeOf(ev.Prog); u != nil {
				if _, inU := u.Paths[key]; inU || contains(u.Keys, key) {
					c.parserCov[ev.Prog][key] = true
				} else {
					if c.unknown[ev.Prog] == nil {
						c.unknown[ev.Prog] = make(map[string]bool)
					}
					c.unknown[ev.Prog][key] = true
				}
			}
		case "table":
			if st := c.siteByFQ[ev.FQ]; st != nil {
				st.Covered[outcomeStr(ev)] = true
			}
		case "if":
			if st := c.siteByStmt[siteKey{ev.Inst, ev.Stmt}]; st != nil {
				if ev.Branch == 1 {
					st.Covered["then"] = true
				} else {
					st.Covered["else"] = true
				}
			}
		case "switch":
			if st := c.siteByStmt[siteKey{ev.Inst, ev.Stmt}]; st != nil {
				if ev.Branch >= 0 {
					st.Covered[fmt.Sprintf("case%d", ev.Branch)] = true
				} else {
					st.Covered["default"] = true
				}
			}
		}
	}
	return sawShort
}

func (c *checker) universeOf(prog string) *parserUniverse {
	for _, u := range c.parserU {
		if u.Prog == prog {
			return u
		}
	}
	return nil
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// ----------------------------------------------------------------------------
// Alternatives

func (c *checker) alternatives(ev *sim.ObsEvent) []alternative {
	switch ev.Kind {
	case "select":
		return c.selectAlts(ev)
	case "table":
		return c.tableAlts(ev)
	case "if":
		return c.ifAlts(ev)
	case "switch":
		return c.switchAlts(ev)
	}
	return nil
}

func (c *checker) selectAlts(ev *sim.ObsEvent) []alternative {
	tr := ev.Trans
	firstDefault := len(tr.Cases)
	for i, cc := range tr.Cases {
		if cc.Default {
			firstDefault = i
			break
		}
	}
	ws := make([]int, len(tr.Exprs))
	cur := make([]uint64, len(tr.Exprs))
	for j, e := range tr.Exprs {
		ws[j] = exprWidth(e)
		cur[j] = truncate(ev.SelVals[j], ws[j])
	}
	var targets []int
	for t := 0; t < len(tr.Cases) && t <= firstDefault; t++ {
		if t != ev.Taken {
			targets = append(targets, t)
		}
	}
	if firstDefault == len(tr.Cases) && ev.Taken != -1 {
		targets = append(targets, -1) // implicit no-match reject
	}
	var alts []alternative
	for _, t := range targets {
		t := t
		what := fmt.Sprintf("case %d", t)
		if t == -1 {
			what = "no-match reject"
		} else if tr.Cases[t].Default {
			what = fmt.Sprintf("default (case %d)", t)
		}
		alts = append(alts, alternative{
			sig:  fmt.Sprintf("sel:%s:%s=%d", ev.Inst, ev.State, t),
			desc: fmt.Sprintf("parser %s: state %s -> %s", ev.Prog, ev.State, what),
			prog: ev.Prog,
			force: func(w *Witness) (*Witness, string) {
				vals, reason := chooseCaseValues(tr.Cases, cur, ws, t)
				if reason != "" {
					return nil, reason
				}
				w2 := w.clone()
				for j := range vals {
					if vals[j] == cur[j] {
						continue
					}
					if r := writeLoc(w2.Packet, ev.SelLocs[j], vals[j]); r != "" {
						return nil, fmt.Sprintf("select operand %d: %s", j, r)
					}
				}
				return w2, ""
			},
		})
	}
	return alts
}

func (c *checker) ifAlts(ev *sim.ObsEvent) []alternative {
	st := c.siteByStmt[siteKey{ev.Inst, ev.Stmt}]
	label := "if"
	if st != nil {
		label = st.Label
	}
	target := 1 - ev.Branch
	outcome := "else"
	if target == 1 {
		outcome = "then"
	}
	parts := ev.CondParts
	return []alternative{{
		sig:    fmt.Sprintf("if:%s:%d=%d", ev.Inst, c.stmtID(ev.Stmt), target),
		desc:   fmt.Sprintf("branch %s -> %s", label, outcome),
		covKey: label + "|" + outcome,
		force: func(w *Witness) (*Witness, string) {
			if target == 1 {
				// Force true: every currently-false conjunct must be
				// satisfiable through its input-byte provenance.
				w2 := w.clone()
				for _, p := range parts {
					if partHolds(p) {
						continue
					}
					if !p.OK {
						return nil, "condition part has no input-packet provenance"
					}
					v, reason := satisfyCmp(p.Op, p.Const, p.Loc)
					if reason != "" {
						return nil, reason
					}
					if r := writeLoc(w2.Packet, p.Loc, v); r != "" {
						return nil, r
					}
				}
				return w2, ""
			}
			// Force false: violate any one currently-true conjunct.
			lastReason := "condition has no input-packet provenance"
			for _, p := range parts {
				if !partHolds(p) || !p.OK {
					continue
				}
				v, reason := satisfyCmp(negCmp(p.Op), p.Const, p.Loc)
				if reason != "" {
					lastReason = reason
					continue
				}
				trial := w.clone()
				if r := writeLoc(trial.Packet, p.Loc, v); r != "" {
					lastReason = r
					continue
				}
				return trial, ""
			}
			return nil, lastReason
		},
	}}
}

// partHolds reports a condition part's current truth.
func partHolds(p sim.CondPart) bool {
	if !p.OK {
		return p.Val != 0
	}
	switch p.Op {
	case "==":
		return p.Val == p.Const
	case "!=":
		return p.Val != p.Const
	case "<":
		return p.Val < p.Const
	case ">":
		return p.Val > p.Const
	case "<=":
		return p.Val <= p.Const
	case ">=":
		return p.Val >= p.Const
	}
	return false
}

// negCmp returns the complementary comparison.
func negCmp(op string) string {
	switch op {
	case "==":
		return "!="
	case "!=":
		return "=="
	case "<":
		return ">="
	case ">=":
		return "<"
	case ">":
		return "<="
	case "<=":
		return ">"
	}
	return op
}

// satisfyCmp picks an expression value making "x OP const" hold that the
// location can represent. The location's value is truncate(bits + Add,
// Width), so exactly the values in [0, 2^Width) are representable,
// independent of the affine offset.
func satisfyCmp(op string, c uint64, loc sim.BitLoc) (uint64, string) {
	m := maskW(loc.Width)
	switch op {
	case "==", ">=":
		if c > m {
			return 0, "compared constant is not representable in the source field"
		}
		return c, ""
	case "!=":
		v := truncate(c^1, loc.Width)
		if v == c {
			return 0, "no representable value distinct from the compared constant"
		}
		return v, ""
	case ">":
		if c >= m {
			return 0, "no representable value above the compared constant"
		}
		return c + 1, ""
	case "<":
		if c == 0 {
			return 0, "no representable value below the compared constant"
		}
		return 0, ""
	case "<=":
		return 0, ""
	}
	return 0, fmt.Sprintf("unsupported comparison %q", op)
}

func (c *checker) switchAlts(ev *sim.ObsEvent) []alternative {
	st := c.siteByStmt[siteKey{ev.Inst, ev.Stmt}]
	label := "switch"
	if st != nil {
		label = st.Label
	}
	s := ev.Stmt
	condW := s.Cond.Width
	var alts []alternative
	addTarget := func(target int, outcome string, pick func() (uint64, string)) {
		alts = append(alts, alternative{
			sig:    fmt.Sprintf("sw:%s:%d=%d", ev.Inst, c.stmtID(ev.Stmt), target),
			desc:   fmt.Sprintf("branch %s -> %s", label, outcome),
			covKey: label + "|" + outcome,
			force: func(w *Witness) (*Witness, string) {
				if !ev.Loc.OK {
					return nil, "switch value has no input-packet provenance"
				}
				v, reason := pick()
				if reason != "" {
					return nil, reason
				}
				w2 := w.clone()
				if r := writeLoc(w2.Packet, ev.Loc, v); r != "" {
					return nil, r
				}
				return w2, ""
			},
		})
	}
	for i, cs := range s.Cases {
		if cs.Default || i == ev.Branch || len(cs.Values) == 0 {
			continue
		}
		v := cs.Values[0]
		addTarget(i, fmt.Sprintf("case%d", i), func() (uint64, string) {
			if v != truncate(v, condW) {
				return 0, "case value does not fit the switch width"
			}
			return v, ""
		})
	}
	if ev.Branch >= 0 {
		// One alternative per candidate value avoiding every case: a
		// single pick can fail to replay when the rewritten bits interact
		// with an earlier decision (e.g. affine wrap-around flipping a
		// guarding if), so several concrete values are offered and the
		// first that survives replay covers the default.
		var used []uint64
		for _, cs := range s.Cases {
			if !cs.Default {
				used = append(used, cs.Values...)
			}
		}
		cands := []uint64{0, 1, maskW(condW)}
		for _, u := range used {
			cands = append(cands, truncate(u+1, condW), truncate(u-1, condW), truncate(u^1, condW))
		}
		seen := make(map[uint64]bool)
		n := 0
		for _, v := range cands {
			if seen[v] || n >= 6 {
				continue
			}
			seen[v] = true
			hit := false
			for _, u := range used {
				if truncate(u, condW) == v {
					hit = true
					break
				}
			}
			if hit {
				continue
			}
			n++
			v := v
			alts = append(alts, alternative{
				sig:    fmt.Sprintf("sw:%s:%d=-1@%#x", ev.Inst, c.stmtID(ev.Stmt), v),
				expect: fmt.Sprintf("sw:%s:%d=-1", ev.Inst, c.stmtID(ev.Stmt)),
				desc:   fmt.Sprintf("branch %s -> default (value %#x)", label, v),
				covKey: label + "|default",
				force: func(w *Witness) (*Witness, string) {
					if !ev.Loc.OK {
						return nil, "switch value has no input-packet provenance"
					}
					w2 := w.clone()
					if r := writeLoc(w2.Packet, ev.Loc, v); r != "" {
						return nil, r
					}
					return w2, ""
				},
			})
		}
	}
	return alts
}

// opMatches reports whether an installed op would match the observed key
// values on this table (mirrors sim's matchRuntimeEntry).
func opMatches(def *ir.Table, op TableOp, keys []uint64) bool {
	for i := range op.Keys {
		if i >= len(def.Keys) || i >= len(keys) {
			return false
		}
		k := op.Keys[i]
		v := keys[i]
		width := def.Keys[i].Expr.Width
		if k.DontCare {
			continue
		}
		switch def.Keys[i].MatchKind {
		case "exact":
			if k.Value != v {
				return false
			}
		case "ternary":
			if k.HasMask {
				if k.Value&k.Mask != v&k.Mask {
					return false
				}
			} else if k.Value != v {
				return false
			}
		case "lpm":
			if k.PrefixLen != 0 {
				shift := uint(width - k.PrefixLen)
				if width >= 64 {
					shift = uint(64 - k.PrefixLen)
				}
				if k.Value>>shift != v>>shift {
					return false
				}
			}
		case "range":
			if v < k.Value || v > k.Mask {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// entryKeysFor builds the most specific runtime keys matching exactly
// the observed key values.
func entryKeysFor(def *ir.Table, keys []uint64) []sim.RuntimeKey {
	out := make([]sim.RuntimeKey, len(def.Keys))
	for i, k := range def.Keys {
		v := keys[i]
		w := k.Expr.Width
		switch k.MatchKind {
		case "lpm":
			plen := w
			if plen > 64 {
				plen = 64
			}
			out[i] = sim.LPM(v, plen)
		case "ternary":
			out[i] = sim.Ternary(v, maskW(w))
		case "range":
			out[i] = sim.RuntimeKey{Value: v, Mask: v} // inclusive [v, v]
		default:
			out[i] = sim.Exact(v)
		}
	}
	return out
}

func (c *checker) tableAlts(ev *sim.ObsEvent) []alternative {
	def := ev.Table
	cur := outcomeStr(ev)
	p := c.progs[ev.Prog]
	var outcomes []string
	for _, a := range def.Actions {
		outcomes = append(outcomes, "hit:"+a)
	}
	if def.Default != nil {
		outcomes = append(outcomes, "default:"+def.Default.Name)
	} else {
		outcomes = append(outcomes, "miss")
	}
	var alts []alternative
	for _, out := range outcomes {
		if out == cur {
			continue
		}
		out := out
		alts = append(alts, alternative{
			sig:    "tbl:" + ev.FQ + "=" + out,
			desc:   fmt.Sprintf("table %s -> %s", ev.FQ, out),
			covKey: ev.FQ + "|" + out,
			force: func(w *Witness) (*Witness, string) {
				w2 := w.clone()
				// Remove any op that matches these key values; the new
				// outcome must not be decided by a leftover entry.
				kept := w2.Ops[:0]
				for _, op := range w2.Ops {
					if op.Table == ev.FQ && opMatches(def, op, ev.Keys) {
						continue
					}
					kept = append(kept, op)
				}
				removed := len(w2.Ops) - len(kept)
				w2.Ops = kept
				if strings.HasPrefix(out, "hit:") {
					act := strings.TrimPrefix(out, "hit:")
					a := p.Actions[act]
					if a == nil {
						return nil, "unknown action " + act
					}
					args := make([]uint64, len(a.Params))
					for i, prm := range a.Params {
						args[i] = truncate(uint64(7+13*i), prm.Width)
					}
					fqAct := act
					if ev.Inst != "" {
						fqAct = ev.Inst + "." + act
					}
					w2.Ops = append(w2.Ops, TableOp{
						Table: ev.FQ, Keys: entryKeysFor(def, ev.Keys),
						Action: fqAct, Args: args,
					})
				} else if removed == 0 && ev.Outcome == sim.LookupHit {
					return nil, "hit comes from a const entry; no runtime entry to remove"
				}
				return w2, ""
			},
		})
	}
	return alts
}

// ----------------------------------------------------------------------------
// Exploration

func (c *checker) note(n unreachedNote) {
	key := n.What + "|" + n.Reason
	if c.noted[key] {
		return
	}
	c.noted[key] = true
	c.unreached = append(c.unreached, n)
}

func (c *checker) run(w *Witness) ([]sim.ObsEvent, error) {
	c.eng.apply(w)
	_, events, err := c.eng.interp.ObserveProcess(w.Packet, sim.Metadata{InPort: w.Port})
	return events, err
}

func (c *checker) processJob(j *job) {
	events, _ := c.run(j.w) // an engine error still yields a partial trace and is differentially compared below
	var decisions []*sim.ObsEvent
	var sigs []string
	for i := range events {
		if isDecision(events[i].Kind) {
			decisions = append(decisions, &events[i])
			sigs = append(sigs, c.decisionSig(&events[i]))
		}
	}
	if len(j.prefix) > 0 {
		ok := len(sigs) >= len(j.prefix)
		for i := 0; ok && i < len(j.prefix); i++ {
			ok = sigs[i] == j.prefix[i]
		}
		if !ok {
			c.note(unreachedNote{What: j.note, Reason: "forced decision did not replay (input rewrite interacts with earlier decisions)",
				covKey: j.covKey, prog: j.prog})
			return
		}
	}
	ts := c.traceSig(events)
	if c.seen[ts] {
		return
	}
	c.seen[ts] = true
	c.witnesses++
	if c.mark(events) {
		c.probes++
	}
	if d := c.eng.runDiff(j.w); d != nil {
		c.totalDivs++
		if len(c.divs) < c.opts.MaxDivergences {
			mw := c.eng.minimize(j.w)
			if d2 := c.eng.runDiff(mw); d2 != nil {
				d = d2
			}
			d.Program = c.prog
			d.Witness = mw
			d.Path = ts
			c.divs = append(c.divs, d)
		}
	}
	if c.witnesses >= c.opts.MaxWitnesses {
		c.capped = true
		return
	}
	for i, ev := range decisions {
		prefix := sigs[:i:i]
		for _, a := range c.alternatives(ev) {
			tk := strings.Join(prefix, ";") + "|" + a.sig
			if c.tried[tk] {
				continue
			}
			c.tried[tk] = true
			w2, reason := a.force(j.w)
			if reason != "" {
				c.note(unreachedNote{What: a.desc, Reason: reason, covKey: a.covKey, prog: a.prog})
				continue
			}
			exp := a.expect
			if exp == "" {
				exp = a.sig
			}
			c.queue = append(c.queue, &job{w: w2, prefix: append(prefix, exp), note: a.desc, covKey: a.covKey, prog: a.prog})
		}
	}
	// Truncation probes: cut the packet one byte short of each observed
	// extraction's end to exercise the parser's "short" reject, which is
	// outside the enumerable path universe.
	for i := range events {
		ev := &events[i]
		if ev.Kind != "extract" || !ev.Loc.OK {
			continue
		}
		cut := (ev.Loc.Off+ev.Loc.Width)/8 - 1
		if cut < 0 || cut >= len(j.w.Packet) {
			continue
		}
		w2 := j.w.clone()
		w2.Packet = w2.Packet[:cut]
		c.queue = append(c.queue, &job{w: w2, note: "truncation probe"})
	}
}

func (c *checker) seeds() []*Witness {
	// Seeds must be long enough for the deepest nested parse: the
	// composition's extract-length El bounds bytes parsed across every
	// module of every path (§5.2), so El + Pad leaves payload to spare.
	maxNeed := c.eng.el
	main := c.eng.linked.Main
	var out []*Witness
	if u := c.universeOf(main.Name); u != nil {
		for _, pp := range u.Paths {
			if pp.Bytes > maxNeed {
				maxNeed = pp.Bytes
			}
		}
		keys := append([]string(nil), u.Keys...)
		sort.Strings(keys)
		for _, k := range keys {
			pp := u.Paths[k]
			if pp == nil {
				continue
			}
			pkt, err := SolvePacket(main, pp, maxNeed-pp.Bytes+c.opts.Pad)
			if err != nil {
				c.note(unreachedNote{What: "seed for main path " + k, Reason: err.Error(), prog: main.Name})
				continue
			}
			out = append(out, &Witness{Packet: pkt, Port: 1})
		}
	}
	// The all-zero packet is the base seed even when the main program has
	// no parser.
	out = append(out, &Witness{Packet: make([]byte, maxNeed+c.opts.Pad), Port: 1})
	return out
}

func (c *checker) explore() {
	for _, s := range c.seeds() {
		c.queue = append(c.queue, &job{w: s, note: "seed"})
	}
	for len(c.queue) > 0 && !c.capped {
		j := c.queue[0]
		c.queue = c.queue[1:]
		c.processJob(j)
	}
}
