package equiv

import (
	"fmt"

	"microp4/internal/ir"
	"microp4/internal/lib"
	"microp4/internal/linker"
	"microp4/internal/midend"
	"microp4/internal/sim"
)

// TableOp is one control-plane operation of a witness: install an entry.
// Outcomes that need an absent entry (miss, default action) are forced
// by not installing one — witnesses always start from an empty control
// plane, so the op list fully determines table state.
type TableOp struct {
	Table  string // fully qualified table name
	Keys   []sim.RuntimeKey
	Action string // fully qualified action name
	Args   []uint64
}

func (op TableOp) String() string {
	ks := ""
	for i, k := range op.Keys {
		if i > 0 {
			ks += ","
		}
		switch {
		case k.DontCare:
			ks += "*"
		case k.HasMask:
			ks += fmt.Sprintf("%#x&%#x", k.Value, k.Mask)
		case k.PrefixLen > 0:
			ks += fmt.Sprintf("%#x/%d", k.Value, k.PrefixLen)
		default:
			ks += fmt.Sprintf("%#x", k.Value)
		}
	}
	return fmt.Sprintf("%s[%s] -> %s%v", op.Table, ks, op.Action, op.Args)
}

// Witness is one concrete input driving a specific execution path: the
// packet bytes, the ingress port, and the table entries installed over
// an otherwise empty control plane.
type Witness struct {
	Packet []byte
	Port   uint64
	Ops    []TableOp
}

func (w *Witness) clone() *Witness {
	return &Witness{
		Packet: append([]byte(nil), w.Packet...),
		Port:   w.Port,
		Ops:    append([]TableOp(nil), w.Ops...),
	}
}

// engines bundles the three execution paths under test plus their
// control-plane state and empty-state snapshots.
type engines struct {
	linked *linker.Linked
	el     int // composition extract-length (analysis El of main): seed sizing

	tables *sim.Tables // shared by interp and exec
	interp *sim.Interp
	exec   *sim.Exec // nil when the program does not compose to a pipeline

	tables3 *sim.Tables // the re-transformed copy's own control plane
	interp3 *sim.Interp

	base, base3 *sim.TablesSnapshot // empty-state snapshots

	composeErr error
}

// buildProgEngines compiles prog (P1..P9) and constructs the engines.
// tf is the midend transform the third engine applies to an
// independently compiled copy of the sources; the production checker
// passes midend.Transform, mutation tests pass a broken variant.
func buildProgEngines(prog string, tf func(*ir.Program) (*ir.Program, error)) (*engines, error) {
	main, mods, err := lib.CompileProgram(prog)
	if err != nil {
		return nil, fmt.Errorf("%s: compile: %w", prog, err)
	}
	res, err := midend.Build(main, mods...)
	if err != nil {
		return nil, fmt.Errorf("%s: midend: %w", prog, err)
	}
	e := &engines{linked: res.Linked, composeErr: res.ComposeErr}
	if res.Analysis != nil {
		e.el = res.Analysis.Main().El
	}
	e.tables = sim.NewTables()
	e.interp = sim.NewInterp(res.Linked, e.tables)
	if res.Pipeline != nil {
		e.exec = sim.NewExec(res.Pipeline, e.tables)
	}

	// Third engine: a fresh frontend pass, the (injectable) midend
	// transform, and an independent link and control plane.
	main3, mods3, err := lib.CompileProgram(prog)
	if err != nil {
		return nil, fmt.Errorf("%s: recompile: %w", prog, err)
	}
	tmain, err := tf(main3)
	if err != nil {
		return nil, fmt.Errorf("%s: transform: %w", prog, err)
	}
	tmods := make([]*ir.Program, 0, len(mods3))
	for _, m := range mods3 {
		tm, err := tf(m)
		if err != nil {
			return nil, fmt.Errorf("%s: transform %s: %w", prog, m.Name, err)
		}
		tmods = append(tmods, tm)
	}
	l3, err := linker.Link(tmain, tmods...)
	if err != nil {
		return nil, fmt.Errorf("%s: relink: %w", prog, err)
	}
	e.tables3 = sim.NewTables()
	e.interp3 = sim.NewInterp(l3, e.tables3)

	e.base = e.tables.Snapshot()
	e.base3 = e.tables3.Snapshot()
	return e, nil
}

// apply resets both control planes to empty and installs the witness's
// entries in both (the fq naming is identical by construction). Flow
// tables are stateful externs the explorer cannot force, so every
// engine restarts each witness from empty flow state.
func (e *engines) apply(w *Witness) {
	e.tables.Restore(e.base)
	e.tables3.Restore(e.base3)
	e.interp.ResetFlows()
	e.interp3.ResetFlows()
	if e.exec != nil {
		e.exec.ResetFlows()
	}
	for _, op := range w.Ops {
		e.tables.AddEntry(op.Table, op.Keys, op.Action, op.Args...)
		e.tables3.AddEntry(op.Table, op.Keys, op.Action, op.Args...)
	}
}

// ----------------------------------------------------------------------------
// Output comparison

// engineOut is the comparable summary of one engine's run.
type engineOut struct {
	Err          string // error class ("" = no error)
	Dropped      bool
	ParserReject bool
	Recirculate  bool
	Mcast        uint64
	Digests      []uint64
	Out          []sim.OutPkt
}

func capture(res *sim.ProcResult, err error) engineOut {
	if err != nil {
		cls := "error"
		if c, ok := sim.ClassOf(err); ok {
			cls = c.String()
		}
		return engineOut{Err: cls}
	}
	o := engineOut{
		Dropped:      res.Dropped,
		ParserReject: res.ParserReject,
		Recirculate:  res.Recirculate,
		Mcast:        res.McastGroup,
		Digests:      append([]uint64(nil), res.Digests...),
	}
	for _, p := range res.Out {
		o.Out = append(o.Out, sim.OutPkt{Port: p.Port, Data: append([]byte(nil), p.Data...)})
	}
	return o
}

func (o engineOut) String() string {
	if o.Err != "" {
		return "error:" + o.Err
	}
	s := ""
	if o.Dropped {
		s = "DROP"
		if o.ParserReject {
			s += "(parser)"
		}
	}
	for _, p := range o.Out {
		s += fmt.Sprintf("[port=%d len=%d %x]", p.Port, len(p.Data), p.Data)
	}
	if o.Recirculate {
		s += " recirc"
	}
	if o.Mcast != 0 {
		s += fmt.Sprintf(" mcast=%d", o.Mcast)
	}
	if len(o.Digests) > 0 {
		s += fmt.Sprintf(" digests=%v", o.Digests)
	}
	return s
}

// firstDiff names the first field on which two summaries disagree
// ("" = byte-identical outcomes).
func firstDiff(a, b engineOut) string {
	if a.Err != b.Err {
		return "error-class"
	}
	if a.Err != "" {
		return "" // same error class: agreed failure
	}
	switch {
	case a.Dropped != b.Dropped:
		return "dropped"
	case a.ParserReject != b.ParserReject:
		return "parser-reject"
	case a.Recirculate != b.Recirculate:
		return "recirculate"
	case a.Mcast != b.Mcast:
		return "mcast-group"
	}
	if len(a.Digests) != len(b.Digests) {
		return "digest-count"
	}
	for i := range a.Digests {
		if a.Digests[i] != b.Digests[i] {
			return fmt.Sprintf("digest[%d]", i)
		}
	}
	if len(a.Out) != len(b.Out) {
		return "output-count"
	}
	for i := range a.Out {
		if a.Out[i].Port != b.Out[i].Port {
			return fmt.Sprintf("out[%d].port", i)
		}
		x, y := a.Out[i].Data, b.Out[i].Data
		if len(x) != len(y) {
			return fmt.Sprintf("out[%d].len", i)
		}
		for j := range x {
			if x[j] != y[j] {
				return fmt.Sprintf("out[%d].byte[%d]", i, j)
			}
		}
	}
	return ""
}

// Divergence is one witnessed disagreement between engines.
type Divergence struct {
	Program string
	Pair    string // "reference vs compiled" or "reference vs re-transformed"
	Field   string // first differing field
	A, B    string // the two outcome summaries
	Witness *Witness
	Path    string // decision-trace signature of the witness
}

// runDiff executes one witness on all engines and returns the first
// divergence, or nil when every engine agrees.
func (e *engines) runDiff(w *Witness) *Divergence {
	e.apply(w)
	meta := sim.Metadata{InPort: w.Port}
	ri, erri := e.interp.Process(w.Packet, meta)
	ref := capture(ri, erri)
	if e.exec != nil {
		rx, errx := e.exec.Process(w.Packet, meta)
		cmp := capture(rx, errx)
		if rx != nil {
			rx.Release()
		}
		if f := firstDiff(ref, cmp); f != "" {
			return &Divergence{Pair: "reference vs compiled", Field: f, A: ref.String(), B: cmp.String(), Witness: w}
		}
	}
	r3, err3 := e.interp3.Process(w.Packet, meta)
	o3 := capture(r3, err3)
	if f := firstDiff(ref, o3); f != "" {
		return &Divergence{Pair: "reference vs re-transformed", Field: f, A: ref.String(), B: o3.String(), Witness: w}
	}
	return nil
}

// minimize greedily shrinks a diverging witness: drop table ops that
// are not needed for the divergence, then trim trailing packet bytes.
func (e *engines) minimize(w *Witness) *Witness {
	cur := w.clone()
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Ops); i++ {
			trial := cur.clone()
			trial.Ops = append(trial.Ops[:i], trial.Ops[i+1:]...)
			if e.runDiff(trial) != nil {
				cur = trial
				changed = true
				break
			}
		}
	}
	for len(cur.Packet) > 0 {
		trial := cur.clone()
		trial.Packet = trial.Packet[:len(trial.Packet)-1]
		if e.runDiff(trial) == nil {
			break
		}
		cur = trial
	}
	return cur
}
