package equiv

import (
	"microp4/internal/ir"
	"microp4/internal/midend"
)

// Options tunes a Check run. The zero value selects the production
// configuration.
type Options struct {
	// MaxWitnesses caps the number of distinct execution paths checked
	// (default 8192 — P10's decap × NAT64 × route product is the
	// largest legitimate path space at ~4.7k). Hitting the cap sets
	// Report.Capped — it is reported, never silent.
	MaxWitnesses int

	// Pad is the number of zero payload bytes appended after the region
	// a seed packet's parser path extracts (default 96), so forced
	// longer paths do not run out of packet.
	Pad int

	// MaxDivergences caps how many divergences are minimized and kept in
	// the report (default 25); Report.TotalDivergences always counts all.
	MaxDivergences int

	// Transform is the midend transform the third engine applies to an
	// independently compiled copy of the sources (default
	// midend.Transform). Mutation tests inject broken variants here to
	// prove the gate is not vacuous.
	Transform func(*ir.Program) (*ir.Program, error)
}

// Check enumerates every reachable execution path of program prog
// (P1..P11), synthesizes one concrete witness per path, and requires the
// reference interpreter, the compiled MAT pipeline, and an independently
// re-transformed copy to agree byte-for-byte on each. See the package
// documentation for the architecture and soundness boundary.
func Check(prog string, opts Options) (*Report, error) {
	if opts.MaxWitnesses <= 0 {
		opts.MaxWitnesses = 8192
	}
	if opts.Pad <= 0 {
		opts.Pad = 96
	}
	if opts.MaxDivergences <= 0 {
		opts.MaxDivergences = 25
	}
	if opts.Transform == nil {
		opts.Transform = midend.Transform
	}
	eng, err := buildProgEngines(prog, opts.Transform)
	if err != nil {
		return nil, err
	}
	c, err := newChecker(prog, opts, eng)
	if err != nil {
		return nil, err
	}
	c.explore()
	return c.report(), nil
}
