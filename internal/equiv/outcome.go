package equiv

import (
	"fmt"

	"microp4/internal/sim"
)

// Outcome is the architecture-level result of one packet: the typed
// error class (empty when processing succeeded), the transmitted
// packets in order, and the digests raised. It is the externally
// visible behavior two executions must agree on — the same contract
// firstDiff enforces between engines, lifted above the engine layer so
// the ISSU shadow canary can byte-compare a live generation against a
// staged one.
type Outcome struct {
	ErrClass string
	Out      []PortPacket
	Digests  []uint64
}

// PortPacket is one transmitted packet of an Outcome.
type PortPacket struct {
	Port uint64
	Data []byte
}

// ErrClassOf renders an error as an outcome class: "" for nil, the
// taxonomy class for typed runtime errors, and the error text for
// anything outside the taxonomy (which would itself be a divergence
// worth reporting).
func ErrClassOf(err error) string {
	if err == nil {
		return ""
	}
	if class, ok := sim.ClassOf(err); ok {
		return class.String()
	}
	return "untyped:" + err.Error()
}

// FirstOutcomeDiff compares two outcomes and describes the first
// divergence, or returns "" when they are identical. Two executions
// failing with the same error class agree (the packet is lost either
// way); the comparison order — error class, digests, then outputs
// port/length/byte — matches the engine differ's firstDiff.
func FirstOutcomeDiff(a, b Outcome) string {
	if a.ErrClass != b.ErrClass {
		return fmt.Sprintf("error class: %q vs %q", a.ErrClass, b.ErrClass)
	}
	if a.ErrClass != "" {
		return "" // agreed failure
	}
	if len(a.Digests) != len(b.Digests) {
		return fmt.Sprintf("digest count: %d vs %d", len(a.Digests), len(b.Digests))
	}
	for i := range a.Digests {
		if a.Digests[i] != b.Digests[i] {
			return fmt.Sprintf("digest[%d]: %#x vs %#x", i, a.Digests[i], b.Digests[i])
		}
	}
	if len(a.Out) != len(b.Out) {
		return fmt.Sprintf("output count: %d vs %d", len(a.Out), len(b.Out))
	}
	for i := range a.Out {
		if a.Out[i].Port != b.Out[i].Port {
			return fmt.Sprintf("out[%d] port: %d vs %d", i, a.Out[i].Port, b.Out[i].Port)
		}
		x, y := a.Out[i].Data, b.Out[i].Data
		if len(x) != len(y) {
			return fmt.Sprintf("out[%d] length: %d vs %d", i, len(x), len(y))
		}
		for j := range x {
			if x[j] != y[j] {
				return fmt.Sprintf("out[%d] byte %d: %#02x vs %#02x", i, j, x[j], y[j])
			}
		}
	}
	return ""
}
