package equiv

import (
	"fmt"
	"sort"
	"strings"
)

// ParserCoverage summarizes one program's parser-path universe.
type ParserCoverage struct {
	Prog    string
	Total   int // accepting + rejecting (incl. derived no-match) paths
	Accepts int
	Rejects int
	Covered int
	Missing []string // universe keys never observed
	Unknown []string // observed keys outside the universe (should be empty)
}

// SiteCoverage summarizes one control site's outcome alphabet.
type SiteCoverage struct {
	Label   string
	Kind    string
	Total   int
	Covered int
	Missing []string
}

// UnreachedNote documents one alternative the explorer could not force,
// with the reason — unreached outcomes are reported, never silent.
type UnreachedNote struct {
	What   string
	Reason string
}

// Report is the outcome of Check for one program.
type Report struct {
	Program    string
	Engines    int    // 3, or 2 when the program does not compose to a MAT pipeline
	ComposeErr string // why the compiled engine is absent ("" when present)

	Parsers []*ParserCoverage
	Sites   []*SiteCoverage

	Witnesses int // distinct execution paths differentially checked
	Probes    int // of which truncation ("short" reject) probes
	Capped    bool

	Divergences      []*Divergence // minimized, up to Options.MaxDivergences
	TotalDivergences int

	Unreached []UnreachedNote
}

// ParserCoverageOK reports whether every enumerated accepting and
// rejecting parser path of every program was checked.
func (r *Report) ParserCoverageOK() bool {
	for _, p := range r.Parsers {
		if p.Covered != p.Total || len(p.Unknown) > 0 {
			return false
		}
	}
	return true
}

// SiteTotals sums control-site outcome coverage.
func (r *Report) SiteTotals() (covered, total int) {
	for _, s := range r.Sites {
		covered += s.Covered
		total += s.Total
	}
	return covered, total
}

// StructurallyUnreachable lists the control-site outcomes the checker
// is allowed to leave uncovered, keyed by program then "label|outcome".
// Every entry has been verified dead by hand; see DESIGN.md
// ("Mechanized equivalence") for the arguments.
//
// P6 (SRv4): sr4_tbl has const entries for both values of its 1-bit key
// (0 -> steer, 1 -> steer_done), and const entries win priority ties
// over runtime entries, so its hit:pass and default:pass outcomes can
// never fire. The if#2/#5/#6/#7 arms come from the midend's pop_front
// unrolling (per-element "if (valid) copy else invalidate" chains);
// their conditions are implied by the parser path that reached them —
// segment k+1's validity is fixed by how many segments were parsed.
var StructurallyUnreachable = map[string]map[string]bool{
	"P6": {
		"sr4_i.sr4_tbl|hit:pass":     true,
		"sr4_i.sr4_tbl|default:pass": true,
		"sr4_i:if#2|else":            true,
		"sr4_i:if#5|then":            true,
		"sr4_i:if#6|then":            true,
		"sr4_i:if#7|then":            true,
	},
}

// UnexpectedMissing returns the missing control-site outcomes that are
// NOT in the documented structurally-unreachable set — coverage the
// gate does not excuse.
func (r *Report) UnexpectedMissing() []string {
	allow := StructurallyUnreachable[r.Program]
	var out []string
	for _, s := range r.Sites {
		for _, o := range s.Missing {
			if !allow[s.Label+"|"+o] {
				out = append(out, s.Label+"|"+o)
			}
		}
	}
	sort.Strings(out)
	return out
}

// OK is the CI gate: full parser-path coverage, zero divergences, and
// no control-site outcome missing beyond the documented
// structurally-unreachable set.
func (r *Report) OK() bool {
	return r.TotalDivergences == 0 && r.ParserCoverageOK() && len(r.UnexpectedMissing()) == 0
}

// String renders the report for terminal output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d engines, %d path witnesses (%d truncation probes)",
		r.Program, r.Engines, r.Witnesses, r.Probes)
	if r.Capped {
		b.WriteString(" [witness cap hit]")
	}
	b.WriteByte('\n')
	if r.ComposeErr != "" {
		fmt.Fprintf(&b, "  compiled engine absent: %s\n", r.ComposeErr)
	}
	pc, pt := 0, 0
	for _, p := range r.Parsers {
		pc += p.Covered
		pt += p.Total
	}
	fmt.Fprintf(&b, "  parser paths: %d/%d covered\n", pc, pt)
	for _, p := range r.Parsers {
		fmt.Fprintf(&b, "    %-12s %d/%d (%d accept, %d reject)\n", p.Prog, p.Covered, p.Total, p.Accepts, p.Rejects)
		for _, k := range p.Missing {
			fmt.Fprintf(&b, "      MISSING %s\n", k)
		}
		for _, k := range p.Unknown {
			fmt.Fprintf(&b, "      UNKNOWN %s\n", k)
		}
	}
	sc, st := r.SiteTotals()
	fmt.Fprintf(&b, "  control sites: %d/%d outcomes covered\n", sc, st)
	for _, s := range r.Sites {
		if len(s.Missing) == 0 {
			continue
		}
		fmt.Fprintf(&b, "    %s %s: missing %s\n", s.Kind, s.Label, strings.Join(s.Missing, ", "))
	}
	if ux := r.UnexpectedMissing(); len(ux) > 0 {
		fmt.Fprintf(&b, "  UNEXPECTED uncovered outcomes (not documented unreachable): %s\n", strings.Join(ux, ", "))
	}
	if len(r.Unreached) > 0 {
		b.WriteString("  unreached (documented):\n")
		for _, u := range r.Unreached {
			fmt.Fprintf(&b, "    %s — %s\n", u.What, u.Reason)
		}
	}
	fmt.Fprintf(&b, "  divergences: %d\n", r.TotalDivergences)
	for _, d := range r.Divergences {
		fmt.Fprintf(&b, "    %s: first diverging field %q\n      reference:   %s\n      other:       %s\n      witness pkt: %x (port %d)\n",
			d.Pair, d.Field, d.A, d.B, d.Witness.Packet, d.Witness.Port)
		for _, op := range d.Witness.Ops {
			fmt.Fprintf(&b, "      witness op:  %s\n", op.String())
		}
	}
	return b.String()
}

// report assembles the checker's final state into a Report.
func (c *checker) report() *Report {
	r := &Report{
		Program:          c.prog,
		Engines:          3,
		Witnesses:        c.witnesses,
		Probes:           c.probes,
		Capped:           c.capped,
		Divergences:      c.divs,
		TotalDivergences: c.totalDivs,
	}
	if c.eng.exec == nil {
		r.Engines = 2
		if c.eng.composeErr != nil {
			r.ComposeErr = c.eng.composeErr.Error()
		} else {
			r.ComposeErr = "pipeline not built"
		}
	}
	for _, u := range c.parserU {
		pc := &ParserCoverage{Prog: u.Prog, Total: len(u.Keys), Accepts: u.Accepts, Rejects: u.Rejects}
		cov := c.parserCov[u.Prog]
		for _, k := range u.Keys {
			if cov[k] {
				pc.Covered++
			} else {
				pc.Missing = append(pc.Missing, k)
			}
		}
		for k := range c.unknown[u.Prog] {
			pc.Unknown = append(pc.Unknown, k)
		}
		sort.Strings(pc.Missing)
		sort.Strings(pc.Unknown)
		r.Parsers = append(r.Parsers, pc)
	}
	missingSiteItems := make(map[string]bool)
	for _, s := range c.sites {
		sc := &SiteCoverage{Label: s.Label, Kind: s.Site.Kind, Total: len(s.Site.Outcomes)}
		for _, o := range s.Site.Outcomes {
			if s.Covered[o] {
				sc.Covered++
			} else {
				sc.Missing = append(sc.Missing, o)
				missingSiteItems[s.Label+"|"+o] = true
			}
		}
		r.Sites = append(r.Sites, sc)
	}
	parserMissing := make(map[string]bool)
	for _, p := range r.Parsers {
		if len(p.Missing) > 0 {
			parserMissing[p.Prog] = true
		}
	}
	// Keep only the unreached notes that still explain a gap: notes
	// aiming at a covered item were reached some other way.
	for _, n := range c.unreached {
		switch {
		case n.covKey != "":
			if missingSiteItems[n.covKey] {
				r.Unreached = append(r.Unreached, UnreachedNote{What: n.What, Reason: n.Reason})
			}
		case n.prog != "":
			if parserMissing[n.prog] {
				r.Unreached = append(r.Unreached, UnreachedNote{What: n.What, Reason: n.Reason})
			}
		default:
			if len(missingSiteItems) > 0 || len(parserMissing) > 0 {
				r.Unreached = append(r.Unreached, UnreachedNote{What: n.What, Reason: n.Reason})
			}
		}
	}
	return r
}
