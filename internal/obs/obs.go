// Package obs is the dependency-free observability core of the µP4
// reproduction: atomic counters, gauges, fixed-bucket histograms, named
// registries, and exposition encoders (Prometheus text and JSON).
//
// It exists to make the paper's §8.2 direction concrete — "programs can
// be linked against µP4 debug modules ... logging information in the
// dataplane" — and to give the compiler per-pass visibility in the
// style of the RMT-backend paper's resource/timing breakdowns.
//
// Design invariant (see DESIGN.md "Observability"): nothing in this
// package allocates on a read-modify path. Counter.Inc, Gauge.Set, and
// Histogram.Observe are single atomic operations; metric creation (the
// only allocating operation) happens off the packet hot path, and
// Registry lookups read a copy-on-write map without locking.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe on a nil receiver (they no-op), so
// call sites can stay unconditional when metrics are not attached.
//
// A counter may have shard children (see Shard): per-worker counters
// whose increments are folded into the parent's Value at read time, so
// concurrent writers never contend on one cache line.
type Counter struct {
	v    atomic.Uint64
	kids atomic.Pointer[[]*Counter]
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Shard returns a new child counter owned by one worker. Writes to the
// child are uncontended single-atomic adds; the parent's Value (and the
// registry expositions, which read through it) sums every child at
// scrape time. Children are permanent — create one per worker, not per
// batch. Nil-safe: a nil parent yields a nil child.
func (c *Counter) Shard() *Counter {
	if c == nil {
		return nil
	}
	kid := &Counter{}
	for {
		old := c.kids.Load()
		var next []*Counter
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, kid)
		if c.kids.CompareAndSwap(old, &next) {
			return kid
		}
	}
}

// Value returns the current count, including all shard children.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	total := c.v.Load()
	if ks := c.kids.Load(); ks != nil {
		for _, k := range *ks {
			total += k.Value()
		}
	}
	return total
}

// Gauge is a metric that can go up and down (a signed instantaneous
// value). Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts integer observations into fixed buckets. Bounds are
// inclusive upper bounds in ascending order; an implicit +Inf bucket
// catches the rest. Observation is a linear scan plus two atomic adds —
// no allocation, no locks.
type Histogram struct {
	bounds  []uint64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum     atomic.Uint64
	kids    atomic.Pointer[[]*Histogram]
}

// NewHistogram returns a detached histogram (normally obtained via
// Registry.Histogram). Bounds must be ascending.
func NewHistogram(bounds []uint64) *Histogram {
	b := append([]uint64(nil), bounds...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", b))
		}
	}
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
}

// Shard returns a new child histogram (same bounds) owned by one
// worker; the parent's snapshot, Count, and Sum fold every child in at
// read time. See Counter.Shard. Nil-safe.
func (h *Histogram) Shard() *Histogram {
	if h == nil {
		return nil
	}
	kid := &Histogram{bounds: h.bounds, buckets: make([]atomic.Uint64, len(h.buckets))}
	for {
		old := h.kids.Load()
		var next []*Histogram
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, kid)
		if h.kids.CompareAndSwap(old, &next) {
			return kid
		}
	}
}

// snapshot returns per-bucket counts (non-cumulative, shard children
// included), the total count, and the sum. Count is derived from the
// bucket reads themselves so the exported +Inf bucket always equals
// _count even under concurrent observation.
func (h *Histogram) snapshot() (counts []uint64, count, sum uint64) {
	counts = make([]uint64, len(h.buckets))
	sum = h.sum.Load()
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	if ks := h.kids.Load(); ks != nil {
		for _, k := range *ks {
			kc, _, ksum := k.snapshot()
			for i := range counts {
				counts[i] += kc[i]
			}
			sum += ksum
		}
	}
	for i := range counts {
		count += counts[i]
	}
	return counts, count, sum
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	_, n, _ := h.snapshot()
	return n
}

// Sum returns the sum of all observed values, shard children included.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	_, _, sum := h.snapshot()
	return sum
}

// LatencyBucketsNs is the default per-packet latency bucket layout
// (nanoseconds): roughly exponential from sub-microsecond to 10ms.
var LatencyBucketsNs = []uint64{250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 1000000, 10000000}

// Label is one name=value metric dimension.
type Label struct{ K, V string }

// L is shorthand for Label{k, v}.
func L(k, v string) Label { return Label{K: k, V: v} }

type metricKind int8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is one registered time series.
type metric struct {
	name   string
	help   string
	kind   metricKind
	labels []Label
	key    string
	c      Counter
	g      Gauge
	h      *Histogram
}

// Registry holds named metrics. Creation (Counter/Gauge/Histogram) is
// get-or-create and may allocate; repeated calls with the same name and
// labels return the same instance via a lock-free copy-on-write map, so
// pre-resolving metrics once and incrementing them forever is the
// intended hot-path pattern. A nil *Registry returns nil metrics, whose
// methods no-op.
type Registry struct {
	mu      sync.Mutex
	byKey   atomic.Value // map[string]*metric
	ordered []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.byKey.Store(map[string]*metric{})
	return r
}

func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0xff)
		b.WriteString(l.K)
		b.WriteByte(0xfe)
		b.WriteString(l.V)
	}
	return b.String()
}

// lookup returns an existing metric without locking.
func (r *Registry) lookup(key string) *metric {
	return r.byKey.Load().(map[string]*metric)[key]
}

// getOrCreate resolves or registers a metric. Kind mismatches on the
// same family name panic: that is a programming error, not runtime
// state.
func (r *Registry) getOrCreate(name, help string, kind metricKind, bounds []uint64, labels []Label) *metric {
	key := metricKey(name, labels)
	if m := r.lookup(key); m != nil {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.byKey.Load().(map[string]*metric)
	if m := old[key]; m != nil {
		return m
	}
	m := &metric{name: name, help: help, kind: kind, labels: append([]Label(nil), labels...), key: key}
	if kind == kindHistogram {
		m.h = NewHistogram(bounds)
	}
	next := make(map[string]*metric, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = m
	r.byKey.Store(next)
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return &r.getOrCreate(name, help, kindCounter, nil, labels).c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return &r.getOrCreate(name, help, kindGauge, nil, labels).g
}

// Histogram returns the histogram for name+labels, creating it on first
// use with the given bucket bounds (ignored if it already exists).
func (r *Registry) Histogram(name, help string, bounds []uint64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, kindHistogram, bounds, labels).h
}

// snapshot returns the registered metrics sorted by family name, then
// label key — the deterministic exposition order.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	ms := append([]*metric(nil), r.ordered...)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].key < ms[j].key
	})
	return ms
}
