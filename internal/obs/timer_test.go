package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestPassTimerMerges(t *testing.T) {
	var pt PassTimer
	pt.Record("lexer", 2*time.Millisecond, 100, 40)
	pt.Record("parser", 3*time.Millisecond, 40, 10)
	pt.Record("lexer", 1*time.Millisecond, 50, 20)
	passes := pt.Passes()
	if len(passes) != 2 {
		t.Fatalf("got %d passes, want 2 (same-name records must merge)", len(passes))
	}
	lx := passes[0]
	if lx.Name != "lexer" || lx.Wall != 3*time.Millisecond || lx.In != 150 || lx.Out != 60 || lx.N != 2 {
		t.Fatalf("merged lexer pass = %+v", lx)
	}
	if pt.Total() != 6*time.Millisecond {
		t.Fatalf("total = %v", pt.Total())
	}
}

func TestPassTimerTime(t *testing.T) {
	var pt PassTimer
	stop := pt.Time("backend")
	time.Sleep(time.Millisecond)
	stop(10, 20)
	p := pt.Passes()
	if len(p) != 1 || p[0].Wall <= 0 || p[0].In != 10 || p[0].Out != 20 {
		t.Fatalf("timed pass = %+v", p)
	}
}

func TestPassTimerNil(t *testing.T) {
	var pt *PassTimer
	pt.Record("x", time.Second, 1, 2)
	pt.Time("y")(3, 4)
	if pt.Passes() != nil || pt.Total() != 0 {
		t.Fatal("nil timer must no-op")
	}
	if !strings.Contains(pt.String(), "no passes") {
		t.Fatalf("nil String = %q", pt.String())
	}
}

func TestPassTimerRender(t *testing.T) {
	var pt PassTimer
	pt.Record("linker", 5*time.Millisecond, 123, 456)
	s := pt.String()
	for _, w := range []string{"stage", "linker", "123", "456", "total"} {
		if !strings.Contains(s, w) {
			t.Errorf("String() missing %q:\n%s", w, s)
		}
	}
	data, err := json.Marshal(&pt)
	if err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["name"] != "linker" {
		t.Fatalf("JSON = %s", data)
	}
}
