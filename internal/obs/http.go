package obs

import (
	"io"
	"net/http"
)

// NewHandler returns the observability HTTP surface:
//
//	/metrics      Prometheus text exposition of reg
//	/debug/vars   JSON snapshot of reg
//	/trace        recent trace events, written by the trace callback
//	              (one JSON object per line); omitted when trace is nil
//	/trace/spans  the distributed-tracing flight recorder as one JSON
//	              document (the up4trace/v1 schema), written by the
//	              spans callback; omitted when spans is nil
//
// The handler is stateless; all state lives in the registry and in
// whatever backs the callbacks (typically a Ring of events and a
// trace.Recorder of spans).
func NewHandler(reg *Registry, trace, spans func(io.Writer) error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	if trace != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
			_ = trace(w)
		})
	}
	if spans != nil {
		mux.HandleFunc("/trace/spans", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = spans(w)
		})
	}
	return mux
}
