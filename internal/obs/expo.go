package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # HELP/# TYPE pair per metric family,
// sanitized names, escaped label values, and for histograms the
// cumulative _bucket series (ending in le="+Inf"), _sum, and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	lastFamily := ""
	for _, m := range r.snapshot() {
		name := SanitizeMetricName(m.name)
		if name != lastFamily {
			if m.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(m.help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, m.kind)
			lastFamily = name
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", name, formatLabels(m.labels, "", ""), m.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %d\n", name, formatLabels(m.labels, "", ""), m.g.Value())
		case kindHistogram:
			counts, count, sum := m.h.snapshot()
			cum := uint64(0)
			for i, bound := range m.h.bounds {
				cum += counts[i]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", name, formatLabels(m.labels, "le", fmt.Sprintf("%d", bound)), cum)
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", name, formatLabels(m.labels, "le", "+Inf"), count)
			fmt.Fprintf(&b, "%s_sum%s %d\n", name, formatLabels(m.labels, "", ""), sum)
			fmt.Fprintf(&b, "%s_count%s %d\n", name, formatLabels(m.labels, "", ""), count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonMetric is one metric in the /debug/vars JSON snapshot.
type jsonMetric struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  *int64            `json:"value,omitempty"`
	Count  *uint64           `json:"count,omitempty"`
	Sum    *uint64           `json:"sum,omitempty"`
	Bucket []jsonBucket      `json:"buckets,omitempty"`
}

type jsonBucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"` // cumulative, Prometheus-style
}

// WriteJSON renders the registry as a single JSON document (the
// /debug/vars snapshot): {"metrics": [...]} in deterministic order.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, `{"metrics":[]}`)
		return err
	}
	out := struct {
		Metrics []jsonMetric `json:"metrics"`
	}{Metrics: []jsonMetric{}}
	for _, m := range r.snapshot() {
		jm := jsonMetric{Name: SanitizeMetricName(m.name), Type: m.kind.String()}
		if len(m.labels) > 0 {
			jm.Labels = make(map[string]string, len(m.labels))
			for _, l := range m.labels {
				jm.Labels[SanitizeLabelName(l.K)] = l.V
			}
		}
		switch m.kind {
		case kindCounter:
			v := int64(m.c.Value())
			jm.Value = &v
		case kindGauge:
			v := m.g.Value()
			jm.Value = &v
		case kindHistogram:
			counts, count, sum := m.h.snapshot()
			cum := uint64(0)
			for i, bound := range m.h.bounds {
				cum += counts[i]
				jm.Bucket = append(jm.Bucket, jsonBucket{LE: fmt.Sprintf("%d", bound), Count: cum})
			}
			jm.Bucket = append(jm.Bucket, jsonBucket{LE: "+Inf", Count: count})
			jm.Count = &count
			jm.Sum = &sum
		}
		out.Metrics = append(out.Metrics, jm)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// SanitizeMetricName maps an arbitrary string onto the Prometheus
// metric-name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*; invalid characters
// become '_' and a leading digit gets a '_' prefix.
func SanitizeMetricName(name string) string {
	return sanitize(name, true)
}

// SanitizeLabelName is SanitizeMetricName for label names, whose
// alphabet additionally excludes ':'.
func SanitizeLabelName(name string) string {
	return sanitize(name, false)
}

func sanitize(name string, allowColon bool) string {
	if name == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || (allowColon && c == ':') ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			('0' <= c && c <= '9' && i > 0)
		if ok {
			if b != nil {
				b = append(b, c)
			}
			continue
		}
		if b == nil { // first divergence: copy the clean prefix
			b = append(make([]byte, 0, len(name)+1), name[:i]...)
		}
		if '0' <= c && c <= '9' { // leading digit
			b = append(b, '_', c)
		} else {
			b = append(b, '_')
		}
	}
	if b == nil {
		return name
	}
	return string(b)
}

// EscapeLabelValue escapes a label value for the text format:
// backslash, double-quote, and newline.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatLabels renders {k="v",...}; extraK/extraV append one more pair
// (used for histogram le). Returns "" when there are no labels at all.
func formatLabels(labels []Label, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(SanitizeLabelName(l.K))
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(l.V))
		b.WriteString(`"`)
	}
	if extraK != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(extraV)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}
