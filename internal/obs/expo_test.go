package obs

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"up4_table_hits_total", "up4_table_hits_total"},
		{"up4.table-hits", "up4_table_hits"},
		{"table/hits total", "table_hits_total"},
		{"2xx", "_2xx"},
		{"ns:sub", "ns:sub"},
		{"", "_"},
		{"a b", "a_b"},
		{"µp4", "__p4"}, // multi-byte rune: one _ per invalid byte
	}
	for _, c := range cases {
		if got := SanitizeMetricName(c.in); got != c.want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Label names additionally reject ':'.
	if got := SanitizeLabelName("ns:sub"); got != "ns_sub" {
		t.Errorf("SanitizeLabelName(ns:sub) = %q, want ns_sub", got)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `plain`},
		{`has"quote`, `has\"quote`},
		{`back\slash`, `back\\slash`},
		{"new\nline", `new\nline`},
		{"all\\\"\n", `all\\\"\n`},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("up4.table-hits", "hits per table", L("table", `weird"name\x`)).Add(3)
	r.Counter("up4.table-hits", "hits per table", L("table", "plain")).Inc()
	r.Gauge("depth", "queue\ndepth").Set(-2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// One HELP/TYPE pair per family even with two series.
	if strings.Count(out, "# TYPE up4_table_hits counter") != 1 {
		t.Errorf("family header wrong:\n%s", out)
	}
	if !strings.Contains(out, `up4_table_hits{table="weird\"name\\x"} 3`) {
		t.Errorf("label escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, `up4_table_hits{table="plain"} 1`) {
		t.Errorf("second series missing:\n%s", out)
	}
	if !strings.Contains(out, `# HELP depth queue\ndepth`) {
		t.Errorf("help escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, "depth -2") {
		t.Errorf("gauge sample missing:\n%s", out)
	}
}

// TestPrometheusHistogram checks the exposition invariants: buckets are
// cumulative, le="+Inf" equals _count, and _sum matches observations.
func TestPrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []uint64{10, 100}, L("engine", "compiled"))
	for _, v := range []uint64{5, 50, 500, 7, 7000} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantLines := []string{
		`lat_bucket{engine="compiled",le="10"} 2`,
		`lat_bucket{engine="compiled",le="100"} 3`,
		`lat_bucket{engine="compiled",le="+Inf"} 5`,
		`lat_sum{engine="compiled"} 7562`,
		`lat_count{engine="compiled"} 5`,
		`# TYPE lat histogram`,
	}
	for _, w := range wantLines {
		if !strings.Contains(out, w) {
			t.Errorf("missing %q in:\n%s", w, out)
		}
	}
	// +Inf bucket and _count must agree line-by-line.
	var inf, count string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `le="+Inf"`) {
			inf = line[strings.LastIndexByte(line, ' ')+1:]
		}
		if strings.HasPrefix(line, "lat_count") {
			count = line[strings.LastIndexByte(line, ' ')+1:]
		}
	}
	if inf == "" || inf != count {
		t.Errorf("+Inf bucket %q != _count %q", inf, count)
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("pkts", "", L("port", "3")).Add(9)
	r.Histogram("lat", "", []uint64{10}).Observe(4)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name   string            `json:"name"`
			Type   string            `json:"type"`
			Labels map[string]string `json:"labels"`
			Value  *int64            `json:"value"`
			Count  *uint64           `json:"count"`
			Sum    *uint64           `json:"sum"`
			Bucket []struct {
				LE    string `json:"le"`
				Count uint64 `json:"count"`
			} `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("got %d metrics, want 2", len(doc.Metrics))
	}
	var sawCounter, sawHist bool
	for _, m := range doc.Metrics {
		switch m.Name {
		case "pkts":
			sawCounter = true
			if m.Type != "counter" || m.Value == nil || *m.Value != 9 || m.Labels["port"] != "3" {
				t.Errorf("counter snapshot wrong: %+v", m)
			}
		case "lat":
			sawHist = true
			if m.Type != "histogram" || m.Count == nil || *m.Count != 1 || m.Sum == nil || *m.Sum != 4 {
				t.Errorf("histogram snapshot wrong: %+v", m)
			}
			if len(m.Bucket) != 2 || m.Bucket[len(m.Bucket)-1].LE != "+Inf" || m.Bucket[len(m.Bucket)-1].Count != 1 {
				t.Errorf("histogram buckets wrong: %+v", m.Bucket)
			}
		}
	}
	if !sawCounter || !sawHist {
		t.Fatalf("snapshot missing metrics: %s", b.String())
	}
}

func TestExpositionDeterministic(t *testing.T) {
	build := func(order []int) string {
		r := NewRegistry()
		for _, i := range order {
			r.Counter("m", "", L("i", strconv.Itoa(i))).Add(uint64(i))
		}
		var b strings.Builder
		_ = r.WritePrometheus(&b)
		return b.String()
	}
	if build([]int{1, 2, 3}) != build([]int{3, 1, 2}) {
		t.Fatal("exposition order depends on registration order")
	}
}
