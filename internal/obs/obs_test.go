package obs

import (
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts", "packets")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("pkts", "packets"); again != c {
		t.Fatal("get-or-create returned a different counter")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(2)
	g.Set(1)
	h.Observe(9)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry must return nil metrics")
	}
}

func TestLabelsDistinguishSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", "", L("table", "a"))
	b := r.Counter("hits", "", L("table", "b"))
	if a == b {
		t.Fatal("different labels must yield different series")
	}
	a.Add(2)
	b.Inc()
	if a.Value() != 2 || b.Value() != 1 {
		t.Fatalf("a=%d b=%d", a.Value(), b.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]uint64{10, 100})
	for _, v := range []uint64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	counts, n, sum := h.snapshot()
	if n != 6 {
		t.Fatalf("count = %d, want 6", n)
	}
	if sum != 1+10+11+100+101+5000 {
		t.Fatalf("sum = %d", sum)
	}
	// le=10 gets {1,10}; le=100 gets {11,100}; +Inf gets {101,5000}.
	if counts[0] != 2 || counts[1] != 2 || counts[2] != 2 {
		t.Fatalf("bucket counts = %v", counts)
	}
}

func TestHistogramKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Histogram("m", "", []uint64{1})
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("shared", "").Inc()
				r.Counter("per", "", L("g", string(rune('a'+g)))).Inc()
				r.Histogram("h", "", []uint64{4, 16}).Observe(uint64(i % 32))
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared", "").Value(); got != 8*500 {
		t.Fatalf("shared = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("h", "", nil).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}

func TestRing(t *testing.T) {
	r := NewRing[int](3)
	for i := 1; i <= 5; i++ {
		r.Push(i)
	}
	got := r.Snapshot()
	if len(got) != 3 || got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("snapshot = %v, want [3 4 5]", got)
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
}

// BenchmarkHotPath guards the zero-allocation invariant: incrementing a
// pre-resolved counter and observing into a histogram must not allocate.
func BenchmarkHotPath(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("pkts", "")
	h := r.Histogram("lat", "", LatencyBucketsNs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(uint64(i))
	}
}

func TestHotPathNoAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts", "")
	h := r.Histogram("lat", "", LatencyBucketsNs)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(42)
		_ = r.lookup("pkts")
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %v per op, want 0", allocs)
	}
}
