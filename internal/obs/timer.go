package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Pass is one compiler stage's accumulated timing record.
type Pass struct {
	Name string        // stage name (lexer, parser, frontend, linker, midend, backend, ...)
	Wall time.Duration // total wall time across invocations
	In   int           // total input size (source bytes, tokens, or IR statements)
	Out  int           // total output size
	N    int           // number of invocations merged into this record
}

// PassTimer accumulates per-stage wall time and input/output sizes for
// a compilation, in the style of the RMT-backend paper's per-pass
// breakdowns. Records with the same stage name merge (wall time and
// sizes sum), so compiling many modules yields one row per stage.
// All methods are safe on a nil receiver and under concurrent use.
type PassTimer struct {
	mu     sync.Mutex
	passes []Pass
}

// Record adds one stage invocation. Same-name records accumulate.
func (t *PassTimer) Record(name string, wall time.Duration, in, out int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.passes {
		if t.passes[i].Name == name {
			t.passes[i].Wall += wall
			t.passes[i].In += in
			t.passes[i].Out += out
			t.passes[i].N++
			return
		}
	}
	t.passes = append(t.passes, Pass{Name: name, Wall: wall, In: in, Out: out, N: 1})
}

// Time starts timing a stage; the returned stop function records the
// elapsed wall time together with the given input/output sizes.
func (t *PassTimer) Time(name string) func(in, out int) {
	if t == nil {
		return func(int, int) {}
	}
	start := time.Now()
	return func(in, out int) {
		t.Record(name, time.Since(start), in, out)
	}
}

// Passes returns a copy of the accumulated records in first-recorded
// order.
func (t *PassTimer) Passes() []Pass {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Pass(nil), t.passes...)
}

// Total returns the summed wall time of all stages.
func (t *PassTimer) Total() time.Duration {
	var sum time.Duration
	for _, p := range t.Passes() {
		sum += p.Wall
	}
	return sum
}

// String renders an aligned table:
//
//	stage        wall        calls   in      out
//	lexer        1.2ms       9       18432   5210
func (t *PassTimer) String() string {
	passes := t.Passes()
	if len(passes) == 0 {
		return "(no passes recorded)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %6s %9s %9s\n", "stage", "wall", "calls", "in", "out")
	for _, p := range passes {
		fmt.Fprintf(&b, "%-12s %10s %6d %9d %9d\n", p.Name, p.Wall.Round(time.Microsecond), p.N, p.In, p.Out)
	}
	fmt.Fprintf(&b, "%-12s %10s\n", "total", t.Total().Round(time.Microsecond))
	return b.String()
}

// MarshalJSON renders the records as a JSON array (wall time in
// nanoseconds).
func (t *PassTimer) MarshalJSON() ([]byte, error) {
	type jsonPass struct {
		Name   string `json:"name"`
		WallNs int64  `json:"wall_ns"`
		In     int    `json:"in"`
		Out    int    `json:"out"`
		N      int    `json:"n"`
	}
	passes := t.Passes()
	out := make([]jsonPass, len(passes))
	for i, p := range passes {
		out[i] = jsonPass{Name: p.Name, WallNs: p.Wall.Nanoseconds(), In: p.In, Out: p.Out, N: p.N}
	}
	return json.Marshal(out)
}
