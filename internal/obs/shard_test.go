package obs

import (
	"io"
	"sync"
	"testing"
)

// TestCounterShardAggregation pins the shard contract: writes through
// per-worker children are folded into the parent's Value at read time,
// exactly once each.
func TestCounterShardAggregation(t *testing.T) {
	var c Counter
	c.Add(5)
	a, b := c.Shard(), c.Shard()
	a.Add(10)
	b.Inc()
	if got := c.Value(); got != 16 {
		t.Errorf("parent Value = %d, want 16", got)
	}
	if got := a.Value(); got != 10 {
		t.Errorf("shard Value = %d, want 10", got)
	}
}

func TestHistogramShardAggregation(t *testing.T) {
	h := NewHistogram([]uint64{10, 100})
	h.Observe(5)
	a, b := h.Shard(), h.Shard()
	a.Observe(50)
	a.Observe(500)
	b.Observe(7)
	if got := h.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
	if got := h.Sum(); got != 562 {
		t.Errorf("Sum = %d, want 562", got)
	}
	counts, count, _ := h.snapshot()
	if count != 4 || counts[0] != 2 || counts[1] != 1 || counts[2] != 1 {
		t.Errorf("snapshot = %v (count %d), want [2 1 1] count 4", counts, count)
	}
}

// TestShardConcurrentScrape races shard creation, shard writes, and
// registry exposition; the final aggregate must be exact. Run with
// -race to exercise the memory-model claims.
func TestShardConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "")
	h := reg.Histogram("test_hist", "", []uint64{8})
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // scraper racing the writers
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = reg.WritePrometheus(io.Discard)
				_ = reg.WriteJSON(io.Discard)
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			cs, hs := c.Shard(), h.Shard()
			for i := 0; i < perWorker; i++ {
				cs.Inc()
				hs.Observe(uint64(i % 16))
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}
